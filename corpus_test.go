package canary

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectRe parses the "// expect: checker=N ..." header of corpus files.
var expectRe = regexp.MustCompile(`([a-z-]+)=(\d+)`)

// TestCorpus runs every program under testdata/ and compares the report
// counts per checker against the expectations embedded in the file header.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus too small: %d files", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			expectLine := ""
			for _, line := range strings.Split(src, "\n") {
				if strings.Contains(line, "expect:") {
					expectLine = line
					break
				}
			}
			if expectLine == "" {
				t.Fatalf("%s: no expect header", file)
			}
			want := map[string]int{}
			for _, m := range expectRe.FindAllStringSubmatch(expectLine, -1) {
				n, err := strconv.Atoi(m[2])
				if err != nil {
					t.Fatal(err)
				}
				want[m[1]] = n
			}
			if len(want) == 0 {
				t.Fatalf("%s: empty expectations", file)
			}
			opt := DefaultOptions()
			for _, line := range strings.Split(src, "\n") {
				if !strings.Contains(line, "options:") {
					continue
				}
				for _, tok := range strings.Fields(line[strings.Index(line, "options:")+8:]) {
					switch {
					case strings.HasPrefix(tok, "checkers="):
						opt.Checkers = strings.Split(strings.TrimPrefix(tok, "checkers="), ",")
					case strings.HasPrefix(tok, "memory-model="):
						opt.MemoryModel = strings.TrimPrefix(tok, "memory-model=")
					case tok == "intra":
						opt.RequireInterThread = false
					case tok == "no-lock-order":
						opt.LockOrder = false
					}
				}
				break
			}

			res, err := Analyze(src, opt)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			got := map[string]int{}
			for _, r := range res.Reports {
				got[r.Kind]++
			}
			for checker, n := range want {
				if got[checker] != n {
					t.Errorf("%s: %s: got %d reports, want %d", file, checker, got[checker], n)
					for _, r := range res.Reports {
						t.Logf("  report: %v", r)
					}
				}
			}
		})
	}
}

// TestCorpusDeterminism re-analyzes every corpus program and requires
// byte-identical report renderings.
func TestCorpusDeterminism(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.cn"))
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		render := func() string {
			res, err := Analyze(string(data), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, r := range res.Reports {
				b.WriteString(r.String())
				b.WriteString("\n")
				b.WriteString(r.Guard)
				b.WriteString("\n")
			}
			return b.String()
		}
		if a, b := render(), render(); a != b {
			t.Errorf("%s: nondeterministic output:\n--- first\n%s\n--- second\n%s",
				file, a, b)
		}
	}
}
