//go:build ignore

// serve_smoke.go is the `make serve-smoke` gate: an end-to-end exercise of
// the real canaryd binary over real HTTP. It builds canaryd and canary,
// starts the daemon on a random port, submits examples/service/program.cn,
// asserts the daemon's reports equal the CLI's on the same file, replays
// the submission to prove it is served from the content-addressed cache,
// checks /healthz and /metrics, and SIGTERMs the daemon expecting a clean
// drain and exit 0.
//
// Run from the repository root: go run scripts/serve_smoke.go
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"
)

const examplePath = "examples/service/program.cn"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "canary-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	daemonBin := filepath.Join(tmp, "canaryd")
	cliBin := filepath.Join(tmp, "canary")
	for bin, pkg := range map[string]string{daemonBin: "./cmd/canaryd", cliBin: "./cmd/canary"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Start the daemon on a random port and scrape the announced address.
	daemon := exec.Command(daemonBin, "-addr", "127.0.0.1:0")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return err
	}
	exited := false
	defer func() {
		if !exited {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		return fmt.Errorf("daemon exited before announcing its address")
	}
	addr := strings.TrimPrefix(sc.Text(), "canaryd listening on ")
	if addr == sc.Text() {
		return fmt.Errorf("unexpected first stdout line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	base := "http://" + addr
	fmt.Println("serve-smoke: daemon at", base)

	if body, err := get(base + "/healthz"); err != nil {
		return err
	} else if strings.TrimSpace(body) != "ok" {
		return fmt.Errorf("/healthz = %q, want ok", body)
	}

	// Submit the example synchronously.
	src, err := os.ReadFile(examplePath)
	if err != nil {
		return err
	}
	first, err := analyze(base, string(src))
	if err != nil {
		return err
	}
	if first.Status != "done" {
		return fmt.Errorf("cold submission status %q (error %q)", first.Status, first.Error)
	}
	if first.Cached {
		return fmt.Errorf("cold submission claims to be cached")
	}

	// The daemon's reports must equal the CLI's on the same file.
	cliOut, err := exec.Command(cliBin, "-json", "-fail-on-report=false", examplePath).Output()
	if err != nil {
		return fmt.Errorf("canary CLI: %v", err)
	}
	daemonReports, err := reportsOf(first.Result)
	if err != nil {
		return err
	}
	cliReports, err := reportsOf(cliOut)
	if err != nil {
		return err
	}
	list, ok := daemonReports.([]any)
	if !ok || len(list) == 0 {
		return fmt.Errorf("the example produced no report")
	}
	if !reflect.DeepEqual(daemonReports, cliReports) {
		return fmt.Errorf("daemon and CLI reports differ:\ndaemon: %v\ncli: %v", daemonReports, cliReports)
	}
	fmt.Printf("serve-smoke: %d report(s), daemon == CLI\n", len(list))

	// A repeat submission must be served from the content-addressed store,
	// byte-identical to the cold run.
	second, err := analyze(base, string(src))
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("repeat submission not served from cache")
	}
	if !bytes.Equal(second.Result, first.Result) {
		return fmt.Errorf("cached result differs from the cold run")
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"canaryd_jobs_accepted_total 2",
		"canaryd_jobs_completed_total 2",
		"canaryd_jobs_cache_served_total 1",
		"canaryd_result_cache_hits_total 1",
		"canaryd_stage_latency_seconds_count{stage=\"total\"} 1",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	fmt.Println("serve-smoke: cache replay and metrics ok")

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		exited = true
		if err != nil {
			return fmt.Errorf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	fmt.Println("serve-smoke: clean shutdown")
	return nil
}

type jobResponse struct {
	JobID  string          `json:"job_id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func analyze(base, src string) (jobResponse, error) {
	var jr jobResponse
	body, err := json.Marshal(map[string]any{"source": src})
	if err != nil {
		return jr, err
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return jr, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return jr, err
	}
	if resp.StatusCode != http.StatusOK {
		return jr, fmt.Errorf("POST /v1/analyze: %s: %s", resp.Status, buf)
	}
	return jr, json.Unmarshal(buf, &jr)
}

// reportsOf extracts the Reports field of a canary.Result encoding in a
// timing-insensitive form (the wall-clock stats fields are ignored).
func reportsOf(result []byte) (any, error) {
	var res struct {
		Reports any `json:"Reports"`
	}
	if err := json.Unmarshal(result, &res); err != nil {
		return nil, fmt.Errorf("decoding result: %w", err)
	}
	return res.Reports, nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}
