//go:build ignore

// serve_smoke.go is the `make serve-smoke` gate: an end-to-end exercise of
// the real canaryd binary over real HTTP. It builds canaryd and canary,
// starts the daemon on a random port, submits examples/service/program.cn,
// asserts the daemon's reports equal the CLI's on the same file, replays
// the submission to prove it is served from the content-addressed cache,
// checks /healthz and /metrics, and SIGTERMs the daemon expecting a clean
// drain and exit 0.
//
// Run from the repository root: go run scripts/serve_smoke.go
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"time"

	"canary/internal/pipeline"
)

const examplePath = "examples/service/program.cn"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "canary-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	daemonBin := filepath.Join(tmp, "canaryd")
	cliBin := filepath.Join(tmp, "canary")
	for bin, pkg := range map[string]string{daemonBin: "./cmd/canaryd", cliBin: "./cmd/canary"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Start the daemon on a random port and scrape the announced address.
	// The small request-body cap exercises the 413 path cheaply below.
	daemon := exec.Command(daemonBin, "-addr", "127.0.0.1:0", "-max-request-bytes", "65536")
	base, cleanup, err := startDaemon(daemon)
	if err != nil {
		return err
	}
	exited := false
	defer func() {
		if !exited {
			cleanup()
		}
	}()
	fmt.Println("serve-smoke: daemon at", base)

	if body, err := get(base + "/healthz"); err != nil {
		return err
	} else if strings.TrimSpace(body) != "ok" {
		return fmt.Errorf("/healthz = %q, want ok", body)
	}

	// Submit the example synchronously.
	src, err := os.ReadFile(examplePath)
	if err != nil {
		return err
	}
	first, err := analyze(base, string(src))
	if err != nil {
		return err
	}
	if first.Status != "done" {
		return fmt.Errorf("cold submission status %q (error %q)", first.Status, first.Error)
	}
	if first.Cached {
		return fmt.Errorf("cold submission claims to be cached")
	}

	// The daemon's reports must equal the CLI's on the same file.
	cliOut, err := exec.Command(cliBin, "-json", "-fail-on-report=false", examplePath).Output()
	if err != nil {
		return fmt.Errorf("canary CLI: %v", err)
	}
	daemonReports, err := reportsOf(first.Result)
	if err != nil {
		return err
	}
	cliReports, err := reportsOf(cliOut)
	if err != nil {
		return err
	}
	list, ok := daemonReports.([]any)
	if !ok || len(list) == 0 {
		return fmt.Errorf("the example produced no report")
	}
	if !reflect.DeepEqual(daemonReports, cliReports) {
		return fmt.Errorf("daemon and CLI reports differ:\ndaemon: %v\ncli: %v", daemonReports, cliReports)
	}
	fmt.Printf("serve-smoke: %d report(s), daemon == CLI\n", len(list))

	// A repeat submission must be served from the content-addressed store,
	// byte-identical to the cold run.
	second, err := analyze(base, string(src))
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("repeat submission not served from cache")
	}
	if !bytes.Equal(second.Result, first.Result) {
		return fmt.Errorf("cached result differs from the cold run")
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	// Every pipeline registry stage must expose a latency histogram fed by
	// the cold run's trace spans (the warm repeat is cache-served and does
	// not re-observe).
	stageWants := make([]string, 0, 8)
	for _, stage := range pipeline.StageNames() {
		stageWants = append(stageWants,
			fmt.Sprintf("canaryd_stage_latency_seconds_count{stage=%q} 1", stage))
	}
	for _, want := range append(stageWants,
		"canaryd_jobs_accepted_total 2",
		"canaryd_jobs_completed_total 2",
		"canaryd_jobs_cache_served_total 1",
		"canaryd_result_cache_hits_total 1",
		"canaryd_stage_latency_seconds_count{stage=\"total\"} 1",
		"canaryd_budget_exhausted_total{stage=\"fixpoint\"} 0",
		"canaryd_budget_exhausted_total{stage=\"search\"} 0",
		"canaryd_budget_exhausted_total{stage=\"formula\"} 0",
		"canaryd_panics_recovered_total 0",
		"canaryd_quarantined_summaries_total 0",
	) {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	fmt.Println("serve-smoke: cache replay and metrics ok")

	// An oversized body must be refused with 413 (the daemon was started
	// with a 64 KiB cap) and a JSON error, without counting as a job.
	big, err := json.Marshal(map[string]any{"source": strings.Repeat("x", 128<<10)})
	if err != nil {
		return err
	}
	resp, buf, err := post(base+"/v1/analyze", big)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		return fmt.Errorf("oversized body: got %s, want 413 (%s)", resp.Status, buf)
	}
	var e413 struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(buf, &e413); err != nil || e413.Error == "" {
		return fmt.Errorf("413 body is not a JSON error: %s", buf)
	}
	fmt.Println("serve-smoke: 413 on oversized body ok")

	if err := backpressurePhase(daemonBin, string(src)); err != nil {
		return err
	}

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		exited = true
		if err != nil {
			return fmt.Errorf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	fmt.Println("serve-smoke: clean shutdown")
	return nil
}

// startDaemon starts cmd (a canaryd invocation with -addr 127.0.0.1:0),
// scrapes the announced address from its first stdout line, and returns
// the base URL plus a kill-and-reap cleanup.
func startDaemon(cmd *exec.Cmd) (base string, cleanup func(), err error) {
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	cleanup = func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cleanup()
		return "", nil, fmt.Errorf("daemon exited before announcing its address")
	}
	addr := strings.TrimPrefix(sc.Text(), "canaryd listening on ")
	if addr == sc.Text() {
		cleanup()
		return "", nil, fmt.Errorf("unexpected first stdout line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return "http://" + addr, cleanup, nil
}

// backpressurePhase proves the queue-full path: a daemon with one worker,
// a one-slot queue, and an injected 500ms dequeue stall must answer the
// overflow submission with 503 + Retry-After, and the jittered retry
// helper must then get the same submission through.
func backpressurePhase(daemonBin, src string) error {
	daemon := exec.Command(daemonBin, "-addr", "127.0.0.1:0",
		"-max-concurrent", "1", "-queue-depth", "1")
	daemon.Env = append(os.Environ(), "CANARY_FAILPOINTS=job-dequeue=sleep:500ms")
	base, cleanup, err := startDaemon(daemon)
	if err != nil {
		return err
	}
	defer cleanup()

	// Distinct max_dfs_steps values give every submission a distinct
	// content address, so none is answered from the result cache.
	body := func(i int) []byte {
		b, _ := json.Marshal(map[string]any{
			"source": src,
			"async":  true,
			"options": map[string]any{
				"max_dfs_steps": 1 << 20,
				"unroll_depth":  2 + i%2,
				"inline_depth":  6 + i/2,
			},
		})
		return b
	}
	var rejected []byte
	for i := 0; i < 8; i++ {
		resp, buf, err := post(base+"/v1/analyze", body(i))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				return fmt.Errorf("queue-full 503 without a Retry-After header")
			}
			rejected = body(i)
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("async submission %d: got %s (%s)", i, resp.Status, buf)
		}
	}
	if rejected == nil {
		return fmt.Errorf("no 503 after saturating a 1-worker/1-slot daemon")
	}
	resp, buf, err := postRetry(base+"/v1/analyze", rejected, 20)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("retry after 503: got %s (%s)", resp.Status, buf)
	}
	fmt.Println("serve-smoke: 503 backpressure + Retry-After retry ok")
	return nil
}

// post POSTs a JSON body and returns the response with its body read.
func post(url string, body []byte) (*http.Response, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, buf, nil
}

// postRetry is post with backpressure handling: on 503 it waits the
// server's Retry-After (or an exponential fallback) scaled by a random
// jitter in [0.5x, 1.5x) — so herds of rejected clients desynchronize —
// and tries again, up to maxAttempts.
func postRetry(url string, body []byte, maxAttempts int) (*http.Response, []byte, error) {
	backoff := 200 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, buf, err := post(url, body)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt == maxAttempts {
			return resp, buf, nil
		}
		wait := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		time.Sleep(wait/2 + time.Duration(rand.Int63n(int64(wait))))
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

type jobResponse struct {
	JobID  string          `json:"job_id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func analyze(base, src string) (jobResponse, error) {
	var jr jobResponse
	body, err := json.Marshal(map[string]any{"source": src})
	if err != nil {
		return jr, err
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return jr, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return jr, err
	}
	if resp.StatusCode != http.StatusOK {
		return jr, fmt.Errorf("POST /v1/analyze: %s: %s", resp.Status, buf)
	}
	return jr, json.Unmarshal(buf, &jr)
}

// reportsOf extracts the Reports field of a canary.Result encoding in a
// timing-insensitive form (the wall-clock stats fields are ignored).
func reportsOf(result []byte) (any, error) {
	var res struct {
		Reports any `json:"Reports"`
	}
	if err := json.Unmarshal(result, &res); err != nil {
		return nil, fmt.Errorf("decoding result: %w", err)
	}
	return res.Reports, nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}
