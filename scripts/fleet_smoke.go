//go:build ignore

// fleet_smoke.go is the `make fleet-smoke` gate: a real canary-router in
// front of two real canaryd workers, over real HTTP. It batch-submits a
// small corpus through the router, asserts every item's findings are
// byte-identical to a direct in-process library run, replays the batch to
// prove owner-local caching, then SIGKILLs one worker and submits again —
// including a fresh item whose shard owner is the dead worker — asserting
// the router fails over, nothing is lost, and the findings stay
// byte-identical. The router must end the run reporting the victim down
// and at least one failover, and must still drain cleanly on SIGTERM.
//
// Run from the repository root: go run scripts/fleet_smoke.go
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/fleet"
)

const smokeItems = 6

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleet-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("fleet-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "canary-fleet-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	daemonBin := filepath.Join(tmp, "canaryd")
	routerBin := filepath.Join(tmp, "canary-router")
	for bin, pkg := range map[string]string{daemonBin: "./cmd/canaryd", routerBin: "./cmd/canary-router"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Two workers on random ports.
	var workers []*proc
	defer func() {
		for _, p := range workers {
			p.kill()
		}
	}()
	var urls []string
	for i := 0; i < 2; i++ {
		p, err := startProc(exec.Command(daemonBin, "-addr", "127.0.0.1:0"), "canaryd listening on ")
		if err != nil {
			return err
		}
		workers = append(workers, p)
		urls = append(urls, "http://"+p.addr)
	}

	// The router in front of them, with a short failover backoff so the
	// post-kill batch settles quickly.
	router, err := startProc(exec.Command(routerBin,
		"-addr", "127.0.0.1:0",
		"-workers", strings.Join(urls, ","),
		"-retry-backoff", "10ms",
		"-health-interval", "250ms"), "canary-router listening on ")
	if err != nil {
		return err
	}
	defer router.kill()
	base := "http://" + router.addr
	fmt.Println("fleet-smoke: router at", base, "workers at", strings.Join(urls, ", "))

	if err := waitWorkersUp(base, 2); err != nil {
		return err
	}

	// The corpus: the service example plus distinct padding per item, so
	// every item has its own content address and shard owner.
	example, err := os.ReadFile("examples/service/program.cn")
	if err != nil {
		return err
	}
	corpus := make([]api.AnalyzeItem, smokeItems)
	for i := range corpus {
		corpus[i] = api.AnalyzeItem{Source: padSource(string(example), i)}
	}

	// Direct baseline: the library, in this process. The determinism
	// contract makes these findings the only acceptable output no matter
	// which worker computes an item.
	direct := make([]string, smokeItems)
	for i, it := range corpus {
		if direct[i], err = directFindings(it.Source); err != nil {
			return fmt.Errorf("direct baseline item %d: %w", i, err)
		}
	}

	// Cold batch through the router: all items done, findings identical.
	cold, err := postBatch(base, corpus)
	if err != nil {
		return err
	}
	if cold.Failed != 0 || cold.Completed != smokeItems {
		return fmt.Errorf("cold batch: %d completed, %d failed", cold.Completed, cold.Failed)
	}
	if err := compareFindings(cold.Items, direct); err != nil {
		return fmt.Errorf("cold batch: %w", err)
	}
	fmt.Println("fleet-smoke: cold batch identical to direct run")

	// Warm replay: every item served from its shard owner's cache.
	warm, err := postBatch(base, corpus)
	if err != nil {
		return err
	}
	cached := 0
	for _, it := range warm.Items {
		if it.Cached {
			cached++
		}
	}
	if cached != smokeItems {
		return fmt.Errorf("warm batch: %d/%d items cache-served", cached, smokeItems)
	}
	if err := compareFindings(warm.Items, direct); err != nil {
		return fmt.Errorf("warm batch: %w", err)
	}
	fmt.Println("fleet-smoke: warm batch fully cache-served")

	// Kill the worker that owns item 0, then resubmit the corpus plus a
	// fresh item the victim also owns: the cached items owned by the
	// victim and the fresh item must all fail over to the survivor and
	// come back byte-identical.
	ring := fleet.NewRing(urls)
	victimURL := ring.Owner(canary.SubmissionKey(corpus[0].Source, canary.DefaultOptions()))
	var victim *proc
	for i, u := range urls {
		if u == victimURL {
			victim = workers[i]
		}
	}
	fresh := freshVictimItem(string(example), ring, victimURL)
	freshDirect, err := directFindings(fresh.Source)
	if err != nil {
		return err
	}
	victim.cmd.Process.Kill()
	victim.cmd.Wait()
	victim.dead = true
	fmt.Println("fleet-smoke: killed worker", victimURL)

	after, err := postBatch(base, append(append([]api.AnalyzeItem{}, corpus...), fresh))
	if err != nil {
		return err
	}
	if after.Failed != 0 || after.Completed != smokeItems+1 {
		return fmt.Errorf("post-kill batch: %d completed, %d failed", after.Completed, after.Failed)
	}
	if err := compareFindings(after.Items, append(append([]string{}, direct...), freshDirect)); err != nil {
		return fmt.Errorf("post-kill batch: %w", err)
	}
	fmt.Println("fleet-smoke: post-kill batch identical (failover transparent)")

	// The router must have failed over at least once and, once the prober
	// catches up, report the victim down.
	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	var failovers uint64
	fmt.Sscanf(lineWith(metrics, "router_failovers_total "), "router_failovers_total %d", &failovers)
	if failovers == 0 {
		return fmt.Errorf("router_failovers_total is 0 after killing a worker:\n%s", metrics)
	}
	if err := waitWorkerState(base, victimURL, "down"); err != nil {
		return err
	}
	fmt.Printf("fleet-smoke: %d failover(s), victim reported down\n", failovers)

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := router.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- router.cmd.Wait() }()
	select {
	case err := <-waitErr:
		router.dead = true
		if err != nil {
			return fmt.Errorf("router exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("router did not exit within 30s of SIGTERM")
	}
	fmt.Println("fleet-smoke: clean router shutdown")
	return nil
}

// proc is one spawned child with the address scraped from its first
// stdout line.
type proc struct {
	addr string
	cmd  *exec.Cmd
	dead bool
}

func (p *proc) kill() {
	if p == nil || p.dead {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.dead = true
}

// startProc starts cmd, scrapes "<prefix><addr>" from its first stdout
// line, and keeps the pipe drained.
func startProc(cmd *exec.Cmd, prefix string) (*proc, error) {
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		p.kill()
		return nil, fmt.Errorf("%s exited before announcing its address", cmd.Path)
	}
	p.addr = strings.TrimPrefix(sc.Text(), prefix)
	if p.addr == sc.Text() {
		p.kill()
		return nil, fmt.Errorf("unexpected first stdout line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout)
	return p, nil
}

// padSource gives the shared example a distinct content address per item.
// The padding shape matches the fleet bench corpus.
func padSource(base string, i int) string {
	return fmt.Sprintf("%s\nfunc fleetsmokepad%d() { p%d = malloc(); }", base, i, i)
}

// freshVictimItem searches pad variants until one's shard owner is the
// victim, so the post-kill batch provably contains work the dead worker
// owned.
func freshVictimItem(base string, ring *fleet.Ring, victimURL string) api.AnalyzeItem {
	for i := 0; ; i++ {
		src := fmt.Sprintf("%s\nfunc fleetsmokefresh%d() { q%d = malloc(); }", base, i, i)
		if ring.Owner(canary.SubmissionKey(src, canary.DefaultOptions())) == victimURL {
			return api.AnalyzeItem{Source: src}
		}
	}
}

// directFindings runs the library in-process and returns the compacted
// findings bytes.
func directFindings(src string) (string, error) {
	r, err := canary.Analyze(src, canary.DefaultOptions())
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return findingsOf(raw)
}

// findingsOf extracts the compacted Reports array from a serialized
// result (timings vary run to run; the findings bytes may not).
func findingsOf(result json.RawMessage) (string, error) {
	var m struct {
		Reports json.RawMessage `json:"Reports"`
	}
	if err := json.Unmarshal(result, &m); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, m.Reports); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// compareFindings checks every batch item's findings against the direct
// baseline, byte for byte.
func compareFindings(items []api.JobResponse, want []string) error {
	if len(items) != len(want) {
		return fmt.Errorf("%d items in response, want %d", len(items), len(want))
	}
	for i, it := range items {
		if it.Status != "done" {
			return fmt.Errorf("item %d status %q (error %q)", i, it.Status, it.Error)
		}
		got, err := findingsOf(it.Result)
		if err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
		if got != want[i] {
			return fmt.Errorf("item %d findings differ from the direct run:\nrouted: %s\ndirect: %s", i, got, want[i])
		}
	}
	return nil
}

// postBatch submits items as one batch request.
func postBatch(base string, items []api.AnalyzeItem) (*api.BatchResponse, error) {
	body, err := json.Marshal(api.AnalyzeRequest{Items: items})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch POST /v1/analyze: %s: %s", resp.Status, buf)
	}
	var br api.BatchResponse
	return &br, json.Unmarshal(buf, &br)
}

// routerHealth is the router's /healthz?format=json body.
type routerHealth struct {
	Status  string `json:"status"`
	Workers []struct {
		URL   string `json:"url"`
		State string `json:"state"`
	} `json:"workers"`
}

func getHealth(base string) (routerHealth, error) {
	var h routerHealth
	resp, err := http.Get(base + "/healthz?format=json")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// waitWorkersUp polls the router until want workers report "up".
func waitWorkersUp(base string, want int) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		h, err := getHealth(base)
		if err == nil {
			up := 0
			for _, w := range h.Workers {
				if w.State == "up" {
					up++
				}
			}
			if up >= want {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("router never reported %d workers up", want)
}

// waitWorkerState polls the router until worker url reports state.
func waitWorkerState(base, url, state string) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		h, err := getHealth(base)
		if err == nil {
			for _, w := range h.Workers {
				if w.URL == url && w.State == state {
					return nil
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("router never reported %s %s", url, state)
}

func lineWith(text, prefix string) string {
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, prefix) {
			return ln
		}
	}
	return ""
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}
