//go:build ignore

// sessions_smoke.go is the `make sessions-smoke` gate: an end-to-end
// exercise of the live-session surface of a real canaryd over real
// HTTP. It builds canaryd, starts it with a short idle TTL, opens a
// session on a buggy program, streams three edits (a comment-only save,
// a semantic insertion asserted against its revision, and a fix that
// deletes the bug), folds every returned delta client-side and checks
// the fold byte-identical to GET findings, exercises the duplicate-open
// and malformed/unappliable edit rejections, waits for the idle janitor
// to evict the session, and SIGTERMs the daemon expecting a clean exit.
//
// Run from the repository root: go run scripts/sessions_smoke.go
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"canary"
	"canary/internal/api"
)

// smokeSrc is the same inter-thread use-after-free the server unit
// tests use; line 1 is blank, main spans lines 2-7, worker 8-12, and
// the free that completes the bug sits on line 11.
const smokeSrc = `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sessions-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("sessions-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "canary-sessions-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "canaryd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/canaryd").CombinedOutput(); err != nil {
		return fmt.Errorf("building canaryd: %v\n%s", err, out)
	}

	// A one-second idle TTL gives the janitor a 250ms sweep, so the
	// eviction phase completes in a couple of seconds.
	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-session-idle-ttl", "1s")
	base, cleanup, err := startDaemon(daemon)
	if err != nil {
		return err
	}
	exited := false
	defer func() {
		if !exited {
			cleanup()
		}
	}()
	fmt.Println("sessions-smoke: daemon at", base)

	// Open a named session; its delta is the full initial findings.
	status, body, err := post(base+"/v1/sessions",
		mustJSON(map[string]any{"session_id": "smoke-ide", "source": smokeSrc}))
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		return fmt.Errorf("open: status %d, body %s", status, body)
	}
	var open api.DeltaResponse
	if err := json.Unmarshal(body, &open); err != nil {
		return err
	}
	if open.SessionID != "smoke-ide" || open.Seq != 0 || !open.Reanalyzed {
		return fmt.Errorf("open delta malformed: %s", body)
	}
	if len(open.Added) == 0 {
		return fmt.Errorf("opening a buggy program added no findings")
	}
	folded, err := canary.FoldDelta(nil, &open.FindingsDelta)
	if err != nil {
		return err
	}
	sess := base + "/v1/sessions/smoke-ide"
	fmt.Printf("sessions-smoke: open seq 0, %d finding(s)\n", len(open.Added))

	// Re-opening the same client-chosen ID must be refused with a typed
	// 409 while the first session stays untouched.
	status, body, err = post(base+"/v1/sessions",
		mustJSON(map[string]any{"session_id": "smoke-ide", "source": smokeSrc}))
	if err != nil {
		return err
	}
	if status != http.StatusConflict || errCode(body) != api.CodeDuplicateSession {
		return fmt.Errorf("duplicate open: status %d code %q, want 409 %q (%s)",
			status, errCode(body), api.CodeDuplicateSession, body)
	}

	// Edit 1: a trailing comment. Canonically a no-op — the session must
	// answer without re-analysis and carry every finding forward.
	d1, err := edit(sess, `{"edits":[{"start":13,"end":13,"text":"// reviewed\n"}]}`)
	if err != nil {
		return err
	}
	if d1.Reanalyzed || d1.Seq != 1 || d1.Unchanged != len(folded) {
		return fmt.Errorf("trivial edit: want seq 1 !reanalyzed unchanged=%d, got %+v", len(folded), d1)
	}
	if folded, err = canary.FoldDelta(folded, &d1.FindingsDelta); err != nil {
		return err
	}

	// Edit 2: a semantic insertion into main, asserted against revision
	// 1. The delta must come from a real warm re-run that invalidated
	// only the edited function's cone.
	d2, err := edit(sess, `{"seq":1,"edits":[{"start":3,"end":3,"text":"  pad1 = malloc();\n"}]}`)
	if err != nil {
		return err
	}
	if !d2.Reanalyzed || d2.Seq != 2 || len(d2.Invalidated) == 0 {
		return fmt.Errorf("semantic edit: want seq 2 reanalyzed with invalidated funcs, got %+v", d2)
	}
	if folded, err = canary.FoldDelta(folded, &d2.FindingsDelta); err != nil {
		return err
	}

	// Edit 3: delete the free that completes the use-after-free (line 11
	// of the original, shifted to 12 by edit 2). The bug must resolve.
	d3, err := edit(sess, `{"seq":2,"edits":[{"start":12,"end":13,"text":""}]}`)
	if err != nil {
		return err
	}
	if !d3.Reanalyzed || d3.Seq != 3 || len(d3.Resolved) == 0 {
		return fmt.Errorf("fix edit: want seq 3 with resolved findings, got %+v", d3)
	}
	if folded, err = canary.FoldDelta(folded, &d3.FindingsDelta); err != nil {
		return err
	}
	fmt.Printf("sessions-smoke: three edits streamed, %d finding(s) remain\n", len(folded))

	// Malformed and unappliable edits: a zero start line is refused at
	// the wire (400), a span beyond EOF by the engine (422) — and
	// neither advances the revision.
	status, body, err = post(sess+"/edits", []byte(`{"edits":[{"start":0,"end":0,"text":"x"}]}`))
	if err != nil {
		return err
	}
	if status != http.StatusBadRequest {
		return fmt.Errorf("zero start line: status %d, want 400 (%s)", status, body)
	}
	status, body, err = post(sess+"/edits", []byte(`{"edits":[{"start":99,"end":99,"text":"x = 1;\n"}]}`))
	if err != nil {
		return err
	}
	if status != http.StatusUnprocessableEntity || errCode(body) != api.CodeEditRejected {
		return fmt.Errorf("out-of-range span: status %d code %q, want 422 %q (%s)",
			status, errCode(body), api.CodeEditRejected, body)
	}

	// The accumulated client-side fold must be byte-identical to the
	// server's own findings snapshot.
	status, body, err = get(sess + "/findings")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("findings: status %d (%s)", status, body)
	}
	var fr api.FindingsResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		return err
	}
	if fr.Seq != 3 {
		return fmt.Errorf("findings seq %d after three edits, want 3", fr.Seq)
	}
	fj, _ := json.Marshal(folded)
	sj, _ := json.Marshal(fr.Reports)
	if !bytes.Equal(fj, sj) {
		return fmt.Errorf("folded deltas differ from server findings:\nfold:   %s\nserver: %s", fj, sj)
	}
	fmt.Println("sessions-smoke: folded deltas byte-identical to GET findings")

	// Idle eviction: after a second with no traffic the janitor must
	// collect the session and count it as a TTL eviction. Every probe
	// itself counts as a touch and restarts the idle clock, so wait out
	// a full TTL-plus-sweep between probes rather than busy-polling.
	evicted := false
	for attempt := 0; attempt < 5 && !evicted; attempt++ {
		time.Sleep(1500 * time.Millisecond)
		status, body, err = get(sess + "/findings")
		if err != nil {
			return err
		}
		if status == http.StatusNotFound {
			if errCode(body) != api.CodeUnknownSession {
				return fmt.Errorf("evicted session code %q, want %q", errCode(body), api.CodeUnknownSession)
			}
			evicted = true
		}
	}
	if !evicted {
		return fmt.Errorf("session not evicted after its 1s idle TTL")
	}
	status, body, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("/metrics: status %d", status)
	}
	for _, want := range []string{
		"canaryd_sessions_open 0",
		"canaryd_sessions_evicted_ttl_total 1",
		"canaryd_session_edits_total 3",
		"canaryd_session_trivial_edits_total 1",
		"canaryd_session_edits_rejected_total 1",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	fmt.Println("sessions-smoke: TTL eviction and session metrics ok")

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		exited = true
		if err != nil {
			return fmt.Errorf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	fmt.Println("sessions-smoke: clean shutdown")
	return nil
}

// startDaemon starts cmd (a canaryd invocation with -addr 127.0.0.1:0),
// scrapes the announced address from its first stdout line, and returns
// the base URL plus a kill-and-reap cleanup.
func startDaemon(cmd *exec.Cmd) (base string, cleanup func(), err error) {
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	cleanup = func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cleanup()
		return "", nil, fmt.Errorf("daemon exited before announcing its address")
	}
	addr := strings.TrimPrefix(sc.Text(), "canaryd listening on ")
	if addr == sc.Text() {
		cleanup()
		return "", nil, fmt.Errorf("unexpected first stdout line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return "http://" + addr, cleanup, nil
}

// edit POSTs one edit batch and decodes the 200 delta response.
func edit(sess, body string) (*api.DeltaResponse, error) {
	status, buf, err := post(sess+"/edits", []byte(body))
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("edit %s: status %d (%s)", body, status, buf)
	}
	var dr api.DeltaResponse
	if err := json.Unmarshal(buf, &dr); err != nil {
		return nil, err
	}
	return &dr, nil
}

func post(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	return resp.StatusCode, buf, err
}

func get(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	return resp.StatusCode, buf, err
}

// errCode extracts the machine code of a typed JSON error body.
func errCode(body []byte) string {
	var e api.ErrorResponse
	_ = json.Unmarshal(body, &e)
	return e.Code
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
