//go:build ignore

// chaos_smoke.go is the `make chaos-smoke` gate: a real canary-router
// and three real canaryd workers wired together purely by gossip
// (-join; no static worker list anywhere), driven through scripted
// chaos rounds over real HTTP and real signals:
//
//   - baseline: the corpus streams clean through the learned ring;
//   - sigkill:  a worker dies mid-service; the stream survives on
//     failover and the membership protocol marks it dead;
//   - rejoin:   the same identity restarts (incarnation 0, warm disk
//     store), refutes its own death, and retakes its shard;
//   - pause:    SIGSTOP parks a worker in the suspect state (observed
//     via the router's gossip table) while the stream hedges around
//     it; SIGCONT resurrects it with no restart;
//   - storm:    a worker restarts with CANARY_FAILPOINTS arming its
//     peer-cache and disk-store sites; degradation must stay invisible.
//
// Every round asserts findings byte-identical to a direct in-process
// library run, no item lost (the client allows one retry per item),
// and membership convergence within a bounded number of heartbeats.
// The run is single-CPU friendly: the signals are identity and
// convergence, never throughput.
//
// Run from the repository root: go run scripts/chaos_smoke.go
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"canary"
	"canary/internal/api"
)

const (
	smokeItems     = 6
	gossipInterval = 150 * time.Millisecond
	heartbeatBound = 120 // max heartbeats for any membership event to converge
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("chaos-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "canary-chaos-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	daemonBin := filepath.Join(tmp, "canaryd")
	routerBin := filepath.Join(tmp, "canary-router")
	for bin, pkg := range map[string]string{daemonBin: "./cmd/canaryd", routerBin: "./cmd/canary-router"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Fixed worker addresses (restart must reuse the identity) and
	// persistent cache dirs (restart must come back warm).
	const nWorkers = 3
	addrs := make([]string, nWorkers)
	urls := make([]string, nWorkers)
	dirs := make([]string, nWorkers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		urls[i] = "http://" + addrs[i]
		dirs[i] = filepath.Join(tmp, fmt.Sprintf("w%d", i))
	}
	seeds := strings.Join(urls, ",")

	startWorker := func(i int, extraEnv ...string) (*proc, error) {
		cmd := exec.Command(daemonBin,
			"-addr", addrs[i],
			"-join", seeds,
			"-advertise", urls[i],
			"-gossip-interval", gossipInterval.String(),
			"-cache-dir", dirs[i])
		if len(extraEnv) > 0 {
			cmd.Env = append(os.Environ(), extraEnv...)
		}
		return startProc(cmd, "canaryd listening on ")
	}

	workers := make([]*proc, nWorkers)
	defer func() {
		for _, p := range workers {
			p.kill()
		}
	}()
	for i := range workers {
		if workers[i], err = startWorker(i); err != nil {
			return err
		}
	}

	// The router knows nothing but the seeds: its whole worker set must
	// arrive through gossip.
	router, err := startProc(exec.Command(routerBin,
		"-addr", "127.0.0.1:0",
		"-join", seeds,
		"-gossip-interval", gossipInterval.String(),
		"-retry-backoff", "10ms",
		"-health-interval", "250ms",
		"-timeout", "8s",
		"-hedge-min", "100ms"), "canary-router listening on ")
	if err != nil {
		return err
	}
	defer router.kill()
	base := "http://" + router.addr
	fmt.Println("chaos-smoke: router at", base, "joined to", seeds)

	hb, err := waitMembers(base, func(ms []api.GossipMember) bool {
		return countWorkers(ms, api.GossipAlive) == nWorkers
	}, 30*time.Second)
	if err != nil {
		return fmt.Errorf("initial convergence: %w", err)
	}
	fmt.Printf("chaos-smoke: router learned %d workers in %.1f heartbeats\n", nWorkers, hb)

	// Corpus and direct baseline.
	example, err := os.ReadFile("examples/service/program.cn")
	if err != nil {
		return err
	}
	corpus := make([]string, smokeItems)
	direct := make([]string, smokeItems)
	for i := range corpus {
		corpus[i] = fmt.Sprintf("%s\nfunc chaossmokepad%d() { p%d = malloc(); }", example, i, i)
		if direct[i], err = directFindings(corpus[i]); err != nil {
			return fmt.Errorf("direct baseline item %d: %w", i, err)
		}
	}

	// Round: baseline.
	if err := streamRound("baseline", base, corpus, direct); err != nil {
		return err
	}

	// Round: SIGKILL. The stream runs against a fleet with a fresh
	// corpse in it; convergence to dead is asserted afterwards.
	workers[1].cmd.Process.Kill()
	workers[1].cmd.Wait()
	workers[1].dead = true
	fmt.Println("chaos-smoke: SIGKILLed", urls[1])
	if err := streamRound("sigkill", base, corpus, direct); err != nil {
		return err
	}
	hb, err = waitMembers(base, func(ms []api.GossipMember) bool {
		return stateOf(ms, urls[1]) == api.GossipDead
	}, 60*time.Second)
	if err != nil {
		return fmt.Errorf("death detection: %w", err)
	}
	if hb > heartbeatBound {
		return fmt.Errorf("death detection took %.1f heartbeats, bound %d", hb, heartbeatBound)
	}
	fmt.Printf("chaos-smoke: victim marked dead in %.1f heartbeats, no survivor restarted\n", hb)

	// Round: rejoin. Same address, same disk store, incarnation 0 — the
	// protocol must let it refute its recorded death and rejoin.
	if workers[1], err = startWorker(1); err != nil {
		return fmt.Errorf("rejoin restart: %w", err)
	}
	hb, err = waitMembers(base, func(ms []api.GossipMember) bool {
		return stateOf(ms, urls[1]) == api.GossipAlive
	}, 60*time.Second)
	if err != nil {
		return fmt.Errorf("rejoin: %w", err)
	}
	if hb > heartbeatBound {
		return fmt.Errorf("rejoin took %.1f heartbeats, bound %d", hb, heartbeatBound)
	}
	fmt.Printf("chaos-smoke: victim rejoined alive in %.1f heartbeats\n", hb)
	if err := streamRound("rejoin", base, corpus, direct); err != nil {
		return err
	}

	// Round: pause. SIGSTOP is not death: the worker must surface as
	// suspect (observed through the router's gossip table), the stream
	// must hedge or fail over around it, and SIGCONT must bring it back
	// alive with no restart and no ring churn.
	syscall.Kill(workers[2].cmd.Process.Pid, syscall.SIGSTOP)
	fmt.Println("chaos-smoke: SIGSTOPed", urls[2])
	if _, err = waitMembers(base, func(ms []api.GossipMember) bool {
		return stateOf(ms, urls[2]) == api.GossipSuspect
	}, 60*time.Second); err != nil {
		return fmt.Errorf("suspect state never observed: %w", err)
	}
	fmt.Println("chaos-smoke: paused worker observed suspect")
	if err := streamRound("pause", base, corpus, direct); err != nil {
		return err
	}
	syscall.Kill(workers[2].cmd.Process.Pid, syscall.SIGCONT)
	hb, err = waitMembers(base, func(ms []api.GossipMember) bool {
		return stateOf(ms, urls[2]) == api.GossipAlive
	}, 60*time.Second)
	if err != nil {
		return fmt.Errorf("post-SIGCONT recovery: %w", err)
	}
	fmt.Printf("chaos-smoke: resumed worker back alive in %.1f heartbeats\n", hb)

	// Round: failpoint storm. A worker restarts with its degradation
	// paths injecting intermittent faults; the answers must not change.
	workers[0].cmd.Process.Kill()
	workers[0].cmd.Wait()
	workers[0].dead = true
	storm := "CANARY_FAILPOINTS=peer-fetch=error@2;disk-read=error@2;disk-write=error@3;cache-read=error@5"
	if workers[0], err = startWorker(0, storm); err != nil {
		return fmt.Errorf("storm restart: %w", err)
	}
	if _, err = waitMembers(base, func(ms []api.GossipMember) bool {
		return stateOf(ms, urls[0]) == api.GossipAlive
	}, 60*time.Second); err != nil {
		return fmt.Errorf("storm rejoin: %w", err)
	}
	if err := streamRound("storm", base, corpus, direct); err != nil {
		return err
	}

	// The healed fleet: all three workers back in the router's ring.
	if err := waitWorkersUp(base, nWorkers); err != nil {
		return err
	}

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := router.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- router.cmd.Wait() }()
	select {
	case err := <-waitErr:
		router.dead = true
		if err != nil {
			return fmt.Errorf("router exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("router did not exit within 30s of SIGTERM")
	}
	fmt.Println("chaos-smoke: clean router shutdown")
	return nil
}

// streamRound pushes every corpus item through the router as a
// single-item request with a budget of one retry, asserting findings
// byte-identical to the direct baseline and nothing lost.
func streamRound(name, base string, corpus, direct []string) error {
	retries, t0 := 0, time.Now()
	for i, src := range corpus {
		got, r, err := streamOne(base, src)
		retries += r
		if err != nil {
			return fmt.Errorf("round %s item %d lost: %w", name, i, err)
		}
		if got != direct[i] {
			return fmt.Errorf("round %s item %d findings differ from the direct run:\nrouted: %s\ndirect: %s", name, i, got, direct[i])
		}
	}
	fmt.Printf("chaos-smoke: round %-8s %d/%d identical, %d retries, %v\n",
		name, len(corpus), len(corpus), retries, time.Since(t0).Round(time.Millisecond))
	return nil
}

// streamOne submits one source, retrying a retryable answer (transport
// error, 502/503/504) exactly once, honoring Retry-After.
func streamOne(base, src string) (findings string, retries int, err error) {
	body, _ := json.Marshal(api.AnalyzeRequest{Source: src})
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			retries++
			time.Sleep(500 * time.Millisecond)
		}
		hc := &http.Client{Timeout: 2 * time.Minute}
		resp, err := hc.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		respBody, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil || resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout {
			lastErr = fmt.Errorf("status %d (%v): %s", resp.StatusCode, readErr, respBody)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return "", retries, fmt.Errorf("status %d: %s", resp.StatusCode, respBody)
		}
		var jr api.JobResponse
		if err := json.Unmarshal(respBody, &jr); err != nil {
			return "", retries, err
		}
		if jr.Status != "done" {
			return "", retries, fmt.Errorf("job %s: %s", jr.Status, jr.Error)
		}
		got, err := findingsOf(jr.Result)
		return got, retries, err
	}
	return "", retries, lastErr
}

// waitMembers polls the router's GET /v1/gossip table until pred holds,
// returning the wait in gossip heartbeats.
func waitMembers(base string, pred func([]api.GossipMember) bool, timeout time.Duration) (float64, error) {
	t0 := time.Now()
	deadline := t0.Add(timeout)
	var last []api.GossipMember
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/gossip")
		if err == nil {
			var gr api.GossipResponse
			if json.NewDecoder(resp.Body).Decode(&gr) == nil {
				last = gr.Members
			}
			resp.Body.Close()
			if pred(last) {
				return float64(time.Since(t0)) / float64(gossipInterval), nil
			}
		}
		time.Sleep(gossipInterval / 3)
	}
	return -1, fmt.Errorf("gossip table never satisfied the predicate; last: %+v", last)
}

func countWorkers(ms []api.GossipMember, state string) int {
	n := 0
	for _, m := range ms {
		if m.Role == api.RoleWorker && m.State == state {
			n++
		}
	}
	return n
}

func stateOf(ms []api.GossipMember, id string) string {
	for _, m := range ms {
		if m.ID == id {
			return m.State
		}
	}
	return ""
}

// proc is one spawned child with the address scraped from its first
// stdout line.
type proc struct {
	addr string
	cmd  *exec.Cmd
	dead bool
}

func (p *proc) kill() {
	if p == nil || p.dead {
		return
	}
	// SIGCONT first: killing a SIGSTOPed process leaves it stopped
	// until the signal is delivered on resume.
	syscall.Kill(p.cmd.Process.Pid, syscall.SIGCONT)
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.dead = true
}

// startProc starts cmd, scrapes "<prefix><addr>" from its first stdout
// line, and keeps the pipe drained.
func startProc(cmd *exec.Cmd, prefix string) (*proc, error) {
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		p.kill()
		return nil, fmt.Errorf("%s exited before announcing its address", cmd.Path)
	}
	p.addr = strings.TrimPrefix(sc.Text(), prefix)
	if p.addr == sc.Text() {
		p.kill()
		return nil, fmt.Errorf("unexpected first stdout line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout)
	return p, nil
}

// directFindings runs the library in-process and returns the compacted
// findings bytes.
func directFindings(src string) (string, error) {
	r, err := canary.Analyze(src, canary.DefaultOptions())
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return findingsOf(raw)
}

// routerHealth is the router's /healthz?format=json body.
type routerHealth struct {
	Status  string `json:"status"`
	Workers []struct {
		URL   string `json:"url"`
		State string `json:"state"`
	} `json:"workers"`
}

// waitWorkersUp polls the router until want workers report "up".
func waitWorkersUp(base string, want int) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz?format=json")
		if err == nil {
			var h routerHealth
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil {
				up := 0
				for _, w := range h.Workers {
					if w.State == "up" {
						up++
					}
				}
				if up >= want {
					return nil
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("router never reported %d workers up", want)
}

// findingsOf extracts the compacted Reports array from a serialized
// result (timings vary run to run; the findings bytes may not).
func findingsOf(result json.RawMessage) (string, error) {
	var m struct {
		Reports json.RawMessage `json:"Reports"`
	}
	if err := json.Unmarshal(result, &m); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, m.Reports); err != nil {
		return "", err
	}
	return buf.String(), nil
}
