package canary

import (
	"fmt"

	"canary/internal/guard"
)

// hardQuery builds an unsatisfiable pigeonhole instance PHP(n+1, n) mixed
// with an order-atom chain, approximating a hard aggregated path
// constraint. Used by the solver and cube-and-conquer benchmarks.
func hardQuery(holes int) (*guard.Pool, []*guard.Formula) {
	pool := guard.NewPool()
	pigeons := holes + 1
	at := func(p, h int) *guard.Formula {
		return guard.Var(pool.Bool(fmt.Sprintf("p%dh%d", p, h)))
	}
	var formulas []*guard.Formula
	for p := 0; p < pigeons; p++ {
		var d []*guard.Formula
		for h := 0; h < holes; h++ {
			d = append(d, at(p, h))
		}
		formulas = append(formulas, guard.Or(d...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				formulas = append(formulas, guard.Or(guard.Not(at(p1, h)), guard.Not(at(p2, h))))
			}
		}
	}
	// A satisfiable order chain on the side (the solver must still refute
	// the boolean part).
	for i := 0; i < holes; i++ {
		formulas = append(formulas, guard.Var(pool.Order(i, i+1)))
	}
	return pool, formulas
}
