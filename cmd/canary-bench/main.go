// Command canary-bench regenerates the paper's evaluation tables and
// figures over the synthetic subject catalogue:
//
//	canary-bench -experiment fig7a    # VFG construction time (Fig. 7a)
//	canary-bench -experiment fig7b    # VFG construction memory (Fig. 7b)
//	canary-bench -experiment fig8     # Canary scalability + linear fits (Fig. 8)
//	canary-bench -experiment table1   # bug-hunting comparison (Table 1)
//	canary-bench -experiment parallel # worker-pool sweep + SMT-cache replay
//	canary-bench -experiment serve    # canaryd scheduler: cold/warm phases, cache hits, queue depth
//	canary-bench -experiment incremental # one-edit re-analysis: cold vs warm session latency and reuse rates
//	canary-bench -experiment trace    # per-stage wall-clock split of one analysis (the pipeline registry spans)
//	canary-bench -experiment hotpath  # allocs/op, B/op, ns/op of the hot-path representations vs the recorded pre-overhaul baseline
//	canary-bench -experiment persist  # warm restarts: fresh-process cold vs disk-warm latency, hit rates, store size
//	canary-bench -experiment fleet    # horizontal scale: N daemon processes behind the router, throughput, peer cache tier, dedup, routing invariance
//	canary-bench -experiment chaos    # self-healing: gossip-joined fleet under SIGKILL/restart/SIGSTOP/failpoint rounds, byte-identity and convergence gates
//	canary-bench -experiment sessions # edit-native protocol: per-edit session delta vs full warm re-run, fold-identity and median-latency gates
//	canary-bench -experiment all
//
// -json replaces the text tables with one JSON object holding the raw
// measurements of the selected experiments.
//
// Subject sizes and the per-tool timeout are scaled-down stand-ins for the
// paper's testbed (see DESIGN.md); -scale and -timeout control them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"canary/internal/bench"
	"canary/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig7a | fig7b | fig8 | table1 | parallel | all")
		scale      = flag.Float64("scale", 0.004, "lines per project LoC (subject size scale)")
		subjects   = flag.Int("subjects", 20, "how many catalogue subjects to run (prefix)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-baseline timeout (the paper's 12h, scaled)")
		sweepN     = flag.Int("sweep", 6, "number of Fig. 8 sweep points")
		sweepMin   = flag.Int("sweep-min", 500, "smallest Fig. 8 subject (lines)")
		sweepMax   = flag.Int("sweep-max", 16000, "largest Fig. 8 subject (lines)")
		parLines   = flag.Int("parallel-lines", 3200, "subject size for the parallel worker sweep")
		srvClients = flag.Int("serve-clients", 8, "concurrent submitters in the serve experiment")
		srvPerCli  = flag.Int("serve-requests", 6, "requests per submitter in the serve experiment")
		srvLines   = flag.Int("serve-lines", 400, "subject size for the serve experiment")
		incrLines  = flag.Int("incr-lines", 2600, "subject size for the incremental experiment")
		incrIters  = flag.Int("incr-iters", 3, "cold/warm repetitions in the incremental experiment (best-of)")
		traceLines = flag.Int("trace-lines", 2600, "subject size for the trace experiment")
		hpLines    = flag.Int("hotpath-lines", 2600, "subject size for the hotpath experiment (the checked-in baseline applies only at the default)")
		hpGuardOps = flag.Int("hotpath-guard-ops", 4000, "guard-construction operations measured in the hotpath experiment")
		hpIters    = flag.Int("hotpath-iters", 8, "iterations of the pta/datadep/interference hotpath sections")
		hpMaxGuard = flag.Int64("hotpath-max-guard-allocs", 0, "fail (exit 1) if guard-construct allocs/op exceeds this ceiling; 0 disables the assertion")
		perLines   = flag.Int("persist-lines", 2600, "subject size for the persist experiment")
		perIters   = flag.Int("persist-iters", 3, "cold/warm fresh-process repetitions in the persist experiment (best-of)")
		perMinHits = flag.Int64("persist-min-disk-hits", 0, "fail (exit 1) if the warm-restart process served fewer disk hits than this; 0 disables the assertion")
		childDir   = flag.String("persist-dir", "", "internal: warm-state directory of a -persist-child run")
		childSrc   = flag.String("persist-src", "", "internal: subject file of a -persist-child run")
		childMode  = flag.Bool("persist-child", false, "internal: run one analysis through a persistent session and print its report as JSON (used by -experiment persist to get fresh processes)")
		flLines    = flag.Int("fleet-lines", 1600, "subject size for the fleet experiment")
		flItems    = flag.Int("fleet-items", 12, "corpus items in the fleet experiment")
		flNodes    = flag.String("fleet-nodes", "1,2,4", "comma-separated fleet sizes to sweep")
		flChild    = flag.Bool("fleet-child", false, "internal: run one canaryd worker process (used by -experiment fleet and chaos)")
		flAddr     = flag.String("fleet-addr", "", "internal: listen address of a -fleet-child run")
		flPeers    = flag.String("fleet-peers", "", "internal: peer URL list of a -fleet-child run")
		flSelf     = flag.String("fleet-self", "", "internal: own URL of a -fleet-child run")
		flJoin     = flag.String("fleet-join", "", "internal: membership seed URL list of a -fleet-child run (dynamic fleet)")
		flGossip   = flag.Duration("fleet-gossip", 500*time.Millisecond, "internal: gossip interval of a -fleet-child run")
		flDir      = flag.String("fleet-dir", "", "internal: persistent cache dir of a -fleet-child run")
		flConc     = flag.Int("fleet-conc", 1, "internal: worker concurrency of a -fleet-child run")
		chLines    = flag.Int("chaos-lines", 300, "subject size for the chaos experiment")
		chItems    = flag.Int("chaos-items", 10, "corpus items streamed per chaos round")
		chWorkers  = flag.Int("chaos-workers", 3, "worker processes in the chaos fleet")
		chGossip   = flag.Duration("chaos-gossip", 150*time.Millisecond, "membership heartbeat of the chaos fleet")
		seLines    = flag.Int("sessions-lines", 2600, "subject size for the sessions experiment")
		seEdits    = flag.Int("sessions-edits", 9, "edit rounds in the sessions experiment (2:1 representation-only:semantic save mix)")
		jsonOut    = flag.Bool("json", false, "emit the raw measurements as JSON instead of text tables")
		verbose    = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *childMode {
		os.Exit(bench.RunPersistChild(*childDir, *childSrc))
	}
	if *flChild {
		os.Exit(bench.RunFleetChild(*flAddr, *flPeers, *flSelf, *flJoin, *flGossip, *flDir, *flConc))
	}

	e := &bench.Experiments{Timeout: *timeout}
	if *verbose {
		e.Out = os.Stderr
	}

	want := func(names ...string) bool {
		for _, n := range names {
			if *experiment == n {
				return true
			}
		}
		return *experiment == "all"
	}
	known := want("fig7a", "fig7b", "fig8", "table1", "parallel", "serve", "incremental", "trace", "hotpath", "persist", "fleet", "chaos", "sessions")
	if !known {
		fmt.Fprintf(os.Stderr, "canary-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	// Collected measurements; only the selected experiments are non-nil.
	out := struct {
		Subjects    []bench.SubjectResult    `json:"subjects,omitempty"`
		Fig8        *bench.Fig8Result        `json:"fig8,omitempty"`
		Parallel    *bench.ParallelResult    `json:"parallel,omitempty"`
		Serve       *bench.ServeResult       `json:"serve,omitempty"`
		Incremental *bench.IncrementalResult `json:"incremental,omitempty"`
		Trace       *bench.TraceResult       `json:"trace,omitempty"`
		Hotpath     *bench.HotpathResult     `json:"hotpath,omitempty"`
		Persist     *bench.PersistResult     `json:"persist,omitempty"`
		Fleet       *bench.FleetResult       `json:"fleet,omitempty"`
		Chaos       *bench.ChaosResult       `json:"chaos,omitempty"`
		Sessions    *bench.SessionsResult    `json:"sessions,omitempty"`
	}{}

	if want("fig7a", "fig7b", "table1") {
		projects := workload.Projects(*scale)
		if *subjects < len(projects) {
			projects = projects[:*subjects]
		}
		results, err := e.RunAll(projects)
		if err != nil {
			fail(err)
		}
		out.Subjects = results
	}
	if want("fig8") {
		res, err := e.RunFig8(workload.SizeSweep(*sweepN, *sweepMin, *sweepMax))
		if err != nil {
			fail(err)
		}
		out.Fig8 = &res
	}
	if want("parallel") {
		spec := workload.SizeSweep(1, *parLines, *parLines)[0]
		res, err := e.RunParallel(spec, []int{1, 2, 4, 8})
		if err != nil {
			fail(err)
		}
		out.Parallel = &res
	}
	if want("serve") {
		spec := workload.SizeSweep(1, *srvLines, *srvLines)[0]
		res, err := e.RunServe(spec, *srvClients, *srvPerCli)
		if err != nil {
			fail(err)
		}
		out.Serve = &res
	}
	if want("incremental") {
		spec := workload.SizeSweep(1, *incrLines, *incrLines)[0]
		res, err := e.RunIncremental(spec, *incrIters)
		if err != nil {
			fail(err)
		}
		out.Incremental = &res
	}
	if want("trace") {
		spec := workload.SizeSweep(1, *traceLines, *traceLines)[0]
		res, err := e.RunTrace(spec)
		if err != nil {
			fail(err)
		}
		out.Trace = &res
	}
	if want("hotpath") {
		spec := workload.SizeSweep(1, *hpLines, *hpLines)[0]
		res, err := e.RunHotpath(spec, *hpGuardOps, *hpIters)
		if err != nil {
			fail(err)
		}
		out.Hotpath = &res
		if *hpMaxGuard > 0 && res.Current.GuardConstruct.AllocsPerOp > *hpMaxGuard {
			fmt.Fprintf(os.Stderr, "canary-bench: guard-construct allocs/op %d exceeds ceiling %d\n",
				res.Current.GuardConstruct.AllocsPerOp, *hpMaxGuard)
			os.Exit(1)
		}
	}
	if want("persist") {
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		spec := workload.SizeSweep(1, *perLines, *perLines)[0]
		res, err := e.RunPersist(spec, *perIters, exe)
		if err != nil {
			fail(err)
		}
		out.Persist = &res
		if *perMinHits > 0 && res.Warm.DiskHits < uint64(*perMinHits) {
			fmt.Fprintf(os.Stderr, "canary-bench: warm-restart disk hits %d below floor %d\n",
				res.Warm.DiskHits, *perMinHits)
			os.Exit(1)
		}
		if !res.Identical || !res.EditedIdentical {
			fmt.Fprintf(os.Stderr, "canary-bench: warm-restart output not byte-identical to cold (warm=%v edited=%v)\n",
				res.Identical, res.EditedIdentical)
			os.Exit(1)
		}
	}
	if want("fleet") {
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		var sizes []int
		for _, part := range strings.Split(*flNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fail(fmt.Errorf("bad -fleet-nodes entry %q", part))
			}
			sizes = append(sizes, n)
		}
		spec := workload.SizeSweep(1, *flLines, *flLines)[0]
		res, err := e.RunFleet(spec, *flItems, sizes, exe)
		if err != nil {
			fail(err)
		}
		out.Fleet = &res
		// Routing invariance is the experiment's hard gate: a fleet that
		// changes the findings is broken no matter how fast it is.
		if !res.AllIdentical {
			fmt.Fprintln(os.Stderr, "canary-bench: fleet findings differ from the direct run")
			os.Exit(1)
		}
	}

	if want("chaos") {
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		spec := workload.SizeSweep(1, *chLines, *chLines)[0]
		res, err := e.RunChaos(spec, *chItems, *chWorkers, *chGossip, exe)
		if err != nil {
			fail(err)
		}
		out.Chaos = &res
		// The chaos gates are hard: findings must stay byte-identical
		// under every failure, nothing may be silently lost, and the
		// membership protocol must converge within the heartbeat bound.
		if !res.AllIdentical {
			fmt.Fprintln(os.Stderr, "canary-bench: chaos findings diverged from the direct run")
			os.Exit(1)
		}
		if !res.NoneLost {
			fmt.Fprintln(os.Stderr, "canary-bench: chaos rounds lost requests")
			os.Exit(1)
		}
		if !res.Converged {
			fmt.Fprintln(os.Stderr, "canary-bench: membership did not converge within the heartbeat bound")
			os.Exit(1)
		}
		if !res.SuspectObserved {
			fmt.Fprintln(os.Stderr, "canary-bench: paused worker was never observed suspect")
			os.Exit(1)
		}
	}

	if want("sessions") {
		spec := workload.SizeSweep(1, *seLines, *seLines)[0]
		res, err := e.RunSessions(spec, *seEdits)
		if err != nil {
			fail(err)
		}
		out.Sessions = &res
		// The edit-native gates are hard: a session whose folded deltas
		// drift from a cold analysis is wrong, and one whose per-edit
		// median is no better than a full warm re-run is pointless.
		if !res.FoldIdentical {
			fmt.Fprintln(os.Stderr, "canary-bench: folded session deltas differ from the cold analysis of the final source")
			os.Exit(1)
		}
		if res.SessionMedian >= res.RerunMedian {
			fmt.Fprintf(os.Stderr, "canary-bench: per-edit session median %v not below full warm re-run median %v\n",
				res.SessionMedian, res.RerunMedian)
			os.Exit(1)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}

	first := true
	sep := func() {
		if !first {
			fmt.Println()
		}
		first = false
	}
	if out.Subjects != nil {
		if want("fig7a") {
			sep()
			bench.PrintFig7a(os.Stdout, out.Subjects)
		}
		if want("fig7b") {
			sep()
			bench.PrintFig7b(os.Stdout, out.Subjects)
		}
		if want("table1") {
			sep()
			bench.PrintTable1(os.Stdout, out.Subjects)
		}
	}
	if out.Fig8 != nil {
		sep()
		bench.PrintFig8(os.Stdout, *out.Fig8)
	}
	if out.Parallel != nil {
		sep()
		bench.PrintParallel(os.Stdout, *out.Parallel)
	}
	if out.Serve != nil {
		sep()
		bench.PrintServe(os.Stdout, *out.Serve)
	}
	if out.Incremental != nil {
		sep()
		bench.PrintIncremental(os.Stdout, *out.Incremental)
	}
	if out.Trace != nil {
		sep()
		bench.PrintTrace(os.Stdout, *out.Trace)
	}
	if out.Hotpath != nil {
		sep()
		bench.PrintHotpath(os.Stdout, *out.Hotpath)
	}
	if out.Persist != nil {
		sep()
		bench.PrintPersist(os.Stdout, *out.Persist)
	}
	if out.Fleet != nil {
		sep()
		bench.PrintFleet(os.Stdout, *out.Fleet)
	}
	if out.Chaos != nil {
		sep()
		bench.PrintChaos(os.Stdout, *out.Chaos)
	}
	if out.Sessions != nil {
		sep()
		bench.PrintSessions(os.Stdout, *out.Sessions)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "canary-bench:", err)
	os.Exit(2)
}
