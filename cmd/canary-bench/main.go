// Command canary-bench regenerates the paper's evaluation tables and
// figures over the synthetic subject catalogue:
//
//	canary-bench -experiment fig7a    # VFG construction time (Fig. 7a)
//	canary-bench -experiment fig7b    # VFG construction memory (Fig. 7b)
//	canary-bench -experiment fig8     # Canary scalability + linear fits (Fig. 8)
//	canary-bench -experiment table1   # bug-hunting comparison (Table 1)
//	canary-bench -experiment all
//
// Subject sizes and the per-tool timeout are scaled-down stand-ins for the
// paper's testbed (see DESIGN.md); -scale and -timeout control them.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"canary/internal/bench"
	"canary/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig7a | fig7b | fig8 | table1 | all")
		scale      = flag.Float64("scale", 0.004, "lines per project LoC (subject size scale)")
		subjects   = flag.Int("subjects", 20, "how many catalogue subjects to run (prefix)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-baseline timeout (the paper's 12h, scaled)")
		sweepN     = flag.Int("sweep", 6, "number of Fig. 8 sweep points")
		sweepMin   = flag.Int("sweep-min", 500, "smallest Fig. 8 subject (lines)")
		sweepMax   = flag.Int("sweep-max", 16000, "largest Fig. 8 subject (lines)")
		verbose    = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	e := &bench.Experiments{Timeout: *timeout}
	if *verbose {
		e.Out = os.Stderr
	}

	needComparison := *experiment == "fig7a" || *experiment == "fig7b" ||
		*experiment == "table1" || *experiment == "all"
	var results []bench.SubjectResult
	if needComparison {
		projects := workload.Projects(*scale)
		if *subjects < len(projects) {
			projects = projects[:*subjects]
		}
		var err error
		results, err = e.RunAll(projects)
		if err != nil {
			fmt.Fprintln(os.Stderr, "canary-bench:", err)
			os.Exit(2)
		}
	}

	switch *experiment {
	case "fig7a":
		bench.PrintFig7a(os.Stdout, results)
	case "fig7b":
		bench.PrintFig7b(os.Stdout, results)
	case "table1":
		bench.PrintTable1(os.Stdout, results)
	case "fig8":
		runFig8(e, *sweepN, *sweepMin, *sweepMax)
	case "all":
		bench.PrintFig7a(os.Stdout, results)
		fmt.Println()
		bench.PrintFig7b(os.Stdout, results)
		fmt.Println()
		bench.PrintTable1(os.Stdout, results)
		fmt.Println()
		runFig8(e, *sweepN, *sweepMin, *sweepMax)
	default:
		fmt.Fprintf(os.Stderr, "canary-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func runFig8(e *bench.Experiments, n, minLines, maxLines int) {
	res, err := e.RunFig8(workload.SizeSweep(n, minLines, maxLines))
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-bench:", err)
		os.Exit(2)
	}
	bench.PrintFig8(os.Stdout, res)
}
