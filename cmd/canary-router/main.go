// Command canary-router is the stateless front door of a canaryd fleet:
// it consistent-hashes every submission's content address across the
// configured workers, forwards to the owner node, fails over down the
// ring when a worker errors or times out, and coalesces identical
// concurrent submissions into one upstream call. It holds no durable
// state — any number of routers can front the same fleet, and restarting
// one loses nothing.
//
// Usage:
//
//	canary-router -workers http://host1:8787,http://host2:8787 [flags]
//
// Endpoints:
//
//	POST /v1/analyze   the canaryd contract, single or batch form
//	                   (async refused: job IDs are per-worker)
//	GET  /healthz      router liveness + per-worker up/saturated/down,
//	                   machine-readable with ?format=json
//	GET  /metrics      plain-text router_* counters
//
// The first stdout line is always "canary-router listening on <addr>",
// so wrappers can bind -addr :0 and scrape the chosen port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"canary/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8786", "listen address (use :0 for a random port)")
		workers    = flag.String("workers", "", "comma-separated canaryd base URLs (required)")
		maxBody    = flag.Int64("max-request-bytes", 0, "largest accepted /v1/analyze body in bytes (0 = 16 MiB)")
		attempts   = flag.Int("max-attempts", 3, "workers one submission may be offered to before 502")
		backoff    = flag.Duration("retry-backoff", 25*time.Millisecond, "base delay between failover attempts (jittered ±50%)")
		timeout    = flag.Duration("timeout", 5*time.Minute, "bound on one upstream call")
		healthWait = flag.Duration("health-interval", time.Second, "worker health probe period")
	)
	flag.Parse()
	if flag.NArg() != 0 || *workers == "" {
		fmt.Fprintln(os.Stderr, "usage: canary-router -workers url,url,... [flags]")
		flag.PrintDefaults()
		return 2
	}
	var workerList []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workerList = append(workerList, w)
		}
	}

	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Workers:         workerList,
		MaxRequestBytes: *maxBody,
		MaxAttempts:     *attempts,
		RetryBackoff:    *backoff,
		Timeout:         *timeout,
		HealthInterval:  *healthWait,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	}
	fmt.Printf("canary-router listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	case <-ctx.Done():
	}
	stop()

	httpCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(httpCtx); err != nil {
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	}
	fmt.Fprintln(os.Stderr, "canary-router: exiting")
	return 0
}
