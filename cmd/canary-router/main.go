// Command canary-router is the stateless front door of a canaryd fleet:
// it consistent-hashes every submission's content address across the
// configured workers, forwards to the owner node, fails over down the
// ring when a worker errors or times out, and coalesces identical
// concurrent submissions into one upstream call. It holds no durable
// state — any number of routers can front the same fleet, and restarting
// one loses nothing.
//
// Usage:
//
//	canary-router -workers http://host1:8787,http://host2:8787 [flags]
//	canary-router -join    http://host1:8787,http://host2:8787 [flags]
//
// With -workers the fleet is the given static list. With -join the
// router gossips with the seed URLs, learns the worker set from the
// membership protocol, and rebuilds its ring on every change — workers
// can die, restart, and scale without touching the router. Per-worker
// circuit breakers trip on consecutive hard failures, and slow
// single-item calls are hedged at the next ring candidate once a
// latency baseline exists.
//
// Endpoints:
//
//	POST /v1/analyze   the canaryd contract, single or batch form
//	                   (async refused: job IDs are per-worker)
//	POST /v1/gossip    membership exchange (with -join; GET returns the table)
//	GET  /healthz      router liveness + per-worker up/saturated/down and
//	                   breaker state, machine-readable with ?format=json
//	GET  /metrics      plain-text router_* counters
//
// The first stdout line is always "canary-router listening on <addr>",
// so wrappers can bind -addr :0 and scrape the chosen port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"canary/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8786", "listen address (use :0 for a random port)")
		workers     = flag.String("workers", "", "comma-separated canaryd base URLs (static fleet)")
		join        = flag.String("join", "", "comma-separated membership seed URLs (dynamic fleet; replaces -workers)")
		advertise   = flag.String("advertise", "", "this router's base URL as members reach it (default http://<bound addr>; needs -join)")
		gossipWait  = flag.Duration("gossip-interval", 500*time.Millisecond, "membership heartbeat period (suspect after 5x, dead after 10x)")
		maxBody     = flag.Int64("max-request-bytes", 0, "largest accepted /v1/analyze body in bytes (0 = 16 MiB)")
		attempts    = flag.Int("max-attempts", 3, "workers one submission may be offered to before 502")
		backoff     = flag.Duration("retry-backoff", 25*time.Millisecond, "base delay between failover attempts (jittered ±50%)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "bound on one upstream call")
		healthWait  = flag.Duration("health-interval", time.Second, "worker health probe period")
		seed        = flag.Int64("seed", 1, "jitter seed; pin for reproducible failover schedules")
		hedgeQ      = flag.Float64("hedge-quantile", 0.9, "in-flight latency quantile past which a single-item call is hedged at the next candidate (0 disables)")
		hedgeMin    = flag.Duration("hedge-min", 25*time.Millisecond, "floor on the hedge delay")
		brkFails    = flag.Int("breaker-threshold", 3, "consecutive hard failures that open a worker's circuit breaker (negative disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker blocks routing before a half-open probe")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*workers == "" && *join == "") {
		fmt.Fprintln(os.Stderr, "usage: canary-router (-workers | -join) url,url,... [flags]")
		flag.PrintDefaults()
		return 2
	}
	splitURLs := func(s string) (out []string) {
		for _, w := range strings.Split(s, ",") {
			if w = strings.TrimSpace(w); w != "" {
				out = append(out, w)
			}
		}
		return out
	}
	workerList := splitURLs(*workers)
	joinList := splitURLs(*join)

	// Listen before building the router so the advertised identity can
	// default to the actual bound address (meaningful under -addr :0).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	}
	adv := *advertise
	if adv == "" {
		adv = "http://" + ln.Addr().String()
	}

	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Workers:          workerList,
		Join:             joinList,
		Self:             adv,
		GossipInterval:   *gossipWait,
		MaxRequestBytes:  *maxBody,
		MaxAttempts:      *attempts,
		RetryBackoff:     *backoff,
		Timeout:          *timeout,
		HealthInterval:   *healthWait,
		Seed:             *seed,
		HedgeQuantile:    *hedgeQ,
		HedgeMinDelay:    *hedgeMin,
		BreakerThreshold: *brkFails,
		BreakerCooldown:  *brkCooldown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		ln.Close()
		return 2
	}
	defer rt.Close()
	fmt.Printf("canary-router listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	case <-ctx.Done():
	}
	stop()

	httpCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(httpCtx); err != nil {
		fmt.Fprintln(os.Stderr, "canary-router:", err)
		return 2
	}
	fmt.Fprintln(os.Stderr, "canary-router: exiting")
	return 0
}
