// Command canary-smt exposes Canary's internal constraint solver as a
// standalone tool: it decides CNF instances in (extended) DIMACS format,
// where `o <v> <i> <j>` lines bind boolean variables to the strict-order
// atoms O_i < O_j of the solver's partial-order theory.
//
// Usage:
//
//	canary-smt [-cube] [-conflicts N] file.cnf     # or - for stdin
//
// Exit status: 10 for sat, 20 for unsat (the SAT-competition convention),
// 0 for unknown, 2 on errors.
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"

	"canary/internal/cache"
	"canary/internal/diskstore"
	"canary/internal/smt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		cube      = flag.Bool("cube", false, "use cube-and-conquer parallel solving")
		split     = flag.Int("split", 3, "cube split variables")
		conflicts = flag.Int64("conflicts", 0, "conflict budget (0 = unbounded)")
		stats     = flag.Bool("stats", false, "print solver statistics")
		cacheDir  = flag.String("cache-dir", "", "cache sat/unsat answers in the content-addressed disk store rooted here, keyed by the SHA-256 of the instance bytes (unknown is never cached: it depends on the conflict budget)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: canary-smt [flags] file.cnf  (- for stdin)")
		return 2
	}
	var in io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "canary-smt:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-smt:", err)
		return 2
	}

	// Sat/unsat are properties of the instance alone — strategy flags only
	// change how fast we get there — so the instance digest is a sound key.
	var ns *diskstore.Namespace
	var key cache.Key
	if *cacheDir != "" {
		ds, derr := diskstore.Open(*cacheDir, 0)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "canary-smt:", derr)
			return 2
		}
		ns = ds.NS("dimacs")
		key = cache.Key(sha256.Sum256(data))
		if v, ok := ns.Get(key); ok && len(v) == 1 {
			switch v[0] {
			case 'S':
				fmt.Println("s SATISFIABLE")
				return 10
			case 'U':
				fmt.Println("s UNSATISFIABLE")
				return 20
			}
		}
	}

	pool, formulas, err := smt.ParseDIMACS(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-smt:", err)
		return 2
	}

	var res smt.Result
	if *cube {
		res = smt.SolveCubeAndConquer(pool, formulas, smt.CubeOptions{
			SplitAtoms:          *split,
			MaxConflictsPerCube: *conflicts,
		})
	} else {
		s := smt.New(pool)
		s.MaxConflicts = *conflicts
		for _, f := range formulas {
			s.Assert(f)
		}
		res = s.Solve()
		if *stats {
			fmt.Fprintf(os.Stderr, "decisions=%d propagations=%d conflicts=%d theory=%d restarts=%d\n",
				s.Stats.Decisions, s.Stats.Propagations, s.Stats.Conflicts,
				s.Stats.TheoryProps, s.Stats.Restarts)
		}
	}
	if ns != nil {
		switch res {
		case smt.Sat:
			ns.Put(key, []byte{'S'})
		case smt.Unsat:
			ns.Put(key, []byte{'U'})
		}
	}
	fmt.Println("s", map[smt.Result]string{
		smt.Sat: "SATISFIABLE", smt.Unsat: "UNSATISFIABLE", smt.Unknown: "UNKNOWN",
	}[res])
	switch res {
	case smt.Sat:
		return 10
	case smt.Unsat:
		return 20
	}
	return 0
}
