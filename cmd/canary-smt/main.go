// Command canary-smt exposes Canary's internal constraint solver as a
// standalone tool: it decides CNF instances in (extended) DIMACS format,
// where `o <v> <i> <j>` lines bind boolean variables to the strict-order
// atoms O_i < O_j of the solver's partial-order theory.
//
// Usage:
//
//	canary-smt [-cube] [-conflicts N] file.cnf     # or - for stdin
//
// Exit status: 10 for sat, 20 for unsat (the SAT-competition convention),
// 0 for unknown, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"canary/internal/smt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		cube      = flag.Bool("cube", false, "use cube-and-conquer parallel solving")
		split     = flag.Int("split", 3, "cube split variables")
		conflicts = flag.Int64("conflicts", 0, "conflict budget (0 = unbounded)")
		stats     = flag.Bool("stats", false, "print solver statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: canary-smt [flags] file.cnf  (- for stdin)")
		return 2
	}
	var in io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "canary-smt:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	pool, formulas, err := smt.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary-smt:", err)
		return 2
	}

	var res smt.Result
	if *cube {
		res = smt.SolveCubeAndConquer(pool, formulas, smt.CubeOptions{
			SplitAtoms:          *split,
			MaxConflictsPerCube: *conflicts,
		})
	} else {
		s := smt.New(pool)
		s.MaxConflicts = *conflicts
		for _, f := range formulas {
			s.Assert(f)
		}
		res = s.Solve()
		if *stats {
			fmt.Fprintf(os.Stderr, "decisions=%d propagations=%d conflicts=%d theory=%d restarts=%d\n",
				s.Stats.Decisions, s.Stats.Propagations, s.Stats.Conflicts,
				s.Stats.TheoryProps, s.Stats.Restarts)
		}
	}
	fmt.Println("s", map[smt.Result]string{
		smt.Sat: "SATISFIABLE", smt.Unsat: "UNSATISFIABLE", smt.Unknown: "UNKNOWN",
	}[res])
	switch res {
	case smt.Sat:
		return 10
	case smt.Unsat:
		return 20
	}
	return 0
}
