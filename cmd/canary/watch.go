package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"canary"
)

// runWatch is the edit-native loop: open one live session over the
// file, then poll its mtime and feed each save to the session as a
// line-span diff against the revision the session already holds. Only
// the changed functions' reverse call cone is re-analyzed; the output
// is the findings delta (+added/-resolved), not a full re-listing.
// SIGINT exits 0 — watch mode is an editor companion, not a CI gate.
func runWatch(path string, sess *canary.Session, opt canary.Options, poll time.Duration) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary:", err)
		return 2
	}
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary:", err)
		return 2
	}
	mtime, size := st.ModTime(), st.Size()

	start := time.Now()
	live, delta, err := sess.Open(string(data), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary:", err)
		return 2
	}
	defer live.Close()
	reports, err := canary.FoldDelta(nil, delta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary: delta fold:", err)
		return 2
	}
	fmt.Printf("watching %s (poll %v; ctrl-c to stop)\n", path, poll)
	printDelta(nil, delta, time.Since(start))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("watch stopped")
			return 0
		case <-t.C:
		}
		st, err := os.Stat(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "canary:", err)
			continue
		}
		if st.ModTime().Equal(mtime) && st.Size() == size {
			continue
		}
		mtime, size = st.ModTime(), st.Size()
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "canary:", err)
			continue
		}
		edits := diffLines(live.Source(), string(data))
		if len(edits) == 0 {
			continue
		}
		start := time.Now()
		d, err := live.ApplyEdits(ctx, edits)
		if err != nil {
			if errors.Is(err, canary.ErrEditRejected) {
				// Mid-keystroke syntax error: keep the last good revision
				// and findings; the next save diffs against them again.
				fmt.Fprintln(os.Stderr, "canary: edit held:", err)
				continue
			}
			fmt.Fprintln(os.Stderr, "canary:", err)
			return 2
		}
		prev := reports
		reports, err = canary.FoldDelta(prev, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "canary: delta fold:", err)
			return 2
		}
		printDelta(prev, d, time.Since(start))
	}
}

// diffLines reduces two revisions to one line-span Edit by trimming
// the common line prefix and suffix — the minimal single-span patch,
// which is exactly what the session's invalidation narrows on.
func diffLines(oldSrc, newSrc string) []canary.Edit {
	if oldSrc == newSrc {
		return nil
	}
	a := splitLines(oldSrc)
	b := splitLines(newSrc)
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	s := 0
	for s < len(a)-p && s < len(b)-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	text := ""
	if mid := b[p : len(b)-s]; len(mid) > 0 {
		text = strings.Join(mid, "\n") + "\n"
	}
	return []canary.Edit{{Start: p + 1, End: len(a) - s + 1, Text: text}}
}

func splitLines(src string) []string {
	lines := strings.Split(src, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	return lines
}

// printDelta renders one findings delta: resolved reports (from the
// pre-fold snapshot) with "-", added with "+", then a one-line summary
// of how much of the program the edit actually re-analyzed.
func printDelta(prev []canary.Report, d *canary.FindingsDelta, elapsed time.Duration) {
	for _, i := range d.Resolved {
		if i < len(prev) {
			fmt.Printf("  - %v\n", prev[i])
		}
	}
	for _, a := range d.Added {
		fmt.Printf("  + %v\n", a.Report)
	}
	scope := "no re-analysis (representation-only change)"
	if d.Reanalyzed {
		scope = "full program"
		if len(d.Invalidated) > 0 {
			scope = fmt.Sprintf("re-analyzed %s", strings.Join(d.Invalidated, ", "))
		}
	}
	fmt.Printf("seq %d: +%d -%d =%d, %s, %v\n",
		d.Seq, len(d.Added), len(d.Resolved), d.Unchanged, scope, elapsed.Round(time.Millisecond))
}
