package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"canary/internal/pipeline"
)

// buildCLI compiles the canary binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "canary-cli")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.cn")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const buggy = `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`

const clean = `
func main() {
  x = malloc();
  c = *x;
  print(*c);
}
`

func TestCLIReportsBugWithExitCode(t *testing.T) {
	bin := buildCLI(t)
	prog := writeProgram(t, buggy)
	out, err := exec.Command(bin, "-stats", "-trace", prog).CombinedOutput()
	if err == nil {
		t.Fatal("expected exit status 1 for a buggy program")
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\n%s", err, out)
	}
	s := string(out)
	for _, needle := range []string{"use-after-free", "1 report(s)", "vfg:", "guard:"} {
		if !strings.Contains(s, needle) {
			t.Errorf("output missing %q:\n%s", needle, s)
		}
	}
	// -trace prints the per-stage pipeline trace: one span line per
	// registry stage.
	if !strings.Contains(s, "pipeline trace:") {
		t.Errorf("output missing the pipeline trace header:\n%s", s)
	}
	for _, stage := range pipeline.StageNames() {
		if !strings.Contains(s, "\n  "+stage) {
			t.Errorf("pipeline trace missing a span for stage %q:\n%s", stage, s)
		}
	}
}

func TestCLICleanProgramExitsZero(t *testing.T) {
	bin := buildCLI(t)
	prog := writeProgram(t, clean)
	out, err := exec.Command(bin, prog).CombinedOutput()
	if err != nil {
		t.Fatalf("clean program should exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 report(s)") {
		t.Errorf("output: %s", out)
	}
}

func TestCLIUsageAndErrors(t *testing.T) {
	bin := buildCLI(t)
	if _, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Error("no-args should fail with usage")
	}
	if _, err := exec.Command(bin, "does-not-exist.cn").CombinedOutput(); err == nil {
		t.Error("missing file should fail")
	}
	bad := writeProgram(t, "func {")
	if out, err := exec.Command(bin, bad).CombinedOutput(); err == nil {
		t.Errorf("parse error should fail: %s", out)
	}
	prog := writeProgram(t, clean)
	if out, err := exec.Command(bin, "-memory-model", "bogus", prog).CombinedOutput(); err == nil {
		t.Errorf("bad memory model should fail: %s", out)
	}
}

func TestCLIJSONAndDot(t *testing.T) {
	bin := buildCLI(t)
	prog := writeProgram(t, buggy)
	dotPath := filepath.Join(t.TempDir(), "vfg.dot")
	out, err := exec.Command(bin, "-json", "-dot", dotPath, prog).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\n%s", err, out)
	}
	var decoded struct {
		Reports []struct {
			Kind string
		}
		VFG struct {
			Nodes int
		}
	}
	if jerr := jsonUnmarshal(out, &decoded); jerr != nil {
		t.Fatalf("invalid JSON: %v\n%s", jerr, out)
	}
	if len(decoded.Reports) != 1 || decoded.Reports[0].Kind != "use-after-free" {
		t.Errorf("JSON reports: %+v", decoded.Reports)
	}
	if decoded.VFG.Nodes == 0 {
		t.Error("JSON stats missing")
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(dot)
	for _, needle := range []string{"digraph vfg", "style=dashed", "->"} {
		if !strings.Contains(s, needle) {
			t.Errorf("DOT output missing %q", needle)
		}
	}
}

func jsonUnmarshal(data []byte, v interface{}) error {
	return json.Unmarshal(data, v)
}

func TestCLICheckerSelectionAndFlags(t *testing.T) {
	bin := buildCLI(t)
	prog := writeProgram(t, buggy)
	// Selecting only the taint checker suppresses the UAF report.
	out, err := exec.Command(bin, "-checkers", "taint-leak", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("taint-only scan should exit 0: %v\n%s", err, out)
	}
	// Intra-thread mode on a sequential UAF.
	seq := writeProgram(t, `
func main() {
  p = malloc();
  free(p);
  print(*p);
}
`)
	out, err = exec.Command(bin, "-intra", seq).CombinedOutput()
	if err == nil {
		t.Fatalf("sequential UAF with -intra should exit 1:\n%s", out)
	}
	if !strings.Contains(string(out), "1 report(s)") {
		t.Errorf("output: %s", out)
	}
}

// TestCLIFailOnReportGate pins the exit-code contract: -fail-on-report
// (default on) exits 1 on any report; =false downgrades reports to
// informational output and exits 0; analysis errors stay 2 either way.
func TestCLIFailOnReportGate(t *testing.T) {
	bin := buildCLI(t)
	prog := writeProgram(t, buggy)

	// Default: the gate trips.
	if _, err := exec.Command(bin, prog).CombinedOutput(); err == nil {
		t.Fatal("default -fail-on-report should exit 1 on a report")
	}

	// Disabled: reports still print, exit is 0.
	out, err := exec.Command(bin, "-fail-on-report=false", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("-fail-on-report=false should exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 report(s)") {
		t.Errorf("reports must still print with the gate off:\n%s", out)
	}

	// JSON path honors the gate too.
	out, err = exec.Command(bin, "-fail-on-report=false", "-json", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("-json -fail-on-report=false should exit 0: %v\n%s", err, out)
	}
	var decoded struct{ Reports []struct{ Kind string } }
	if jerr := jsonUnmarshal(out, &decoded); jerr != nil {
		t.Fatalf("invalid JSON: %v", jerr)
	}
	if len(decoded.Reports) != 1 {
		t.Errorf("JSON reports = %+v", decoded.Reports)
	}

	// Errors are never downgraded.
	if _, err := exec.Command(bin, "-fail-on-report=false", "missing.cn").CombinedOutput(); err == nil {
		t.Error("analysis errors must keep exit 2 with the gate off")
	}
}
