// Command canary analyzes a concurrent program and reports inter-thread
// value-flow bugs (use-after-free, double-free, null dereference,
// taint leaks), reproducing the tool of the PLDI 2021 paper.
//
// Usage:
//
//	canary [flags] file.cn
//
// # Exit-code contract
//
// The CLI is usable as a CI gate; scripts may rely on:
//
//	0  the analysis ran and the gate passed: no report was emitted, or
//	   -fail-on-report=false downgraded reports to informational output
//	1  the analysis ran and at least one report was emitted while the
//	   -fail-on-report gate (default on) was active
//	2  the invocation itself failed: usage error, unreadable input,
//	   parse/analysis error, or an unwritable -dot/-cpuprofile path
//
// Reports still print (and -json still carries them) with
// -fail-on-report=false — only the exit status changes, so a pipeline can
// collect results without tripping its failure handling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"canary"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		entry     = flag.String("entry", "main", "entry function")
		checkers  = flag.String("checkers", "", "comma-separated checkers (default: all); one of: "+strings.Join(canary.AllCheckers(), ", "))
		noMHP     = flag.Bool("no-mhp", false, "disable may-happen-in-parallel pruning")
		noLock    = flag.Bool("no-lock-order", false, "disable lock/unlock mutual-exclusion constraints")
		noCond    = flag.Bool("no-condvar", false, "disable wait/notify order constraints")
		memModel  = flag.String("memory-model", "sc", "memory model: sc | tso | pso")
		intra     = flag.Bool("intra", false, "also report intra-thread (sequential) bugs")
		workers   = flag.Int("workers", 0, "worker pool size for the VFG build and checking (0 = all CPUs, 1 = sequential)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
		cube      = flag.Bool("cube", false, "use cube-and-conquer parallel SMT solving")
		unroll    = flag.Int("unroll", 2, "loop unrolling depth")
		inline    = flag.Int("inline", 6, "call inlining (context) depth")
		stats     = flag.Bool("stats", false, "print analysis statistics")
		incr      = flag.Bool("incremental-stats", false, "rerun the analysis through a warm in-process session and print the incremental reuse statistics (text output only)")
		trace     = flag.Bool("trace", false, "print the value-flow trace of each report and the per-stage pipeline trace (wall time, steps, budgets, cache hits)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		maxRounds = flag.Int("max-fixpoint-rounds", 0, "step budget: VFG fixpoint rounds before degrading to inconclusive (0 = unlimited)")
		maxSteps  = flag.Int("max-dfs-steps", 0, "step budget: source-sink DFS steps per checker (0 = unlimited)")
		maxNodes  = flag.Int("max-formula-nodes", 0, "step budget: guard formula nodes per query before eliding (0 = unlimited)")
		dotOut    = flag.String("dot", "", "write the value-flow graph in Graphviz DOT form to this file")
		failOn    = flag.Bool("fail-on-report", true, "exit 1 when any report is emitted (the CI gate); =false always exits 0 on a completed analysis")
		warmDir   = flag.String("warm-dir", "", "persistent warm state: analyze through a session backed by the content-addressed disk store rooted here, so repeated CLI runs and CI jobs start warm")
		warmMax   = flag.Int64("warm-max-bytes", 0, "size cap of the -warm-dir store in bytes; least-recently-accessed entries are evicted past it (0 = 1 GiB)")
		warmImp   = flag.String("warm-import", "", "before analyzing, merge this snapshot archive into the -warm-dir store (usable without an input file)")
		warmExp   = flag.String("warm-export", "", "after analyzing, export the -warm-dir store as a single-file snapshot archive for shipping to another machine (usable without an input file)")
		watch     = flag.Bool("watch", false, "stay running: poll the input file for saves, feed each one to a live edit session as a line diff, and print findings deltas instead of full re-listings (text output only; exit 0 on ctrl-c)")
		watchPoll = flag.Duration("watch-poll", 250*time.Millisecond, "poll interval for -watch")
	)
	flag.Parse()
	// Snapshot shipping works standalone: with -warm-dir and an
	// import/export flag but no input file, just move the archive.
	archiveOnly := flag.NArg() == 0 && *warmDir != "" && (*warmImp != "" || *warmExp != "")
	if flag.NArg() != 1 && !archiveOnly {
		fmt.Fprintln(os.Stderr, "usage: canary [flags] file.cn")
		fmt.Fprintln(os.Stderr, "       canary -warm-dir dir -warm-import file | -warm-export file")
		flag.PrintDefaults()
		return 2
	}
	if (*warmImp != "" || *warmExp != "") && *warmDir == "" {
		fmt.Fprintln(os.Stderr, "canary: -warm-import/-warm-export need -warm-dir")
		return 2
	}

	var sess *canary.Session
	if *warmDir != "" {
		var serr error
		sess, serr = canary.NewPersistentSession(*warmDir, *warmMax)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "canary:", serr)
			return 2
		}
		defer sess.Close()
	}
	if *warmImp != "" {
		f, ferr := os.Open(*warmImp)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "canary:", ferr)
			return 2
		}
		n, ierr := sess.ImportWarm(f)
		f.Close()
		if ierr != nil {
			fmt.Fprintln(os.Stderr, "canary:", ierr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "canary: imported %d warm entries from %s\n", n, *warmImp)
	}
	exportWarm := func() int {
		if *warmExp == "" {
			return 0
		}
		f, ferr := os.Create(*warmExp)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "canary:", ferr)
			return 2
		}
		n, eerr := sess.ExportWarm(f)
		if cerr := f.Close(); eerr == nil {
			eerr = cerr
		}
		if eerr != nil {
			fmt.Fprintln(os.Stderr, "canary:", eerr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "canary: exported %d warm entries to %s\n", n, *warmExp)
		return 0
	}
	if archiveOnly {
		return exportWarm()
	}

	opt := canary.DefaultOptions()
	opt.Entry = *entry
	opt.EnableMHP = !*noMHP
	opt.LockOrder = !*noLock
	opt.CondVarOrder = !*noCond
	opt.MemoryModel = *memModel
	opt.RequireInterThread = !*intra
	opt.Workers = *workers
	opt.CubeAndConquer = *cube
	opt.UnrollDepth = *unroll
	opt.InlineDepth = *inline
	if *checkers != "" {
		opt.Checkers = strings.Split(*checkers, ",")
	}
	opt.Budgets = canary.Budgets{
		MaxFixpointRounds: *maxRounds,
		MaxDFSSteps:       *maxSteps,
		MaxFormulaNodes:   *maxNodes,
	}

	if *cpuProf != "" {
		f, perr := os.Create(*cpuProf)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "canary:", perr)
			return 2
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "canary:", perr)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *watch {
		return runWatch(flag.Arg(0), sess, opt, *watchPoll)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary:", err)
		return 2
	}
	var res *canary.Result
	if sess != nil {
		res, err = sess.Analyze(string(data), opt)
	} else {
		res, err = canary.Analyze(string(data), opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "canary:", err)
		return 2
	}
	if sess != nil {
		// Land write-behind flushes before any export and before the
		// deferred Close, so the disk stats below are settled.
		sess.Flush()
	}
	if rc := exportWarm(); rc != 0 {
		return rc
	}

	if *dotOut != "" {
		f, ferr := os.Create(*dotOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "canary:", ferr)
			return 2
		}
		if derr := canary.WriteVFGDot(string(data), opt, f); derr != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "canary:", derr)
			return 2
		}
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "canary:", cerr)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(res); jerr != nil {
			fmt.Fprintln(os.Stderr, "canary:", jerr)
			return 2
		}
		if *failOn && len(res.Reports) > 0 {
			return 1
		}
		return 0
	}

	for _, r := range res.Reports {
		fmt.Println(r)
		if *trace {
			for _, step := range r.Trace {
				fmt.Println("    ", step)
			}
			fmt.Println("     guard:", r.Guard)
			if len(r.Schedule) > 0 {
				fmt.Println("     witness schedule:")
				for _, s := range r.Schedule {
					fmt.Println("      ", s)
				}
			}
		}
	}
	fmt.Printf("%d report(s)\n", len(res.Reports))
	if len(res.Degraded) > 0 {
		fmt.Printf("degraded: budget exhausted in stage(s): %s (affected pairs are inconclusive, not dropped)\n",
			strings.Join(res.Degraded, ", "))
	}
	if *trace {
		fmt.Println("pipeline trace:")
		for _, sp := range res.Trace {
			line := fmt.Sprintf("  %-13s %12v", sp.Stage, sp.Wall)
			if sp.Steps > 0 {
				line += fmt.Sprintf("  steps=%d", sp.Steps)
			}
			if sp.Budget > 0 {
				line += fmt.Sprintf("  budget=%d remaining=%d", sp.Budget, sp.BudgetRemaining)
			}
			if sp.CacheHits > 0 {
				line += fmt.Sprintf("  cache-hits=%d", sp.CacheHits)
			}
			fmt.Println(line)
		}
	}

	if *stats {
		fmt.Printf("program: %d threads, %d instructions\n", res.Threads, res.Instructions)
		fmt.Printf("vfg: %d nodes, %d edges (%d direct, %d dd, %d interference, %d filtered), %d escaped objects, %d iterations, built in %v\n",
			res.VFG.Nodes, res.VFG.Edges, res.VFG.DirectEdges, res.VFG.DataDepEdges,
			res.VFG.InterferenceEdges, res.VFG.FilteredEdges, res.VFG.EscapedObjects,
			res.VFG.Iterations, res.VFG.BuildTime)
		fmt.Printf("build: parallel regions %v, %d guard-cache hits\n",
			res.VFG.ParallelBuildTime, res.VFG.CacheHits)
		fmt.Printf("check: %d sources, %d paths, %d semi-decided, %d solver queries (%d unsat), search %v, solve %v\n",
			res.Check.Sources, res.Check.PathsExamined, res.Check.SemiDecided,
			res.Check.SolverQueries, res.Check.SolverUnsat, res.Check.SearchTime, res.Check.SolveTime)
		fmt.Printf("smt cache: %d hits, %d misses, %d trivial solves\n",
			res.Check.CacheHits, res.Check.CacheMisses, res.Check.TrivialSolves)
		gh, gm := canary.GuardInternStats()
		fmt.Printf("guard interner: %d hits, %d misses (process-wide)\n", gh, gm)
		gi, bw, be := canary.AllocStats()
		fmt.Printf("allocations: %d interned formulas, %d bitset words, %d batched evals (process-wide)\n", gi, bw, be)
		if sess != nil {
			ds := sess.DiskStats()
			fmt.Printf("disk store: %d hits, %d misses, %d writes, %d entries (%d bytes), %d corrupt, %d gc evictions, %d dropped writes\n",
				ds.Hits, ds.Misses, ds.Writes, ds.Entries, ds.Bytes,
				ds.CorruptEntries, ds.GCEvictions, ds.DroppedWrites)
		}
		if res.Check.SearchBudgetExhausted+res.Check.FormulaBudgetExhausted+res.Check.SolveBudgetExhausted > 0 ||
			res.VFG.FixpointBudgetExhausted {
			fmt.Printf("budgets: fixpoint exhausted=%v, search exhausted=%d, formula exhausted=%d, solve exhausted=%d\n",
				res.VFG.FixpointBudgetExhausted, res.Check.SearchBudgetExhausted,
				res.Check.FormulaBudgetExhausted, res.Check.SolveBudgetExhausted)
		}
	}
	if *incr {
		// Prime a fresh session with one cold run, then rerun warm: the
		// second run's stats show exactly how much work the digest-keyed
		// summary store and the structural verdict store can absorb.
		isess := canary.NewSession()
		if _, ierr := isess.Analyze(string(data), opt); ierr != nil {
			fmt.Fprintln(os.Stderr, "canary:", ierr)
			return 2
		}
		warm, ierr := isess.Analyze(string(data), opt)
		if ierr != nil {
			fmt.Fprintln(os.Stderr, "canary:", ierr)
			return 2
		}
		total := warm.VFG.SummaryHits + warm.VFG.FuncsReanalyzed
		fmt.Printf("incremental (warm rerun): %d/%d function summaries reused, %d reanalyzed\n",
			warm.VFG.SummaryHits, total, warm.VFG.FuncsReanalyzed)
		fmt.Printf("incremental (warm rerun): %d verdict hits, %d pairs rechecked, %d trivial solves\n",
			warm.Check.VerdictHits, warm.Check.PairsRechecked, warm.Check.TrivialSolves)
	}
	if *failOn && len(res.Reports) > 0 {
		return 1
	}
	return 0
}
