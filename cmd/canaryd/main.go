// Command canaryd runs Canary as a long-running analysis service: a JSON
// HTTP API over a bounded job queue, a fixed-size pool of concurrent
// analyses, and a content-addressed result cache keyed by the SHA-256 of
// (canonicalized source, options). Repeated submissions are served from
// the cache byte-identically to their cold run; process-wide caches (the
// guard interner, the SMT verdict cache) stay warm across requests.
//
// Usage:
//
//	canaryd [flags]
//
// Endpoints:
//
//	POST /v1/analyze   {"source": "...", "options": {...}, "async": false, "timeout_ms": 0}
//	GET  /v1/jobs/{id} status and result of an async job
//	POST /v1/sessions  open a long-lived edit session: {"source": "...",
//	                   "options": {...}, "session_id": "...", "ttl_seconds": 0}
//	POST /v1/sessions/{id}/edits   apply line-span edits, get the findings delta
//	GET  /v1/sessions/{id}/findings  current findings snapshot
//	DELETE /v1/sessions/{id}       close the session
//	POST /v1/gossip    membership exchange (with -join; GET returns the table)
//	GET  /healthz      200 "ok", or 503 "draining" during shutdown
//	GET  /metrics      plain-text counters and per-stage latency histograms
//	                   (one canaryd_stage_latency_seconds series per pipeline
//	                   registry stage — parse, lower, pta, datadep,
//	                   interference, mhp, vfg, check — plus "total")
//
// On SIGTERM or SIGINT the daemon drains: every admitted job — queued or
// running — completes and stays pollable until the drain finishes, new
// submissions get 503, then the process exits 0. The first stdout line is
// always "canaryd listening on <addr>", so wrappers can bind -addr :0 and
// scrape the chosen port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"canary"
	"canary/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8787", "listen address (use :0 for a random port)")
		maxConc    = flag.Int("max-concurrent", 0, "analyses run simultaneously (0 = max(2, NumCPU/4))")
		queueDepth = flag.Int("queue-depth", 64, "bound on admitted-but-unstarted jobs")
		jobTimeout = flag.Duration("job-timeout", 60*time.Second, "per-job analysis deadline cap")
		cacheSize  = flag.Int("cache-entries", 4096, "content-addressed result cache capacity (in-memory tier)")
		cacheDir   = flag.String("cache-dir", "", "spill the warm state (results, summaries, verdicts) to a content-addressed disk store rooted here; a restarted daemon starts warm")
		cacheBytes = flag.Int64("cache-max-bytes", 0, "disk store size cap in bytes; least-recently-accessed entries are evicted past it (0 = 1 GiB; needs -cache-dir)")
		workers    = flag.Int("workers", 0, "per-analysis worker pool size (0 = all CPUs)")
		drainWait  = flag.Duration("drain-timeout", 10*time.Minute, "bound on draining in-flight jobs at shutdown")
		maxBody    = flag.Int64("max-request-bytes", 0, "largest accepted /v1/analyze body in bytes (0 = 16 MiB); oversized requests get 413")
		stageWait  = flag.Duration("stage-timeout", 0, "wall-clock bound per analysis stage (build, check); 0 disables (daemon-only; step budgets stay deterministic)")
		maxRounds  = flag.Int("max-fixpoint-rounds", 0, "step budget: VFG fixpoint rounds before degrading to inconclusive (0 = unlimited)")
		maxSteps   = flag.Int("max-dfs-steps", 0, "step budget: source-sink DFS steps per checker (0 = unlimited)")
		maxNodes   = flag.Int("max-formula-nodes", 0, "step budget: guard formula nodes per query before eliding (0 = unlimited)")
		nodeID     = flag.String("node-id", "", "node identity reported by /healthz (defaults to the listen address)")
		peers      = flag.String("peers", "", "comma-separated fleet member base URLs (enables the peer cache tier; must include -peer-self)")
		peerSelf   = flag.String("peer-self", "", "this node's own base URL within -peers")
		peerWait   = flag.Duration("peer-timeout", 2*time.Second, "bound on one peer cache fetch")
		join       = flag.String("join", "", "comma-separated membership seed URLs: gossip with them, learn the fleet, rebuild the peer ring on every change (replaces -peers/-peer-self)")
		advertise  = flag.String("advertise", "", "this node's base URL as other members reach it (default http://<bound addr>; needs -join)")
		gossipWait = flag.Duration("gossip-interval", 500*time.Millisecond, "membership heartbeat period (suspect after 5x, dead after 10x)")
		maxSess    = flag.Int("max-sessions", 0, "live edit sessions held at once (0 = 256); at the cap the oldest idle session is evicted, or the open gets 503")
		sessTTL    = flag.Duration("session-idle-ttl", 0, "idle time after which a live session is evicted (0 = 10m)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: canaryd [flags]")
		flag.PrintDefaults()
		return 2
	}

	opt := canary.DefaultOptions()
	opt.Workers = *workers
	opt.Budgets = canary.Budgets{
		MaxFixpointRounds: *maxRounds,
		MaxDFSSteps:       *maxSteps,
		MaxFormulaNodes:   *maxNodes,
	}

	// Listen before building the server so the node identity can default
	// to the actual bound address (meaningful under -addr :0).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canaryd:", err)
		return 2
	}
	id := *nodeID
	if id == "" {
		id = ln.Addr().String()
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *peerSelf == "" {
			fmt.Fprintln(os.Stderr, "canaryd: -peers requires -peer-self")
			return 2
		}
	}
	var joinList []string
	adv := *advertise
	if *join != "" {
		if *peers != "" {
			fmt.Fprintln(os.Stderr, "canaryd: -join and -peers are mutually exclusive")
			return 2
		}
		for _, j := range strings.Split(*join, ",") {
			if j = strings.TrimSpace(j); j != "" {
				joinList = append(joinList, j)
			}
		}
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queueDepth,
		JobTimeout:      *jobTimeout,
		CacheEntries:    *cacheSize,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheBytes,
		MaxRequestBytes: *maxBody,
		StageTimeout:    *stageWait,
		Options:         opt,
		NodeID:          id,
		Peers:           peerList,
		PeerSelf:        *peerSelf,
		PeerTimeout:     *peerWait,
		Join:            joinList,
		Advertise:       adv,
		GossipInterval:  *gossipWait,
		MaxSessions:     *maxSess,
		SessionIdleTTL:  *sessTTL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "canaryd:", err)
		return 2
	}
	fmt.Printf("canaryd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "canaryd:", err)
		return 2
	case <-ctx.Done():
	}
	stop()

	// Drain: refuse new work (503) but keep serving polls and metrics until
	// every admitted job completes, then stop the HTTP listener.
	fmt.Fprintln(os.Stderr, "canaryd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "canaryd: drain incomplete:", err)
		hs.Close()
		return 2
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil {
		fmt.Fprintln(os.Stderr, "canaryd:", err)
		return 2
	}
	fmt.Fprintln(os.Stderr, "canaryd: drained, exiting")
	return 0
}
