package canary

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"canary/internal/digest"
)

// scriptEdits builds the per-file edit script the determinism test
// drives a live session through: a representation-only trailing
// comment, a real statement inserted into main, a whole new function
// appended, and a comment tacked onto the inserted statement (another
// representation-only change, this time mid-file).
func scriptEdits(src string) [][]Edit {
	lines := strings.Split(strings.TrimSuffix(src, "\n"), "\n")
	n := len(lines)
	var script [][]Edit
	script = append(script, []Edit{{Start: n + 1, End: n + 1, Text: "// touched by a live edit\n"}})
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "func main(") {
			script = append(script, []Edit{{Start: i + 2, End: i + 2, Text: "  wv9 = 42;\n"}})
			break
		}
	}
	script = append(script, []Edit{{Start: n + 2, End: n + 2, Text: "func wzx(p) {\n  q = *p;\n}\n"}})
	return script
}

// commentEdit finds the statement e2 inserted and rewrites it with a
// trailing comment — a canonical no-op the session must answer without
// re-analysis.
func commentEdit(src string) ([]Edit, bool) {
	for i, l := range strings.Split(strings.TrimSuffix(src, "\n"), "\n") {
		if strings.TrimSpace(l) == "wv9 = 42;" {
			return []Edit{{Start: i + 1, End: i + 2, Text: "  wv9 = 42; // still here\n"}}, true
		}
	}
	return nil, false
}

// TestSessionDeltaDeterminism is the live-session contract, pinned over
// the whole corpus: drive a session through a script of edits, fold
// every emitted FindingsDelta into an accumulated report list, and
// require that list to stay identical to the session's own snapshot at
// every step — and, at the end, byte-identical (Go representation and
// JSON encoding both) to a cold full analysis of the final source.
// Representation-only edits must short-circuit without re-analysis.
func TestSessionDeltaDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files")
	}
	opt := DefaultOptions()
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)

			sess := NewSession()
			live, d, err := sess.Open(src, opt)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer live.Close()
			folded, err := FoldDelta(nil, d)
			if err != nil {
				t.Fatalf("folding open delta: %v", err)
			}

			expected := src // mirror of what the session should hold
			apply := func(step int, edits []Edit, wantReanalyze bool) {
				t.Helper()
				d, err := live.ApplyEdits(context.Background(), edits)
				if err != nil {
					t.Fatalf("step %d: ApplyEdits: %v", step, err)
				}
				if d.Reanalyzed != wantReanalyze {
					t.Fatalf("step %d: Reanalyzed=%v, want %v (delta %+v)",
						step, d.Reanalyzed, wantReanalyze, d)
				}
				folded, err = FoldDelta(folded, d)
				if err != nil {
					t.Fatalf("step %d: FoldDelta: %v", step, err)
				}
				if !reflect.DeepEqual(folded, live.Reports()) {
					t.Fatalf("step %d: folded deltas diverge from session snapshot:\nfolded: %+v\nlive:   %+v",
						step, folded, live.Reports())
				}
				var dEdits []digest.Edit
				for _, e := range edits {
					dEdits = append(dEdits, digest.Edit{Start: e.Start, End: e.End, Text: e.Text})
				}
				expected, err = digest.ApplyEdits(expected, dEdits)
				if err != nil {
					t.Fatalf("step %d: mirror ApplyEdits: %v", step, err)
				}
				if live.Source() != expected {
					t.Fatalf("step %d: session source diverged from mirror:\nsession: %q\nmirror:  %q",
						step, live.Source(), expected)
				}
			}

			script := scriptEdits(src)
			apply(0, script[0], false) // trailing comment: representation-only
			for i, edits := range script[1:] {
				apply(i+1, edits, true)
			}
			if ce, ok := commentEdit(live.Source()); ok {
				apply(len(script), ce, false) // mid-file comment: representation-only
			}

			// The accumulated state must be indistinguishable from never
			// having had a session at all: a cold analysis of the final
			// source, in a fresh process state as far as the caller can
			// tell, yields the same reports byte for byte.
			cold, err := Analyze(live.Source(), opt)
			if err != nil {
				t.Fatalf("cold analysis of final source: %v", err)
			}
			if !reflect.DeepEqual(folded, cold.Reports) {
				t.Fatalf("session reports != cold reports:\nsession: %+v\ncold:    %+v",
					folded, cold.Reports)
			}
			if fmt.Sprintf("%#v", folded) != fmt.Sprintf("%#v", cold.Reports) {
				t.Fatalf("session and cold reports differ in Go representation")
			}
			sj, _ := json.Marshal(folded)
			cj, _ := json.Marshal(cold.Reports)
			if string(sj) != string(cj) {
				t.Fatalf("session and cold reports differ in JSON:\nsession: %s\ncold:    %s", sj, cj)
			}
		})
	}
}

// TestLiveSessionRaceHammer16 opens 16 live sessions concurrently over
// one shared (warm) Session and drives each through the edit script.
// Run under -race (make check does), this is the proof the live engine
// and the process-wide warm stores compose: per-session state is
// goroutine-confined, shared stores are synchronized, and every
// session's folded deltas still match its own snapshot.
func TestLiveSessionRaceHammer16(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	// A handful of files is enough contention; 16 goroutines per file
	// set would just burn time.
	if len(files) > 4 {
		files = files[:4]
	}
	opt := DefaultOptions()
	sess := NewSession()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := os.ReadFile(files[g%len(files)])
			if err != nil {
				errs <- err
				return
			}
			live, d, err := sess.Open(string(data), opt)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: Open: %w", g, err)
				return
			}
			defer live.Close()
			folded, err := FoldDelta(nil, d)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: fold: %w", g, err)
				return
			}
			for _, edits := range scriptEdits(string(data)) {
				d, err := live.ApplyEdits(context.Background(), edits)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: ApplyEdits: %w", g, err)
					return
				}
				folded, err = FoldDelta(folded, d)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: fold: %w", g, err)
					return
				}
			}
			if !reflect.DeepEqual(folded, live.Reports()) {
				errs <- fmt.Errorf("goroutine %d: folded deltas diverge from snapshot", g)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDiffFoldRoundTrip is the algebraic property the wire protocol
// rests on: for any two report lists, FoldDelta(prev, DiffReports(prev,
// next)) reproduces next exactly. Exercised over seeded random lists
// with heavy duplication so the LCS walk sees ambiguous matches.
func TestDiffFoldRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mkReport := func(k int) Report {
		return Report{
			Kind:   fmt.Sprintf("kind-%d", k%3),
			Source: Site{Fn: fmt.Sprintf("f%d", k%4), Line: k % 5},
			Sink:   Site{Fn: "sink", Line: k % 7},
			Guard:  fmt.Sprintf("g%d", k%2),
		}
	}
	mkList := func() []Report {
		n := rng.Intn(8)
		out := make([]Report, n)
		for i := range out {
			out[i] = mkReport(rng.Intn(10))
		}
		return out
	}
	for i := 0; i < 500; i++ {
		prev, next := mkList(), mkList()
		d := DiffReports(prev, next)
		got, err := FoldDelta(prev, d)
		if err != nil {
			t.Fatalf("case %d: FoldDelta: %v (prev=%+v next=%+v delta=%+v)", i, err, prev, next, d)
		}
		if len(got) != len(next) || (len(next) > 0 && !reflect.DeepEqual(got, next)) {
			t.Fatalf("case %d: round trip lost fidelity:\nprev: %+v\nnext: %+v\ngot:  %+v", i, prev, next, got)
		}
		if d.Unchanged+len(d.Added) != len(next) {
			t.Fatalf("case %d: delta arithmetic broken: unchanged %d + added %d != %d",
				i, d.Unchanged, len(d.Added), len(next))
		}
	}
}
