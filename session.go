package canary

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"canary/internal/cache"
	"canary/internal/core"
	"canary/internal/digest"
	"canary/internal/diskstore"
	"canary/internal/failpoint"
	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/pipeline"
	"canary/internal/pta"
	"canary/internal/smt"
)

// Session holds the warm state that makes repeated analyses incremental:
//
//   - a digest-keyed per-function summary store: each function's points-to
//     transfer summary is cached under a structural content digest of the
//     function and its transitive callees, so after an edit only the
//     functions whose behavior could have changed (the reverse dependency
//     cone of the edit) re-enter the summary fixpoint;
//   - a cross-run SMT verdict store: each source–sink query's verdict and
//     model are cached under a structural serialization of its constraint
//     system, portable across the instruction-label shifts a re-parse
//     introduces, so unchanged pairs replay instead of re-solving.
//
// Both stores are content-addressed — a key changes exactly when the input
// it digests changes — so they never need invalidation and are safe to
// share across unrelated programs. The determinism contract is preserved:
// an analysis through a warm Session returns byte-identical reports,
// guards, traces, and schedules to a cold one; only the stats describing
// the work performed differ.
//
// A Session is safe for concurrent use by multiple goroutines (canaryd
// shares one across jobs). The zero-value *Session (nil) is valid and
// means "no warm state": every package-level entry point runs through it.
type Session struct {
	summaries *pta.Store
	verdicts  *smt.VerdictStore

	// disk, when non-nil, is the persistent backend both warm stores are
	// tiered over (see NewSessionOnDisk); tiers holds the write-behind
	// wrappers so Flush/Close can drain them.
	disk  *diskstore.Store
	tiers []*diskstore.Tiered

	// Panic-isolation observables: how many panics this session's
	// analyses recovered into ErrInternal errors, and how many summary
	// entries Quarantine evicted as possibly poisoned.
	panics      atomic.Uint64
	quarantined atomic.Uint64
}

// NewSession returns an empty in-memory warm store with default bounds;
// its state dies with the process.
func NewSession() *Session {
	return &Session{
		summaries: pta.NewStore(0),
		verdicts:  smt.NewVerdictStore(0),
	}
}

// NewSessionOnDisk returns a warm session whose summary and verdict
// stores are tiered over the given persistent disk store (under the
// "summary" and "verdict" namespaces): lookups try memory then disk,
// writes land in memory and flush to disk asynchronously. A nil ds
// degrades to NewSession. The caller may share ds with other tiers
// (canaryd puts its result cache on the same store).
func NewSessionOnDisk(ds *diskstore.Store) *Session {
	if ds == nil {
		return NewSession()
	}
	st := diskstore.NewTiered(cache.New(0), ds.NS("summary"), 0)
	vt := diskstore.NewTiered(cache.New(smt.DefaultVerdictEntries), ds.NS("verdict"), 0)
	return &Session{
		summaries: pta.NewStoreOn(st),
		verdicts:  smt.NewVerdictStoreOn(vt),
		disk:      ds,
		tiers:     []*diskstore.Tiered{st, vt},
	}
}

// NewPersistentSession opens (or reopens) the content-addressed disk
// store rooted at dir, bounded to maxBytes (<= 0 selects the diskstore
// default), and returns a warm session tiered over it. A fresh process
// pointed at a populated dir starts warm: unchanged functions load their
// summaries and unchanged source–sink pairs replay their verdicts from
// disk, with output byte-identical to a cold run. Call Close (or at
// least Flush) before process exit so write-behind entries land.
func NewPersistentSession(dir string, maxBytes int64) (*Session, error) {
	ds, err := diskstore.Open(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	return NewSessionOnDisk(ds), nil
}

// Flush blocks until every warm-store write enqueued so far has reached
// the disk store. A no-op for nil and memory-only sessions.
func (s *Session) Flush() {
	if s == nil {
		return
	}
	for _, t := range s.tiers {
		t.Flush()
	}
}

// Close drains and stops the write-behind flushers. The session remains
// usable afterwards (reads still hit both tiers; new writes stay
// in-memory only). A no-op for nil and memory-only sessions.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	for _, t := range s.tiers {
		t.Close()
	}
	return nil
}

// DiskStats is a snapshot of a session's persistent-store counters (all
// zero for memory-only sessions): tiered lookups answered from disk,
// true disk misses, completed entry writes, checksum-failed entries
// healed to misses, GC evictions, write-behind drops, and the store's
// current footprint.
type DiskStats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Writes         uint64 `json:"writes"`
	CorruptEntries uint64 `json:"corrupt_entries"`
	GCEvictions    uint64 `json:"gc_evictions"`
	DroppedWrites  uint64 `json:"dropped_writes"`
	Bytes          int64  `json:"bytes"`
	Entries        int64  `json:"entries"`
}

// DiskStats returns the persistent-store counters (zero for nil and
// memory-only sessions).
func (s *Session) DiskStats() DiskStats {
	if s == nil || s.disk == nil {
		return DiskStats{}
	}
	st := s.disk.Stats()
	out := DiskStats{
		Hits:           st.Hits,
		Misses:         st.Misses,
		Writes:         st.Writes,
		CorruptEntries: st.CorruptEntries,
		GCEvictions:    st.GCEvictions,
		Bytes:          st.Bytes,
		Entries:        st.Entries,
	}
	for _, t := range s.tiers {
		out.DroppedWrites += t.DroppedWrites()
	}
	return out
}

// ErrNoDiskStore is returned by ExportWarm/ImportWarm on a session
// without a persistent backend.
var ErrNoDiskStore = errors.New("canary: session has no persistent warm store")

// ExportWarm writes the session's whole persistent store (summaries,
// verdicts, and any co-tenant namespaces) as a single-file snapshot
// archive to w, for shipping a warm cache to another machine. Pending
// write-behind entries are flushed first. Returns the entry count.
func (s *Session) ExportWarm(w io.Writer) (int, error) {
	if s == nil || s.disk == nil {
		return 0, ErrNoDiskStore
	}
	s.Flush()
	return s.disk.Export(w)
}

// ImportWarm merges a snapshot archive into the session's persistent
// store. Entries failing verification are skipped — an import can add
// warm state, never corrupt it. Returns the imported entry count.
func (s *Session) ImportWarm(r io.Reader) (int, error) {
	if s == nil || s.disk == nil {
		return 0, ErrNoDiskStore
	}
	return s.disk.Import(r)
}

// verdictStore returns the verdict store, or nil for a nil session.
func (s *Session) verdictStore() *smt.VerdictStore {
	if s == nil {
		return nil
	}
	return s.verdicts
}

// SummaryStats returns the cumulative hit/miss counts of the per-function
// summary store (zero for a nil session).
func (s *Session) SummaryStats() (hits, misses uint64) {
	if s == nil {
		return 0, 0
	}
	return s.summaries.Stats()
}

// VerdictStats returns the cumulative hit/miss counts of the SMT verdict
// store (zero for a nil session).
func (s *Session) VerdictStats() (hits, misses uint64) {
	if s == nil {
		return 0, 0
	}
	return s.verdicts.Stats()
}

// PanicsRecovered returns how many pipeline panics this session's
// analyses have recovered into ErrInternal errors (zero for nil).
func (s *Session) PanicsRecovered() uint64 {
	if s == nil {
		return 0
	}
	return s.panics.Load()
}

// QuarantinedSummaries returns how many per-function summary entries
// Quarantine has evicted from this session's store (zero for nil).
func (s *Session) QuarantinedSummaries() uint64 {
	if s == nil {
		return 0
	}
	return s.quarantined.Load()
}

// Quarantine evicts every per-function summary of src from the session's
// store and reports how many entries were removed. It is the recovery
// step after a panic during src's analysis: the panicking run may have
// stored half-built state under src's digests, and evicting those keys
// restores the invariant that a warm analysis is byte-identical to a
// cold one. The verdict store needs no eviction — verdicts are written
// only after a completed solve. A nil session quarantines nothing.
//
// Quarantine is deliberately infallible: if src no longer parses (or the
// parser itself is the faulty stage), there is nothing keyed under it to
// evict, and the method returns 0.
func (s *Session) Quarantine(src string) (evicted int) {
	if s == nil {
		return 0
	}
	defer func() {
		// A parse-stage panic (e.g. an armed parse failpoint) must not
		// escape the recovery path that called us.
		_ = recover()
	}()
	ast, err := lang.Parse(src)
	if err != nil {
		return 0
	}
	for _, k := range digest.SummaryKeys(ast) {
		if s.summaries.Delete(k) {
			evicted++
		}
	}
	s.quarantined.Add(uint64(evicted))
	return evicted
}

// recordPanic is the shared recovery bookkeeping of the API-boundary
// recover()s: count the panic and quarantine the program that caused it.
func (s *Session) recordPanic(src string) {
	if s == nil {
		return
	}
	s.panics.Add(1)
	s.Quarantine(src)
}

// Analyze is Analyze running against the session's warm stores.
func (s *Session) Analyze(src string, opt Options) (*Result, error) {
	return s.AnalyzeContext(context.Background(), src, opt)
}

// AnalyzeContext is AnalyzeContext running against the session's warm
// stores. It is implemented as a live session opened and discarded in
// one call, so the one-shot and edit-streaming entry points share a
// single analysis spine rather than maintaining two.
func (s *Session) AnalyzeContext(ctx context.Context, src string, opt Options) (*Result, error) {
	live, _, err := s.OpenLive(ctx, src, opt, LiveConfig{})
	if err != nil {
		return nil, err
	}
	res := live.Result()
	live.Close()
	return res, nil
}

// NewAnalysis is NewAnalysis running against the session's warm stores.
func (s *Session) NewAnalysis(src string, opt Options) (*Analysis, error) {
	return s.NewAnalysisContext(context.Background(), src, opt)
}

// classifyStageErr converts an error escaping a pipeline.Runner stage
// into its public form: a captured panic counts against the session,
// quarantines src's summaries, and wraps ErrInternal (keeping the
// original panic value in the message); anything else goes through
// wrapAbort so injected faults and context cancellation keep their typed
// causes.
func classifyStageErr(s *Session, src string, err error) error {
	var pe *pipeline.PanicError
	if errors.As(err, &pe) {
		s.recordPanic(src)
		return fmt.Errorf("canary: %w: %v", ErrInternal, pe.Value)
	}
	return wrapAbort(err)
}

// NewAnalysisContext parses and lowers src and builds the VFG, loading the
// transfer summaries of digest-unchanged functions from the session's
// store instead of recomputing them. The checking stage of the returned
// Analysis consults the session's verdict store. A nil receiver degrades
// to the cold path (every function analyzed, every query solved).
//
// Every stage runs through the pipeline.Runner, which uniformly applies
// the cancellation checkpoint, entry-site fault injection, panic capture,
// and span timing; a panic escaping any build stage is recovered into an
// error wrapping ErrInternal, after quarantining src's per-function
// summaries from the session so one poisoned run cannot corrupt warm
// state for later jobs.
func (s *Session) NewAnalysisContext(ctx context.Context, src string, opt Options) (*Analysis, error) {
	return s.newAnalysisContext(ctx, src, opt, analysisInput{})
}

// analysisInput carries work a caller already did into the spine. A
// live session parses the patched source to validate the edit batch and
// digests it to compute the invalidated cone; handing both over here
// means the pipeline does not parse or digest the same revision a
// second time. Zero value = the spine does everything itself.
type analysisInput struct {
	ast  *lang.Program
	keys map[string]cache.Key
}

func (s *Session) newAnalysisContext(ctx context.Context, src string, opt Options, in analysisInput) (a *Analysis, err error) {
	defer func() {
		// Last-resort net for panics outside the runner-wrapped stages.
		if r := recover(); r != nil {
			s.recordPanic(src)
			a, err = nil, fmt.Errorf("canary: %w: %v", ErrInternal, r)
		}
	}()
	if _, err := memoryModelOf(opt); err != nil {
		return nil, err
	}
	run := pipeline.NewRunner(failpoint.Inject)

	ast := in.ast
	if err := run.Run(ctx, pipeline.StageParse, func(sp *pipeline.Span) error {
		if ast == nil {
			var perr error
			if ast, perr = lang.Parse(src); perr != nil {
				return perr
			}
		}
		sp.Steps = int64(len(ast.Funcs))
		return nil
	}); err != nil {
		return nil, classifyStageErr(s, src, err)
	}

	// Summarize here (rather than inside ir.Lower) so the digest-keyed
	// store can satisfy unchanged functions. With no session this computes
	// exactly what Lower would have: all functions count as reanalyzed.
	keys := in.keys
	if keys == nil || s == nil {
		keys = digestKeysFor(s, ast)
	}
	var sums map[string]*pta.Summary
	var hits, reanalyzed int
	if err := run.Run(ctx, pipeline.StagePTA, func(sp *pipeline.Span) error {
		var serr error
		sums, hits, reanalyzed, serr = pta.SummariesKeyedContext(ctx, ast, keys, s.summaryStore())
		sp.Steps = int64(reanalyzed)
		sp.CacheHits = uint64(hits)
		return serr
	}); err != nil {
		return nil, classifyStageErr(s, src, err)
	}

	var prog *ir.Program
	if err := run.Run(ctx, pipeline.StageLower, func(sp *pipeline.Span) error {
		var lerr error
		prog, lerr = ir.Lower(ast, ir.Options{
			UnrollDepth: opt.UnrollDepth,
			InlineDepth: opt.InlineDepth,
			Entry:       opt.Entry,
			Summaries:   sums,
		})
		if prog != nil {
			sp.Steps = int64(prog.NumInsts())
		}
		return lerr
	}); err != nil {
		return nil, classifyStageErr(s, src, err)
	}

	// The VFG build interleaves the MHP, Alg. 1 data-dependence, and
	// Alg. 2 interference passes inside one fixpoint; the builder times
	// each internally, the vfg span keeps the residual (merge and
	// bookkeeping), and the three sub-stages are recorded as their own
	// spans below so the trace partitions the build's wall-clock.
	var b *core.Builder
	if err := run.Run(ctx, pipeline.StageVFG, func(sp *pipeline.Span) error {
		var berr error
		b, berr = core.BuildContext(ctx, prog, core.BuildOptions{
			EnableMHP:       opt.EnableMHP,
			GuardCap:        opt.GuardCap,
			MaxIterations:   opt.Budgets.MaxFixpointRounds,
			Workers:         opt.Workers,
			SummaryHits:     hits,
			FuncsReanalyzed: reanalyzed,
		})
		if b == nil {
			return berr
		}
		st := b.Stats
		sp.Steps = int64(st.Iterations)
		sp.Budget = int64(opt.Budgets.MaxFixpointRounds)
		sp.CacheHits = st.GuardCacheHits
		if residual := st.BuildTime - st.MHPTime - st.DataDepTime - st.InterferTime; residual > 0 {
			sp.Wall = residual
		}
		return berr
	}); err != nil {
		return nil, classifyStageErr(s, src, err)
	}
	run.Record(pipeline.Span{Stage: pipeline.StageMHP, Wall: b.Stats.MHPTime})
	run.Record(pipeline.Span{
		Stage: pipeline.StageDataDep,
		Wall:  b.Stats.DataDepTime,
		Steps: int64(b.Stats.DataDepEdges),
	})
	run.Record(pipeline.Span{
		Stage: pipeline.StageInterference,
		Wall:  b.Stats.InterferTime,
		Steps: int64(b.Stats.InterferenceEdges),
	})
	return &Analysis{opt: opt, b: b, session: s, src: src, run: run, keys: keys}, nil
}

// summaryStore returns the summary store, or nil for a nil session.
func (s *Session) summaryStore() *pta.Store {
	if s == nil {
		return nil
	}
	return s.summaries
}

// digestKeysFor computes the per-function summary keys, skipping the digest
// pass entirely when there is no store to hit.
func digestKeysFor(s *Session, ast *lang.Program) map[string]cache.Key {
	if s == nil {
		return nil
	}
	return digest.SummaryKeys(ast)
}

// ErrSessionClosed is returned by LiveSession methods after Close.
var ErrSessionClosed = errors.New("canary: live session is closed")

// ErrEditRejected wraps every edit-batch rejection — an out-of-range or
// overlapping span, or a patch whose result no longer parses. A
// rejected batch leaves the session's revision and findings untouched,
// so the client can correct and resubmit against the same Seq.
var ErrEditRejected = errors.New("canary: edit rejected")

// LiveConfig tunes a live session's analysis runs beyond Options.
type LiveConfig struct {
	// StageTimeout, when positive, separately bounds the build and check
	// halves of every (re-)analysis, mirroring canaryd's -stage-timeout
	// split of one-shot jobs.
	StageTimeout time.Duration
}

// LiveSession is the edit-native analysis engine: it holds the current
// revision of one program, accepts line-span edit batches against it,
// re-analyzes through the session's warm stores, and reports each
// batch's effect as a FindingsDelta. The determinism contract extends
// the warm-session one: folding the open delta and every edit delta in
// order reproduces, byte for byte, the findings a cold full analysis of
// the final revision would emit.
//
// Two fast paths make edits cheaper than one-shot re-analysis. First,
// an edit whose canonical source (comments and whitespace stripped,
// line structure preserved) is unchanged skips the pipeline entirely —
// the previous findings are provably still exact. Second, a real edit
// re-enters the pipeline with the parent Session's digest-keyed summary
// and verdict stores hot, so only the invalidated reverse-reachable
// cone is recomputed.
//
// A LiveSession is safe for concurrent use; edits serialize against
// each other and against reads. The parent *Session may be nil (no warm
// state) — deltas stay exact, only the reuse disappears.
type LiveSession struct {
	s   *Session
	opt Options
	lc  LiveConfig

	mu      sync.Mutex
	closed  bool
	seq     int
	src     string
	canon   string
	keys    map[string]cache.Key // current revision's summary keys, seeded by the open analysis
	res     *Result
	reports []Report
}

// Open runs the initial full analysis of src and returns the live
// session together with its opening delta (Seq 0, every finding Added —
// folding it into an empty findings list yields the initial findings).
func (s *Session) Open(src string, opt Options) (*LiveSession, *FindingsDelta, error) {
	return s.OpenLive(context.Background(), src, opt, LiveConfig{})
}

// OpenLive is Open with cooperative cancellation and live-session
// configuration.
func (s *Session) OpenLive(ctx context.Context, src string, opt Options, lc LiveConfig) (*LiveSession, *FindingsDelta, error) {
	l := &LiveSession{s: s, opt: opt, lc: lc}
	res, keys, err := l.runSpine(ctx, src, analysisInput{})
	if err != nil {
		return nil, nil, err
	}
	l.src = src
	l.canon = digest.CanonicalSource(src)
	l.keys = keys
	l.res = res
	l.reports = res.Reports
	d := DiffReports(nil, res.Reports)
	d.Seq = 0
	d.Reanalyzed = true
	return l, d, nil
}

// runSpine is the one analysis path every entry point shares: the
// session-warm build then check, optionally with canaryd's per-stage
// wall-clock split. It also returns the summary keys the build settled
// on, so callers can keep an invalidation baseline without re-digesting.
func (l *LiveSession) runSpine(ctx context.Context, src string, in analysisInput) (*Result, map[string]cache.Key, error) {
	if l.lc.StageTimeout <= 0 {
		a, err := l.s.newAnalysisContext(ctx, src, l.opt, in)
		if err != nil {
			return nil, nil, err
		}
		res, err := a.CheckContext(ctx)
		return res, a.keys, err
	}
	buildCtx, cancelBuild := context.WithTimeout(ctx, l.lc.StageTimeout)
	a, err := l.s.newAnalysisContext(buildCtx, src, l.opt, in)
	cancelBuild()
	if err != nil {
		return nil, nil, err
	}
	checkCtx, cancelCheck := context.WithTimeout(ctx, l.lc.StageTimeout)
	defer cancelCheck()
	res, err := a.CheckContext(checkCtx)
	return res, a.keys, err
}

// ApplyEdits applies one batch of line-span edits to the current
// revision and returns the findings delta it caused. Invalid batches
// and unparsable patches return an error wrapping ErrEditRejected with
// the session unchanged; analysis failures (cancellation, injected
// faults) likewise leave the previous revision and findings in place.
func (l *LiveSession) ApplyEdits(ctx context.Context, edits []Edit) (*FindingsDelta, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrSessionClosed
	}
	dEdits := make([]digest.Edit, len(edits))
	for i, e := range edits {
		dEdits[i] = digest.Edit{Start: e.Start, End: e.End, Text: e.Text}
	}
	patched, err := digest.ApplyEdits(l.src, dEdits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEditRejected, err)
	}
	canon := digest.CanonicalSource(patched)
	if canon == l.canon {
		// Representation-only edit: the canonical source (comments and
		// trailing whitespace stripped, line structure preserved) is
		// unchanged, so the token stream — and with it parseability,
		// every function's digest, and every finding — is provably
		// identical to the revision already analyzed. No parse needed.
		l.src = patched
		l.seq++
		return &FindingsDelta{Seq: l.seq, Unchanged: len(l.reports)}, nil
	}
	ast, perr := lang.Parse(patched)
	if perr != nil {
		return nil, fmt.Errorf("%w: patched source: %v", ErrEditRejected, perr)
	}
	if l.keys == nil {
		// Sessionless live session (nil *Session): the spine computed no
		// keys at open, so key the pre-edit revision here (it parsed when
		// it was analyzed, so this cannot fail).
		cur, cerr := lang.Parse(l.src)
		if cerr != nil {
			return nil, fmt.Errorf("canary: internal: current revision unparsable: %v", cerr)
		}
		l.keys = digest.SummaryKeys(cur)
	}
	newKeys := digest.SummaryKeys(ast)
	invalidated := digest.Invalidated(l.keys, newKeys)
	res, _, err := l.runSpine(ctx, patched, analysisInput{ast: ast, keys: newKeys})
	if err != nil {
		return nil, err
	}
	d := DiffReports(l.reports, res.Reports)
	d.Seq = l.seq + 1
	d.Reanalyzed = true
	d.Invalidated = invalidated
	l.src = patched
	l.canon = canon
	l.keys = newKeys
	l.res = res
	l.reports = res.Reports
	l.seq++
	return d, nil
}

// Seq returns the current revision number (0 after Open, +1 per
// accepted edit batch).
func (l *LiveSession) Seq() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Source returns the current revision's source text ("" after Close).
func (l *LiveSession) Source() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.src
}

// Reports returns the current findings. The slice is shared: callers
// must not mutate it.
func (l *LiveSession) Reports() []Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reports
}

// Result returns the full result of the most recent analysis run (nil
// after Close). Representation-only edits do not re-run the pipeline,
// so after one the stats describe the last real run while the reports
// remain exact for the current revision.
func (l *LiveSession) Result() *Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.res
}

// Close marks the session closed and releases its held revision and
// findings. Further edits return ErrSessionClosed. The parent Session
// and its warm stores are unaffected.
func (l *LiveSession) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.src, l.canon = "", ""
	l.keys = nil
	l.res = nil
	l.reports = nil
}
