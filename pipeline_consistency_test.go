package canary

import (
	"os"
	"path/filepath"
	"testing"

	"canary/internal/failpoint"
	"canary/internal/pipeline"
)

// TestRegistryConsistency is the cross-layer contract of the stage
// registry: every list that claims to derive from it actually does.
func TestRegistryConsistency(t *testing.T) {
	// Every budget dimension a result can list in Degraded is governed by
	// exactly one registered stage, and every budgeted stage declares at
	// least one failpoint site — a governor without a fault hook cannot be
	// exercised by the fault-injection suite.
	dims := make(map[string]int)
	for _, st := range pipeline.Stages() {
		for _, dim := range st.Budgets {
			dims[dim]++
		}
		if len(st.Budgets) > 0 && len(st.Sites) == 0 {
			t.Errorf("budgeted stage %q declares no failpoint site", st.Name)
		}
	}
	for _, dim := range pipeline.BudgetDimensions() {
		if dims[dim] != 1 {
			t.Errorf("budget dimension %q governed by %d stages, want 1", dim, dims[dim])
		}
	}

	// failpoint.Sites() is exactly the registry's site set (it re-sorts
	// for display). The failpoint package must not grow a site of its own,
	// and no registry site may be missing from the armable set.
	reg := make(map[string]bool)
	for _, site := range pipeline.FailpointSites() {
		reg[site] = true
	}
	fps := failpoint.Sites()
	if len(fps) != len(reg) {
		t.Fatalf("failpoint.Sites() has %d sites, registry %d:\n%v\n%v", len(fps), len(reg), fps, pipeline.FailpointSites())
	}
	for _, site := range fps {
		if !reg[site] {
			t.Errorf("failpoint site %q is not in the registry", site)
		}
	}
}

// TestDegradedFollowsRegistryOrder starves every governed stage on the
// corpus and checks that each result's Degraded list is a subsequence of
// pipeline.BudgetDimensions() — i.e. exhausted dimensions appear in
// registration order, never reordered — and that at least one run
// degrades in more than one dimension so the ordering is actually
// observable.
func TestDegradedFollowsRegistryOrder(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files")
	}
	order := pipeline.BudgetDimensions()
	index := make(map[string]int, len(order))
	for i, dim := range order {
		index[dim] = i
	}
	multi := false
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Checkers = append(AllCheckers(), ExtendedCheckers()...)
		opt.Budgets = tinyBudgets()
		res, err := Analyze(string(data), opt)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		last := -1
		for _, dim := range res.Degraded {
			i, ok := index[dim]
			if !ok {
				t.Errorf("%s: Degraded lists unknown dimension %q", file, dim)
				continue
			}
			if i <= last {
				t.Errorf("%s: Degraded %v not in registry order %v", file, res.Degraded, order)
			}
			last = i
		}
		if len(res.Degraded) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("no corpus run degraded in >1 dimension; ordering untested — tighten tinyBudgets")
	}
}

// TestTraceCoversRegistry runs a real analysis and checks Result.Trace
// carries exactly one span per registry stage, in registry order — the
// tentpole payoff of routing every stage through the instrumented runner.
func TestTraceCoversRegistry(t *testing.T) {
	src := `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`
	res, err := Analyze(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := pipeline.StageNames()
	if len(res.Trace) != len(names) {
		t.Fatalf("Trace has %d spans, want %d: %+v", len(res.Trace), len(names), res.Trace)
	}
	for i, name := range names {
		if res.Trace[i].Stage != name {
			t.Errorf("Trace[%d].Stage = %q, want %q", i, res.Trace[i].Stage, name)
		}
	}
	// Spans are measurements, not placeholders: the stages that do real
	// work on this program must show steps.
	steps := make(map[string]int64)
	for _, sp := range res.Trace {
		steps[sp.Stage] = sp.Steps
	}
	for _, stage := range []string{pipeline.StageParse, pipeline.StageLower, pipeline.StageVFG, pipeline.StageCheck} {
		if steps[stage] <= 0 {
			t.Errorf("stage %q span has no steps: %+v", stage, res.Trace)
		}
	}
}
