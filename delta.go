package canary

// Findings deltas: the wire-and-fold representation of "what changed"
// between two revisions of a live session. DiffReports computes a
// longest-common-subsequence diff over report identities, so folding a
// delta into the previous findings reconstructs the next findings
// exactly — byte-identical, not merely equivalent. That exactness is
// what lets the session contract promise that the accumulated deltas of
// any edit sequence equal a cold full analysis of the final source.

import (
	"errors"
	"fmt"
)

// Edit is a line-span patch against the current revision of a live
// session's source: replace the half-open line range [Start, End) with
// Text. Lines are 1-based; Start == End inserts without deleting. It
// mirrors internal/digest.Edit, which documents the exact semantics.
type Edit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// IndexedReport is a report plus its position in the *new* findings
// list, so a fold can place additions exactly where a full analysis
// would have emitted them.
type IndexedReport struct {
	Index  int    `json:"index"`
	Report Report `json:"report"`
}

// FindingsDelta describes how one edit batch changed a session's
// findings. Resolved holds ascending indexes into the previous
// findings; Added holds new reports with their indexes in the new
// findings; Unchanged counts reports present in both. FoldDelta applies
// a delta to the previous findings and reproduces the new findings
// byte-for-byte.
type FindingsDelta struct {
	// Seq is the session revision this delta produced (0 for open).
	Seq int `json:"seq"`
	// Reanalyzed reports whether the pipeline actually re-ran; false
	// means the edit was representation-only (comments, whitespace) and
	// the previous findings were carried forward without any analysis.
	Reanalyzed bool `json:"reanalyzed"`
	// Invalidated names the functions whose summary digests the edit
	// changed — the reverse-reachable cone the warm re-run re-derived.
	Invalidated []string        `json:"invalidated,omitempty"`
	Added       []IndexedReport `json:"added,omitempty"`
	Resolved    []int           `json:"resolved,omitempty"`
	Unchanged   int             `json:"unchanged"`
}

// reportIdentity is the equality key for diffing: the full rendered
// value, so two reports are "the same finding" only when every field
// (kind, verdict, sites, trace) is identical. Anything weaker would let
// a fold drift from the cold analysis it must reproduce.
func reportIdentity(r Report) string { return fmt.Sprintf("%#v", r) }

// DiffReports computes the findings delta from prev to next using an
// LCS over report identities. Reports the diff pairs up are counted
// Unchanged; everything else becomes Resolved (from prev) or Added
// (into next). FoldDelta(prev, DiffReports(prev, next)) == next always.
func DiffReports(prev, next []Report) *FindingsDelta {
	n, m := len(prev), len(next)
	pid := make([]string, n)
	for i, r := range prev {
		pid[i] = reportIdentity(r)
	}
	nid := make([]string, m)
	for j, r := range next {
		nid[j] = reportIdentity(r)
	}
	// lcs[i][j] = length of the LCS of prev[i:] and next[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if pid[i] == nid[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	d := &FindingsDelta{}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case pid[i] == nid[j]:
			d.Unchanged++
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			d.Resolved = append(d.Resolved, i)
			i++
		default:
			d.Added = append(d.Added, IndexedReport{Index: j, Report: next[j]})
			j++
		}
	}
	for ; i < n; i++ {
		d.Resolved = append(d.Resolved, i)
	}
	for ; j < m; j++ {
		d.Added = append(d.Added, IndexedReport{Index: j, Report: next[j]})
	}
	return d
}

// FoldDelta applies a findings delta to the previous findings and
// returns the new findings: resolved reports are dropped, added reports
// are placed at their recorded indexes, and the survivors fill the
// remaining slots in order. It validates the delta's internal
// consistency so a corrupted or misapplied delta fails loudly instead
// of silently producing a findings list no analysis ever emitted.
func FoldDelta(prev []Report, d *FindingsDelta) ([]Report, error) {
	if d == nil {
		return nil, errors.New("canary: fold: nil delta")
	}
	resolved := make(map[int]bool, len(d.Resolved))
	last := -1
	for _, idx := range d.Resolved {
		if idx < 0 || idx >= len(prev) {
			return nil, fmt.Errorf("canary: fold: resolved index %d out of range (%d previous findings)", idx, len(prev))
		}
		if idx <= last {
			return nil, fmt.Errorf("canary: fold: resolved indexes not strictly ascending at %d", idx)
		}
		resolved[idx] = true
		last = idx
	}
	kept := make([]Report, 0, len(prev)-len(resolved))
	for i, r := range prev {
		if !resolved[i] {
			kept = append(kept, r)
		}
	}
	if d.Unchanged != len(kept) {
		return nil, fmt.Errorf("canary: fold: delta says %d unchanged, previous findings leave %d", d.Unchanged, len(kept))
	}
	total := len(kept) + len(d.Added)
	out := make([]Report, total)
	used := make([]bool, total)
	for _, a := range d.Added {
		if a.Index < 0 || a.Index >= total {
			return nil, fmt.Errorf("canary: fold: added index %d out of range (%d new findings)", a.Index, total)
		}
		if used[a.Index] {
			return nil, fmt.Errorf("canary: fold: duplicate added index %d", a.Index)
		}
		out[a.Index] = a.Report
		used[a.Index] = true
	}
	k := 0
	for i := range out {
		if !used[i] {
			out[i] = kept[k]
			k++
		}
	}
	// An empty findings list folds to nil, matching what Analyze returns
	// for a clean program — so folded state stays byte-identical (JSON
	// included) to a cold run, not merely element-equal.
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
