package canary

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestAnalyzeRaceHammer16 runs Analyze from 16 goroutines at once, each on
// a distinct program, and requires every concurrent result to equal its
// sequential baseline. canaryd schedules exactly this shape of load onto
// the process-wide guard hash-cons interner and SMT verdict cache, so this
// test — run under -race by `make check` — locks in that those shared
// structures are safe for concurrent, independent analyses, not just for
// the worker pools inside one analysis.
func TestAnalyzeRaceHammer16(t *testing.T) {
	const goroutines = 16

	// Distinct programs: the whole corpus, padded with variants so every
	// goroutine gets its own source (and thus its own guard pool).
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files")
	}
	var srcs []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, string(data))
	}
	for i := 0; len(srcs) < goroutines; i++ {
		srcs = append(srcs, fmt.Sprintf("%s\nfunc hammer_pad_%d() { p = malloc(); free(p); }\n", srcs[i], i))
	}
	srcs = srcs[:goroutines]

	opt := DefaultOptions()
	opt.Checkers = append(AllCheckers(), ExtendedCheckers()...)

	// Sequential baselines first; the concurrent runs must reproduce them.
	want := make([]*Result, goroutines)
	for i, src := range srcs {
		res, err := Analyze(src, opt)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		want[i] = res
	}

	got := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = Analyze(srcs[i], opt)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Errorf("goroutine %d: %v", i, errs[i])
			continue
		}
		if !reflect.DeepEqual(got[i].Reports, want[i].Reports) {
			t.Errorf("goroutine %d: reports differ under concurrency:\n got: %+v\nwant: %+v",
				i, got[i].Reports, want[i].Reports)
		}
		if got[i].VFG.Nodes != want[i].VFG.Nodes || got[i].VFG.Edges != want[i].VFG.Edges {
			t.Errorf("goroutine %d: VFG shape differs: got %d/%d, want %d/%d",
				i, got[i].VFG.Nodes, got[i].VFG.Edges, want[i].VFG.Nodes, want[i].VFG.Edges)
		}
	}
}
