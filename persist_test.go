package canary

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"canary/internal/workload"
)

// TestPersistentWarmChildProcess is not a test of its own: it is the body
// re-exec'd by the fresh-process tests below. Guarded by an env var so a
// normal `go test` run skips it.
func TestPersistentWarmChildProcess(t *testing.T) {
	if os.Getenv("CANARY_PERSIST_CHILD") != "1" {
		t.Skip("helper process for the persistent-warm tests")
	}
	dir := os.Getenv("CANARY_PERSIST_DIR")
	srcPath := os.Getenv("CANARY_PERSIST_SRC")
	data, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewPersistentSession(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Analyze(string(data), DefaultOptions())
	if err != nil {
		sess.Close()
		t.Fatal(err)
	}
	sess.Flush()
	ds := sess.DiskStats()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(renderFull(res)))
	fmt.Printf("PERSISTCHILD render=%s summaryhits=%d reanalyzed=%d diskhits=%d diskwrites=%d\n",
		hex.EncodeToString(sum[:]), res.VFG.SummaryHits, res.VFG.FuncsReanalyzed, ds.Hits, ds.Writes)
}

var persistChildRe = regexp.MustCompile(
	`PERSISTCHILD render=([0-9a-f]+) summaryhits=(\d+) reanalyzed=(\d+) diskhits=(\d+) diskwrites=(\d+)`)

type persistChildOut struct {
	render      string
	summaryHits int
	reanalyzed  int
	diskHits    int
	diskWrites  int
}

// runPersistChild re-execs this test binary as a genuinely fresh process
// that analyzes srcPath through a persistent session rooted at dir.
func runPersistChild(t *testing.T, dir, srcPath string) persistChildOut {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "TestPersistentWarmChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CANARY_PERSIST_CHILD=1",
		"CANARY_PERSIST_DIR="+dir,
		"CANARY_PERSIST_SRC="+srcPath,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("persist child: %v\n%s", err, out)
	}
	m := persistChildRe.FindSubmatch(out)
	if m == nil {
		t.Fatalf("persist child produced no report:\n%s", out)
	}
	atoi := func(b []byte) int {
		n, err := strconv.Atoi(string(b))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return persistChildOut{
		render:      string(m[1]),
		summaryHits: atoi(m[2]),
		reanalyzed:  atoi(m[3]),
		diskHits:    atoi(m[4]),
		diskWrites:  atoi(m[5]),
	}
}

func renderHash(res *Result) string {
	sum := sha256.Sum256([]byte(renderFull(res)))
	return hex.EncodeToString(sum[:])
}

// TestPersistentWarmDeterminism is the acceptance gate of the disk store:
// for every corpus program, a fresh process restarted onto a populated
// warm directory must produce output byte-identical to a cold in-process
// analysis, with its reuse actually fed from disk (hits > 0).
func TestPersistentWarmDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two processes per corpus file")
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Analyze(string(data), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			want := renderHash(cold)

			dir := t.TempDir()
			abs, err := filepath.Abs(file)
			if err != nil {
				t.Fatal(err)
			}
			prime := runPersistChild(t, dir, abs)
			if prime.render != want {
				t.Fatalf("priming process output differs from cold analysis")
			}
			if prime.diskWrites == 0 {
				t.Fatalf("priming process wrote nothing to the store")
			}
			warm := runPersistChild(t, dir, abs)
			if warm.render != want {
				t.Errorf("warm-restart output differs from cold analysis")
			}
			if warm.diskHits == 0 {
				t.Errorf("warm restart served no disk hits (summaries reused: %d)", warm.summaryHits)
			}
			if warm.reanalyzed != 0 {
				t.Errorf("warm restart reanalyzed %d functions; want 0", warm.reanalyzed)
			}
		})
	}
}

// TestPersistentWarmReuseAfterEdit models the real CI scenario: a sizable
// program is analyzed (process exits), one line is edited, and a fresh
// process re-analyzes it against the same warm directory. At least 90% of
// function summaries must be reused across the edit AND the restart, and
// the output must match a cold analysis of the edited program exactly.
func TestPersistentWarmReuseAfterEdit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two analysis processes")
	}
	spec := workload.SizeSweep(1, 1200, 1200)[0]
	orig := workload.Generate(spec)
	edited, ok := mutateCorpus(orig)
	if !ok {
		t.Fatal("generated subject has no main to edit")
	}
	work := t.TempDir()
	origPath := filepath.Join(work, "orig.cn")
	editedPath := filepath.Join(work, "edited.cn")
	if err := os.WriteFile(origPath, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(editedPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	coldEdited, err := Analyze(edited, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(work, "store")
	runPersistChild(t, dir, origPath) // prime, then the process dies
	warm := runPersistChild(t, dir, editedPath)

	if warm.render != renderHash(coldEdited) {
		t.Errorf("edited warm-restart output differs from cold analysis of the edited program")
	}
	total := warm.summaryHits + warm.reanalyzed
	if total == 0 {
		t.Fatal("no summary accounting in warm run")
	}
	reuse := float64(warm.summaryHits) / float64(total)
	if reuse < 0.9 {
		t.Errorf("summary reuse after edit+restart = %.2f (%d/%d); want >= 0.9",
			reuse, warm.summaryHits, total)
	}
	if warm.diskHits == 0 {
		t.Error("edited warm restart served no disk hits")
	}
}

// TestWarmSnapshotRoundTrip ships warm state between two stores through
// the single-file archive: a session primed in dir A is exported, imported
// into an empty dir B, and a fresh session over B must analyze warm (disk
// hits, zero reanalysis) and byte-identical to the original.
func TestWarmSnapshotRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus: %v (%d files)", err, len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	opt := DefaultOptions()

	a, err := NewPersistentSession(filepath.Join(t.TempDir(), "a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := a.Analyze(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	var archive bytes.Buffer
	n, err := a.ExportWarm(&archive)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("exported an empty archive from a primed session")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := NewPersistentSession(filepath.Join(t.TempDir(), "b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.ImportWarm(bytes.NewReader(archive.Bytes())); err != nil {
		t.Fatal(err)
	}
	warm, err := b.Analyze(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderFull(warm) != renderFull(cold) {
		t.Error("analysis over imported snapshot differs from the original")
	}
	if warm.VFG.FuncsReanalyzed != 0 {
		t.Errorf("imported snapshot still reanalyzed %d functions", warm.VFG.FuncsReanalyzed)
	}
	if ds := b.DiskStats(); ds.Hits == 0 {
		t.Error("imported snapshot served no disk hits")
	}
}

// TestPersistentSessionQuarantineSurvivesRestart: quarantining through a
// persistent session must delete the on-disk entries too, so a poisoned
// summary cannot come back in the next process.
func TestPersistentSessionQuarantineReachesDisk(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus: %v (%d files)", err, len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	dir := t.TempDir()

	s1, err := NewPersistentSession(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Analyze(src, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	s1.Flush()
	primed := s1.DiskStats()
	if primed.Entries == 0 {
		t.Fatal("priming stored nothing")
	}
	s1.Quarantine(src)
	s1.Flush()
	after := s1.DiskStats()
	if after.Entries >= primed.Entries {
		t.Errorf("quarantine removed nothing from disk: %d -> %d entries", primed.Entries, after.Entries)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
}
