// Null-deref hunt: a config-reload scenario in the style of the
// inter-thread null-pointer dereferences predictive tools target
// (Farzan et al., FSE 2012 — cited as the paper's null-deref motivation).
// A reload thread momentarily nulls out the shared config slot before
// installing the replacement; a concurrent request thread dereferences
// whatever it loads from the slot. A second slot that is never nulled
// shows the checker staying silent on the safe flow.
//
// Run with: go run ./examples/nullderef
package main

import (
	"fmt"
	"log"

	"canary"
)

const program = `
func reloader(slot) {
  n = null;
  *slot = n;               // transient null while swapping
  replacement = malloc();
  *slot = replacement;
}

func request(slot) {
  cfg = *slot;
  print(*cfg);             // may dereference the transient null
}

func safe_swapper(slot) {
  replacement = malloc();
  *slot = replacement;     // atomic-style swap: never null
}

func main() {
  config = malloc();
  initial = malloc();
  *config = initial;
  fork(t1, reloader, config);
  fork(t2, request, config);

  other = malloc();
  first = malloc();
  *other = first;
  fork(t3, safe_swapper, other);
  fork(t4, request, other);
}
`

func main() {
	opt := canary.DefaultOptions()
	opt.Checkers = []string{canary.CheckNullDeref}
	res, err := canary.Analyze(program, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config-reload scan: %d null-deref report(s)\n\n", len(res.Reports))
	for _, r := range res.Reports {
		fmt.Println(r)
		for _, step := range r.Trace {
			fmt.Println("    ", step)
		}
	}
	fmt.Println("\nthe never-nulled slot produced no report.")
}
