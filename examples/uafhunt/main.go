// UAF hunt: a connection-pool shaped workload, modelled on the kind of
// long-latent inter-thread use-after-free Canary found in transmission
// (§7.3). A reaper thread recycles idle connections by freeing them, while
// request handlers may still be dereferencing the same connection object
// through the shared pool slot. A second, correctly synchronized pool shows
// the lock/unlock extension pruning the equivalent-looking pattern.
//
// Run with: go run ./examples/uafhunt
package main

import (
	"fmt"
	"log"

	"canary"
)

const server = `
global poolmu;

// The buggy pool: the reaper frees the connection it just published
// without holding the pool lock, racing the handler's dereference.
func reaper(slot) {
  conn = malloc();          // recycled connection object
  *slot = conn;             // publish into the pool slot
  if (idle_timeout) {
    free(conn);             // recycle while handlers may still use it
  }
}

func handler(slot) {
  c = *slot;                // grab the current connection
  print(*c);                // ... and use it: inter-thread UAF window
}

// The fixed pool: recycling and use both happen inside the pool lock, and
// the slot is re-pointed to a fresh connection before the section ends, so
// a handler can never observe the freed object.
func safe_reaper(slot) {
  old = malloc();
  fresh = malloc();
  lock(poolmu);
  *slot = old;
  free(old);
  *slot = fresh;            // slot never leaves the section dangling
  unlock(poolmu);
}

func safe_handler(slot) {
  lock(poolmu);
  c = *slot;
  print(*c);
  unlock(poolmu);
}

func main() {
  pool = malloc();
  seed = malloc();
  *pool = seed;
  fork(t1, reaper, pool);
  fork(t2, handler, pool);

  safe_pool = malloc();
  safe_seed = malloc();
  *safe_pool = safe_seed;
  fork(t3, safe_reaper, safe_pool);
  fork(t4, safe_handler, safe_pool);
}
`

func main() {
	opt := canary.DefaultOptions()
	opt.Checkers = []string{canary.CheckUseAfterFree}

	res, err := canary.Analyze(server, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connection pool scan: %d report(s)\n\n", len(res.Reports))
	for _, r := range res.Reports {
		fmt.Println(r)
		for _, step := range r.Trace {
			fmt.Println("    ", step)
		}
		fmt.Println()
	}
	fmt.Println("the lock-protected pool produced no report: the mutual-exclusion")
	fmt.Println("constraints prove the handler cannot observe the freed connection.")
	fmt.Printf("\nstats: %d solver queries, %d refuted as irrealizable\n",
		res.Check.SolverQueries, res.Check.SolverUnsat)
}
