// Taint-leak hunt: an information-flow scenario in the style of DTAM
// (Ganai et al., FSE 2012 — the paper's information-leak citation). A
// credential read in one thread is published through shared memory,
// combined with other data, and eventually reaches a logging sink in
// another thread. A parallel flow that is join-ordered *before* the taint
// source shows the order constraints pruning an impossible leak.
//
// Run with: go run ./examples/taintleak
package main

import (
	"fmt"
	"log"

	"canary"
)

const program = `
func credential_reader(mailbox) {
  secret = taint();          // e.g. a password read from the user
  *mailbox = secret;
}

func logger(mailbox) {
  payload = *mailbox;
  decorated = payload + salt;
  sink(decorated);           // e.g. written to a world-readable log
}

// The early logger is joined before the credential is ever produced: the
// "leak" would need the sink to run after the source, which the program
// order forbids.
func early_logger(mailbox) {
  v = *mailbox;
  sink(v);
}

func main() {
  box = malloc();
  zero = malloc();
  *box = zero;

  fork(te, early_logger, box);
  join(te);

  fork(t1, credential_reader, box);
  fork(t2, logger, box);
}
`

func main() {
	opt := canary.DefaultOptions()
	opt.Checkers = []string{canary.CheckTaintLeak}
	res, err := canary.Analyze(program, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("credential-flow scan: %d leak report(s)\n\n", len(res.Reports))
	for _, r := range res.Reports {
		fmt.Println(r)
		for _, step := range r.Trace {
			fmt.Println("    ", step)
		}
	}
	fmt.Println("\nthe join-ordered early logger produced no report: the sink")
	fmt.Println("cannot execute after the taint source.")
}
