// Relaxed memory: the classic message-passing idiom under SC, TSO and PSO
// (the paper's §9 future-work extension, implemented here).
//
// The producer publishes a payload into a shared slot, retires it (free +
// overwrite through an aliased pointer), and then signals a condition
// variable; the consumer waits for the signal before reading. Under
// sequential consistency — and even under TSO — the consumer can only see
// the fresh object. Under PSO the producer's two stores may drain out of
// order, so the retired (freed) payload can still be the visible one when
// the signal arrives: a use-after-free that only exists on hardware with
// partial store order.
//
// Run with: go run ./examples/relaxedmemory
package main

import (
	"fmt"
	"log"

	"canary"
)

const program = `
func producer(cell) {
  b = malloc();
  fresh = malloc();
  *cell = b;             // publish
  alias = cell;
  *alias = fresh;        // retire: repoint the slot...
  free(b);               // ...and free the old payload
  notify(done);          // signal the consumer
}
func consumer(cell) {
  wait(done);            // consume only after the signal
  c = *cell;
  print(*c);
}
func main() {
  slot = malloc();
  seed = malloc();
  *slot = seed;
  fork(t1, producer, slot);
  fork(t2, consumer, slot);
}
`

func main() {
	for _, model := range []string{"sc", "tso", "pso"} {
		opt := canary.DefaultOptions()
		opt.Checkers = []string{canary.CheckUseAfterFree}
		opt.MemoryModel = model
		res, err := canary.Analyze(program, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s: %d report(s)\n", model, len(res.Reports))
		for _, r := range res.Reports {
			fmt.Println("  ", r)
		}
	}
	fmt.Println()
	fmt.Println("SC and TSO keep the producer's store→store order, so the wait/notify")
	fmt.Println("protocol is safe; PSO lets the overwrite drain before the publish,")
	fmt.Println("exposing the freed payload to the signalled consumer.")
}
