// Quickstart: the paper's motivating example (Fig. 2).
//
// The first program is bug-free — the store of the freed pointer and the
// load are guarded by contradictory branch conditions (θ1 vs ¬θ1), so the
// apparent inter-thread use-after-free can never happen. Path-insensitive
// tools report it anyway; Canary proves the path irrealizable and stays
// silent. The second program flips the condition, making the bug real, and
// Canary reports it with a concise value-flow trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"canary"
)

const cleanProgram = `
// Fig. 2(a) of the paper: bug-free despite the cross-thread free.
func main(a) {
  x = malloc();          // o1, shared via fork below
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;              // only when theta1 holds...
    print(*c);
  }
}

func thread1(y) {
  b = malloc();          // o2
  if (!theta1) {         // ...but the store needs !theta1: contradiction
    *y = b;
    free(b);
  }
}
`

const buggyProgram = `
// The same program with compatible conditions: a real inter-thread UAF.
func main(a) {
  x = malloc();
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}

func thread1(y) {
  b = malloc();
  if (theta1) {
    *y = b;
    free(b);
  }
}
`

func main() {
	opt := canary.DefaultOptions()

	fmt.Println("=== Fig. 2: the bug-free program ===")
	res, err := canary.Analyze(cleanProgram, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reports: %d (the θ1 ∧ ¬θ1 contradiction pruned %d candidate edge(s))\n\n",
		len(res.Reports), res.VFG.FilteredEdges)

	fmt.Println("=== The buggy variant ===")
	res, err = canary.Analyze(buggyProgram, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Reports {
		fmt.Println(r)
		fmt.Println("  value flow:")
		for _, step := range r.Trace {
			fmt.Println("   ", step)
		}
		fmt.Println("  aggregated guard:", r.Guard)
		fmt.Println("  witness interleaving:")
		for _, s := range r.Schedule {
			fmt.Println("   ", s)
		}
	}
	fmt.Printf("\nVFG: %d nodes, %d edges (%d interference), built in %v\n",
		res.VFG.Nodes, res.VFG.Edges, res.VFG.InterferenceEdges, res.VFG.BuildTime)
}
