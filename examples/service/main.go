// Service mode: the canaryd scheduler driven in-process. The same program
// is submitted twice — the cold submission runs the full pipeline, the
// warm one is answered from the content-addressed result store with the
// exact bytes of the cold run (the determinism contract makes the cached
// bytes safe to replay). The program itself is the session-store recycling
// bug in program.cn; submitting it over HTTP instead works identically
// (see "Running as a service" in the README, and `make serve-smoke`).
//
// Run with: go run ./examples/service
package main

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"log"

	"canary"
	"canary/internal/server"
)

//go:embed program.cn
var program string

func main() {
	srv, err := server.New(server.Config{MaxConcurrent: 2})
	if err != nil {
		log.Fatal(err)
	}

	submit := func(label string) *server.Job {
		job, err := srv.Submit(program, canary.DefaultOptions(), 0)
		if err != nil {
			log.Fatal(err)
		}
		<-job.Done()
		buf, cached, errMsg := job.Result()
		if errMsg != "" {
			log.Fatalf("%s: %s", label, errMsg)
		}
		var res canary.Result
		if err := json.Unmarshal(buf, &res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s submission %s (key %s): %d report(s), cached=%v\n",
			label, job.ID(), job.Key(), len(res.Reports), cached)
		for _, r := range res.Reports {
			fmt.Println("   ", r)
		}
		return job
	}

	cold := submit("cold")
	warm := submit("warm")

	coldBuf, _, _ := cold.Result()
	warmBuf, _, _ := warm.Result()
	fmt.Printf("\nwarm result byte-identical to cold: %v\n", string(coldBuf) == string(warmBuf))
	hits, misses, entries := srv.CacheStats()
	fmt.Printf("content store: %d hit, %d miss, %d entry\n", hits, misses, entries)
}
