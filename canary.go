// Package canary is a static detector of inter-thread value-flow bugs,
// reproducing "Canary: Practical Static Detection of Inter-thread
// Value-Flow Bugs" (Cai, Yao, Zhang — PLDI 2021).
//
// Canary reduces concurrency bug detection to guarded source–sink
// reachability over an interference-aware value-flow graph: a
// thread-modular algorithm captures data and interference dependence with
// execution-constraint guards on the edges, and an SMT solver decides
// whether each extracted source–sink path corresponds to a feasible
// interleaving under sequential consistency.
//
// The one-call entry point analyzes a program in the concurrent input
// language (see the examples directory and the README for the syntax):
//
//	result, err := canary.Analyze(src, canary.DefaultOptions())
//	for _, r := range result.Reports {
//	    fmt.Println(r)
//	}
//
// Four checkers are built in: inter-thread use-after-free, double-free,
// null-pointer dereference, and taint/information leak.
package canary

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"canary/internal/bitset"
	"canary/internal/cache"
	"canary/internal/core"
	"canary/internal/digest"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/pipeline"
	"canary/internal/smt"
)

// ErrCanceled is wrapped into every error returned because a context
// passed to AnalyzeContext, NewAnalysisContext, or CheckContext was
// canceled or hit its deadline. Callers distinguish an aborted analysis
// from a malformed program with errors.Is(err, ErrCanceled); the
// underlying context cause (context.Canceled or context.DeadlineExceeded)
// stays observable through errors.Is as well.
var ErrCanceled = errors.New("analysis canceled")

// canceled wraps a context error so that both ErrCanceled and the
// concrete context cause match errors.Is.
func canceled(err error) error {
	return fmt.Errorf("canary: %w: %w", ErrCanceled, err)
}

// ErrInternal is wrapped into every error produced by a recovered panic
// inside the pipeline: the analysis aborted because of a defect (or an
// injected fault), not because of the input program or the caller's
// context. The session that ran the analysis has already quarantined the
// per-function summaries the panicking run may have poisoned.
var ErrInternal = errors.New("internal analysis error")

// wrapAbort classifies an error escaping a pipeline stage: context
// cancellation keeps the ErrCanceled contract, everything else (injected
// faults, internal errors) passes through with only the package prefix so
// errors.Is still reaches the typed cause.
func wrapAbort(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return canceled(err)
	}
	return fmt.Errorf("canary: %w", err)
}

// GuardInternStats returns the cumulative process-wide hit and miss counts
// of the global guard hash-cons interner. Hits concentrate where structured
// formulas are constructed repeatedly — lowering, Φ_ls/Φ_po encoding during
// checking — and a repeated analysis of the same program interns with ~100%
// hits. VFGStats.CacheHits is the per-build slice of this counter.
func GuardInternStats() (hits, misses uint64) { return guard.InternStats() }

// AllocStats reports process-wide counters for the integer-keyed hot-path
// data structures: the number of live interned guard formulas (the hash-cons
// table size), the cumulative uint64 words allocated by bitset-backed
// points-to and location sets, and the number of formula evaluations served
// through the batched assignment-slice evaluator instead of per-call maps.
func AllocStats() (guardInterned int64, bitsetWords int64, batchedEvals uint64) {
	return guard.InternedCount(), bitset.WordsAllocated(), guard.BatchedEvals()
}

// Checker names accepted in Options.Checkers.
const (
	CheckUseAfterFree = core.CheckUAF
	CheckDoubleFree   = core.CheckDoubleFree
	CheckNullDeref    = core.CheckNullDeref
	CheckTaintLeak    = core.CheckTaintLeak
	// CheckDataRace and CheckDeadlock are the opt-in pair-based analyses
	// (guarded lockset-and-order race detection, ab-ba deadlock cycles);
	// they are not part of the default set.
	CheckDataRace = core.CheckDataRace
	CheckDeadlock = core.CheckDeadlock
)

// AllCheckers lists the default source–sink checkers.
func AllCheckers() []string { return append([]string(nil), core.AllCheckers...) }

// ExtendedCheckers lists the opt-in pair-based analyses.
func ExtendedCheckers() []string { return append([]string(nil), core.ExtendedCheckers...) }

// Options configures the whole pipeline. The zero value is not meaningful;
// start from DefaultOptions.
type Options struct {
	// Entry is the entry function; defaults to "main".
	Entry string
	// UnrollDepth bounds loops by unrolling (the paper unrolls twice).
	UnrollDepth int
	// InlineDepth bounds the calling-context cloning (the paper uses six).
	InlineDepth int

	// EnableMHP prunes non-parallel store/load pairs during the
	// interference analysis (§6).
	EnableMHP bool
	// GuardCap widens guards larger than this many formula nodes to true.
	GuardCap int

	// Checkers selects the properties to check; nil means all.
	Checkers []string
	// RequireInterThread keeps only bugs whose flow crosses threads.
	RequireInterThread bool
	// LockOrder enables the lock/unlock mutual-exclusion constraints.
	LockOrder bool
	// CondVarOrder enables the wait/notify order constraints.
	CondVarOrder bool
	// MemoryModel selects the consistency axioms: "sc" (default), "tso",
	// or "pso" (the paper's future-work relaxed-model extension).
	MemoryModel string
	// FactPropagation enables the customized order-fact decision procedure
	// that settles or shrinks queries before the SMT solver.
	FactPropagation bool
	// Workers sizes the worker pools of both the parallel VFG build and the
	// source–sink checking stage. 0 (the default) means one worker per
	// logical CPU; 1 forces a fully sequential pipeline. Results are
	// byte-identical for every worker count.
	Workers int
	// CubeAndConquer enables the parallel SMT strategy per query.
	CubeAndConquer bool
	// MaxConflicts bounds each SMT query.
	MaxConflicts int64
	// Budgets bounds the expensive stages; exhaustion degrades the result
	// (inconclusive verdicts, Result.Degraded) instead of aborting it.
	Budgets Budgets
}

// Budgets is the resource-governance block: step-counted bounds on the
// expensive pipeline stages. Every budget is deterministic — counted in
// analysis steps, never wall-clock — so a budget-limited run still honors
// the byte-identical-output contract for any worker count. The zero value
// means "defensive defaults only" (the generous built-in caps): no
// inconclusive entries are emitted for the fixpoint or search stages
// unless the corresponding budget is explicitly set.
//
// Exhaustion never aborts the analysis. The affected scope degrades:
//
//   - MaxFixpointRounds: the VFG is used as-built after that many
//     Alg. 1/Alg. 2 rounds; Result.Degraded lists "fixpoint".
//   - MaxDFSSteps: each source whose search is truncated contributes one
//     inconclusive report ("budget-exhausted: search") naming the source.
//   - MaxFormulaNodes: a source–sink pair whose assembled constraint
//     system exceeds the bound gets an inconclusive report
//     ("budget-exhausted: formula") instead of a solver query.
//
// The solver's own conflict budget stays Options.MaxConflicts; a query it
// leaves undecided becomes an inconclusive report ("budget-exhausted:
// solve"). Wall-clock budgets exist only in canaryd (per-stage timeouts),
// where determinism is traded explicitly for liveness.
type Budgets struct {
	// MaxFixpointRounds caps the outer VFG fixpoint (<= 0: default 32).
	MaxFixpointRounds int
	// MaxDFSSteps caps the per-source DFS (<= 0: default 200000).
	MaxDFSSteps int
	// MaxFormulaNodes caps each assembled SMT formula (<= 0: unbounded).
	MaxFormulaNodes int
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Entry:              "main",
		UnrollDepth:        2,
		InlineDepth:        6,
		EnableMHP:          true,
		GuardCap:           96,
		RequireInterThread: true,
		LockOrder:          true,
		CondVarOrder:       true,
		MemoryModel:        "sc",
		FactPropagation:    true,
		Workers:            0, // all CPUs
		MaxConflicts:       200000,
	}
}

// SubmissionKey returns the canonical SHA-256 content key of an analysis
// submission: the pair (source, options) that fully determines Analyze's
// output. Two submissions with the same key produce byte-identical
// results, so the key addresses a result cache (canaryd's content store
// keys on it).
//
// The source is canonicalized first (CRLF → LF, "//" comment text blanked,
// trailing whitespace stripped per line, exactly one trailing newline) —
// none of these affect the token stream, so cosmetically different copies
// of one program share a key. The canonicalizer is digest.CanonicalSource,
// the same one the incremental function digests build on: an edit that
// misses one cache misses both for the same reason. Note comment blanking
// preserves line structure, so the line numbers in a cached result replay
// exactly. Options are folded field by field in a fixed order with two
// deliberate exceptions: Workers is excluded, because the determinism
// contract guarantees the output is byte-identical for every worker count,
// and a nil Checkers list is canonicalized to the explicit default set.
// CubeAndConquer is included: the cube strategy does not retain solver
// models, so witness schedules differ from the sequential solver's.
func SubmissionKey(src string, opt Options) [32]byte {
	h := sha256.New()
	seg := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	str := func(s string) { seg([]byte(s)) }
	num := func(i int64) { str(strconv.FormatInt(i, 10)) }
	flag := func(b bool) { str(strconv.FormatBool(b)) }

	str("canary-submission-v3")
	str(digest.CanonicalSource(src))

	entry := opt.Entry
	if entry == "" {
		entry = "main"
	}
	str(entry)
	num(int64(opt.UnrollDepth))
	num(int64(opt.InlineDepth))
	flag(opt.EnableMHP)
	num(int64(opt.GuardCap))
	checkers := opt.Checkers
	if len(checkers) == 0 {
		checkers = core.AllCheckers
	}
	sorted := append([]string(nil), checkers...)
	sort.Strings(sorted)
	num(int64(len(sorted)))
	for _, c := range sorted {
		str(c)
	}
	flag(opt.RequireInterThread)
	flag(opt.LockOrder)
	flag(opt.CondVarOrder)
	model := opt.MemoryModel
	if model == "" {
		model = "sc"
	}
	str(model)
	flag(opt.FactPropagation)
	flag(opt.CubeAndConquer)
	num(opt.MaxConflicts)
	num(int64(opt.Budgets.MaxFixpointRounds))
	num(int64(opt.Budgets.MaxDFSSteps))
	num(int64(opt.Budgets.MaxFormulaNodes))

	var key [32]byte
	h.Sum(key[:0])
	return key
}

// Site is one program point in a report.
type Site struct {
	Fn     string
	Line   int
	Thread int
	Desc   string
}

func (s Site) String() string {
	return fmt.Sprintf("%s (line %d, thread %d, %s)", s.Desc, s.Line, s.Thread, s.Fn)
}

// Report is one detected bug: a realizable source–sink value flow.
type Report struct {
	// Kind is the checker name (e.g. "use-after-free").
	Kind string
	// Source and Sink are the endpoints (e.g. the free and the use).
	Source Site
	Sink   Site
	// Trace is the value-flow path between them, one step per line.
	Trace []string
	// Schedule is a concrete witness interleaving of the involved
	// statements ("ℓ5 [thread 1]: *y = b", ...), reconstructed from the
	// solver's satisfying assignment.
	Schedule []string
	// Guard is the aggregated execution constraint of the path.
	Guard string
	// Decided is false when the report is inconclusive: a budget ran out
	// or an internal error was recovered, and the report is kept as a
	// potential bug (the soundy choice). Verdict and Reason carry the
	// structured form of the same information.
	Decided bool
	// Verdict is VerdictRealizable for a decided report and
	// VerdictInconclusive otherwise.
	Verdict Verdict
	// Reason is empty for a decided report; an inconclusive one names its
	// cause: "budget-exhausted: <fixpoint|search|formula|solve>" or
	// "internal-error: <detail>" (a recovered panic or injected fault).
	Reason string
}

// Verdict classifies a report's decision status.
type Verdict string

// Report verdicts. A realizable report carries a solver-confirmed witness
// interleaving; an inconclusive one marks a source–sink pair (or a whole
// truncated source search) the analysis could not decide within its
// budgets — kept as a potential bug rather than dropped, so exhaustion
// degrades the answer instead of silently shrinking it.
const (
	VerdictRealizable   Verdict = "realizable"
	VerdictInconclusive Verdict = "inconclusive"
)

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] source: %s\n         sink: %s", r.Kind, r.Source, r.Sink)
	if !r.Decided {
		reason := r.Reason
		if reason == "" {
			reason = pipeline.ReasonSolveExhausted
		}
		fmt.Fprintf(&b, "\n         (inconclusive: %s; potential bug)", reason)
	}
	return b.String()
}

// VFGStats describes the constructed value-flow graph.
type VFGStats struct {
	Nodes             int
	Edges             int
	DirectEdges       int
	DataDepEdges      int
	InterferenceEdges int
	FilteredEdges     int
	EscapedObjects    int
	Iterations        int
	BuildTime         time.Duration
	// ParallelBuildTime is the part of BuildTime spent in the parallel
	// regions (per-thread dependence passes, interference-guard
	// evaluation).
	ParallelBuildTime time.Duration
	// CacheHits counts guard hash-cons hits during the build: formula
	// constructions answered by the global interner instead of a fresh
	// allocation.
	CacheHits uint64
	// SummaryHits / FuncsReanalyzed report the incremental summarize step
	// when the analysis ran inside a Session: how many functions' transfer
	// summaries were loaded from the digest-keyed store and how many were
	// recomputed (hits + reanalyzed = total functions). A session-less
	// analysis reanalyzes every function.
	SummaryHits     int
	FuncsReanalyzed int
	// FixpointBudgetExhausted reports that the outer VFG fixpoint stopped
	// at its round cap while still making progress; the graph (and every
	// report derived from it) is a sound under-approximation.
	FixpointBudgetExhausted bool
}

// CheckStats describes the checking stage's work.
type CheckStats struct {
	Sources       int
	PathsExamined int
	SemiDecided   int
	FactDecided   int
	SolverQueries int
	SolverUnsat   int
	// CacheHits / CacheMisses count SMT query-cache lookups. The cache is
	// shared across checkers and across repeated Check rounds over one
	// Analysis, so a second round replays most verdicts.
	CacheHits   int
	CacheMisses int
	// TrivialSolves counts queries decided by the pre-CNF fast path
	// (constant folding + unit propagation) without the solver or a cache.
	TrivialSolves int
	// VerdictHits counts queries replayed from a Session's cross-run
	// structural verdict store; zero for session-less analyses.
	VerdictHits int
	// PairsRechecked counts the (source, sink) pairs whose realizability
	// decision was actually recomputed this run rather than replayed from
	// the warm verdict store.
	PairsRechecked int
	SearchTime     time.Duration
	SolveTime      time.Duration
	// The degradation observables: per-source searches that ran out of
	// DFS steps, assembled formulas over the node budget, solver queries
	// left Unknown by the conflict budget, and panics recovered into
	// internal-error reports instead of crashing the process.
	SearchBudgetExhausted  int
	FormulaBudgetExhausted int
	SolveBudgetExhausted   int
	PanicsRecovered        int
}

// StageSpan is one entry of Result.Trace: the structured trace record of
// one pipeline stage's execution. Spans carry wall-clock measurements and
// work counters and are explicitly OUTSIDE the determinism contract —
// byte-identical analyses may carry different spans, and canaryd's result
// cache replays the cold run's trace verbatim.
type StageSpan struct {
	// Stage is the canonical stage name, one of the pipeline registry's
	// parse, lower, pta, datadep, interference, mhp, vfg, check.
	Stage string
	// Wall is the stage's wall-clock duration. The vfg span carries the
	// build's residual (fixpoint merge and bookkeeping) — the datadep,
	// interference, and mhp spans hold their own shares — so summing all
	// spans approximates the whole analysis.
	Wall time.Duration
	// Steps counts the stage-defined work units consumed: functions
	// re-summarized (pta), instructions lowered (lower), fixpoint
	// iterations (vfg), DFS steps (check), edges added (datadep,
	// interference).
	Steps int64
	// Budget is the configured step budget of the stage's governing
	// dimension; 0 when the stage ran ungoverned.
	Budget int64
	// BudgetRemaining is the unconsumed part of that budget, -1 when
	// ungoverned.
	BudgetRemaining int64
	// CacheHits counts reused cached work: summary-store hits (pta),
	// guard-interner hits (vfg), SMT query-cache plus verdict-store hits
	// (check).
	CacheHits uint64
}

// Result is the outcome of Analyze.
type Result struct {
	Reports      []Report
	VFG          VFGStats
	Check        CheckStats
	Threads      int
	Instructions int
	// Degraded lists the budget dimensions exhausted during this analysis,
	// in pipeline order (the registration order of the stage registry):
	// "fixpoint", "search", "formula", "solve". Empty means every answer
	// is as complete as the options allow. The fixpoint and search entries
	// appear only when the corresponding Budgets field was explicitly
	// set — the built-in defensive caps do not count as caller-chosen
	// budgets.
	Degraded []string
	// Trace holds one span per executed pipeline stage, in pipeline
	// order. Like the stats, the trace is outside the determinism
	// contract (wall times vary run to run).
	Trace []StageSpan
}

// Analysis holds a built interference-aware VFG so that several checker
// configurations can run over one program without re-running the
// dependence analyses.
type Analysis struct {
	opt     Options
	b       *core.Builder
	session *Session
	// src is kept so that a panic recovered during checking can
	// quarantine this program's per-function summaries from the session.
	src string
	// run is the pipeline runner that executed the build stages; Check
	// rounds run through it too, and Result.Trace is read off it. An
	// Analysis (like its runner) is not safe for concurrent Check calls.
	run *pipeline.Runner
	// keys holds the per-function summary digests the build computed (or
	// was handed), so a live session can seed its invalidation baseline
	// without re-digesting the revision it just analyzed.
	keys map[string]cache.Key
}

// NewAnalysis parses and lowers src and builds the interference-aware VFG
// once. Use Check to run (possibly several rounds of) checkers over it.
func NewAnalysis(src string, opt Options) (*Analysis, error) {
	return NewAnalysisContext(context.Background(), src, opt)
}

// NewAnalysisContext is NewAnalysis with cooperative cancellation: the VFG
// fixpoint checks ctx between rounds and aborts with an error wrapping
// ErrCanceled (and the context cause) when it is done.
func NewAnalysisContext(ctx context.Context, src string, opt Options) (*Analysis, error) {
	var s *Session
	return s.NewAnalysisContext(ctx, src, opt)
}

func memoryModelOf(opt Options) (core.MemoryModel, error) {
	switch opt.MemoryModel {
	case "", "sc":
		return core.MemSC, nil
	case "tso":
		return core.MemTSO, nil
	case "pso":
		return core.MemPSO, nil
	}
	return core.MemSC, fmt.Errorf("canary: unknown memory model %q (want sc, tso or pso)", opt.MemoryModel)
}

// Check runs the given checkers (nil = the Options' selection, which
// defaults to all source–sink checkers) over the already-built VFG.
func (a *Analysis) Check(checkers ...string) (*Result, error) {
	return a.CheckContext(context.Background(), checkers...)
}

// CheckContext is Check with cooperative cancellation: ctx is consulted
// between checkers and between source–sink searches. On cancellation the
// partial reports are discarded and the returned error wraps ErrCanceled
// and the context cause. A panic escaping the checking stage is recovered
// into an error wrapping ErrInternal, after quarantining the program's
// per-function summaries from the session.
func (a *Analysis) CheckContext(ctx context.Context, checkers ...string) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			a.session.recordPanic(a.src)
			res, err = nil, fmt.Errorf("canary: %w: %v", ErrInternal, r)
		}
	}()
	opt := a.opt
	if len(checkers) > 0 {
		opt.Checkers = checkers
	}
	model, merr := memoryModelOf(opt)
	if merr != nil {
		return nil, merr
	}
	var reports []core.Report
	var stats core.CheckStats
	if err := a.run.Run(ctx, pipeline.StageCheck, func(sp *pipeline.Span) error {
		var cerr error
		reports, stats, cerr = a.b.CheckContext(ctx, core.CheckOptions{
			Checkers:             opt.Checkers,
			RequireInterThread:   opt.RequireInterThread,
			LockOrder:            opt.LockOrder,
			CondVarOrder:         opt.CondVarOrder,
			MemoryModel:          model,
			FactPropagation:      opt.FactPropagation,
			Workers:              opt.Workers,
			CubeAndConquer:       opt.CubeAndConquer,
			MaxConflicts:         opt.MaxConflicts,
			MaxDFSSteps:          opt.Budgets.MaxDFSSteps,
			ExplicitSearchBudget: opt.Budgets.MaxDFSSteps > 0,
			MaxFormulaNodes:      opt.Budgets.MaxFormulaNodes,
			Verdicts:             a.session.verdictStore(),
		})
		sp.Steps = int64(stats.SearchSteps)
		sp.Budget = int64(opt.Budgets.MaxDFSSteps)
		sp.CacheHits = uint64(stats.CacheHits + stats.VerdictHits)
		return cerr
	}); err != nil {
		return nil, classifyStageErr(a.session, a.src, err)
	}
	return a.result(reports, stats), nil
}

// WriteDot renders the built VFG in Graphviz DOT form.
func (a *Analysis) WriteDot(w io.Writer) error { return a.b.G.WriteDot(w) }

// Analyze parses, lowers, builds the interference-aware VFG, and runs the
// selected checkers on src. For several checking rounds over one program,
// use NewAnalysis + Check.
func Analyze(src string, opt Options) (*Result, error) {
	return AnalyzeContext(context.Background(), src, opt)
}

// AnalyzeContext is Analyze with cooperative cancellation: both the VFG
// fixpoint (between rounds) and the checking stage (between source–sink
// searches) poll ctx, so a canceled or deadline-bounded analysis returns
// promptly with an error wrapping ErrCanceled.
func AnalyzeContext(ctx context.Context, src string, opt Options) (*Result, error) {
	var s *Session
	return s.AnalyzeContext(ctx, src, opt)
}

func (a *Analysis) result(reports []core.Report, stats core.CheckStats) *Result {
	b := a.b
	prog := b.Prog
	res := &Result{
		Threads:      len(prog.Threads),
		Instructions: prog.NumInsts(),
		VFG: VFGStats{
			Nodes:                   b.G.NumNodes(),
			Edges:                   b.G.NumEdges(),
			DirectEdges:             b.Stats.DirectEdges,
			DataDepEdges:            b.Stats.DataDepEdges,
			InterferenceEdges:       b.Stats.InterferenceEdges,
			FilteredEdges:           b.Stats.FilteredEdges,
			EscapedObjects:          b.Stats.EscapedObjects,
			Iterations:              b.Stats.Iterations,
			BuildTime:               b.Stats.BuildTime,
			ParallelBuildTime:       b.Stats.ParallelTime,
			CacheHits:               b.Stats.GuardCacheHits,
			SummaryHits:             b.Stats.SummaryHits,
			FuncsReanalyzed:         b.Stats.FuncsReanalyzed,
			FixpointBudgetExhausted: b.Stats.FixpointExhausted,
		},
		Check: CheckStats{
			Sources:                stats.Sources,
			PathsExamined:          stats.PathsExamined,
			SemiDecided:            stats.SemiDecided,
			FactDecided:            stats.FactDecided,
			SolverQueries:          stats.SolverQueries,
			SolverUnsat:            stats.SolverUnsat,
			CacheHits:              stats.CacheHits,
			CacheMisses:            stats.CacheMisses,
			TrivialSolves:          stats.TrivialSolves,
			VerdictHits:            stats.VerdictHits,
			PairsRechecked:         stats.PairsRechecked,
			SearchTime:             stats.SearchTime,
			SolveTime:              stats.SolveTime,
			SearchBudgetExhausted:  stats.SearchBudgetExhausted,
			FormulaBudgetExhausted: stats.FormulaBudgetExhausted,
			SolveBudgetExhausted:   stats.SolveBudgetExhausted,
			PanicsRecovered:        stats.PanicsRecovered,
		},
	}
	// Degraded lists exhausted budget dimensions; the ordering is the
	// stage registry's, not a local list. Fixpoint and search appear only
	// under an explicit Budgets setting: their built-in defensive caps
	// predate the governance layer and tripping them is not a
	// caller-chosen degradation.
	exhausted := map[string]bool{
		pipeline.BudgetFixpoint: b.Stats.FixpointExhausted && a.opt.Budgets.MaxFixpointRounds > 0,
		pipeline.BudgetSearch:   stats.SearchBudgetExhausted > 0 && a.opt.Budgets.MaxDFSSteps > 0,
		pipeline.BudgetFormula:  stats.FormulaBudgetExhausted > 0,
		pipeline.BudgetSolve:    stats.SolveBudgetExhausted > 0,
	}
	for _, dim := range pipeline.BudgetDimensions() {
		if exhausted[dim] {
			res.Degraded = append(res.Degraded, dim)
		}
	}
	if a.run != nil {
		for _, sp := range a.run.Trace() {
			res.Trace = append(res.Trace, StageSpan{
				Stage:           sp.Stage,
				Wall:            sp.Wall,
				Steps:           sp.Steps,
				Budget:          sp.Budget,
				BudgetRemaining: sp.BudgetRemaining(),
				CacheHits:       sp.CacheHits,
			})
		}
	}
	for _, r := range reports {
		pub := Report{
			Kind:    r.Kind,
			Source:  Site{Fn: r.Source.Fn, Line: r.Source.Line, Thread: r.Source.Thread, Desc: r.Source.Desc},
			Sink:    Site{Fn: r.Sink.Fn, Line: r.Sink.Line, Thread: r.Sink.Thread, Desc: r.Sink.Desc},
			Guard:   r.Guard,
			Decided: r.Result == smt.Sat,
			Reason:  r.Reason,
		}
		if pub.Decided {
			pub.Verdict = VerdictRealizable
		} else {
			pub.Verdict = VerdictInconclusive
			if pub.Reason == "" {
				pub.Reason = "budget-exhausted: solve"
			}
		}
		for _, p := range r.Path {
			pub.Trace = append(pub.Trace, p.Desc)
		}
		for _, s := range r.Schedule {
			pub.Schedule = append(pub.Schedule, fmt.Sprintf("%s [thread %d]", s.Desc, s.Thread))
		}
		res.Reports = append(res.Reports, pub)
	}
	return res
}

// AnalyzeFile reads path and analyzes its contents.
func AnalyzeFile(path string, opt Options) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("canary: %w", err)
	}
	return Analyze(string(data), opt)
}

// WriteVFGDot builds the interference-aware value-flow graph of src and
// writes it in Graphviz DOT form: objects as boxes, variable definitions
// as ellipses, interference edges dashed (the paper's Fig. 2(b) notation).
func WriteVFGDot(src string, opt Options, w io.Writer) error {
	ast, err := lang.Parse(src)
	if err != nil {
		return fmt.Errorf("canary: %w", err)
	}
	prog, err := ir.Lower(ast, ir.Options{
		UnrollDepth: opt.UnrollDepth,
		InlineDepth: opt.InlineDepth,
		Entry:       opt.Entry,
	})
	if err != nil {
		return fmt.Errorf("canary: %w", err)
	}
	b := core.Build(prog, core.BuildOptions{EnableMHP: opt.EnableMHP, GuardCap: opt.GuardCap, Workers: opt.Workers})
	return b.G.WriteDot(w)
}
