GO ?= go

.PHONY: check build test race vet bench

## check: the full CI gate — vet, build, and race-enabled tests.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the quick benchmark suite (one bench per paper table/figure).
bench:
	$(GO) test -run - -bench . -benchmem .
