GO ?= go

.PHONY: check build test race vet bench bench-json serve-smoke

## check: the full CI gate — vet, build, race-enabled tests (includes the
## corpus-wide incremental determinism test), the end-to-end daemon smoke
## test, and a one-iteration smoke of the incremental benchmark.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) run scripts/serve_smoke.go
	$(GO) run ./cmd/canary-bench -experiment incremental -incr-iters 1 -incr-lines 600 -json > /dev/null

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the quick benchmark suite (one bench per paper table/figure).
bench:
	$(GO) test -run - -bench . -benchmem .

## bench-json: regenerate the checked-in incremental benchmark snapshot.
bench-json:
	$(GO) run ./cmd/canary-bench -experiment incremental -json > BENCH_incremental.json

## serve-smoke: end-to-end canaryd exercise — random port, example
## submission vs CLI, cache replay, /healthz, /metrics, SIGTERM drain.
serve-smoke:
	$(GO) run scripts/serve_smoke.go
