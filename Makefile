GO ?= go

.PHONY: check lint build test race vet bench bench-json bench-hotpath-smoke bench-persist-smoke bench-sessions-smoke serve-smoke sessions-smoke fleet-smoke chaos-smoke fuzz-smoke fuzz

## check: the full CI gate — lint (gofmt drift + vet), build, race-enabled
## tests (includes the corpus-wide determinism tests, the fresh-process
## warm-restart tests, and the 16-goroutine fault/budget hammer), short
## fuzzer smokes (including the disk- and peer-facing wire decoders), the
## end-to-end daemon, fleet, and chaos smoke tests, and one-iteration
## smokes of the incremental and persist benchmarks.
check: lint
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=5s ./internal/lang
	$(GO) test -run=NONE -fuzz=FuzzAnalyze -fuzztime=5s .
	$(GO) test -run=NONE -fuzz=FuzzDecodeEntry -fuzztime=5s ./internal/diskstore
	$(GO) test -run=NONE -fuzz=FuzzDecodeSummary -fuzztime=5s ./internal/pta
	$(GO) test -run=NONE -fuzz=FuzzDecodeVerdict -fuzztime=5s ./internal/smt
	$(GO) test -run=NONE -fuzz=FuzzParseAnalyzeRequest -fuzztime=5s ./internal/api
	$(GO) test -run=NONE -fuzz=FuzzParseGossip -fuzztime=5s ./internal/api
	$(GO) test -run=NONE -fuzz=FuzzParseEditRequest -fuzztime=5s ./internal/api
	$(GO) test -run=NONE -fuzz=FuzzDecodePeerEntry -fuzztime=5s ./internal/fleet
	$(GO) run scripts/serve_smoke.go
	$(GO) run scripts/sessions_smoke.go
	$(GO) run scripts/fleet_smoke.go
	$(GO) run scripts/chaos_smoke.go
	$(GO) run ./cmd/canary-bench -experiment incremental -incr-iters 1 -incr-lines 600 -json > /dev/null
	$(MAKE) bench-hotpath-smoke
	$(MAKE) bench-persist-smoke
	$(MAKE) bench-sessions-smoke

## lint: formatting drift fails the build (gofmt prints the offending
## files), then static vetting.
lint:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the quick benchmark suite (one bench per paper table/figure).
bench:
	$(GO) test -run - -bench . -benchmem .

## bench-json: regenerate the checked-in benchmark snapshots.
bench-json:
	$(GO) run ./cmd/canary-bench -experiment incremental -json > BENCH_incremental.json
	$(GO) run ./cmd/canary-bench -experiment hotpath -json > BENCH_hotpath.json
	$(GO) run ./cmd/canary-bench -experiment persist -json > BENCH_persist.json
	$(GO) run ./cmd/canary-bench -experiment fleet -json > BENCH_fleet.json
	$(GO) run ./cmd/canary-bench -experiment chaos -json > BENCH_chaos.json
	$(GO) run ./cmd/canary-bench -experiment sessions -json > BENCH_sessions.json

## bench-hotpath-smoke: tiny-corpus run of the hotpath experiment with an
## allocation regression gate — guard construction above 40 allocs/op (the
## pre-interning representation sat at ~43) fails the build.
bench-hotpath-smoke:
	$(GO) run ./cmd/canary-bench -experiment hotpath \
		-hotpath-lines 400 -hotpath-guard-ops 200 -hotpath-iters 2 \
		-hotpath-max-guard-allocs 40 -json > /dev/null

## bench-persist-smoke: tiny-corpus run of the persist experiment — a real
## fresh-process warm restart that must serve at least one disk hit and
## stay byte-identical to the cold run (the experiment exits 1 otherwise).
bench-persist-smoke:
	$(GO) run ./cmd/canary-bench -experiment persist \
		-persist-lines 400 -persist-iters 1 -persist-min-disk-hits 1 -json > /dev/null

## bench-sessions-smoke: small-subject run of the sessions experiment —
## the per-edit delta path must stay strictly below the full warm re-run
## it replaces, and the folded deltas byte-identical to a cold analysis
## (the experiment exits 1 on either failure).
bench-sessions-smoke:
	$(GO) run ./cmd/canary-bench -experiment sessions \
		-sessions-lines 600 -sessions-edits 6 -json > /dev/null

## serve-smoke: end-to-end canaryd exercise — random port, example
## submission vs CLI, cache replay, /healthz, /metrics, 413, queue-full
## backpressure with Retry-After, SIGTERM drain.
serve-smoke:
	$(GO) run scripts/serve_smoke.go

## sessions-smoke: end-to-end live-session exercise — real canaryd with a
## short idle TTL, session opened, three edits streamed with client-side
## delta folds checked byte-identical to GET findings, duplicate-open and
## rejected-edit paths, TTL eviction, SIGTERM drain.
sessions-smoke:
	$(GO) run scripts/sessions_smoke.go

## fleet-smoke: end-to-end fleet exercise — canary-router in front of two
## canaryd workers, batch submit vs direct library run, warm replay, one
## worker SIGKILLed mid-run with failover asserted byte-identical.
fleet-smoke:
	$(GO) run scripts/fleet_smoke.go

## chaos-smoke: end-to-end self-healing exercise — a gossip-joined fleet
## (router + three canaryd workers, no static worker list) driven through
## SIGKILL, dead-node rejoin, SIGSTOP/SIGCONT suspect, and a failpoint
## storm, with every round asserted byte-identical to a direct library run
## and membership convergence bounded in heartbeats.
chaos-smoke:
	$(GO) run scripts/chaos_smoke.go

## fuzz-smoke: the short fuzzer passes run by check, including the two
## fleet wire decoders (batch request envelope, peer cache entry).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=5s ./internal/lang
	$(GO) test -run=NONE -fuzz=FuzzAnalyze -fuzztime=5s .
	$(GO) test -run=NONE -fuzz=FuzzParseAnalyzeRequest -fuzztime=5s ./internal/api
	$(GO) test -run=NONE -fuzz=FuzzParseGossip -fuzztime=5s ./internal/api
	$(GO) test -run=NONE -fuzz=FuzzParseEditRequest -fuzztime=5s ./internal/api
	$(GO) test -run=NONE -fuzz=FuzzDecodePeerEntry -fuzztime=5s ./internal/fleet

## fuzz: longer exploratory fuzzing of the parser and the full pipeline.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=2m ./internal/lang
	$(GO) test -run=NONE -fuzz=FuzzAnalyze -fuzztime=2m .
