GO ?= go

.PHONY: check build test race vet bench serve-smoke

## check: the full CI gate — vet, build, race-enabled tests, and the
## end-to-end daemon smoke test.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) run scripts/serve_smoke.go

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the quick benchmark suite (one bench per paper table/figure).
bench:
	$(GO) test -run - -bench . -benchmem .

## serve-smoke: end-to-end canaryd exercise — random port, example
## submission vs CLI, cache replay, /healthz, /metrics, SIGTERM drain.
serve-smoke:
	$(GO) run scripts/serve_smoke.go
