package canary

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"canary/internal/baseline"
	"canary/internal/bitset"
	"canary/internal/core"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/workload"
)

// randomSpec builds a small random workload spec.
func randomSpec(r *rand.Rand) workload.Spec {
	return workload.Spec{
		Name:          "prop",
		Lines:         r.Intn(300) + 100,
		Seed:          r.Int63(),
		TruePositives: r.Intn(3),
		CanaryFPs:     r.Intn(2),
		Fig2Traps:     r.Intn(3),
		OrderTraps:    r.Intn(2),
		LockTraps:     r.Intn(2),
		SaberTraps:    r.Intn(2),
		Fan:           r.Intn(3) + 1,
	}
}

// Property: every pair Canary reports is also connected in the Saber-like
// baseline's flow-insensitive over-approximation — i.e., Canary's
// precision gains never come from inventing flows, only from refuting them.
func TestQuickCanarySubsetOfSaber(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		src := workload.Generate(spec)
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		prog, err := ir.Lower(ast, ir.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		b := core.Build(prog, core.DefaultBuild())
		opt := core.DefaultCheck()
		opt.Checkers = []string{core.CheckUAF}
		canaryReports, _ := b.Check(opt)

		res, err := baseline.Saber{}.BuildVFG(context.Background(), prog)
		if err != nil {
			t.Fatalf("seed %d: saber: %v", seed, err)
		}
		saber := make(map[[2]ir.Label]bool)
		for _, nr := range baseline.CheckReachability(res.G, "use-after-free") {
			saber[[2]ir.Label{nr.Source, nr.Sink}] = true
		}
		for _, cr := range canaryReports {
			if !saber[[2]ir.Label{cr.Source.Label, cr.Sink.Label}] {
				t.Logf("seed %d: canary-only pair %d→%d (%s → %s)", seed,
					cr.Source.Label, cr.Sink.Label, cr.Source.Desc, cr.Sink.Desc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the checker's verdicts are stable across the performance knobs
// (workers, cube-and-conquer, fact propagation) — they change cost, never
// results.
func TestQuickConfigInvariance(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		src := workload.Generate(spec)

		run := func(mutate func(*Options)) int {
			opt := DefaultOptions()
			opt.Checkers = []string{CheckUseAfterFree}
			if mutate != nil {
				mutate(&opt)
			}
			res, err := Analyze(src, opt)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return len(res.Reports)
		}
		base := run(nil)
		variants := []func(*Options){
			func(o *Options) { o.Workers = 4 },
			func(o *Options) { o.CubeAndConquer = true },
			func(o *Options) { o.FactPropagation = false },
			func(o *Options) { o.Workers = 3; o.FactPropagation = false },
		}
		for i, v := range variants {
			if got := run(v); got != base {
				t.Logf("seed %d: variant %d changed verdict: %d vs %d", seed, i, got, base)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: MHP is symmetric and same-thread pairs are never MHP; Ordered
// is antisymmetric.
func TestQuickMHPProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		src := workload.Generate(spec)
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Lower(ast, ir.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b := core.Build(prog, core.DefaultBuild())
		n := prog.NumInsts()
		for trial := 0; trial < 200; trial++ {
			a := ir.Label(r.Intn(n))
			z := ir.Label(r.Intn(n))
			if b.MHP.MHP(a, z) != b.MHP.MHP(z, a) {
				t.Logf("seed %d: MHP not symmetric at (%d,%d)", seed, a, z)
				return false
			}
			if prog.Inst(a).Thread == prog.Inst(z).Thread && b.MHP.MHP(a, z) {
				t.Logf("seed %d: same-thread MHP at (%d,%d)", seed, a, z)
				return false
			}
			if b.MHP.Ordered(a, z) != -b.MHP.Ordered(z, a) {
				t.Logf("seed %d: Ordered not antisymmetric at (%d,%d)", seed, a, z)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: Analyze never panics on malformed input — it parses or
// returns an error.
func TestQuickAnalyzeRobustOnJunk(t *testing.T) {
	tokens := []string{
		"func", "main", "(", ")", "{", "}", ";", "=", "*", "&", "malloc",
		"free", "print", "fork", "join", "if", "else", "while", "x", "y",
		"t", "lock", "unlock", "wait", "notify", "null", "taint", "sink",
		"1", "0", "&&", "||", "!", "==", "<", "global", "return", ",",
	}
	check := func(seed int64) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				t.Logf("seed %d panicked: %v", seed, p)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var src string
		for i := 0; i < r.Intn(120); i++ {
			src += tokens[r.Intn(len(tokens))] + " "
		}
		_, _ = Analyze(src, DefaultOptions())
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: random byte soup must never panic the lexer/parser.
func TestQuickParserRobustOnBytes(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				t.Logf("panicked on %q: %v", data, p)
				ok = false
			}
		}()
		_, _ = lang.Parse(string(data))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// Property: the IR lowering maintains its structural invariants on random
// workloads — topological block order, consistent pred/succ links, and
// defs before uses in program order.
func TestQuickIRInvariants(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		src := workload.Generate(spec)
		ast, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Lower(ast, ir.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, th := range prog.Threads {
			for i := 1; i < len(th.Blocks); i++ {
				if th.Blocks[i].ID <= th.Blocks[i-1].ID {
					t.Logf("seed %d: thread %d blocks not ID-ordered", seed, th.ID)
					return false
				}
			}
			for _, blk := range th.Blocks {
				for _, s := range blk.Succs {
					if s.ID <= blk.ID {
						t.Logf("seed %d: back edge %d→%d (must be acyclic)", seed, blk.ID, s.ID)
						return false
					}
					found := false
					for _, p := range s.Preds {
						if p == blk {
							found = true
						}
					}
					if !found {
						t.Logf("seed %d: succ/pred mismatch", seed)
						return false
					}
				}
			}
		}
		// Defs precede uses (SSA over the acyclic CFG): a same-thread use
		// must be reachable from (or in the same block after) its def.
		for _, inst := range prog.Insts() {
			for _, use := range [][]ir.VarID{{inst.Val, inst.Ptr}, inst.Ops} {
				for _, v := range use {
					if v == 0 {
						continue
					}
					def := prog.Var(v).Def
					if def == ir.NoLabel || def == inst.Label {
						continue
					}
					defInst := prog.Inst(def)
					if defInst.Thread != inst.Thread {
						continue // cross-thread param binding
					}
					if !prog.Reaches(def, inst.Label) {
						t.Logf("seed %d: use at ℓ%d not reachable from def ℓ%d (%s / %s)",
							seed, inst.Label, def, prog.String(defInst), prog.String(inst))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: report counts from Analyze equal the seeded ground truth of
// the workload generator for arbitrary specs (the Table 1 invariant,
// generalized).
func TestQuickWorkloadGroundTruth(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		src := workload.Generate(spec)
		opt := DefaultOptions()
		opt.Checkers = []string{CheckUseAfterFree}
		res, err := Analyze(src, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tp, fp := 0, 0
		for _, rep := range res.Reports {
			if workload.TruePositive(rep.Source.Fn) {
				tp++
			} else {
				fp++
			}
		}
		if tp != spec.TruePositives || fp != spec.CanaryFPs {
			t.Logf("seed %d (%s): got tp=%d fp=%d, want tp=%d fp=%d",
				seed, fmt.Sprintf("%+v", spec), tp, fp, spec.TruePositives, spec.CanaryFPs)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bitset used by the points-to and location hot paths agrees
// with a map[int]bool reference on every operation sequence — membership,
// add/remove reporting, union change-reporting, cardinality, and strictly
// ascending iteration.
func TestQuickBitsetMatchesMapSet(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, other := new(bitset.Set), new(bitset.Set)
		ref := make(map[int]bool)
		oref := make(map[int]bool)
		for op := 0; op < 300; op++ {
			k := r.Intn(400)
			switch r.Intn(5) {
			case 0:
				if s.Add(k) != !ref[k] {
					t.Logf("seed %d: Add(%d) change report wrong", seed, k)
					return false
				}
				ref[k] = true
			case 1:
				s.Remove(k)
				delete(ref, k)
			case 2:
				other.Add(k)
				oref[k] = true
			case 3:
				grew := false
				for kk := range oref {
					if !ref[kk] {
						ref[kk] = true
						grew = true
					}
				}
				if s.UnionWith(other) != grew {
					t.Logf("seed %d: UnionWith change report wrong", seed)
					return false
				}
			case 4:
				if s.Has(k) != ref[k] {
					t.Logf("seed %d: Has(%d) mismatch", seed, k)
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			t.Logf("seed %d: Len %d != %d", seed, s.Len(), len(ref))
			return false
		}
		prev, ordered := -1, true
		seen := 0
		s.ForEach(func(k int) {
			if k <= prev || !ref[k] {
				ordered = false
			}
			prev = k
			seen++
		})
		return ordered && seen == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the batched assignment-slice evaluator (EvalAssign / EvalAll)
// agrees with the map-based Eval on random formulas under random partial
// assignments, including the unassigned-atom-is-false convention.
func TestQuickBatchedEvalMatchesMapEval(t *testing.T) {
	const nAtoms = 12
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var gen func(depth int) *guard.Formula
		gen = func(depth int) *guard.Formula {
			if depth == 0 || r.Intn(3) == 0 {
				f := guard.Var(guard.Atom(r.Intn(nAtoms) + 1))
				if r.Intn(2) == 0 {
					f = guard.Not(f)
				}
				return f
			}
			subs := make([]*guard.Formula, r.Intn(3)+2)
			for i := range subs {
				subs[i] = gen(depth - 1)
			}
			if r.Intn(2) == 0 {
				return guard.And(subs...)
			}
			return guard.Or(subs...)
		}
		fs := make([]*guard.Formula, r.Intn(8)+1)
		for i := range fs {
			fs[i] = gen(3)
		}
		m := make(map[guard.Atom]bool)
		asn := guard.NewAssignment(nAtoms)
		for a := guard.Atom(1); a <= nAtoms; a++ {
			switch r.Intn(3) {
			case 0:
				m[a] = true
				asn.Set(a, true)
			case 1:
				// Explicit false: distinct from missing in the map's
				// representation, identical under Eval semantics.
				m[a] = false
				asn.Set(a, false)
			}
		}
		got := guard.EvalAll(fs, asn, nil)
		for i, f := range fs {
			want := f.Eval(m)
			if got[i] != want || f.EvalAssign(asn) != want {
				t.Logf("seed %d: formula %d: map=%v batched=%v single=%v",
					seed, i, want, got[i], f.EvalAssign(asn))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
