package canary

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig2 = `
func main(a) {
  x = malloc();
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}
func thread1(y) {
  b = malloc();
  if (!theta1) {
    *y = b;
    free(b);
  }
}
`

const buggy = `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`

func TestAnalyzeFig2Clean(t *testing.T) {
	res, err := Analyze(fig2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("Fig. 2 must be clean, got %v", res.Reports)
	}
	if res.Threads != 2 {
		t.Errorf("threads = %d", res.Threads)
	}
	if res.VFG.Nodes == 0 || res.VFG.Edges == 0 {
		t.Error("VFG stats empty")
	}
	if res.VFG.FilteredEdges == 0 {
		t.Error("the θ1∧¬θ1 edge should be counted as filtered")
	}
}

func TestAnalyzeFindsUAF(t *testing.T) {
	res, err := Analyze(buggy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(res.Reports))
	}
	r := res.Reports[0]
	if r.Kind != CheckUseAfterFree {
		t.Errorf("kind = %q", r.Kind)
	}
	if !r.Decided {
		t.Error("report should be solver-decided")
	}
	if len(r.Trace) == 0 {
		t.Error("report should carry a value-flow trace")
	}
	if s := r.String(); !strings.Contains(s, "use-after-free") {
		t.Errorf("rendering: %q", s)
	}
}

func TestAnalyzeCheckerSelection(t *testing.T) {
	opt := DefaultOptions()
	opt.Checkers = []string{CheckTaintLeak}
	res, err := Analyze(buggy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("taint checker should not fire on a UAF program: %v", res.Reports)
	}
}

func TestAnalyzeParseError(t *testing.T) {
	if _, err := Analyze("func {", DefaultOptions()); err == nil {
		t.Fatal("want parse error")
	}
}

func TestAnalyzeMissingEntry(t *testing.T) {
	if _, err := Analyze("func other() { }", DefaultOptions()); err == nil {
		t.Fatal("want missing-entry error")
	}
	opt := DefaultOptions()
	opt.Entry = "other"
	if _, err := Analyze("func other() { }", opt); err != nil {
		t.Fatalf("custom entry should work: %v", err)
	}
}

func TestAnalyzeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.cn")
	if err := os.WriteFile(path, []byte(buggy), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeFile(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(res.Reports))
	}
	if _, err := AnalyzeFile(filepath.Join(dir, "nope.cn"), DefaultOptions()); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestDataRaceAndDeadlockViaAPI(t *testing.T) {
	racy := `
func writer(cell) { v = malloc(); *cell = v; }
func reader(cell) { c = *cell; print(*c); }
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, writer, cell);
  fork(t2, reader, cell);
}
`
	opt := DefaultOptions()
	opt.Checkers = []string{CheckDataRace}
	res, err := Analyze(racy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("race not reported through the public API")
	}
	if res.Reports[0].Kind != CheckDataRace {
		t.Errorf("kind = %s", res.Reports[0].Kind)
	}

	deadlocky := `
global m1;
global m2;
func left() { lock(m1); lock(m2); unlock(m2); unlock(m1); }
func right() { lock(m2); lock(m1); unlock(m1); unlock(m2); }
func main() { fork(t1, left); fork(t2, right); }
`
	opt.Checkers = []string{CheckDeadlock}
	res, err = Analyze(deadlocky, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("deadlock reports = %d", len(res.Reports))
	}
	if got := ExtendedCheckers(); len(got) != 2 {
		t.Errorf("ExtendedCheckers = %v", got)
	}
}

func TestAllCheckersList(t *testing.T) {
	cs := AllCheckers()
	if len(cs) != 4 {
		t.Fatalf("want 4 checkers, got %v", cs)
	}
	// The returned slice is a copy: mutating it must not affect the next call.
	cs[0] = "mutated"
	if AllCheckers()[0] == "mutated" {
		t.Fatal("AllCheckers must return a copy")
	}
}

func TestAnalyzeParallelAndCube(t *testing.T) {
	opt := DefaultOptions()
	opt.Workers = 4
	opt.CubeAndConquer = true
	res, err := Analyze(buggy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("parallel config changed the verdict: %d reports", len(res.Reports))
	}
}

func TestAnalysisReuse(t *testing.T) {
	// One build, several checker rounds — the VFG is shared.
	a, err := NewAnalysis(buggy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	uaf, err := a.Check(CheckUseAfterFree)
	if err != nil {
		t.Fatal(err)
	}
	if len(uaf.Reports) != 1 {
		t.Fatalf("uaf round: %d reports", len(uaf.Reports))
	}
	taint, err := a.Check(CheckTaintLeak)
	if err != nil {
		t.Fatal(err)
	}
	if len(taint.Reports) != 0 {
		t.Fatalf("taint round should be clean: %v", taint.Reports)
	}
	races, err := a.Check(CheckDataRace)
	if err != nil {
		t.Fatal(err)
	}
	if len(races.Reports) == 0 {
		t.Fatal("race round should fire on the unsynchronized pair")
	}
	// Rounds share VFG stats.
	if uaf.VFG.Edges != taint.VFG.Edges {
		t.Error("rounds must share the same graph")
	}
	// The DOT export works from the same analysis.
	var sb strings.Builder
	if err := a.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph vfg") {
		t.Error("DOT export malformed")
	}
}

func TestScheduleExposedInAPI(t *testing.T) {
	res, err := Analyze(buggy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || len(res.Reports[0].Schedule) < 3 {
		t.Fatalf("witness schedule missing: %+v", res.Reports)
	}
	for _, step := range res.Reports[0].Schedule {
		if !strings.Contains(step, "thread") {
			t.Errorf("schedule step missing thread annotation: %q", step)
		}
	}
}

func TestUnknownVerdictKeptAsPotentialBug(t *testing.T) {
	// A tiny solver budget can leave a query undecided; the soundy choice
	// keeps it as a (flagged) report rather than dropping it. With the
	// fact-propagation fast path disabled the query must reach the solver.
	opt := DefaultOptions()
	opt.MaxConflicts = 1
	opt.FactPropagation = false
	res, err := Analyze(buggy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("want the report kept, got %d", len(res.Reports))
	}
	// Whether the budget sufficed is machine-dependent for so simple a
	// query; the Decided flag must simply be consistent with the verdict.
	r := res.Reports[0]
	if !r.Decided && !strings.Contains(r.String(), "potential bug") {
		t.Errorf("undecided report should say so: %s", r.String())
	}
}

func TestBadMemoryModelRejectedEarly(t *testing.T) {
	opt := DefaultOptions()
	opt.MemoryModel = "alpha"
	if _, err := NewAnalysis(buggy, opt); err == nil {
		t.Fatal("bad memory model must be rejected")
	}
}

func TestCheckStatsPopulated(t *testing.T) {
	res, err := Analyze(buggy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Check.Sources == 0 {
		t.Errorf("check stats empty: %+v", res.Check)
	}
	// The query is decided either by the order-fact closure or by the
	// solver; one of the two must have done the work.
	if res.Check.FactDecided+res.Check.SolverQueries == 0 {
		t.Errorf("no decision procedure ran: %+v", res.Check)
	}
}
