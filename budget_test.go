package canary

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// tinyBudgets starves every governed stage so the corpus exercises the
// degradation paths: the fixpoint bound bites on larger programs, the DFS
// step budget on anything with more than a handful of paths, and the
// formula budget on any non-trivial guard.
func tinyBudgets() Budgets {
	return Budgets{MaxFixpointRounds: 2, MaxDFSSteps: 40, MaxFormulaNodes: 12}
}

// renderGoverned is the byte-comparison form of a governed result: the
// reports (verdicts, reasons, guards, traces, schedules included) and the
// degradation summary, with the timing stats excluded.
func renderGoverned(res *Result) string {
	return fmt.Sprintf("%#v\ndegraded=%v", res.Reports, res.Degraded)
}

// TestBudgetDeterminism is the corpus-wide governor contract: with fixed
// step budgets, two runs — and a parallel vs. sequential pair — produce
// byte-identical results, including which pairs went inconclusive.
// Budgets are step-counted, never wall-clock, so exhaustion is a pure
// function of the input.
func TestBudgetDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files")
	}
	degradedSomewhere := false
	inconclusiveSomewhere := false
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			run := func(workers int) string {
				opt := DefaultOptions()
				opt.Workers = workers
				opt.Checkers = append(AllCheckers(), ExtendedCheckers()...)
				opt.Budgets = tinyBudgets()
				res, err := Analyze(src, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(res.Degraded) > 0 {
					degradedSomewhere = true
				}
				for _, r := range res.Reports {
					if r.Verdict == VerdictInconclusive {
						inconclusiveSomewhere = true
					}
				}
				return renderGoverned(res)
			}
			seq1 := run(1)
			seq2 := run(1)
			par1 := run(8)
			par2 := run(8)
			if seq1 != seq2 {
				t.Errorf("two sequential runs differ under fixed budgets:\n--- run 1:\n%s\n--- run 2:\n%s", seq1, seq2)
			}
			if par1 != par2 {
				t.Errorf("two parallel runs differ under fixed budgets:\n--- run 1:\n%s\n--- run 2:\n%s", par1, par2)
			}
			if seq1 != par1 {
				t.Errorf("sequential and parallel runs differ under fixed budgets:\n--- workers=1:\n%s\n--- workers=8:\n%s", seq1, par1)
			}
		})
	}
	if !degradedSomewhere {
		t.Error("tiny budgets never degraded any corpus program; the governors are not engaging")
	}
	if !inconclusiveSomewhere {
		t.Error("tiny budgets never produced an inconclusive verdict on the corpus")
	}
}

// TestGenerousBudgetsAreInvisible pins the other half of the contract:
// budgets large enough to never bite leave the output byte-identical to
// an unbudgeted run — the governors only observe until they must act.
func TestGenerousBudgetsAreInvisible(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			base := DefaultOptions()
			base.Checkers = append(AllCheckers(), ExtendedCheckers()...)
			plain, err := Analyze(src, base)
			if err != nil {
				t.Fatal(err)
			}
			generous := base
			generous.Budgets = Budgets{
				MaxFixpointRounds: 1 << 20,
				MaxDFSSteps:       1 << 30,
				MaxFormulaNodes:   1 << 30,
			}
			governed, err := Analyze(src, generous)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Reports, governed.Reports) {
				t.Errorf("generous budgets changed the reports:\n--- unbudgeted: %+v\n--- budgeted: %+v",
					plain.Reports, governed.Reports)
			}
			if len(governed.Degraded) > 0 {
				t.Errorf("generous budgets reported degradation: %v", governed.Degraded)
			}
		})
	}
}

// TestBudgetsChangeSubmissionKey: budgets affect analysis output, so they
// must be part of the content address — otherwise a daemon could serve a
// degraded cached result for an unbudgeted request.
func TestBudgetsChangeSubmissionKey(t *testing.T) {
	src := "fn main() { }"
	a := DefaultOptions()
	b := DefaultOptions()
	b.Budgets.MaxDFSSteps = 100
	if SubmissionKey(src, a) == SubmissionKey(src, b) {
		t.Error("SubmissionKey ignores Budgets; degraded results could be served for unbudgeted requests")
	}
}
