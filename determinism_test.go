package canary

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestParallelDeterminism analyzes every corpus program with Workers: 1 and
// Workers: 8 and requires byte-identical output: the same reports in the
// same order, and the same VFG shape. This is the contract the parallel
// pipeline promises — worker count is a throughput knob, never a semantics
// knob (see internal/core/parallel.go for how it is upheld).
func TestParallelDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files")
	}
	checkers := append(AllCheckers(), ExtendedCheckers()...)
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)

			run := func(workers int) *Result {
				opt := DefaultOptions()
				opt.Workers = workers
				opt.Checkers = checkers
				res, err := Analyze(src, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			seq := run(1)
			par := run(8)

			if !reflect.DeepEqual(seq.Reports, par.Reports) {
				t.Errorf("reports differ between workers=1 and workers=8:\n  1: %+v\n  8: %+v",
					seq.Reports, par.Reports)
			}
			if seq.VFG.Nodes != par.VFG.Nodes || seq.VFG.Edges != par.VFG.Edges {
				t.Errorf("VFG shape differs: workers=1 %d nodes/%d edges, workers=8 %d nodes/%d edges",
					seq.VFG.Nodes, seq.VFG.Edges, par.VFG.Nodes, par.VFG.Edges)
			}
			if seq.VFG.DataDepEdges != par.VFG.DataDepEdges ||
				seq.VFG.InterferenceEdges != par.VFG.InterferenceEdges ||
				seq.VFG.FilteredEdges != par.VFG.FilteredEdges {
				t.Errorf("edge-kind counts differ: workers=1 dd=%d interf=%d filtered=%d, workers=8 dd=%d interf=%d filtered=%d",
					seq.VFG.DataDepEdges, seq.VFG.InterferenceEdges, seq.VFG.FilteredEdges,
					par.VFG.DataDepEdges, par.VFG.InterferenceEdges, par.VFG.FilteredEdges)
			}
		})
	}
}
