package canary

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"canary/internal/failpoint"
)

// fiTemplate is a use-after-free behind mismatched mutexes: its
// mutual-exclusion guard survives the presolver, so (with fact
// propagation off) the query genuinely reaches the solver dispatch where
// the smt-solve and verdict-read sites live. Each subtest instantiates
// it with a unique tag so its formulas have never been seen by the
// process-wide SMT cache — a cache hit would bypass the armed site.
const fiTemplate = `
global XXmu;
global XXother;
func XXwriter(XXcell) {
  XXb = malloc();
  XXfresh = malloc();
  lock(XXmu);
  *XXcell = XXb;
  free(XXb);
  *XXcell = XXfresh;
  unlock(XXmu);
}
func XXreader(XXcell) {
  lock(XXother);
  XXc = *XXcell;
  print(*XXc);
  unlock(XXother);
}
func main() {
  XXcell = malloc();
  XXseed = malloc();
  *XXcell = XXseed;
  fork(XXt1, XXwriter, XXcell);
  fork(XXt2, XXreader, XXcell);
}
`

func fiProgram(tag string) string {
	return strings.ReplaceAll(fiTemplate, "XX", tag)
}

// fiOptions forces every query past the order-fact fast path so the
// solver-adjacent failpoints (smt-solve, verdict-read) are reachable.
func fiOptions() Options {
	opt := DefaultOptions()
	opt.FactPropagation = false
	return opt
}

func renderReports(res *Result) string {
	return fmt.Sprintf("%#v", res.Reports)
}

// TestInjectedErrorsSurfaceTyped sweeps every library-reachable site in
// error mode and requires each fault to surface as a typed error or an
// inconclusive verdict — never a crash, and never silent corruption.
// (The job-dequeue site is daemon-only; internal/server tests cover it.)
func TestInjectedErrorsSurfaceTyped(t *testing.T) {
	defer failpoint.Reset()
	failpoint.Reset()

	// How each armed site must surface: "abort" fails the analysis with a
	// typed error; "inconclusive" completes it with internal-error
	// verdicts; "transparent" degrades a cache layer to a miss and leaves
	// the output untouched.
	expect := map[string]string{
		failpoint.SiteParse:         "abort",
		failpoint.SiteLower:         "abort",
		failpoint.SitePTAFixpoint:   "abort",
		failpoint.SiteBuildFixpoint: "abort",
		failpoint.SiteGuardEval:     "inconclusive",
		failpoint.SiteSMTSolve:      "inconclusive",
		failpoint.SiteCacheRead:     "transparent",
		failpoint.SiteCacheWrite:    "transparent",
		failpoint.SiteVerdictRead:   "transparent",
	}
	i := 0
	for site, want := range expect {
		site, want := site, want
		src := fiProgram(fmt.Sprintf("fiErr%d", i))
		i++
		t.Run(site, func(t *testing.T) {
			failpoint.Reset()
			if err := failpoint.Enable(site, "error"); err != nil {
				t.Fatal(err)
			}
			res, err := NewSession().Analyze(src, fiOptions())
			hits := failpoint.Hits(site)
			failpoint.Reset()
			if hits == 0 {
				t.Fatalf("site %s was never reached by the probe program", site)
			}
			switch want {
			case "abort":
				if err == nil {
					t.Fatalf("want a typed error, got result %+v", res)
				}
				if !errors.Is(err, failpoint.ErrInjected) {
					t.Fatalf("error does not wrap ErrInjected: %v", err)
				}
			case "inconclusive":
				if err != nil {
					t.Fatalf("check-stage fault must degrade, not abort: %v", err)
				}
				found := false
				for _, r := range res.Reports {
					if r.Verdict == VerdictInconclusive && strings.HasPrefix(r.Reason, "internal-error:") {
						found = true
					}
				}
				if !found {
					t.Fatalf("no internal-error inconclusive report: %+v", res.Reports)
				}
			case "transparent":
				if err != nil {
					t.Fatalf("cache-layer fault must be invisible, not abort: %v", err)
				}
				// The faultless run of the same program must match the
				// faulted one byte for byte: a degraded cache layer may
				// cost work, never output.
				clean, cerr := NewSession().Analyze(src, fiOptions())
				if cerr != nil {
					t.Fatal(cerr)
				}
				if got, want := renderReports(res), renderReports(clean); got != want {
					t.Fatalf("cache-layer fault changed the output:\n--- clean:\n%s\n--- faulted:\n%s", want, got)
				}
			}
		})
	}
}

// TestInjectedPanicsAreRecovered arms panic-mode failpoints at both build
// and check stages: a build-stage panic becomes an error wrapping
// ErrInternal, a check-stage panic becomes an internal-error report, and
// neither escapes to the test harness.
func TestInjectedPanicsAreRecovered(t *testing.T) {
	defer failpoint.Reset()
	buildStage := map[string]bool{
		failpoint.SiteParse:         true,
		failpoint.SiteLower:         true,
		failpoint.SitePTAFixpoint:   true,
		failpoint.SiteBuildFixpoint: true,
		failpoint.SiteGuardEval:     false,
		failpoint.SiteSMTSolve:      false,
	}
	i := 0
	for site, isBuild := range buildStage {
		site, isBuild := site, isBuild
		src := fiProgram(fmt.Sprintf("fiPanic%d", i))
		i++
		t.Run(site, func(t *testing.T) {
			failpoint.Reset()
			if err := failpoint.Enable(site, "panic"); err != nil {
				t.Fatal(err)
			}
			defer failpoint.Reset()
			sess := NewSession()
			res, err := sess.Analyze(src, fiOptions())
			if isBuild {
				if !errors.Is(err, ErrInternal) {
					t.Fatalf("build-stage panic must wrap ErrInternal, got %v", err)
				}
				if sess.PanicsRecovered() == 0 {
					t.Error("session did not count the recovered panic")
				}
			} else {
				if err != nil {
					t.Fatalf("check-stage panic must degrade, not abort: %v", err)
				}
				if res.Check.PanicsRecovered == 0 {
					t.Errorf("checker did not count the recovered panic: %+v", res.Check)
				}
				found := false
				for _, r := range res.Reports {
					if strings.HasPrefix(r.Reason, "internal-error:") {
						found = true
					}
				}
				if !found {
					t.Fatalf("no internal-error report after a check-stage panic: %+v", res.Reports)
				}
			}
		})
	}
}

// TestQuarantineRestoresWarmDeterminism is the poisoned-summary proof: a
// panic mid-build evicts the program's summaries from the warm session,
// so the next warm run recomputes everything and stays byte-identical to
// the cold run.
func TestQuarantineRestoresWarmDeterminism(t *testing.T) {
	defer failpoint.Reset()
	failpoint.Reset()
	src := fiProgram("fiQuar")
	sess := NewSession()
	cold, err := sess.Analyze(src, fiOptions())
	if err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Enable(failpoint.SiteBuildFixpoint, "panic"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(src, fiOptions()); !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal from the poisoned run, got %v", err)
	}
	failpoint.Reset()
	if sess.QuarantinedSummaries() == 0 {
		t.Fatal("the recovered panic quarantined nothing")
	}

	hitsBefore, _ := sess.SummaryStats()
	warm, err := sess.Analyze(src, fiOptions())
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := sess.SummaryStats()
	if hitsAfter != hitsBefore {
		t.Errorf("post-quarantine run reused %d summaries; quarantine failed to evict",
			hitsAfter-hitsBefore)
	}
	if got, want := renderReports(warm), renderReports(cold); got != want {
		t.Errorf("post-quarantine warm run differs from the cold run:\n--- cold:\n%s\n--- warm:\n%s", want, got)
	}
}

// TestFaultAndBudgetHammer runs 16 goroutines against one shared session
// with every-Nth failpoints armed at six sites and starvation budgets on:
// the only acceptable outcomes are a clean result, a typed injected
// error, or a recovered internal error. Run under -race by make check.
func TestFaultAndBudgetHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer skipped in -short mode")
	}
	defer failpoint.Reset()
	failpoint.Reset()
	for site, spec := range map[string]string{
		failpoint.SiteGuardEval:     "error@5",
		failpoint.SiteSMTSolve:      "panic@7",
		failpoint.SiteCacheRead:     "error@3",
		failpoint.SiteCacheWrite:    "error@4",
		failpoint.SitePTAFixpoint:   "error@11",
		failpoint.SiteBuildFixpoint: "panic@13",
	} {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}

	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus: %v (%d files)", err, len(files))
	}
	var sources []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, string(data))
	}

	sess := NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opt := DefaultOptions()
			opt.FactPropagation = false
			opt.Budgets = Budgets{MaxFixpointRounds: 2, MaxDFSSteps: 40, MaxFormulaNodes: 12}
			opt.Workers = 1 + g%4
			for i := 0; i < 6; i++ {
				_, err := sess.Analyze(sources[(g*7+i)%len(sources)], opt)
				if err != nil && !errors.Is(err, failpoint.ErrInjected) && !errors.Is(err, ErrInternal) {
					t.Errorf("goroutine %d run %d: unclassified error %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
}

// primePersistent analyzes src into a fresh persistent session rooted at
// dir with no faults armed, returning the clean render every faulted warm
// run below must still reproduce.
func primePersistent(t *testing.T, dir, src string) string {
	t.Helper()
	failpoint.Reset()
	sess, err := NewPersistentSession(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Analyze(src, fiOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess.Flush()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	return renderReports(res)
}

// TestInjectedDiskFaultsDegrade arms the three disk failpoints against a
// populated warm directory: every injected read fault, write fault, and
// bit flip must degrade the disk store to a miss — the analysis recomputes
// and stays byte-identical to the clean run, and nothing crashes.
func TestInjectedDiskFaultsDegrade(t *testing.T) {
	defer failpoint.Reset()

	t.Run(failpoint.SiteDiskRead, func(t *testing.T) {
		src := fiProgram("fiDskR")
		dir := t.TempDir()
		want := primePersistent(t, dir, src)
		if err := failpoint.Enable(failpoint.SiteDiskRead, "error"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Reset()
		sess, err := NewPersistentSession(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Analyze(src, fiOptions())
		if err != nil {
			t.Fatalf("injected read fault must degrade to a miss, not abort: %v", err)
		}
		if failpoint.Hits(failpoint.SiteDiskRead) == 0 {
			t.Fatal("disk-read site was never reached")
		}
		if got := renderReports(res); got != want {
			t.Fatalf("read fault changed the output:\n--- clean:\n%s\n--- faulted:\n%s", want, got)
		}
		if ds := sess.DiskStats(); ds.Hits != 0 {
			t.Errorf("every read was faulted, yet %d disk hits", ds.Hits)
		}
	})

	t.Run(failpoint.SiteDiskCorrupt, func(t *testing.T) {
		src := fiProgram("fiDskC")
		dir := t.TempDir()
		want := primePersistent(t, dir, src)
		if err := failpoint.Enable(failpoint.SiteDiskCorrupt, "error"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Reset()
		sess, err := NewPersistentSession(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Analyze(src, fiOptions())
		if err != nil {
			t.Fatalf("injected bit flip must degrade to a miss, not abort: %v", err)
		}
		if failpoint.Hits(failpoint.SiteDiskCorrupt) == 0 {
			t.Fatal("disk-corrupt site was never reached")
		}
		if got := renderReports(res); got != want {
			t.Fatalf("bit flip changed the output:\n--- clean:\n%s\n--- faulted:\n%s", want, got)
		}
		ds := sess.DiskStats()
		if ds.CorruptEntries == 0 {
			t.Error("checksum trailer caught no flipped entry")
		}
		if ds.Hits != 0 {
			t.Errorf("every read was bit-flipped, yet %d disk hits", ds.Hits)
		}
	})

	t.Run(failpoint.SiteDiskWrite, func(t *testing.T) {
		failpoint.Reset()
		src := fiProgram("fiDskW")
		dir := t.TempDir()
		// Arm during priming: every disk write is suppressed, so the store
		// stays empty and the next session runs cold — but correctly.
		if err := failpoint.Enable(failpoint.SiteDiskWrite, "error"); err != nil {
			t.Fatal(err)
		}
		s1, err := NewPersistentSession(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		res1, err := s1.Analyze(src, fiOptions())
		if err != nil {
			t.Fatalf("injected write fault must be invisible, not abort: %v", err)
		}
		s1.Flush()
		if failpoint.Hits(failpoint.SiteDiskWrite) == 0 {
			t.Fatal("disk-write site was never reached")
		}
		if ds := s1.DiskStats(); ds.Entries != 0 || ds.Writes != 0 {
			t.Fatalf("faulted writes still landed: %+v", ds)
		}
		if err := s1.Close(); err != nil {
			t.Fatal(err)
		}
		failpoint.Reset()

		s2, err := NewPersistentSession(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		res2, err := s2.Analyze(src, fiOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderReports(res2), renderReports(res1); got != want {
			t.Fatalf("cold rerun after suppressed writes differs:\n--- first:\n%s\n--- second:\n%s", want, got)
		}
	})
}

// TestBitRotOnDiskDegradesToRecompute flips a real byte in every entry
// file of a populated warm directory — no failpoints, actual bit rot. A
// fresh session must detect every corruption via the checksum trailer,
// heal the store by deleting the bad files, and recompute byte-identical
// output.
func TestBitRotOnDiskDegradesToRecompute(t *testing.T) {
	src := fiProgram("fiRot")
	dir := t.TempDir()
	want := primePersistent(t, dir, src)

	flipped := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil || len(b) == 0 {
			return rerr
		}
		b[len(b)/2] ^= 0x01
		if werr := os.WriteFile(path, b, 0o644); werr != nil {
			return werr
		}
		flipped++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if flipped == 0 {
		t.Fatal("priming left nothing on disk to corrupt")
	}

	sess, err := NewPersistentSession(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Analyze(src, fiOptions())
	if err != nil {
		t.Fatalf("bit rot must degrade to recompute, not abort: %v", err)
	}
	if got := renderReports(res); got != want {
		t.Fatalf("bit rot changed the output:\n--- clean:\n%s\n--- rotted:\n%s", want, got)
	}
	ds := sess.DiskStats()
	if ds.CorruptEntries == 0 {
		t.Error("no corruption was detected despite flipping every entry")
	}
	if ds.Hits != 0 {
		t.Errorf("a flipped entry was served as a hit (%d hits)", ds.Hits)
	}
}
