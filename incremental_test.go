package canary

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"canary/internal/lang"
)

// mutateCorpus inserts one benign statement at the top of main, the
// one-function edit the incremental path must absorb. Files without the
// anchor return ok=false and are exercised unmutated.
func mutateCorpus(src string) (string, bool) {
	const anchor = "func main() {\n"
	i := strings.Index(src, anchor)
	if i < 0 {
		return src, false
	}
	at := i + len(anchor)
	return src[:at] + "  incpad0 = 1;\n" + src[at:], true
}

// renderFull folds every observable field of a result's reports into one
// string; byte-equality of renders is byte-equality of results.
func renderFull(res *Result) string {
	return fmt.Sprintf("%#v", res.Reports)
}

// TestIncrementalDeterminism runs the whole corpus through the incremental
// path: a session is primed with each original program, the program gets a
// one-statement edit to main, and the warm re-analysis must (a) render
// byte-identically to a cold analysis of the edited program and (b) load
// every function except main's invalidation cone from the summary store.
func TestIncrementalDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			orig := string(data)
			edited, mutated := mutateCorpus(orig)
			ast, err := lang.Parse(edited)
			if err != nil {
				t.Fatalf("edited program does not parse: %v", err)
			}
			funcs := len(ast.Funcs)
			opt := DefaultOptions()

			cold, err := Analyze(edited, opt)
			if err != nil {
				t.Fatal(err)
			}
			sess := NewSession()
			if _, err := sess.Analyze(orig, opt); err != nil {
				t.Fatal(err)
			}
			warm, err := sess.Analyze(edited, opt)
			if err != nil {
				t.Fatal(err)
			}

			if c, w := renderFull(cold), renderFull(warm); c != w {
				t.Errorf("warm incremental output differs from cold:\n--- cold\n%s\n--- warm\n%s", c, w)
			}
			if got := warm.VFG.SummaryHits + warm.VFG.FuncsReanalyzed; got != funcs {
				t.Errorf("summary accounting: hits %d + reanalyzed %d != %d functions",
					warm.VFG.SummaryHits, warm.VFG.FuncsReanalyzed, funcs)
			}
			if mutated && funcs >= 2 {
				// Editing main invalidates only main's reverse dependency
				// cone; with ≥2 functions some summary must have been reused
				// and strictly fewer than all functions reanalyzed.
				if warm.VFG.FuncsReanalyzed >= funcs {
					t.Errorf("one-function edit reanalyzed all %d functions", funcs)
				}
				if warm.VFG.SummaryHits < 1 {
					t.Errorf("one-function edit reused no summaries (funcs=%d)", funcs)
				}
			}
		})
	}
}

// TestIncrementalRaceHammer shares one Session between 16 goroutines that
// concurrently analyze (a rotation of) corpus programs and their one-edit
// variants, asserting every warm result matches its cold render. Run under
// -race this doubles as the thread-safety check of both warm stores.
func TestIncrementalRaceHammer(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus: %v (%d files)", err, len(files))
	}
	if len(files) > 6 {
		files = files[:6] // bound the hammer's runtime
	}
	opt := DefaultOptions()
	type variant struct {
		src  string
		want string
	}
	var variants []variant
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		orig := string(data)
		edited, _ := mutateCorpus(orig)
		for _, src := range []string{orig, edited} {
			cold, err := Analyze(src, opt)
			if err != nil {
				t.Fatal(err)
			}
			variants = append(variants, variant{src: src, want: renderFull(cold)})
		}
	}

	sess := NewSession()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(variants); i++ {
				v := variants[(i+w)%len(variants)]
				res, err := sess.Analyze(v.src, opt)
				if err != nil {
					errs <- err
					return
				}
				if got := renderFull(res); got != v.want {
					errs <- fmt.Errorf("worker %d variant %d: warm render differs from cold", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
