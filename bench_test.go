// Benchmarks regenerating the paper's evaluation (one per table/figure),
// plus ablations for the design decisions called out in DESIGN.md.
//
// The `go test -bench` entry points use scaled-down subjects so the whole
// suite finishes quickly; `cmd/canary-bench` runs the full catalogue with
// configurable scale and timeout and prints the paper-style tables.
package canary

import (
	"context"
	"fmt"
	"testing"

	"canary/internal/baseline"
	"canary/internal/core"
	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/smt"
	"canary/internal/workload"
)

// benchSubjects returns the first n catalogue subjects at bench scale.
func benchSubjects(n int, lines int) []workload.Project {
	ps := workload.Projects(0.004)
	if n < len(ps) {
		ps = ps[:n]
	}
	for i := range ps {
		if ps[i].Lines > lines {
			ps[i].Lines = lines
		}
	}
	return ps
}

func lowerSpec(b *testing.B, spec workload.Spec) *ir.Program {
	b.Helper()
	src := workload.Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkFig7aVFGTime regenerates Fig. 7a: VFG-construction time for
// Saber, Fsam, and Canary on catalogue subjects ordered by size.
func BenchmarkFig7aVFGTime(b *testing.B) {
	for _, p := range benchSubjects(4, 1500) {
		b.Run(fmt.Sprintf("%s/saber", p.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, p.Spec)
				b.StartTimer()
				if _, err := (baseline.Saber{}).BuildVFG(context.Background(), prog); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/fsam", p.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, p.Spec)
				b.StartTimer()
				if _, err := (baseline.Fsam{}).BuildVFG(context.Background(), prog); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/canary", p.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, p.Spec)
				b.StartTimer()
				core.Build(prog, core.DefaultBuild())
			}
		})
	}
}

// BenchmarkFig7bVFGMemory regenerates Fig. 7b: allocation volume of VFG
// construction per tool (run with -benchmem; B/op is the series).
func BenchmarkFig7bVFGMemory(b *testing.B) {
	p := benchSubjects(4, 1500)[3] // darknet-shaped subject
	b.Run("saber", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog := lowerSpec(b, p.Spec)
			b.StartTimer()
			if _, err := (baseline.Saber{}).BuildVFG(context.Background(), prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fsam", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog := lowerSpec(b, p.Spec)
			b.StartTimer()
			if _, err := (baseline.Fsam{}).BuildVFG(context.Background(), prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("canary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog := lowerSpec(b, p.Spec)
			b.StartTimer()
			core.Build(prog, core.DefaultBuild())
		}
	})
}

// BenchmarkFig8Scalability regenerates Fig. 8: Canary's full pipeline
// (build + path-sensitive checking) across increasing program sizes; the
// per-size sub-benchmark times form the scalability series.
func BenchmarkFig8Scalability(b *testing.B) {
	for _, spec := range workload.SizeSweep(4, 400, 3200) {
		spec := spec
		b.Run(fmt.Sprintf("lines=%d", spec.Lines), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				b.StartTimer()
				builder := core.Build(prog, core.DefaultBuild())
				opt := core.DefaultCheck()
				opt.Checkers = []string{core.CheckUAF}
				builder.Check(opt)
			}
		})
	}
}

// BenchmarkTable1BugHunting regenerates Table 1's Canary column: checking
// the catalogue subjects and verifying the ground-truth report counts. The
// reports/FP metrics are attached to the benchmark output.
func BenchmarkTable1BugHunting(b *testing.B) {
	for _, p := range benchSubjects(6, 1200) {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			var reports, fps int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, p.Spec)
				b.StartTimer()
				builder := core.Build(prog, core.DefaultBuild())
				opt := core.DefaultCheck()
				opt.Checkers = []string{core.CheckUAF}
				rs, _ := builder.Check(opt)
				reports = len(rs)
				fps = 0
				for _, r := range rs {
					if !workload.TruePositive(r.Source.Fn) {
						fps++
					}
				}
			}
			b.ReportMetric(float64(reports), "reports")
			b.ReportMetric(float64(fps), "falsepos")
			want := p.TruePositives + p.CanaryFPs
			if reports != want {
				b.Fatalf("%s: got %d reports, seeded %d", p.Name, reports, want)
			}
		})
	}
}

// BenchmarkAblationMHP measures the interference analysis with and without
// may-happen-in-parallel pruning (§6).
func BenchmarkAblationMHP(b *testing.B) {
	spec := workload.SizeSweep(1, 1500, 1500)[0]
	for _, enable := range []bool{true, false} {
		enable := enable
		b.Run(fmt.Sprintf("mhp=%v", enable), func(b *testing.B) {
			b.ReportAllocs()
			var edges int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				b.StartTimer()
				builder := core.Build(prog, core.BuildOptions{EnableMHP: enable})
				edges = builder.Stats.InterferenceEdges
			}
			b.ReportMetric(float64(edges), "id-edges")
		})
	}
}

// BenchmarkAblationGuardSimplify measures checking with and without the
// semi-decision filter (§5.2, opt. 1).
func BenchmarkAblationGuardSimplify(b *testing.B) {
	spec := workload.SizeSweep(1, 1200, 1200)[0]
	for _, enable := range []bool{true, false} {
		enable := enable
		b.Run(fmt.Sprintf("simplify=%v", enable), func(b *testing.B) {
			b.ReportAllocs()
			var queries int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				builder := core.Build(prog, core.DefaultBuild())
				opt := core.DefaultCheck()
				opt.Checkers = []string{core.CheckUAF}
				opt.SimplifyGuards = enable
				b.StartTimer()
				_, stats := builder.Check(opt)
				queries = stats.SolverQueries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// BenchmarkAblationParallelCheck measures the source-parallel checking of
// §5.2 (opt. 2).
func BenchmarkAblationParallelCheck(b *testing.B) {
	spec := workload.SizeSweep(1, 2000, 2000)[0]
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				builder := core.Build(prog, core.DefaultBuild())
				opt := core.DefaultCheck()
				opt.Checkers = []string{core.CheckUAF}
				opt.Workers = workers
				b.StartTimer()
				builder.Check(opt)
			}
		})
	}
}

// BenchmarkAblationCubeAndConquer measures the parallel SMT strategy of
// §5.2 (opt. 3) on a synthetic hard query (a pigeonhole instance mixed
// with order atoms).
func BenchmarkAblationCubeAndConquer(b *testing.B) {
	for _, cube := range []bool{false, true} {
		cube := cube
		b.Run(fmt.Sprintf("cube=%v", cube), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pool, formulas := hardQuery(7)
				b.StartTimer()
				if cube {
					smt.SolveCubeAndConquer(pool, formulas, smt.CubeOptions{SplitAtoms: 3, Workers: 4})
				} else {
					s := smt.New(pool)
					for _, f := range formulas {
						s.Assert(f)
					}
					s.Solve()
				}
			}
		})
	}
}

// BenchmarkAblationLockOrder measures checking with and without the
// lock/unlock extension (§9 future work 1) on a lock-heavy subject.
func BenchmarkAblationLockOrder(b *testing.B) {
	spec := workload.Spec{
		Name: "locky", Lines: 900, Seed: 99,
		TruePositives: 1, LockTraps: 8, Fan: 2,
	}
	for _, enable := range []bool{true, false} {
		enable := enable
		b.Run(fmt.Sprintf("lockorder=%v", enable), func(b *testing.B) {
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				builder := core.Build(prog, core.DefaultBuild())
				opt := core.DefaultCheck()
				opt.Checkers = []string{core.CheckUAF}
				opt.LockOrder = enable
				b.StartTimer()
				rs, _ := builder.Check(opt)
				reports = len(rs)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationFactPropagation measures the customized decision
// procedure (§9 future work 3): the order-fact closure that settles or
// shrinks queries before the CDCL solver.
func BenchmarkAblationFactPropagation(b *testing.B) {
	spec := workload.SizeSweep(1, 1500, 1500)[0]
	for _, enable := range []bool{true, false} {
		enable := enable
		b.Run(fmt.Sprintf("factprop=%v", enable), func(b *testing.B) {
			b.ReportAllocs()
			var queries, decided int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				builder := core.Build(prog, core.DefaultBuild())
				opt := core.DefaultCheck()
				opt.Checkers = []string{core.CheckUAF}
				opt.FactPropagation = enable
				b.StartTimer()
				_, stats := builder.Check(opt)
				queries = stats.SolverQueries
				decided = stats.FactDecided
			}
			b.ReportMetric(float64(queries), "queries")
			b.ReportMetric(float64(decided), "factdecided")
		})
	}
}

// BenchmarkAnalyzeParallel measures the whole analysis (parallel VFG build
// + deterministic checking pool) at several worker-pool sizes on the
// largest bench subject. The output is identical at every size — the pool
// is a throughput knob only — so the series is directly comparable.
func BenchmarkAnalyzeParallel(b *testing.B) {
	spec := workload.SizeSweep(1, 3200, 3200)[0]
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := lowerSpec(b, spec)
				b.StartTimer()
				bopt := core.DefaultBuild()
				bopt.Workers = workers
				builder := core.Build(prog, bopt)
				copt := core.DefaultCheck()
				copt.Checkers = []string{core.CheckUAF}
				copt.Workers = workers
				builder.Check(copt)
			}
		})
	}
}

// BenchmarkCheckCached measures a repeated Analysis.Check round: the first
// round populates the shared SMT query cache, so the measured rounds replay
// verdicts instead of re-solving. Fact propagation is disabled to route
// every undecided path constraint through the solver (and hence the cache).
func BenchmarkCheckCached(b *testing.B) {
	opt := DefaultOptions()
	opt.Checkers = []string{CheckUseAfterFree}
	opt.FactPropagation = false
	a, err := NewAnalysis(workload.Generate(workload.SizeSweep(1, 2000, 2000)[0]), opt)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := a.Check(); err != nil { // cold round: fills the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var hits, misses int
	for i := 0; i < b.N; i++ {
		res, err := a.Check()
		if err != nil {
			b.Fatal(err)
		}
		hits = res.Check.CacheHits
		misses = res.Check.CacheMisses
	}
	b.ReportMetric(float64(hits), "cachehits")
	b.ReportMetric(float64(misses), "cachemisses")
	if hits == 0 {
		b.Fatal("warm Check round produced no SMT cache hits")
	}
}

// BenchmarkSolver measures the raw SMT core on pigeonhole instances.
func BenchmarkSolver(b *testing.B) {
	for _, holes := range []int{5, 6, 7} {
		holes := holes
		b.Run(fmt.Sprintf("php-%d", holes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pool, formulas := hardQuery(holes)
				s := smt.New(pool)
				for _, f := range formulas {
					s.Assert(f)
				}
				b.StartTimer()
				if s.Solve() != smt.Unsat {
					b.Fatal("pigeonhole must be unsat")
				}
			}
		})
	}
}
