package pipeline

import (
	"context"
	"fmt"
	"time"
)

// Span is the structured trace record of one stage execution: what ran,
// for how long, how much of its step budget it consumed, and how much
// cached work it reused. Wall times are measured on the monotonic clock
// and are explicitly OUTSIDE the determinism contract — byte-identical
// runs may carry different spans.
type Span struct {
	// Stage is the canonical stage name (a registry name).
	Stage string
	// Wall is the stage's wall-clock duration.
	Wall time.Duration
	// Steps counts the abstract work units the stage consumed (fixpoint
	// iterations, DFS steps, functions re-analyzed — stage-defined).
	Steps int64
	// Budget is the configured step budget of the stage's governing
	// dimension, 0 when the stage ran ungoverned.
	Budget int64
	// CacheHits counts reused units of cached work (summary hits, guard
	// interner hits, verdict hits — stage-defined).
	CacheHits uint64
}

// BudgetRemaining returns the unconsumed part of the stage's step budget,
// or -1 when the stage ran ungoverned.
func (s Span) BudgetRemaining() int64 {
	if s.Budget <= 0 {
		return -1
	}
	if rem := s.Budget - s.Steps; rem > 0 {
		return rem
	}
	return 0
}

// PanicError is the runner's capture of a panic inside a stage function.
// Callers classify it (errors.As) and convert it to their public
// internal-error form; Value carries the original panic payload.
type PanicError struct {
	Stage string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: panic in stage %s: %v", e.Stage, e.Value)
}

// Runner executes stage functions under the uniform cross-cutting
// wrapper and accumulates their trace spans. A Runner serves one
// analysis; it is not safe for concurrent Run calls (stages of one
// analysis run in pipeline order).
type Runner struct {
	inject func(site string) error
	spans  []Span
}

// NewRunner returns a Runner whose entry-site fault injection is
// delegated to inject (typically failpoint.Inject). A nil inject
// disables injection. The runner takes the hook as a parameter — rather
// than importing the failpoint registry — so pipeline stays a leaf
// package that failpoint itself can import for its site list.
func NewRunner(inject func(site string) error) *Runner {
	return &Runner{inject: inject}
}

// Run executes fn as the named stage: it checkpoints ctx, fires the
// stage's entry failpoint site (if the stage declares one), times fn on
// the monotonic clock, converts a panic inside fn into a *PanicError,
// and records the stage's span. fn receives the span under construction
// and fills in its Steps/Budget/CacheHits before returning; Stage is
// owned by the runner, and Wall is filled by the runner unless fn set it
// itself (a stage whose own instrumentation splits its time across
// recorded sub-spans pre-sets the residual). The span is recorded even
// when fn fails partway, so traces of degraded or aborted runs still
// show where time went.
func (r *Runner) Run(ctx context.Context, stageName string, fn func(*Span) error) error {
	stage := mustStage(stageName)
	if err := ctx.Err(); err != nil {
		return err
	}
	span := Span{Stage: stage.Name}
	start := time.Now()
	// The entry injection runs inside the recovered section too: a
	// panic-mode failpoint at a stage entry must surface as the same
	// *PanicError a panic inside the stage would.
	err := r.runRecovered(stage.Name, &span, func(sp *Span) error {
		if r.inject != nil && stage.EntrySite != "" {
			if ferr := r.inject(stage.EntrySite); ferr != nil {
				return ferr
			}
		}
		return fn(sp)
	})
	if span.Wall == 0 {
		span.Wall = time.Since(start)
	}
	r.spans = append(r.spans, span)
	return err
}

// runRecovered isolates the recover so Run's own bookkeeping (span
// recording) happens outside the deferred path.
func (r *Runner) runRecovered(stageName string, span *Span, fn func(*Span) error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Stage: stageName, Value: rec}
		}
	}()
	return fn(span)
}

// Record appends an externally measured span (a sub-stage timed inside a
// larger run, e.g. the data-dependence pass inside the VFG build). The
// span's Stage must be a registry name.
func (r *Runner) Record(span Span) {
	mustStage(span.Stage)
	r.spans = append(r.spans, span)
}

// Trace returns the recorded spans rearranged into registry (pipeline)
// order. Spans of stages that never ran are absent; a stage recorded
// twice keeps both spans adjacent in first-recorded order.
func (r *Runner) Trace() []Span {
	out := make([]Span, 0, len(r.spans))
	for _, s := range stages {
		for _, sp := range r.spans {
			if sp.Stage == s.Name {
				out = append(out, sp)
			}
		}
	}
	return out
}
