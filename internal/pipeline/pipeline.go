// Package pipeline is the single definition of Canary's staged analysis
// pipeline: an ordered registry of Stage descriptors carrying each stage's
// canonical name, the budget dimensions governed inside it, the
// fault-injection sites that fire inside it, and its metrics label — plus
// an instrumented Runner that executes a stage function under the uniform
// cross-cutting wrapper (checkpoint cancellation, entry-site fault
// injection, panic capture, monotonic span timing).
//
// Every other list of stage identity derives from this registry instead of
// being maintained by hand: Result.Degraded ordering, the
// "budget-exhausted: <dimension>" report reasons, failpoint.Sites(), the
// canaryd per-stage latency histogram labels, and the spans of
// Result.Trace. The registry is deliberately a leaf package (stdlib only)
// so the frontend, the core analyses, the fault-injection registry, and
// the daemon can all import it without cycles.
package pipeline

// Canonical stage names, in the fixed order of the paper's pipeline
// (§3–§5): parse → lower → PTA summaries → Alg. 1 data dependence →
// Alg. 2 interference fixpoint → MHP → guarded-VFG construction → guarded
// source–sink checking. These are the only places the names are spelled;
// everything else references the constants.
const (
	StageParse        = "parse"
	StageLower        = "lower"
	StagePTA          = "pta"
	StageDataDep      = "datadep"
	StageInterference = "interference"
	StageMHP          = "mhp"
	StageVFG          = "vfg"
	StageCheck        = "check"
)

// Budget dimensions: the step-counted resource governors of
// canary.Budgets, named by what they bound. Their pipeline order (the
// order BudgetDimensions returns, which is the order Result.Degraded
// lists exhausted dimensions in) derives from the registry: a stage's
// dimensions appear where the stage appears.
const (
	BudgetFixpoint = "fixpoint"
	BudgetSearch   = "search"
	BudgetFormula  = "formula"
	BudgetSolve    = "solve"
)

// budgetReasonPrefix is the shared prefix of every budget-exhaustion
// report reason.
const budgetReasonPrefix = "budget-exhausted: "

// The canonical inconclusive-report reasons, one per budget dimension.
// canary.Report.Reason and core.Report.Reason carry exactly these strings.
const (
	ReasonFixpointExhausted = budgetReasonPrefix + BudgetFixpoint
	ReasonSearchExhausted   = budgetReasonPrefix + BudgetSearch
	ReasonFormulaExhausted  = budgetReasonPrefix + BudgetFormula
	ReasonSolveExhausted    = budgetReasonPrefix + BudgetSolve
)

// BudgetReason renders the canonical report reason of one exhausted
// budget dimension.
func BudgetReason(dim string) string { return budgetReasonPrefix + dim }

// Fault-injection site names. A site is either pinned to the stage it
// fires inside (Stage.Sites) or, for the cache and daemon layers that sit
// outside the per-analysis pipeline, listed in AuxSites.
const (
	SiteParse         = "parse"          // parse stage entry (runner-injected)
	SiteLower         = "lower"          // lower stage entry (runner-injected)
	SitePTAFixpoint   = "pta-fixpoint"   // pta summary fixpoint, per round
	SiteBuildFixpoint = "build-fixpoint" // VFG outer fixpoint, per iteration
	SiteGuardEval     = "guard-eval"     // guard assembly in validateQuery
	SiteSMTSolve      = "smt-solve"      // immediately before a real solver run
	SiteCacheRead     = "cache-read"     // cache.Store.Get (fault → miss)
	SiteCacheWrite    = "cache-write"    // cache.Store.Put (fault → skip)
	SiteVerdictRead   = "verdict-read"   // structural verdict lookup (fault → miss)
	SiteJobDequeue    = "job-dequeue"    // canaryd worker, after dequeue
	SiteDiskRead      = "disk-read"      // diskstore read (fault → miss)
	SiteDiskWrite     = "disk-write"     // diskstore write (fault → entry stays cold)
	SiteDiskCorrupt   = "disk-corrupt"   // diskstore read-side bit flip (checksum → miss)
	SitePeerFetch     = "peer-fetch"     // fleet peer cache fetch (fault → local compute)
)

// Stage is one descriptor of the ordered pipeline registry. The metrics
// label of a stage is its Name: canaryd exposes
// canaryd_stage_latency_seconds{stage="<Name>"} for every registered
// stage.
type Stage struct {
	// Name is the canonical stage name (StageParse ... StageCheck).
	Name string
	// Budgets lists the budget dimensions enforced inside this stage, in
	// degradation order. Empty for ungoverned stages.
	Budgets []string
	// Sites lists the fault-injection sites that fire inside this stage
	// (including EntrySite when set).
	Sites []string
	// EntrySite, when non-empty, is the failpoint site the Runner injects
	// at the stage's entry, before the stage function runs. Interior
	// sites (per-round, per-query) stay inside the stage code and are
	// merely declared in Sites.
	EntrySite string
}

// MetricsLabel returns the stage's label in the canaryd latency
// histograms (the canonical name).
func (s Stage) MetricsLabel() string { return s.Name }

// stages is THE registry: the one ordered stage list everything else
// derives from. Registration order is pipeline order — it defines
// Result.Degraded ordering, Result.Trace span ordering, and the metrics
// exposition order.
var stages = []Stage{
	{Name: StageParse, EntrySite: SiteParse, Sites: []string{SiteParse}},
	{Name: StageLower, EntrySite: SiteLower, Sites: []string{SiteLower}},
	{Name: StagePTA, Sites: []string{SitePTAFixpoint}},
	{Name: StageDataDep},
	{Name: StageInterference},
	{Name: StageMHP},
	{Name: StageVFG, Budgets: []string{BudgetFixpoint}, Sites: []string{SiteBuildFixpoint}},
	{Name: StageCheck,
		Budgets: []string{BudgetSearch, BudgetFormula, BudgetSolve},
		Sites:   []string{SiteGuardEval, SiteSMTSolve, SiteVerdictRead}},
}

// auxSites are the fault-injection sites of the layers around the
// per-analysis pipeline: the content/result cache, the persistent disk
// store, and the daemon's job scheduler. They are part of the registry's
// site namespace (so failpoint.Sites() still derives from one list)
// without belonging to a stage.
var auxSites = []string{
	SiteCacheRead, SiteCacheWrite, SiteJobDequeue,
	SiteDiskRead, SiteDiskWrite, SiteDiskCorrupt, SitePeerFetch,
}

// Stages returns the ordered registry. The slice is a copy; descriptors
// share the registry's inner slices and must not be mutated.
func Stages() []Stage { return append([]Stage(nil), stages...) }

// StageNames returns the canonical stage names in pipeline order.
func StageNames() []string {
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.Name
	}
	return out
}

// ByName looks a stage descriptor up by canonical name.
func ByName(name string) (Stage, bool) {
	for _, s := range stages {
		if s.Name == name {
			return s, true
		}
	}
	return Stage{}, false
}

// mustStage is ByName for the compile-time constants the runner is called
// with; an unknown name is a programming error, not an input error.
func mustStage(name string) Stage {
	s, ok := ByName(name)
	if !ok {
		panic("pipeline: unknown stage " + name)
	}
	return s
}

// BudgetDimensions returns every budget dimension in pipeline order: the
// registry is walked stage by stage and each stage contributes its
// dimensions in declaration order. This is the one definition of the
// Result.Degraded ordering.
func BudgetDimensions() []string {
	var out []string
	for _, s := range stages {
		out = append(out, s.Budgets...)
	}
	return out
}

// FailpointSites returns every fault-injection site name of the registry —
// the per-stage sites in pipeline order followed by the aux sites. The
// failpoint package's site list is exactly this.
func FailpointSites() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(site string) {
		if !seen[site] {
			seen[site] = true
			out = append(out, site)
		}
	}
	for _, s := range stages {
		for _, site := range s.Sites {
			add(site)
		}
	}
	for _, site := range auxSites {
		add(site)
	}
	return out
}

// AuxSites returns the non-stage sites (cache and daemon layers).
func AuxSites() []string { return append([]string(nil), auxSites...) }
