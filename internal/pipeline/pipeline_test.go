package pipeline

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRegistryOrder pins the registry to the paper's pipeline: eight
// stages in the fixed §3–§5 order. Everything downstream (Degraded
// ordering, trace ordering, metrics labels) assumes exactly this list.
func TestRegistryOrder(t *testing.T) {
	want := []string{
		StageParse, StageLower, StagePTA, StageDataDep,
		StageInterference, StageMHP, StageVFG, StageCheck,
	}
	if got := StageNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StageNames() = %v, want %v", got, want)
	}
	if got := len(Stages()); got != len(want) {
		t.Fatalf("Stages() has %d entries, want %d", got, len(want))
	}
	for _, st := range Stages() {
		if st.MetricsLabel() != st.Name {
			t.Errorf("stage %s: metrics label %q != name", st.Name, st.MetricsLabel())
		}
	}
}

// TestBudgetDimensionsOrder pins the one definition of Degraded ordering:
// dimensions appear where their stage appears, in declaration order.
func TestBudgetDimensionsOrder(t *testing.T) {
	want := []string{BudgetFixpoint, BudgetSearch, BudgetFormula, BudgetSolve}
	if got := BudgetDimensions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("BudgetDimensions() = %v, want %v", got, want)
	}
}

// TestBudgetReasons pins the canonical report-reason strings.
func TestBudgetReasons(t *testing.T) {
	for _, dim := range BudgetDimensions() {
		want := "budget-exhausted: " + dim
		if got := BudgetReason(dim); got != want {
			t.Errorf("BudgetReason(%q) = %q, want %q", dim, got, want)
		}
	}
	if ReasonSolveExhausted != BudgetReason(BudgetSolve) {
		t.Errorf("ReasonSolveExhausted = %q", ReasonSolveExhausted)
	}
}

// TestFailpointSites checks the derived site list: stage sites in
// pipeline order, aux sites after, no duplicates, every EntrySite and
// every declared stage site present.
func TestFailpointSites(t *testing.T) {
	sites := FailpointSites()
	seen := make(map[string]bool)
	for _, s := range sites {
		if seen[s] {
			t.Errorf("duplicate site %q", s)
		}
		seen[s] = true
	}
	for _, st := range Stages() {
		if st.EntrySite != "" && !seen[st.EntrySite] {
			t.Errorf("stage %s entry site %q missing from FailpointSites()", st.Name, st.EntrySite)
		}
		for _, site := range st.Sites {
			if !seen[site] {
				t.Errorf("stage %s site %q missing from FailpointSites()", st.Name, site)
			}
		}
	}
	for _, site := range AuxSites() {
		if !seen[site] {
			t.Errorf("aux site %q missing from FailpointSites()", site)
		}
	}
}

// TestByName covers lookup and the mustStage guard.
func TestByName(t *testing.T) {
	if st, ok := ByName(StageVFG); !ok || st.Name != StageVFG {
		t.Fatalf("ByName(vfg) = %+v, %v", st, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown stage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mustStage did not panic on an unknown name")
		}
	}()
	mustStage("nope")
}

// TestRunnerSpans checks the happy path: fn fills the span, the runner
// times it, and Trace returns registry order regardless of run order.
func TestRunnerSpans(t *testing.T) {
	r := NewRunner(nil)
	ctx := context.Background()
	// Run check before parse to prove Trace re-sorts.
	if err := r.Run(ctx, StageCheck, func(sp *Span) error {
		sp.Steps, sp.Budget, sp.CacheHits = 7, 10, 3
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(ctx, StageParse, func(sp *Span) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	if len(tr) != 2 || tr[0].Stage != StageParse || tr[1].Stage != StageCheck {
		t.Fatalf("Trace() = %+v, want parse then check", tr)
	}
	if tr[1].Steps != 7 || tr[1].Budget != 10 || tr[1].CacheHits != 3 {
		t.Errorf("check span lost fn's fields: %+v", tr[1])
	}
	if tr[1].BudgetRemaining() != 3 {
		t.Errorf("BudgetRemaining() = %d, want 3", tr[1].BudgetRemaining())
	}
	if tr[0].BudgetRemaining() != -1 {
		t.Errorf("ungoverned BudgetRemaining() = %d, want -1", tr[0].BudgetRemaining())
	}
	if tr[0].Wall <= 0 || tr[1].Wall <= 0 {
		t.Errorf("runner must fill Wall: %+v", tr)
	}
}

// TestRunnerPresetWall checks that a stage pre-setting its residual wall
// time (the vfg stage does) is not overwritten by the runner.
func TestRunnerPresetWall(t *testing.T) {
	r := NewRunner(nil)
	preset := 42 * time.Hour
	if err := r.Run(context.Background(), StageVFG, func(sp *Span) error {
		sp.Wall = preset
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.Trace()[0].Wall; got != preset {
		t.Errorf("preset Wall overwritten: %v", got)
	}
}

// TestRunnerCancellation: a done context stops the stage before fn runs
// and records no span.
func TestRunnerCancellation(t *testing.T) {
	r := NewRunner(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := r.Run(ctx, StageParse, func(sp *Span) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran || len(r.Trace()) != 0 {
		t.Error("cancelled stage must not run or record a span")
	}
}

// TestRunnerPanic: a panic inside fn surfaces as *PanicError naming the
// stage, and the span is still recorded.
func TestRunnerPanic(t *testing.T) {
	r := NewRunner(nil)
	err := r.Run(context.Background(), StageLower, func(sp *Span) error {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stage != StageLower || pe.Value != "boom" {
		t.Fatalf("err = %v, want PanicError{lower, boom}", err)
	}
	if !strings.Contains(pe.Error(), "panic in stage lower") {
		t.Errorf("PanicError message: %q", pe.Error())
	}
	if len(r.Trace()) != 1 {
		t.Error("panicking stage must still record its span")
	}
}

// TestRunnerEntryInjection: the stage's entry site fires through the
// inject hook before fn, an injected error skips fn, and an injected
// panic becomes the same *PanicError a stage panic would.
func TestRunnerEntryInjection(t *testing.T) {
	injected := errors.New("injected")
	var fired []string
	r := NewRunner(func(site string) error {
		fired = append(fired, site)
		if site == SiteParse {
			return injected
		}
		if site == SiteLower {
			panic("injected panic")
		}
		return nil
	})
	ctx := context.Background()

	ran := false
	if err := r.Run(ctx, StageParse, func(sp *Span) error { ran = true; return nil }); !errors.Is(err, injected) {
		t.Fatalf("parse err = %v, want injected", err)
	}
	if ran {
		t.Error("fn must not run after an injected entry error")
	}

	err := r.Run(ctx, StageLower, func(sp *Span) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stage != StageLower {
		t.Fatalf("lower err = %v, want PanicError", err)
	}

	// A stage without an entry site never calls inject.
	if err := r.Run(ctx, StageMHP, func(sp *Span) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []string{SiteParse, SiteLower}) {
		t.Errorf("fired sites = %v", fired)
	}
}

// TestRunnerRecord: externally measured sub-spans join the trace in
// registry order; unknown names are rejected.
func TestRunnerRecord(t *testing.T) {
	r := NewRunner(nil)
	r.Record(Span{Stage: StageMHP, Wall: time.Millisecond})
	r.Record(Span{Stage: StageDataDep, Wall: 2 * time.Millisecond})
	tr := r.Trace()
	if len(tr) != 2 || tr[0].Stage != StageDataDep || tr[1].Stage != StageMHP {
		t.Fatalf("Trace() = %+v, want datadep then mhp", tr)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Record accepted an unknown stage")
		}
	}()
	r.Record(Span{Stage: "nope"})
}
