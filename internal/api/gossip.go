package api

import (
	"encoding/json"
	"fmt"
)

// MaxGossipMembers bounds the member count of one gossip exchange. A
// fleet is tens of nodes, not thousands; a table past this bound is a
// protocol bug or an attack and is refused before it can bloat the
// receiver's membership state.
const MaxGossipMembers = 1024

// MaxGossipIDBytes bounds a single member ID (an advertised base URL).
const MaxGossipIDBytes = 512

// Gossip member states, as they appear on the wire.
const (
	GossipAlive   = "alive"
	GossipSuspect = "suspect"
	GossipDead    = "dead"
)

// Gossip member roles. Routers participate in membership (so workers
// learn of them and they learn of workers) but are excluded from the
// rendezvous ring and the peer cache tier.
const (
	RoleWorker = "worker"
	RoleRouter = "router"
)

// GossipMember is one node's view of one fleet member: who it is (the
// advertised base URL doubles as the identity), what it does, how fresh
// the claim is (incarnation — only the member itself ever increments it,
// which is what lets a restarted or wrongly-suspected node refute stale
// death claims), and the claimed liveness state.
type GossipMember struct {
	ID          string `json:"id"`
	Role        string `json:"role,omitempty"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// GossipRequest is the POST /v1/gossip body: the sender's full
// membership table plus its own identity. Receiving one is itself
// liveness evidence for the sender.
type GossipRequest struct {
	From    string         `json:"from"`
	Members []GossipMember `json:"members"`
	// PingTarget, when set, makes this exchange a SWIM-style ping-req:
	// the sender cannot reach PingTarget directly and asks the receiver
	// to probe it before the sender marks it suspect. The receiver
	// answers with PingOK on the response.
	PingTarget string `json:"ping_target,omitempty"`
}

// GossipResponse answers a gossip exchange with the receiver's (merged)
// table, so one round trip synchronizes both directions.
type GossipResponse struct {
	From    string         `json:"from"`
	Members []GossipMember `json:"members"`
	// PingOK reports the result of a ping-req: true when the receiver
	// reached PingTarget directly during this exchange.
	PingOK bool `json:"ping_ok,omitempty"`
}

// ParseGossipRequest decodes and validates a /v1/gossip body. Like
// ParseAnalyzeRequest it is the single governance point for the
// endpoint: bounded member count, bounded IDs, known states and roles —
// hostile input never panics and never smuggles an unbounded or
// malformed table into a node's membership state.
func ParseGossipRequest(data []byte) (*GossipRequest, error) {
	var req GossipRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("invalid gossip body: %w", err)
	}
	if req.From == "" {
		return nil, fmt.Errorf("missing required field: from")
	}
	if len(req.From) > MaxGossipIDBytes {
		return nil, fmt.Errorf("from exceeds the %d-byte bound", MaxGossipIDBytes)
	}
	if len(req.PingTarget) > MaxGossipIDBytes {
		return nil, fmt.Errorf("ping_target exceeds the %d-byte bound", MaxGossipIDBytes)
	}
	if err := ValidateGossipMembers(req.Members); err != nil {
		return nil, err
	}
	return &req, nil
}

// ParseGossipResponse decodes and validates the reply half of an
// exchange under the same bounds as the request.
func ParseGossipResponse(data []byte) (*GossipResponse, error) {
	var resp GossipResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("invalid gossip response: %w", err)
	}
	if err := ValidateGossipMembers(resp.Members); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ValidateGossipMembers enforces the per-member invariants shared by
// both directions of the exchange.
func ValidateGossipMembers(members []GossipMember) error {
	if len(members) > MaxGossipMembers {
		return fmt.Errorf("table of %d members exceeds the %d-member bound", len(members), MaxGossipMembers)
	}
	for i, m := range members {
		if m.ID == "" {
			return fmt.Errorf("member %d: missing required field: id", i)
		}
		if len(m.ID) > MaxGossipIDBytes {
			return fmt.Errorf("member %d: id exceeds the %d-byte bound", i, MaxGossipIDBytes)
		}
		switch m.State {
		case GossipAlive, GossipSuspect, GossipDead:
		default:
			return fmt.Errorf("member %d: unknown state %q", i, m.State)
		}
		switch m.Role {
		case "", RoleWorker, RoleRouter:
		default:
			return fmt.Errorf("member %d: unknown role %q", i, m.Role)
		}
	}
	return nil
}
