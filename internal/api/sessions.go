package api

// Session wire types: the /v1/sessions surface through which clients
// open a long-lived analysis session, stream line-span edits, and
// receive findings deltas. ParseOpenSessionRequest and ParseEditRequest
// are the governance points of the surface — they bound ID shape, edit
// count, and patch bytes before any session state is touched, on both
// the daemon and any tier that forwards session traffic.

import (
	"encoding/json"
	"fmt"

	"canary"
)

// Bounds of the session surface. One edit request carries at most
// MaxEditsPerRequest spans and MaxEditTotalBytes of replacement text;
// a single span's text is capped at MaxEditTextBytes. Client-chosen
// session IDs are short path-safe tokens.
const (
	MaxSessionIDBytes    = 64
	MaxEditsPerRequest   = 256
	MaxEditTextBytes     = 1 << 20
	MaxEditTotalBytes    = 4 << 20
	MaxSessionTTLSeconds = 24 * 60 * 60
)

// OpenSessionRequest is the POST /v1/sessions body.
type OpenSessionRequest struct {
	// SessionID optionally names the session (path-safe, at most
	// MaxSessionIDBytes of [A-Za-z0-9._-]). Opening an ID that already
	// exists is a 409; empty lets the server mint a collision-free ID.
	SessionID string `json:"session_id,omitempty"`
	// Source is the initial program text. Required.
	Source string `json:"source"`
	// Options patches the server's base analysis options for every run
	// of this session, including the step-counted stage budgets.
	Options *OptionsPatch `json:"options,omitempty"`
	// TTLSeconds optionally shortens the server's idle TTL for this
	// session; 0 keeps the server default, values above the server's
	// policy are clamped to it.
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// validSessionID reports whether id is a well-formed client-chosen
// session ID.
func validSessionID(id string) bool {
	if id == "" || len(id) > MaxSessionIDBytes {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseOpenSessionRequest decodes and validates a POST /v1/sessions
// body (already read under the transport's byte cap).
func ParseOpenSessionRequest(data []byte) (*OpenSessionRequest, error) {
	var req OpenSessionRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %v", err)
	}
	if req.Source == "" {
		return nil, fmt.Errorf("missing source")
	}
	if req.SessionID != "" && !validSessionID(req.SessionID) {
		return nil, fmt.Errorf("invalid session_id: at most %d bytes of [A-Za-z0-9._-]", MaxSessionIDBytes)
	}
	if req.TTLSeconds < 0 {
		return nil, fmt.Errorf("negative ttl_seconds")
	}
	if req.TTLSeconds > MaxSessionTTLSeconds {
		return nil, fmt.Errorf("ttl_seconds %d exceeds the maximum %d", req.TTLSeconds, MaxSessionTTLSeconds)
	}
	return &req, nil
}

// WireEdit is one line-span patch of an edit request, mirroring
// canary.Edit: replace the half-open 1-based line range [start, end) of
// the session's current revision with text.
type WireEdit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// EditRequest is the POST /v1/sessions/{id}/edits body: one atomic
// batch of non-overlapping spans against the same revision.
type EditRequest struct {
	// Seq optionally asserts the revision the edits were computed
	// against; a non-zero mismatch with the session's current revision
	// is refused with 409 so a client cannot silently patch a revision
	// it has not seen. 0 skips the check (and matches revision 0, the
	// open state, trivially).
	Seq int `json:"seq,omitempty"`
	// Edits is the span batch. Required, bounded, validated as a whole —
	// a rejected batch changes nothing.
	Edits []WireEdit `json:"edits"`
}

// ParseEditRequest decodes and validates a POST /v1/sessions/{id}/edits
// body. It is the governance point of the edit path: span count, text
// bytes, and basic span shape are bounded here, before the session lock
// is taken or any patching happens. Span bounds against the actual
// source (end beyond EOF, overlaps) are the session engine's job — they
// depend on the revision, which the decoder cannot see.
func ParseEditRequest(data []byte) (*EditRequest, error) {
	var req EditRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %v", err)
	}
	if req.Seq < 0 {
		return nil, fmt.Errorf("negative seq")
	}
	if len(req.Edits) == 0 {
		return nil, fmt.Errorf("missing edits")
	}
	if len(req.Edits) > MaxEditsPerRequest {
		return nil, fmt.Errorf("%d edits exceeds the per-request maximum %d", len(req.Edits), MaxEditsPerRequest)
	}
	total := 0
	for i, e := range req.Edits {
		if e.Start < 1 {
			return nil, fmt.Errorf("edit %d: start line %d is below 1", i, e.Start)
		}
		if e.End < e.Start {
			return nil, fmt.Errorf("edit %d: end line %d precedes start line %d", i, e.End, e.Start)
		}
		if len(e.Text) > MaxEditTextBytes {
			return nil, fmt.Errorf("edit %d: %d text bytes exceeds the per-edit maximum %d", i, len(e.Text), MaxEditTextBytes)
		}
		total += len(e.Text)
		if total > MaxEditTotalBytes {
			return nil, fmt.Errorf("edit text totals more than the per-request maximum %d bytes", MaxEditTotalBytes)
		}
	}
	return &req, nil
}

// DeltaResponse is the body of a successful open (201) or edit (200):
// the findings delta plus enough run stats to see the incremental win.
type DeltaResponse struct {
	SessionID string `json:"session_id"`
	canary.FindingsDelta
	// SummaryHits and FuncsReanalyzed describe the re-run that produced
	// this delta (both zero when reanalyzed is false — no run happened).
	SummaryHits     int `json:"summary_hits,omitempty"`
	FuncsReanalyzed int `json:"funcs_reanalyzed,omitempty"`
	// ElapsedMS is the server-side wall clock of applying the batch.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FindingsResponse is the GET /v1/sessions/{id}/findings body: the full
// current findings, for clients that lost a delta or just joined.
type FindingsResponse struct {
	SessionID string          `json:"session_id"`
	Seq       int             `json:"seq"`
	Reports   []canary.Report `json:"reports"`
}

// Error codes of the session surface, carried in the "code" field of
// error bodies so clients can dispatch without parsing prose.
const (
	CodeDuplicateSession = "duplicate-session"
	CodeUnknownSession   = "unknown-session"
	CodeSessionOpening   = "session-opening"
	CodeSeqConflict      = "seq-conflict"
	CodeEditRejected     = "edit-rejected"
	CodeSessionCap       = "session-cap"
)

// ErrorResponse is the typed JSON error body: human prose in error,
// a stable machine code in code (empty on surfaces predating codes).
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
