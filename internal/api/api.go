// Package api defines the JSON wire types of the analysis service that
// both tiers of a fleet speak: canaryd (internal/server) serves them, the
// router (internal/fleet) forwards them, and clients of either see the
// same shapes. It is deliberately a leaf package (canary + stdlib only)
// so the daemon and the router can share request decoding, option
// patching, and response envelopes without an import cycle.
//
// The decoder here is the single request-size governance point past the
// transport cap: ParseAnalyzeRequest bounds the item count of a batch and
// rejects structurally invalid envelopes before any analysis work or
// routing happens, on both tiers.
package api

import (
	"encoding/json"
	"fmt"

	"canary"
)

// MaxBatchItems bounds the item count of one batch /v1/analyze request.
// Hundreds of sources per request is the design point; thousands is a
// client bug or an attack, and is refused before any item is admitted.
const MaxBatchItems = 1024

// AnalyzeRequest is the POST /v1/analyze body, in either of two forms:
// a single submission (Source set, Items empty) or a batch (Items set,
// Source empty). The forms are mutually exclusive.
type AnalyzeRequest struct {
	// Source is the program text in the canary input language. Required
	// in the single form, forbidden in the batch form.
	Source string `json:"source,omitempty"`
	// Async makes the single form return 202 immediately with a job ID to
	// poll at GET /v1/jobs/{id}; the default waits for the verdict inline.
	// Batches are always synchronous.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds this job's analysis; 0 (and anything above the
	// server's job-timeout cap) means the cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options patches the server's base analysis options field by field.
	Options *OptionsPatch `json:"options,omitempty"`
	// Items is the batch form: up to MaxBatchItems independent
	// submissions with per-item results and partial-failure semantics
	// (one failed item never fails its siblings).
	Items []AnalyzeItem `json:"items,omitempty"`
}

// AnalyzeItem is one submission of a batch request.
type AnalyzeItem struct {
	// Source is the program text. Required.
	Source string `json:"source"`
	// TimeoutMS bounds this item's analysis like the single form's field.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options patches the server's base analysis options for this item.
	Options *OptionsPatch `json:"options,omitempty"`
}

// ParseAnalyzeRequest decodes and validates a /v1/analyze body (already
// read under the transport's byte cap). It enforces the envelope rules —
// exactly one of the two forms, a bounded batch, no empty sources — so
// the daemon and the router refuse the same bodies for the same reasons.
// It never panics on hostile input; allocation is proportional to the
// input size, and the item-count bound caps the fan-out a small body can
// request.
func ParseAnalyzeRequest(data []byte) (*AnalyzeRequest, error) {
	var req AnalyzeRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	if len(req.Items) == 0 {
		if req.Source == "" {
			return nil, fmt.Errorf("missing required field: source")
		}
		return &req, nil
	}
	if req.Source != "" {
		return nil, fmt.Errorf("source and items are mutually exclusive")
	}
	if req.Async {
		return nil, fmt.Errorf("batch requests are always synchronous; async is not supported")
	}
	if len(req.Items) > MaxBatchItems {
		return nil, fmt.Errorf("batch of %d items exceeds the %d-item bound", len(req.Items), MaxBatchItems)
	}
	for i, it := range req.Items {
		if it.Source == "" {
			return nil, fmt.Errorf("item %d: missing required field: source", i)
		}
	}
	return &req, nil
}

// JobResponse is the JSON rendering of a job for /v1/analyze (single
// form), /v1/jobs/{id}, and each element of a batch response.
type JobResponse struct {
	JobID    string          `json:"job_id,omitempty"`
	Status   string          `json:"status"`
	CacheKey string          `json:"cache_key,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Error    string          `json:"error,omitempty"`
	Elapsed  float64         `json:"elapsed_ms,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// BatchResponse is the body of a batch /v1/analyze response: one entry
// per request item, in request order. The HTTP status is 200 whenever the
// batch itself was well-formed; per-item failures live in the items.
type BatchResponse struct {
	Items []JobResponse `json:"items"`
	// Completed and Failed count the items by terminal state, so clients
	// (and the router's metrics) need not re-scan the slice.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

// Tally recomputes the Completed/Failed counters from the items.
func (b *BatchResponse) Tally() {
	b.Completed, b.Failed = 0, 0
	for _, it := range b.Items {
		if it.Status == "done" {
			b.Completed++
		} else {
			b.Failed++
		}
	}
}

// Health is the machine-readable GET /healthz?format=json body: enough
// readiness detail for a router's health checker to distinguish a
// saturated node (alive, queue full — route around it softly) from a
// down one (no response at all), and for operators to see at a glance
// what a node is doing.
type Health struct {
	// Status is "ok" or "draining" (mirrors the plain-text form).
	Status string `json:"status"`
	// NodeID identifies this daemon in a fleet (the listen address unless
	// overridden by -node-id).
	NodeID string `json:"node_id,omitempty"`
	// QueueDepth and QueueCapacity describe the admission queue; equal
	// values mean the node is saturated and new work will be rejected
	// with 503 until the backlog drains.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Running counts jobs currently inside the analysis pipeline;
	// InFlight counts distinct submission keys admitted but not yet
	// terminal (the single-flight coalescing table).
	Running  int `json:"running"`
	InFlight int `json:"in_flight"`
	// CacheDir is the persistent store's root ("" = memory-only);
	// CacheDirOK reports whether it is present and usable (always true
	// for memory-only nodes).
	CacheDir   string `json:"cache_dir,omitempty"`
	CacheDirOK bool   `json:"cache_dir_ok"`
	// MembersAlive counts the non-dead fleet members this node knows of
	// (itself included); 0 means dynamic membership is not enabled.
	MembersAlive int `json:"members_alive,omitempty"`
}

// Saturated reports whether the node is alive but has no admission
// capacity right now — the state a router should treat as "retry later",
// not "failed".
func (h Health) Saturated() bool {
	return h.QueueCapacity > 0 && h.QueueDepth >= h.QueueCapacity
}

// OptionsPatch is a partial canary.Options: nil fields keep the base
// configuration. Field names mirror the library options.
type OptionsPatch struct {
	Entry              *string  `json:"entry,omitempty"`
	UnrollDepth        *int     `json:"unroll_depth,omitempty"`
	InlineDepth        *int     `json:"inline_depth,omitempty"`
	EnableMHP          *bool    `json:"enable_mhp,omitempty"`
	GuardCap           *int     `json:"guard_cap,omitempty"`
	Checkers           []string `json:"checkers,omitempty"`
	RequireInterThread *bool    `json:"require_inter_thread,omitempty"`
	LockOrder          *bool    `json:"lock_order,omitempty"`
	CondVarOrder       *bool    `json:"cond_var_order,omitempty"`
	MemoryModel        *string  `json:"memory_model,omitempty"`
	FactPropagation    *bool    `json:"fact_propagation,omitempty"`
	Workers            *int     `json:"workers,omitempty"`
	CubeAndConquer     *bool    `json:"cube_and_conquer,omitempty"`
	MaxConflicts       *int64   `json:"max_conflicts,omitempty"`
	// The step-counted stage budgets (canary.Budgets); exhaustion
	// degrades the result to inconclusive verdicts instead of failing.
	MaxFixpointRounds *int `json:"max_fixpoint_rounds,omitempty"`
	MaxDFSSteps       *int `json:"max_dfs_steps,omitempty"`
	MaxFormulaNodes   *int `json:"max_formula_nodes,omitempty"`
}

// Apply overlays the patch on opt. Both the daemon and the router run
// exactly this function — the router to compute the same SubmissionKey
// the worker will cache under, which is what makes routing, cross-node
// dedup, and the peer cache tier agree on one content address.
func (p *OptionsPatch) Apply(opt canary.Options) canary.Options {
	if p == nil {
		return opt
	}
	if p.Entry != nil {
		opt.Entry = *p.Entry
	}
	if p.UnrollDepth != nil {
		opt.UnrollDepth = *p.UnrollDepth
	}
	if p.InlineDepth != nil {
		opt.InlineDepth = *p.InlineDepth
	}
	if p.EnableMHP != nil {
		opt.EnableMHP = *p.EnableMHP
	}
	if p.GuardCap != nil {
		opt.GuardCap = *p.GuardCap
	}
	if len(p.Checkers) > 0 {
		opt.Checkers = p.Checkers
	}
	if p.RequireInterThread != nil {
		opt.RequireInterThread = *p.RequireInterThread
	}
	if p.LockOrder != nil {
		opt.LockOrder = *p.LockOrder
	}
	if p.CondVarOrder != nil {
		opt.CondVarOrder = *p.CondVarOrder
	}
	if p.MemoryModel != nil {
		opt.MemoryModel = *p.MemoryModel
	}
	if p.FactPropagation != nil {
		opt.FactPropagation = *p.FactPropagation
	}
	if p.Workers != nil {
		opt.Workers = *p.Workers
	}
	if p.CubeAndConquer != nil {
		opt.CubeAndConquer = *p.CubeAndConquer
	}
	if p.MaxConflicts != nil {
		opt.MaxConflicts = *p.MaxConflicts
	}
	if p.MaxFixpointRounds != nil {
		opt.Budgets.MaxFixpointRounds = *p.MaxFixpointRounds
	}
	if p.MaxDFSSteps != nil {
		opt.Budgets.MaxDFSSteps = *p.MaxDFSSteps
	}
	if p.MaxFormulaNodes != nil {
		opt.Budgets.MaxFormulaNodes = *p.MaxFormulaNodes
	}
	return opt
}
