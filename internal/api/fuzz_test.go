package api

import (
	"encoding/json"
	"testing"
)

// FuzzParseAnalyzeRequest hammers the shared request decoder both tiers
// run on every /v1/analyze body: hostile input must never panic, and any
// accepted request must satisfy the envelope invariants the handlers rely
// on (exactly one form, bounded batch, no empty sources) — a violation
// here would let a small body smuggle unbounded or malformed work past
// both the router and the daemon.
func FuzzParseAnalyzeRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"source":"func main() {}"}`))
	f.Add([]byte(`{"source":"f","async":true,"timeout_ms":250}`))
	f.Add([]byte(`{"items":[{"source":"a"},{"source":"b","timeout_ms":9}]}`))
	f.Add([]byte(`{"source":"x","items":[{"source":"y"}]}`))
	f.Add([]byte(`{"items":[{"source":""}]}`))
	f.Add([]byte(`{"items":[],"async":true}`))
	f.Add([]byte(`{"options":{"workers":4,"checkers":["race"]},"source":"s"}`))
	f.Add([]byte(`{"items":[{"source":"a","options":{"unroll_depth":2}}]}`))
	f.Add([]byte(`{"source":7}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseAnalyzeRequest(b)
		if err != nil {
			if req != nil {
				t.Fatalf("rejected request returned a non-nil envelope")
			}
			return
		}
		checkAnalyzeInvariants(t, req)
	})
}

func checkAnalyzeInvariants(t *testing.T, req *AnalyzeRequest) {
	t.Helper()
	if len(req.Items) == 0 {
		if req.Source == "" {
			t.Fatalf("accepted single-form request with empty source")
		}
		return
	}
	if req.Source != "" {
		t.Fatalf("accepted request mixing single and batch forms")
	}
	if req.Async {
		t.Fatalf("accepted async batch request")
	}
	if len(req.Items) > MaxBatchItems {
		t.Fatalf("accepted batch of %d items past the %d bound", len(req.Items), MaxBatchItems)
	}
	for i, it := range req.Items {
		if it.Source == "" {
			t.Fatalf("accepted item %d with empty source", i)
		}
	}
	// The accepted envelope must survive a wire round-trip: what a
	// router re-encodes to forward must decode to the same request.
	enc, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("accepted request does not re-encode: %v", err)
	}
	if _, err := ParseAnalyzeRequest(enc); err != nil {
		t.Fatalf("re-encoded request rejected: %v", err)
	}
}

// FuzzParseGossip hammers the membership wire decoder the same way: a
// hostile gossip body must never panic, and any accepted table must
// satisfy the invariants the membership agent relies on (bounded member
// count, non-empty bounded IDs, known states and roles) — a violation
// would let one malicious or corrupt peer poison every node's membership
// state, and with it the rendezvous ring that decides routing.
func FuzzParseGossip(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"from":"http://a:1"}`))
	f.Add([]byte(`{"from":"http://a:1","members":[]}`))
	f.Add([]byte(`{"from":"http://a:1","members":[{"id":"http://a:1","role":"worker","state":"alive","incarnation":3}]}`))
	f.Add([]byte(`{"from":"http://r:1","members":[{"id":"http://b:2","role":"router","state":"suspect","incarnation":0},{"id":"http://c:3","state":"dead","incarnation":18446744073709551615}]}`))
	f.Add([]byte(`{"from":"http://a:1","members":[{"id":"","state":"alive"}]}`))
	f.Add([]byte(`{"from":"http://a:1","members":[{"id":"x","state":"zombie"}]}`))
	f.Add([]byte(`{"from":"http://a:1","members":[{"id":"x","role":"admin","state":"alive"}]}`))
	f.Add([]byte(`{"members":[{"id":"x","state":"alive"}]}`))
	f.Add([]byte(`{"from":7}`))
	f.Add([]byte(`{"from":"http://a:1","ping_target":"http://b:2"}`))
	f.Add([]byte(`{"from":"http://a:1","ping_target":7}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseGossipRequest(b)
		if err != nil {
			if req != nil {
				t.Fatalf("rejected gossip returned a non-nil envelope")
			}
			return
		}
		if req.From == "" || len(req.From) > MaxGossipIDBytes {
			t.Fatalf("accepted gossip with invalid from %q", req.From)
		}
		if len(req.PingTarget) > MaxGossipIDBytes {
			t.Fatalf("accepted ping_target of %d bytes past the %d bound", len(req.PingTarget), MaxGossipIDBytes)
		}
		if len(req.Members) > MaxGossipMembers {
			t.Fatalf("accepted table of %d members past the %d bound", len(req.Members), MaxGossipMembers)
		}
		for i, m := range req.Members {
			if m.ID == "" || len(m.ID) > MaxGossipIDBytes {
				t.Fatalf("accepted member %d with invalid id %q", i, m.ID)
			}
			switch m.State {
			case GossipAlive, GossipSuspect, GossipDead:
			default:
				t.Fatalf("accepted member %d with unknown state %q", i, m.State)
			}
			switch m.Role {
			case "", RoleWorker, RoleRouter:
			default:
				t.Fatalf("accepted member %d with unknown role %q", i, m.Role)
			}
		}
		// The accepted table must survive a wire round-trip: what an agent
		// re-advertises must decode to the same table on every peer.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted gossip does not re-encode: %v", err)
		}
		if _, err := ParseGossipRequest(enc); err != nil {
			t.Fatalf("re-encoded gossip rejected: %v", err)
		}
	})
}

// FuzzParseEditRequest hammers the session edit decoder: hostile input
// must never panic, and any accepted batch must satisfy the bounds the
// session handlers rely on (non-empty bounded batch, sane spans, capped
// text bytes) — a violation would let a small body smuggle unbounded
// patching work past the per-session budget machinery.
func FuzzParseEditRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"edits":[]}`))
	f.Add([]byte(`{"edits":[{"start":1,"end":2,"text":"x = 1;\n"}]}`))
	f.Add([]byte(`{"seq":3,"edits":[{"start":4,"end":4,"text":""}]}`))
	f.Add([]byte(`{"seq":-1,"edits":[{"start":1,"end":1,"text":"a"}]}`))
	f.Add([]byte(`{"edits":[{"start":0,"end":1,"text":"a"}]}`))
	f.Add([]byte(`{"edits":[{"start":5,"end":2,"text":"a"}]}`))
	f.Add([]byte(`{"edits":[{"start":1,"end":2},{"start":2,"end":2,"text":"b\n"}]}`))
	f.Add([]byte(`{"edits":7}`))
	f.Add([]byte(`{"edits":[{"start":"1","end":2,"text":"a"}]}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseEditRequest(b)
		if err != nil {
			if req != nil {
				t.Fatalf("rejected edit request returned a non-nil envelope")
			}
			return
		}
		if req.Seq < 0 {
			t.Fatalf("accepted negative seq %d", req.Seq)
		}
		if len(req.Edits) == 0 || len(req.Edits) > MaxEditsPerRequest {
			t.Fatalf("accepted batch of %d edits outside (0, %d]", len(req.Edits), MaxEditsPerRequest)
		}
		total := 0
		for i, e := range req.Edits {
			if e.Start < 1 || e.End < e.Start {
				t.Fatalf("accepted edit %d with invalid span [%d, %d)", i, e.Start, e.End)
			}
			if len(e.Text) > MaxEditTextBytes {
				t.Fatalf("accepted edit %d with %d text bytes past the %d bound", i, len(e.Text), MaxEditTextBytes)
			}
			total += len(e.Text)
		}
		if total > MaxEditTotalBytes {
			t.Fatalf("accepted batch with %d total text bytes past the %d bound", total, MaxEditTotalBytes)
		}
		// The accepted batch must survive a wire round-trip: what a
		// forwarding tier re-encodes must decode to the same batch.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted edit request does not re-encode: %v", err)
		}
		if _, err := ParseEditRequest(enc); err != nil {
			t.Fatalf("re-encoded edit request rejected: %v", err)
		}
	})
}
