package api

import (
	"encoding/json"
	"testing"
)

// FuzzParseAnalyzeRequest hammers the shared request decoder both tiers
// run on every /v1/analyze body: hostile input must never panic, and any
// accepted request must satisfy the envelope invariants the handlers rely
// on (exactly one form, bounded batch, no empty sources) — a violation
// here would let a small body smuggle unbounded or malformed work past
// both the router and the daemon.
func FuzzParseAnalyzeRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"source":"func main() {}"}`))
	f.Add([]byte(`{"source":"f","async":true,"timeout_ms":250}`))
	f.Add([]byte(`{"items":[{"source":"a"},{"source":"b","timeout_ms":9}]}`))
	f.Add([]byte(`{"source":"x","items":[{"source":"y"}]}`))
	f.Add([]byte(`{"items":[{"source":""}]}`))
	f.Add([]byte(`{"items":[],"async":true}`))
	f.Add([]byte(`{"options":{"workers":4,"checkers":["race"]},"source":"s"}`))
	f.Add([]byte(`{"items":[{"source":"a","options":{"unroll_depth":2}}]}`))
	f.Add([]byte(`{"source":7}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseAnalyzeRequest(b)
		if err != nil {
			if req != nil {
				t.Fatalf("rejected request returned a non-nil envelope")
			}
			return
		}
		if len(req.Items) == 0 {
			if req.Source == "" {
				t.Fatalf("accepted single-form request with empty source")
			}
			return
		}
		if req.Source != "" {
			t.Fatalf("accepted request mixing single and batch forms")
		}
		if req.Async {
			t.Fatalf("accepted async batch request")
		}
		if len(req.Items) > MaxBatchItems {
			t.Fatalf("accepted batch of %d items past the %d bound", len(req.Items), MaxBatchItems)
		}
		for i, it := range req.Items {
			if it.Source == "" {
				t.Fatalf("accepted item %d with empty source", i)
			}
		}
		// The accepted envelope must survive a wire round-trip: what a
		// router re-encodes to forward must decode to the same request.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		if _, err := ParseAnalyzeRequest(enc); err != nil {
			t.Fatalf("re-encoded request rejected: %v", err)
		}
	})
}
