package api

import (
	"strings"
	"testing"
)

func TestParseOpenSessionRequest(t *testing.T) {
	ok := []string{
		`{"source":"func main() {}"}`,
		`{"source":"s","session_id":"ide-1.window_2"}`,
		`{"source":"s","ttl_seconds":30}`,
		`{"source":"s","options":{"workers":2,"max_dfs_steps":100}}`,
	}
	for _, body := range ok {
		if _, err := ParseOpenSessionRequest([]byte(body)); err != nil {
			t.Errorf("rejected valid open %s: %v", body, err)
		}
	}
	bad := []string{
		``,
		`{}`,
		`{"source":""}`,
		`{"source":"s","session_id":"has space"}`,
		`{"source":"s","session_id":"slash/y"}`,
		`{"source":"s","session_id":"` + strings.Repeat("a", MaxSessionIDBytes+1) + `"}`,
		`{"source":"s","ttl_seconds":-1}`,
		`{"source":"s","ttl_seconds":999999999}`,
		`{"source":7}`,
	}
	for _, body := range bad {
		if req, err := ParseOpenSessionRequest([]byte(body)); err == nil {
			t.Errorf("accepted invalid open %s", body)
		} else if req != nil {
			t.Errorf("rejected open returned non-nil envelope for %s", body)
		}
	}
}

func TestParseEditRequestBounds(t *testing.T) {
	if _, err := ParseEditRequest([]byte(`{"edits":[{"start":1,"end":1,"text":"x = 1;\n"}]}`)); err != nil {
		t.Fatalf("rejected minimal valid edit: %v", err)
	}
	var many strings.Builder
	many.WriteString(`{"edits":[`)
	for i := 0; i <= MaxEditsPerRequest; i++ {
		if i > 0 {
			many.WriteString(",")
		}
		many.WriteString(`{"start":1,"end":1,"text":""}`)
	}
	many.WriteString(`]}`)
	if _, err := ParseEditRequest([]byte(many.String())); err == nil {
		t.Errorf("accepted batch past MaxEditsPerRequest")
	}
	big := `{"edits":[{"start":1,"end":1,"text":"` + strings.Repeat("a", MaxEditTextBytes+1) + `"}]}`
	if _, err := ParseEditRequest([]byte(big)); err == nil {
		t.Errorf("accepted edit past MaxEditTextBytes")
	}
}

func TestValidSessionID(t *testing.T) {
	for _, id := range []string{"a", "A-1", "x.y_z", strings.Repeat("k", MaxSessionIDBytes)} {
		if !validSessionID(id) {
			t.Errorf("rejected valid id %q", id)
		}
	}
	for _, id := range []string{"", "a b", "a/b", "a\nb", "ü", strings.Repeat("k", MaxSessionIDBytes+1)} {
		if validSessionID(id) {
			t.Errorf("accepted invalid id %q", id)
		}
	}
}
