// Package cache implements a bounded, concurrency-safe, content-addressed
// byte store: values are keyed by a SHA-256 digest of their inputs, so a
// key fully determines its value and entries never need invalidation —
// only eviction. canaryd fronts the analysis pipeline with one of these,
// keyed by canary.SubmissionKey, so repeated submissions of the same
// (source, options) pair are served without re-running the analysis, and
// served byte-identically to the cold run.
package cache

import (
	"container/list"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"canary/internal/failpoint"
)

// Key is a SHA-256 content address.
type Key [32]byte

// String renders the key as lowercase hex (the job API's cache_key field).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex rendering back into a Key — the peer cache
// API's path parameter. It accepts exactly the 64-character lowercase or
// uppercase hex form and reports ok=false for anything else.
func ParseKey(s string) (Key, bool) {
	var k Key
	if len(s) != 2*len(k) {
		return Key{}, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, false
	}
	copy(k[:], b)
	return k, true
}

// ByteStore is the contract every content-addressed byte store in the
// system satisfies: the in-memory Store here, diskstore's persistent
// Namespace, and the Tiered combination of the two. Because a Key fully
// determines its value, any implementation is free to degrade any
// operation to a miss (never to a wrong value), which is what lets the
// warm stores swap backends without changing their semantics.
type ByteStore interface {
	// Get returns the value stored under k; the returned slice is shared
	// and must not be modified.
	Get(k Key) ([]byte, bool)
	// Put stores v under k. Implementations may copy v, drop the write,
	// or defer it — a reader either sees exactly v or a miss.
	Put(k Key, v []byte)
	// Delete removes k, reporting whether it was present in any tier.
	Delete(k Key) bool
	// Stats returns the cumulative hit and miss counts of Get.
	Stats() (hits, misses uint64)
	// Len returns the number of stored values (for tiered stores, of the
	// tier that bounds in-process footprint).
	Len() int
}

// Store is a bounded LRU map from content keys to immutable byte values.
// All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	max     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

type entry struct {
	key Key
	val []byte
}

// DefaultMaxEntries bounds a Store built with New(0).
const DefaultMaxEntries = 4096

// New returns an empty store holding at most maxEntries values
// (<= 0 means DefaultMaxEntries). The least-recently-used entry is evicted
// when the bound is exceeded.
func New(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Store{
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		max:     maxEntries,
	}
}

// Get returns the value stored under k. The returned slice is shared and
// must not be modified; a content-addressed value is immutable by
// construction. The lookup is counted as a hit or a miss.
func (s *Store) Get(k Key) ([]byte, bool) {
	// An injected read fault degrades to a miss: content addressing makes
	// a miss always safe (the value is recomputed), never wrong.
	if failpoint.Inject(failpoint.SiteCacheRead) != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return el.Value.(*entry).val, true
}

// Put stores v under k, copying v so later caller mutations cannot alias
// into the store. Re-putting an existing key refreshes its recency but
// keeps the first value: under content addressing both values are
// byte-identical, and keeping the first preserves any slice already handed
// out by Get.
func (s *Store) Put(k Key, v []byte) {
	// An injected write fault skips the store: the entry simply stays
	// cold, which a content-addressed cache tolerates by construction.
	if failpoint.Inject(failpoint.SiteCacheWrite) != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.lru.MoveToFront(el)
		return
	}
	cp := append([]byte(nil), v...)
	s.entries[k] = s.lru.PushFront(&entry{key: k, val: cp})
	for s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry).key)
	}
}

// Delete removes the value stored under k, reporting whether it was
// present. Quarantine uses this to evict per-function summaries that a
// recovered panic may have left half-built.
func (s *Store) Delete(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		return false
	}
	s.lru.Remove(el)
	delete(s.entries, k)
	return true
}

// Stats returns the cumulative hit and miss counts of Get.
func (s *Store) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Len returns the number of stored values.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
