package cache

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

func keyOf(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func TestStoreBasics(t *testing.T) {
	s := New(8)
	k := keyOf("a")
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store should miss")
	}
	s.Put(k, []byte("value-a"))
	got, ok := s.Get(k)
	if !ok || string(got) != "value-a" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if hits, misses := s.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStorePutCopiesAndKeepsFirst(t *testing.T) {
	s := New(8)
	k := keyOf("a")
	buf := []byte("original")
	s.Put(k, buf)
	buf[0] = 'X' // caller mutation must not reach the store
	got, _ := s.Get(k)
	if string(got) != "original" {
		t.Fatalf("stored value aliases the caller's buffer: %q", got)
	}
	// A re-put under the same key keeps the first value (content addressing
	// guarantees they are identical; this pins the no-replace behavior).
	s.Put(k, []byte("replacement"))
	if got, _ := s.Get(k); string(got) != "original" {
		t.Fatalf("re-put replaced the value: %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after re-put", s.Len())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := New(3)
	for i := 0; i < 3; i++ {
		s.Put(keyOf(fmt.Sprint(i)), []byte{byte(i)})
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := s.Get(keyOf("0")); !ok {
		t.Fatal("expected hit on 0")
	}
	s.Put(keyOf("3"), []byte{3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, ok := s.Get(keyOf("1")); ok {
		t.Error("LRU entry 1 should have been evicted")
	}
	for _, name := range []string{"0", "2", "3"} {
		if _, ok := s.Get(keyOf(name)); !ok {
			t.Errorf("entry %s should have survived", name)
		}
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(fmt.Sprint(i % 32))
				s.Put(k, []byte(fmt.Sprint(i%32)))
				if v, ok := s.Get(k); ok && string(v) != fmt.Sprint(i%32) {
					t.Errorf("goroutine %d: wrong value %q", g, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want 32", s.Len())
	}
}
