// Package guard implements the symbolic execution-constraint formulas
// ("guards") that annotate value-flow edges in Canary (PLDI 2021, §4).
//
// A guard is an immutable propositional formula over two kinds of atoms:
//
//   - boolean atoms, which stand for opaque branch conditions (the θ of the
//     paper's Fig. 2), and
//   - order atoms O_i < O_j, which stand for a strict execution-order
//     relation between two statement labels (Defn. 2).
//
// Constructors perform lightweight structural simplification (flattening,
// unit elimination, complementary-literal detection). The package also
// provides the semi-decision procedure of §5.2 that cheaply filters out
// guards with apparent contradictions before any SMT solving happens.
package guard

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Atom identifies an atomic proposition interned in a Pool. The zero Atom is
// invalid.
type Atom int32

// Kind discriminates the node type of a Formula.
type Kind uint8

// Formula node kinds.
const (
	KTrue Kind = iota
	KFalse
	KVar // a single atom
	KNot
	KAnd
	KOr
)

// Formula is an immutable propositional formula. The zero value is not
// meaningful; use the package constructors. Formulas share subtrees freely.
//
// Formulas are hash-consed through a global, concurrency-safe interner (see
// intern below): structurally identical formulas built through the package
// constructors share one pointer, so pointer equality implies structural
// equality. Downstream consumers (the Tseitin memo, the SMT query cache)
// exploit this for O(1) canonical keys.
type Formula struct {
	kind Kind
	atom Atom
	id   uint32 // interner identity, used to key parent formulas
	subs []*Formula
}

var (
	trueF  = &Formula{kind: KTrue, id: 1}
	falseF = &Formula{kind: KFalse, id: 2}
)

// interner is the global hash-cons table. Keys encode (kind, atom, child
// ids); values are *Formula. Children are always interned before parents
// (constructors build bottom-up), so child ids are stable key material.
//
// The table is unbounded in principle; when it grows past internSoftCap
// entries it is swapped for a fresh one. Dropping the table is safe: two
// structurally equal formulas with distinct pointers only cost downstream
// caches a miss, never a wrong answer.
const internSoftCap = 1 << 21

var (
	internTable   atomic.Pointer[sync.Map]
	internCounter atomic.Uint32
	internHits    atomic.Uint64
	internMisses  atomic.Uint64
	internSize    atomic.Int64
)

func init() {
	internTable.Store(new(sync.Map))
	internCounter.Store(2) // 1 and 2 are ⊤ and ⊥
}

// internKey encodes the shallow identity of a formula node.
func internKey(kind Kind, atom Atom, subs []*Formula) string {
	buf := make([]byte, 0, 5+4*len(subs))
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(atom))
	for _, s := range subs {
		buf = binary.LittleEndian.AppendUint32(buf, s.id)
	}
	return string(buf)
}

// intern returns the canonical formula structurally equal to f, registering
// f as the canonical representative if none exists yet.
func intern(f *Formula) *Formula {
	key := internKey(f.kind, f.atom, f.subs)
	t := internTable.Load()
	if v, ok := t.Load(key); ok {
		internHits.Add(1)
		return v.(*Formula)
	}
	f.id = internCounter.Add(1)
	if v, loaded := t.LoadOrStore(key, f); loaded {
		internHits.Add(1)
		return v.(*Formula)
	}
	internMisses.Add(1)
	if internSize.Add(1) > internSoftCap {
		internSize.Store(0)
		internTable.Store(new(sync.Map)) // epoch flush; see interner comment
	}
	return f
}

// InternStats returns the cumulative hash-cons hit and miss counts of the
// global formula interner. Deltas around an analysis phase measure how much
// structural sharing the phase enjoyed.
func InternStats() (hits, misses uint64) {
	return internHits.Load(), internMisses.Load()
}

// True returns the formula ⊤.
func True() *Formula { return trueF }

// False returns the formula ⊥.
func False() *Formula { return falseF }

// Kind reports the node kind of f.
func (f *Formula) Kind() Kind { return f.kind }

// Atom returns the atom of a KVar node; it is 0 for other kinds.
func (f *Formula) Atom() Atom {
	if f.kind == KVar {
		return f.atom
	}
	return 0
}

// Subs returns the immediate subformulas of a KNot, KAnd or KOr node. The
// returned slice must not be modified.
func (f *Formula) Subs() []*Formula { return f.subs }

// IsTrue reports whether f is syntactically ⊤.
func (f *Formula) IsTrue() bool { return f.kind == KTrue }

// IsFalse reports whether f is syntactically ⊥.
func (f *Formula) IsFalse() bool { return f.kind == KFalse }

// Var returns the formula consisting of the single atom a.
func Var(a Atom) *Formula {
	if a <= 0 {
		panic("guard: Var with non-positive atom")
	}
	return intern(&Formula{kind: KVar, atom: a})
}

// Not returns ¬f, simplifying double negation and constants.
func Not(f *Formula) *Formula {
	switch f.kind {
	case KTrue:
		return falseF
	case KFalse:
		return trueF
	case KNot:
		return f.subs[0]
	}
	return intern(&Formula{kind: KNot, subs: []*Formula{f}})
}

// litKey returns a key identifying f if it is a literal (an atom or a
// negated atom): positive atom id for KVar, negative for ¬KVar, and
// (0, false) otherwise.
func litKey(f *Formula) (int32, bool) {
	switch f.kind {
	case KVar:
		return int32(f.atom), true
	case KNot:
		if f.subs[0].kind == KVar {
			return -int32(f.subs[0].atom), true
		}
	}
	return 0, false
}

// And returns the conjunction of fs with flattening, unit and duplicate
// elimination, and complementary-literal short-circuiting.
func And(fs ...*Formula) *Formula { return nary(KAnd, fs) }

// Or returns the disjunction of fs with the dual simplifications of And.
func Or(fs ...*Formula) *Formula { return nary(KOr, fs) }

func nary(kind Kind, fs []*Formula) *Formula {
	unit, zero := trueF, falseF
	if kind == KOr {
		unit, zero = falseF, trueF
	}
	out := make([]*Formula, 0, len(fs))
	seen := make(map[*Formula]bool, len(fs))
	lits := make(map[int32]bool, len(fs))
	var add func(f *Formula) bool // reports zero short-circuit
	add = func(f *Formula) bool {
		if f == nil {
			panic("guard: nil formula operand")
		}
		if f.kind == unit.kind {
			return false
		}
		if f.kind == zero.kind {
			return true
		}
		if f.kind == kind { // flatten
			for _, s := range f.subs {
				if add(s) {
					return true
				}
			}
			return false
		}
		if seen[f] {
			return false
		}
		if k, ok := litKey(f); ok {
			if lits[-k] {
				return true // x ∧ ¬x (or x ∨ ¬x)
			}
			if lits[k] {
				return false
			}
			lits[k] = true
		}
		seen[f] = true
		out = append(out, f)
		return false
	}
	for _, f := range fs {
		if add(f) {
			return zero
		}
	}
	switch len(out) {
	case 0:
		return unit
	case 1:
		return out[0]
	}
	return intern(&Formula{kind: kind, subs: out})
}

// Implies returns ¬a ∨ b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// Eval evaluates f under the given total assignment of atoms. Atoms missing
// from the map evaluate to false.
func (f *Formula) Eval(asn map[Atom]bool) bool {
	switch f.kind {
	case KTrue:
		return true
	case KFalse:
		return false
	case KVar:
		return asn[f.atom]
	case KNot:
		return !f.subs[0].Eval(asn)
	case KAnd:
		for _, s := range f.subs {
			if !s.Eval(asn) {
				return false
			}
		}
		return true
	case KOr:
		for _, s := range f.subs {
			if s.Eval(asn) {
				return true
			}
		}
		return false
	}
	panic("guard: bad formula kind")
}

// Atoms appends to dst every distinct atom occurring in f and returns the
// extended slice.
func (f *Formula) Atoms(dst []Atom) []Atom {
	seen := make(map[Atom]bool)
	var walk func(g *Formula)
	walk = func(g *Formula) {
		switch g.kind {
		case KVar:
			if !seen[g.atom] {
				seen[g.atom] = true
				dst = append(dst, g.atom)
			}
		case KNot, KAnd, KOr:
			for _, s := range g.subs {
				walk(s)
			}
		}
	}
	walk(f)
	return dst
}

// Size returns the number of nodes in the formula tree (shared subtrees are
// counted once per occurrence).
func (f *Formula) Size() int {
	n := 1
	for _, s := range f.subs {
		n += s.Size()
	}
	return n
}

// SemiDecide is the lightweight semi-decision procedure of §5.2. It returns
// (result, decided). When decided is true, result is the exact
// satisfiability of f; when decided is false the formula needs a full SMT
// query. It runs in time linear in the size of f and never returns a wrong
// verdict.
//
// The procedure decides:
//   - syntactic ⊤/⊥ (constructors already fold contradictory literal sets);
//   - pure conjunctions of literals (checking complementary pairs);
//   - conjunctions whose conjuncts include a decided-⊥ part.
func SemiDecide(f *Formula) (sat, decided bool) {
	switch f.kind {
	case KTrue:
		return true, true
	case KFalse:
		return false, true
	case KVar:
		return true, true
	case KNot:
		if f.subs[0].kind == KVar {
			return true, true
		}
		return false, false
	case KAnd:
		lits := make(map[int32]bool)
		pure := true
		for _, s := range f.subs {
			k, ok := litKey(s)
			if !ok {
				pure = false
				continue
			}
			if lits[-k] {
				return false, true
			}
			lits[k] = true
		}
		if pure {
			return true, true
		}
		return false, false
	}
	return false, false
}

// Pool interns atoms and records their interpretation. All methods are safe
// for concurrent use: the bug-checking stage interns order atoms from
// parallel source-sink queries (§5.2's parallelization).
type Pool struct {
	mu    sync.Mutex
	names map[string]Atom
	info  []atomInfo // index atom-1
}

type atomInfo struct {
	name     string
	order    bool
	from, to int // statement labels for order atoms
}

// NewPool returns an empty atom pool.
func NewPool() *Pool {
	return &Pool{names: make(map[string]Atom)}
}

// Bool interns (or returns the existing) boolean atom with the given name.
// Names are the identity of boolean atoms: two statements sharing the same
// syntactic branch condition share the atom, which is what makes the θ vs ¬θ
// contradiction of the paper's Fig. 2 detectable.
func (p *Pool) Bool(name string) Atom {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.intern(atomInfo{name: name})
}

func (p *Pool) intern(ai atomInfo) Atom {
	if a, ok := p.names[ai.name]; ok {
		return a
	}
	p.info = append(p.info, ai)
	a := Atom(len(p.info))
	p.names[ai.name] = a
	return a
}

// Order interns the order atom O_from < O_to between two statement labels.
// Interning is symmetric-aware only in that (from,to) and (to,from) are
// distinct atoms related by the theory (¬(i<j) ⟺ j<i for i≠j).
func (p *Pool) Order(from, to int) Atom {
	p.mu.Lock()
	defer p.mu.Unlock()
	name := fmt.Sprintf("O%d<O%d", from, to)
	return p.intern(atomInfo{name: name, order: true, from: from, to: to})
}

// NumAtoms returns the number of interned atoms.
func (p *Pool) NumAtoms() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.info)
}

// Name returns the display name of atom a.
func (p *Pool) Name(a Atom) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a <= 0 || int(a) > len(p.info) {
		return fmt.Sprintf("atom#%d", a)
	}
	return p.info[a-1].name
}

// OrderAtom reports whether a is an order atom and, if so, its two
// statement labels.
func (p *Pool) OrderAtom(a Atom) (from, to int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a <= 0 || int(a) > len(p.info) {
		return 0, 0, false
	}
	ai := p.info[a-1]
	return ai.from, ai.to, ai.order
}

// String renders f using the pool's atom names.
func (p *Pool) String(f *Formula) string {
	var b strings.Builder
	p.render(&b, f, false)
	return b.String()
}

func (p *Pool) render(b *strings.Builder, f *Formula, paren bool) {
	switch f.kind {
	case KTrue:
		b.WriteString("true")
	case KFalse:
		b.WriteString("false")
	case KVar:
		b.WriteString(p.Name(f.atom))
	case KNot:
		b.WriteString("!")
		p.render(b, f.subs[0], true)
	case KAnd, KOr:
		op := " && "
		if f.kind == KOr {
			op = " || "
		}
		if paren {
			b.WriteString("(")
		}
		// Render literals in a stable order for readable, deterministic
		// reports.
		subs := f.subs
		if allLiterals(subs) {
			subs = sortedLiterals(p, subs)
		}
		for i, s := range subs {
			if i > 0 {
				b.WriteString(op)
			}
			p.render(b, s, true)
		}
		if paren {
			b.WriteString(")")
		}
	}
}

func allLiterals(fs []*Formula) bool {
	for _, f := range fs {
		if _, ok := litKey(f); !ok {
			return false
		}
	}
	return true
}

func sortedLiterals(p *Pool, fs []*Formula) []*Formula {
	out := append([]*Formula(nil), fs...)
	sort.SliceStable(out, func(i, j int) bool {
		ki, _ := litKey(out[i])
		kj, _ := litKey(out[j])
		ni, nj := p.Name(Atom(abs32(ki))), p.Name(Atom(abs32(kj)))
		if ni != nj {
			return ni < nj
		}
		return ki > kj // positive literal first
	})
	return out
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
