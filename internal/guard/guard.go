// Package guard implements the symbolic execution-constraint formulas
// ("guards") that annotate value-flow edges in Canary (PLDI 2021, §4).
//
// A guard is an immutable propositional formula over two kinds of atoms:
//
//   - boolean atoms, which stand for opaque branch conditions (the θ of the
//     paper's Fig. 2), and
//   - order atoms O_i < O_j, which stand for a strict execution-order
//     relation between two statement labels (Defn. 2).
//
// Constructors perform lightweight structural simplification (flattening,
// unit elimination, complementary-literal detection). The package also
// provides the semi-decision procedure of §5.2 that cheaply filters out
// guards with apparent contradictions before any SMT solving happens.
package guard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Atom identifies an atomic proposition interned in a Pool. The zero Atom is
// invalid.
type Atom int32

// Kind discriminates the node type of a Formula.
type Kind uint8

// Formula node kinds.
const (
	KTrue Kind = iota
	KFalse
	KVar // a single atom
	KNot
	KAnd
	KOr
)

// Formula is an immutable propositional formula. The zero value is not
// meaningful; use the package constructors. Formulas share subtrees freely.
//
// Formulas are hash-consed through a global, concurrency-safe interner (see
// intern below): structurally identical formulas built through the package
// constructors share one pointer, so pointer equality implies structural
// equality. Downstream consumers (the Tseitin memo, the SMT query cache)
// exploit this for O(1) canonical keys.
type Formula struct {
	kind Kind
	atom Atom
	id   int32 // dense interner identity; see ID
	subs []*Formula
}

// ID returns the formula's dense interner identity: ⊤ is 1, ⊥ is 2, and
// every further distinct formula interned by this process gets the next
// integer. IDs are assigned at intern time, so they are stable for the
// process lifetime and usable as array indexes, but they depend on
// construction order and must never leak into analysis output.
func (f *Formula) ID() int32 { return f.id }

var (
	trueF  = &Formula{kind: KTrue, id: 1}
	falseF = &Formula{kind: KFalse, id: 2}
)

// The interner is a sharded, open-addressed hash-cons table keyed directly
// on the shallow node identity (kind, atom, child IDs) — no per-lookup key
// string is ever materialized. Children are always interned before parents
// (constructors build bottom-up), so child pointers are stable key material
// and child-pointer equality coincides with child-ID equality.
//
// Each shard is bounded in principle by internShardCap slots; a shard that
// would grow past the cap is reset instead (epoch flush). Dropping entries
// is safe: two structurally equal formulas with distinct pointers only cost
// downstream caches a miss, never a wrong answer.
const (
	internShardBits = 4
	internShardCap  = 1 << 17 // slots per shard; ×16 shards ≈ the old soft cap
)

type internShard struct {
	mu    sync.Mutex
	tab   []*Formula // power-of-two open-addressed table, nil slot = empty
	count int
}

var (
	internShards [1 << internShardBits]internShard
	internIDs    atomic.Int32 // last assigned formula ID; 1 and 2 are ⊤ and ⊥
	internHits   atomic.Uint64
	internMisses atomic.Uint64
	batchedEvals atomic.Uint64
)

func init() {
	internIDs.Store(2)
}

// hashNode mixes the shallow identity of a node (FNV-1a over the integer
// key material).
func hashNode(kind Kind, atom Atom, subs []*Formula) uint64 {
	h := uint64(1469598103934665603)
	h = (h ^ uint64(kind)) * 1099511628211
	h = (h ^ uint64(uint32(atom))) * 1099511628211
	for _, s := range subs {
		h = (h ^ uint64(uint32(s.id))) * 1099511628211
	}
	return h
}

func sameSubs(a, b []*Formula) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // interned children: pointer equality ⟺ ID equality
			return false
		}
	}
	return true
}

// internNode returns the canonical formula for (kind, atom, subs),
// registering a new node if none exists. The hit path performs no
// allocation, and the subs slice is never retained (the miss path copies
// it) — so callers can pass stack-allocated buffers without them escaping.
func internNode(kind Kind, atom Atom, subs []*Formula) *Formula {
	h := hashNode(kind, atom, subs)
	sh := &internShards[h>>(64-internShardBits)]
	sh.mu.Lock()
	if sh.tab == nil {
		sh.tab = make([]*Formula, 1<<10)
	}
	mask := uint64(len(sh.tab) - 1)
	i := h & mask
	for {
		e := sh.tab[i]
		if e == nil {
			break
		}
		if e.kind == kind && e.atom == atom && sameSubs(e.subs, subs) {
			sh.mu.Unlock()
			internHits.Add(1)
			return e
		}
		i = (i + 1) & mask
	}
	var owned []*Formula
	if len(subs) > 0 {
		owned = append([]*Formula(nil), subs...)
	}
	f := &Formula{kind: kind, atom: atom, id: internIDs.Add(1), subs: owned}
	sh.tab[i] = f
	sh.count++
	if sh.count*4 > len(sh.tab)*3 {
		sh.rehash()
	}
	sh.mu.Unlock()
	internMisses.Add(1)
	return f
}

// rehash doubles the shard's table, or resets it when doubling would pass
// the shard cap (the epoch flush described on the interner comment).
// Callers hold the shard lock.
func (sh *internShard) rehash() {
	next := len(sh.tab) * 2
	if next > internShardCap {
		sh.tab = make([]*Formula, 1<<10)
		sh.count = 0
		return
	}
	old := sh.tab
	sh.tab = make([]*Formula, next)
	mask := uint64(next - 1)
	for _, e := range old {
		if e == nil {
			continue
		}
		i := hashNode(e.kind, e.atom, e.subs) & mask
		for sh.tab[i] != nil {
			i = (i + 1) & mask
		}
		sh.tab[i] = e
	}
}

// InternStats returns the cumulative hash-cons hit and miss counts of the
// global formula interner. Deltas around an analysis phase measure how much
// structural sharing the phase enjoyed.
func InternStats() (hits, misses uint64) {
	return internHits.Load(), internMisses.Load()
}

// InternedCount returns the number of distinct formulas interned by this
// process (including ⊤ and ⊥, excluding entries dropped by epoch flushes
// and later re-interned).
func InternedCount() int64 { return int64(internIDs.Load()) }

// BatchedEvals returns the cumulative number of formula evaluations served
// through the batched assignment-slice evaluator (EvalAll / EvalAssign).
func BatchedEvals() uint64 { return batchedEvals.Load() }

// True returns the formula ⊤.
func True() *Formula { return trueF }

// False returns the formula ⊥.
func False() *Formula { return falseF }

// Kind reports the node kind of f.
func (f *Formula) Kind() Kind { return f.kind }

// Atom returns the atom of a KVar node; it is 0 for other kinds.
func (f *Formula) Atom() Atom {
	if f.kind == KVar {
		return f.atom
	}
	return 0
}

// Subs returns the immediate subformulas of a KNot, KAnd or KOr node. The
// returned slice must not be modified.
func (f *Formula) Subs() []*Formula { return f.subs }

// IsTrue reports whether f is syntactically ⊤.
func (f *Formula) IsTrue() bool { return f.kind == KTrue }

// IsFalse reports whether f is syntactically ⊥.
func (f *Formula) IsFalse() bool { return f.kind == KFalse }

// Var returns the formula consisting of the single atom a.
func Var(a Atom) *Formula {
	if a <= 0 {
		panic("guard: Var with non-positive atom")
	}
	return internNode(KVar, a, nil)
}

// Not returns ¬f, simplifying double negation and constants.
func Not(f *Formula) *Formula {
	switch f.kind {
	case KTrue:
		return falseF
	case KFalse:
		return trueF
	case KNot:
		return f.subs[0]
	}
	sub := [1]*Formula{f}
	return internNode(KNot, 0, sub[:])
}

// litKey returns a key identifying f if it is a literal (an atom or a
// negated atom): positive atom id for KVar, negative for ¬KVar, and
// (0, false) otherwise.
func litKey(f *Formula) (int32, bool) {
	switch f.kind {
	case KVar:
		return int32(f.atom), true
	case KNot:
		if f.subs[0].kind == KVar {
			return -int32(f.subs[0].atom), true
		}
	}
	return 0, false
}

// And returns the conjunction of fs with flattening, unit and duplicate
// elimination, and complementary-literal short-circuiting.
func And(fs ...*Formula) *Formula { return nary(KAnd, fs) }

// Or returns the disjunction of fs with the dual simplifications of And.
func Or(fs ...*Formula) *Formula { return nary(KOr, fs) }

// nary builds an And/Or with flattening, unit and duplicate elimination,
// and complementary-literal short-circuiting. The operand and literal-key
// buffers live on this frame's stack and dedup by linear scan: operand
// lists are short (guards are size-capped downstream), and avoiding the
// per-construction map allocations is what keeps the And/Or hot path
// allocation-free on hash-cons hits. Everything stays in local slices —
// a pointer-receiver helper here would make the buffers escape.
func nary(kind Kind, fs []*Formula) *Formula {
	unit, zero := KTrue, KFalse
	if kind == KOr {
		unit, zero = KFalse, KTrue
	}
	var outBuf [16]*Formula
	var keyBuf [16]int32
	out, keys := outBuf[:0], keyBuf[:0] // keys parallel to out: litKey, 0 for non-literals
	var single [1]*Formula
	for _, f := range fs {
		if f == nil {
			panic("guard: nil formula operand")
		}
		if f.kind == unit {
			continue
		}
		if f.kind == zero {
			return zeroFormula(kind)
		}
		ops := single[:1]
		if f.kind == kind {
			// Flatten: interned same-kind operands are already flat and
			// contain no unit/zero conjuncts, so one level suffices.
			ops = f.subs
		} else {
			single[0] = f
		}
	opLoop:
		for _, g := range ops {
			for _, e := range out {
				if e == g {
					continue opLoop // duplicate operand (interned: pointer equality)
				}
			}
			k, isLit := litKey(g)
			if isLit {
				for _, e := range keys {
					if e == -k {
						return zeroFormula(kind) // x ∧ ¬x (or x ∨ ¬x)
					}
				}
			} else {
				k = 0
			}
			out = append(out, g)
			keys = append(keys, k)
		}
	}
	switch len(out) {
	case 0:
		if kind == KOr {
			return falseF
		}
		return trueF
	case 1:
		return out[0]
	}
	return internNode(kind, 0, out)
}

// zeroFormula is the annihilating element of kind: ⊤ for Or, ⊥ for And.
func zeroFormula(kind Kind) *Formula {
	if kind == KOr {
		return trueF
	}
	return falseF
}

// Implies returns ¬a ∨ b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// Eval evaluates f under the given total assignment of atoms. Atoms missing
// from the map evaluate to false.
func (f *Formula) Eval(asn map[Atom]bool) bool {
	switch f.kind {
	case KTrue:
		return true
	case KFalse:
		return false
	case KVar:
		return asn[f.atom]
	case KNot:
		return !f.subs[0].Eval(asn)
	case KAnd:
		for _, s := range f.subs {
			if !s.Eval(asn) {
				return false
			}
		}
		return true
	case KOr:
		for _, s := range f.subs {
			if s.Eval(asn) {
				return true
			}
		}
		return false
	}
	panic("guard: bad formula kind")
}

// Atoms appends to dst every distinct atom occurring in f and returns the
// extended slice.
func (f *Formula) Atoms(dst []Atom) []Atom {
	seen := make(map[Atom]bool)
	var walk func(g *Formula)
	walk = func(g *Formula) {
		switch g.kind {
		case KVar:
			if !seen[g.atom] {
				seen[g.atom] = true
				dst = append(dst, g.atom)
			}
		case KNot, KAnd, KOr:
			for _, s := range g.subs {
				walk(s)
			}
		}
	}
	walk(f)
	return dst
}

// Size returns the number of nodes in the formula tree (shared subtrees are
// counted once per occurrence).
func (f *Formula) Size() int {
	n := 1
	for _, s := range f.subs {
		n += s.Size()
	}
	return n
}

// SemiDecide is the lightweight semi-decision procedure of §5.2. It returns
// (result, decided). When decided is true, result is the exact
// satisfiability of f; when decided is false the formula needs a full SMT
// query. It runs in time linear in the size of f and never returns a wrong
// verdict.
//
// The procedure decides:
//   - syntactic ⊤/⊥ (constructors already fold contradictory literal sets);
//   - pure conjunctions of literals (checking complementary pairs);
//   - conjunctions whose conjuncts include a decided-⊥ part.
func SemiDecide(f *Formula) (sat, decided bool) {
	switch f.kind {
	case KTrue:
		return true, true
	case KFalse:
		return false, true
	case KVar:
		return true, true
	case KNot:
		if f.subs[0].kind == KVar {
			return true, true
		}
		return false, false
	case KAnd:
		var litBuf [32]int32
		lits := litBuf[:0]
		pure := true
		for _, s := range f.subs {
			k, ok := litKey(s)
			if !ok {
				pure = false
				continue
			}
			for _, e := range lits {
				if e == -k {
					return false, true
				}
			}
			lits = append(lits, k)
		}
		if pure {
			return true, true
		}
		return false, false
	}
	return false, false
}

// Assignment is a dense partial truth assignment over atoms, the
// allocation-free replacement for the map[Atom]bool the evaluation hot
// paths used to build per query. The zero value is an empty assignment;
// Reset reuses the backing storage across queries.
type Assignment struct {
	vals []int8 // index atom-1: 0 unassigned, +1 true, -1 false
	set  []Atom // assigned atoms, in assignment order
}

// NewAssignment returns an assignment with capacity for atoms 1..n
// preallocated (it still grows on demand).
func NewAssignment(n int) *Assignment {
	if n < 0 {
		n = 0
	}
	return &Assignment{vals: make([]int8, n)}
}

// Reset clears every assignment while keeping the backing storage.
func (a *Assignment) Reset() {
	for _, at := range a.set {
		a.vals[at-1] = 0
	}
	a.set = a.set[:0]
}

// Len returns the number of assigned atoms.
func (a *Assignment) Len() int { return len(a.set) }

// Assigned returns the assigned atoms in assignment order. The slice is
// owned by the assignment; it is invalidated by Set and Reset.
func (a *Assignment) Assigned() []Atom { return a.set }

// Set assigns atom at := v, overwriting any previous assignment.
func (a *Assignment) Set(at Atom, v bool) {
	if at <= 0 {
		panic("guard: Assignment.Set with non-positive atom")
	}
	if int(at) > len(a.vals) {
		grown := make([]int8, int(at)+int(at)/2)
		copy(grown, a.vals)
		a.vals = grown
	}
	if a.vals[at-1] == 0 {
		a.set = append(a.set, at)
	}
	if v {
		a.vals[at-1] = 1
	} else {
		a.vals[at-1] = -1
	}
}

// Get reports the assignment of at: its value and whether it is assigned.
func (a *Assignment) Get(at Atom) (v, ok bool) {
	if at <= 0 || int(at) > len(a.vals) {
		return false, false
	}
	switch a.vals[at-1] {
	case 1:
		return true, true
	case -1:
		return false, true
	}
	return false, false
}

// Value returns the truth value of at with Eval's missing-atom semantics:
// unassigned atoms are false.
func (a *Assignment) Value(at Atom) bool {
	if at <= 0 || int(at) > len(a.vals) {
		return false
	}
	return a.vals[at-1] == 1
}

// EvalAssign evaluates f under the assignment with Eval's semantics
// (unassigned atoms are false) without touching any map.
func (f *Formula) EvalAssign(a *Assignment) bool {
	switch f.kind {
	case KTrue:
		return true
	case KFalse:
		return false
	case KVar:
		return a.Value(f.atom)
	case KNot:
		return !f.subs[0].EvalAssign(a)
	case KAnd:
		for _, s := range f.subs {
			if !s.EvalAssign(a) {
				return false
			}
		}
		return true
	case KOr:
		for _, s := range f.subs {
			if s.EvalAssign(a) {
				return true
			}
		}
		return false
	}
	panic("guard: bad formula kind")
}

// EvalAll evaluates every formula in fs under one shared assignment,
// appending the results to dst and returning it. It is the batched form of
// EvalAssign for callers that evaluate many guards against the same
// schedule; one assignment slice serves the whole batch.
func EvalAll(fs []*Formula, a *Assignment, dst []bool) []bool {
	for _, f := range fs {
		dst = append(dst, f.EvalAssign(a))
	}
	batchedEvals.Add(uint64(len(fs)))
	return dst
}

// Pool interns atoms and records their interpretation. All methods are safe
// for concurrent use: the bug-checking stage interns order atoms from
// parallel source-sink queries (§5.2's parallelization).
type Pool struct {
	mu    sync.Mutex
	names map[string]Atom
	info  []atomInfo // index atom-1
}

type atomInfo struct {
	name     string
	order    bool
	from, to int // statement labels for order atoms
}

// NewPool returns an empty atom pool.
func NewPool() *Pool {
	return &Pool{names: make(map[string]Atom)}
}

// Bool interns (or returns the existing) boolean atom with the given name.
// Names are the identity of boolean atoms: two statements sharing the same
// syntactic branch condition share the atom, which is what makes the θ vs ¬θ
// contradiction of the paper's Fig. 2 detectable.
func (p *Pool) Bool(name string) Atom {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.intern(atomInfo{name: name})
}

func (p *Pool) intern(ai atomInfo) Atom {
	if a, ok := p.names[ai.name]; ok {
		return a
	}
	p.info = append(p.info, ai)
	a := Atom(len(p.info))
	p.names[ai.name] = a
	return a
}

// Order interns the order atom O_from < O_to between two statement labels.
// Interning is symmetric-aware only in that (from,to) and (to,from) are
// distinct atoms related by the theory (¬(i<j) ⟺ j<i for i≠j).
func (p *Pool) Order(from, to int) Atom {
	p.mu.Lock()
	defer p.mu.Unlock()
	name := fmt.Sprintf("O%d<O%d", from, to)
	return p.intern(atomInfo{name: name, order: true, from: from, to: to})
}

// NumAtoms returns the number of interned atoms.
func (p *Pool) NumAtoms() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.info)
}

// Name returns the display name of atom a.
func (p *Pool) Name(a Atom) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a <= 0 || int(a) > len(p.info) {
		return fmt.Sprintf("atom#%d", a)
	}
	return p.info[a-1].name
}

// OrderAtom reports whether a is an order atom and, if so, its two
// statement labels.
func (p *Pool) OrderAtom(a Atom) (from, to int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a <= 0 || int(a) > len(p.info) {
		return 0, 0, false
	}
	ai := p.info[a-1]
	return ai.from, ai.to, ai.order
}

// String renders f using the pool's atom names.
func (p *Pool) String(f *Formula) string {
	var b strings.Builder
	p.render(&b, f, false)
	return b.String()
}

func (p *Pool) render(b *strings.Builder, f *Formula, paren bool) {
	switch f.kind {
	case KTrue:
		b.WriteString("true")
	case KFalse:
		b.WriteString("false")
	case KVar:
		b.WriteString(p.Name(f.atom))
	case KNot:
		b.WriteString("!")
		p.render(b, f.subs[0], true)
	case KAnd, KOr:
		op := " && "
		if f.kind == KOr {
			op = " || "
		}
		if paren {
			b.WriteString("(")
		}
		// Render literals in a stable order for readable, deterministic
		// reports.
		subs := f.subs
		if allLiterals(subs) {
			subs = sortedLiterals(p, subs)
		}
		for i, s := range subs {
			if i > 0 {
				b.WriteString(op)
			}
			p.render(b, s, true)
		}
		if paren {
			b.WriteString(")")
		}
	}
}

func allLiterals(fs []*Formula) bool {
	for _, f := range fs {
		if _, ok := litKey(f); !ok {
			return false
		}
	}
	return true
}

func sortedLiterals(p *Pool, fs []*Formula) []*Formula {
	out := append([]*Formula(nil), fs...)
	sort.SliceStable(out, func(i, j int) bool {
		ki, _ := litKey(out[i])
		kj, _ := litKey(out[j])
		ni, nj := p.Name(Atom(abs32(ki))), p.Name(Atom(abs32(kj)))
		if ni != nj {
			return ni < nj
		}
		return ki > kj // positive literal first
	})
	return out
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
