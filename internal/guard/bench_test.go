package guard

import (
	"sync"
	"testing"
)

// benchSink defeats dead-code elimination of benchmark loop bodies.
var benchSink *Formula

// internOp builds one moderately nested guard over a small atom universe —
// the shape lowering and checking intern constantly. The LCG walk makes
// successive calls produce overlapping but not identical structures, so the
// loop exercises both the hit and the miss path of the interner.
func internOp(x uint32) *Formula {
	var lits [8]*Formula
	for j := range lits {
		f := Var(Atom(x%16 + 1))
		if x&(1<<8) != 0 {
			f = Not(f)
		}
		lits[j] = f
		x = x*1664525 + 1013904223
	}
	return Or(
		And(lits[0], lits[1], lits[2], lits[3]),
		And(lits[4], lits[5], lits[6], lits[7]),
	)
}

// BenchmarkGuardIntern measures the steady-state cost of hash-consed guard
// construction: after the first pass every structure is interned, so the
// measured rounds run the integer-keyed hit path. allocs/op is the series
// to watch — the open-addressed table keeps it near zero.
func BenchmarkGuardIntern(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < 256; i++ { // warm the table: measure the hit path
		benchSink = internOp(uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = internOp(uint32(i % 256))
	}
}

// BenchmarkEvalAll measures the batched assignment-slice evaluator against
// a fixed guard batch — the replacement for building a map[Atom]bool per
// evaluation.
func BenchmarkEvalAll(b *testing.B) {
	b.ReportAllocs()
	fs := make([]*Formula, 64)
	for i := range fs {
		fs[i] = internOp(uint32(i))
	}
	asn := NewAssignment(16)
	for a := Atom(1); a <= 16; a++ {
		asn.Set(a, a%3 == 0)
	}
	dst := make([]bool, 0, len(fs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EvalAll(fs, asn, dst[:0])
	}
	if len(dst) != len(fs) {
		b.Fatal("EvalAll dropped results")
	}
}

// TestInternConcurrentIdentity hammers the sharded interner from parallel
// goroutines building the same formula sequence and asserts pointer
// identity across all of them — the property every cache key in the system
// (VFG guards, SMT query cache) depends on. The sequence stays far below
// the per-shard epoch-flush cap, so no flush can legitimize a mismatch.
func TestInternConcurrentIdentity(t *testing.T) {
	const goroutines = 8
	const n = 2048
	build := func(k int) *Formula {
		a := Var(Atom(k%31 + 1))
		c := Var(Atom(k%37 + 1))
		d := Var(Atom(k%41 + 1))
		return Or(And(a, Not(c)), And(c, d), Not(a))
	}
	results := make([][]*Formula, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs := make([]*Formula, n)
			for k := range fs {
				fs[k] = build(k)
			}
			results[g] = fs
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for k := 0; k < n; k++ {
			if results[g][k] != results[0][k] {
				t.Fatalf("goroutine %d interned a distinct formula at %d: %p vs %p",
					g, k, results[g][k], results[0][k])
			}
		}
	}
}
