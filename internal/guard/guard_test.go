package guard

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if !True().IsTrue() || True().Kind() != KTrue {
		t.Fatal("True() malformed")
	}
	if !False().IsFalse() || False().Kind() != KFalse {
		t.Fatal("False() malformed")
	}
	if True() != True() {
		t.Fatal("True() not canonical")
	}
}

func TestVarPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Var(0) did not panic")
		}
	}()
	Var(0)
}

func TestNotSimplification(t *testing.T) {
	a := Var(1)
	if Not(True()) != False() {
		t.Error("!true != false")
	}
	if Not(False()) != True() {
		t.Error("!false != true")
	}
	if Not(Not(a)) != a {
		t.Error("double negation not removed")
	}
}

func TestAndSimplification(t *testing.T) {
	a, b := Var(1), Var(2)
	if And() != True() {
		t.Error("empty And should be true")
	}
	if And(a) != a {
		t.Error("singleton And should be its operand")
	}
	if And(a, True()) != a {
		t.Error("unit not eliminated")
	}
	if And(a, False()) != False() {
		t.Error("zero not short-circuited")
	}
	if And(a, Not(a)) != False() {
		t.Error("complementary literals not detected")
	}
	if got := And(a, a, b, a); got.Kind() != KAnd || len(got.Subs()) != 2 {
		t.Errorf("duplicates not removed: %v subs", len(got.Subs()))
	}
	// Flattening.
	f := And(And(a, b), Var(3))
	if f.Kind() != KAnd || len(f.Subs()) != 3 {
		t.Errorf("nested And not flattened: got %d subs", len(f.Subs()))
	}
}

func TestOrSimplification(t *testing.T) {
	a, b := Var(1), Var(2)
	if Or() != False() {
		t.Error("empty Or should be false")
	}
	if Or(a, False()) != a {
		t.Error("unit not eliminated")
	}
	if Or(a, True()) != True() {
		t.Error("zero not short-circuited")
	}
	if Or(a, Not(a)) != True() {
		t.Error("tautology not detected")
	}
	f := Or(Or(a, b), Var(3))
	if f.Kind() != KOr || len(f.Subs()) != 3 {
		t.Errorf("nested Or not flattened: got %d subs", len(f.Subs()))
	}
}

func TestFig2Contradiction(t *testing.T) {
	// The motivating example: branch conditions θ1 at line 6 and ¬θ1 at
	// line 13 conjoin to an unsatisfiable alias guard.
	p := NewPool()
	theta := p.Bool("theta1")
	aliasGuard := And(Var(theta), Not(Var(theta)))
	if aliasGuard != False() {
		t.Fatalf("θ1 ∧ ¬θ1 should fold to false, got %s", p.String(aliasGuard))
	}
	sat, decided := SemiDecide(aliasGuard)
	if !decided || sat {
		t.Fatal("semi-decision must refute θ1 ∧ ¬θ1")
	}
}

func TestImplies(t *testing.T) {
	a, b := Var(1), Var(2)
	f := Implies(a, b)
	if !f.Eval(map[Atom]bool{1: false, 2: false}) {
		t.Error("false → false should hold")
	}
	if f.Eval(map[Atom]bool{1: true, 2: false}) {
		t.Error("true → false should fail")
	}
}

func TestEval(t *testing.T) {
	a, b, c := Var(1), Var(2), Var(3)
	f := Or(And(a, Not(b)), c)
	cases := []struct {
		asn  map[Atom]bool
		want bool
	}{
		{map[Atom]bool{1: true, 2: false, 3: false}, true},
		{map[Atom]bool{1: true, 2: true, 3: false}, false},
		{map[Atom]bool{1: false, 2: true, 3: true}, true},
		{map[Atom]bool{}, false},
	}
	for i, c := range cases {
		if got := f.Eval(c.asn); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestAtoms(t *testing.T) {
	f := And(Var(3), Or(Var(1), Not(Var(3))), Var(2))
	atoms := f.Atoms(nil)
	if len(atoms) != 3 {
		t.Fatalf("want 3 distinct atoms, got %v", atoms)
	}
	seen := map[Atom]bool{}
	for _, a := range atoms {
		seen[a] = true
	}
	for _, want := range []Atom{1, 2, 3} {
		if !seen[want] {
			t.Errorf("missing atom %d", want)
		}
	}
}

func TestSemiDecidePureConjunctions(t *testing.T) {
	a, b, c := Var(1), Var(2), Var(3)
	sat, dec := SemiDecide(And(a, b, Not(c)))
	if !dec || !sat {
		t.Error("consistent literal conjunction should be decided sat")
	}
	// A conjunction with a non-literal conjunct is not decided.
	_, dec = SemiDecide(And(a, Or(b, c)))
	if dec {
		t.Error("mixed conjunction should not be decided")
	}
	sat, dec = SemiDecide(True())
	if !dec || !sat {
		t.Error("true should be decided sat")
	}
	sat, dec = SemiDecide(False())
	if !dec || sat {
		t.Error("false should be decided unsat")
	}
}

func TestPoolInterning(t *testing.T) {
	p := NewPool()
	a1 := p.Bool("x>0")
	a2 := p.Bool("x>0")
	if a1 != a2 {
		t.Error("same name must intern to same atom")
	}
	if p.Bool("y>0") == a1 {
		t.Error("distinct names must differ")
	}
	o1 := p.Order(3, 7)
	o2 := p.Order(3, 7)
	o3 := p.Order(7, 3)
	if o1 != o2 {
		t.Error("order atoms must intern")
	}
	if o1 == o3 {
		t.Error("reversed order atoms must differ")
	}
	from, to, ok := p.OrderAtom(o1)
	if !ok || from != 3 || to != 7 {
		t.Errorf("OrderAtom: got (%d,%d,%v)", from, to, ok)
	}
	if _, _, ok := p.OrderAtom(a1); ok {
		t.Error("bool atom misreported as order atom")
	}
	if p.NumAtoms() != 4 {
		t.Errorf("NumAtoms = %d, want 4", p.NumAtoms())
	}
}

func TestPoolString(t *testing.T) {
	p := NewPool()
	x := p.Bool("theta")
	o := p.Order(13, 6)
	f := And(Var(x), Var(o))
	s := p.String(f)
	if s != "O13<O6 && theta" && s != "theta && O13<O6" {
		t.Errorf("unexpected rendering %q", s)
	}
	if got := p.String(Not(Or(Var(x), Var(o)))); got == "" {
		t.Error("empty rendering")
	}
}

func TestSizeAndAtomAccessors(t *testing.T) {
	f := And(Var(1), Or(Var(2), Var(3)))
	if f.Size() != 5 {
		t.Errorf("Size = %d, want 5", f.Size())
	}
	if Var(7).Atom() != 7 {
		t.Error("Atom accessor broken")
	}
	if f.Atom() != 0 {
		t.Error("Atom on non-var should be 0")
	}
}

// randomFormula builds a random formula over atoms 1..nAtoms.
func randomFormula(r *rand.Rand, depth, nAtoms int) *Formula {
	if depth == 0 || r.Intn(3) == 0 {
		v := Var(Atom(r.Intn(nAtoms) + 1))
		if r.Intn(2) == 0 {
			return Not(v)
		}
		return v
	}
	n := r.Intn(3) + 1
	subs := make([]*Formula, n)
	for i := range subs {
		subs[i] = randomFormula(r, depth-1, nAtoms)
	}
	if r.Intn(2) == 0 {
		return And(subs...)
	}
	return Or(subs...)
}

// Property: constructor simplifications preserve semantics.
func TestQuickSimplificationPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const nAtoms = 5
	f := func(seed int64, bits uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomFormula(rr, 4, nAtoms)
		// Rebuild through constructors in a different association order and
		// compare evaluation: And(g, True), Or(g, False), Not(Not(g)).
		h := Not(Not(And(Or(g, False()), True())))
		asn := map[Atom]bool{}
		for i := 1; i <= nAtoms; i++ {
			asn[Atom(i)] = bits&(1<<i) != 0
		}
		return g.Eval(asn) == h.Eval(asn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: SemiDecide never contradicts brute-force satisfiability.
func TestQuickSemiDecideSound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const nAtoms = 4
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomFormula(rr, 3, nAtoms)
		sat, decided := SemiDecide(g)
		if !decided {
			return true
		}
		// Brute force over 2^nAtoms assignments.
		bruteSat := false
		for m := 0; m < 1<<nAtoms; m++ {
			asn := map[Atom]bool{}
			for i := 1; i <= nAtoms; i++ {
				asn[Atom(i)] = m&(1<<(i-1)) != 0
			}
			if g.Eval(asn) {
				bruteSat = true
				break
			}
		}
		return sat == bruteSat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: flattened n-ary constructors evaluate like the naive fold.
func TestQuickNaryMatchesFold(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(seed int64, bits uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		const nAtoms = 5
		var parts []*Formula
		for i := 0; i < rr.Intn(5)+1; i++ {
			parts = append(parts, randomFormula(rr, 2, nAtoms))
		}
		asn := map[Atom]bool{}
		for i := 1; i <= nAtoms; i++ {
			asn[Atom(i)] = bits&(1<<i) != 0
		}
		andWant, orWant := true, false
		for _, p := range parts {
			v := p.Eval(asn)
			andWant = andWant && v
			orWant = orWant || v
		}
		return And(parts...).Eval(asn) == andWant && Or(parts...).Eval(asn) == orWant
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Fatal(err)
	}
}
