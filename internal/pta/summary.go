package pta

import (
	"context"

	"canary/internal/cache"
	"canary/internal/failpoint"
	"canary/internal/lang"
)

// Summary is the procedural transfer function Trans(F) of the paper's
// Alg. 1 (lines 21–22), restricted to the return-value interface: which
// formal parameters may flow to the returned value, and whether a fresh
// allocation may be returned. The bounded lowering applies these summaries
// at call sites beyond the inlining depth (and at recursion cut points)
// instead of havocking the result, preserving value flows through deep
// call chains.
type Summary struct {
	// RetParams are the indices of parameters that may flow to the return
	// value (directly, through local copies, or through function-local
	// memory).
	RetParams []int
	// RetAlloc reports whether a fresh allocation may be returned.
	RetAlloc bool
	// RetTaint reports whether a taint() source may be returned.
	RetTaint bool
}

// tag bit layout: bits 0..59 are parameter indices, bit 60 is "fresh
// allocation", bit 61 is "taint source".
const (
	allocBit = 60
	taintBit = 61
	maxParam = 59
)

// Summaries computes Trans(F) for every function by a flow-insensitive
// fixpoint over the program: variables carry tag sets (parameters, fresh
// allocations, taint), one coarse memory cell per function propagates tags
// across stores and loads, and call sites apply callee summaries. The
// global iteration handles mutual recursion.
func Summaries(prog *lang.Program) map[string]*Summary {
	sums, _, _ := SummariesKeyed(prog, nil, nil)
	return sums
}

// SummariesKeyed is the incremental variant of Summaries: functions whose
// content key (digest.SummaryKeys — the function's structural digest folded
// with its transitive callees') hits the store load their converged summary
// and are pinned; the fixpoint then runs only over the misses, with the
// loaded values held fixed. hits and misses report the split — misses is
// the FuncsReanalyzed of the analysis stats.
//
// Loading is exact, not approximate: a stored summary is the least fixpoint
// over the function's reachable call subgraph, which the content key
// identifies up to alpha-renaming, so pinning it and iterating the rest
// reaches the same least fixpoint a cold run computes. Passing nil keys or
// a nil store degenerates to the cold computation.
func SummariesKeyed(prog *lang.Program, keys map[string]cache.Key, store *Store) (sums map[string]*Summary, hits, misses int) {
	sums, hits, misses, _ = SummariesKeyedContext(context.Background(), prog, keys, store)
	return sums, hits, misses
}

// SummariesKeyedContext is SummariesKeyed with cooperative cancellation:
// the fixpoint observes ctx between rounds and returns ctx.Err() promptly
// when the context is done, and the pta-fixpoint failpoint can abort a
// round with a typed injected error. On error the partial summaries are
// not written to the store.
func SummariesKeyedContext(ctx context.Context, prog *lang.Program, keys map[string]cache.Key, store *Store) (sums map[string]*Summary, hits, misses int, err error) {
	sums = make(map[string]*Summary, len(prog.Funcs))
	retTags := make(map[string]uint64, len(prog.Funcs))
	pending := make(map[string]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		if store != nil && keys != nil {
			if k, ok := keys[f.Name]; ok {
				if s, ok := store.get(k); ok {
					sums[f.Name] = s
					hits++
					continue
				}
			}
		}
		sums[f.Name] = &Summary{}
		pending[f.Name] = true
		misses++
	}

	analyzeOnce := func(f *lang.FuncDecl) uint64 {
		vars := make(map[string]uint64)
		for i, p := range f.Params {
			if i <= maxParam {
				vars[p] = 1 << i
			}
		}
		var mem uint64
		var ret uint64
		// Iterate the body a few times: flow-insensitive transfer through
		// copies, loads, stores, and calls.
		var walk func(b *lang.Block)
		evalCall := func(callee string, args []string) uint64 {
			s := sums[callee]
			if s == nil {
				return 0
			}
			var t uint64
			for _, pi := range s.RetParams {
				if pi < len(args) {
					t |= vars[args[pi]]
				}
			}
			if s.RetAlloc {
				t |= 1 << allocBit
			}
			if s.RetTaint {
				t |= 1 << taintBit
			}
			return t
		}
		walk = func(b *lang.Block) {
			for _, st := range b.Stmts {
				switch st := st.(type) {
				case *lang.AssignStmt:
					switch rhs := st.RHS.(type) {
					case *lang.VarExpr:
						vars[st.LHS] |= vars[rhs.Name]
					case *lang.LoadExpr:
						vars[st.LHS] |= mem
					case *lang.MallocExpr:
						vars[st.LHS] |= 1 << allocBit
					case *lang.TaintExpr:
						vars[st.LHS] |= 1 << taintBit
					case *lang.BinExpr:
						if v, ok := rhs.L.(*lang.VarExpr); ok {
							vars[st.LHS] |= vars[v.Name]
						}
						if v, ok := rhs.R.(*lang.VarExpr); ok {
							vars[st.LHS] |= vars[v.Name]
						}
					case *lang.CallExpr:
						vars[st.LHS] |= evalCall(rhs.Callee, rhs.Args)
					}
				case *lang.StoreStmt:
					mem |= vars[st.Val]
				case *lang.ReturnStmt:
					if st.HasVal {
						ret |= vars[st.Value]
					}
				case *lang.IfStmt:
					walk(st.Then)
					if st.Else != nil {
						walk(st.Else)
					}
				case *lang.WhileStmt:
					walk(st.Body)
				}
			}
		}
		// Two local passes make loads see earlier (and loop-carried)
		// stores under the single-cell memory abstraction.
		walk(f.Body)
		walk(f.Body)
		return ret
	}

	// Kleene iteration to convergence over the pending functions only.
	// Summaries live in a finite monotone lattice (≤62 tag bits per
	// function), so the chain stabilizes; the cap is a defensive bound far
	// above the lattice height, never the expected exit.
	maxRounds := 64*len(prog.Funcs) + 2
	for round := 0; round < maxRounds && len(pending) > 0; round++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, hits, misses, cerr
		}
		if ferr := failpoint.Inject(failpoint.SitePTAFixpoint); ferr != nil {
			return nil, hits, misses, ferr
		}
		changed := false
		for _, f := range prog.Funcs {
			if !pending[f.Name] {
				continue
			}
			ret := analyzeOnce(f)
			if ret != retTags[f.Name] {
				retTags[f.Name] = ret
				changed = true
				s := sums[f.Name]
				s.RetParams = s.RetParams[:0]
				for i := 0; i <= maxParam && i < len(f.Params); i++ {
					if ret&(1<<i) != 0 {
						s.RetParams = append(s.RetParams, i)
					}
				}
				s.RetAlloc = ret&(1<<allocBit) != 0
				s.RetTaint = ret&(1<<taintBit) != 0
			}
		}
		if !changed {
			break
		}
	}
	if store != nil && keys != nil {
		for _, f := range prog.Funcs {
			if !pending[f.Name] {
				continue
			}
			if k, ok := keys[f.Name]; ok {
				store.put(k, sums[f.Name])
			}
		}
	}
	return sums, hits, misses, nil
}
