package pta

import (
	"reflect"
	"testing"

	"canary/internal/digest"
	"canary/internal/lang"
)

func summaries(t *testing.T, src string) map[string]*Summary {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Summaries(prog)
}

func TestSummaryIdentity(t *testing.T) {
	s := summaries(t, `func id(x) { return x; }`)["id"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) || s.RetAlloc {
		t.Fatalf("id summary = %+v", s)
	}
}

func TestSummarySecondParam(t *testing.T) {
	s := summaries(t, `func pick(a, b) { return b; }`)["pick"]
	if !reflect.DeepEqual(s.RetParams, []int{1}) {
		t.Fatalf("pick summary = %+v", s)
	}
}

func TestSummaryAllocator(t *testing.T) {
	s := summaries(t, `func mk() { p = malloc(); return p; }`)["mk"]
	if !s.RetAlloc || len(s.RetParams) != 0 {
		t.Fatalf("mk summary = %+v", s)
	}
}

func TestSummaryThroughCopiesAndBranches(t *testing.T) {
	s := summaries(t, `
func f(a, b) {
  if (c) {
    t = a;
    return t;
  }
  u = malloc();
  return u;
}
`)["f"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) || !s.RetAlloc {
		t.Fatalf("f summary = %+v", s)
	}
}

func TestSummaryThroughLocalMemory(t *testing.T) {
	s := summaries(t, `
func stash(v) {
  box = malloc();
  *box = v;
  out = *box;
  return out;
}
`)["stash"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) {
		t.Fatalf("stash summary = %+v (param must survive the store/load)", s)
	}
}

func TestSummaryTransitiveAcrossCalls(t *testing.T) {
	sums := summaries(t, `
func inner(x) { return x; }
func outer(y) { r = inner(y); return r; }
`)
	s := sums["outer"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) {
		t.Fatalf("outer summary = %+v (must see through inner)", s)
	}
}

func TestSummaryRecursive(t *testing.T) {
	s := summaries(t, `
func rec(n) {
  if (base) {
    return n;
  }
  m = rec(n);
  return m;
}
`)["rec"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) {
		t.Fatalf("rec summary = %+v", s)
	}
}

func TestSummaryTaint(t *testing.T) {
	s := summaries(t, `func secret() { s = taint(); return s; }`)["secret"]
	if !s.RetTaint {
		t.Fatalf("secret summary = %+v", s)
	}
}

func TestSummaryVoid(t *testing.T) {
	s := summaries(t, `func nothing(a) { b = a; }`)["nothing"]
	if len(s.RetParams) != 0 || s.RetAlloc || s.RetTaint {
		t.Fatalf("void summary must be empty: %+v", s)
	}
}

const keyedSubject = `
func id(x) { return x; }
func mk() { p = malloc(); return p; }
func secret() { s = taint(); return s; }
func outer(y) {
  r = id(y);
  m = mk();
  return r;
}
func main() {
  a = malloc();
  b = outer(a);
  c = secret();
  print(*b);
  print(*c);
}
`

// TestSummariesKeyedMatchesCold pins the incremental contract at the unit
// level: a keyed run against an empty store (all misses), and a second run
// against the now-populated store (all hits), must both equal the cold
// fixpoint.
func TestSummariesKeyedMatchesCold(t *testing.T) {
	prog, err := lang.Parse(keyedSubject)
	if err != nil {
		t.Fatal(err)
	}
	cold := Summaries(prog)
	keys := digest.SummaryKeys(prog)
	store := NewStore(0)

	warm, hits, misses := SummariesKeyed(prog, keys, store)
	if hits != 0 || misses != len(prog.Funcs) {
		t.Fatalf("first keyed run: hits=%d misses=%d, want 0/%d", hits, misses, len(prog.Funcs))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("first keyed run differs from cold:\n%v\nvs\n%v", warm, cold)
	}
	if store.Len() != len(prog.Funcs) {
		t.Fatalf("store holds %d summaries, want %d", store.Len(), len(prog.Funcs))
	}

	warm2, hits2, misses2 := SummariesKeyed(prog, keys, store)
	if hits2 != len(prog.Funcs) || misses2 != 0 {
		t.Fatalf("second keyed run: hits=%d misses=%d, want %d/0", hits2, misses2, len(prog.Funcs))
	}
	if !reflect.DeepEqual(cold, warm2) {
		t.Fatalf("store-served run differs from cold:\n%v\nvs\n%v", warm2, cold)
	}
}

// TestSummaryRoundtrip exercises the store's wire encoding on every summary
// of the keyed subject plus hand-built edge cases, and rejects corrupt input.
func TestSummaryRoundtrip(t *testing.T) {
	cases := []*Summary{
		{},
		{RetAlloc: true, RetTaint: true},
		{RetParams: []int{0, 7, 59}, RetTaint: true},
	}
	for _, s := range summaries(t, keyedSubject) {
		cases = append(cases, s)
	}
	for i, s := range cases {
		got, ok := decodeSummary(encodeSummary(s))
		if !ok {
			t.Fatalf("case %d: decode failed", i)
		}
		if got.RetAlloc != s.RetAlloc || got.RetTaint != s.RetTaint ||
			!reflect.DeepEqual(append([]int{}, got.RetParams...), append([]int{}, s.RetParams...)) {
			t.Errorf("case %d: roundtrip %+v -> %+v", i, s, got)
		}
	}
	for _, b := range [][]byte{nil, {0}, {0, 200}, {3, 1}} {
		if _, ok := decodeSummary(b); ok {
			t.Errorf("decodeSummary(%v) accepted corrupt input", b)
		}
	}
}
