package pta

import (
	"reflect"
	"testing"

	"canary/internal/lang"
)

func summaries(t *testing.T, src string) map[string]*Summary {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Summaries(prog)
}

func TestSummaryIdentity(t *testing.T) {
	s := summaries(t, `func id(x) { return x; }`)["id"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) || s.RetAlloc {
		t.Fatalf("id summary = %+v", s)
	}
}

func TestSummarySecondParam(t *testing.T) {
	s := summaries(t, `func pick(a, b) { return b; }`)["pick"]
	if !reflect.DeepEqual(s.RetParams, []int{1}) {
		t.Fatalf("pick summary = %+v", s)
	}
}

func TestSummaryAllocator(t *testing.T) {
	s := summaries(t, `func mk() { p = malloc(); return p; }`)["mk"]
	if !s.RetAlloc || len(s.RetParams) != 0 {
		t.Fatalf("mk summary = %+v", s)
	}
}

func TestSummaryThroughCopiesAndBranches(t *testing.T) {
	s := summaries(t, `
func f(a, b) {
  if (c) {
    t = a;
    return t;
  }
  u = malloc();
  return u;
}
`)["f"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) || !s.RetAlloc {
		t.Fatalf("f summary = %+v", s)
	}
}

func TestSummaryThroughLocalMemory(t *testing.T) {
	s := summaries(t, `
func stash(v) {
  box = malloc();
  *box = v;
  out = *box;
  return out;
}
`)["stash"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) {
		t.Fatalf("stash summary = %+v (param must survive the store/load)", s)
	}
}

func TestSummaryTransitiveAcrossCalls(t *testing.T) {
	sums := summaries(t, `
func inner(x) { return x; }
func outer(y) { r = inner(y); return r; }
`)
	s := sums["outer"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) {
		t.Fatalf("outer summary = %+v (must see through inner)", s)
	}
}

func TestSummaryRecursive(t *testing.T) {
	s := summaries(t, `
func rec(n) {
  if (base) {
    return n;
  }
  m = rec(n);
  return m;
}
`)["rec"]
	if !reflect.DeepEqual(s.RetParams, []int{0}) {
		t.Fatalf("rec summary = %+v", s)
	}
}

func TestSummaryTaint(t *testing.T) {
	s := summaries(t, `func secret() { s = taint(); return s; }`)["secret"]
	if !s.RetTaint {
		t.Fatalf("secret summary = %+v", s)
	}
}

func TestSummaryVoid(t *testing.T) {
	s := summaries(t, `func nothing(a) { b = a; }`)["nothing"]
	if len(s.RetParams) != 0 || s.RetAlloc || s.RetTaint {
		t.Fatalf("void summary must be empty: %+v", s)
	}
}
