package pta

import (
	"context"
	"errors"
	"testing"

	"canary/internal/lang"
)

// TestSummariesKeyedContextCanceled pins the summary fixpoint's
// cancellation contract: an already-canceled context aborts before the
// first Kleene round with the context's error and no partial summaries.
func TestSummariesKeyedContextCanceled(t *testing.T) {
	prog, err := lang.Parse(`
func helper(x) { return x; }
func main() { p = malloc(); q = helper(p); }
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sums, _, _, serr := SummariesKeyedContext(ctx, prog, nil, nil)
	if !errors.Is(serr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", serr)
	}
	if sums != nil {
		t.Fatalf("canceled fixpoint returned partial summaries: %v", sums)
	}
}

// TestSummariesKeyedContextBackground asserts the context-free wrapper
// still converges to the same summaries.
func TestSummariesKeyedContextBackground(t *testing.T) {
	prog, err := lang.Parse(`func mk() { p = malloc(); return p; }`)
	if err != nil {
		t.Fatal(err)
	}
	sums, _, _, serr := SummariesKeyedContext(context.Background(), prog, nil, nil)
	if serr != nil {
		t.Fatal(serr)
	}
	if s := sums["mk"]; s == nil || !s.RetAlloc {
		t.Fatalf("mk summary = %+v", sums["mk"])
	}
}
