package pta

import (
	"reflect"
	"testing"

	"canary/internal/lang"
)

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDirectFunctionValue(t *testing.T) {
	prog := parse(t, `
func worker() { }
func main() {
  fp = worker;
  fork(t, fp);
}
`)
	s := AnalyzeFuncPointers(prog)
	if got := s.Targets("main", "fp"); !reflect.DeepEqual(got, []string{"worker"}) {
		t.Fatalf("fp targets = %v", got)
	}
	if got := s.Targets("main", "worker"); !reflect.DeepEqual(got, []string{"worker"}) {
		t.Fatalf("bare function name should resolve to itself: %v", got)
	}
}

func TestCopyChain(t *testing.T) {
	prog := parse(t, `
func a() { }
func b() { }
func main() {
  f1 = a;
  f2 = f1;
  f3 = f2;
  if (c) { f3 = b; }
}
`)
	s := AnalyzeFuncPointers(prog)
	got := s.Targets("main", "f3")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("f3 targets = %v (unification merges both)", got)
	}
}

func TestThroughMemory(t *testing.T) {
	prog := parse(t, `
func w() { }
func main() {
  p = malloc();
  f = w;
  *p = f;
  g = *p;
  fork(t, g);
}
`)
	s := AnalyzeFuncPointers(prog)
	if got := s.Targets("main", "g"); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("g targets = %v", got)
	}
}

func TestAcrossCallParams(t *testing.T) {
	prog := parse(t, `
func w() { }
func spawn(fn) {
  fork(t, fn);
}
func main() {
  spawn(w);
}
`)
	s := AnalyzeFuncPointers(prog)
	if got := s.Targets("spawn", "fn"); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("fn targets = %v", got)
	}
}

func TestAcrossReturn(t *testing.T) {
	prog := parse(t, `
func w() { }
func get() { f = w; return f; }
func main() {
  h = get();
  fork(t, h);
}
`)
	s := AnalyzeFuncPointers(prog)
	if got := s.Targets("main", "h"); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("h targets = %v", got)
	}
}

func TestGlobalFuncPointer(t *testing.T) {
	prog := parse(t, `
global slot;
func w() { }
func setter() {
  p = &slot;
  f = w;
  *p = f;
}
func main() {
  setter();
  q = &slot;
  h = *q;
  fork(t, h);
}
`)
	s := AnalyzeFuncPointers(prog)
	if got := s.Targets("main", "h"); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("h targets = %v", got)
	}
}

func TestUnknownVariableHasNoTargets(t *testing.T) {
	prog := parse(t, `func main() { x = y; }`)
	s := AnalyzeFuncPointers(prog)
	if got := s.Targets("main", "nothere"); len(got) != 0 {
		t.Fatalf("unknown var should have no targets: %v", got)
	}
}
