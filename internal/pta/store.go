package pta

import (
	"encoding/binary"

	"canary/internal/cache"
)

// Store is a bounded, concurrency-safe summary store: content keys
// (digest.SummaryKeys) map to serialized Summary values. Because the key is
// a content address over the function's structure and its transitive
// callees' structures, entries never need invalidation — an edit anywhere
// in a function's call cone simply produces a different key — and the
// store can be shared freely across programs, jobs, and goroutines: two
// submissions that agree on a key agree on the summary.
//
// Summaries are option-independent (Trans(F) is computed on the AST before
// any bounding options apply), so one store serves every Options
// configuration.
type Store struct {
	s cache.ByteStore
}

// NewStore returns an empty in-memory summary store bounded to
// maxEntries (<= 0 selects cache.DefaultMaxEntries).
func NewStore(maxEntries int) *Store {
	return &Store{s: cache.New(maxEntries)}
}

// NewStoreOn returns a summary store over an arbitrary content-addressed
// backend (e.g. a disk-backed tiered store), so warm summaries can
// outlive the process. The serialized form is identical either way —
// persistence is a backend swap, not a re-serialization.
func NewStoreOn(b cache.ByteStore) *Store {
	return &Store{s: b}
}

// Stats returns the cumulative hit and miss counts of summary lookups.
func (st *Store) Stats() (hits, misses uint64) { return st.s.Stats() }

// Len returns the number of stored summaries.
func (st *Store) Len() int { return st.s.Len() }

// Delete evicts the summary stored under k, reporting whether it was
// present. Session.Quarantine uses it to drop summaries a recovered
// panic may have poisoned.
func (st *Store) Delete(k cache.Key) bool { return st.s.Delete(k) }

func (st *Store) get(k cache.Key) (*Summary, bool) {
	b, ok := st.s.Get(k)
	if !ok {
		return nil, false
	}
	return decodeSummary(b)
}

func (st *Store) put(k cache.Key, s *Summary) {
	st.s.Put(k, encodeSummary(s))
}

// encodeSummary serializes s: flag byte (bit0 RetAlloc, bit1 RetTaint),
// then a uvarint count and uvarint parameter indices.
func encodeSummary(s *Summary) []byte {
	buf := make([]byte, 0, 2+len(s.RetParams)*2)
	var flags byte
	if s.RetAlloc {
		flags |= 1
	}
	if s.RetTaint {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(s.RetParams)))
	for _, p := range s.RetParams {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	return buf
}

func decodeSummary(b []byte) (*Summary, bool) {
	if len(b) < 2 {
		return nil, false
	}
	s := &Summary{RetAlloc: b[0]&1 != 0, RetTaint: b[0]&2 != 0}
	rest := b[1:]
	n, used := binary.Uvarint(rest)
	if used <= 0 || n > uint64(maxParam)+1 {
		return nil, false
	}
	rest = rest[used:]
	for i := uint64(0); i < n; i++ {
		p, used := binary.Uvarint(rest)
		if used <= 0 || p > maxParam {
			return nil, false
		}
		rest = rest[used:]
		s.RetParams = append(s.RetParams, int(p))
	}
	return s, true
}
