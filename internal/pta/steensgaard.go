// Package pta provides the AST-level auxiliary analyses Canary leans on
// before lowering:
//
//   - Steensgaard's unification-based, flow-insensitive points-to analysis
//     (almost linear time), which the paper uses to resolve function
//     pointers when constructing the thread call graph (§6);
//   - the procedural transfer functions Trans(F) of Alg. 1 (summary.go),
//     applied at call sites beyond the inlining bound.
//
// The Andersen-style inclusion solver used by the baselines lives in
// internal/andersen (it works over the lowered IR).
package pta

import (
	"sort"

	"canary/internal/bitset"
	"canary/internal/lang"
)

// varKey names a points-to node without building a key string: the scope
// ("g" for globals, "fn" for function-as-value nodes, otherwise the
// enclosing function) plus the variable name.
type varKey struct {
	fn, v string
}

// Steensgaard is the result of the unification analysis over an AST. It
// answers which functions a variable may refer to, which is all the thread
// call-graph construction needs.
type Steensgaard struct {
	uf     *unionFind
	nodes  map[varKey]int
	funcs  []*bitset.Set // per representative: function-ID set
	fnames []string      // dense function ID → name, in sorted-name order
}

// node kinds are implicit: every variable "fn.var" or global "g.name" has a
// node, and each node has a deref node created lazily.
type unionFind struct {
	parent []int
	rank   []int
	deref  []int // node of *x; 0 means none yet (node ids start at 1)
}

func newUnionFind() *unionFind {
	return &unionFind{parent: []int{0}, rank: []int{0}, deref: []int{0}}
}

func (u *unionFind) fresh() int {
	id := len(u.parent)
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	u.deref = append(u.deref, 0)
	return id
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// AnalyzeFuncPointers runs Steensgaard's analysis over prog, tracking only
// function values (the thread call graph does not need full objects). It
// unifies across assignments, loads/stores, calls, and fork argument
// passing, iterating indirect-call target resolution to a fixed point.
func AnalyzeFuncPointers(prog *lang.Program) *Steensgaard {
	s := &Steensgaard{
		uf:    newUnionFind(),
		nodes: make(map[varKey]int),
	}
	declared := make(map[string]*lang.FuncDecl, len(prog.Funcs))
	for _, f := range prog.Funcs {
		declared[f.Name] = f
	}
	// Dense function IDs are assigned in sorted-name order, so iterating a
	// function bit set in ascending-ID order visits targets in exactly the
	// lexicographic order the map-based implementation produced with
	// sort.Strings — the unification sequence (and hence every observable
	// result) is unchanged.
	s.fnames = make([]string, 0, len(prog.Funcs))
	for _, f := range prog.Funcs {
		s.fnames = append(s.fnames, f.Name)
	}
	sort.Strings(s.fnames)
	fid := make(map[string]int, len(s.fnames))
	funcsByID := make([]*lang.FuncDecl, len(s.fnames))
	for i, n := range s.fnames {
		fid[n] = i
		funcsByID[i] = declared[n]
	}

	// funcSets maps representative → set of function IDs; re-keyed on union.
	funcSets := make(map[int]*bitset.Set)

	node := func(fn, v string) int {
		key := varKey{fn, v}
		if declared[v] != nil {
			// A bare function name used as a value.
			key = varKey{"fn", v}
		}
		if n, ok := s.nodes[key]; ok {
			return n
		}
		n := s.uf.fresh()
		s.nodes[key] = n
		if declared[v] != nil {
			set := bitset.New(len(s.fnames))
			set.Add(fid[v])
			funcSets[n] = set
		}
		return n
	}

	unions := 0
	var union func(a, b int) int
	union = func(a, b int) int {
		ra, rb := s.uf.find(a), s.uf.find(b)
		if ra == rb {
			return ra
		}
		unions++
		if s.uf.rank[ra] < s.uf.rank[rb] {
			ra, rb = rb, ra
		}
		s.uf.parent[rb] = ra
		if s.uf.rank[ra] == s.uf.rank[rb] {
			s.uf.rank[ra]++
		}
		// Merge function sets.
		if fs := funcSets[rb]; fs != nil {
			if dst := funcSets[ra]; dst != nil {
				dst.UnionWith(fs)
			} else {
				funcSets[ra] = fs
			}
			delete(funcSets, rb)
		}
		// Unify deref nodes (Steensgaard's conditional join).
		da, db := s.uf.deref[ra], s.uf.deref[rb]
		switch {
		case da == 0:
			s.uf.deref[ra] = db
		case db != 0:
			union(da, db)
		}
		return s.uf.find(ra)
	}

	derefOf := func(n int) int {
		r := s.uf.find(n)
		if s.uf.deref[r] == 0 {
			s.uf.deref[r] = s.uf.fresh()
		}
		return s.uf.deref[r]
	}

	// Return-variable names of a declaration, in body walk order, computed
	// once per function rather than per resolved call.
	returnVars := make(map[*lang.FuncDecl][]string)
	returnsOf := func(decl *lang.FuncDecl) []string {
		if vs, ok := returnVars[decl]; ok {
			return vs
		}
		var vs []string
		var walk func(b *lang.Block)
		walk = func(b *lang.Block) {
			for _, st := range b.Stmts {
				switch r := st.(type) {
				case *lang.ReturnStmt:
					if r.HasVal {
						vs = append(vs, r.Value)
					}
				case *lang.IfStmt:
					walk(r.Then)
					if r.Else != nil {
						walk(r.Else)
					}
				case *lang.WhileStmt:
					walk(r.Body)
				}
			}
		}
		walk(decl.Body)
		returnVars[decl] = vs
		return vs
	}

	// One structural pass collecting constraints; indirect calls re-run
	// until no new unifications occur.
	var targetBuf []int // scratch: snapshot of one call's resolved targets
	changed := true
	for rounds := 0; changed && rounds < 20; rounds++ {
		changed = false
		sizeBefore := len(s.uf.parent)
		unionsBefore := unions
		var walkBlock func(fn string, b *lang.Block)
		bindTarget := func(fn string, decl *lang.FuncDecl, args []string, resultVar string) {
			for i, a := range args {
				if i < len(decl.Params) {
					union(node(fn, a), node(decl.Name, decl.Params[i]))
				}
			}
			if resultVar != "" {
				// Unify result with every returned variable.
				for _, rv := range returnsOf(decl) {
					union(node(fn, resultVar), node(decl.Name, rv))
				}
			}
		}
		handleCall := func(fn, callee string, args []string, resultVar string) {
			if decl := declared[callee]; decl != nil {
				bindTarget(fn, decl, args, resultVar)
				return
			}
			fs := funcSets[s.uf.find(node(fn, callee))]
			if fs == nil {
				return
			}
			// Snapshot the target set before binding: the unions below can
			// merge sets mid-iteration, and the string implementation also
			// resolved before binding.
			targetBuf = targetBuf[:0]
			fs.ForEach(func(id int) { targetBuf = append(targetBuf, id) })
			for _, id := range targetBuf {
				if decl := funcsByID[id]; decl != nil {
					bindTarget(fn, decl, args, resultVar)
				}
			}
		}
		walkBlock = func(fn string, b *lang.Block) {
			for _, st := range b.Stmts {
				switch st := st.(type) {
				case *lang.AssignStmt:
					switch rhs := st.RHS.(type) {
					case *lang.VarExpr:
						union(node(fn, st.LHS), node(fn, rhs.Name))
					case *lang.LoadExpr:
						union(node(fn, st.LHS), derefOf(node(fn, rhs.Ptr)))
					case *lang.AddrExpr:
						union(derefOf(node(fn, st.LHS)), node("g", rhs.Name))
					case *lang.CallExpr:
						handleCall(fn, rhs.Callee, rhs.Args, st.LHS)
					}
				case *lang.StoreStmt:
					union(derefOf(node(fn, st.Ptr)), node(fn, st.Val))
				case *lang.CallStmt:
					handleCall(fn, st.Callee, st.Args, "")
				case *lang.ForkStmt:
					handleCall(fn, st.Callee, st.Args, "")
				case *lang.IfStmt:
					walkBlock(fn, st.Then)
					if st.Else != nil {
						walkBlock(fn, st.Else)
					}
				case *lang.WhileStmt:
					walkBlock(fn, st.Body)
				}
			}
		}
		for _, f := range prog.Funcs {
			walkBlock(f.Name, f.Body)
		}
		if len(s.uf.parent) != sizeBefore || unions != unionsBefore {
			changed = true
		}
	}
	s.funcs = make([]*bitset.Set, len(s.uf.parent))
	for rep, fs := range funcSets {
		s.funcs[s.uf.find(rep)] = fs
	}
	return s
}

// Targets returns the functions variable v (in function fn) may refer to,
// sorted for determinism. A declared function name resolves to itself.
func (s *Steensgaard) Targets(fn, v string) []string {
	n, ok := s.nodes[varKey{fn, v}]
	if !ok {
		if n2, ok2 := s.nodes[varKey{"fn", v}]; ok2 {
			n = n2
		} else {
			return nil
		}
	}
	fs := s.funcs[s.uf.find(n)]
	out := make([]string, 0, fs.Len())
	fs.ForEach(func(id int) { out = append(out, s.fnames[id]) })
	return out
}

// FuncSetWords returns the total backing-array size, in 64-bit words, of
// the distinct function sets held by the analysis result.
func (s *Steensgaard) FuncSetWords() int {
	seen := make(map[*bitset.Set]bool)
	words := 0
	for _, fs := range s.funcs {
		if fs != nil && !seen[fs] {
			seen[fs] = true
			words += fs.Words()
		}
	}
	return words
}
