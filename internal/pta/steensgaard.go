// Package pta provides the AST-level auxiliary analyses Canary leans on
// before lowering:
//
//   - Steensgaard's unification-based, flow-insensitive points-to analysis
//     (almost linear time), which the paper uses to resolve function
//     pointers when constructing the thread call graph (§6);
//   - the procedural transfer functions Trans(F) of Alg. 1 (summary.go),
//     applied at call sites beyond the inlining bound.
//
// The Andersen-style inclusion solver used by the baselines lives in
// internal/andersen (it works over the lowered IR).
package pta

import (
	"sort"

	"canary/internal/lang"
)

// Steensgaard is the result of the unification analysis over an AST. It
// answers which functions a variable may refer to, which is all the thread
// call-graph construction needs.
type Steensgaard struct {
	uf    *unionFind
	nodes map[string]int    // qualified name → node
	funcs []map[string]bool // per representative: function names
}

// node kinds are implicit: every variable "fn.var" or global "g.name" has a
// node, and each node has a deref node created lazily.
type unionFind struct {
	parent []int
	rank   []int
	deref  []int // node of *x; 0 means none yet (node ids start at 1)
}

func newUnionFind() *unionFind {
	return &unionFind{parent: []int{0}, rank: []int{0}, deref: []int{0}}
}

func (u *unionFind) fresh() int {
	id := len(u.parent)
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	u.deref = append(u.deref, 0)
	return id
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// AnalyzeFuncPointers runs Steensgaard's analysis over prog, tracking only
// function values (the thread call graph does not need full objects). It
// unifies across assignments, loads/stores, calls, and fork argument
// passing, iterating indirect-call target resolution to a fixed point.
func AnalyzeFuncPointers(prog *lang.Program) *Steensgaard {
	s := &Steensgaard{
		uf:    newUnionFind(),
		nodes: make(map[string]int),
	}
	declared := make(map[string]*lang.FuncDecl)
	for _, f := range prog.Funcs {
		declared[f.Name] = f
	}
	// funcSets maps representative → set of function names; kept in a map
	// re-keyed on union.
	funcSets := make(map[int]map[string]bool)

	node := func(fn, v string) int {
		key := fn + "." + v
		if declared[v] != nil {
			// A bare function name used as a value.
			key = "fn." + v
		}
		if n, ok := s.nodes[key]; ok {
			return n
		}
		n := s.uf.fresh()
		s.nodes[key] = n
		if declared[v] != nil {
			funcSets[n] = map[string]bool{v: true}
		}
		return n
	}

	unions := 0
	var union func(a, b int) int
	union = func(a, b int) int {
		ra, rb := s.uf.find(a), s.uf.find(b)
		if ra == rb {
			return ra
		}
		unions++
		if s.uf.rank[ra] < s.uf.rank[rb] {
			ra, rb = rb, ra
		}
		s.uf.parent[rb] = ra
		if s.uf.rank[ra] == s.uf.rank[rb] {
			s.uf.rank[ra]++
		}
		// Merge function sets.
		if fs := funcSets[rb]; fs != nil {
			dst := funcSets[ra]
			if dst == nil {
				dst = make(map[string]bool)
				funcSets[ra] = dst
			}
			for f := range fs {
				dst[f] = true
			}
			delete(funcSets, rb)
		}
		// Unify deref nodes (Steensgaard's conditional join).
		da, db := s.uf.deref[ra], s.uf.deref[rb]
		switch {
		case da == 0:
			s.uf.deref[ra] = db
		case db != 0:
			union(da, db)
		}
		return s.uf.find(ra)
	}

	derefOf := func(n int) int {
		r := s.uf.find(n)
		if s.uf.deref[r] == 0 {
			s.uf.deref[r] = s.uf.fresh()
		}
		return s.uf.deref[r]
	}

	resolveTargets := func(rep int) []string {
		fs := funcSets[s.uf.find(rep)]
		out := make([]string, 0, len(fs))
		for f := range fs {
			out = append(out, f)
		}
		sort.Strings(out)
		return out
	}

	// One structural pass collecting constraints; indirect calls re-run
	// until no new unifications occur.
	changed := true
	for rounds := 0; changed && rounds < 20; rounds++ {
		changed = false
		sizeBefore := len(s.uf.parent)
		unionsBefore := unions
		var walkBlock func(fn string, b *lang.Block)
		handleCall := func(fn, callee string, args []string, resultVar string) {
			targets := []string{callee}
			if declared[callee] == nil {
				targets = resolveTargets(node(fn, callee))
			}
			for _, tgt := range targets {
				decl := declared[tgt]
				if decl == nil {
					continue
				}
				for i, a := range args {
					if i < len(decl.Params) {
						union(node(fn, a), node(tgt, decl.Params[i]))
					}
				}
				if resultVar != "" {
					// Unify result with every returned variable.
					var findReturns func(b *lang.Block)
					findReturns = func(b *lang.Block) {
						for _, st := range b.Stmts {
							switch r := st.(type) {
							case *lang.ReturnStmt:
								if r.HasVal {
									union(node(fn, resultVar), node(tgt, r.Value))
								}
							case *lang.IfStmt:
								findReturns(r.Then)
								if r.Else != nil {
									findReturns(r.Else)
								}
							case *lang.WhileStmt:
								findReturns(r.Body)
							}
						}
					}
					findReturns(decl.Body)
				}
			}
		}
		walkBlock = func(fn string, b *lang.Block) {
			for _, st := range b.Stmts {
				switch st := st.(type) {
				case *lang.AssignStmt:
					switch rhs := st.RHS.(type) {
					case *lang.VarExpr:
						union(node(fn, st.LHS), node(fn, rhs.Name))
					case *lang.LoadExpr:
						union(node(fn, st.LHS), derefOf(node(fn, rhs.Ptr)))
					case *lang.AddrExpr:
						union(derefOf(node(fn, st.LHS)), node("g", rhs.Name))
					case *lang.CallExpr:
						handleCall(fn, rhs.Callee, rhs.Args, st.LHS)
					}
				case *lang.StoreStmt:
					union(derefOf(node(fn, st.Ptr)), node(fn, st.Val))
				case *lang.CallStmt:
					handleCall(fn, st.Callee, st.Args, "")
				case *lang.ForkStmt:
					handleCall(fn, st.Callee, st.Args, "")
				case *lang.IfStmt:
					walkBlock(fn, st.Then)
					if st.Else != nil {
						walkBlock(fn, st.Else)
					}
				case *lang.WhileStmt:
					walkBlock(fn, st.Body)
				}
			}
		}
		for _, f := range prog.Funcs {
			walkBlock(f.Name, f.Body)
		}
		if len(s.uf.parent) != sizeBefore || unions != unionsBefore {
			changed = true
		}
	}
	s.funcs = make([]map[string]bool, len(s.uf.parent))
	for rep, fs := range funcSets {
		s.funcs[s.uf.find(rep)] = fs
	}
	return s
}

// Targets returns the functions variable v (in function fn) may refer to,
// sorted for determinism. A declared function name resolves to itself.
func (s *Steensgaard) Targets(fn, v string) []string {
	key := fn + "." + v
	n, ok := s.nodes[key]
	if !ok {
		if n2, ok2 := s.nodes["fn."+v]; ok2 {
			n = n2
		} else {
			return nil
		}
	}
	fs := s.funcs[s.uf.find(n)]
	out := make([]string, 0, len(fs))
	for f := range fs {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
