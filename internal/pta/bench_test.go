package pta

import (
	"testing"

	"canary/internal/lang"
	"canary/internal/workload"
)

// BenchmarkPTAFixpoint measures the Steensgaard fixpoint over a
// catalogue-scale subject. allocs/op is the headline series: the
// bitset-backed points-to sets replace the per-node map[string]bool
// representation, so growth is amortized word appends instead of map
// inserts.
func BenchmarkPTAFixpoint(b *testing.B) {
	b.ReportAllocs()
	src := workload.Generate(workload.SizeSweep(1, 1500, 1500)[0])
	ast, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeFuncPointers(ast)
	}
}
