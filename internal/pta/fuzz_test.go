package pta

import (
	"bytes"
	"testing"
)

// FuzzDecodeSummary hammers the summary wire decoder with garbage. These
// bytes arrive from the persistent disk store and from imported snapshot
// archives, so the decoder must never panic, never over-allocate from a
// hostile count, and anything it does accept must re-encode canonically.
func FuzzDecodeSummary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(encodeSummary(&Summary{}))
	f.Add(encodeSummary(&Summary{RetAlloc: true, RetTaint: true, RetParams: []int{0, 3, 7}}))
	// Hostile count: claims 2^64-1 parameters in two bytes of input.
	f.Add([]byte{0x03, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, ok := decodeSummary(b)
		if !ok {
			return
		}
		if len(s.RetParams) > maxParam+1 {
			t.Fatalf("decoded %d params from %d input bytes", len(s.RetParams), len(b))
		}
		re := encodeSummary(s)
		s2, ok2 := decodeSummary(re)
		if !ok2 {
			t.Fatalf("re-encoding of accepted input does not decode")
		}
		if !bytes.Equal(encodeSummary(s2), re) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}
