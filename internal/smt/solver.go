// Package smt implements the constraint solver Canary hands its aggregated
// value-flow guards to (PLDI 2021, §5.2). The paper uses Z3; this package is
// a from-scratch replacement that decides exactly the fragment Canary
// generates: propositional combinations of
//
//   - opaque branch-condition atoms (plain boolean variables), and
//   - strict execution-order atoms O_i < O_j (Defn. 2's partial orders).
//
// The solver is a CDCL SAT core (two-watched-literal propagation, 1UIP
// clause learning, activity-based decisions, restarts) with an integrated
// theory of strict partial orders: each order atom assigned true contributes
// a directed edge i→j, each assigned false contributes the reverse edge j→i
// (over a strict total execution order, ¬(i<j) ⟺ j<i for i≠j), and a set of
// order literals is consistent iff the edge set is acyclic. Cycles become
// theory conflict clauses, which the CDCL core learns from.
//
// The cube-and-conquer parallel strategy of §5.2 is in cube.go.
package smt

import (
	"sort"

	"canary/internal/guard"
)

// Result is the outcome of a Solve call.
type Result int

// Solve outcomes.
const (
	Unknown Result = iota // resource limit exceeded
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// lit is a literal: variable v (1-based) encoded as v<<1 for the positive
// and v<<1|1 for the negative phase.
type lit int32

func mkLit(v int, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) v() int        { return int(l >> 1) }
func (l lit) negated() bool { return l&1 == 1 }
func (l lit) not() lit      { return l ^ 1 }

const litUndef lit = -1

type clause struct {
	lits    []lit
	learned bool
	deleted bool
	act     float64
}

// Stats counts solver work, used by the evaluation harness.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	TheoryProps  int64 // theory conflict clauses generated
	Restarts     int64
}

// Solver is a single-query SMT solver. It is not safe for concurrent use;
// cube-and-conquer spawns one Solver per cube.
type Solver struct {
	pool *guard.Pool

	// Variables. Index 0 unused; vars are 1..nVars.
	nVars     int
	assign    []int8 // 0 undef, +1 true, -1 false
	level     []int32
	reason    []*clause
	activity  []float64
	phase     []bool
	atomOfVar []guard.Atom // 0 for Tseitin auxiliaries
	varOfAtom []int        // indexed by atom id; 0 = no variable yet

	clauses []*clause
	learnts []*clause
	watches [][]*clause // indexed by lit
	varInc  float64
	claInc  float64
	// maxLearnts triggers learned-clause database reduction; it grows
	// geometrically so hard instances keep useful lemmas.
	maxLearnts int

	// vsids is the activity heap over unassigned variables.
	vsids varHeap

	trail    []lit
	trailLim []int
	qhead    int

	theory *orderTheory

	tseitinMemo map[*guard.Formula]lit
	asserted    []*guard.Formula // for cloning into cube solvers
	rootUnsat   bool             // a top-level contradiction was asserted

	// MaxConflicts bounds the search; <=0 means no bound. Exceeding it makes
	// Solve return Unknown.
	MaxConflicts int64

	Stats Stats

	seen  []bool // scratch for conflict analysis
	model []int8 // last satisfying assignment
}

// New returns a solver over the atoms of pool.
func New(pool *guard.Pool) *Solver {
	s := &Solver{
		pool:        pool,
		varInc:      1.0,
		claInc:      1.0,
		maxLearnts:  4000,
		tseitinMemo: make(map[*guard.Formula]lit),
		theory:      newOrderTheory(),
	}
	s.vsids.s = s
	// Slot for var 0 (unused) and lit indexing.
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.atomOfVar = append(s.atomOfVar, 0)
	s.watches = append(s.watches, nil, nil)
	return s
}

// newVar allocates a fresh solver variable, optionally bound to a guard
// atom.
func (s *Solver) newVar(a guard.Atom) int {
	s.nVars++
	v := s.nVars
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.atomOfVar = append(s.atomOfVar, a)
	s.watches = append(s.watches, nil, nil)
	s.vsids.insert(v)
	if a != 0 {
		if int(a) >= len(s.varOfAtom) {
			grown := make([]int, int(a)+1)
			copy(grown, s.varOfAtom)
			s.varOfAtom = grown
		}
		s.varOfAtom[a] = v
		if from, to, ok := s.pool.OrderAtom(a); ok {
			if from == to {
				// O_i < O_i is theory-false: assert the negation.
				s.addClause([]lit{mkLit(v, true)})
			} else {
				s.theory.register(v, from, to)
			}
		}
	}
	return v
}

// varFor returns (allocating on demand) the solver variable of atom a.
func (s *Solver) varFor(a guard.Atom) int {
	if int(a) < len(s.varOfAtom) {
		if v := s.varOfAtom[a]; v != 0 {
			return v
		}
	}
	return s.newVar(a)
}

func (s *Solver) value(l lit) int8 {
	v := s.assign[l.v()]
	if l.negated() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// addClause installs a clause, handling unit and empty cases. Literals must
// reference existing variables.
func (s *Solver) addClause(lits []lit) {
	// Simplify: drop duplicate lits, detect tautology, drop false lits at
	// level 0.
	out := lits[:0:len(lits)]
	seen := make(map[lit]bool, len(lits))
	for _, l := range lits {
		if seen[l] {
			continue
		}
		if seen[l.not()] {
			return // tautology
		}
		if s.decisionLevel() == 0 {
			switch s.value(l) {
			case 1:
				return // already satisfied forever
			case -1:
				continue // permanently false literal
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.rootUnsat = true
		return
	case 1:
		if !s.enqueue(out[0], nil) {
			s.rootUnsat = true
		}
		return
	}
	c := &clause{lits: append([]lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.watch(c)
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].not()] = append(s.watches[c.lits[0].not()], c)
	s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
}

// enqueue assigns l true with the given reason; it reports false when l is
// already false (a conflict the caller must handle).
func (s *Solver) enqueue(l lit, from *clause) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l.v()
	if l.negated() {
		s.assign[v] = -1
	} else {
		s.assign[v] = 1
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.phase[v] = !l.negated()
	s.trail = append(s.trail, l)
	return true
}

// propagate runs boolean constraint propagation followed by the order
// theory check; it returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		if conf := s.propagateLit(l); conf != nil {
			return conf
		}
		// Theory: feed the newly assigned literal to the order theory.
		if conf := s.theoryAssign(l); conf != nil {
			return conf
		}
	}
	return nil
}

func (s *Solver) propagateLit(l lit) *clause {
	ws := s.watches[l]
	kept := ws[:0]
	var conflict *clause
	for i := 0; i < len(ws); i++ {
		c := ws[i]
		if c.deleted {
			continue // dropped from this watch list lazily
		}
		if conflict != nil {
			kept = append(kept, c)
			continue
		}
		// Make sure the false literal is lits[1].
		if c.lits[0] == l.not() {
			c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
		}
		// If lits[0] is true, the clause is satisfied.
		if s.value(c.lits[0]) == 1 {
			kept = append(kept, c)
			continue
		}
		// Look for a new literal to watch.
		moved := false
		for k := 2; k < len(c.lits); k++ {
			if s.value(c.lits[k]) != -1 {
				c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
				s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		// Clause is unit or conflicting.
		kept = append(kept, c)
		if !s.enqueue(c.lits[0], c) {
			conflict = c
		}
	}
	s.watches[l] = kept
	return conflict
}

// theoryAssign adds the order edge implied by l (if l's variable is an
// order atom) and returns a conflict clause on an order cycle.
func (s *Solver) theoryAssign(l lit) *clause {
	v := l.v()
	e, ok := s.theory.edges[v]
	if !ok {
		return nil
	}
	u, w := e.from, e.to
	if l.negated() {
		u, w = w, u // ¬(i<j) contributes j→i
	}
	if cyc := s.theory.addEdge(u, w, l); cyc != nil {
		s.Stats.TheoryProps++
		lits := make([]lit, len(cyc))
		for i, el := range cyc {
			lits[i] = el.not()
		}
		return &clause{lits: lits, learned: true}
	}
	return nil
}

// decide pops the most active unassigned variable from the VSIDS heap.
func (s *Solver) decide() lit {
	for {
		v := s.vsids.popMax()
		if v == 0 {
			return litUndef
		}
		if s.assign[v] == 0 {
			return mkLit(v, !s.phase[v])
		}
	}
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.vsids.rescale()
	}
	s.vsids.update(v)
}

// bumpClause increases a learned clause's usefulness score.
func (s *Solver) bumpClause(c *clause) {
	if !c.learned {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs 1UIP conflict analysis; it returns the learned clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conf *clause) ([]lit, int) {
	if cap(s.seen) < s.nVars+1 {
		s.seen = make([]bool, s.nVars+1)
	}
	seen := s.seen[:s.nVars+1]
	for i := range seen {
		seen[i] = false
	}
	learned := []lit{litUndef} // slot 0 for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p lit = litUndef
	s.bumpClause(conf)
	reasonLits := conf.lits
	for {
		for _, q := range reasonLits {
			if p != litUndef && q == p {
				continue
			}
			v := q.v()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find next literal on the trail to resolve on.
		for !seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.v()] = false
		counter--
		if counter == 0 {
			break
		}
		r := s.reason[p.v()]
		if r == nil {
			// Decision reached with pending paths — should not happen for
			// 1UIP, but guard anyway.
			break
		}
		s.bumpClause(r)
		reasonLits = r.lits
	}
	learned[0] = p.not()
	// Backtrack level: second-highest level in the clause.
	bt := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].v()] > s.level[learned[maxI].v()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		bt = int(s.level[learned[1].v()])
	}
	return learned, bt
}

// backtrackTo undoes assignments above the given decision level.
func (s *Solver) backtrackTo(levelTo int) {
	if s.decisionLevel() <= levelTo {
		return
	}
	bound := s.trailLim[levelTo]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.v()
		s.theory.removeLastFor(v)
		s.assign[v] = 0
		s.reason[v] = nil
		s.vsids.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:levelTo]
	s.qhead = len(s.trail)
}

// Solve runs the CDCL search. Subsequent calls re-solve from the root
// (learned clauses are kept).
func (s *Solver) Solve() Result { return s.solve(nil) }

// SolveAssuming solves under the given atom assumptions (atom, phase pairs
// expressed as a map).
func (s *Solver) SolveAssuming(assumps map[guard.Atom]bool) Result {
	lits := make([]lit, 0, len(assumps))
	for a, ph := range assumps {
		lits = append(lits, mkLit(s.varFor(a), !ph))
	}
	return s.solve(lits)
}

// SolveAssumingAssignment solves under the assumptions recorded in asn,
// applied in assignment order — a deterministic variant of SolveAssuming
// used by cube-and-conquer (a map's range order would vary the decision
// sequence, and with it the cost, run to run).
func (s *Solver) SolveAssumingAssignment(asn *guard.Assignment) Result {
	atoms := asn.Assigned()
	lits := make([]lit, 0, len(atoms))
	for _, a := range atoms {
		lits = append(lits, mkLit(s.varFor(a), !asn.Value(a)))
	}
	return s.solve(lits)
}

func (s *Solver) solve(assumps []lit) Result {
	if s.rootUnsat {
		return Unsat
	}
	s.backtrackTo(0)
	if conf := s.propagate(); conf != nil {
		s.rootUnsat = true
		return Unsat
	}
	var conflicts int64
	restartLim := int64(64)
	sinceRestart := int64(0)
	for {
		conf := s.propagate()
		if conf != nil {
			conflicts++
			sinceRestart++
			s.Stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.rootUnsat = true
				return Unsat
			}
			if s.MaxConflicts > 0 && conflicts > s.MaxConflicts {
				return Unknown
			}
			learned, bt := s.analyze(conf)
			// Never backtrack past the assumption levels.
			if bt < len(assumps) && s.decisionLevel() > len(assumps) {
				bt = minInt(bt, len(assumps))
			}
			s.backtrackTo(bt)
			if len(learned) == 1 {
				if s.decisionLevel() > 0 {
					s.backtrackTo(0)
				}
				if !s.enqueue(learned[0], nil) {
					s.rootUnsat = true
					return Unsat
				}
			} else {
				c := &clause{lits: append([]lit(nil), learned...), learned: true}
				s.learnts = append(s.learnts, c)
				s.bumpClause(c)
				s.watch(c)
				if !s.enqueue(learned[0], c) {
					s.rootUnsat = true
					return Unsat
				}
			}
			s.varInc *= 1.05
			s.claInc *= 1.001
			if len(s.learnts) > s.maxLearnts+len(s.trail) {
				s.reduceDB()
			}
			// Assumption conflict: if we backtracked below the assumption
			// prefix and an assumption is now false, the cube is unsat.
			if !s.assumpsHold(assumps) {
				return Unsat
			}
			continue
		}
		// Restart policy (simple geometric).
		if sinceRestart > restartLim {
			sinceRestart = 0
			restartLim += restartLim / 2
			s.Stats.Restarts++
			s.backtrackTo(0)
			if !s.reassume(assumps) {
				return Unsat
			}
			continue
		}
		// Install any pending assumptions as decisions.
		if s.decisionLevel() < len(assumps) {
			a := assumps[s.decisionLevel()]
			switch s.value(a) {
			case 1:
				// Already implied: open an empty level to keep indices in
				// step with the assumption prefix.
				s.trailLim = append(s.trailLim, len(s.trail))
			case -1:
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, nil)
			}
			continue
		}
		next := s.decide()
		if next == litUndef {
			// Full assignment, theory kept consistent incrementally: SAT.
			s.model = append(s.model[:0], s.assign...)
			return Sat
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, nil)
	}
}

func (s *Solver) assumpsHold(assumps []lit) bool {
	for i := 0; i < s.decisionLevel() && i < len(assumps); i++ {
		if s.value(assumps[i]) == -1 {
			return false
		}
	}
	for _, a := range assumps {
		if s.value(a) == -1 && s.level[a.v()] == 0 {
			return false
		}
	}
	return true
}

func (s *Solver) reassume(assumps []lit) bool {
	for _, a := range assumps {
		if s.value(a) == -1 && s.level[a.v()] == 0 {
			return false
		}
	}
	return true
}

// reduceDB removes the least useful half of the learned clauses (by
// activity), keeping binary clauses and clauses currently locked as the
// reason of an assignment. Deleted clauses are dropped from the watch lists
// lazily during propagation. The budget then grows so hard instances retain
// more lemmas.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	// Partition: find the median activity with a copy-sort of activities.
	acts := make([]float64, 0, len(s.learnts))
	for _, c := range s.learnts {
		acts = append(acts, c.act)
	}
	sort.Float64s(acts)
	median := acts[len(acts)/2]

	locked := func(c *clause) bool {
		v := c.lits[0].v()
		return s.assign[v] != 0 && s.reason[v] == c
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) == 2 || locked(c) || c.act > median {
			kept = append(kept, c)
			continue
		}
		c.deleted = true
	}
	s.learnts = kept
	s.maxLearnts += s.maxLearnts / 10
}

// ValueAtom reports the model value of atom a after a Sat result. ok is
// false when the atom never reached the solver or no model is available.
func (s *Solver) ValueAtom(a guard.Atom) (val, ok bool) {
	if int(a) >= len(s.varOfAtom) {
		return false, false
	}
	v := s.varOfAtom[a]
	if v == 0 || len(s.model) <= v {
		return false, false
	}
	return s.model[v] == 1, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
