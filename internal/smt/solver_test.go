package smt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"canary/internal/guard"
)

func b(p *guard.Pool, name string) *guard.Formula { return guard.Var(p.Bool(name)) }

func TestTrivial(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	s.Assert(guard.True())
	if got := s.Solve(); got != Sat {
		t.Fatalf("true: got %v", got)
	}
	s2 := New(p)
	s2.Assert(guard.False())
	if got := s2.Solve(); got != Unsat {
		t.Fatalf("false: got %v", got)
	}
}

func TestSingleVar(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	x := b(p, "x")
	s.Assert(x)
	if s.Solve() != Sat {
		t.Fatal("x should be sat")
	}
	if v, ok := s.ValueAtom(p.Bool("x")); !ok || !v {
		t.Fatal("model must set x true")
	}
}

func TestContradiction(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	x := b(p, "x")
	s.Assert(x)
	s.Assert(guard.Not(x))
	if s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x should be unsat")
	}
}

func TestImplicationChainUnsat(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	const n = 20
	vars := make([]*guard.Formula, n)
	for i := range vars {
		vars[i] = b(p, fmt.Sprintf("v%d", i))
	}
	s.Assert(vars[0])
	for i := 0; i+1 < n; i++ {
		s.Assert(guard.Implies(vars[i], vars[i+1]))
	}
	s.Assert(guard.Not(vars[n-1]))
	if s.Solve() != Unsat {
		t.Fatal("implication chain with negated head should be unsat")
	}
}

func TestDisjunctiveReasoning(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	x, y, z := b(p, "x"), b(p, "y"), b(p, "z")
	s.Assert(guard.Or(x, y))
	s.Assert(guard.Or(guard.Not(x), z))
	s.Assert(guard.Or(guard.Not(y), z))
	s.Assert(guard.Not(z))
	if s.Solve() != Unsat {
		t.Fatal("resolution example should be unsat")
	}
}

// Pigeonhole principle PHP(n+1, n): unsat, exercises clause learning.
func TestPigeonhole(t *testing.T) {
	const holes = 4
	const pigeons = holes + 1
	p := guard.NewPool()
	s := New(p)
	at := func(pi, h int) *guard.Formula {
		return b(p, fmt.Sprintf("p%dh%d", pi, h))
	}
	for pi := 0; pi < pigeons; pi++ {
		var d []*guard.Formula
		for h := 0; h < holes; h++ {
			d = append(d, at(pi, h))
		}
		s.Assert(guard.Or(d...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Assert(guard.Or(guard.Not(at(p1, h)), guard.Not(at(p2, h))))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("pigeonhole must be unsat")
	}
	if s.Stats.Conflicts == 0 {
		t.Error("expected the search to hit conflicts")
	}
}

func TestOrderTheoryTwoCycle(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	s.Assert(guard.Var(p.Order(1, 2)))
	s.Assert(guard.Var(p.Order(2, 1)))
	if s.Solve() != Unsat {
		t.Fatal("O1<O2 ∧ O2<O1 must be unsat")
	}
}

func TestOrderTheoryTransitivityViaNegation(t *testing.T) {
	// O1<O2 ∧ O2<O3 ∧ ¬(O1<O3): the negation contributes edge 3→1, closing
	// a cycle 1→2→3→1.
	p := guard.NewPool()
	s := New(p)
	s.Assert(guard.Var(p.Order(1, 2)))
	s.Assert(guard.Var(p.Order(2, 3)))
	s.Assert(guard.Not(guard.Var(p.Order(1, 3))))
	if s.Solve() != Unsat {
		t.Fatal("transitivity violation must be unsat")
	}
}

func TestOrderTheorySatChain(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	for i := 1; i < 10; i++ {
		s.Assert(guard.Var(p.Order(i, i+1)))
	}
	if s.Solve() != Sat {
		t.Fatal("a simple chain must be sat")
	}
}

func TestOrderReflexiveAtomIsFalse(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	s.Assert(guard.Var(p.Order(5, 5)))
	if s.Solve() != Unsat {
		t.Fatal("O5<O5 must be unsat")
	}
}

func TestOrderMixedWithBooleans(t *testing.T) {
	// (θ → O1<O2) ∧ (¬θ → O2<O1) is sat either way; adding O2<O1 ∧ θ makes
	// it unsat.
	p := guard.NewPool()
	theta := b(p, "theta")
	o12 := guard.Var(p.Order(1, 2))
	o21 := guard.Var(p.Order(2, 1))
	s := New(p)
	s.Assert(guard.Implies(theta, o12))
	s.Assert(guard.Implies(guard.Not(theta), o21))
	if s.Solve() != Sat {
		t.Fatal("guarded orders should be sat")
	}
	s2 := New(p)
	s2.Assert(guard.Implies(theta, o12))
	s2.Assert(o21)
	s2.Assert(theta)
	if s2.Solve() != Unsat {
		t.Fatal("θ forces O1<O2, conflicting with O2<O1")
	}
}

// TestFig5bIrrealizablePath encodes Example 5.1 of the paper: the value-flow
// path ⟨a@ℓ2, b@ℓ3, b@ℓ4, a@ℓ1⟩ has Φls = O2<O3 ∧ O3<O4 ∧ O4<O1 while Φpo
// gives O1<O2 ∧ O3<O4; the conjunction is unsat, pruning the path.
func TestFig5bIrrealizablePath(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	s.Assert(guard.Var(p.Order(2, 3)))
	s.Assert(guard.Var(p.Order(3, 4)))
	s.Assert(guard.Var(p.Order(4, 1)))
	s.Assert(guard.Var(p.Order(1, 2)))
	if s.Solve() != Unsat {
		t.Fatal("Fig. 5(b) path must be irrealizable")
	}
}

// TestFig2GuardUnsat encodes the motivating example's aggregated guard:
// (O3<O13 ∧ O13<O6) ∧ θ1 ∧ ¬θ1. The branch contradiction alone refutes it.
func TestFig2GuardUnsat(t *testing.T) {
	p := guard.NewPool()
	s := New(p)
	theta := b(p, "theta1")
	s.Assert(guard.Var(p.Order(3, 13)))
	s.Assert(guard.Var(p.Order(13, 6)))
	s.Assert(theta)
	s.Assert(guard.Not(theta))
	if s.Solve() != Unsat {
		t.Fatal("Fig. 2 guard must be unsat")
	}
}

func TestSolveAssuming(t *testing.T) {
	p := guard.NewPool()
	x, y := p.Bool("x"), p.Bool("y")
	s := New(p)
	s.Assert(guard.Or(guard.Var(x), guard.Var(y)))
	if s.SolveAssuming(map[guard.Atom]bool{x: false, y: false}) != Unsat {
		t.Fatal("assuming both false must be unsat")
	}
	if s.SolveAssuming(map[guard.Atom]bool{x: true}) != Sat {
		t.Fatal("assuming x must be sat")
	}
	// Solver stays reusable after assumption solving.
	if s.Solve() != Sat {
		t.Fatal("unassumed solve must be sat")
	}
}

func TestMaxConflictsReturnsUnknown(t *testing.T) {
	const holes = 7
	const pigeons = holes + 1
	p := guard.NewPool()
	s := New(p)
	s.MaxConflicts = 5
	at := func(pi, h int) *guard.Formula { return b(p, fmt.Sprintf("p%dh%d", pi, h)) }
	for pi := 0; pi < pigeons; pi++ {
		var d []*guard.Formula
		for h := 0; h < holes; h++ {
			d = append(d, at(pi, h))
		}
		s.Assert(guard.Or(d...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Assert(guard.Or(guard.Not(at(p1, h)), guard.Not(at(p2, h))))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("tiny conflict budget should yield Unknown, got %v", got)
	}
}

// TestLargePigeonholeExercisesReduction drives the solver through enough
// conflicts to trigger learned-clause database reduction and checks the
// verdict stays correct.
func TestLargePigeonholeExercisesReduction(t *testing.T) {
	const holes = 8
	const pigeons = holes + 1
	p := guard.NewPool()
	s := New(p)
	s.maxLearnts = 200 // force several reductions
	at := func(pi, h int) *guard.Formula { return b(p, fmt.Sprintf("p%dh%d", pi, h)) }
	for pi := 0; pi < pigeons; pi++ {
		var d []*guard.Formula
		for h := 0; h < holes; h++ {
			d = append(d, at(pi, h))
		}
		s.Assert(guard.Or(d...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Assert(guard.Or(guard.Not(at(p1, h)), guard.Not(at(p2, h))))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("php-8 must be unsat, got %v", got)
	}
	if s.Stats.Conflicts < 200 {
		t.Fatalf("expected enough conflicts to trigger reduction, got %d", s.Stats.Conflicts)
	}
}

// TestSatisfiableAfterReduction: clause deletion must not break models on
// satisfiable instances (random 3-SAT at the easy density, re-solved and
// model-checked).
func TestSatisfiableAfterReduction(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		p := guard.NewPool()
		s := New(p)
		s.maxLearnts = 16
		whole := guard.And(randomCNFFormula(r, p, 12, 30)...)
		s.Assert(whole)
		res := s.Solve()
		if res != Sat {
			continue // unsat instances are checked by the brute-force property test
		}
		asn := map[guard.Atom]bool{}
		for i := 0; i < 12; i++ {
			a := p.Bool(fmt.Sprintf("r%d", i))
			if v, ok := s.ValueAtom(a); ok {
				asn[a] = v
			}
		}
		if !whole.Eval(asn) {
			t.Fatalf("trial %d: model does not satisfy the formula after reductions", trial)
		}
	}
}

func TestCubeAndConquerAgreesWithSequential(t *testing.T) {
	p := guard.NewPool()
	x, y, z := b(p, "x"), b(p, "y"), b(p, "z")
	fs := []*guard.Formula{
		guard.Or(x, y, z),
		guard.Or(guard.Not(x), y),
		guard.Or(guard.Not(y), z),
		guard.Not(z),
	}
	if got := SolveCubeAndConquer(p, fs, CubeOptions{SplitAtoms: 2, Workers: 4}); got != Unsat {
		t.Fatalf("cube-and-conquer: got %v, want unsat", got)
	}
	sat := []*guard.Formula{guard.Or(x, y), guard.Or(guard.Not(x), z)}
	if got := SolveCubeAndConquer(p, sat, CubeOptions{SplitAtoms: 2, Workers: 4}); got != Sat {
		t.Fatalf("cube-and-conquer: got %v, want sat", got)
	}
}

func TestCubeAndConquerZeroSplitFallsBack(t *testing.T) {
	p := guard.NewPool()
	x := b(p, "x")
	if got := SolveCubeAndConquer(p, []*guard.Formula{x, guard.Not(x)}, CubeOptions{}); got != Unsat {
		t.Fatalf("got %v", got)
	}
}

// randomCNFFormula builds a random k-CNF style guard formula.
func randomCNFFormula(r *rand.Rand, p *guard.Pool, nVars, nClauses int) []*guard.Formula {
	var fs []*guard.Formula
	for i := 0; i < nClauses; i++ {
		width := r.Intn(3) + 1
		var lits []*guard.Formula
		for j := 0; j < width; j++ {
			v := guard.Var(p.Bool(fmt.Sprintf("r%d", r.Intn(nVars))))
			if r.Intn(2) == 0 {
				v = guard.Not(v)
			}
			lits = append(lits, v)
		}
		fs = append(fs, guard.Or(lits...))
	}
	return fs
}

// Property: the solver agrees with brute force on small boolean formulas.
func TestQuickSolverMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := guard.NewPool()
		const nVars = 6
		fs := randomCNFFormula(r, p, nVars, r.Intn(16)+1)
		s := New(p)
		whole := guard.And(fs...)
		s.Assert(whole)
		got := s.Solve()

		bruteSat := false
		for m := 0; m < 1<<nVars && !bruteSat; m++ {
			asn := map[guard.Atom]bool{}
			for i := 0; i < nVars; i++ {
				asn[p.Bool(fmt.Sprintf("r%d", i))] = m&(1<<i) != 0
			}
			if whole.Eval(asn) {
				bruteSat = true
			}
		}
		want := Unsat
		if bruteSat {
			want = Sat
		}
		if got != want {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		// If sat, the model must actually satisfy the formula.
		if got == Sat {
			asn := map[guard.Atom]bool{}
			for i := 0; i < nVars; i++ {
				a := p.Bool(fmt.Sprintf("r%d", i))
				if v, ok := s.ValueAtom(a); ok {
					asn[a] = v
				}
			}
			if !whole.Eval(asn) {
				t.Logf("seed %d: model does not satisfy formula", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: conjunctions of random order literals agree with brute-force
// permutation search over a small label universe.
func TestQuickOrderTheoryMatchesPermutations(t *testing.T) {
	const labels = 4
	perms := permutations(labels)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := guard.NewPool()
		s := New(p)
		type atomLit struct {
			from, to int
			pos      bool
		}
		n := r.Intn(6) + 1
		lits := make([]atomLit, 0, n)
		for i := 0; i < n; i++ {
			a := atomLit{from: r.Intn(labels), to: r.Intn(labels), pos: r.Intn(2) == 0}
			if a.from == a.to {
				a.pos = false // i<i is false; assert its negation to stay satisfiable-ish
			}
			lits = append(lits, a)
			f := guard.Var(p.Order(a.from, a.to))
			if !a.pos {
				f = guard.Not(f)
			}
			s.Assert(f)
		}
		got := s.Solve()

		want := Unsat
		for _, perm := range perms {
			ok := true
			for _, a := range lits {
				holds := perm[a.from] < perm[a.to]
				if holds != a.pos {
					ok = false
					break
				}
			}
			if ok {
				want = Sat
				break
			}
		}
		if got != want {
			t.Logf("seed %d: got %v want %v (lits %v)", seed, got, want, lits)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// permutations returns all position assignments of n labels.
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				perm[i] = v
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return out
}

// Property: cube-and-conquer agrees with the sequential solver.
func TestQuickCubeAndConquerMatchesSequential(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := guard.NewPool()
		fs := randomCNFFormula(r, p, 5, r.Intn(14)+1)
		s := New(p)
		for _, f := range fs {
			s.Assert(f)
		}
		seq := s.Solve()
		par := SolveCubeAndConquer(p, fs, CubeOptions{SplitAtoms: 2, Workers: 3})
		if seq != par {
			t.Logf("seed %d: sequential %v, cube %v", seed, seq, par)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
