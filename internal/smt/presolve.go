package smt

import (
	"context"

	"canary/internal/guard"
)

// Presolve is the pre-Tseitin fast path: constant folding plus unit
// propagation over the aggregated guard formula, consulting the order
// theory only on the propagated unit literals. It returns (verdict, model,
// true) when the formula is decided without building CNF or running the
// CDCL loop, and (Unknown, nil, false) when the full solver is needed.
//
// Both verdicts are exact, never heuristic:
//
//   - Unsat is claimed when propagation folds the formula to ⊥ (unit
//     substitution preserves equivalence), or when the formula folds to ⊤
//     but the forced order literals are themselves theory-inconsistent —
//     every model must satisfy the units, so a cyclic edge set refutes the
//     whole formula.
//   - Sat is claimed only when the formula folds to ⊤ AND the forced order
//     literals are acyclic under the solver's total-order semantics
//     (an atom O_i<O_j assigned false contributes the reverse edge j→i,
//     mirroring ¬(i<j) ⟺ j<i): a topological extension then witnesses a
//     model, with all unassigned atoms free.
//
// The returned Sat model carries exactly the forced units. It is partial —
// downstream schedule reconstruction treats missing atoms as unconstrained,
// the same contract cached cube verdicts already rely on.
func Presolve(pool *guard.Pool, f *guard.Formula) (Result, Model, bool) {
	res, m, ok, _ := PresolveContext(context.Background(), pool, f)
	return res, m, ok
}

// PresolveContext is Presolve with cooperative cancellation: the
// propagate-substitute loop observes ctx once per round and returns
// ctx.Err() promptly when the context is done. A non-nil error always
// accompanies (Unknown, nil, false).
func PresolveContext(ctx context.Context, pool *guard.Pool, f *guard.Formula) (Result, Model, bool, error) {
	asn := guard.NewAssignment(0)
	cur := f
	for {
		if cerr := ctx.Err(); cerr != nil {
			return Unknown, nil, false, cerr
		}
		if cur.IsFalse() {
			return Unsat, nil, true, nil
		}
		if cur.IsTrue() {
			break
		}
		seen, progress, conflict := collectUnits(cur, asn)
		if seen == 0 {
			return Unknown, nil, false, nil
		}
		if conflict {
			return Unsat, nil, true, nil
		}
		if !progress {
			return Unknown, nil, false, nil
		}
		cur = substitute(cur, asn, make(map[*guard.Formula]*guard.Formula))
	}
	if !orderConsistent(pool, asn) {
		return Unsat, nil, true, nil
	}
	if asn.Len() == 0 {
		return Sat, nil, true, nil
	}
	// The map model materializes only on Sat: the propagation rounds above
	// work on the dense assignment alone.
	m := make(Model, asn.Len())
	for _, a := range asn.Assigned() {
		m[a] = asn.Value(a)
	}
	return Sat, m, true, nil
}

// collectUnits folds the literals the formula forces at the top level — f
// itself when it is a literal, or the literal conjuncts of a top-level
// conjunction — into asn. Hash-consed And construction already folds
// complementary literal pairs to ⊥, so one round's literals are
// conflict-free by construction; conflict reports a clash with a literal
// forced in an earlier round. seen counts the literals encountered, and
// progress reports whether any was newly assigned.
func collectUnits(f *guard.Formula, asn *guard.Assignment) (seen int, progress, conflict bool) {
	collect := func(g *guard.Formula) {
		var a guard.Atom
		var v bool
		switch g.Kind() {
		case guard.KVar:
			a, v = g.Atom(), true
		case guard.KNot:
			if sub := g.Subs()[0]; sub.Kind() == guard.KVar {
				a, v = sub.Atom(), false
			}
		}
		if a == 0 {
			return
		}
		seen++
		if old, ok := asn.Get(a); ok {
			if old != v {
				conflict = true
			}
			return
		}
		asn.Set(a, v)
		progress = true
	}
	if f.Kind() == guard.KAnd {
		for _, s := range f.Subs() {
			collect(s)
		}
	} else {
		collect(f)
	}
	return seen, progress, conflict
}

// substitute rewrites f under the partial assignment asn, folding constants
// through the simplifying guard constructors. memo deduplicates shared
// subtrees within one rewrite.
func substitute(f *guard.Formula, asn *guard.Assignment, memo map[*guard.Formula]*guard.Formula) *guard.Formula {
	if out, ok := memo[f]; ok {
		return out
	}
	var out *guard.Formula
	switch f.Kind() {
	case guard.KTrue, guard.KFalse:
		out = f
	case guard.KVar:
		if v, ok := asn.Get(f.Atom()); ok {
			if v {
				out = guard.True()
			} else {
				out = guard.False()
			}
		} else {
			out = f
		}
	case guard.KNot:
		out = guard.Not(substitute(f.Subs()[0], asn, memo))
	case guard.KAnd, guard.KOr:
		subs := make([]*guard.Formula, len(f.Subs()))
		for i, s := range f.Subs() {
			subs[i] = substitute(s, asn, memo)
		}
		if f.Kind() == guard.KAnd {
			out = guard.And(subs...)
		} else {
			out = guard.Or(subs...)
		}
	default:
		out = f
	}
	memo[f] = out
	return out
}

// orderConsistent checks the forced order literals against the theory of a
// strict total execution order: true O_i<O_j contributes edge i→j, false
// contributes the reverse edge j→i (totality), a reflexive true atom is an
// immediate contradiction, and the set is consistent iff the edge graph is
// acyclic.
func orderConsistent(pool *guard.Pool, asn *guard.Assignment) bool {
	adj := make(map[int][]int)
	for _, a := range asn.Assigned() {
		v := asn.Value(a)
		from, to, ok := pool.OrderAtom(a)
		if !ok {
			continue
		}
		if from == to {
			if v {
				return false
			}
			continue
		}
		if !v {
			from, to = to, from
		}
		adj[from] = append(adj[from], to)
	}
	// Iterative 3-color DFS for a directed cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(adj))
	for start := range adj {
		if color[start] != white {
			continue
		}
		type frame struct {
			node int
			next int
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.next < len(adj[top.node]) {
				n := adj[top.node][top.next]
				top.next++
				switch color[n] {
				case gray:
					return false
				case white:
					color[n] = gray
					stack = append(stack, frame{node: n})
				}
				continue
			}
			color[top.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}
