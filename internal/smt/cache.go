package smt

import (
	"sync"
	"sync/atomic"

	"canary/internal/guard"
)

// AtomValuer yields model values of guard atoms after a Sat verdict. Both
// *Solver (the live model) and Model (a cached one) implement it.
type AtomValuer interface {
	ValueAtom(a guard.Atom) (val, ok bool)
}

// Model is a detached satisfying assignment: every atom the solver
// allocated a variable for maps to its model value. Cached Sat verdicts
// carry their Model so witness schedules are identical whether a query was
// solved or replayed from the cache.
type Model map[guard.Atom]bool

// ValueAtom implements AtomValuer.
func (m Model) ValueAtom(a guard.Atom) (val, ok bool) {
	v, ok := m[a]
	return v, ok
}

// Model extracts the last satisfying assignment as a detached Model. It
// returns nil when no model is available.
func (s *Solver) Model() Model {
	if len(s.model) == 0 {
		return nil
	}
	m := make(Model)
	for a, v := range s.varOfAtom {
		if v != 0 && v < len(s.model) && s.model[v] != 0 {
			m[guard.Atom(a)] = s.model[v] == 1
		}
	}
	return m
}

// QueryCache memoizes solver verdicts across checkers and across repeated
// Check rounds (§5.2's throughput concern: identical aggregated guards
// recur constantly — the same path re-validated for another sink, or a
// second checking round over the same VFG).
//
// Thanks to guard hash-consing, a formula pointer is a canonical structural
// key. Atom ids are pool-relative, so entries are additionally keyed by the
// owning *guard.Pool: the same formula shape over two programs' pools never
// aliases. Only definite verdicts (Sat with its model, Unsat) are stored —
// Unknown depends on the conflict budget and is never reused.
type QueryCache struct {
	mu      sync.RWMutex
	entries map[cacheKey]cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64

	// MaxEntries bounds the table; when full the whole table is flushed
	// (epoch eviction — simple, and a flush only costs re-solves).
	MaxEntries int
}

type cacheKey struct {
	pool *guard.Pool
	f    *guard.Formula
}

type cacheEntry struct {
	res   Result
	model Model
}

// NewQueryCache returns an empty cache bounded to maxEntries (<=0 means the
// default of 1<<18).
func NewQueryCache(maxEntries int) *QueryCache {
	if maxEntries <= 0 {
		maxEntries = 1 << 18
	}
	return &QueryCache{
		entries:    make(map[cacheKey]cacheEntry),
		MaxEntries: maxEntries,
	}
}

// DefaultCache is the process-wide query cache shared by all checkers.
var DefaultCache = NewQueryCache(0)

// Lookup returns the cached verdict of formula f over pool, if any.
func (c *QueryCache) Lookup(pool *guard.Pool, f *guard.Formula) (Result, Model, bool) {
	c.mu.RLock()
	e, ok := c.entries[cacheKey{pool, f}]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return Unknown, nil, false
	}
	c.hits.Add(1)
	return e.res, e.model, true
}

// Store records a definite verdict for formula f over pool. Unknown results
// are ignored. Concurrent stores of the same key are idempotent: the solver
// is deterministic, so racing workers compute identical verdicts and models.
func (c *QueryCache) Store(pool *guard.Pool, f *guard.Formula, res Result, model Model) {
	if res == Unknown {
		return
	}
	c.mu.Lock()
	if len(c.entries) >= c.MaxEntries {
		c.entries = make(map[cacheKey]cacheEntry)
	}
	c.entries[cacheKey{pool, f}] = cacheEntry{res: res, model: model}
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *QueryCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached verdicts.
func (c *QueryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
