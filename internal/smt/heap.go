package smt

// varHeap is the VSIDS order heap: a max-heap of variables keyed by
// activity, with positions tracked so activity bumps can sift in place.
// Assigned variables stay in the heap lazily; decide() pops until it finds
// an unassigned one, and backtracking re-inserts freed variables.
type varHeap struct {
	s    *Solver
	heap []int // variable ids, heap[0] is the most active
	pos  []int // var → index+1 in heap; 0 = absent
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[h.heap[a]] > h.s.activity[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a + 1
	h.pos[h.heap[b]] = b + 1
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// grow ensures pos can index variable v.
func (h *varHeap) grow(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, 0)
	}
}

// insert adds v if absent.
func (h *varHeap) insert(v int) {
	h.grow(v)
	if h.pos[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap)
	h.up(len(h.heap) - 1)
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	h.grow(v)
	if h.pos[v] == 0 {
		h.insert(v)
		return
	}
	h.up(h.pos[v] - 1)
}

// popMax removes and returns the most active variable (0 when empty).
func (h *varHeap) popMax() int {
	if len(h.heap) == 0 {
		return 0
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.pos[top] = 0
	if last > 0 {
		h.down(0)
	}
	return top
}

// rescale is called after a global activity rescale: heap order is
// preserved (all activities scaled by the same factor), so nothing to do;
// kept for clarity at the call site.
func (h *varHeap) rescale() {}
