package smt

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"canary/internal/guard"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `
c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	pool, fs, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("want 3 clauses, got %d", len(fs))
	}
	s := New(pool)
	for _, f := range fs {
		s.Assert(f)
	}
	if s.Solve() != Sat {
		t.Fatal("instance is satisfiable (x1=0, x2=0, x3=1)")
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	pool, fs, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool)
	for _, f := range fs {
		s.Assert(f)
	}
	if s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x must be unsat")
	}
}

func TestParseDIMACSOrderBindings(t *testing.T) {
	// x1 ⟺ O(1<2), x2 ⟺ O(2<3), x3 ⟺ O(3<1): all three true is a cycle.
	src := `
p cnf 3 3
o 1 1 2
o 2 2 3
o 3 3 1
1 0
2 0
3 0
`
	pool, fs, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool)
	for _, f := range fs {
		s.Assert(f)
	}
	if s.Solve() != Unsat {
		t.Fatal("order cycle must be theory-unsat")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",                            // clause before problem line
		"p cnf x y\n",                        // bad problem line
		"p cnf 2 1\n1 foo 0\n",               // bad literal
		"p cnf 2 1\no 1 2\n",                 // bad order binding arity
		"",                                   // empty
		"p cnf 1 1\no 1 1 2\no 1 3 4\n1 0\n", // variable bound twice
	}
	for _, src := range cases {
		if _, _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestWriteDIMACSRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		pool := guard.NewPool()
		fs := randomCNFFormula(r, pool, 6, r.Intn(12)+2)
		// Mix in an order-atom clause.
		fs = append(fs, guard.Or(
			guard.Var(pool.Order(1, 2)),
			guard.Not(guard.Var(pool.Order(2, 3))),
		))

		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, pool, fs); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		pool2, fs2, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, buf.String())
		}

		solve := func(p *guard.Pool, formulas []*guard.Formula) Result {
			s := New(p)
			for _, f := range formulas {
				s.Assert(f)
			}
			return s.Solve()
		}
		if a, b := solve(pool, fs), solve(pool2, fs2); a != b {
			t.Fatalf("trial %d: round trip changed verdict: %v vs %v\n%s", trial, a, b, buf.String())
		}
	}
}

func TestParseDIMACSEmptyClause(t *testing.T) {
	pool, fs, err := ParseDIMACS(strings.NewReader("p cnf 1 1\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool)
	for _, f := range fs {
		s.Assert(f)
	}
	if s.Solve() != Unsat {
		t.Fatal("the empty clause is unsatisfiable")
	}
}

func TestWriteDIMACSRejectsNonClausal(t *testing.T) {
	pool := guard.NewPool()
	x := guard.Var(pool.Bool("x"))
	y := guard.Var(pool.Bool("y"))
	nonClausal := guard.Or(guard.And(x, y), guard.Not(guard.Or(x, y)))
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, pool, []*guard.Formula{nonClausal}); err == nil {
		t.Fatal("non-clausal formula must be rejected")
	}
}

func TestDIMACSPigeonhole(t *testing.T) {
	// Generate php-5 in DIMACS text, parse, solve: unsat.
	const holes = 5
	const pigeons = holes + 1
	var b strings.Builder
	varOf := func(p, h int) int { return p*holes + h + 1 }
	var clauses []string
	for p := 0; p < pigeons; p++ {
		var c []string
		for h := 0; h < holes; h++ {
			c = append(c, fmt.Sprint(varOf(p, h)))
		}
		clauses = append(clauses, strings.Join(c, " ")+" 0")
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, fmt.Sprintf("-%d -%d 0", varOf(p1, h), varOf(p2, h)))
			}
		}
	}
	fmt.Fprintf(&b, "p cnf %d %d\n%s\n", pigeons*holes, len(clauses), strings.Join(clauses, "\n"))
	pool, fs, err := ParseDIMACS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool)
	for _, f := range fs {
		s.Assert(f)
	}
	if s.Solve() != Unsat {
		t.Fatal("php-5 must be unsat")
	}
}
