package smt

import (
	"encoding/binary"
	"sort"

	"canary/internal/cache"
)

// PortableAssign is one atom assignment of a cached model, keyed by the
// atom's pool-independent structural encoding (boolean atoms by their
// condition text, order atoms by the structural coordinates of their two
// labels — see core's verdict coder). Portable models survive re-parsing:
// a warm run rebases them onto its own pool by matching encodings against
// the atoms of the freshly assembled formula.
type PortableAssign struct {
	Atom string
	Val  bool
}

// VerdictStore caches SMT verdicts across runs and across programs,
// content-addressed by a structural serialization of the assembled
// constraint system (pool-relative atom ids and global instruction labels
// replaced by their portable encodings). Two queries with the same key have
// isomorphic constraint systems, and the solver's result — verdict and,
// through Tseitin's deterministic traversal-order variable allocation, the
// model — depends only on that structure, so replaying a stored verdict is
// byte-identical to re-solving.
//
// This is the layer that makes checking incremental: after a one-function
// edit shifts every instruction label in the program, the pointer-keyed
// QueryCache (per-pool, per-run) can not help, but the structural keys of
// all untouched threads' queries are unchanged and hit here. Only Sat
// (with model) and Unsat verdicts are stored; Unknown depends on the
// conflict budget and is never reused.
type VerdictStore struct {
	s cache.ByteStore
}

// DefaultVerdictEntries bounds an in-memory verdict store built with
// NewVerdictStore(0) (sized for daemon use).
const DefaultVerdictEntries = 1 << 16

// NewVerdictStore returns an empty in-memory store bounded to maxEntries
// (<= 0 selects DefaultVerdictEntries).
func NewVerdictStore(maxEntries int) *VerdictStore {
	if maxEntries <= 0 {
		maxEntries = DefaultVerdictEntries
	}
	return &VerdictStore{s: cache.New(maxEntries)}
}

// NewVerdictStoreOn returns a verdict store over an arbitrary
// content-addressed backend (e.g. a disk-backed tiered store), so
// structural verdicts survive a process restart unchanged.
func NewVerdictStoreOn(b cache.ByteStore) *VerdictStore {
	return &VerdictStore{s: b}
}

// Stats returns the cumulative hit and miss counts of Lookup.
func (v *VerdictStore) Stats() (hits, misses uint64) { return v.s.Stats() }

// Len returns the number of stored verdicts.
func (v *VerdictStore) Len() int { return v.s.Len() }

// Lookup returns the verdict stored under the structural key, with its
// portable model (nil for Unsat or model-free verdicts).
func (v *VerdictStore) Lookup(key cache.Key) (Result, []PortableAssign, bool) {
	b, ok := v.s.Get(key)
	if !ok {
		return Unknown, nil, false
	}
	res, model, ok := decodeVerdict(b)
	if !ok {
		return Unknown, nil, false
	}
	return res, model, true
}

// Store records a definite verdict under the structural key; Unknown is
// ignored. The model is canonicalized (sorted by atom encoding) before
// serialization so concurrent stores of one key are byte-identical.
func (v *VerdictStore) Store(key cache.Key, res Result, model []PortableAssign) {
	if res != Sat && res != Unsat {
		return
	}
	v.s.Put(key, encodeVerdict(res, model))
}

func encodeVerdict(res Result, model []PortableAssign) []byte {
	sorted := append([]PortableAssign(nil), model...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Atom < sorted[j].Atom })
	buf := []byte{byte(res)}
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	for _, a := range sorted {
		buf = binary.AppendUvarint(buf, uint64(len(a.Atom)))
		buf = append(buf, a.Atom...)
		if a.Val {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func decodeVerdict(b []byte) (Result, []PortableAssign, bool) {
	if len(b) < 2 {
		return Unknown, nil, false
	}
	res := Result(b[0])
	if res != Sat && res != Unsat {
		return Unknown, nil, false
	}
	rest := b[1:]
	n, used := binary.Uvarint(rest)
	if used <= 0 {
		return Unknown, nil, false
	}
	rest = rest[used:]
	// Each assignment consumes at least two bytes (length prefix + value),
	// so a count beyond len(rest)/2 can only come from garbage input —
	// reject it up front instead of looping toward the inevitable failure.
	// These bytes now also arrive from disk and snapshot archives, where
	// "parse defensively, never over-allocate" is part of the contract.
	if n > uint64(len(rest))/2 {
		return Unknown, nil, false
	}
	var model []PortableAssign
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(rest)
		// l >= len(rest)-used means the atom plus its value byte cannot
		// fit; phrased without l+1, which overflows on adversarial input.
		if used <= 0 || l >= uint64(len(rest)-used) {
			return Unknown, nil, false
		}
		rest = rest[used:]
		model = append(model, PortableAssign{
			Atom: string(rest[:l]),
			Val:  rest[l] == 1,
		})
		rest = rest[l+1:]
	}
	return res, model, true
}
