package smt

import "canary/internal/guard"

// Assert adds the guard formula f as a top-level constraint, converting it
// to CNF with the Tseitin transformation. Subformulas are memoized by
// pointer, so the structure sharing produced by guard constructors keeps
// the encoding small.
func (s *Solver) Assert(f *guard.Formula) {
	s.asserted = append(s.asserted, f)
	switch f.Kind() {
	case guard.KTrue:
		return
	case guard.KFalse:
		s.rootUnsat = true
		return
	case guard.KAnd:
		// Top-level conjunctions assert each conjunct directly, avoiding an
		// auxiliary variable for the root.
		for _, sub := range f.Subs() {
			s.assertTop(sub)
		}
		return
	}
	s.assertTop(f)
}

func (s *Solver) assertTop(f *guard.Formula) {
	switch f.Kind() {
	case guard.KTrue:
		return
	case guard.KFalse:
		s.rootUnsat = true
		return
	}
	l := s.tseitin(f)
	s.addClause([]lit{l})
}

// tseitin returns a literal equisatisfiably representing f.
func (s *Solver) tseitin(f *guard.Formula) lit {
	if l, ok := s.tseitinMemo[f]; ok {
		return l
	}
	var out lit
	switch f.Kind() {
	case guard.KTrue, guard.KFalse:
		// Encode constants with a fresh var pinned by a unit clause.
		v := s.newVar(0)
		out = mkLit(v, f.Kind() == guard.KFalse)
		s.addClause([]lit{mkLit(v, false)})
		if f.Kind() == guard.KFalse {
			out = mkLit(v, true)
		}
	case guard.KVar:
		out = mkLit(s.varFor(f.Atom()), false)
	case guard.KNot:
		out = s.tseitin(f.Subs()[0]).not()
	case guard.KAnd:
		subs := f.Subs()
		inner := make([]lit, len(subs))
		for i, sub := range subs {
			inner[i] = s.tseitin(sub)
		}
		a := mkLit(s.newVar(0), false)
		// a → s_i for each i; (⋀ s_i) → a.
		long := make([]lit, 0, len(inner)+1)
		long = append(long, a)
		for _, si := range inner {
			s.addClause([]lit{a.not(), si})
			long = append(long, si.not())
		}
		s.addClause(long)
		out = a
	case guard.KOr:
		subs := f.Subs()
		inner := make([]lit, len(subs))
		for i, sub := range subs {
			inner[i] = s.tseitin(sub)
		}
		a := mkLit(s.newVar(0), false)
		// s_i → a for each i; a → ⋁ s_i.
		long := make([]lit, 0, len(inner)+1)
		long = append(long, a.not())
		for _, si := range inner {
			s.addClause([]lit{si.not(), a})
			long = append(long, si)
		}
		s.addClause(long)
		out = a
	default:
		panic("smt: bad formula kind")
	}
	s.tseitinMemo[f] = out
	return out
}
