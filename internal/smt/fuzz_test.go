package smt

import (
	"bytes"
	"testing"
)

// FuzzDecodeVerdict hammers the verdict wire decoder with garbage. These
// bytes arrive from the persistent disk store and from imported snapshot
// archives, so the decoder must never panic (a crafted uvarint length
// once drove a slice-bounds overflow here), never over-allocate from a
// hostile count, and anything it accepts must re-encode canonically.
func FuzzDecodeVerdict(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(Sat), 0})
	f.Add(encodeVerdict(Unsat, nil))
	f.Add(encodeVerdict(Sat, []PortableAssign{
		{Atom: "o:1<2", Val: true},
		{Atom: "b:guard", Val: false},
	}))
	// The historical panic: one assignment whose atom length decodes to
	// 2^64-1, so the old `l+1` bounds check wrapped to zero.
	f.Add([]byte{byte(Sat), 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// Hostile count with no assignments behind it.
	f.Add([]byte{byte(Unsat), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		res, model, ok := decodeVerdict(b)
		if !ok {
			return
		}
		if res != Sat && res != Unsat {
			t.Fatalf("accepted verdict %v", res)
		}
		if len(model) > len(b) {
			t.Fatalf("decoded %d assignments from %d input bytes", len(model), len(b))
		}
		re := encodeVerdict(res, model)
		res2, model2, ok2 := decodeVerdict(re)
		if !ok2 || res2 != res || len(model2) != len(model) {
			t.Fatalf("re-encoding of accepted input does not decode back")
		}
		if !bytes.Equal(encodeVerdict(res2, model2), re) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}
