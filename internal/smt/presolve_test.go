package smt

import (
	"testing"

	"canary/internal/guard"
)

func TestPresolveConstants(t *testing.T) {
	pool := guard.NewPool()
	if res, _, ok := Presolve(pool, guard.True()); !ok || res != Sat {
		t.Fatalf("⊤: got (%v, %v)", res, ok)
	}
	if res, _, ok := Presolve(pool, guard.False()); !ok || res != Unsat {
		t.Fatalf("⊥: got (%v, %v)", res, ok)
	}
}

func TestPresolveUnitConjunction(t *testing.T) {
	pool := guard.NewPool()
	a, b := pool.Bool("a"), pool.Bool("b")
	f := guard.And(guard.Var(a), guard.Not(guard.Var(b)))
	res, m, ok := Presolve(pool, f)
	if !ok || res != Sat {
		t.Fatalf("a ∧ ¬b: got (%v, %v)", res, ok)
	}
	if v, set := m[a]; !set || !v {
		t.Errorf("model must force a=true: %v", m)
	}
	if v, set := m[b]; !set || v {
		t.Errorf("model must force b=false: %v", m)
	}
}

func TestPresolveUnitPropagationUnsat(t *testing.T) {
	pool := guard.NewPool()
	a, b := pool.Bool("a"), pool.Bool("b")
	// a ∧ (¬a ∨ b) ∧ ¬b: propagating a forces b, contradicting ¬b.
	f := guard.And(
		guard.Var(a),
		guard.Or(guard.Not(guard.Var(a)), guard.Var(b)),
		guard.Not(guard.Var(b)),
	)
	if res, _, ok := Presolve(pool, f); !ok || res != Unsat {
		t.Fatalf("got (%v, %v), want exact Unsat", res, ok)
	}
}

func TestPresolveOrderCycleUnsat(t *testing.T) {
	pool := guard.NewPool()
	o01, o12, o20 := pool.Order(0, 1), pool.Order(1, 2), pool.Order(2, 0)
	f := guard.And(guard.Var(o01), guard.Var(o12), guard.Var(o20))
	if res, _, ok := Presolve(pool, f); !ok || res != Unsat {
		t.Fatalf("order 3-cycle: got (%v, %v), want Unsat", res, ok)
	}
	// Negated atoms contribute reverse edges under totality: ¬(1<0) means
	// 0<1, so {0<1 via negation, 1<0} is again a cycle.
	o10 := pool.Order(1, 0)
	g := guard.And(guard.Not(guard.Var(o01)), guard.Not(guard.Var(o10)))
	if res, _, ok := Presolve(pool, g); !ok || res != Unsat {
		t.Fatalf("¬(0<1) ∧ ¬(1<0): got (%v, %v), want Unsat", res, ok)
	}
}

func TestPresolveOrderChainSat(t *testing.T) {
	pool := guard.NewPool()
	f := guard.And(
		guard.Var(pool.Order(0, 1)),
		guard.Var(pool.Order(1, 2)),
		guard.Var(pool.Order(0, 2)),
	)
	if res, _, ok := Presolve(pool, f); !ok || res != Sat {
		t.Fatalf("acyclic chain: got (%v, %v), want Sat", res, ok)
	}
}

func TestPresolveReflexiveOrderUnsat(t *testing.T) {
	pool := guard.NewPool()
	if res, _, ok := Presolve(pool, guard.Var(pool.Order(3, 3))); !ok || res != Unsat {
		t.Fatalf("O_3<3: got (%v, %v), want Unsat", res, ok)
	}
}

func TestPresolveDeclinesNonUnit(t *testing.T) {
	pool := guard.NewPool()
	a, b := pool.Bool("a"), pool.Bool("b")
	// A bare disjunction forces nothing; presolve must hand off to the
	// solver rather than guess.
	f := guard.Or(guard.Var(a), guard.Var(b))
	if res, _, ok := Presolve(pool, f); ok {
		t.Fatalf("a ∨ b decided by presolve as %v; must decline", res)
	}
}

// TestPresolveAgreesWithSolver cross-checks every presolve verdict that
// does fire against the full CDCL solver on a mix of formula shapes.
func TestPresolveAgreesWithSolver(t *testing.T) {
	pool := guard.NewPool()
	a, b, c := pool.Bool("a"), pool.Bool("b"), pool.Bool("c")
	o01, o12, o20 := pool.Order(0, 1), pool.Order(1, 2), pool.Order(2, 0)
	formulas := []*guard.Formula{
		guard.True(),
		guard.False(),
		guard.Var(a),
		guard.Not(guard.Var(a)),
		guard.And(guard.Var(a), guard.Var(b), guard.Not(guard.Var(c))),
		guard.And(guard.Var(a), guard.Or(guard.Not(guard.Var(a)), guard.Var(b))),
		guard.And(guard.Var(o01), guard.Var(o12), guard.Var(o20)),
		guard.And(guard.Var(o01), guard.Var(o12)),
		guard.And(guard.Not(guard.Var(o01)), guard.Var(o12)),
	}
	for i, f := range formulas {
		res, _, ok := Presolve(pool, f)
		if !ok {
			continue
		}
		s := New(pool)
		s.Assert(f)
		if want := s.Solve(); res != want {
			t.Errorf("formula %d: presolve says %v, solver says %v", i, res, want)
		}
	}
}
