package smt

// orderTheory decides conjunctions of strict-order literals over statement
// labels. Every assigned order atom contributes one directed edge (the
// forward edge when true, the reverse edge when false — over a strict total
// execution order ¬(i<j) ⟺ j<i for distinct statements). A literal set is
// consistent iff the edge multigraph is acyclic; a cycle yields the
// explanation (the set of literals whose edges form it) for CDCL learning.
//
// Edges are pushed and popped in lock step with the solver trail, so
// removal is LIFO and adjacency lists can be plain stacks.
type orderTheory struct {
	// edges maps a solver variable to its (from,to) labels.
	edges map[int]orderEdge
	// adj is the current adjacency: node label → outgoing edge entries.
	adj map[int][]edgeEntry
	// pushedFor remembers, per variable, whether it currently has an edge
	// installed (for removeLastFor).
	pushedFor map[int]int // var → node whose adj list holds its edge
}

type orderEdge struct{ from, to int }

type edgeEntry struct {
	to  int
	lit lit // the assigned literal that produced this edge
}

func newOrderTheory() *orderTheory {
	return &orderTheory{
		edges:     make(map[int]orderEdge),
		adj:       make(map[int][]edgeEntry),
		pushedFor: make(map[int]int),
	}
}

// register declares that solver variable v encodes the atom from<to.
func (t *orderTheory) register(v, from, to int) {
	t.edges[v] = orderEdge{from: from, to: to}
}

// addEdge installs u→w produced by literal l and returns the literals of a
// cycle if one appears, or nil. The returned slice includes l itself.
func (t *orderTheory) addEdge(u, w int, l lit) []lit {
	// Before committing, search for a path w ⇝ u; together with u→w it
	// would close a cycle.
	if path := t.findPath(w, u); path != nil {
		return append(path, l)
	}
	t.adj[u] = append(t.adj[u], edgeEntry{to: w, lit: l})
	t.pushedFor[l.v()] = u
	return nil
}

// removeLastFor pops the edge contributed by variable v, if any. Calls
// happen in exact reverse assignment order, so the edge is the last entry
// of its source's adjacency list.
func (t *orderTheory) removeLastFor(v int) {
	u, ok := t.pushedFor[v]
	if !ok {
		return
	}
	delete(t.pushedFor, v)
	lst := t.adj[u]
	t.adj[u] = lst[:len(lst)-1]
}

// findPath runs a DFS from src looking for dst and returns the literals of
// the edges along one such path (nil if unreachable). src==dst returns an
// empty, non-nil slice (a self-loop closes a cycle by itself).
func (t *orderTheory) findPath(src, dst int) []lit {
	if src == dst {
		return []lit{}
	}
	visited := map[int]bool{src: true}
	var lits []lit
	var dfs func(n int) bool
	dfs = func(n int) bool {
		for _, e := range t.adj[n] {
			if e.to == dst {
				lits = append(lits, e.lit)
				return true
			}
			if !visited[e.to] {
				visited[e.to] = true
				if dfs(e.to) {
					lits = append(lits, e.lit)
					return true
				}
			}
		}
		return false
	}
	if dfs(src) {
		return lits
	}
	return nil
}
