package smt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"canary/internal/guard"
)

// ParseDIMACS reads a CNF in (extended) DIMACS format and returns the atom
// pool and clause formulas ready for Assert. Besides the standard
// `p cnf <vars> <clauses>` form with integer literals, lines of the form
//
//	o <v> <i> <j>
//
// bind boolean variable v to the order atom O_i < O_j, exposing the
// solver's partial-order theory to external instances.
func ParseDIMACS(r io.Reader) (*guard.Pool, []*guard.Formula, error) {
	pool := guard.NewPool()
	atoms := make(map[int]guard.Atom)
	atomOf := func(v int) guard.Atom {
		if a, ok := atoms[v]; ok {
			return a
		}
		a := pool.Bool(fmt.Sprintf("x%d", v))
		atoms[v] = a
		return a
	}
	var formulas []*guard.Formula
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	declared := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, nil, fmt.Errorf("smt: bad problem line %q", line)
			}
			if _, err := strconv.Atoi(fields[2]); err != nil {
				return nil, nil, fmt.Errorf("smt: bad problem line %q", line)
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, nil, fmt.Errorf("smt: bad problem line %q", line)
			}
			declared = true
			continue
		case "o":
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("smt: bad order binding %q", line)
			}
			v, err1 := strconv.Atoi(fields[1])
			i, err2 := strconv.Atoi(fields[2])
			j, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil || v <= 0 {
				return nil, nil, fmt.Errorf("smt: bad order binding %q", line)
			}
			if _, dup := atoms[v]; dup {
				return nil, nil, fmt.Errorf("smt: variable %d bound twice", v)
			}
			atoms[v] = pool.Order(i, j)
			continue
		}
		if !declared {
			return nil, nil, fmt.Errorf("smt: clause before problem line: %q", line)
		}
		var lits []*guard.Formula
		for _, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil {
				return nil, nil, fmt.Errorf("smt: bad literal %q", f)
			}
			if n == 0 {
				break
			}
			v := n
			if v < 0 {
				v = -v
			}
			l := guard.Var(atomOf(v))
			if n < 0 {
				l = guard.Not(l)
			}
			lits = append(lits, l)
		}
		// An explicit "0"-only line is the empty clause: unsatisfiable.
		formulas = append(formulas, guard.Or(lits...))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !declared {
		return nil, nil, fmt.Errorf("smt: missing problem line")
	}
	return pool, formulas, nil
}

// WriteDIMACS renders clause formulas (each a disjunction of literals over
// pool atoms) in the extended DIMACS format ParseDIMACS accepts.
func WriteDIMACS(w io.Writer, pool *guard.Pool, formulas []*guard.Formula) error {
	// Assign DIMACS indices to atoms in first-appearance order.
	index := make(map[guard.Atom]int)
	var order []guard.Atom
	var clauses [][]int
	var visit func(f *guard.Formula, neg bool, cl *[]int) error
	visit = func(f *guard.Formula, neg bool, cl *[]int) error {
		switch f.Kind() {
		case guard.KVar:
			a := f.Atom()
			v, ok := index[a]
			if !ok {
				v = len(index) + 1
				index[a] = v
				order = append(order, a)
			}
			if neg {
				v = -v
			}
			*cl = append(*cl, v)
			return nil
		case guard.KNot:
			return visit(f.Subs()[0], !neg, cl)
		case guard.KOr:
			if neg {
				return fmt.Errorf("smt: cannot export negated disjunction")
			}
			for _, s := range f.Subs() {
				if err := visit(s, false, cl); err != nil {
					return err
				}
			}
			return nil
		case guard.KTrue, guard.KFalse:
			return fmt.Errorf("smt: constant inside a clause")
		}
		return fmt.Errorf("smt: formula is not clausal")
	}
	addClause := func(f *guard.Formula) error {
		if f.IsTrue() {
			return nil // vacuous clause
		}
		if f.IsFalse() {
			clauses = append(clauses, nil) // the empty clause
			return nil
		}
		var cl []int
		if err := visit(f, false, &cl); err != nil {
			return err
		}
		clauses = append(clauses, cl)
		return nil
	}
	for _, f := range formulas {
		if f.Kind() == guard.KAnd {
			for _, s := range f.Subs() {
				if err := addClause(s); err != nil {
					return err
				}
			}
			continue
		}
		if err := addClause(f); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", len(index), len(clauses)); err != nil {
		return err
	}
	for _, a := range order {
		if from, to, ok := pool.OrderAtom(a); ok {
			if _, err := fmt.Fprintf(w, "o %d %d %d\n", index[a], from, to); err != nil {
				return err
			}
		}
	}
	for _, cl := range clauses {
		for _, v := range cl {
			if _, err := fmt.Fprintf(w, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "0"); err != nil {
			return err
		}
	}
	return nil
}
