package smt

import (
	"runtime"
	"sort"
	"sync"

	"canary/internal/guard"
)

// CubeOptions configures the cube-and-conquer parallel solving strategy of
// §5.2 (Heule et al.'s cube-and-conquer adapted to Canary's queries).
type CubeOptions struct {
	// SplitAtoms is the number of atoms to case-split on; the formula is
	// partitioned into 2^SplitAtoms cubes.
	SplitAtoms int
	// Workers is the number of concurrent cube solvers; <=0 means one
	// worker per logical CPU, capped at the cube count.
	Workers int
	// MaxConflictsPerCube bounds each cube's search; <=0 means unbounded.
	MaxConflictsPerCube int64
}

// SolveCubeAndConquer decides the conjunction of formulas by splitting on
// the most frequently occurring atoms and solving the resulting cubes in
// parallel. The whole query is Sat iff some cube is Sat. If every cube is
// decided Unsat the query is Unsat; any Unknown cube with no Sat sibling
// makes the result Unknown.
func SolveCubeAndConquer(pool *guard.Pool, formulas []*guard.Formula, opt CubeOptions) Result {
	split := pickSplitAtoms(formulas, opt.SplitAtoms)
	if len(split) == 0 {
		s := New(pool)
		s.MaxConflicts = opt.MaxConflictsPerCube
		for _, f := range formulas {
			s.Assert(f)
		}
		return s.Solve()
	}
	nCubes := 1 << len(split)
	workers := opt.Workers
	if workers <= 0 {
		workers = minInt(nCubes, runtime.NumCPU())
	}

	type job struct{ mask int }
	jobs := make(chan job)
	results := make(chan Result, nCubes)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			assumps := guard.NewAssignment(0)
			for j := range jobs {
				s := New(pool)
				s.MaxConflicts = opt.MaxConflictsPerCube
				for _, f := range formulas {
					s.Assert(f)
				}
				assumps.Reset()
				for i, a := range split {
					assumps.Set(a, j.mask&(1<<i) != 0)
				}
				r := s.SolveAssumingAssignment(assumps)
				results <- r
				if r == Sat {
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for m := 0; m < nCubes; m++ {
			select {
			case jobs <- job{mask: m}:
			case <-stop:
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	sawUnknown := false
	decided := 0
	for {
		select {
		case r := <-results:
			decided++
			switch r {
			case Sat:
				return Sat
			case Unknown:
				sawUnknown = true
			}
			if decided == nCubes {
				if sawUnknown {
					return Unknown
				}
				return Unsat
			}
		case <-done:
			// Workers exited (early stop already returned Sat above, so
			// drain whatever is buffered).
			for decided < nCubes {
				select {
				case r := <-results:
					decided++
					if r == Sat {
						return Sat
					}
					if r == Unknown {
						sawUnknown = true
					}
				default:
					// Early termination without Sat cannot happen unless a
					// worker saw Sat; treat missing results as unknown.
					if sawUnknown {
						return Unknown
					}
					return Unsat
				}
			}
			if sawUnknown {
				return Unknown
			}
			return Unsat
		}
	}
}

// pickSplitAtoms chooses up to n atoms by descending occurrence count
// (ties broken by atom id for determinism).
func pickSplitAtoms(formulas []*guard.Formula, n int) []guard.Atom {
	if n <= 0 {
		return nil
	}
	counts := make(map[guard.Atom]int)
	for _, f := range formulas {
		for _, a := range f.Atoms(nil) {
			counts[a]++
		}
	}
	atoms := make([]guard.Atom, 0, len(counts))
	for a := range counts {
		atoms = append(atoms, a)
	}
	sort.Slice(atoms, func(i, j int) bool {
		if counts[atoms[i]] != counts[atoms[j]] {
			return counts[atoms[i]] > counts[atoms[j]]
		}
		return atoms[i] < atoms[j]
	})
	if len(atoms) > n {
		atoms = atoms[:n]
	}
	return atoms
}
