package smt

import (
	"context"
	"errors"
	"testing"

	"canary/internal/guard"
)

// TestPresolveContextCanceled pins the presolver's cancellation contract:
// an already-canceled context returns promptly with (Unknown, nil, false)
// and the context's own error — it never claims a verdict.
func TestPresolveContextCanceled(t *testing.T) {
	pool := guard.NewPool()
	a, b := pool.Bool("a"), pool.Bool("b")
	f := guard.And(guard.Var(a), guard.Or(guard.Not(guard.Var(a)), guard.Var(b)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, m, ok, err := PresolveContext(ctx, pool, f)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ok || res != Unknown || m != nil {
		t.Fatalf("canceled presolve claimed a verdict: (%v, %v, %v)", res, m, ok)
	}
}

// TestPresolveContextBackground asserts the context-free wrapper is
// unchanged by the cancellation plumbing.
func TestPresolveContextBackground(t *testing.T) {
	pool := guard.NewPool()
	res, _, ok, err := PresolveContext(context.Background(), pool, guard.True())
	if err != nil || !ok || res != Sat {
		t.Fatalf("⊤ under a live context: (%v, %v, %v)", res, ok, err)
	}
}
