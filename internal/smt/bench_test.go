package smt

import (
	"fmt"
	"testing"

	"canary/internal/guard"
)

// BenchmarkPresolve measures the pre-Tseitin fast path on a unit-heavy
// conjunction — the common shape of aggregated path guards. The dense
// guard.Assignment keeps propagation allocation-free until the Sat model
// materializes.
func BenchmarkPresolve(b *testing.B) {
	b.ReportAllocs()
	pool := guard.NewPool()
	lits := make([]*guard.Formula, 0, 24)
	for i := 0; i < 16; i++ {
		f := guard.Var(pool.Bool(fmt.Sprintf("b%d", i)))
		if i%3 == 0 {
			f = guard.Not(f)
		}
		lits = append(lits, f)
	}
	for i := 0; i < 8; i++ {
		lits = append(lits, guard.Var(pool.Order(i, i+1)))
	}
	f := guard.And(lits...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, _, ok := Presolve(pool, f); !ok || r != Sat {
			b.Fatal("presolve must decide the unit conjunction Sat")
		}
	}
}

// BenchmarkSolveAssumingAssignment measures assumption solving through the
// dense partial-assignment API the cube-and-conquer workers use, reusing
// one Assignment across solves the way a worker reuses it across cubes.
func BenchmarkSolveAssumingAssignment(b *testing.B) {
	b.ReportAllocs()
	pool := guard.NewPool()
	var atoms [8]guard.Atom
	for i := range atoms {
		atoms[i] = pool.Bool(fmt.Sprintf("x%d", i))
	}
	clauses := make([]*guard.Formula, 0, len(atoms))
	for i := range atoms {
		j := (i + 1) % len(atoms)
		clauses = append(clauses, guard.Or(guard.Var(atoms[i]), guard.Var(atoms[j])))
	}
	f := guard.And(clauses...)
	asn := guard.NewAssignment(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(pool)
		s.Assert(f)
		asn.Reset()
		asn.Set(atoms[0], i%2 == 0)
		asn.Set(atoms[3], true)
		if s.SolveAssumingAssignment(asn) != Sat {
			b.Fatal("assumption query must be Sat")
		}
	}
}
