package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalDecl declares a global memory object (an address-taken variable in
// the paper's O domain). Globals are reachable from every thread.
type GlobalDecl struct {
	Name string
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Pos    Pos
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	Position() Pos
	// Text renders the expression canonically; branch-condition atoms are
	// keyed on this rendering.
	Text() string
}

// AssignStmt is "lhs = rhs;" where rhs is any expression (covering the
// paper's v1 = v2, v1 = &v2, v1 = *v2, v1 = v2 binop v3 and call forms).
type AssignStmt struct {
	LHS string
	RHS Expr
	Pos Pos
}

// StoreStmt is "*ptr = val;" (whole-cell) or "ptr.f = val;" (field store,
// when Field is non-empty). Field sensitivity follows the paper's
// implementation, which distinguishes C struct fields.
type StoreStmt struct {
	Ptr, Val string
	Field    string
	Pos      Pos
}

// FreeStmt is "free(v);" — a source for use-after-free and double-free.
type FreeStmt struct {
	Var string
	Pos Pos
}

// PrintStmt is "print(*v);" — a pointer-dereference sink.
type PrintStmt struct {
	Var string
	Pos Pos
}

// SinkStmt is "sink(v);" — an information-leak sink for taint checking.
type SinkStmt struct {
	Var string
	Pos Pos
}

// IfStmt is structured branching. Else may be nil.
type IfStmt struct {
	Cond Cond
	Then *Block
	Else *Block
	Pos  Pos
}

// WhileStmt is a structured loop; the analyses bound it by unrolling
// (paper §3.1).
type WhileStmt struct {
	Cond Cond
	Body *Block
	Pos  Pos
}

// ForkStmt is "fork(t, f, args...);". Callee may be a function name or a
// variable holding a function value (resolved by Steensgaard's analysis).
type ForkStmt struct {
	Thread string
	Callee string
	Args   []string
	Pos    Pos
}

// JoinStmt is "join(t);".
type JoinStmt struct {
	Thread string
	Pos    Pos
}

// LockStmt is "lock(m);" where m names a lock object.
type LockStmt struct {
	Mutex string
	Pos   Pos
}

// UnlockStmt is "unlock(m);".
type UnlockStmt struct {
	Mutex string
	Pos   Pos
}

// WaitStmt is "wait(cv);" — blocks until some notify(cv) has happened
// (condition-variable semantics, the signal/notify extension of the
// paper's §9).
type WaitStmt struct {
	Cond string
	Pos  Pos
}

// NotifyStmt is "notify(cv);".
type NotifyStmt struct {
	Cond string
	Pos  Pos
}

// ReturnStmt is "return;" or "return v;".
type ReturnStmt struct {
	Value  string // empty when void
	HasVal bool
	Pos    Pos
}

// CallStmt is a call in statement position: "f(args);".
type CallStmt struct {
	Callee string
	Args   []string
	Pos    Pos
}

func (*AssignStmt) stmtNode() {}
func (*StoreStmt) stmtNode()  {}
func (*FreeStmt) stmtNode()   {}
func (*PrintStmt) stmtNode()  {}
func (*SinkStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ForkStmt) stmtNode()   {}
func (*JoinStmt) stmtNode()   {}
func (*LockStmt) stmtNode()   {}
func (*UnlockStmt) stmtNode() {}
func (*WaitStmt) stmtNode()   {}
func (*NotifyStmt) stmtNode() {}
func (*ReturnStmt) stmtNode() {}
func (*CallStmt) stmtNode()   {}

func (s *AssignStmt) Position() Pos { return s.Pos }
func (s *StoreStmt) Position() Pos  { return s.Pos }
func (s *FreeStmt) Position() Pos   { return s.Pos }
func (s *PrintStmt) Position() Pos  { return s.Pos }
func (s *SinkStmt) Position() Pos   { return s.Pos }
func (s *IfStmt) Position() Pos     { return s.Pos }
func (s *WhileStmt) Position() Pos  { return s.Pos }
func (s *ForkStmt) Position() Pos   { return s.Pos }
func (s *JoinStmt) Position() Pos   { return s.Pos }
func (s *LockStmt) Position() Pos   { return s.Pos }
func (s *UnlockStmt) Position() Pos { return s.Pos }
func (s *WaitStmt) Position() Pos   { return s.Pos }
func (s *NotifyStmt) Position() Pos { return s.Pos }
func (s *ReturnStmt) Position() Pos { return s.Pos }
func (s *CallStmt) Position() Pos   { return s.Pos }

// VarExpr references a top-level variable (or a function by name).
type VarExpr struct {
	Name string
	Pos  Pos
}

// NumExpr is an integer literal.
type NumExpr struct {
	Value int
	Pos   Pos
}

// LoadExpr is "*v" (whole-cell) or "v.f" (field load, when Field is
// non-empty).
type LoadExpr struct {
	Ptr   string
	Field string
	Pos   Pos
}

// AddrExpr is "&g" taking the address of a global object.
type AddrExpr struct {
	Name string
	Pos  Pos
}

// MallocExpr is "malloc()" — allocates a fresh abstract object per syntactic
// occurrence (per clone after context-sensitive inlining).
type MallocExpr struct {
	Pos Pos
}

// NullExpr is the null pointer constant — a source for null-deref checking.
type NullExpr struct {
	Pos Pos
}

// TaintExpr is "taint()" — an information source for leak checking.
type TaintExpr struct {
	Pos Pos
}

// BinExpr is "a op b" over top-level variables or literals (value level;
// used for taint propagation and conditions).
type BinExpr struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// CallExpr is "f(args)" in expression position. Callee may be a variable
// holding a function value.
type CallExpr struct {
	Callee string
	Args   []string
	Pos    Pos
}

func (*VarExpr) exprNode()    {}
func (*NumExpr) exprNode()    {}
func (*LoadExpr) exprNode()   {}
func (*AddrExpr) exprNode()   {}
func (*MallocExpr) exprNode() {}
func (*NullExpr) exprNode()   {}
func (*TaintExpr) exprNode()  {}
func (*BinExpr) exprNode()    {}
func (*CallExpr) exprNode()   {}

func (e *VarExpr) Position() Pos    { return e.Pos }
func (e *NumExpr) Position() Pos    { return e.Pos }
func (e *LoadExpr) Position() Pos   { return e.Pos }
func (e *AddrExpr) Position() Pos   { return e.Pos }
func (e *MallocExpr) Position() Pos { return e.Pos }
func (e *NullExpr) Position() Pos   { return e.Pos }
func (e *TaintExpr) Position() Pos  { return e.Pos }
func (e *BinExpr) Position() Pos    { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }

func (e *VarExpr) Text() string { return e.Name }
func (e *NumExpr) Text() string { return fmt.Sprintf("%d", e.Value) }
func (e *LoadExpr) Text() string {
	if e.Field != "" {
		return e.Ptr + "." + e.Field
	}
	return "*" + e.Ptr
}
func (e *AddrExpr) Text() string   { return "&" + e.Name }
func (e *MallocExpr) Text() string { return "malloc()" }
func (e *NullExpr) Text() string   { return "null" }
func (e *TaintExpr) Text() string  { return "taint()" }
func (e *BinExpr) Text() string {
	return e.L.Text() + e.Op + e.R.Text()
}
func (e *CallExpr) Text() string {
	return e.Callee + "(" + strings.Join(e.Args, ",") + ")"
}

// Cond is a branch condition: a boolean combination of opaque condition
// atoms. Atoms are keyed by their canonical text so that the same syntactic
// condition in different program points shares one atom (the θ of Fig. 2).
type Cond interface {
	condNode()
	Text() string
}

// CondAtom is an atomic condition: an identifier or a comparison.
type CondAtom struct {
	Txt string
}

// CondTrue and CondFalse are the constant conditions.
type CondTrue struct{}

// CondFalse is the constant false condition.
type CondFalse struct{}

// CondNot is "!c".
type CondNot struct{ C Cond }

// CondAnd is "a && b".
type CondAnd struct{ L, R Cond }

// CondOr is "a || b".
type CondOr struct{ L, R Cond }

func (*CondAtom) condNode()  {}
func (*CondTrue) condNode()  {}
func (*CondFalse) condNode() {}
func (*CondNot) condNode()   {}
func (*CondAnd) condNode()   {}
func (*CondOr) condNode()    {}

func (c *CondAtom) Text() string { return c.Txt }
func (*CondTrue) Text() string   { return "true" }
func (*CondFalse) Text() string  { return "false" }
func (c *CondNot) Text() string  { return "!(" + c.C.Text() + ")" }
func (c *CondAnd) Text() string  { return "(" + c.L.Text() + "&&" + c.R.Text() + ")" }
func (c *CondOr) Text() string   { return "(" + c.L.Text() + "||" + c.R.Text() + ")" }
