package lang

import "fmt"

// Lexer turns source text into tokens. Comments run from // to end of line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token. At end of input it returns TokEOF forever.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	pos := Pos{Line: lx.line, Col: lx.col}
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	lx.advance()
	two := func(next byte, withKind, aloneKind TokKind) (Token, error) {
		if lx.peekByte() == next {
			lx.advance()
			return Token{Kind: withKind, Text: string(c) + string(next), Pos: pos}, nil
		}
		return Token{Kind: aloneKind, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNeq, TokNot)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		return two('&', TokAndAnd, TokAmp)
	case '|':
		if lx.peekByte() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Text: "||", Pos: pos}, nil
		}
		return Token{}, fmt.Errorf("%s: unexpected character %q", pos, "|")
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Text: ".", Pos: pos}, nil
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

// Tokenize lexes all of src.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
