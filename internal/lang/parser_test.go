package lang

import (
	"strings"
	"testing"
)

// fig2Source is the motivating example of the paper (Fig. 2a).
const fig2Source = `
func main(a) {
  x = malloc();        // o1
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}

func thread1(y) {
  b = malloc();        // o2
  if (!theta1) {
    *y = b;
    free(b);
  }
}
`

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("func f(x) { y = *x; }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFunc, TokIdent, TokLParen, TokIdent, TokRParen,
		TokLBrace, TokIdent, TokAssign, TokStar, TokIdent, TokSemi,
		TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("== != <= >= && || < > ! = & * + -")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNeq, TokLe, TokGe, TokAndAnd, TokOrOr,
		TokLt, TokGt, TokNot, TokAssign, TokAmp, TokStar, TokPlus, TokMinus, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("x // trailing comment\ny")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("line tracking broken: %v", toks[1].Pos)
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("x = $;"); err == nil {
		t.Fatal("expected error for '$'")
	}
}

func TestParseFig2(t *testing.T) {
	prog, err := Parse(fig2Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("want 2 functions, got %d", len(prog.Funcs))
	}
	main := prog.Func("main")
	if main == nil || len(main.Params) != 1 || main.Params[0] != "a" {
		t.Fatalf("main malformed: %+v", main)
	}
	if len(main.Body.Stmts) != 4 {
		t.Fatalf("main should have 4 statements, got %d", len(main.Body.Stmts))
	}
	if _, ok := main.Body.Stmts[0].(*AssignStmt); !ok {
		t.Errorf("stmt 0 should be assign, got %T", main.Body.Stmts[0])
	}
	if _, ok := main.Body.Stmts[1].(*StoreStmt); !ok {
		t.Errorf("stmt 1 should be store, got %T", main.Body.Stmts[1])
	}
	fork, ok := main.Body.Stmts[2].(*ForkStmt)
	if !ok || fork.Thread != "t" || fork.Callee != "thread1" || len(fork.Args) != 1 {
		t.Errorf("fork malformed: %+v", fork)
	}
	ifs, ok := main.Body.Stmts[3].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 3 should be if, got %T", main.Body.Stmts[3])
	}
	if ifs.Cond.Text() != "theta1" {
		t.Errorf("cond text = %q", ifs.Cond.Text())
	}
	t1 := prog.Func("thread1")
	inner, ok := t1.Body.Stmts[1].(*IfStmt)
	if !ok {
		t.Fatalf("thread1 stmt 1 should be if")
	}
	if inner.Cond.Text() != "!(theta1)" {
		t.Errorf("negated cond text = %q", inner.Cond.Text())
	}
}

func TestParseGlobalsLocksLoops(t *testing.T) {
	src := `
global shared;
global mu;
func main() {
  p = &shared;
  lock(mu);
  *p = p;
  unlock(mu);
  i = 0;
  while (i < 10) {
    i = i + 1;
  }
  join(t);
  return;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("want 2 globals, got %d", len(prog.Globals))
	}
	body := prog.Func("main").Body.Stmts
	if _, ok := body[0].(*AssignStmt); !ok {
		t.Errorf("p = &shared should parse as assign")
	}
	if a := body[0].(*AssignStmt); a.RHS.Text() != "&shared" {
		t.Errorf("addr expr text = %q", a.RHS.Text())
	}
	if _, ok := body[1].(*LockStmt); !ok {
		t.Errorf("lock stmt missing")
	}
	if _, ok := body[3].(*UnlockStmt); !ok {
		t.Errorf("unlock stmt missing")
	}
	w, ok := body[5].(*WhileStmt)
	if !ok {
		t.Fatalf("while missing, got %T", body[5])
	}
	if w.Cond.Text() != "i<10" {
		t.Errorf("while cond = %q", w.Cond.Text())
	}
	if _, ok := body[6].(*JoinStmt); !ok {
		t.Errorf("join missing")
	}
	ret, ok := body[7].(*ReturnStmt)
	if !ok || ret.HasVal {
		t.Errorf("void return malformed: %+v", ret)
	}
}

func TestParseCallsAndExpressions(t *testing.T) {
	src := `
func helper(q) {
  return q;
}
func main() {
  v = helper(v0);
  helper(v);
  n = null;
  s = taint();
  sink(s);
  x = a + b;
  fp = helper;
  fork(t2, fp, x);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("main").Body.Stmts
	call := body[0].(*AssignStmt).RHS.(*CallExpr)
	if call.Callee != "helper" || len(call.Args) != 1 {
		t.Errorf("call expr malformed: %+v", call)
	}
	if _, ok := body[1].(*CallStmt); !ok {
		t.Errorf("call stmt missing")
	}
	if _, ok := body[2].(*AssignStmt).RHS.(*NullExpr); !ok {
		t.Errorf("null expr missing")
	}
	if _, ok := body[3].(*AssignStmt).RHS.(*TaintExpr); !ok {
		t.Errorf("taint expr missing")
	}
	if _, ok := body[4].(*SinkStmt); !ok {
		t.Errorf("sink stmt missing")
	}
	be, ok := body[5].(*AssignStmt).RHS.(*BinExpr)
	if !ok || be.Op != "+" {
		t.Errorf("binexpr malformed: %+v", body[5])
	}
	if _, ok := body[6].(*AssignStmt).RHS.(*VarExpr); !ok {
		t.Errorf("function value assignment should be var expr")
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
func main() {
  if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Func("main").Body.Stmts[0].(*IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatal("else-if not folded into else block")
	}
	inner, ok := ifs.Else.Stmts[0].(*IfStmt)
	if !ok || inner.Else == nil {
		t.Fatal("inner else-if malformed")
	}
}

func TestParseComplexConditions(t *testing.T) {
	src := `func main() { if (a && !b || c == 1) { x = 1; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cond := prog.Func("main").Body.Stmts[0].(*IfStmt).Cond
	or, ok := cond.(*CondOr)
	if !ok {
		t.Fatalf("top should be ||, got %T", cond)
	}
	and, ok := or.L.(*CondAnd)
	if !ok {
		t.Fatalf("left should be &&, got %T", or.L)
	}
	if _, ok := and.R.(*CondNot); !ok {
		t.Errorf("!b should be CondNot")
	}
	if atom, ok := or.R.(*CondAtom); !ok || atom.Txt != "c==1" {
		t.Errorf("comparison atom = %+v", or.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func",
		"func f( {",
		"func f() { x = ; }",
		"func f() { *x y; }",
		"func f() { if a { } }",
		"func f() { fork(); }",
		"global;",
		"func f() { y = x }", // missing semicolon
		"func f() { ",
		"stray",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseDuplicateFunction(t *testing.T) {
	_, err := Parse("func f() { }\nfunc f() { }")
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Fatalf("duplicate function not rejected: %v", err)
	}
}

func TestParseFieldAccess(t *testing.T) {
	src := `
func main() {
  rec = malloc();
  v = malloc();
  rec.data = v;
  w = rec.data;
  print(*w);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("main").Body.Stmts
	st, ok := body[2].(*StoreStmt)
	if !ok || st.Ptr != "rec" || st.Field != "data" || st.Val != "v" {
		t.Fatalf("field store malformed: %+v", body[2])
	}
	ld, ok := body[3].(*AssignStmt).RHS.(*LoadExpr)
	if !ok || ld.Ptr != "rec" || ld.Field != "data" {
		t.Fatalf("field load malformed: %+v", body[3])
	}
	if ld.Text() != "rec.data" {
		t.Errorf("field load text = %q", ld.Text())
	}
	// Plain deref still renders with a star.
	plain := &LoadExpr{Ptr: "p"}
	if plain.Text() != "*p" {
		t.Errorf("plain load text = %q", plain.Text())
	}
}

func TestParseFieldErrors(t *testing.T) {
	for _, src := range []string{
		"func f() { p. = v; }",
		"func f() { p.f v; }",
		"func f() { v = p.; }",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestCondTextStability(t *testing.T) {
	// The same syntactic condition in different functions must produce the
	// same canonical text (this keys the shared θ atoms).
	src := `
func f() { if (flag == 1) { x = 1; } }
func g() { if (flag == 1) { y = 1; } }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c1 := prog.Func("f").Body.Stmts[0].(*IfStmt).Cond.Text()
	c2 := prog.Func("g").Body.Stmts[0].(*IfStmt).Cond.Text()
	if c1 != c2 {
		t.Fatalf("same condition renders differently: %q vs %q", c1, c2)
	}
}
