package lang

import (
	"fmt"
	"strconv"
)

// Parse parses a complete program. The parse-stage fault-injection site
// fires in the pipeline runner's entry wrapper, not here, so Parse stays
// a pure function of its input.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		switch {
		case p.at(TokGlobal):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.at(TokFunc):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected 'func' or 'global', found %s", p.cur().Kind)
		}
	}
	seen := make(map[string]Pos)
	for _, f := range prog.Funcs {
		if prev, dup := seen[f.Name]; dup {
			return nil, fmt.Errorf("%s: function %q redeclared (previous at %s)", f.Pos, f.Name, prev)
		}
		seen[f.Name] = f.Pos
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token        { return p.toks[p.pos] }
func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s %q", k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(TokGlobal)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &GlobalDecl{Name: name.Text, Pos: kw.Pos}, nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	kw, _ := p.expect(TokFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(TokRParen) {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, id.Text)
		if p.at(TokComma) {
			p.next()
		} else {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Pos: kw.Pos}, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &Block{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokStar:
		return p.parseStore()
	case TokFree:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &FreeStmt{Var: v, Pos: kw.Pos}, p.semi()
	case TokPrint:
		kw := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokStar); err != nil {
			return nil, err
		}
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &PrintStmt{Var: id.Text, Pos: kw.Pos}, p.semi()
	case TokSink:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &SinkStmt{Var: v, Pos: kw.Pos}, p.semi()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFork:
		return p.parseFork()
	case TokJoin:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &JoinStmt{Thread: v, Pos: kw.Pos}, p.semi()
	case TokLock:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &LockStmt{Mutex: v, Pos: kw.Pos}, p.semi()
	case TokUnlock:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &UnlockStmt{Mutex: v, Pos: kw.Pos}, p.semi()
	case TokWait:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &WaitStmt{Cond: v, Pos: kw.Pos}, p.semi()
	case TokNotify:
		kw := p.next()
		v, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		return &NotifyStmt{Cond: v, Pos: kw.Pos}, p.semi()
	case TokReturn:
		kw := p.next()
		if p.at(TokSemi) {
			p.next()
			return &ReturnStmt{Pos: kw.Pos}, nil
		}
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: id.Text, HasVal: true, Pos: kw.Pos}, p.semi()
	case TokIdent:
		return p.parseAssignOrCall()
	}
	return nil, p.errf("unexpected %s %q at statement start", p.cur().Kind, p.cur().Text)
}

func (p *parser) semi() error {
	_, err := p.expect(TokSemi)
	return err
}

func (p *parser) parenIdent() (string, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return "", err
	}
	id, err := p.expect(TokIdent)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return "", err
	}
	return id.Text, nil
}

func (p *parser) parseStore() (Stmt, error) {
	star := p.next() // *
	ptr, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	val, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	return &StoreStmt{Ptr: ptr.Text, Val: val.Text, Pos: star.Pos}, p.semi()
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.at(TokElse) {
		p.next()
		if p.at(TokIf) {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = &Block{Stmts: []Stmt{inner}, Pos: inner.Position()}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func (p *parser) parseFork() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	tid, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	callee, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	st := &ForkStmt{Thread: tid.Text, Callee: callee.Text, Pos: kw.Pos}
	for p.at(TokComma) {
		p.next()
		arg, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st.Args = append(st.Args, arg.Text)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return st, p.semi()
}

func (p *parser) parseAssignOrCall() (Stmt, error) {
	id := p.next()
	if p.at(TokLParen) {
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &CallStmt{Callee: id.Text, Args: args, Pos: id.Pos}, p.semi()
	}
	if p.at(TokDot) {
		// Field store: "p.f = v;".
		p.next()
		field, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &StoreStmt{Ptr: id.Text, Field: field.Text, Val: val.Text, Pos: id.Pos}, p.semi()
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: id.Text, RHS: rhs, Pos: id.Pos}, p.semi()
}

func (p *parser) parseArgs() ([]string, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []string
	for !p.at(TokRParen) {
		a, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		args = append(args, a.Text)
		if p.at(TokComma) {
			p.next()
		} else {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parseExpr() (Expr, error) {
	switch p.cur().Kind {
	case TokStar:
		star := p.next()
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &LoadExpr{Ptr: id.Text, Pos: star.Pos}, nil
	case TokAmp:
		amp := p.next()
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &AddrExpr{Name: id.Text, Pos: amp.Pos}, nil
	case TokMalloc:
		kw := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &MallocExpr{Pos: kw.Pos}, nil
	case TokNull:
		kw := p.next()
		return &NullExpr{Pos: kw.Pos}, nil
	case TokTaint:
		kw := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &TaintExpr{Pos: kw.Pos}, nil
	case TokNumber:
		t := p.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("%s: bad number %q", t.Pos, t.Text)
		}
		return &NumExpr{Value: v, Pos: t.Pos}, nil
	case TokIdent:
		id := p.next()
		if p.at(TokLParen) {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Callee: id.Text, Args: args, Pos: id.Pos}, nil
		}
		if p.at(TokDot) {
			// Field load: "p.f".
			p.next()
			field, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &LoadExpr{Ptr: id.Text, Field: field.Text, Pos: id.Pos}, nil
		}
		left := Expr(&VarExpr{Name: id.Text, Pos: id.Pos})
		if op, ok := binOpText(p.cur().Kind); ok {
			p.next()
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: left, R: right, Pos: id.Pos}, nil
		}
		return left, nil
	}
	return nil, p.errf("unexpected %s %q in expression", p.cur().Kind, p.cur().Text)
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokIdent:
		id := p.next()
		return &VarExpr{Name: id.Text, Pos: id.Pos}, nil
	case TokNumber:
		t := p.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("%s: bad number %q", t.Pos, t.Text)
		}
		return &NumExpr{Value: v, Pos: t.Pos}, nil
	}
	return nil, p.errf("expected identifier or number, found %s", p.cur().Kind)
}

func binOpText(k TokKind) (string, bool) {
	switch k {
	case TokPlus:
		return "+", true
	case TokMinus:
		return "-", true
	case TokEq:
		return "==", true
	case TokNeq:
		return "!=", true
	case TokLt:
		return "<", true
	case TokGt:
		return ">", true
	case TokLe:
		return "<=", true
	case TokGe:
		return ">=", true
	}
	return "", false
}

// parseCond parses a condition with precedence ! > && > ||.
func (p *parser) parseCond() (Cond, error) { return p.parseCondOr() }

func (p *parser) parseCondOr() (Cond, error) {
	l, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		p.next()
		r, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		l = &CondOr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCondAnd() (Cond, error) {
	l, err := p.parseCondUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		p.next()
		r, err := p.parseCondUnary()
		if err != nil {
			return nil, err
		}
		l = &CondAnd{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCondUnary() (Cond, error) {
	switch p.cur().Kind {
	case TokNot:
		p.next()
		c, err := p.parseCondUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := c.(*CondNot); ok {
			return n.C, nil // !!c
		}
		return &CondNot{C: c}, nil
	case TokLParen:
		p.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return c, nil
	case TokTrue:
		p.next()
		return &CondTrue{}, nil
	case TokFalse:
		p.next()
		return &CondFalse{}, nil
	case TokIdent:
		id := p.next()
		if op, ok := binOpText(p.cur().Kind); ok && isCmp(op) {
			p.next()
			rhs, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &CondAtom{Txt: id.Text + op + rhs.Text()}, nil
		}
		return &CondAtom{Txt: id.Text}, nil
	}
	return nil, p.errf("unexpected %s in condition", p.cur().Kind)
}

func isCmp(op string) bool {
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		return true
	}
	return false
}
