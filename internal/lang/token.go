// Package lang implements the frontend for the concurrent programming
// language of the paper's Fig. 3: a call-by-value language with the four
// canonical pointer operations (address, copy, load, store), structured
// control flow, and fork/join (plus the lock/unlock extension listed as
// future work in §9). Programs in this language are what Canary analyzes;
// the paper obtains the same shape of program from LLVM IR.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokFunc
	TokGlobal
	TokIf
	TokElse
	TokWhile
	TokFork
	TokJoin
	TokLock
	TokUnlock
	TokWait
	TokNotify
	TokFree
	TokMalloc
	TokNull
	TokPrint
	TokSink
	TokTaint
	TokReturn
	TokTrue
	TokFalse

	// Punctuation and operators.
	TokAssign // =
	TokStar   // *
	TokAmp    // &
	TokNot    // !
	TokAndAnd // &&
	TokOrOr   // ||
	TokEq     // ==
	TokNeq    // !=
	TokLt     // <
	TokGt     // >
	TokLe     // <=
	TokGe     // >=
	TokPlus   // +
	TokMinus  // -
	TokLParen // (
	TokRParen // )
	TokLBrace // {
	TokRBrace // }
	TokComma  // ,
	TokSemi   // ;
	TokDot    // .
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokFunc: "func", TokGlobal: "global", TokIf: "if", TokElse: "else",
	TokWhile: "while", TokFork: "fork", TokJoin: "join", TokLock: "lock",
	TokUnlock: "unlock", TokWait: "wait", TokNotify: "notify",
	TokFree: "free", TokMalloc: "malloc",
	TokNull: "null", TokPrint: "print", TokSink: "sink", TokTaint: "taint",
	TokReturn: "return", TokTrue: "true", TokFalse: "false",
	TokAssign: "=", TokStar: "*", TokAmp: "&", TokNot: "!",
	TokAndAnd: "&&", TokOrOr: "||", TokEq: "==", TokNeq: "!=",
	TokLt: "<", TokGt: ">", TokLe: "<=", TokGe: ">=",
	TokPlus: "+", TokMinus: "-", TokLParen: "(", TokRParen: ")",
	TokLBrace: "{", TokRBrace: "}", TokComma: ",", TokSemi: ";",
	TokDot: ".",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"func": TokFunc, "global": TokGlobal, "if": TokIf, "else": TokElse,
	"while": TokWhile, "fork": TokFork, "join": TokJoin, "lock": TokLock,
	"unlock": TokUnlock, "wait": TokWait, "notify": TokNotify,
	"free": TokFree, "malloc": TokMalloc,
	"null": TokNull, "print": TokPrint, "sink": TokSink, "taint": TokTaint,
	"return": TokReturn, "true": TokTrue, "false": TokFalse,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}
