package lang

import "strings"

// StripLineComment removes a trailing "//" line comment from one source
// line, returning the code part. It is the textual twin of the lexer's
// skipSpaceAndComments rule — the input language has no string or character
// literals, so "//" unconditionally starts a comment wherever it appears.
// Text-level canonicalizers (canary.SubmissionKey's shared canonicalizer in
// internal/digest) use this helper so their notion of "comment" can never
// drift from the tokenizer's.
func StripLineComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		return line[:i]
	}
	return line
}
