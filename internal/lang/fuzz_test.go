package lang

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the parser with arbitrary byte strings, seeded from
// the whole analysis corpus. The contract under fuzzing is total: every
// input either parses or returns an error — the parser must never panic,
// hang, or accept something it cannot lower. Crashing inputs found by
// the fuzzer are checked into testdata/fuzz and replayed as ordinary
// regression tests by go test.
func FuzzParse(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.cn"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range corpus {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("func main() { }")
	f.Add("global g;\nfunc main() { lock(g); unlock(g); }")
	f.Add("func main() { if (c) { free(p); } }")
	f.Add("") // empty input
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Error("Parse returned (nil, nil)")
		}
	})
}
