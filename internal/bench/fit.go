// Package bench is the evaluation harness: it measures analysis time and
// peak memory, fits scalability curves (the least-squares fits with R² the
// paper reports in Fig. 8), and regenerates the paper's tables and figures
// as text (Fig. 7a/7b, Fig. 8, Table 1).
package bench

import "math"

// FitLinear computes the least-squares line y = slope·x + intercept over
// the points and the coefficient of determination R² (the paper reports,
// e.g., time ≈ 0.0326·KLoC + 25.4 with R² = 0.83). It returns R² = 1 for a
// perfect fit and 0 when the fit explains nothing; fewer than two points
// yield zeros.
func FitLinear(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	// R² = 1 - SS_res/SS_tot.
	var ssRes float64
	for i := range xs {
		e := ys[i] - (slope*xs[i] + intercept)
		ssRes += e * e
	}
	r2 = 1 - ssRes/syy
	if math.IsNaN(r2) || math.IsInf(r2, 0) {
		r2 = 0
	}
	return slope, intercept, r2
}
