package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/fleet"
	"canary/internal/server"
	"canary/internal/workload"
)

// FleetNodeRun is one fleet size's measurements: a cold corpus batch
// through the router, a warm repeat, and a peer-tier probe against a
// single worker that owns only its shard.
type FleetNodeRun struct {
	Nodes int `json:"nodes"`
	// Cold batch: every item computed somewhere in the fleet.
	ColdWall    time.Duration `json:"cold_wall_ns"`
	ItemsPerSec float64       `json:"items_per_sec"`
	// Warm batch: the same corpus again; every item should be served from
	// its owner's cache.
	WarmWall   time.Duration `json:"warm_wall_ns"`
	WarmCached int           `json:"warm_cached"`
	// The peer-tier probe sends the whole corpus directly to worker 0,
	// which owns only ~1/nodes of the keys: everything else must arrive
	// via peer fetches from the shard owners instead of being recomputed.
	ProbeCached     int    `json:"probe_cached"`
	ProbeOwned      int    `json:"probe_owned"`
	PeerFetches     uint64 `json:"peer_fetches"`
	PeerHits        uint64 `json:"peer_hits"`
	PeerJobsServed  uint64 `json:"peer_jobs_served"`
	AcceptedPerNode []int  `json:"accepted_per_node"`
	// Identical: every item's findings are byte-identical to the direct
	// in-process library run — routing must be invisible in the output.
	Identical bool              `json:"identical"`
	Router    fleet.RouterStats `json:"router"`
}

// FleetResult is the horizontal-scale experiment: the same corpus pushed
// through fleets of increasing size, plus a cross-node dedup burst.
type FleetResult struct {
	Lines int            `json:"lines"`
	Items int            `json:"items"`
	Runs  []FleetNodeRun `json:"runs"`
	// The dedup burst fires concurrent identical submissions at the
	// largest fleet's router: RouterDeduped counts the ones answered by
	// the router's in-flight table, WorkerCoalesced the ones that still
	// reached a worker and joined its live job there.
	DedupBurst      int    `json:"dedup_burst"`
	RouterDeduped   uint64 `json:"router_deduped"`
	WorkerCoalesced uint64 `json:"worker_coalesced"`
	// AllIdentical: every fleet size produced the same findings as the
	// direct library run, for every item.
	AllIdentical bool `json:"all_identical"`
}

// fleetOptions is the analysis configuration of every fleet worker and
// of the direct baseline. Workers=1 keeps each analysis single-threaded
// so throughput scaling across node counts reflects the fleet, not the
// scheduler fighting itself over cores (the determinism contract keeps
// the output independent of it either way).
func fleetOptions() canary.Options {
	opt := canary.DefaultOptions()
	opt.Workers = 1
	return opt
}

// RunFleetChild is the body of a -fleet-child process: one canaryd
// worker on addr — peer-aware when peers is non-empty (static fleet),
// or gossiping when join is non-empty (dynamic fleet, the chaos
// harness's mode). A non-empty dir gives the worker a persistent disk
// store, so a killed-and-restarted worker comes back warm. The first
// stdout line is "fleet-child listening on <addr>"; the process serves
// until killed. Binding retries briefly: the parent pre-allocates
// ports by listen-and-close, and this child may race the close.
func RunFleetChild(addr, peers, self, join string, gossip time.Duration, dir string, conc int) int {
	splitURLs := func(s string) (out []string) {
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	cfg := server.Config{
		MaxConcurrent: conc,
		QueueDepth:    api.MaxBatchItems,
		Options:       fleetOptions(),
		NodeID:        addr,
		CacheDir:      dir,
	}
	if join != "" {
		cfg.Join = splitURLs(join)
		cfg.Advertise = self
		cfg.GossipInterval = gossip
	} else {
		cfg.Peers = splitURLs(peers)
		cfg.PeerSelf = self
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet-child:", err)
		return 2
	}
	var ln net.Listener
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet-child:", err)
		return 2
	}
	fmt.Printf("fleet-child listening on %s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "fleet-child:", err)
		return 2
	}
	return 0
}

// fleetWorkerProc is one spawned child daemon.
type fleetWorkerProc struct {
	url string
	cmd *exec.Cmd
}

// spawnFleet pre-allocates n loopback ports, starts n -fleet-child
// processes wired to each other as peers, and waits for each to report
// its listening line.
func spawnFleet(exe string, n, conc int) ([]fleetWorkerProc, func(), error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	urls := make([]string, n)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")

	procs := make([]fleetWorkerProc, 0, n)
	kill := func() {
		for _, p := range procs {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-fleet-child",
			"-fleet-addr", addrs[i],
			"-fleet-peers", peers,
			"-fleet-self", urls[i],
			"-fleet-conc", fmt.Sprint(conc))
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			kill()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			kill()
			return nil, nil, err
		}
		procs = append(procs, fleetWorkerProc{url: urls[i], cmd: cmd})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil || !strings.Contains(line, "listening on") {
			kill()
			return nil, nil, fmt.Errorf("fleet child %d did not come up: %q (%v)", i, line, err)
		}
		go io.Copy(io.Discard, stdout)
	}
	return procs, kill, nil
}

// scrapeCounter reads one plain-text counter from a /metrics page.
func scrapeCounter(url, name string) uint64 {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v uint64
		if _, err := fmt.Sscanf(sc.Text(), name+" %d", &v); err == nil {
			return v
		}
	}
	return 0
}

// postFleetBatch submits items as one batch to url and returns the
// per-item responses.
func postFleetBatch(hc *http.Client, url string, items []api.AnalyzeItem) (*api.BatchResponse, error) {
	body, err := json.Marshal(api.AnalyzeRequest{Items: items})
	if err != nil {
		return nil, err
	}
	resp, err := hc.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("batch to %s: status %d: %s", url, resp.StatusCode, b)
	}
	var br api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	return &br, nil
}

// findingsOf extracts the compacted Reports array from a serialized
// result: the determinism contract pins these bytes, timings vary.
func findingsOf(result json.RawMessage) (string, error) {
	var m struct {
		Reports json.RawMessage `json:"Reports"`
	}
	if err := json.Unmarshal(result, &m); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, m.Reports); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// RunFleet measures horizontal scale: the same corpus of items pushed
// through fleets of every size in nodes (each fleet freshly spawned from
// exe, workers single-threaded), with the findings of every item checked
// byte-identical against a direct in-process run. The peer cache tier is
// probed by pushing the warm corpus at one worker directly, and a
// concurrent identical-submission burst exercises both dedup layers.
func (e *Experiments) RunFleet(spec workload.Spec, items int, nodes []int, exe string) (FleetResult, error) {
	if items <= 0 {
		items = 12
	}
	if len(nodes) == 0 {
		nodes = []int{1, 2, 4}
	}
	res := FleetResult{Lines: spec.Lines, Items: items, AllIdentical: true}

	// The corpus: one generated subject plus distinct padding so every
	// item has its own content address but comparable cost.
	base := workload.Generate(spec)
	corpus := make([]api.AnalyzeItem, items)
	for i := range corpus {
		corpus[i] = api.AnalyzeItem{
			Source: fmt.Sprintf("%s\nfunc fleetpad%d() { p%d = malloc(); }", base, i, i),
		}
	}

	// Direct baseline: the library, in this process, same options.
	e.logf("  fleet direct baseline: %d items\n", items)
	direct := make([]string, items)
	for i, it := range corpus {
		r, err := canary.Analyze(it.Source, fleetOptions())
		if err != nil {
			return res, fmt.Errorf("direct baseline item %d: %w", i, err)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			return res, err
		}
		if direct[i], err = findingsOf(raw); err != nil {
			return res, err
		}
	}

	hc := &http.Client{Timeout: 10 * time.Minute}
	for _, n := range nodes {
		run := FleetNodeRun{Nodes: n, Identical: true}
		procs, kill, err := spawnFleet(exe, n, 1)
		if err != nil {
			return res, err
		}
		urls := make([]string, n)
		for i, p := range procs {
			urls[i] = p.url
		}
		opts := fleetOptions()
		rt, err := fleet.NewRouter(fleet.RouterConfig{Workers: urls, BaseOptions: &opts})
		if err != nil {
			kill()
			return res, err
		}
		routerURL, stopRouter, err := serveRouter(rt)
		if err != nil {
			rt.Close()
			kill()
			return res, err
		}

		fail := func(err error) (FleetResult, error) {
			stopRouter()
			rt.Close()
			kill()
			return res, err
		}

		// Cold corpus through the router.
		t0 := time.Now()
		cold, err := postFleetBatch(hc, routerURL, corpus)
		if err != nil {
			return fail(err)
		}
		run.ColdWall = time.Since(t0)
		run.ItemsPerSec = float64(items) / run.ColdWall.Seconds()
		if cold.Failed != 0 {
			return fail(fmt.Errorf("%d-node cold batch: %d items failed", n, cold.Failed))
		}
		for i, it := range cold.Items {
			f, err := findingsOf(it.Result)
			if err != nil {
				return fail(fmt.Errorf("%d-node cold item %d: %w", n, i, err))
			}
			if f != direct[i] {
				run.Identical = false
				res.AllIdentical = false
			}
		}
		e.logf("  fleet %d-node cold: %v (%.1f items/s, identical=%v)\n",
			n, run.ColdWall.Round(time.Millisecond), run.ItemsPerSec, run.Identical)

		// Warm repeat: every item served from its owner's cache.
		t0 = time.Now()
		warm, err := postFleetBatch(hc, routerURL, corpus)
		if err != nil {
			return fail(err)
		}
		run.WarmWall = time.Since(t0)
		for _, it := range warm.Items {
			if it.Cached {
				run.WarmCached++
			}
		}

		// Peer-tier probe: the whole corpus straight at worker 0, which
		// owns only its shard. Owned items are local warm hits; the rest
		// must be fetched from their shard owners, not recomputed.
		for _, it := range corpus {
			key := canary.SubmissionKey(it.Source, fleetOptions())
			if rt.Ring().Owner(key) == urls[0] {
				run.ProbeOwned++
			}
		}
		probe, err := postFleetBatch(hc, urls[0], corpus)
		if err != nil {
			return fail(err)
		}
		for _, it := range probe.Items {
			if it.Cached {
				run.ProbeCached++
			}
		}
		run.PeerFetches = scrapeCounter(urls[0], "canaryd_peer_fetches_total")
		run.PeerHits = scrapeCounter(urls[0], "canaryd_peer_hits_total")
		run.PeerJobsServed = scrapeCounter(urls[0], "canaryd_peer_jobs_served_total")
		for _, u := range urls {
			run.AcceptedPerNode = append(run.AcceptedPerNode,
				int(scrapeCounter(u, "canaryd_jobs_accepted_total")))
		}
		e.logf("  fleet %d-node probe: %d/%d cached at one node (owns %d, %d peer hits)\n",
			n, run.ProbeCached, items, run.ProbeOwned, run.PeerHits)

		// On the largest fleet: the cross-node dedup burst, a fresh key
		// fired concurrently at the router.
		if n == nodes[len(nodes)-1] {
			burst := 6
			fresh := base + "\nfunc fleetburst() { q = malloc(); }"
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					body, _ := json.Marshal(api.AnalyzeRequest{Source: fresh})
					resp, err := hc.Post(routerURL+"/v1/analyze", "application/json", bytes.NewReader(body))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			wg.Wait()
			res.DedupBurst = burst
			res.RouterDeduped = rt.Stats().Deduped
			for _, u := range urls {
				res.WorkerCoalesced += scrapeCounter(u, "canaryd_inflight_coalesced_total")
			}
			e.logf("  fleet dedup burst: %d submissions, %d router-deduped, %d worker-coalesced\n",
				burst, res.RouterDeduped, res.WorkerCoalesced)
		}

		run.Router = rt.Stats()
		stopRouter()
		rt.Close()
		kill()
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// serveRouter puts a router handler on a loopback listener.
func serveRouter(rt *fleet.Router) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// PrintFleet renders the fleet experiment as a text table.
func PrintFleet(w io.Writer, res FleetResult) {
	fmt.Fprintf(w, "Fleet scale-out (%d items of ~%d lines, single-threaded workers)\n",
		res.Items, res.Lines)
	fmt.Fprintf(w, "%-6s %12s %10s %12s %14s %12s %10s\n",
		"nodes", "cold", "items/s", "warm", "probe-cached", "peer-hits", "identical")
	for _, r := range res.Runs {
		fmt.Fprintf(w, "%-6d %12v %10.1f %12v %11d/%-2d %12d %10v\n",
			r.Nodes, r.ColdWall.Round(time.Millisecond), r.ItemsPerSec,
			r.WarmWall.Round(time.Millisecond), r.ProbeCached, res.Items,
			r.PeerHits, r.Identical)
	}
	fmt.Fprintf(w, "dedup burst: %d identical submissions -> %d router-deduped, %d worker-coalesced\n",
		res.DedupBurst, res.RouterDeduped, res.WorkerCoalesced)
	fmt.Fprintf(w, "all findings identical to direct run: %v\n", res.AllIdentical)
}
