package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"canary/internal/baseline"
	"canary/internal/core"
	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/workload"
)

// ToolRun is one tool's cost and report outcome on one subject.
type ToolRun struct {
	BuildTime time.Duration
	BuildMem  uint64
	CheckTime time.Duration
	Reports   int
	TPs       int
	FPs       int
	TimedOut  bool
}

// FPRate returns the false-positive rate in percent (0 when no reports).
func (t ToolRun) FPRate() float64 {
	if t.Reports == 0 {
		return 0
	}
	return 100 * float64(t.FPs) / float64(t.Reports)
}

// SubjectResult is one catalogue subject's full comparison row.
type SubjectResult struct {
	Name   string
	KLoC   float64
	Lines  int
	Saber  ToolRun
	Fsam   ToolRun
	Canary ToolRun
	// Paper columns for side-by-side printing (-1 = NA).
	PaperSaberReports, PaperFsamReports, PaperCanaryReports, PaperCanaryFPs int
}

// Experiments drives the evaluation.
type Experiments struct {
	// Timeout bounds each baseline's VFG construction (the paper's 12 h,
	// scaled to the subject sizes in use).
	Timeout time.Duration
	// Checker is the property used for report counting (the paper checks
	// inter-thread use-after-free in §7.2).
	Checker string
	// Out receives progress lines; nil silences them.
	Out io.Writer
}

func (e *Experiments) logf(format string, args ...interface{}) {
	if e.Out != nil {
		fmt.Fprintf(e.Out, format, args...)
	}
}

func (e *Experiments) checker() string {
	if e.Checker == "" {
		return core.CheckUAF
	}
	return e.Checker
}

// lowerSubject generates and lowers a subject (outside any measured
// region: the paper measures analysis cost, not compilation).
func lowerSubject(spec workload.Spec) (*ir.Program, error) {
	src := workload.Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("workload %s does not parse: %w", spec.Name, err)
	}
	return ir.Lower(ast, ir.DefaultOptions())
}

// RunSubject measures all three tools on one subject: VFG construction
// cost (Fig. 7) and bug reports with ground-truth classification (Table 1).
func (e *Experiments) RunSubject(p workload.Project) (SubjectResult, error) {
	res := SubjectResult{
		Name: p.Name, KLoC: p.KLoC, Lines: p.Lines,
		PaperSaberReports:  p.PaperSaberReports,
		PaperFsamReports:   p.PaperFsamReports,
		PaperCanaryReports: p.PaperCanaryReports,
		PaperCanaryFPs:     p.PaperCanaryFPs,
	}

	// Baselines.
	for _, tool := range []baseline.Tool{baseline.Saber{}, baseline.Fsam{}} {
		prog, err := lowerSubject(p.Spec)
		if err != nil {
			return res, err
		}
		run, err := e.runBaseline(tool, prog)
		if err != nil {
			return res, err
		}
		if tool.Name() == "saber" {
			res.Saber = run
		} else {
			res.Fsam = run
		}
		e.logf("  %-12s %-6s build=%-12v mem=%-8s reports=%d timeout=%v\n",
			p.Name, tool.Name(), run.BuildTime.Round(time.Millisecond),
			fmtBytes(run.BuildMem), run.Reports, run.TimedOut)
	}

	// Canary.
	prog, err := lowerSubject(p.Spec)
	if err != nil {
		return res, err
	}
	run, err := e.runCanary(prog)
	if err != nil {
		return res, err
	}
	res.Canary = run
	e.logf("  %-12s canary build=%-12v mem=%-8s reports=%d (tp=%d fp=%d)\n",
		p.Name, run.BuildTime.Round(time.Millisecond), fmtBytes(run.BuildMem),
		run.Reports, run.TPs, run.FPs)
	return res, nil
}

func (e *Experiments) runBaseline(tool baseline.Tool, prog *ir.Program) (ToolRun, error) {
	var run ToolRun
	timeout := e.Timeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var result *baseline.Result
	m, err := Measure(func() error {
		var berr error
		result, berr = tool.BuildVFG(ctx, prog)
		return berr
	})
	run.BuildTime = m.Time
	run.BuildMem = m.PeakBytes
	if err != nil {
		run.TimedOut = true
		return run, nil // NA row, like the paper's timeouts
	}
	t0 := time.Now()
	reports := baseline.CheckReachability(result.G, e.checker())
	run.CheckTime = time.Since(t0)
	run.Reports = len(reports)
	for _, r := range reports {
		if workload.TruePositive(prog.Inst(r.Source).Fn) {
			run.TPs++
		} else {
			run.FPs++
		}
	}
	return run, nil
}

func (e *Experiments) runCanary(prog *ir.Program) (ToolRun, error) {
	var run ToolRun
	var b *core.Builder
	m, err := Measure(func() error {
		b = core.Build(prog, core.DefaultBuild())
		return nil
	})
	if err != nil {
		return run, err
	}
	run.BuildTime = m.Time
	run.BuildMem = m.PeakBytes
	opt := core.DefaultCheck()
	opt.Checkers = []string{e.checker()}
	t0 := time.Now()
	reports, _ := b.Check(opt)
	run.CheckTime = time.Since(t0)
	run.Reports = len(reports)
	for _, r := range reports {
		if workload.TruePositive(r.Source.Fn) {
			run.TPs++
		} else {
			run.FPs++
		}
	}
	return run, nil
}

// RunAll measures every catalogue subject.
func (e *Experiments) RunAll(projects []workload.Project) ([]SubjectResult, error) {
	out := make([]SubjectResult, 0, len(projects))
	for _, p := range projects {
		e.logf("subject %s (%.0f KLoC scaled to %d lines)\n", p.Name, p.KLoC, p.Lines)
		r, err := e.RunSubject(p)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig8Point is one size-sweep observation of the whole Canary pipeline.
type Fig8Point struct {
	Lines   int
	KLoC    float64
	Time    time.Duration
	PeakMem uint64
	Reports int
}

// Fig8Result carries the sweep and the linear fits the paper reports.
type Fig8Result struct {
	Points []Fig8Point
	// TimeSlope is ms per KLoC; MemSlope is bytes per KLoC.
	TimeSlope, TimeIntercept, TimeR2 float64
	MemSlope, MemIntercept, MemR2    float64
}

// RunFig8 sweeps Canary's full pipeline (VFG construction + path-sensitive
// checking) over increasing program sizes and fits time and memory against
// size, reproducing the near-linear scaling of Fig. 8.
func (e *Experiments) RunFig8(specs []workload.Spec) (Fig8Result, error) {
	var res Fig8Result
	for _, spec := range specs {
		prog, err := lowerSubject(spec)
		if err != nil {
			return res, err
		}
		var reports int
		m, err := Measure(func() error {
			b := core.Build(prog, core.DefaultBuild())
			opt := core.DefaultCheck()
			opt.Checkers = []string{e.checker()}
			rs, _ := b.Check(opt)
			reports = len(rs)
			return nil
		})
		if err != nil {
			return res, err
		}
		pt := Fig8Point{
			Lines: spec.Lines, KLoC: float64(spec.Lines) / 1000,
			Time: m.Time, PeakMem: m.PeakBytes, Reports: reports,
		}
		res.Points = append(res.Points, pt)
		e.logf("  sweep %6d lines: time=%v mem=%s reports=%d\n",
			pt.Lines, pt.Time.Round(time.Millisecond), fmtBytes(pt.PeakMem), reports)
	}
	xs := make([]float64, len(res.Points))
	ts := make([]float64, len(res.Points))
	ms := make([]float64, len(res.Points))
	for i, p := range res.Points {
		xs[i] = p.KLoC
		ts[i] = float64(p.Time.Milliseconds())
		ms[i] = float64(p.PeakMem)
	}
	res.TimeSlope, res.TimeIntercept, res.TimeR2 = FitLinear(xs, ts)
	res.MemSlope, res.MemIntercept, res.MemR2 = FitLinear(xs, ms)
	return res, nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
