package bench

import (
	"runtime"
	"sync"
	"time"
)

// Measurement is one cost observation.
type Measurement struct {
	Time time.Duration
	// PeakBytes is the observed peak heap growth while f ran (sampled).
	PeakBytes uint64
}

// Measure runs f and samples heap usage at ~1 ms resolution to estimate the
// peak memory the run needed beyond the pre-run baseline. A GC runs before
// the measurement so prior experiments do not contaminate the baseline.
func Measure(f func() error) (Measurement, error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var peak uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > base.HeapAlloc && ms.HeapAlloc-base.HeapAlloc > peak {
					peak = ms.HeapAlloc - base.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	// Final sample in case the run finished between ticks.
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if end.HeapAlloc > base.HeapAlloc && end.HeapAlloc-base.HeapAlloc > peak {
		peak = end.HeapAlloc - base.HeapAlloc
	}
	return Measurement{Time: elapsed, PeakBytes: peak}, err
}
