package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"canary"
	"canary/internal/server"
	"canary/internal/workload"
)

// ServePhase is one load phase against the daemon scheduler: every client
// submits its whole request list and waits each job to a terminal state.
type ServePhase struct {
	Requests int
	// Retries counts ErrQueueFull backoffs — each one is a backpressure
	// event where the bounded queue made a client wait.
	Retries    int
	Failed     int
	Elapsed    time.Duration
	Throughput float64 // completed requests per second
	// P50 and P95 are end-to-end request latencies (submit → terminal
	// state, including queue wait and any cache fast-path).
	P50, P95 time.Duration
	// CacheHits and CacheMisses are the content-addressed result store's
	// deltas over this phase.
	CacheHits, CacheMisses uint64
}

// ServeResult is the service-mode experiment: a cold phase of distinct
// programs (every submission misses the result store) followed by a warm
// phase replaying the same programs (every submission should hit).
type ServeResult struct {
	Lines         int
	Clients       int
	PerClient     int
	MaxConcurrent int
	QueueDepth    int
	Cold, Warm    ServePhase
	// QueueDepthSamples is the admitted-but-unstarted backlog sampled at a
	// fixed cadence across both phases.
	QueueDepthSamples []int
	MaxQueueDepth     int
	// CacheEntries is the content store's size after the warm phase.
	CacheEntries int
}

// RunServe measures canaryd's scheduler in-process: clients concurrent
// submitters each push perClient distinct programs (seed-varied copies of
// spec) through a deliberately small worker pool, then replay the same
// programs warm. The cold phase fills the content-addressed store; the warm
// phase must be served from it, so its hit delta equals its request count
// and its latencies collapse to the cache fast-path.
func (e *Experiments) RunServe(spec workload.Spec, clients, perClient int) (ServeResult, error) {
	res := ServeResult{Lines: spec.Lines, Clients: clients, PerClient: perClient}
	if clients <= 0 || perClient <= 0 {
		return res, fmt.Errorf("serve experiment needs clients > 0 and requests > 0")
	}

	// Distinct programs per request: same shape, different seed.
	srcs := make([][]string, clients)
	for c := range srcs {
		srcs[c] = make([]string, perClient)
		for i := range srcs[c] {
			s := spec
			s.Seed = spec.Seed + int64(c*perClient+i)
			srcs[c][i] = workload.Generate(s)
		}
	}

	// A small pool and a queue shorter than the client count, so the cold
	// phase actually exercises queueing and backpressure.
	timeout := e.Timeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	res.MaxConcurrent = 2
	res.QueueDepth = clients
	srv, err := server.New(server.Config{
		MaxConcurrent: res.MaxConcurrent,
		QueueDepth:    res.QueueDepth,
		JobTimeout:    timeout,
	})
	if err != nil {
		return res, err
	}
	opt := canary.DefaultOptions()

	// Queue-depth sampler, running across both phases.
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				d := srv.QueueDepth()
				res.QueueDepthSamples = append(res.QueueDepthSamples, d)
				if d > res.MaxQueueDepth {
					res.MaxQueueDepth = d
				}
			}
		}
	}()

	phase := func() ServePhase {
		var ph ServePhase
		h0, m0, _ := srv.CacheStats()
		lats := make([][]time.Duration, clients)
		retries := make([]int, clients)
		failed := make([]int, clients)
		t0 := time.Now()
		var wg sync.WaitGroup
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			go func(c int) {
				defer wg.Done()
				for _, src := range srcs[c] {
					s0 := time.Now()
					for {
						job, err := srv.Submit(src, opt, 0)
						if err == server.ErrQueueFull {
							retries[c]++
							time.Sleep(time.Millisecond)
							continue
						}
						if err != nil {
							failed[c]++
							break
						}
						<-job.Done()
						if job.State() == server.JobFailed {
							failed[c]++
						}
						break
					}
					lats[c] = append(lats[c], time.Since(s0))
				}
			}(c)
		}
		wg.Wait()
		ph.Elapsed = time.Since(t0)

		var all []time.Duration
		for c := 0; c < clients; c++ {
			all = append(all, lats[c]...)
			ph.Retries += retries[c]
			ph.Failed += failed[c]
		}
		ph.Requests = len(all)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		ph.P50 = percentile(all, 50)
		ph.P95 = percentile(all, 95)
		if ph.Elapsed > 0 {
			ph.Throughput = float64(ph.Requests) / ph.Elapsed.Seconds()
		}
		h1, m1, _ := srv.CacheStats()
		ph.CacheHits = h1 - h0
		ph.CacheMisses = m1 - m0
		return ph
	}

	res.Cold = phase()
	e.logf("  serve cold: %d req in %v (%.1f req/s, p95=%v, %d queue-full retries, cache %d hits/%d misses)\n",
		res.Cold.Requests, res.Cold.Elapsed.Round(time.Millisecond), res.Cold.Throughput,
		res.Cold.P95.Round(time.Microsecond), res.Cold.Retries, res.Cold.CacheHits, res.Cold.CacheMisses)
	res.Warm = phase()
	e.logf("  serve warm: %d req in %v (%.1f req/s, p95=%v, cache %d hits/%d misses)\n",
		res.Warm.Requests, res.Warm.Elapsed.Round(time.Millisecond), res.Warm.Throughput,
		res.Warm.P95.Round(time.Microsecond), res.Warm.CacheHits, res.Warm.CacheMisses)

	close(stopSampler)
	samplerWG.Wait()
	_, _, res.CacheEntries = srv.CacheStats()
	srv.BeginDrain()
	return res, nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
