package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"canary/internal/workload"
)

func TestFitLinearPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := FitLinear(xs, ys)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Fatalf("R² = %v, want 1", r2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9} // ≈ 2x
	slope, _, r2 := FitLinear(xs, ys)
	if slope < 1.8 || slope > 2.2 {
		t.Fatalf("slope = %v", slope)
	}
	if r2 < 0.99 {
		t.Fatalf("R² = %v, want near 1", r2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if s, _, r2 := FitLinear([]float64{1}, []float64{2}); s != 0 || r2 != 0 {
		t.Error("single point should yield zeros")
	}
	// Constant x: undefined slope.
	if s, _, _ := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3}); s != 0 {
		t.Error("vertical data should not produce a slope")
	}
	// Constant y: perfect fit with zero slope.
	if _, _, r2 := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5}); r2 != 1 {
		t.Error("constant y is a perfect fit")
	}
}

func TestFitLinearUncorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{5, 1, 9, 2, 8, 1, 9, 3}
	_, _, r2 := FitLinear(xs, ys)
	if r2 > 0.5 {
		t.Fatalf("uncorrelated data should have low R², got %v", r2)
	}
}

func TestMeasureReportsWork(t *testing.T) {
	m, err := Measure(func() error {
		// Allocate ~8 MiB and hold it through the measurement window.
		buf := make([][]byte, 0, 64)
		for i := 0; i < 64; i++ {
			buf = append(buf, make([]byte, 128*1024))
			time.Sleep(200 * time.Microsecond)
		}
		_ = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Time <= 0 {
		t.Error("no elapsed time measured")
	}
	if m.PeakBytes < 4<<20 {
		t.Errorf("peak memory under-measured: %d bytes", m.PeakBytes)
	}
}

func tinyProjects() []workload.Project {
	ps := workload.Projects(0.004)[:3] // lrzip, lwan, leveldb
	for i := range ps {
		ps[i].Lines = 250 // keep the unit test fast
	}
	return ps
}

func TestRunSubjectEndToEnd(t *testing.T) {
	e := &Experiments{Timeout: 30 * time.Second}
	rs, err := e.RunAll(tinyProjects())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("want 3 subjects, got %d", len(rs))
	}
	for _, r := range rs {
		if r.Canary.TimedOut {
			t.Errorf("%s: canary must finish", r.Name)
		}
		if r.Canary.BuildTime <= 0 {
			t.Errorf("%s: no canary build time", r.Name)
		}
	}
	// Ground truth: measured Canary reports equal the paper-seeded counts.
	for i, want := range []struct{ reports, fps int }{{2, 0}, {1, 0}, {1, 1}} {
		if rs[i].Canary.Reports != want.reports || rs[i].Canary.FPs != want.fps {
			t.Errorf("%s: canary reports=%d fps=%d, want %d/%d",
				rs[i].Name, rs[i].Canary.Reports, rs[i].Canary.FPs, want.reports, want.fps)
		}
	}
	var buf bytes.Buffer
	PrintFig7a(&buf, rs)
	PrintFig7b(&buf, rs)
	PrintTable1(&buf, rs)
	out := buf.String()
	for _, needle := range []string{"Fig. 7a", "Fig. 7b", "Table 1", "lrzip", "leveldb"} {
		if !strings.Contains(out, needle) {
			t.Errorf("printed output missing %q", needle)
		}
	}
}

func TestRunFig8SweepAndFit(t *testing.T) {
	e := &Experiments{}
	specs := workload.SizeSweep(3, 300, 1200)
	res, err := e.RunFig8(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(res.Points))
	}
	var buf bytes.Buffer
	PrintFig8(&buf, res)
	if !strings.Contains(buf.String(), "R²") {
		t.Error("Fig. 8 output missing fit statistics")
	}
}

func TestRunServeColdThenWarm(t *testing.T) {
	e := &Experiments{Timeout: 30 * time.Second}
	spec := workload.SizeSweep(1, 250, 250)[0]
	res, err := e.RunServe(spec, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 2
	if res.Cold.Requests != want || res.Warm.Requests != want {
		t.Fatalf("requests = %d/%d, want %d each", res.Cold.Requests, res.Warm.Requests, want)
	}
	if res.Cold.Failed != 0 || res.Warm.Failed != 0 {
		t.Fatalf("failures: cold=%d warm=%d", res.Cold.Failed, res.Warm.Failed)
	}
	// Every cold submission is distinct (a miss); every warm one replays it.
	if res.Cold.CacheMisses != uint64(want) || res.Cold.CacheHits != 0 {
		t.Errorf("cold cache = %d hits/%d misses, want 0/%d",
			res.Cold.CacheHits, res.Cold.CacheMisses, want)
	}
	if res.Warm.CacheHits != uint64(want) || res.Warm.CacheMisses != 0 {
		t.Errorf("warm cache = %d hits/%d misses, want %d/0",
			res.Warm.CacheHits, res.Warm.CacheMisses, want)
	}
	if res.CacheEntries != want {
		t.Errorf("content store holds %d entries, want %d", res.CacheEntries, want)
	}
	var buf bytes.Buffer
	PrintServe(&buf, res)
	for _, needle := range []string{"Service mode", "cold", "warm", "queue depth"} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("serve output missing %q", needle)
		}
	}
}
