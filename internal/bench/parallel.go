package bench

import (
	"time"

	"canary/internal/core"
	"canary/internal/workload"
)

// ParallelPoint is one worker-count observation of the full pipeline
// (parallel VFG build + deterministic checking pool) on one subject.
type ParallelPoint struct {
	Workers   int
	BuildTime time.Duration
	CheckTime time.Duration
	// Speedup is the 1-worker wall time divided by this point's wall time.
	Speedup float64
	Reports int
}

// CacheRound is one Check round's SMT query-cache outcome.
type CacheRound struct {
	CheckTime     time.Duration
	SolverQueries int
	CacheHits     int
	CacheMisses   int
}

// ParallelResult is the worker sweep plus the cache replay experiment.
type ParallelResult struct {
	Lines  int
	Points []ParallelPoint
	// Cold and Warm are two consecutive Check rounds over one built VFG:
	// Cold fills the shared SMT query cache, Warm replays its verdicts.
	Cold, Warm CacheRound
}

// RunParallel sweeps the pipeline over workerCounts on one subject and then
// measures a cold and a warm checking round over a single VFG. Reports are
// identical at every worker count (the pools are deterministic), so the
// sweep compares equal work. Fact propagation is disabled for the cache
// rounds so every undecided path constraint reaches the solver — and hence
// the cache — rather than the order-fact closure.
func (e *Experiments) RunParallel(spec workload.Spec, workerCounts []int) (ParallelResult, error) {
	res := ParallelResult{Lines: spec.Lines}
	var base time.Duration
	for _, n := range workerCounts {
		prog, err := lowerSubject(spec)
		if err != nil {
			return res, err
		}
		bopt := core.DefaultBuild()
		bopt.Workers = n
		t0 := time.Now()
		b := core.Build(prog, bopt)
		buildTime := time.Since(t0)
		copt := core.DefaultCheck()
		copt.Checkers = []string{e.checker()}
		copt.Workers = n
		t0 = time.Now()
		reports, _ := b.Check(copt)
		checkTime := time.Since(t0)

		pt := ParallelPoint{
			Workers: n, BuildTime: buildTime, CheckTime: checkTime,
			Reports: len(reports),
		}
		total := buildTime + checkTime
		if len(res.Points) == 0 {
			base = total
		}
		if total > 0 {
			pt.Speedup = float64(base) / float64(total)
		}
		res.Points = append(res.Points, pt)
		e.logf("  parallel workers=%d: build=%v check=%v speedup=%.2fx reports=%d\n",
			n, buildTime.Round(time.Millisecond), checkTime.Round(time.Millisecond),
			pt.Speedup, len(reports))
	}

	// Cache replay: two rounds over one VFG. Each lowered program owns a
	// fresh guard pool, so the cold round cannot hit entries left by the
	// sweep above.
	prog, err := lowerSubject(spec)
	if err != nil {
		return res, err
	}
	b := core.Build(prog, core.DefaultBuild())
	copt := core.DefaultCheck()
	copt.Checkers = []string{e.checker()}
	copt.FactPropagation = false
	round := func() CacheRound {
		t0 := time.Now()
		_, stats := b.Check(copt)
		return CacheRound{
			CheckTime:     time.Since(t0),
			SolverQueries: stats.SolverQueries,
			CacheHits:     stats.CacheHits,
			CacheMisses:   stats.CacheMisses,
		}
	}
	res.Cold = round()
	res.Warm = round()
	e.logf("  cache cold: %v (%d queries, %d hits) — warm: %v (%d queries, %d hits)\n",
		res.Cold.CheckTime.Round(time.Millisecond), res.Cold.SolverQueries, res.Cold.CacheHits,
		res.Warm.CheckTime.Round(time.Millisecond), res.Warm.SolverQueries, res.Warm.CacheHits)
	return res, nil
}
