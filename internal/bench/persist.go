package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"canary"
	"canary/internal/workload"
)

// PersistPhase is one fresh-process analysis run against a warm-state
// directory: its wall time, the reuse counters of that run, and the disk
// store's view of it.
type PersistPhase struct {
	Wall            time.Duration `json:"wall_ns"`
	SummaryHits     int           `json:"summary_hits"`
	FuncsReanalyzed int           `json:"funcs_reanalyzed"`
	VerdictHits     int           `json:"verdict_hits"`
	PairsRechecked  int           `json:"pairs_rechecked"`
	DiskHits        uint64        `json:"disk_hits"`
	DiskMisses      uint64        `json:"disk_misses"`
	DiskWrites      uint64        `json:"disk_writes"`
	DiskBytes       int64         `json:"disk_bytes"`
	DiskEntries     int64         `json:"disk_entries"`
}

// PersistResult measures the warm-restart scenario end to end, every phase
// in its own freshly exec'd process so nothing warm can survive in memory:
//
//   - Cold: analyze into an empty -warm-dir (populates the disk store).
//   - Warm: a new process re-analyzes the same program against the
//     populated store; its output must be byte-identical to cold and its
//     reuse must be fed entirely from disk.
//   - EditedCold / EditedWarm: the one-line-edit scenario of the
//     incremental experiment, except the warm state crosses a process
//     restart; SummaryReuse is the fraction of function summaries the
//     restarted process still reused.
type PersistResult struct {
	Lines int `json:"lines"`
	Iters int `json:"iters"`
	// Funcs is the function count of the edited program (the denominator
	// context for EditedWarm's reuse counters).
	Funcs      int          `json:"funcs"`
	Cold       PersistPhase `json:"cold"`
	Warm       PersistPhase `json:"warm"`
	EditedCold PersistPhase `json:"edited_cold"`
	EditedWarm PersistPhase `json:"edited_warm"`
	// Speedup is Cold.Wall / Warm.Wall (best-of-iters each).
	Speedup float64 `json:"speedup"`
	// Identical: the warm-restart run rendered byte-identically to cold.
	// EditedIdentical: same for the post-edit pair.
	Identical       bool `json:"identical"`
	EditedIdentical bool `json:"edited_identical"`
	// SummaryReuse is EditedWarm's SummaryHits/(SummaryHits+FuncsReanalyzed):
	// how much of the program survived a one-line edit plus a restart.
	SummaryReuse float64 `json:"summary_reuse"`
}

// persistChildReport is what a -persist-child process prints on stdout:
// the render of its reports plus every counter the parent aggregates.
type persistChildReport struct {
	Render          string           `json:"render"`
	Wall            time.Duration    `json:"wall_ns"`
	Funcs           int              `json:"funcs"`
	SummaryHits     int              `json:"summary_hits"`
	FuncsReanalyzed int              `json:"funcs_reanalyzed"`
	VerdictHits     int              `json:"verdict_hits"`
	PairsRechecked  int              `json:"pairs_rechecked"`
	Disk            canary.DiskStats `json:"disk"`
}

// persistOptions is the analysis configuration shared by the parent's
// expectations and every child process. FactPropagation is off for the
// same reason as the incremental experiment: it is the configuration
// where verdict reuse is measurable at these subject sizes.
func persistOptions() canary.Options {
	opt := canary.DefaultOptions()
	opt.FactPropagation = false
	return opt
}

// RunPersistChild is the body of a -persist-child process: open (or
// create) the persistent session rooted at dir, analyze srcPath through
// it, flush and close so every write lands, and print the report as JSON.
// It returns the process exit code.
func RunPersistChild(dir, srcPath string) int {
	data, err := os.ReadFile(srcPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "persist-child:", err)
		return 2
	}
	sess, err := canary.NewPersistentSession(dir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "persist-child:", err)
		return 2
	}
	t0 := time.Now()
	res, err := sess.Analyze(string(data), persistOptions())
	wall := time.Since(t0)
	if err != nil {
		sess.Close()
		fmt.Fprintln(os.Stderr, "persist-child:", err)
		return 2
	}
	sess.Flush()
	rep := persistChildReport{
		Render:          renderReports(res),
		Wall:            wall,
		Funcs:           res.VFG.SummaryHits + res.VFG.FuncsReanalyzed,
		SummaryHits:     res.VFG.SummaryHits,
		FuncsReanalyzed: res.VFG.FuncsReanalyzed,
		VerdictHits:     res.Check.VerdictHits,
		PairsRechecked:  res.Check.PairsRechecked,
		Disk:            sess.DiskStats(),
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "persist-child:", err)
		return 2
	}
	if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "persist-child:", err)
		return 2
	}
	return 0
}

// phaseOf projects a child report onto the aggregated phase record.
func phaseOf(rep persistChildReport) PersistPhase {
	return PersistPhase{
		Wall:            rep.Wall,
		SummaryHits:     rep.SummaryHits,
		FuncsReanalyzed: rep.FuncsReanalyzed,
		VerdictHits:     rep.VerdictHits,
		PairsRechecked:  rep.PairsRechecked,
		DiskHits:        rep.Disk.Hits,
		DiskMisses:      rep.Disk.Misses,
		DiskWrites:      rep.Disk.Writes,
		DiskBytes:       rep.Disk.Bytes,
		DiskEntries:     rep.Disk.Entries,
	}
}

// RunPersist measures warm restarts for spec, re-exec'ing exe (this very
// binary) with -persist-child flags so each phase runs in a genuinely
// fresh process. Cold and warm take the best of iters runs; cold iterations
// each get their own empty store directory, and the first one's store is
// the one every warm iteration restarts against.
func (e *Experiments) RunPersist(spec workload.Spec, iters int, exe string) (PersistResult, error) {
	if iters <= 0 {
		iters = 1
	}
	res := PersistResult{Lines: spec.Lines, Iters: iters}
	orig := workload.Generate(spec)
	edited, err := mutateMain(orig)
	if err != nil {
		return res, err
	}

	work, err := os.MkdirTemp("", "canary-persist-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(work)
	origPath := filepath.Join(work, "orig.cn")
	editedPath := filepath.Join(work, "edited.cn")
	if err := os.WriteFile(origPath, []byte(orig), 0o644); err != nil {
		return res, err
	}
	if err := os.WriteFile(editedPath, []byte(edited), 0o644); err != nil {
		return res, err
	}

	runChild := func(dir, src string) (persistChildReport, error) {
		var rep persistChildReport
		cmd := exec.Command(exe, "-persist-child", "-persist-dir", dir, "-persist-src", src)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return rep, fmt.Errorf("persist child: %w", err)
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			return rep, fmt.Errorf("persist child output: %w", err)
		}
		return rep, nil
	}

	// Cold phase: each iteration into its own empty store. The first
	// iteration's store becomes the warm state under test.
	store := filepath.Join(work, "store-0")
	var coldRender string
	for i := 0; i < iters; i++ {
		dir := filepath.Join(work, fmt.Sprintf("store-%d", i))
		rep, err := runChild(dir, origPath)
		if err != nil {
			return res, err
		}
		if i == 0 {
			coldRender = rep.Render
			res.Cold = phaseOf(rep)
		} else if rep.Wall < res.Cold.Wall {
			res.Cold.Wall = rep.Wall
		}
		e.logf("  persist cold iter %d: %v (%d disk writes)\n", i, rep.Wall.Round(time.Millisecond), rep.Disk.Writes)
	}

	// Warm phase: fresh processes against the populated store. Every
	// iteration restarts cold in memory, so all reuse is disk-fed.
	for i := 0; i < iters; i++ {
		rep, err := runChild(store, origPath)
		if err != nil {
			return res, err
		}
		if i == 0 {
			res.Identical = rep.Render == coldRender
			res.Warm = phaseOf(rep)
		} else if rep.Wall < res.Warm.Wall {
			res.Warm.Wall = rep.Wall
		}
		e.logf("  persist warm iter %d: %v (%d disk hits, identical=%v)\n",
			i, rep.Wall.Round(time.Millisecond), rep.Disk.Hits, rep.Render == coldRender)
	}
	if res.Warm.Wall > 0 {
		res.Speedup = float64(res.Cold.Wall) / float64(res.Warm.Wall)
	}

	// One-line edit across a restart: cold baseline in an empty store,
	// then the edited program against the original program's store.
	editedColdDir := filepath.Join(work, "store-edited-cold")
	repEC, err := runChild(editedColdDir, editedPath)
	if err != nil {
		return res, err
	}
	res.EditedCold = phaseOf(repEC)
	repEW, err := runChild(store, editedPath)
	if err != nil {
		return res, err
	}
	res.EditedWarm = phaseOf(repEW)
	res.Funcs = repEW.Funcs
	res.EditedIdentical = repEW.Render == repEC.Render
	if total := repEW.SummaryHits + repEW.FuncsReanalyzed; total > 0 {
		res.SummaryReuse = float64(repEW.SummaryHits) / float64(total)
	}
	e.logf("  persist edited: %d/%d summaries survived the edit+restart (reuse %.2f, identical=%v)\n",
		repEW.SummaryHits, repEW.Funcs, res.SummaryReuse, res.EditedIdentical)
	return res, nil
}
