package bench

import (
	"fmt"
	"io"
	"math"
	"time"
)

// PrintFig7a renders the VFG-construction time comparison (Fig. 7a) as a
// text series: one row per subject ordered by size, one column per tool,
// "TIMEOUT" matching the paper's bars that hit the budget.
func PrintFig7a(w io.Writer, rs []SubjectResult) {
	fmt.Fprintln(w, "Fig. 7a — VFG construction time (subjects ordered by size)")
	fmt.Fprintf(w, "%-14s %8s %12s %12s %12s\n", "subject", "KLoC", "Saber", "Fsam", "Canary")
	for _, r := range rs {
		fmt.Fprintf(w, "%-14s %8.0f %12s %12s %12s\n", r.Name, r.KLoC,
			timeOrNA(r.Saber), timeOrNA(r.Fsam), timeOrNA(r.Canary))
	}
	sSpeed, fSpeed := speedups(rs)
	fmt.Fprintf(w, "geo-mean speedup of Canary: %.1fx vs Saber, %.1fx vs Fsam (subjects ≥%v where the baseline finished)\n",
		sSpeed, fSpeed, speedupFloor)
}

// speedupFloor excludes sub-noise subjects from the speedup statistic.
const speedupFloor = 5 * time.Millisecond

// PrintFig7b renders the memory comparison (Fig. 7b).
func PrintFig7b(w io.Writer, rs []SubjectResult) {
	fmt.Fprintln(w, "Fig. 7b — VFG construction memory (subjects ordered by size)")
	fmt.Fprintf(w, "%-14s %8s %12s %12s %12s\n", "subject", "KLoC", "Saber", "Fsam", "Canary")
	for _, r := range rs {
		fmt.Fprintf(w, "%-14s %8.0f %12s %12s %12s\n", r.Name, r.KLoC,
			memOrNA(r.Saber), memOrNA(r.Fsam), memOrNA(r.Canary))
	}
}

// PrintTable1 renders the bug-hunting comparison in the layout of the
// paper's Table 1, with the paper's own numbers alongside for reference.
func PrintTable1(w io.Writer, rs []SubjectResult) {
	fmt.Fprintln(w, "Table 1 — Results of bug hunting (measured | paper)")
	fmt.Fprintf(w, "%-14s %6s | %-17s | %-17s | %-21s | %s\n",
		"project", "KLoC", "Saber FP%/reports", "Fsam FP%/reports", "Canary FP/reports", "paper S/F/C")
	var totalReports, totalFPs int
	for _, r := range rs {
		fmt.Fprintf(w, "%-14s %6.0f | %-17s | %-17s | %-21s | %s/%s/%d(%dFP)\n",
			r.Name, r.KLoC,
			fpOrNA(r.Saber), fpOrNA(r.Fsam),
			fmt.Sprintf("%d / %d", r.Canary.FPs, r.Canary.Reports),
			naInt(r.PaperSaberReports), naInt(r.PaperFsamReports),
			r.PaperCanaryReports, r.PaperCanaryFPs)
		totalReports += r.Canary.Reports
		totalFPs += r.Canary.FPs
	}
	rate := 0.0
	if totalReports > 0 {
		rate = 100 * float64(totalFPs) / float64(totalReports)
	}
	fmt.Fprintf(w, "Canary totals: %d reports, %d FPs (%.2f%%); paper: 15 reports, 4 FPs (26.67%%)\n",
		totalReports, totalFPs, rate)
}

// PrintFig8 renders the scalability sweep and its linear fits.
func PrintFig8(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Fig. 8 — Scalability of Canary for bug hunting")
	fmt.Fprintf(w, "%10s %12s %12s %8s\n", "KLoC", "time", "memory", "reports")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%10.2f %12s %12s %8d\n", p.KLoC,
			p.Time.Round(time.Millisecond), fmtBytes(p.PeakMem), p.Reports)
	}
	fmt.Fprintf(w, "time  fit: %.4f ms/KLoC + %.1f  (R²=%.3f)\n",
		res.TimeSlope, res.TimeIntercept, res.TimeR2)
	fmt.Fprintf(w, "mem   fit: %s/KLoC + %s  (R²=%.3f)\n",
		fmtBytes(uint64(maxF(res.MemSlope, 0))), fmtBytes(uint64(maxF(res.MemIntercept, 0))), res.MemR2)
	fmt.Fprintln(w, "paper fits: time 0.0326 min/KLoC (R²=0.83), memory 0.0193 GB/KLoC (R²=0.78)")
}

// PrintParallel renders the worker sweep and the cache replay rounds.
func PrintParallel(w io.Writer, res ParallelResult) {
	fmt.Fprintf(w, "Parallel pipeline — worker sweep (%d-line subject)\n", res.Lines)
	fmt.Fprintf(w, "%8s %12s %12s %8s %8s\n", "workers", "build", "check", "speedup", "reports")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%8d %12s %12s %7.2fx %8d\n", p.Workers,
			p.BuildTime.Round(time.Millisecond), p.CheckTime.Round(time.Millisecond),
			p.Speedup, p.Reports)
	}
	fmt.Fprintf(w, "SMT cache: cold round %v (%d queries, %d hits/%d misses) — warm round %v (%d queries, %d hits/%d misses)\n",
		res.Cold.CheckTime.Round(time.Millisecond), res.Cold.SolverQueries, res.Cold.CacheHits, res.Cold.CacheMisses,
		res.Warm.CheckTime.Round(time.Millisecond), res.Warm.SolverQueries, res.Warm.CacheHits, res.Warm.CacheMisses)
}

// PrintServe renders the service-mode experiment: cold vs warm phase and
// the queue-depth profile.
func PrintServe(w io.Writer, res ServeResult) {
	fmt.Fprintf(w, "Service mode — %d clients × %d requests (%d-line subjects), %d workers, queue depth %d\n",
		res.Clients, res.PerClient, res.Lines, res.MaxConcurrent, res.QueueDepth)
	fmt.Fprintf(w, "%6s %8s %10s %12s %12s %12s %8s %8s\n",
		"phase", "requests", "req/s", "p50", "p95", "elapsed", "hits", "misses")
	row := func(name string, p ServePhase) {
		fmt.Fprintf(w, "%6s %8d %10.1f %12s %12s %12s %8d %8d\n",
			name, p.Requests, p.Throughput,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
			p.Elapsed.Round(time.Millisecond), p.CacheHits, p.CacheMisses)
	}
	row("cold", res.Cold)
	row("warm", res.Warm)
	fmt.Fprintf(w, "backpressure: %d queue-full retries cold, %d warm; queue depth max %d over %d samples\n",
		res.Cold.Retries, res.Warm.Retries, res.MaxQueueDepth, len(res.QueueDepthSamples))
	fmt.Fprintf(w, "content store: %d entries after warm phase\n", res.CacheEntries)
}

// PrintIncremental renders the one-edit incremental re-analysis experiment.
func PrintIncremental(w io.Writer, res IncrementalResult) {
	fmt.Fprintf(w, "Incremental analysis — one-statement edit (%d-line subject, %d functions, best of %d)\n",
		res.Lines, res.Funcs, res.Iters)
	fmt.Fprintf(w, "%6s %12s %18s %14s %16s %14s\n",
		"run", "latency", "summaries reused", "verdict hits", "pairs rechecked", "trivial solves")
	fmt.Fprintf(w, "%6s %12s %18s %14s %16s %14s\n",
		"cold", res.ColdTime.Round(time.Millisecond).String(),
		fmt.Sprintf("0/%d", res.Funcs), "0", "all", "-")
	fmt.Fprintf(w, "%6s %12s %18s %14d %16d %14d\n",
		"warm", res.WarmTime.Round(time.Millisecond).String(),
		fmt.Sprintf("%d/%d", res.SummaryHits, res.Funcs),
		res.VerdictHits, res.PairsRechecked, res.TrivialSolves)
	fmt.Fprintf(w, "speedup: %.2fx; %d/%d functions reanalyzed; outputs byte-identical: %v\n",
		res.Speedup, res.FuncsReanalyzed, res.Funcs, res.Identical)
}

// PrintTrace renders the per-stage wall-clock split of one analysis.
func PrintTrace(w io.Writer, res TraceResult) {
	fmt.Fprintf(w, "Pipeline trace — per-stage cost (%d-line subject, %d report(s), total %v)\n",
		res.Lines, res.Reports, res.Total.Round(time.Millisecond))
	fmt.Fprintf(w, "%-13s %12s %10s %10s %12s\n", "stage", "wall", "steps", "budget", "cache hits")
	for _, sc := range res.Stages {
		budget := "-"
		if sc.Budget > 0 {
			budget = fmt.Sprintf("%d", sc.Budget)
		}
		fmt.Fprintf(w, "%-13s %12v %10d %10s %12d\n", sc.Stage, sc.Wall, sc.Steps, budget, sc.CacheHits)
	}
	fmt.Fprintf(w, "all registry stages present: %v\n", res.Complete)
}

// speedups returns the geometric-mean build-time speedups of Canary over
// each baseline, counting only subjects the baseline finished.
func speedups(rs []SubjectResult) (vsSaber, vsFsam float64) {
	geo := func(sel func(SubjectResult) ToolRun) float64 {
		prod, n := 1.0, 0
		for _, r := range rs {
			b := sel(r)
			if b.TimedOut || r.Canary.BuildTime < speedupFloor || b.BuildTime <= 0 {
				continue
			}
			prod *= float64(b.BuildTime) / float64(r.Canary.BuildTime)
			n++
		}
		if n == 0 {
			return 0
		}
		return math.Pow(prod, 1/float64(n))
	}
	return geo(func(r SubjectResult) ToolRun { return r.Saber }),
		geo(func(r SubjectResult) ToolRun { return r.Fsam })
}

func timeOrNA(t ToolRun) string {
	if t.TimedOut {
		return "TIMEOUT"
	}
	return t.BuildTime.Round(time.Millisecond).String()
}

func memOrNA(t ToolRun) string {
	if t.TimedOut {
		return "TIMEOUT"
	}
	return fmtBytes(t.BuildMem)
}

func fpOrNA(t ToolRun) string {
	if t.TimedOut {
		return "NA"
	}
	return fmt.Sprintf("%.1f%% / %d", t.FPRate(), t.Reports)
}

func naInt(v int) string {
	if v < 0 {
		return "NA"
	}
	return fmt.Sprintf("%d", v)
}

// PrintHotpath renders the hot-path representation comparison: allocation
// and wall cost per operation of the four measured hot paths, with the
// recorded pre-overhaul baseline alongside when it applies.
func PrintHotpath(w io.Writer, r HotpathResult) {
	fmt.Fprintf(w, "Hotpath — representation cost per op (%d-line subject)\n", r.Lines)
	fmt.Fprintf(w, "%-16s %14s %14s %14s\n", "section", "allocs/op", "B/op", "ns/op")
	row := func(name string, s HotpathSection) {
		fmt.Fprintf(w, "%-16s %14d %14d %14d\n", name, s.AllocsPerOp, s.BytesPerOp, s.NsPerOp)
	}
	row("guard-construct", r.Current.GuardConstruct)
	row("pta-fixpoint", r.Current.PTAFixpoint)
	row("datadep", r.Current.DataDep)
	row("interference", r.Current.Interference)
	if r.Baseline != nil {
		fmt.Fprintln(w, "pre-overhaul baseline (recorded):")
		row("guard-construct", r.Baseline.GuardConstruct)
		row("pta-fixpoint", r.Baseline.PTAFixpoint)
		row("datadep", r.Baseline.DataDep)
		row("interference", r.Baseline.Interference)
		fmt.Fprintf(w, "alloc reduction: guard-construct %.1fx, pta-fixpoint %.1fx\n",
			r.GuardAllocRatio, r.PTAAllocRatio)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PrintPersist renders the warm-restart experiment: each phase is a fresh
// process, so every reuse in the warm rows was fed from the disk store.
func PrintPersist(w io.Writer, res PersistResult) {
	fmt.Fprintf(w, "Persistent warm state — fresh-process restarts (%d-line subject, best of %d)\n",
		res.Lines, res.Iters)
	fmt.Fprintf(w, "%-12s %12s %18s %14s %11s %12s\n",
		"phase", "latency", "summaries reused", "verdict hits", "disk hits", "disk writes")
	row := func(name string, ph PersistPhase) {
		total := ph.SummaryHits + ph.FuncsReanalyzed
		fmt.Fprintf(w, "%-12s %12s %18s %14d %11d %12d\n",
			name, ph.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d/%d", ph.SummaryHits, total),
			ph.VerdictHits, ph.DiskHits, ph.DiskWrites)
	}
	row("cold", res.Cold)
	row("warm", res.Warm)
	row("edited-cold", res.EditedCold)
	row("edited-warm", res.EditedWarm)
	fmt.Fprintf(w, "restart speedup: %.2fx; store: %d entries, %d bytes\n",
		res.Speedup, res.Warm.DiskEntries, res.Warm.DiskBytes)
	fmt.Fprintf(w, "warm byte-identical to cold: %v; edited pair identical: %v; summary reuse after edit+restart: %.2f\n",
		res.Identical, res.EditedIdentical, res.SummaryReuse)
}

// PrintSessions renders the edit-native session experiment: per-edit
// session-vs-rerun latency, the representation-only fast path, and the
// two hard gates (fold identity, median advantage).
func PrintSessions(w io.Writer, res SessionsResult) {
	fmt.Fprintf(w, "Live sessions — per-edit delta vs full warm re-run (%d-line subject, %d edits)\n",
		res.Lines, res.Edits)
	fmt.Fprintf(w, "open (full analysis): %v\n", res.OpenTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-5s %-8s %12s %12s %12s %7s %9s %10s\n",
		"seq", "kind", "session", "rerun", "invalidated", "added", "resolved", "unchanged")
	for _, s := range res.Samples {
		kind := "real"
		if s.Trivial {
			kind = "trivial"
		}
		fmt.Fprintf(w, "%-5d %-8s %12s %12s %12d %7d %9d %10d\n",
			s.Seq, kind,
			s.SessionTime.Round(time.Microsecond).String(),
			s.RerunTime.Round(time.Microsecond).String(),
			s.Invalidated, s.Added, s.Resolved, s.Unchanged)
	}
	fmt.Fprintf(w, "stream medians: session=%v rerun=%v (%.2fx per-edit advantage)\n",
		res.SessionMedian.Round(time.Microsecond), res.RerunMedian.Round(time.Microsecond), res.Speedup)
	fmt.Fprintf(w, "re-analyzing rounds only: session=%v rerun=%v; representation-only rounds: %v\n",
		res.RealMedian.Round(time.Microsecond), res.RealRerunMedian.Round(time.Microsecond),
		res.TrivialMedian.Round(time.Microsecond))
	fmt.Fprintf(w, "folded deltas byte-identical to cold analysis of final source: %v\n", res.FoldIdentical)
}
