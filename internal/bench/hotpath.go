package bench

import (
	"fmt"
	"runtime"
	"time"

	"canary/internal/core"
	"canary/internal/guard"
	"canary/internal/lang"
	"canary/internal/pta"
	"canary/internal/workload"
)

// HotpathSection is one hot-path measurement: the steady-state cost of one
// operation of a pipeline stage, in the units `go test -bench` reports.
type HotpathSection struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Iters       int   `json:"iters"`
}

// HotpathSide is one full sweep over the four measured hot paths: guard
// construction, the Steensgaard points-to fixpoint, one Alg. 1 data-
// dependence round, and one Alg. 2 interference round.
type HotpathSide struct {
	GuardConstruct HotpathSection `json:"guard_construct"`
	PTAFixpoint    HotpathSection `json:"pta_fixpoint"`
	DataDep        HotpathSection `json:"datadep"`
	Interference   HotpathSection `json:"interference"`
}

// HotpathResult compares the current representations against the recorded
// pre-overhaul baseline (string-keyed guard interning, map-backed points-to
// and location sets). Baseline is nil when the run's subject size differs
// from the size the baseline was recorded at.
type HotpathResult struct {
	Lines    int          `json:"lines"`
	Baseline *HotpathSide `json:"baseline,omitempty"`
	Current  HotpathSide  `json:"current"`
	// Alloc ratios are baseline allocs/op divided by current allocs/op
	// (>1 means the overhaul allocates less); 0 when no baseline applies.
	GuardAllocRatio float64 `json:"guard_alloc_ratio"`
	PTAAllocRatio   float64 `json:"pta_alloc_ratio"`
}

// hotpathBaselineLines is the subject size the checked-in baseline was
// measured at (the default -hotpath-lines).
const hotpathBaselineLines = 2600

// hotpathRecordedBaseline returns the pre-overhaul measurements, recorded
// on this machine immediately before the representation changes landed
// (string internKey guard interning, map[string]bool Steensgaard function
// sets, map[vfg.Loc] touched-sets). They are a snapshot, not reproducible
// bytes; the interesting quantity is the allocs/op ratio against Current.
func hotpathRecordedBaseline(lines int) *HotpathSide {
	if lines != hotpathBaselineLines {
		return nil
	}
	return &HotpathSide{
		GuardConstruct: HotpathSection{NsPerOp: 3700, AllocsPerOp: 43, BytesPerOp: 1073, Iters: 4000},
		PTAFixpoint:    HotpathSection{NsPerOp: 855000, AllocsPerOp: 3869, BytesPerOp: 341280, Iters: 8},
		DataDep:        HotpathSection{NsPerOp: 5200000, AllocsPerOp: 11595, BytesPerOp: 3596717, Iters: 8},
		Interference:   HotpathSection{NsPerOp: 275000, AllocsPerOp: 568, BytesPerOp: 84440, Iters: 8},
	}
}

// measureHotpath runs op iters times and reports per-op wall time and
// allocation deltas (runtime.MemStats sampling, the same counters
// b.ReportAllocs uses).
func measureHotpath(iters int, op func()) HotpathSection {
	if iters <= 0 {
		iters = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	n := int64(iters)
	return HotpathSection{
		NsPerOp:     wall.Nanoseconds() / n,
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / n,
		Iters:       iters,
	}
}

// measureHotpathPaired is measureHotpath for an operation that needs
// fresh state each iteration: setup runs outside the measured window,
// op inside it. Timing each iteration directly — instead of measuring
// setup+op and subtracting a separate setup-only measure — avoids the
// delta-of-means trap where run-to-run noise in the two measures swamps
// a small op and clips its cost to zero.
func measureHotpathPaired(iters int, setup, op func()) HotpathSection {
	if iters <= 0 {
		iters = 1
	}
	runtime.GC()
	var wall time.Duration
	var mallocs, bytes uint64
	var m0, m1 runtime.MemStats
	for i := 0; i < iters; i++ {
		setup()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		op()
		wall += time.Since(t0)
		runtime.ReadMemStats(&m1)
		mallocs += m1.Mallocs - m0.Mallocs
		bytes += m1.TotalAlloc - m0.TotalAlloc
	}
	n := int64(iters)
	return HotpathSection{
		NsPerOp:     wall.Nanoseconds() / n,
		AllocsPerOp: int64(mallocs) / n,
		BytesPerOp:  int64(bytes) / n,
		Iters:       iters,
	}
}

// hotpathSink defeats dead-code elimination of the guard workload.
var hotpathSink *guard.Formula

// guardConstructOp builds one representative batch of alias-guard shapes
// (the Φ_alias conjunctions the interference pass constructs per candidate
// pair) over a small atom universe, so after a warm-up prefix most
// constructions are hash-cons hits — the steady state of a real build.
func guardConstructOp(bools, orders []guard.Atom) func() {
	i := uint32(0)
	return func() {
		i++
		x := i * 2654435761
		a := guard.Var(bools[x%uint32(len(bools))])
		b := guard.Var(bools[(x>>7)%uint32(len(bools))])
		c := guard.Var(bools[(x>>14)%uint32(len(bools))])
		o := guard.Var(orders[(x>>21)%uint32(len(orders))])
		φ1 := guard.Or(a, guard.Not(b))
		φ2 := guard.And(c, o)
		hotpathSink = guard.And(φ1, φ2, guard.Not(guard.And(a, guard.Not(c))))
	}
}

// RunHotpath measures the allocation-dominated hot paths of the pipeline
// on one generated subject: synthetic steady-state guard construction,
// the whole-program Steensgaard fixpoint, and single Alg. 1 / Alg. 2
// rounds via the core bench hooks. The interference section is timed
// per iteration with the datadep round it depends on as untimed setup.
func (e *Experiments) RunHotpath(spec workload.Spec, guardOps, iters int) (HotpathResult, error) {
	res := HotpathResult{Lines: spec.Lines}
	if guardOps <= 0 {
		guardOps = 4000
	}
	if iters <= 0 {
		iters = 8
	}

	// Guard construction over a fixed atom universe.
	pool := guard.NewPool()
	bools := make([]guard.Atom, 16)
	for i := range bools {
		bools[i] = pool.Bool(fmt.Sprintf("θ%d", i))
	}
	orders := make([]guard.Atom, 8)
	for i := range orders {
		orders[i] = pool.Order(i, i+1)
	}
	op := guardConstructOp(bools, orders)
	op() // warm the interner with the first shapes outside the measurement
	res.Current.GuardConstruct = measureHotpath(guardOps, op)
	e.logf("  hotpath guard-construct: %d allocs/op, %d B/op, %dns/op\n",
		res.Current.GuardConstruct.AllocsPerOp, res.Current.GuardConstruct.BytesPerOp,
		res.Current.GuardConstruct.NsPerOp)

	// Subject for the analysis sections.
	src := workload.Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		return res, fmt.Errorf("hotpath subject does not parse: %w", err)
	}
	prog, err := lowerSubject(spec)
	if err != nil {
		return res, err
	}

	res.Current.PTAFixpoint = measureHotpath(iters, func() {
		pta.AnalyzeFuncPointers(ast)
	})
	e.logf("  hotpath pta-fixpoint:    %d allocs/op, %d B/op, %dns/op\n",
		res.Current.PTAFixpoint.AllocsPerOp, res.Current.PTAFixpoint.BytesPerOp,
		res.Current.PTAFixpoint.NsPerOp)

	b := core.NewBenchBuilder(prog, core.DefaultBuild())
	res.Current.DataDep = measureHotpath(iters, func() {
		b.BenchReset()
		b.BenchDataDepRound()
	})
	e.logf("  hotpath datadep:         %d allocs/op, %d B/op, %dns/op\n",
		res.Current.DataDep.AllocsPerOp, res.Current.DataDep.BytesPerOp,
		res.Current.DataDep.NsPerOp)

	// The interference round needs a fresh datadep pass each iteration, so
	// the datadep work runs as untimed setup and only the interference
	// round is measured. (An earlier version measured a combined
	// datadep+interference loop and subtracted the datadep-only mean;
	// measurement noise between the two loops routinely exceeded the
	// interference cost and the clipped difference recorded 0 ns/op.)
	res.Current.Interference = measureHotpathPaired(iters,
		func() {
			b.BenchReset()
			b.BenchDataDepRound()
		},
		func() {
			b.BenchInterferenceRound()
		})
	e.logf("  hotpath interference:    %d allocs/op, %d B/op, %dns/op\n",
		res.Current.Interference.AllocsPerOp, res.Current.Interference.BytesPerOp,
		res.Current.Interference.NsPerOp)

	res.Baseline = hotpathRecordedBaseline(spec.Lines)
	if res.Baseline != nil {
		res.GuardAllocRatio = allocRatio(res.Baseline.GuardConstruct, res.Current.GuardConstruct)
		res.PTAAllocRatio = allocRatio(res.Baseline.PTAFixpoint, res.Current.PTAFixpoint)
	}
	return res, nil
}

func allocRatio(base, cur HotpathSection) float64 {
	if cur.AllocsPerOp <= 0 {
		cur.AllocsPerOp = 1
	}
	return float64(base.AllocsPerOp) / float64(cur.AllocsPerOp)
}
