package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/fleet"
	"canary/internal/membership"
	"canary/internal/workload"
)

// ChaosRound is one scripted failure scenario: the corpus streamed
// through the router while the fleet is being hurt, with the client
// allowed at most one retry per item.
type ChaosRound struct {
	Name  string `json:"name"`
	Items int    `json:"items"`
	// Succeeded items answered with findings byte-identical to the
	// direct run; Divergent items answered but with different bytes;
	// Lost items failed even after the retry budget.
	Succeeded int `json:"succeeded"`
	Divergent int `json:"divergent"`
	Lost      int `json:"lost"`
	// Retries counts retryable errors the client absorbed (each item
	// gets at most one).
	Retries int `json:"retries"`
	// Identical: every answered item matched the direct findings.
	Identical bool `json:"identical"`
	// ConvergeHeartbeats is how many gossip intervals the round's
	// membership event took to reach the router's ring (0 when the
	// round has no membership event).
	ConvergeHeartbeats float64       `json:"converge_heartbeats"`
	Wall               time.Duration `json:"wall_ns"`
}

// ChaosResult is the chaos experiment: a dynamic-membership fleet
// under scripted SIGKILL / restart / SIGSTOP / failpoint-storm rounds,
// proving findings stay byte-identical and no request is silently
// lost. On a single-CPU host the signal is convergence and identity,
// never throughput.
type ChaosResult struct {
	Lines          int           `json:"lines"`
	Items          int           `json:"items"`
	Workers        int           `json:"workers"`
	GossipInterval time.Duration `json:"gossip_interval_ns"`
	Rounds         []ChaosRound  `json:"rounds"`
	// The hard gates.
	AllIdentical bool `json:"all_identical"`
	NoneLost     bool `json:"none_lost"`
	// Converged: every membership event reached the router's ring
	// within the heartbeat bound.
	Converged         bool              `json:"converged"`
	HeartbeatBound    float64           `json:"heartbeat_bound"`
	SuspectObserved   bool              `json:"suspect_observed"`
	RouterStats       fleet.RouterStats `json:"router"`
	BreakerOpensTotal uint64            `json:"breaker_opens_total"`
}

// chaosHeartbeatBound is how many gossip intervals a membership event
// may take to reach the router's ring before the experiment fails.
// Death detection alone costs DeadAfter = 10 intervals; the bound
// leaves slack for scheduling noise on a loaded single-CPU host, while
// still catching a protocol that converges by accident of timeouts.
const chaosHeartbeatBound = 120

// chaosWorker is one spawned fleet-child plus what is needed to kill
// and resurrect it.
type chaosWorker struct {
	url  string
	addr string
	dir  string
	cmd  *exec.Cmd
}

// spawnChaosWorker starts one -fleet-child in dynamic-membership mode
// and waits for its listening line. extraEnv entries (e.g. a
// CANARY_FAILPOINTS arming) are appended to the inherited environment.
func spawnChaosWorker(exe, addr string, seeds []string, gossip time.Duration, dir string, extraEnv []string) (*chaosWorker, error) {
	cmd := exec.Command(exe, "-fleet-child",
		"-fleet-addr", addr,
		"-fleet-self", "http://"+addr,
		"-fleet-join", strings.Join(seeds, ","),
		"-fleet-gossip", gossip.String(),
		"-fleet-dir", dir,
		"-fleet-conc", "1")
	cmd.Stderr = os.Stderr
	if len(extraEnv) > 0 {
		cmd.Env = append(os.Environ(), extraEnv...)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	buf := make([]byte, 256)
	n, err := stdout.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "listening on") {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("chaos worker %s did not come up: %q (%v)", addr, buf[:n], err)
	}
	go io.Copy(io.Discard, stdout)
	return &chaosWorker{url: "http://" + addr, addr: addr, dir: dir, cmd: cmd}, nil
}

func (w *chaosWorker) sigkill() {
	w.cmd.Process.Kill()
	w.cmd.Wait()
}

// streamOne submits one single-item request through the router with a
// budget of exactly one retry: a retryable answer (transport error,
// 502, 503, 504) is retried once after honoring Retry-After; a second
// failure is a lost item. Returns the findings, how many retries were
// spent, and whether the item was lost.
func streamOne(hc *http.Client, routerURL, src string) (findings string, retries int, lost bool) {
	body, _ := json.Marshal(api.AnalyzeRequest{Source: src})
	for attempt := 0; attempt < 2; attempt++ {
		resp, err := hc.Post(routerURL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			if attempt == 0 {
				retries++
				time.Sleep(250 * time.Millisecond)
				continue
			}
			return "", retries, true
		}
		respBody, readErr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		retryable := readErr != nil ||
			resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout
		if retryable {
			if attempt == 0 {
				retries++
				wait := 250 * time.Millisecond
				if ra := resp.Header.Get("Retry-After"); ra != "" {
					if d, err := time.ParseDuration(ra + "s"); err == nil && d > 0 && d < 5*time.Second {
						wait = d
					}
				}
				time.Sleep(wait)
				continue
			}
			return "", retries, true
		}
		if resp.StatusCode != http.StatusOK {
			// A non-retryable refusal (4xx) of a valid source is a lost
			// item: the harness only submits well-formed programs.
			return "", retries, true
		}
		var jr api.JobResponse
		if err := json.Unmarshal(respBody, &jr); err != nil || jr.Status != "done" {
			return "", retries, true
		}
		f, err := findingsOf(jr.Result)
		if err != nil {
			return "", retries, true
		}
		return f, retries, false
	}
	return "", retries, true
}

// streamCorpus runs the whole corpus through the router, comparing
// every answer against the direct baseline.
func streamCorpus(hc *http.Client, routerURL string, corpus []api.AnalyzeItem, direct []string) ChaosRound {
	r := ChaosRound{Items: len(corpus), Identical: true}
	t0 := time.Now()
	for i, it := range corpus {
		f, retries, lost := streamOne(hc, routerURL, it.Source)
		r.Retries += retries
		switch {
		case lost:
			r.Lost++
		case f != direct[i]:
			r.Divergent++
			r.Identical = false
		default:
			r.Succeeded++
		}
	}
	r.Wall = time.Since(t0)
	if r.Divergent > 0 {
		r.Identical = false
	}
	return r
}

// waitRingLen polls the router's ring until it holds want members,
// returning the wait in gossip heartbeats (-1 on timeout).
func waitRingLen(rt *fleet.Router, want int, gossip, timeout time.Duration) float64 {
	t0 := time.Now()
	deadline := t0.Add(timeout)
	for time.Now().Before(deadline) {
		if rt.Ring().Len() == want {
			return float64(time.Since(t0)) / float64(gossip)
		}
		time.Sleep(gossip / 4)
	}
	return -1
}

// memberState reads the router's view of one member.
func memberState(rt *fleet.Router, id string) (membership.State, bool) {
	for _, m := range rt.Members() {
		if m.ID == id {
			return m.State, true
		}
	}
	return 0, false
}

// RunChaos runs the chaos experiment: workers spawned as real
// processes joined by gossip, an in-process router that learns the
// fleet the same way, and scripted rounds — baseline, SIGKILL,
// restart-rejoin, SIGSTOP/SIGCONT, and a failpoint storm — each
// streaming the corpus and asserting byte-identity against a direct
// library run.
func (e *Experiments) RunChaos(spec workload.Spec, items, workers int, gossip time.Duration, exe string) (ChaosResult, error) {
	if items <= 0 {
		items = 10
	}
	if workers < 3 {
		workers = 3
	}
	if gossip <= 0 {
		gossip = 150 * time.Millisecond
	}
	res := ChaosResult{
		Lines: spec.Lines, Items: items, Workers: workers,
		GossipInterval: gossip, HeartbeatBound: chaosHeartbeatBound,
		AllIdentical: true, NoneLost: true, Converged: true,
	}

	// Corpus and direct baseline, as in the fleet experiment.
	base := workload.Generate(spec)
	corpus := make([]api.AnalyzeItem, items)
	direct := make([]string, items)
	for i := range corpus {
		corpus[i] = api.AnalyzeItem{
			Source: fmt.Sprintf("%s\nfunc chaospad%d() { p%d = malloc(); }", base, i, i),
		}
		r, err := canary.Analyze(corpus[i].Source, fleetOptions())
		if err != nil {
			return res, fmt.Errorf("direct baseline item %d: %w", i, err)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			return res, err
		}
		if direct[i], err = findingsOf(raw); err != nil {
			return res, err
		}
	}

	// Pre-allocate worker addresses and persistent cache dirs: a
	// restarted worker reuses both, which is what makes rejoin-warm real.
	tmp, err := os.MkdirTemp("", "canary-chaos-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(tmp)
	addrs := make([]string, workers)
	seeds := make([]string, workers)
	dirs := make([]string, workers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		seeds[i] = "http://" + addrs[i]
		dirs[i] = fmt.Sprintf("%s/w%d", tmp, i)
	}

	procs := make([]*chaosWorker, workers)
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.sigkill()
			}
		}
	}()
	for i := range procs {
		w, err := spawnChaosWorker(exe, addrs[i], seeds, gossip, dirs[i], nil)
		if err != nil {
			return res, err
		}
		procs[i] = w
	}

	// The router: listener first so its advertised identity is real,
	// then a dynamic-membership router joined to the same seeds.
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Join:           seeds,
		Self:           "http://" + rln.Addr().String(),
		GossipInterval: gossip,
		RetryBackoff:   25 * time.Millisecond,
		Timeout:        8 * time.Second,
		HealthInterval: 500 * time.Millisecond,
		HedgeQuantile:  0.9,
		HedgeMinDelay:  100 * time.Millisecond,
	})
	if err != nil {
		rln.Close()
		return res, err
	}
	defer rt.Close()
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(rln)
	defer hs.Close()
	routerURL := "http://" + rln.Addr().String()
	hc := &http.Client{Timeout: 2 * time.Minute}

	record := func(name string, r ChaosRound, hb float64) {
		r.Name = name
		r.ConvergeHeartbeats = hb
		res.Rounds = append(res.Rounds, r)
		if !r.Identical {
			res.AllIdentical = false
		}
		if r.Lost > 0 {
			res.NoneLost = false
		}
		if hb < 0 || hb > chaosHeartbeatBound {
			res.Converged = false
		}
		e.logf("  chaos %-10s %d/%d ok, %d retries, %d lost, identical=%v, converge=%.1f heartbeats, %v\n",
			name, r.Succeeded, r.Items, r.Retries, r.Lost, r.Identical, hb, r.Wall.Round(time.Millisecond))
	}

	// Round 0 — baseline: the router must first learn all workers from
	// gossip alone, then the corpus streams clean.
	hb := waitRingLen(rt, workers, gossip, 30*time.Second)
	if hb < 0 {
		return res, fmt.Errorf("router never learned the %d-worker fleet", workers)
	}
	record("baseline", streamCorpus(hc, routerURL, corpus, direct), hb)

	// Round 1 — SIGKILL: a worker dies mid-corpus with no goodbye. The
	// stream must survive on failover; the ring must then shrink.
	victim := procs[1]
	victim.sigkill()
	procs[1] = nil
	round := streamCorpus(hc, routerURL, corpus, direct)
	hb = waitRingLen(rt, workers-1, gossip, 60*time.Second)
	record("sigkill", round, hb)

	// Round 2 — rejoin: the same identity restarts (incarnation 0, warm
	// disk store) and must refute its own death and retake its shard.
	w, err := spawnChaosWorker(exe, addrs[1], seeds, gossip, dirs[1], nil)
	if err != nil {
		return res, fmt.Errorf("rejoin respawn: %w", err)
	}
	procs[1] = w
	hb = waitRingLen(rt, workers, gossip, 60*time.Second)
	record("rejoin", streamCorpus(hc, routerURL, corpus, direct), hb)

	// Round 3 — pause: SIGSTOP exercises the suspect state (silent but
	// not dead: stays in the ring, requests hedge or fail over). After
	// SIGCONT direct contact must resurrect it without a restart.
	paused := procs[2]
	syscall.Kill(paused.cmd.Process.Pid, syscall.SIGSTOP)
	suspectDeadline := time.Now().Add(60 * time.Second)
	for {
		if st, ok := memberState(rt, paused.url); ok && st == membership.Suspect {
			res.SuspectObserved = true
			break
		}
		if time.Now().After(suspectDeadline) {
			break
		}
		time.Sleep(gossip / 2)
	}
	round = streamCorpus(hc, routerURL, corpus, direct)
	syscall.Kill(paused.cmd.Process.Pid, syscall.SIGCONT)
	aliveDeadline := time.Now().Add(60 * time.Second)
	t0 := time.Now()
	hb = -1
	for time.Now().Before(aliveDeadline) {
		if st, ok := memberState(rt, paused.url); ok && st == membership.Alive {
			hb = float64(time.Since(t0)) / float64(gossip)
			break
		}
		time.Sleep(gossip / 2)
	}
	record("pause", round, hb)

	// Round 4 — failpoint storm: a worker restarts with its peer-cache
	// and disk-store sites injecting intermittent faults. Degradation
	// paths (peer miss → local compute, disk miss → recompute) must
	// keep the findings byte-identical.
	procs[0].sigkill()
	procs[0] = nil
	storm := "CANARY_FAILPOINTS=peer-fetch=error@2;disk-read=error@2;disk-write=error@3;cache-read=error@5"
	w, err = spawnChaosWorker(exe, addrs[0], seeds, gossip, dirs[0], []string{storm})
	if err != nil {
		return res, fmt.Errorf("storm respawn: %w", err)
	}
	procs[0] = w
	hb = waitRingLen(rt, workers, gossip, 60*time.Second)
	record("storm", streamCorpus(hc, routerURL, corpus, direct), hb)

	res.RouterStats = rt.Stats()
	res.BreakerOpensTotal = rt.Stats().BreakerOpens
	return res, nil
}

// PrintChaos renders the chaos experiment as a text table.
func PrintChaos(w io.Writer, res ChaosResult) {
	fmt.Fprintf(w, "Chaos (%d workers, %d items of ~%d lines, gossip %v)\n",
		res.Workers, res.Items, res.Lines, res.GossipInterval)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %10s %12s %10s\n",
		"round", "ok", "retries", "lost", "identical", "converge(hb)", "wall")
	for _, r := range res.Rounds {
		fmt.Fprintf(w, "%-10s %5d/%-2d %8d %8d %10v %12.1f %10v\n",
			r.Name, r.Succeeded, r.Items, r.Retries, r.Lost, r.Identical,
			r.ConvergeHeartbeats, r.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "suspect state observed under pause: %v\n", res.SuspectObserved)
	fmt.Fprintf(w, "hedges=%d wins=%d failovers=%d breaker-opens=%d\n",
		res.RouterStats.Hedges, res.RouterStats.HedgeWins,
		res.RouterStats.Failovers, res.BreakerOpensTotal)
	fmt.Fprintf(w, "gates: identical=%v none-lost=%v converged=%v (bound %.0f heartbeats)\n",
		res.AllIdentical, res.NoneLost, res.Converged, res.HeartbeatBound)
}
