package bench

import (
	"time"

	"canary"
	"canary/internal/pipeline"
	"canary/internal/workload"
)

// StageCost is one pipeline stage's observed cost on the trace subject,
// copied from the analysis Result.Trace span.
type StageCost struct {
	Stage     string
	Wall      time.Duration
	Steps     int64
	Budget    int64
	CacheHits uint64
}

// TraceResult profiles one full analysis stage by stage: where the wall
// clock goes across the registry pipeline (parse, lower, pta, datadep,
// interference, mhp, vfg, check) on a single synthetic subject. The spans
// are the same ones `canary -trace` prints; this experiment exists to make
// the stage cost split reproducible from the bench harness.
type TraceResult struct {
	Lines   int
	Total   time.Duration
	Reports int
	Stages  []StageCost
	// Complete records whether every registry stage produced a span — the
	// tentpole contract of the pipeline runner.
	Complete bool
}

// RunTrace analyzes one generated subject and returns its per-stage trace.
func (e *Experiments) RunTrace(spec workload.Spec) (TraceResult, error) {
	res := TraceResult{Lines: spec.Lines}
	src := workload.Generate(spec)
	opt := canary.DefaultOptions()
	t0 := time.Now()
	out, err := canary.Analyze(src, opt)
	res.Total = time.Since(t0)
	if err != nil {
		return res, err
	}
	res.Reports = len(out.Reports)
	seen := make(map[string]bool, len(out.Trace))
	for _, sp := range out.Trace {
		res.Stages = append(res.Stages, StageCost{
			Stage: sp.Stage, Wall: sp.Wall, Steps: sp.Steps,
			Budget: sp.Budget, CacheHits: sp.CacheHits,
		})
		seen[sp.Stage] = true
		e.logf("  trace %-13s %12v steps=%d\n", sp.Stage, sp.Wall, sp.Steps)
	}
	res.Complete = true
	for _, name := range pipeline.StageNames() {
		if !seen[name] {
			res.Complete = false
		}
	}
	return res, nil
}
