package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"canary"
	"canary/internal/digest"
	"canary/internal/workload"
)

// SessionEditSample is one edit round of the sessions experiment: the
// same source change applied two ways — as a line-span patch through a
// live session (delta out) and as a full re-submission through a warm
// session (whole findings out) — with both sides' wall time including
// the JSON encode of what each would put on the wire.
type SessionEditSample struct {
	Seq         int
	Trivial     bool
	SessionTime time.Duration
	RerunTime   time.Duration
	Invalidated int
	Added       int
	Resolved    int
	Unchanged   int
}

// SessionsResult measures the edit-native protocol end to end. The two
// hard gates: FoldIdentical (the accumulated deltas reproduce a cold
// full analysis of the final source byte-for-byte) and SessionMedian <
// RerunMedian (over the whole edit stream, answering an edit through
// the session is strictly cheaper than the path it replaces — a client
// that re-submits the full source and pays a warm full re-run for every
// save, whether or not the save changed anything the analysis can see).
type SessionsResult struct {
	Lines int
	Edits int
	// OpenTime is the initial full analysis behind POST /v1/sessions.
	OpenTime time.Duration
	// SessionMedian and RerunMedian are per-edit medians over the whole
	// stream: every save costs the delta-less client a full warm re-run,
	// while the session short-circuits the representation-only ones.
	SessionMedian time.Duration
	RerunMedian   time.Duration
	// RealMedian and RealRerunMedian restrict both sides to the rounds
	// that actually re-analyzed — the honest view of the re-analysis
	// spine itself, which both paths share warm.
	RealMedian      time.Duration
	RealRerunMedian time.Duration
	// TrivialMedian is the session-side median of the comment-only
	// rounds — the representation-only fast path.
	TrivialMedian time.Duration
	Speedup       float64
	FoldIdentical bool
	Samples       []SessionEditSample
}

// sessionEditAt builds edit i of the scripted save stream: two
// representation-only saves (a trailing comment) for every semantic
// change (a fresh statement inserted before main's closing brace, which
// re-keys main's digest). The 2:1 mix models an IDE autosave stream,
// where most saves land mid-comment or reformat without changing what
// the analysis can observe.
func sessionEditAt(src string, i int) (canary.Edit, bool) {
	lines := strings.Split(strings.TrimSuffix(src, "\n"), "\n")
	n := len(lines)
	if i%3 != 2 {
		return canary.Edit{Start: n + 1, End: n + 1, Text: fmt.Sprintf("// pass %d\n", i)}, true
	}
	last := 0
	for j, l := range lines {
		if strings.TrimSpace(l) == "}" {
			last = j + 1
		}
	}
	if last == 0 {
		return canary.Edit{}, false
	}
	return canary.Edit{Start: last, End: last, Text: fmt.Sprintf("  spad%d = 1;\n", i)}, false
}

// RunSessions drives one live session and one warm full-re-run baseline
// through the same alternating edit script and compares their per-edit
// cost. Both baselines start from the same analyzed original, so the
// comparison isolates exactly what the diff protocol saves: the
// unchanged functions' re-analysis and the unchanged findings' re-wire.
// The whole script runs sessionIters times with fresh sessions, and each
// edit keeps the best of its runs on both sides — the same
// noise-floor discipline the incremental experiment uses.
func (e *Experiments) RunSessions(spec workload.Spec, edits int) (SessionsResult, error) {
	if edits <= 0 {
		edits = 9
	}
	const sessionIters = 3
	orig := workload.Generate(spec)
	opt := canary.DefaultOptions()
	// Same configuration as the incremental experiment, for the same
	// reason: with the order-fact closure on, the synthetic subjects
	// settle before the stores the warm paths reuse are ever consulted.
	opt.FactPropagation = false

	res := SessionsResult{Lines: spec.Lines, Edits: edits}
	for it := 0; it < sessionIters; it++ {
		one, err := e.runSessionsOnce(orig, opt, edits, it)
		if err != nil {
			return res, err
		}
		if it == 0 {
			res.OpenTime = one.OpenTime
			res.Samples = one.Samples
			res.FoldIdentical = one.FoldIdentical
			continue
		}
		if one.OpenTime < res.OpenTime {
			res.OpenTime = one.OpenTime
		}
		res.FoldIdentical = res.FoldIdentical && one.FoldIdentical
		for i := range res.Samples {
			if one.Samples[i].SessionTime < res.Samples[i].SessionTime {
				res.Samples[i].SessionTime = one.Samples[i].SessionTime
			}
			if one.Samples[i].RerunTime < res.Samples[i].RerunTime {
				res.Samples[i].RerunTime = one.Samples[i].RerunTime
			}
		}
	}

	var all, rerunAll, realTimes, realRerun, trivialTimes []time.Duration
	for _, s := range res.Samples {
		all = append(all, s.SessionTime)
		rerunAll = append(rerunAll, s.RerunTime)
		if s.Trivial {
			trivialTimes = append(trivialTimes, s.SessionTime)
		} else {
			realTimes = append(realTimes, s.SessionTime)
			realRerun = append(realRerun, s.RerunTime)
		}
	}
	res.SessionMedian = medianDuration(all)
	res.RerunMedian = medianDuration(rerunAll)
	res.RealMedian = medianDuration(realTimes)
	res.RealRerunMedian = medianDuration(realRerun)
	res.TrivialMedian = medianDuration(trivialTimes)
	if res.SessionMedian > 0 {
		res.Speedup = float64(res.RerunMedian) / float64(res.SessionMedian)
	}
	return res, nil
}

// runSessionsOnce is one full pass of the sessions experiment: fresh
// live and baseline sessions over orig, the alternating script applied
// to both, every delta folded and the fold checked against a cold
// analysis of the final source.
func (e *Experiments) runSessionsOnce(orig string, opt canary.Options, edits, iter int) (SessionsResult, error) {
	res := SessionsResult{}
	ctx := context.Background()

	t0 := time.Now()
	live, d, err := canary.NewSession().Open(orig, opt)
	if err != nil {
		return res, err
	}
	res.OpenTime = time.Since(t0)
	defer live.Close()
	folded, err := canary.FoldDelta(nil, d)
	if err != nil {
		return res, err
	}

	// The baseline a delta-less client would use: a warm session fed the
	// whole new source every time.
	baseSess := canary.NewSession()
	if _, err := baseSess.Analyze(orig, opt); err != nil {
		return res, err
	}

	cur := orig
	for i := 0; i < edits; i++ {
		ed, trivial := sessionEditAt(cur, i)
		if ed.Start == 0 {
			return res, fmt.Errorf("sessions experiment: no closing brace in subject")
		}
		next, err := digest.ApplyEdits(cur, []digest.Edit{{Start: ed.Start, End: ed.End, Text: ed.Text}})
		if err != nil {
			return res, fmt.Errorf("sessions experiment: mirror apply: %w", err)
		}

		t0 := time.Now()
		delta, err := live.ApplyEdits(ctx, []canary.Edit{ed})
		if err != nil {
			return res, err
		}
		if _, err := json.Marshal(delta); err != nil {
			return res, err
		}
		sessionTime := time.Since(t0)

		t0 = time.Now()
		bres, err := baseSess.Analyze(next, opt)
		if err != nil {
			return res, err
		}
		// The one-shot wire format (api.JobResponse) carries the whole
		// Result, so that is what the delta-less baseline pays to encode.
		if _, err := json.Marshal(bres); err != nil {
			return res, err
		}
		rerunTime := time.Since(t0)

		if folded, err = canary.FoldDelta(folded, delta); err != nil {
			return res, err
		}
		if trivial != !delta.Reanalyzed {
			return res, fmt.Errorf("sessions experiment: edit %d trivial=%v but Reanalyzed=%v", i, trivial, delta.Reanalyzed)
		}
		res.Samples = append(res.Samples, SessionEditSample{
			Seq:         delta.Seq,
			Trivial:     trivial,
			SessionTime: sessionTime,
			RerunTime:   rerunTime,
			Invalidated: len(delta.Invalidated),
			Added:       len(delta.Added),
			Resolved:    len(delta.Resolved),
			Unchanged:   delta.Unchanged,
		})
		e.logf("  sessions iter %d edit %d (%s): session=%v rerun=%v invalidated=%d\n",
			iter, i, map[bool]string{true: "trivial", false: "real"}[trivial],
			sessionTime.Round(time.Microsecond), rerunTime.Round(time.Microsecond),
			len(delta.Invalidated))
		cur = next
	}

	cold, err := canary.Analyze(cur, opt)
	if err != nil {
		return res, err
	}
	res.FoldIdentical = fmt.Sprintf("%#v", folded) == fmt.Sprintf("%#v", cold.Reports)
	return res, nil
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
