package bench

import (
	"fmt"
	"strings"
	"time"

	"canary"
	"canary/internal/lang"
	"canary/internal/workload"
)

// IncrementalResult measures the one-edit re-analysis scenario: a program
// is analyzed cold, one statement is inserted into one function, and the
// edited program is re-analyzed both cold (no warm state) and warm
// (through a Session primed with the original). The contract under test:
// warm output is byte-identical to cold, strictly fewer functions re-enter
// the summary fixpoint, and the warm latency is lower.
type IncrementalResult struct {
	Lines int
	Iters int
	// Funcs is the number of functions in the edited program;
	// FuncsReanalyzed of the warm run must come in strictly below it.
	Funcs int
	// ColdTime / WarmTime are best-of-iters latencies of analyzing the
	// edited program without and with the primed session.
	ColdTime time.Duration
	WarmTime time.Duration
	Speedup  float64
	// Warm-run reuse counters.
	SummaryHits     int
	FuncsReanalyzed int
	VerdictHits     int
	PairsRechecked  int
	TrivialSolves   int
	// Identical records whether the warm reports rendered byte-identically
	// to the cold ones (the determinism contract).
	Identical bool
}

// incrementalEdit is the statement inserted by the one-function mutation.
const incrementalEdit = "  incpad0 = 1;"

// mutateMain appends one benign statement at the end of main (the last
// function of a generated subject), modelling the smallest real edit: one
// function's body changes, its digest and dependency key change, and the
// program's instruction labels are re-assigned.
func mutateMain(src string) (string, error) {
	i := strings.LastIndex(src, "}")
	if i < 0 || !strings.Contains(src, "func main()") {
		return "", fmt.Errorf("incremental experiment: no main in subject")
	}
	return src[:i] + incrementalEdit + "\n" + src[i:], nil
}

// renderReports folds every observable field of the reports into one
// string, so byte-equality of renders is byte-equality of results.
func renderReports(res *canary.Result) string {
	return fmt.Sprintf("%#v", res.Reports)
}

// RunIncremental measures the cold-vs-warm latency of re-analyzing spec
// after a one-statement edit to main, taking the best of iters runs each
// way. Warm runs get a fresh Session primed (untimed) with the pre-edit
// program, so every iteration replays the identical store state.
func (e *Experiments) RunIncremental(spec workload.Spec, iters int) (IncrementalResult, error) {
	if iters <= 0 {
		iters = 1
	}
	res := IncrementalResult{Lines: spec.Lines, Iters: iters}
	orig := workload.Generate(spec)
	edited, err := mutateMain(orig)
	if err != nil {
		return res, err
	}
	ast, err := lang.Parse(edited)
	if err != nil {
		return res, fmt.Errorf("incremental experiment: edited subject does not parse: %w", err)
	}
	res.Funcs = len(ast.Funcs)
	opt := canary.DefaultOptions()
	// Run with the order-fact closure disabled so realizability decisions
	// actually reach the solver layer: with it on, the synthetic subjects'
	// few candidate paths are all settled by fact propagation or the
	// presolve fast path and the verdict store has nothing to absorb. This
	// is the configuration where cross-run verdict reuse is measurable.
	opt.FactPropagation = false

	var coldRender string
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		cold, err := canary.Analyze(edited, opt)
		d := time.Since(t0)
		if err != nil {
			return res, err
		}
		if i == 0 {
			coldRender = renderReports(cold)
			res.ColdTime = d
		} else if d < res.ColdTime {
			res.ColdTime = d
		}
	}

	for i := 0; i < iters; i++ {
		sess := canary.NewSession()
		if _, err := sess.Analyze(orig, opt); err != nil {
			return res, err
		}
		t0 := time.Now()
		warm, err := sess.Analyze(edited, opt)
		d := time.Since(t0)
		if err != nil {
			return res, err
		}
		if i == 0 {
			res.Identical = renderReports(warm) == coldRender
			res.SummaryHits = warm.VFG.SummaryHits
			res.FuncsReanalyzed = warm.VFG.FuncsReanalyzed
			res.VerdictHits = warm.Check.VerdictHits
			res.PairsRechecked = warm.Check.PairsRechecked
			res.TrivialSolves = warm.Check.TrivialSolves
			res.WarmTime = d
		} else if d < res.WarmTime {
			res.WarmTime = d
		}
		e.logf("  incremental iter %d: warm=%v summaries %d/%d reused, %d verdict hits\n",
			i, d.Round(time.Millisecond), warm.VFG.SummaryHits, res.Funcs, warm.Check.VerdictHits)
	}
	if res.WarmTime > 0 {
		res.Speedup = float64(res.ColdTime) / float64(res.WarmTime)
	}
	return res, nil
}
