// Package failpoint is a build-tag-free deterministic fault-injection
// registry. Production code calls Inject(site) at a handful of named
// sites; the call is a single atomic load when no failpoint is armed.
// Tests (or the CANARY_FAILPOINTS environment variable) arm a site with
// an action spec and every registered fault then surfaces as a typed
// error, a recovered panic, or an injected delay — never as silent
// corruption — which the fault-injection suite relies on to prove the
// pipeline degrades instead of crashing.
//
// Spec grammar (one per site):
//
//	action   := "error" | "panic" | "sleep:" duration
//	spec     := action [ "@" N ]        // fire on every Nth hit (default 1)
//	env form := site "=" spec { ";" site "=" spec }
//
// Examples: "error", "panic@3", "sleep:50ms", and the env variable
// CANARY_FAILPOINTS="smt-solve=error;job-dequeue=sleep:400ms".
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canary/internal/pipeline"
)

// The registered sites. The names are owned by the pipeline stage
// registry — each site is pinned there to the stage it fires inside —
// and re-exported here as aliases so instrumented code keeps reading
// failpoint.SiteX. Sites() returns them all for exhaustive test sweeps.
const (
	SiteParse         = pipeline.SiteParse         // parse stage entry (runner-injected)
	SiteLower         = pipeline.SiteLower         // lower stage entry (runner-injected)
	SitePTAFixpoint   = pipeline.SitePTAFixpoint   // pta summary fixpoint, per round
	SiteBuildFixpoint = pipeline.SiteBuildFixpoint // VFG outer fixpoint, per iteration
	SiteGuardEval     = pipeline.SiteGuardEval     // guard assembly in validateQuery
	SiteSMTSolve      = pipeline.SiteSMTSolve      // immediately before a real solver run
	SiteCacheRead     = pipeline.SiteCacheRead     // cache.Store.Get (fault → miss)
	SiteCacheWrite    = pipeline.SiteCacheWrite    // cache.Store.Put (fault → skip)
	SiteVerdictRead   = pipeline.SiteVerdictRead   // structural verdict lookup (fault → miss)
	SiteJobDequeue    = pipeline.SiteJobDequeue    // canaryd worker, after dequeue
	SiteDiskRead      = pipeline.SiteDiskRead      // diskstore entry read (fault → miss)
	SiteDiskWrite     = pipeline.SiteDiskWrite     // diskstore entry write (fault → stays cold)
	SiteDiskCorrupt   = pipeline.SiteDiskCorrupt   // diskstore read-side bit flip (checksum → miss)
	SitePeerFetch     = pipeline.SitePeerFetch     // fleet peer cache fetch (fault → local compute)
)

// allSites derives from the registry. Package-level variable
// initialization runs before init(), so the CANARY_FAILPOINTS env hook
// always validates against the full list.
var allSites = pipeline.FailpointSites()

// ErrInjected is the sentinel wrapped by every injected error; callers
// and tests match it with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

// Error is the typed error produced by an "error"-mode failpoint. It
// wraps ErrInjected and names the site that fired.
type Error struct{ Site string }

func (e *Error) Error() string { return "failpoint " + e.Site + ": injected fault" }
func (e *Error) Unwrap() error { return ErrInjected }

type action struct {
	kind  string        // "error" | "panic" | "sleep"
	sleep time.Duration // for kind == "sleep"
	every uint64        // fire on every Nth hit; >= 1
	hits  uint64        // guarded by mu
}

var (
	mu    sync.Mutex
	sites = map[string]*action{}
	hits  = map[string]uint64{} // total Inject calls per site, armed or not fired
	armed atomic.Int32          // fast path: number of armed sites
)

// The env hook runs at package init so that binaries (canaryd under the
// smoke test) can be fault-armed without any code change.
func init() { initEnv() }

func initEnv() {
	spec := os.Getenv("CANARY_FAILPOINTS")
	if spec == "" {
		return
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, act, ok := strings.Cut(part, "=")
		if !ok {
			continue // malformed entries are ignored, never fatal
		}
		_ = Enable(strings.TrimSpace(site), strings.TrimSpace(act))
	}
}

// Enable arms site with the given action spec. Unknown sites and
// malformed specs return an error and leave the registry unchanged.
func Enable(site, spec string) error {
	if !known(site) {
		return fmt.Errorf("failpoint: unknown site %q", site)
	}
	a, err := parseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if _, on := sites[site]; !on {
		armed.Add(1)
	}
	sites[site] = a
	return nil
}

// Disable disarms site; it is a no-op when the site is not armed.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, on := sites[site]; on {
		delete(sites, site)
		armed.Add(-1)
	}
}

// Reset disarms every site and clears the hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = map[string]*action{}
	hits = map[string]uint64{}
}

// Sites returns all registered site names, sorted.
func Sites() []string {
	out := append([]string(nil), allSites...)
	sort.Strings(out)
	return out
}

// Hits reports how many times Inject(site) has been reached since the
// last Reset, whether or not a fault fired.
func Hits(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

func known(site string) bool {
	for _, s := range allSites {
		if s == site {
			return true
		}
	}
	return false
}

func parseSpec(spec string) (*action, error) {
	every := uint64(1)
	if at := strings.LastIndexByte(spec, '@'); at >= 0 {
		n, err := strconv.ParseUint(spec[at+1:], 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("failpoint: bad hit modulus in %q", spec)
		}
		every = n
		spec = spec[:at]
	}
	switch {
	case spec == "error":
		return &action{kind: "error", every: every}, nil
	case spec == "panic":
		return &action{kind: "panic", every: every}, nil
	case strings.HasPrefix(spec, "sleep:"):
		d, err := time.ParseDuration(spec[len("sleep:"):])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("failpoint: bad sleep duration in %q", spec)
		}
		return &action{kind: "sleep", sleep: d, every: every}, nil
	}
	return nil, fmt.Errorf("failpoint: unknown action %q", spec)
}

// Inject is the production hook. With nothing armed it is a single
// atomic load; with site armed it performs the configured action: an
// "error" spec returns *Error, "panic" panics with *Error, and "sleep"
// blocks for the configured duration and returns nil.
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	hits[site]++
	a := sites[site]
	var fire bool
	var kind string
	var d time.Duration
	if a != nil {
		a.hits++
		fire = a.hits%a.every == 0
		kind, d = a.kind, a.sleep
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	switch kind {
	case "error":
		return &Error{Site: site}
	case "panic":
		panic(&Error{Site: site})
	case "sleep":
		time.Sleep(d)
	}
	return nil
}
