package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if err := Inject(SiteParse); err != nil {
		t.Fatalf("disarmed site injected: %v", err)
	}
	if Hits(SiteParse) != 0 {
		t.Fatal("disarmed fast path must not count hits")
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(SiteSMTSolve, "error"); err != nil {
		t.Fatal(err)
	}
	err := Inject(SiteSMTSolve)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteSMTSolve {
		t.Fatalf("want typed *Error with site, got %#v", err)
	}
	if Hits(SiteSMTSolve) != 1 {
		t.Fatalf("hits = %d, want 1", Hits(SiteSMTSolve))
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(SiteGuardEval, "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic mode did not panic")
		}
		fe, ok := r.(*Error)
		if !ok || fe.Site != SiteGuardEval {
			t.Fatalf("panic payload = %#v, want *Error{guard-eval}", r)
		}
	}()
	_ = Inject(SiteGuardEval)
}

func TestEveryNth(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(SiteCacheRead, "error@3"); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 9; i++ {
		if Inject(SiteCacheRead) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("error@3 fired %d/9 times, want 3", fired)
	}
}

func TestSleepMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(SiteJobDequeue, "sleep:10ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(SiteJobDequeue); err != nil {
		t.Fatalf("sleep mode returned error: %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("sleep mode did not sleep")
	}
}

func TestDisableAndReset(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(SiteLower, "error"); err != nil {
		t.Fatal(err)
	}
	Disable(SiteLower)
	if err := Inject(SiteLower); err != nil {
		t.Fatalf("disabled site injected: %v", err)
	}
	if err := Enable(SiteLower, "error"); err != nil {
		t.Fatal(err)
	}
	Reset()
	if err := Inject(SiteLower); err != nil {
		t.Fatalf("reset site injected: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	Reset()
	defer Reset()
	for _, bad := range []struct{ site, spec string }{
		{"no-such-site", "error"},
		{SiteParse, "explode"},
		{SiteParse, "error@0"},
		{SiteParse, "error@x"},
		{SiteParse, "sleep:xyz"},
	} {
		if err := Enable(bad.site, bad.spec); err == nil {
			t.Errorf("Enable(%q, %q) accepted", bad.site, bad.spec)
		}
	}
}

func TestSitesComplete(t *testing.T) {
	s := Sites()
	if len(s) != 14 {
		t.Fatalf("registered %d sites, want 14", len(s))
	}
	for _, site := range s {
		if !known(site) {
			t.Errorf("Sites() returned unknown site %q", site)
		}
	}
}
