package digest

// Edit-native entry points: the incremental layer's public contract is
// "edits in, invalidated cone out". An Edit is a line-span patch against
// the *current* revision of a source; ApplyEdits patches the text and
// ApplyEdit additionally reports which function summaries the patch
// invalidates (the reverse-reachable digest set), which is exactly the
// set a warm Session re-analyzes. Spans are expressed in lines because
// CanonicalSource preserves line structure, so line numbers are stable
// across the canonicalization that all digest keys are computed over.

import (
	"fmt"
	"sort"
	"strings"

	"canary/internal/cache"
	"canary/internal/lang"
)

// Edit replaces the half-open line range [Start, End) of the current
// source with Text. Lines are 1-based; End == Start inserts before line
// Start without removing anything; End == lineCount+1 extends through
// the last line. Text is zero or more complete lines (a trailing
// newline is optional and never produces an extra empty line).
type Edit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// sourceLines splits a source into lines, dropping the empty remainder
// after a trailing newline so that "a\nb\n" is two lines, not three.
func sourceLines(src string) []string {
	if src == "" {
		return nil
	}
	lines := strings.Split(src, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// textLines splits replacement text into lines. An empty string is a
// pure deletion (zero lines); at most one trailing newline is absorbed.
func textLines(text string) []string {
	if text == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(text, "\n"), "\n")
}

// ApplyEdits patches src with a set of non-overlapping line-span edits,
// all addressed against the same (pre-edit) revision, and returns the
// patched source with a single trailing newline. The edit set is
// validated as a whole before anything is applied: out-of-range spans,
// inverted spans, and overlapping spans reject the entire set, so a
// failed call leaves the caller's revision untouched by construction.
func ApplyEdits(src string, edits []Edit) (string, error) {
	lines := sourceLines(src)
	n := len(lines)
	sorted := append([]Edit(nil), edits...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	for i, e := range sorted {
		if e.Start < 1 {
			return "", fmt.Errorf("digest: edit %d: start line %d is below 1", i, e.Start)
		}
		if e.End < e.Start {
			return "", fmt.Errorf("digest: edit %d: end line %d precedes start line %d", i, e.End, e.Start)
		}
		if e.End > n+1 {
			return "", fmt.Errorf("digest: edit %d: end line %d is beyond the source (%d lines)", i, e.End, n)
		}
		if i > 0 {
			prev := sorted[i-1]
			// Pure insertions at the same point are order-ambiguous;
			// everything else must cover disjoint spans. An insertion
			// immediately followed by a replacement starting at the same
			// line is fine: the (Start, End) sort puts the insertion
			// first, and bottom-up application keeps it there.
			if prev.End > e.Start || (prev.Start == e.Start && prev.End == e.End) {
				return "", fmt.Errorf("digest: edits %d and %d overlap", i-1, i)
			}
		}
	}
	// Apply bottom-up so earlier spans keep their pre-edit line numbers.
	for i := len(sorted) - 1; i >= 0; i-- {
		e := sorted[i]
		repl := textLines(e.Text)
		tail := append([]string(nil), lines[e.End-1:]...)
		lines = append(append(lines[:e.Start-1], repl...), tail...)
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// Invalidated diffs two per-function summary-key maps and returns the
// sorted names whose digest changed or is new — the functions a warm
// session must re-analyze. Because SummaryKeys folds in transitively
// reachable callees, this is the full reverse-reachable cone of the
// edited functions, not just the functions whose bodies moved.
func Invalidated(oldKeys, newKeys map[string]cache.Key) []string {
	var out []string
	for name, nk := range newKeys {
		if ok, exists := oldKeys[name]; !exists || ok != nk {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ApplyEdit patches src, parses both revisions, and returns the patched
// source together with the invalidated reverse-reachable digest set.
// Callers that cache the pre-edit SummaryKeys (the live session engine)
// use ApplyEdits + Invalidated directly and skip the double parse.
func ApplyEdit(src string, edits []Edit) (patched string, invalidated []string, err error) {
	patched, err = ApplyEdits(src, edits)
	if err != nil {
		return "", nil, err
	}
	oldAST, err := lang.Parse(src)
	if err != nil {
		return "", nil, fmt.Errorf("digest: base source: %w", err)
	}
	newAST, err := lang.Parse(patched)
	if err != nil {
		return "", nil, fmt.Errorf("digest: patched source: %w", err)
	}
	return patched, Invalidated(SummaryKeys(oldAST), SummaryKeys(newAST)), nil
}
