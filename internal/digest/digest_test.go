package digest

import (
	"strings"
	"testing"

	"canary/internal/lang"
)

func TestCanonicalSourceRepresentationOnly(t *testing.T) {
	base := "func main() {\n  x = malloc();\n  print(*x);\n}\n"
	variants := []string{
		"func main() {\r\n  x = malloc();\r\n  print(*x);\r\n}\r\n",          // CRLF
		"func main() {  \n  x = malloc();\t\n  print(*x);\n}\n\n\n",          // trailing blanks
		"func main() { // entry\n  x = malloc();\n  print(*x); // show\n}\n", // comment text
		"func main() {\n  x = malloc(); // fresh cell\n  print(*x);\n}",      // no final newline
	}
	want := CanonicalSource(base)
	for i, v := range variants {
		if got := CanonicalSource(v); got != want {
			t.Errorf("variant %d canonicalizes differently:\n%q\nvs\n%q", i, got, want)
		}
	}
	// A real edit must change the canonical text.
	if CanonicalSource(strings.Replace(base, "print(*x)", "free(x)", 1)) == want {
		t.Error("semantic edit did not change the canonical source")
	}
}

func TestCanonicalSourcePreservesLineStructure(t *testing.T) {
	src := "func main() { // c1\n\n  x = malloc();\r\n  print(*x);\n}\n"
	canon := CanonicalSource(src)
	// No line is added or removed (modulo the normalized final newline), so
	// positions inside a cached result stay valid for every alias source.
	srcLines := strings.Split(strings.TrimRight(strings.ReplaceAll(src, "\r\n", "\n"), "\n"), "\n")
	canonLines := strings.Split(strings.TrimRight(canon, "\n"), "\n")
	if len(srcLines) != len(canonLines) {
		t.Fatalf("canonicalization changed the line count: %d -> %d", len(srcLines), len(canonLines))
	}
}

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func funcByName(t *testing.T, prog *lang.Program, name string) *lang.FuncDecl {
	t.Helper()
	for _, f := range prog.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func TestFuncStructLocalRenameInsensitive(t *testing.T) {
	a := mustParse(t, `
func worker(cell) {
  v = malloc();
  *cell = v;
}
func main() {
  c = malloc();
  fork(t, worker, c);
}
`)
	b := mustParse(t, `
func worker(slot) {
  fresh = malloc();
  *slot = fresh;
}
func main() {
  box = malloc();
  fork(handle, worker, box);
}
`)
	for _, name := range []string{"worker", "main"} {
		ka := FuncStruct(a, funcByName(t, a, name))
		kb := FuncStruct(b, funcByName(t, b, name))
		if ka != kb {
			t.Errorf("%s: local rename changed the structural digest", name)
		}
	}
	// A structural edit must change the digest.
	c := mustParse(t, `
func worker(cell) {
  v = malloc();
  *cell = v;
  free(v);
}
func main() {
  c = malloc();
  fork(t, worker, c);
}
`)
	if FuncStruct(a, funcByName(t, a, "worker")) == FuncStruct(c, funcByName(t, c, "worker")) {
		t.Error("worker: structural edit kept the digest")
	}
}

// TestSummaryKeysInvalidation checks the dependency rule on the chain
// main -> mid -> leaf: editing leaf invalidates every key, editing main
// invalidates only main.
func TestSummaryKeysInvalidation(t *testing.T) {
	src := `
func leaf(p) {
  q = p;
  return q;
}
func mid(p) {
  rv = leaf(p);
  return rv;
}
func main() {
  x = malloc();
  y = mid(x);
  print(*y);
}
`
	orig := SummaryKeys(mustParse(t, src))

	leafEdit := SummaryKeys(mustParse(t, strings.Replace(src, "q = p;", "q = p;\n  print(*q);", 1)))
	for _, name := range []string{"leaf", "mid", "main"} {
		if orig[name] == leafEdit[name] {
			t.Errorf("leaf edit did not invalidate %s", name)
		}
	}

	mainEdit := SummaryKeys(mustParse(t, strings.Replace(src, "print(*y);", "print(*y);\n  print(*x);", 1)))
	if orig["main"] == mainEdit["main"] {
		t.Error("main edit did not invalidate main")
	}
	for _, name := range []string{"leaf", "mid"} {
		if orig[name] != mainEdit[name] {
			t.Errorf("main edit invalidated %s (it should not)", name)
		}
	}

	// Renaming a local anywhere invalidates nothing.
	renamed := SummaryKeys(mustParse(t, strings.ReplaceAll(src, "rv", "res")))
	for _, name := range []string{"leaf", "mid", "main"} {
		if orig[name] != renamed[name] {
			t.Errorf("local rename invalidated %s", name)
		}
	}
}

// TestSummaryKeysRecursion checks that mutually recursive functions get
// stable, distinct keys and that an edit inside the cycle invalidates every
// member of the cycle.
func TestSummaryKeysRecursion(t *testing.T) {
	src := `
func ping(p) {
  r = pong(p);
  return r;
}
func pong(p) {
  r = ping(p);
  return r;
}
func main() {
  x = malloc();
  y = ping(x);
  print(*y);
}
`
	orig := SummaryKeys(mustParse(t, src))
	again := SummaryKeys(mustParse(t, src))
	for name, k := range orig {
		if again[name] != k {
			t.Errorf("%s: key not deterministic across parses", name)
		}
	}
	edit := SummaryKeys(mustParse(t, strings.Replace(src, "r = ping(p);", "r = ping(p);\n  print(*r);", 1)))
	for _, name := range []string{"ping", "pong", "main"} {
		if orig[name] == edit[name] {
			t.Errorf("cycle edit did not invalidate %s", name)
		}
	}
}
