package digest

import (
	"strings"
	"testing"

	"canary/internal/lang"
)

const editBase = "func helper(p) {\n  q = *p;\n  print(*p);\n}\n" +
	"func leaf() {\n  z = 1;\n}\n" +
	"func main() {\n  x = malloc();\n  helper(x);\n  leaf();\n}\n"

func TestApplyEditsBasic(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		edits []Edit
		want  string
	}{
		{"replace-one-line", "a\nb\nc\n", []Edit{{2, 3, "B\n"}}, "a\nB\nc\n"},
		{"insert-before", "a\nb\n", []Edit{{2, 2, "x\ny\n"}}, "a\nx\ny\nb\n"},
		{"append-at-end", "a\nb\n", []Edit{{3, 3, "c\n"}}, "a\nb\nc\n"},
		{"delete-span", "a\nb\nc\nd\n", []Edit{{2, 4, ""}}, "a\nd\n"},
		{"no-trailing-newline-text", "a\nb\n", []Edit{{1, 2, "A"}}, "A\nb\n"},
		{"source-without-final-newline", "a\nb", []Edit{{2, 3, "B\n"}}, "a\nB\n"},
		{"two-disjoint-edits", "a\nb\nc\nd\n", []Edit{{4, 5, "D\n"}, {1, 2, "A\n"}}, "A\nb\nc\nD\n"},
		{"adjacent-edits", "a\nb\nc\n", []Edit{{2, 2, "x\n"}, {2, 3, "B\n"}}, "a\nx\nB\nc\n"},
		{"empty-edit-set", "a\nb\n", nil, "a\nb\n"},
	}
	for _, tc := range cases {
		got, err := ApplyEdits(tc.src, tc.edits)
		if err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q want %q", tc.name, got, tc.want)
		}
	}
}

func TestApplyEditsRejects(t *testing.T) {
	cases := []struct {
		name  string
		edits []Edit
	}{
		{"zero-start", []Edit{{0, 1, "x\n"}}},
		{"negative-start", []Edit{{-3, 1, "x\n"}}},
		{"inverted-span", []Edit{{3, 2, "x\n"}}},
		{"end-beyond-source", []Edit{{1, 9, "x\n"}}},
		{"start-beyond-source", []Edit{{9, 9, "x\n"}}},
		{"overlapping", []Edit{{1, 3, "x\n"}, {2, 4, "y\n"}}},
		{"duplicate-insertion-point", []Edit{{2, 2, "x\n"}, {2, 2, "y\n"}}},
	}
	src := "a\nb\nc\n"
	for _, tc := range cases {
		if _, err := ApplyEdits(src, tc.edits); err == nil {
			t.Errorf("%s: expected rejection, got none", tc.name)
		}
	}
}

// An edit to one function invalidates exactly its reverse-reachable
// cone: callers re-key because their summary folds in callee digests,
// untouched sibling functions keep their keys.
func TestApplyEditInvalidatesReverseCone(t *testing.T) {
	patched, invalidated, err := ApplyEdit(editBase, []Edit{{2, 3, "  q = p;\n"}})
	if err != nil {
		t.Fatalf("ApplyEdit: %v", err)
	}
	if !strings.Contains(patched, "q = p;") || strings.Contains(patched, "q = *p;") {
		t.Fatalf("patch not applied:\n%s", patched)
	}
	want := []string{"helper", "main"}
	if len(invalidated) != len(want) {
		t.Fatalf("invalidated = %v, want %v", invalidated, want)
	}
	for i := range want {
		if invalidated[i] != want[i] {
			t.Fatalf("invalidated = %v, want %v", invalidated, want)
		}
	}
}

// Comment and whitespace edits change no digest at all.
func TestApplyEditTrivialChangesNothing(t *testing.T) {
	patched, invalidated, err := ApplyEdit(editBase, []Edit{{1, 1, "// a header comment\n"}})
	if err != nil {
		t.Fatalf("ApplyEdit: %v", err)
	}
	if len(invalidated) != 0 {
		t.Fatalf("comment edit invalidated %v", invalidated)
	}
	old, _ := lang.Parse(editBase)
	now, _ := lang.Parse(patched)
	ok, nk := SummaryKeys(old), SummaryKeys(now)
	if len(Invalidated(ok, nk)) != 0 {
		t.Fatal("summary keys drifted on a comment-only edit")
	}
}

// A brand-new function shows up as invalidated (it has no old key) and
// existing functions that do not call it are untouched.
func TestApplyEditNewFunction(t *testing.T) {
	_, invalidated, err := ApplyEdit(editBase, []Edit{{13, 13, "func extra(v) {\n  w = v;\n}\n"}})
	if err != nil {
		t.Fatalf("ApplyEdit: %v", err)
	}
	if len(invalidated) != 1 || invalidated[0] != "extra" {
		t.Fatalf("invalidated = %v, want [extra]", invalidated)
	}
}

func TestApplyEditRejectsUnparsablePatch(t *testing.T) {
	if _, _, err := ApplyEdit(editBase, []Edit{{1, 2, "func helper(p {\n"}}); err == nil {
		t.Fatal("expected parse rejection of broken patch")
	}
}
