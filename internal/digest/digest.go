// Package digest computes the canonical content keys of the incremental
// analysis layer.
//
// Two canonicalizers live here, one per cache granularity, and they are the
// single source of truth for both:
//
//   - CanonicalSource normalizes representation-only degrees of freedom of a
//     whole program text (line endings, trailing blanks, comment text). It
//     keys canary.SubmissionKey and hence canaryd's whole-submission result
//     store.
//   - FuncStruct hashes one function's structure with local names
//     alpha-renamed and positions excluded. SummaryKeys folds every
//     function's structural digest with the digests of its transitively
//     reachable callees, producing the dependency-aware keys of the
//     per-function summary store: editing a function invalidates exactly
//     the functions that can reach it through calls, nothing else.
//
// Sharing one package (and one comment-stripping rule, lang.StripLineComment)
// guarantees that a comment or whitespace edit hits both cache layers: the
// submission key is unchanged because the canonical text is unchanged, and
// every summary key is unchanged because digests are computed on the parsed
// AST, which never saw the comment.
package digest

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
	"strconv"
	"strings"

	"canary/internal/cache"
	"canary/internal/lang"
)

// CanonicalSource normalizes the representation-only degrees of freedom of
// a program text: CRLF line endings, per-line trailing whitespace, trailing
// "//" comment text, and the final newline. The line structure itself is
// preserved — no line is ever added or removed — so positions (and thus the
// line numbers inside a cached result) stay valid for every source that
// canonicalizes to the same text.
func CanonicalSource(src string) string {
	lines := strings.Split(strings.ReplaceAll(src, "\r\n", "\n"), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(lang.StripLineComment(l), " \t\r")
	}
	return strings.TrimRight(strings.Join(lines, "\n"), "\n") + "\n"
}

// structHasher folds one function's shape into a SHA-256 state. Local value
// names (parameters, assigned variables, thread handles) are alpha-renamed
// to their first-occurrence index, so renaming a local never changes the
// digest; names with program-level identity — callees, globals, mutexes,
// condition variables — stay literal. Positions and comments never reach
// the hash, and branch-condition text is excluded because the summary
// domain (pta.Summary) is condition-insensitive.
type structHasher struct {
	h     hash.Hash
	alpha map[string]int
	funcs map[string]bool
}

func (s *structHasher) raw(b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	s.h.Write(n[:])
	s.h.Write(b)
}

func (s *structHasher) tag(t byte)     { s.h.Write([]byte{t}) }
func (s *structHasher) lit(str string) { s.raw([]byte(str)) }
func (s *structHasher) num(i int)      { s.lit(strconv.Itoa(i)) }
func (s *structHasher) boolean(b bool) { s.lit(strconv.FormatBool(b)) }

// local emits the alpha-index of a local value name. Declared function
// names referenced in value position (function values) keep their literal
// identity — they name a program-level entity, not a local.
func (s *structHasher) local(name string) {
	if s.funcs[name] {
		s.lit("F:" + name)
		return
	}
	idx, ok := s.alpha[name]
	if !ok {
		idx = len(s.alpha)
		s.alpha[name] = idx
	}
	s.num(idx)
}

func (s *structHasher) locals(names []string) {
	s.num(len(names))
	for _, n := range names {
		s.local(n)
	}
}

func (s *structHasher) block(b *lang.Block) {
	if b == nil {
		s.tag('_')
		return
	}
	s.tag('{')
	s.num(len(b.Stmts))
	for _, st := range b.Stmts {
		s.stmt(st)
	}
	s.tag('}')
}

func (s *structHasher) stmt(st lang.Stmt) {
	switch st := st.(type) {
	case *lang.AssignStmt:
		s.tag('A')
		s.local(st.LHS)
		s.expr(st.RHS)
	case *lang.StoreStmt:
		s.tag('S')
		s.local(st.Ptr)
		s.local(st.Val)
		s.lit(st.Field)
	case *lang.FreeStmt:
		s.tag('F')
		s.local(st.Var)
	case *lang.PrintStmt:
		s.tag('P')
		s.local(st.Var)
	case *lang.SinkStmt:
		s.tag('K')
		s.local(st.Var)
	case *lang.IfStmt:
		s.tag('I')
		s.block(st.Then)
		s.block(st.Else)
	case *lang.WhileStmt:
		s.tag('W')
		s.block(st.Body)
	case *lang.ForkStmt:
		s.tag('f')
		s.local(st.Thread)
		s.callee(st.Callee)
		s.locals(st.Args)
	case *lang.JoinStmt:
		s.tag('j')
		s.local(st.Thread)
	case *lang.LockStmt:
		s.tag('L')
		s.lit(st.Mutex)
	case *lang.UnlockStmt:
		s.tag('U')
		s.lit(st.Mutex)
	case *lang.WaitStmt:
		s.tag('w')
		s.lit(st.Cond)
	case *lang.NotifyStmt:
		s.tag('n')
		s.lit(st.Cond)
	case *lang.ReturnStmt:
		s.tag('R')
		s.boolean(st.HasVal)
		if st.HasVal {
			s.local(st.Value)
		}
	case *lang.CallStmt:
		s.tag('C')
		s.callee(st.Callee)
		s.locals(st.Args)
	default:
		s.tag('?')
	}
}

// callee emits a call/fork target. A name that resolves to a declared
// function is literal (it is the dependency edge); a function-pointer
// variable is a local like any other.
func (s *structHasher) callee(name string) {
	if s.funcs[name] {
		s.lit("F:" + name)
	} else {
		s.tag('v')
		s.local(name)
	}
}

func (s *structHasher) expr(e lang.Expr) {
	switch e := e.(type) {
	case *lang.VarExpr:
		s.tag('v')
		s.local(e.Name)
	case *lang.NumExpr:
		s.tag('N')
		s.num(e.Value)
	case *lang.LoadExpr:
		s.tag('l')
		s.local(e.Ptr)
		s.lit(e.Field)
	case *lang.AddrExpr:
		s.tag('&')
		s.lit(e.Name)
	case *lang.MallocExpr:
		s.tag('m')
	case *lang.NullExpr:
		s.tag('0')
	case *lang.TaintExpr:
		s.tag('t')
	case *lang.BinExpr:
		s.tag('b')
		s.lit(e.Op)
		s.expr(e.L)
		s.expr(e.R)
	case *lang.CallExpr:
		s.tag('c')
		s.callee(e.Callee)
		s.locals(e.Args)
	default:
		s.tag('?')
	}
}

// funcNames returns the set of declared function names of prog.
func funcNames(prog *lang.Program) map[string]bool {
	fns := make(map[string]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		fns[f.Name] = true
	}
	return fns
}

// FuncStruct returns the structural digest of one function: its body shape
// with locals alpha-renamed, positions and comments excluded, and
// program-level names (callees, globals, mutexes, condition variables)
// literal. Two functions that differ only in local names, whitespace,
// comments, or source position share a digest.
func FuncStruct(prog *lang.Program, f *lang.FuncDecl) cache.Key {
	return funcStruct(funcNames(prog), f)
}

func funcStruct(fns map[string]bool, f *lang.FuncDecl) cache.Key {
	s := &structHasher{h: sha256.New(), alpha: make(map[string]int), funcs: fns}
	s.lit("canary-func-struct-v1")
	s.num(len(f.Params))
	for _, p := range f.Params {
		s.local(p) // parameters take alpha indices 0..n-1 in order
	}
	s.block(f.Body)
	var key cache.Key
	s.h.Sum(key[:0])
	return key
}

// Callees returns the sorted, deduplicated direct call/fork targets of f
// that name declared functions. Indirect targets (function-pointer
// variables) contribute no edge — mirroring pta.Summaries, which resolves
// callee summaries by direct name only.
func Callees(prog *lang.Program, f *lang.FuncDecl) []string {
	return callees(funcNames(prog), f)
}

func callees(fns map[string]bool, f *lang.FuncDecl) []string {
	seen := make(map[string]bool)
	add := func(name string) {
		if fns[name] {
			seen[name] = true
		}
	}
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.CallExpr:
			add(e.Callee)
		case *lang.BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		}
	}
	var walk func(b *lang.Block)
	walk = func(b *lang.Block) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			switch st := st.(type) {
			case *lang.AssignStmt:
				walkExpr(st.RHS)
			case *lang.CallStmt:
				add(st.Callee)
			case *lang.ForkStmt:
				add(st.Callee)
			case *lang.IfStmt:
				walk(st.Then)
				walk(st.Else)
			case *lang.WhileStmt:
				walk(st.Body)
			}
		}
	}
	walk(f.Body)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SummaryKeys returns the dependency-aware content key of every function:
// SHA-256 over the function's own structural digest plus the (name,
// digest) pairs of every function transitively reachable through direct
// calls and forks, in sorted name order. The reachable-set folding makes
// the key valid across mutually recursive groups, and it gives the
// invalidation rule its precision: editing f changes the keys of exactly
// the functions that can reach f, so a warm summary store re-analyzes only
// those (the FuncsReanalyzed the stats report).
func SummaryKeys(prog *lang.Program) map[string]cache.Key {
	fns := funcNames(prog)
	structs := make(map[string]cache.Key, len(prog.Funcs))
	adj := make(map[string][]string, len(prog.Funcs))
	for _, f := range prog.Funcs {
		structs[f.Name] = funcStruct(fns, f)
		adj[f.Name] = callees(fns, f)
	}

	keys := make(map[string]cache.Key, len(prog.Funcs))
	for _, f := range prog.Funcs {
		// Reachable set (excluding f itself unless reached via a cycle).
		reach := make(map[string]bool)
		stack := append([]string(nil), adj[f.Name]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[n] {
				continue
			}
			reach[n] = true
			stack = append(stack, adj[n]...)
		}
		names := make([]string, 0, len(reach))
		for n := range reach {
			names = append(names, n)
		}
		sort.Strings(names)

		h := sha256.New()
		seg := func(b []byte) {
			var n [4]byte
			binary.BigEndian.PutUint32(n[:], uint32(len(b)))
			h.Write(n[:])
			h.Write(b)
		}
		seg([]byte("canary-summary-key-v1"))
		own := structs[f.Name]
		seg(own[:])
		for _, n := range names {
			seg([]byte(n))
			dep := structs[n]
			seg(dep[:])
		}
		var key cache.Key
		h.Sum(key[:0])
		keys[f.Name] = key
	}
	return keys
}
