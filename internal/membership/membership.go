// Package membership implements the fleet's dynamic membership: a
// SWIM-lite heartbeat protocol where every node periodically exchanges
// its full member table with a few peers over POST /v1/gossip, applies
// suspect→dead timeouts to members it has not heard from, and uses
// incarnation numbers so a restarted (or wrongly suspected) node can
// refute stale claims about itself and rejoin cleanly.
//
// The protocol is deliberately availability-only: analysis results are
// content-addressed and deterministic, so membership change is purely a
// cache-locality and routing event. Two nodes briefly disagreeing about
// the member set can at worst compute a result twice or miss a peer
// cache hit — findings stay byte-identical either way, which is what
// the chaos harness (scripts/chaos_smoke.go, canary-bench -experiment
// chaos) proves under real SIGKILL/SIGSTOP/rejoin storms.
//
// Merge rules (per member, SWIM's precedence order):
//   - a higher incarnation always wins;
//   - at equal incarnation the worse state wins (dead > suspect > alive),
//     so a death claim propagates until the accused refutes it;
//   - only the member itself increments its incarnation. A node that
//     sees itself suspected or dead at incarnation >= its own adopts
//     incarnation+1 and re-advertises alive — the refutation then
//     out-ranks the stale claim everywhere it spreads.
//
// Direct evidence beats gossip: a successful exchange with a member
// marks it alive and refreshes its last-heard clock regardless of what
// third parties claim, so a paused-then-resumed node (SIGSTOP/SIGCONT)
// recovers without a restart.
package membership

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canary/internal/api"
)

// State is a member's liveness state as this node believes it.
type State int

const (
	// Alive: heard from recently (directly or via fresh gossip).
	Alive State = iota
	// Suspect: silent past SuspectAfter — still routed, but on notice.
	// A paused process (SIGSTOP) lives here until it resumes or dies.
	Suspect
	// Dead: silent past DeadAfter, or declared dead by gossip at a
	// winning incarnation. Removed from rings until it refutes.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return api.GossipAlive
	case Suspect:
		return api.GossipSuspect
	default:
		return api.GossipDead
	}
}

func parseState(s string) State {
	switch s {
	case api.GossipAlive:
		return Alive
	case api.GossipSuspect:
		return Suspect
	default:
		return Dead
	}
}

// worse orders states by badness for the equal-incarnation merge rule.
func worse(a, b State) bool { return a > b }

// Member is one entry of the membership table, as exposed to callers.
type Member struct {
	ID          string // advertised base URL; doubles as gossip address
	Role        string // api.RoleWorker, api.RoleRouter, or "" (not yet learned)
	State       State
	Incarnation uint64
}

// AliveIDs filters a snapshot down to the sorted IDs of alive members
// of the given role ("" matches any role). This is what subscribers
// feed to fleet.Ring: suspect members are deliberately included —
// suspicion is a timeout, not proof, and dropping a slow-but-alive
// node from the ring would reshuffle ownership for nothing. Only
// confirmed-dead members leave the ring.
func AliveIDs(members []Member, role string) []string {
	ids := make([]string, 0, len(members))
	for _, m := range members {
		if m.State == Dead {
			continue
		}
		if role != "" && m.Role != role {
			continue
		}
		ids = append(ids, m.ID)
	}
	sort.Strings(ids)
	return ids
}

// Config configures an Agent.
type Config struct {
	// Self is this node's advertised base URL — its identity in the
	// protocol and the address peers gossip back to. Required.
	Self string
	// Role is api.RoleWorker or api.RoleRouter. Required.
	Role string
	// Seeds are peer base URLs contacted first; any one live seed is
	// enough to learn the whole member set.
	Seeds []string
	// Interval between gossip rounds (the protocol's heartbeat).
	// Default 500ms.
	Interval time.Duration
	// SuspectAfter is the silence after which a member turns suspect;
	// default 5×Interval. DeadAfter is the silence after which a suspect
	// turns dead; default 2×SuspectAfter.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Fanout is how many peers each round gossips with. Default 2.
	Fanout int
	// PingReqFanout is how many alive helpers an indirect probe
	// (SWIM's ping-req) asks before suspecting a silent member: when a
	// member goes quiet past SuspectAfter, the agent first asks up to
	// this many other members to probe it on our behalf, and only
	// suspects it if none can reach it either. This keeps a node alive
	// through an asymmetric partition (we can't reach it, others can).
	// Default 2; negative disables indirect probing entirely.
	PingReqFanout int
	// Timeout bounds one gossip HTTP exchange. Default Interval (min 1s).
	// An outgoing ping-req exchange gets 2×Timeout, since the helper
	// nests a direct probe of its own inside serving it.
	Timeout time.Duration
	// Transport, if set, replaces the HTTP transport for all outgoing
	// exchanges. Tests use it to simulate asymmetric partitions.
	Transport http.RoundTripper
	// OnChange, if set, fires from the agent's goroutine whenever the
	// non-dead member set (IDs or their roles) changes — including after
	// the first round. Snapshot is the full table; use AliveIDs to
	// derive ring inputs. The callback must not call back into Close.
	OnChange func(members []Member)
	// Logf, if set, receives one line per membership transition.
	Logf func(format string, args ...any)
}

type entry struct {
	Member
	lastHeard time.Time
	// probing is set while an async indirect probe (ping-req) for this
	// member is in flight: tick holds the alive→suspect transition until
	// the probe settles. probeFailed records that a completed probe got
	// no ack, which lets the next tick suspect immediately. Both clear
	// whenever fresh liveness evidence refreshes lastHeard.
	probing     bool
	probeFailed bool
}

// Stats is a point-in-time counter snapshot for /metrics.
type Stats struct {
	Rounds      uint64 // gossip rounds run
	Sends       uint64 // outgoing exchanges attempted
	SendErrors  uint64 // outgoing exchanges failed
	Received    uint64 // incoming exchanges served
	Refutations uint64 // times this node refuted its own suspicion/death
	Changes     uint64 // OnChange firings
	PingReqs    uint64 // indirect probes (ping-req) initiated
	PingReqAcks uint64 // indirect probes acked by a helper
	Alive       int    // current table tally (suspect counts as not-dead
	Suspect     int    // but is reported separately)
	Dead        int
}

// Agent runs the membership protocol for one node: a periodic gossip
// loop plus an HTTP handler for incoming exchanges. All methods are
// safe for concurrent use.
type Agent struct {
	cfg Config
	hc  *http.Client
	// phc serves outgoing ping-req exchanges: double the ordinary
	// timeout, because the helper runs a nested direct probe before
	// answering.
	phc *http.Client

	mu          sync.Mutex
	incarnation uint64
	table       map[string]*entry // keyed by ID; excludes self
	cursor      int               // round-robin position over sorted peer IDs
	lastSig     string            // change-detection signature of the live set
	started     time.Time

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	running  atomic.Bool

	rounds, sends, sendErrs, recvs, refutes, changes atomic.Uint64
	pingReqs, pingReqAcks                            atomic.Uint64
}

// New validates the config, fills defaults, and seeds the table. Call
// Start to begin gossiping; the agent serves incoming gossip (ServeGossip)
// either way.
func New(cfg Config) (*Agent, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("membership: Self is required")
	}
	if cfg.Role != api.RoleWorker && cfg.Role != api.RoleRouter {
		return nil, fmt.Errorf("membership: unknown role %q", cfg.Role)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 5 * cfg.Interval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2 * cfg.SuspectAfter
	}
	if cfg.DeadAfter < cfg.SuspectAfter {
		return nil, fmt.Errorf("membership: DeadAfter %v below SuspectAfter %v", cfg.DeadAfter, cfg.SuspectAfter)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.PingReqFanout == 0 {
		cfg.PingReqFanout = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
		if cfg.Timeout < time.Second {
			cfg.Timeout = time.Second
		}
	}
	a := &Agent{
		cfg:     cfg,
		hc:      &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		phc:     &http.Client{Timeout: 2 * cfg.Timeout, Transport: cfg.Transport},
		table:   make(map[string]*entry),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		started: time.Now(),
	}
	for _, s := range cfg.Seeds {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" || s == cfg.Self {
			continue
		}
		// Seeds start alive with the grace clock running from startup:
		// an unreachable seed ages into suspect→dead like any member.
		a.table[s] = &entry{
			Member:    Member{ID: s, State: Alive},
			lastHeard: a.started,
		}
	}
	return a, nil
}

// Start launches the gossip loop (an immediate round, then every
// Interval). Close stops it.
func (a *Agent) Start() {
	if a.running.CompareAndSwap(false, true) {
		go a.loop()
	}
}

// Close stops the gossip loop and waits for it to exit. The HTTP
// handler keeps answering (a draining node still refutes and informs).
func (a *Agent) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	if a.running.Load() {
		<-a.done
	}
}

// Self returns the advertised identity.
func (a *Agent) Self() string { return a.cfg.Self }

// Incarnation returns this node's current incarnation number.
func (a *Agent) Incarnation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.incarnation
}

// Members returns a snapshot of the table (self included), sorted by ID.
func (a *Agent) Members() []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.membersLocked()
}

func (a *Agent) membersLocked() []Member {
	out := make([]Member, 0, len(a.table)+1)
	out = append(out, Member{ID: a.cfg.Self, Role: a.cfg.Role, State: Alive, Incarnation: a.incarnation})
	for _, e := range a.table {
		out = append(out, e.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive returns the sorted IDs of non-dead members of the given role
// ("" = any role), self included when the role matches.
func (a *Agent) Alive(role string) []string {
	return AliveIDs(a.Members(), role)
}

// Stats snapshots the agent's counters and table tallies.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	alive, suspect, dead := 1, 0, 0 // self
	for _, e := range a.table {
		switch e.State {
		case Alive:
			alive++
		case Suspect:
			suspect++
		default:
			dead++
		}
	}
	a.mu.Unlock()
	return Stats{
		Rounds:      a.rounds.Load(),
		Sends:       a.sends.Load(),
		SendErrors:  a.sendErrs.Load(),
		Received:    a.recvs.Load(),
		Refutations: a.refutes.Load(),
		Changes:     a.changes.Load(),
		PingReqs:    a.pingReqs.Load(),
		PingReqAcks: a.pingReqAcks.Load(),
		Alive:       alive,
		Suspect:     suspect,
		Dead:        dead,
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Agent) loop() {
	defer close(a.done)
	a.round()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.round()
		}
	}
}

// round is one heartbeat: gossip with up to Fanout peers (round-robin
// over the sorted non-dead set, so every peer is contacted regularly),
// age silent members toward suspect/dead, and notify on change.
func (a *Agent) round() {
	a.rounds.Add(1)
	for _, id := range a.pickTargets() {
		a.gossipWith(id)
	}
	a.tick(time.Now())
	a.notifyIfChanged()
}

func (a *Agent) pickTargets() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.table))
	for id, e := range a.table {
		if e.State != Dead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	n := a.cfg.Fanout
	if n > len(ids) {
		n = len(ids)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ids[(a.cursor+i)%len(ids)])
	}
	a.cursor += n
	return out
}

// gossipWith runs one outgoing exchange: POST our table, merge theirs.
// It reports whether the exchange completed, which doubles as direct
// liveness evidence when serving a helper-side ping-req.
func (a *Agent) gossipWith(id string) bool {
	return a.exchange(id, "", a.hc) != nil
}

// exchange performs one gossip POST to id, optionally carrying a
// ping-req target, and folds the reply into the table. It returns the
// parsed response, or nil on any failure.
func (a *Agent) exchange(id, pingTarget string, hc *http.Client) *api.GossipResponse {
	a.sends.Add(1)
	req := api.GossipRequest{From: a.cfg.Self, Members: a.wireTable(), PingTarget: pingTarget}
	body, err := json.Marshal(req)
	if err != nil {
		a.sendErrs.Add(1)
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), hc.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, id+"/v1/gossip", bytes.NewReader(body))
	if err != nil {
		a.sendErrs.Add(1)
		return nil
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		a.sendErrs.Add(1)
		return nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		a.sendErrs.Add(1)
		return nil
	}
	gr, err := api.ParseGossipResponse(data)
	if err != nil {
		a.sendErrs.Add(1)
		return nil
	}
	now := time.Now()
	a.mu.Lock()
	a.mergeLocked(gr.Members, now)
	a.markContactLocked(id, now)
	a.mu.Unlock()
	return gr
}

// pingReq runs one indirect probe of target: ask up to PingReqFanout
// alive helpers (via a gossip exchange carrying PingTarget) to probe it
// for us. Any helper ack is liveness evidence as good as our own
// contact; no acks means nobody we trust can reach it either, and the
// next tick may suspect it. Runs on its own goroutine — tick holds the
// suspect transition while the entry's probing flag is up.
func (a *Agent) pingReq(target string) {
	a.pingReqs.Add(1)
	helpers := a.pickHelpers(target)
	acked := false
	for _, h := range helpers {
		gr := a.exchange(h, target, a.phc)
		if gr != nil && gr.PingOK {
			a.pingReqAcks.Add(1)
			acked = true
			break
		}
	}
	now := time.Now()
	a.mu.Lock()
	if e, ok := a.table[target]; ok {
		if acked {
			a.logf("membership: %s reachable via helper (ping-req ack)", target)
			a.markContactLocked(target, now)
		} else {
			e.probeFailed = true
		}
		e.probing = false
	}
	a.mu.Unlock()
}

// pickHelpers returns up to PingReqFanout alive members other than the
// target, sorted for determinism.
func (a *Agent) pickHelpers(target string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.table))
	for id, e := range a.table {
		if id != target && e.State == Alive {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if n := a.cfg.PingReqFanout; n > 0 && len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// wireTable renders the full table (self first) for the wire.
func (a *Agent) wireTable() []api.GossipMember {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.wireTableLocked()
}

func (a *Agent) wireTableLocked() []api.GossipMember {
	out := make([]api.GossipMember, 0, len(a.table)+1)
	out = append(out, api.GossipMember{
		ID: a.cfg.Self, Role: a.cfg.Role, State: api.GossipAlive, Incarnation: a.incarnation,
	})
	for _, e := range a.table {
		out = append(out, api.GossipMember{
			ID: e.ID, Role: e.Role, State: e.State.String(), Incarnation: e.Incarnation,
		})
	}
	if len(out) > api.MaxGossipMembers {
		out = out[:api.MaxGossipMembers]
	}
	return out
}

// markContactLocked records direct liveness evidence for id: we just
// completed an exchange with it, so whatever gossip claimed, it is
// alive right now at its current incarnation.
func (a *Agent) markContactLocked(id string, now time.Time) {
	e, ok := a.table[id]
	if !ok {
		return
	}
	if e.State != Alive {
		a.logf("membership: %s %s -> alive (direct contact)", id, e.State)
	}
	e.State = Alive
	e.lastHeard = now
	e.probeFailed = false
}

// mergeLocked folds a remote table into ours under SWIM precedence.
func (a *Agent) mergeLocked(members []api.GossipMember, now time.Time) {
	for _, m := range members {
		if m.ID == a.cfg.Self {
			// Refutation: someone claims we are suspect/dead at an
			// incarnation as fresh as ours. Out-rank the claim; the next
			// exchange (including the response being built) spreads it.
			st := parseState(m.State)
			if st != Alive && m.Incarnation >= a.incarnation {
				a.incarnation = m.Incarnation + 1
				a.refutes.Add(1)
				a.logf("membership: refuting %s claim, incarnation -> %d", m.State, a.incarnation)
			}
			continue
		}
		st := parseState(m.State)
		e, ok := a.table[m.ID]
		if !ok {
			a.table[m.ID] = &entry{
				Member:    Member{ID: m.ID, Role: m.Role, State: st, Incarnation: m.Incarnation},
				lastHeard: now,
			}
			a.logf("membership: learned %s (%s, %s)", m.ID, m.Role, m.State)
			continue
		}
		if e.Role == "" && m.Role != "" {
			e.Role = m.Role
		}
		switch {
		case m.Incarnation > e.Incarnation:
			if e.State != st {
				a.logf("membership: %s %s -> %s (incarnation %d)", m.ID, e.State, st, m.Incarnation)
			}
			e.Incarnation = m.Incarnation
			e.State = st
			// A refutation (fresh incarnation, alive) is news from the
			// member itself — restart its silence clock.
			if st == Alive {
				e.lastHeard = now
				e.probeFailed = false
			}
		case m.Incarnation == e.Incarnation && worse(st, e.State):
			a.logf("membership: %s %s -> %s (gossip)", m.ID, e.State, st)
			e.State = st
		}
	}
}

// tick ages silent members: alive → suspect after SuspectAfter,
// suspect → dead after DeadAfter. Before suspecting an alive member,
// the agent tries an indirect probe (SWIM's ping-req): the transition
// is held while the probe is in flight, taken only once a completed
// probe got no helper ack.
func (a *Agent) tick(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.table {
		silent := now.Sub(e.lastHeard)
		switch e.State {
		case Alive:
			if silent > a.cfg.SuspectAfter {
				if a.cfg.PingReqFanout > 0 && !e.probing && !e.probeFailed {
					e.probing = true
					go a.pingReq(e.ID)
					continue
				}
				if e.probing {
					continue
				}
				e.State = Suspect
				e.probeFailed = false
				a.logf("membership: %s alive -> suspect (silent %v)", e.ID, silent.Round(time.Millisecond))
			}
		case Suspect:
			if silent > a.cfg.DeadAfter {
				e.State = Dead
				a.logf("membership: %s suspect -> dead (silent %v)", e.ID, silent.Round(time.Millisecond))
			}
		}
	}
}

// notifyIfChanged fires OnChange when the non-dead member set (or a
// member's role) changed since the last notification.
func (a *Agent) notifyIfChanged() {
	a.mu.Lock()
	ids := make([]string, 0, len(a.table)+1)
	ids = append(ids, a.cfg.Self+"|"+a.cfg.Role)
	for _, e := range a.table {
		if e.State != Dead {
			ids = append(ids, e.ID+"|"+e.Role)
		}
	}
	sort.Strings(ids)
	sig := strings.Join(ids, "\n")
	changed := sig != a.lastSig
	var snapshot []Member
	if changed {
		a.lastSig = sig
		snapshot = a.membersLocked()
	}
	a.mu.Unlock()
	if changed {
		a.changes.Add(1)
		if a.cfg.OnChange != nil {
			a.cfg.OnChange(snapshot)
		}
	}
}

// HandleGossip serves one incoming exchange: merge the sender's table,
// credit the sender with direct liveness, and answer with ours.
func (a *Agent) HandleGossip(req *api.GossipRequest) api.GossipResponse {
	a.recvs.Add(1)
	now := time.Now()
	a.mu.Lock()
	a.mergeLocked(req.Members, now)
	// Snapshot the reply BEFORE crediting the sender with direct contact:
	// a sender we currently believe suspect or dead must see that claim in
	// the reply so it can refute with a fresher incarnation. Marking
	// contact first would resurrect it here at the same incarnation, the
	// reply would advertise it alive, and every other member still holding
	// the dead claim would win the merge forever (worse state ties).
	replyTable := a.wireTableLocked()
	if req.From != a.cfg.Self {
		if _, ok := a.table[req.From]; !ok {
			// A sender we had no entry for (e.g. a brand-new node whose
			// table hasn't reached us): insert it; role arrives with its
			// self entry in Members (already merged above) or next round.
			a.table[req.From] = &entry{Member: Member{ID: req.From, State: Alive}, lastHeard: now}
		}
		a.markContactLocked(req.From, now)
	}
	resp := api.GossipResponse{From: a.cfg.Self, Members: replyTable}
	pingTarget := ""
	if req.PingTarget != "" && req.PingTarget != req.From {
		if req.PingTarget == a.cfg.Self {
			// Being asked about ourselves is trivially an ack.
			resp.PingOK = true
		} else if _, known := a.table[req.PingTarget]; known {
			// Probe outside the lock, below. Only members already in our
			// table are probed: gossip never turns this node into an
			// open proxy for arbitrary URLs.
			pingTarget = req.PingTarget
		}
	}
	a.mu.Unlock()
	if pingTarget != "" {
		// Helper side of ping-req: direct-probe the target on the
		// sender's behalf. A completed exchange both acks the probe and
		// refreshes our own liveness evidence for the target.
		resp.PingOK = a.gossipWith(pingTarget)
	}
	a.notifyIfChanged()
	return resp
}

// ServeGossip is the HTTP face of the protocol: POST /v1/gossip runs an
// exchange, GET /v1/gossip returns the table read-only (for operators
// and the chaos harness to watch convergence).
func (a *Agent) ServeGossip(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeGossipJSON(w, http.StatusOK, api.GossipResponse{From: a.cfg.Self, Members: a.wireTable()})
	case http.MethodPost:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeGossipJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "gossip body too large"})
			return
		}
		req, err := api.ParseGossipRequest(data)
		if err != nil {
			writeGossipJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeGossipJSON(w, http.StatusOK, a.HandleGossip(req))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeGossipJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
	}
}

func writeGossipJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
