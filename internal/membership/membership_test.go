package membership

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"canary/internal/api"
)

func newAgent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

// stateOf finds id in a snapshot; fatal if absent.
func stateOf(t *testing.T, ms []Member, id string) Member {
	t.Helper()
	for _, m := range ms {
		if m.ID == id {
			return m
		}
	}
	t.Fatalf("member %s not in snapshot %v", id, ms)
	return Member{}
}

// TestMergePrecedence pins the SWIM merge rules the whole protocol
// rests on: higher incarnation wins, equal incarnation keeps the worse
// state, lower incarnation is stale noise.
func TestMergePrecedence(t *testing.T) {
	a := newAgent(t, Config{Self: "http://self", Role: api.RoleWorker})
	now := time.Now()
	a.mu.Lock()
	a.mergeLocked([]api.GossipMember{{ID: "http://b", Role: api.RoleWorker, State: api.GossipAlive, Incarnation: 3}}, now)
	a.mu.Unlock()

	cases := []struct {
		in   api.GossipMember
		want State
		inc  uint64
	}{
		// Equal incarnation: worse state wins, better state does not.
		{api.GossipMember{ID: "http://b", State: api.GossipSuspect, Incarnation: 3}, Suspect, 3},
		{api.GossipMember{ID: "http://b", State: api.GossipAlive, Incarnation: 3}, Suspect, 3},
		{api.GossipMember{ID: "http://b", State: api.GossipDead, Incarnation: 3}, Dead, 3},
		// Stale incarnation: ignored entirely.
		{api.GossipMember{ID: "http://b", State: api.GossipAlive, Incarnation: 2}, Dead, 3},
		// Fresh incarnation: wins even against dead (that is the refutation).
		{api.GossipMember{ID: "http://b", State: api.GossipAlive, Incarnation: 4}, Alive, 4},
	}
	for i, c := range cases {
		a.mu.Lock()
		a.mergeLocked([]api.GossipMember{c.in}, now)
		a.mu.Unlock()
		got := stateOf(t, a.Members(), "http://b")
		if got.State != c.want || got.Incarnation != c.inc {
			t.Fatalf("case %d: got (%v,%d), want (%v,%d)", i, got.State, got.Incarnation, c.want, c.inc)
		}
	}
}

// TestSelfRefutation: a node that hears itself declared suspect or dead
// must bump its incarnation past the claim so its next advertisement
// out-ranks it everywhere.
func TestSelfRefutation(t *testing.T) {
	a := newAgent(t, Config{Self: "http://self", Role: api.RoleWorker})
	a.mu.Lock()
	a.mergeLocked([]api.GossipMember{{ID: "http://self", State: api.GossipDead, Incarnation: 7}}, time.Now())
	a.mu.Unlock()
	if inc := a.Incarnation(); inc != 8 {
		t.Fatalf("incarnation after dead@7 claim = %d, want 8", inc)
	}
	// An alive claim about ourselves is not a refutation trigger.
	a.mu.Lock()
	a.mergeLocked([]api.GossipMember{{ID: "http://self", State: api.GossipAlive, Incarnation: 8}}, time.Now())
	a.mu.Unlock()
	if inc := a.Incarnation(); inc != 8 {
		t.Fatalf("incarnation after alive@8 claim = %d, want 8", inc)
	}
}

// TestSuspectDeadTimeouts: silence ages a member alive → suspect →
// dead on the configured clocks, and direct contact resurrects it.
func TestSuspectDeadTimeouts(t *testing.T) {
	a := newAgent(t, Config{
		Self: "http://self", Role: api.RoleWorker,
		Seeds:        []string{"http://b"},
		Interval:     10 * time.Millisecond,
		SuspectAfter: 50 * time.Millisecond,
		DeadAfter:    100 * time.Millisecond,
		// Pure timeout aging under test: no indirect probe holding the
		// alive→suspect transition (that path has its own test below).
		PingReqFanout: -1,
	})
	base := time.Now()
	a.tick(base.Add(60 * time.Millisecond))
	if got := stateOf(t, a.Members(), "http://b"); got.State != Suspect {
		t.Fatalf("after SuspectAfter: state %v, want Suspect", got.State)
	}
	a.tick(base.Add(200 * time.Millisecond))
	if got := stateOf(t, a.Members(), "http://b"); got.State != Dead {
		t.Fatalf("after DeadAfter: state %v, want Dead", got.State)
	}
	// Direct contact beats everything.
	a.mu.Lock()
	a.markContactLocked("http://b", time.Now())
	a.mu.Unlock()
	if got := stateOf(t, a.Members(), "http://b"); got.State != Alive {
		t.Fatalf("after direct contact: state %v, want Alive", got.State)
	}
}

// cluster spins up n agents served over real HTTP listeners, each
// seeded with the first agent's URL. The returned setAgent rebinds the
// i-th endpoint to a different agent — or, with nil, makes it error
// like a killed process — so tests can model SIGKILL and restart
// without fighting over listener ports.
func cluster(t *testing.T, n int, interval time.Duration) (agents []*Agent, urls []string, setAgent func(i int, a *Agent)) {
	t.Helper()
	// Listeners first so every URL is known before any agent starts.
	current := make([]atomic.Pointer[Agent], n)
	servers := make([]*httptest.Server, n)
	urls = make([]string, n)
	for i := range servers {
		i := i
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/gossip", func(w http.ResponseWriter, r *http.Request) {
			a := current[i].Load()
			if a == nil {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			a.ServeGossip(w, r)
		})
		servers[i] = httptest.NewServer(mux)
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	agents = make([]*Agent, n)
	for i := range agents {
		a := newAgent(t, Config{
			Self:         urls[i],
			Role:         api.RoleWorker,
			Seeds:        []string{urls[0]},
			Interval:     interval,
			SuspectAfter: 6 * interval,
			DeadAfter:    12 * interval,
		})
		current[i].Store(a)
		agents[i] = a
		t.Cleanup(a.Close)
		a.Start()
	}
	return agents, urls, func(i int, a *Agent) { current[i].Store(a) }
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterConvergesAndHealsFromDeath is the end-to-end protocol
// test: three real agents converge from one seed, a killed agent is
// detected suspect→dead by the survivors without any restart of
// theirs, and a fresh agent reusing the dead identity (incarnation 0,
// like a restarted process) refutes its own death and rejoins.
func TestClusterConvergesAndHealsFromDeath(t *testing.T) {
	const interval = 20 * time.Millisecond
	agents, urls, setAgent := cluster(t, 3, interval)

	allAlive := func(a *Agent, want int) bool {
		return len(a.Alive(api.RoleWorker)) == want
	}
	waitFor(t, 10*time.Second, "full convergence", func() bool {
		return allAlive(agents[0], 3) && allAlive(agents[1], 3) && allAlive(agents[2], 3)
	})

	// Kill agent 2: stop gossiping AND stop answering, like SIGKILL.
	agents[2].Close()
	setAgent(2, nil)
	waitFor(t, 10*time.Second, "death detection", func() bool {
		m0 := stateOf(t, agents[0].Members(), urls[2])
		m1 := stateOf(t, agents[1].Members(), urls[2])
		return m0.State == Dead && m1.State == Dead
	})
	if got := len(agents[0].Alive(api.RoleWorker)); got != 2 {
		t.Fatalf("alive set after death: %d members, want 2", got)
	}

	// Restart: a brand-new agent on the same identity, incarnation 0.
	reborn := newAgent(t, Config{
		Self:         urls[2],
		Role:         api.RoleWorker,
		Seeds:        []string{urls[0]},
		Interval:     interval,
		SuspectAfter: 6 * interval,
		DeadAfter:    12 * interval,
	})
	t.Cleanup(reborn.Close)
	setAgent(2, reborn)
	reborn.Start()
	waitFor(t, 10*time.Second, "rejoin after restart", func() bool {
		m0 := stateOf(t, agents[0].Members(), urls[2])
		m1 := stateOf(t, agents[1].Members(), urls[2])
		return m0.State == Alive && m1.State == Alive
	})
	if reborn.Incarnation() == 0 {
		t.Fatalf("reborn agent never refuted its death (incarnation still 0)")
	}
}

// TestOnChangeFiresOnMembershipEvents: subscribers (ring rebuilds, the
// peer cache tier) hear about joins and deaths exactly when the live
// set changes.
func TestOnChangeFiresOnMembershipEvents(t *testing.T) {
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	peer := newAgent(t, Config{Self: srv.URL, Role: api.RoleWorker, Interval: 10 * time.Millisecond})
	mux.HandleFunc("/v1/gossip", peer.ServeGossip)
	defer peer.Close()
	peer.Start()

	changes := make(chan []Member, 16)
	a := newAgent(t, Config{
		Self: "http://observer", Role: api.RoleRouter,
		Seeds:    []string{srv.URL},
		Interval: 10 * time.Millisecond,
		OnChange: func(ms []Member) { changes <- ms },
	})
	defer a.Close()
	a.Start()

	// First change: the seed set itself (and, once gossip completes,
	// the peer's role being learned).
	waitFor(t, 5*time.Second, "role discovery via OnChange", func() bool {
		select {
		case ms := <-changes:
			ids := AliveIDs(ms, api.RoleWorker)
			return len(ids) == 1 && ids[0] == srv.URL
		default:
			return false
		}
	})
}

// TestWireTableBounded: the advertised table never exceeds the wire
// decoder's member bound, whatever has been merged.
func TestWireTableBounded(t *testing.T) {
	a := newAgent(t, Config{Self: "http://self", Role: api.RoleWorker})
	many := make([]api.GossipMember, api.MaxGossipMembers)
	for i := range many {
		many[i] = api.GossipMember{ID: fmt.Sprintf("http://peer-%04d", i), State: api.GossipAlive}
	}
	a.mu.Lock()
	a.mergeLocked(many, time.Now())
	a.mu.Unlock()
	if got := len(a.wireTable()); got > api.MaxGossipMembers {
		t.Fatalf("wire table %d members exceeds bound %d", got, api.MaxGossipMembers)
	}
}

// partitionTransport simulates an asymmetric network partition: any
// request whose URL starts with the blocked prefix errors as if the
// link were cut, everything else rides the real transport.
type partitionTransport struct {
	base    http.RoundTripper
	blocked string
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasPrefix(r.URL.String(), p.blocked) {
		return nil, fmt.Errorf("partitioned: %s unreachable", p.blocked)
	}
	return p.base.RoundTrip(r)
}

// TestPingReqKeepsPartitionedNodeAlive is the indirect-probe contract:
// when A cannot reach B but helper C can, A must not suspect B — the
// ping-req through C is liveness evidence as good as direct contact.
// With indirect probing disabled, the same silence suspects B.
func TestPingReqKeepsPartitionedNodeAlive(t *testing.T) {
	// B and C answer gossip over real listeners; A exists only as a
	// client whose transport drops the A→B link.
	mkServer := func() (*httptest.Server, func(*Agent)) {
		var cur atomic.Pointer[Agent]
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/gossip", func(w http.ResponseWriter, r *http.Request) {
			cur.Load().ServeGossip(w, r)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv, func(a *Agent) { cur.Store(a) }
	}
	srvB, setB := mkServer()
	srvC, setC := mkServer()

	setB(newAgent(t, Config{Self: srvB.URL, Role: api.RoleWorker}))
	// C must already know B: a helper only probes members of its own
	// table, never arbitrary URLs from the wire.
	setC(newAgent(t, Config{Self: srvC.URL, Role: api.RoleWorker, Seeds: []string{srvB.URL}}))

	cut := &partitionTransport{base: http.DefaultTransport, blocked: srvB.URL}
	cfg := Config{
		Self: "http://a", Role: api.RoleWorker,
		Seeds:        []string{srvB.URL, srvC.URL},
		Interval:     10 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    400 * time.Millisecond,
		Transport:    cut,
	}
	a := newAgent(t, cfg)

	// Let B fall silent past SuspectAfter at A, keeping C fresh via
	// direct contact, then tick: the alive→suspect transition must be
	// held while the indirect probe through C runs, and the ack must
	// land as contact evidence.
	time.Sleep(60 * time.Millisecond)
	waitFor(t, 10*time.Second, "ping-req ack through helper", func() bool {
		a.gossipWith(srvC.URL)
		a.tick(time.Now())
		m := stateOf(t, a.Members(), srvB.URL)
		st := a.Stats()
		return m.State == Alive && st.PingReqAcks > 0
	})
	if st := a.Stats(); st.PingReqs == 0 {
		t.Fatalf("no indirect probe was initiated: %+v", st)
	}
	if m := stateOf(t, a.Members(), srvB.URL); m.State != Alive {
		t.Fatalf("partitioned-but-alive member suspected despite helper ack: %v", m.State)
	}

	// Same silence with indirect probing disabled: B goes suspect.
	cfg.Self = "http://a2"
	cfg.PingReqFanout = -1
	a2 := newAgent(t, cfg)
	time.Sleep(60 * time.Millisecond)
	a2.gossipWith(srvC.URL)
	a2.tick(time.Now())
	if m := stateOf(t, a2.Members(), srvB.URL); m.State != Suspect {
		t.Fatalf("with ping-req disabled: state %v, want Suspect", m.State)
	}
	if st := a2.Stats(); st.PingReqs != 0 {
		t.Fatalf("disabled agent still probed: %+v", st)
	}
}
