// Package bitset provides a dense bit set over small integer keys. It
// backs the hot-path sets of the pipeline — Steensgaard function sets and
// the touched-location sets of the data-dependence pass — replacing
// map[K]bool with a []uint64 whose iteration order is the ascending key
// order (deterministic by construction, unlike map range order).
//
// The package keeps a process-wide tally of allocated words so the -stats
// report and the canaryd /metrics endpoint can expose the footprint of the
// bitset-backed representations.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

// wordsAllocated counts every uint64 word ever allocated for a Set
// backing array (allocations, not live size — a monotonic counter).
var wordsAllocated atomic.Int64

// WordsAllocated returns the cumulative number of 64-bit words allocated
// for bit set backing arrays in this process.
func WordsAllocated() int64 { return wordsAllocated.Load() }

// Set is a bit set over non-negative integer keys. The zero value is an
// empty set ready for use; it grows as keys are added. A nil *Set reads as
// the empty set (Has/Len/Words/ForEach/Clear are nil-tolerant), matching
// the lookup-miss behavior of the maps it replaces.
type Set struct {
	words []uint64
}

// New returns a set pre-sized to hold keys in [0, n).
func New(n int) *Set {
	s := &Set{}
	if n > 0 {
		s.grow((n - 1) >> 6)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	nw := make([]uint64, word+1)
	copy(nw, s.words)
	wordsAllocated.Add(int64(cap(nw) - len(s.words)))
	s.words = nw
}

// Add inserts i and reports whether it was newly added.
func (s *Set) Add(i int) bool {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if w >= len(s.words) {
		s.grow(w)
	}
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	return true
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if s == nil {
		return false
	}
	w := i >> 6
	return w < len(s.words) && s.words[w]&(uint64(1)<<(uint(i)&63)) != 0
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	if w := i >> 6; w < len(s.words) {
		s.words[w] &^= uint64(1) << (uint(i) & 63)
	}
}

// UnionWith adds every element of t and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil {
		return false
	}
	if len(t.words) > len(s.words) {
		s.grow(len(t.words) - 1)
	}
	changed := false
	for w, tw := range t.words {
		if tw&^s.words[w] != 0 {
			s.words[w] |= tw
			changed = true
		}
	}
	return changed
}

// Len returns the number of elements.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Words returns the size of the backing array in 64-bit words.
func (s *Set) Words() int {
	if s == nil {
		return 0
	}
	return len(s.words)
}

// Clear removes all elements, keeping the backing array.
func (s *Set) Clear() {
	if s == nil {
		return
	}
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	if s == nil {
		return
	}
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w<<6 + b)
			word &^= 1 << uint(b)
		}
	}
}
