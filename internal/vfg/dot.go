package vfg

import (
	"fmt"
	"io"
)

// WriteDot renders the graph in Graphviz DOT form: objects as boxes,
// variable definitions as ellipses, interference edges dashed (matching
// the paper's Fig. 2(b) notation), with guards as edge labels.
func (g *Graph) WriteDot(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph vfg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	for i := range g.nodes {
		n := &g.nodes[i]
		shape := "ellipse"
		if n.Kind == NodeObj {
			shape = "box"
		}
		fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n", n.ID, g.NodeString(n.ID), shape)
	}
	for i := range g.edges {
		e := &g.edges[i]
		style := "solid"
		color := "black"
		switch e.Kind {
		case EdgeInterference:
			style, color = "dashed", "red"
		case EdgeDD:
			color = "blue"
		case EdgeObj:
			color = "gray"
		}
		label := g.Prog.Pool.String(e.Guard)
		if len(label) > 40 {
			label = label[:37] + "..."
		}
		fmt.Fprintf(w, "  n%d -> n%d [label=%q style=%s color=%s];\n",
			e.From, e.To, label, style, color)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
