package vfg

import (
	"testing"

	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/lang"
)

func lowered(t *testing.T) *ir.Program {
	t.Helper()
	src := `
func main() {
  p = malloc();
  q = p;
  *q = p;
  r = *q;
  print(*r);
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func firstVar(t *testing.T, prog *ir.Program, prefix string) ir.VarID {
	t.Helper()
	for _, v := range prog.Vars {
		if len(v.Name) >= len(prefix) && v.Name[:len(prefix)] == prefix {
			return v.ID
		}
	}
	t.Fatalf("no var with prefix %q", prefix)
	return 0
}

func TestNodeInterning(t *testing.T) {
	prog := lowered(t)
	g := New(prog)
	p := firstVar(t, prog, "p.")
	n1 := g.VarNode(p)
	n2 := g.VarNode(p)
	if n1 != n2 {
		t.Error("var nodes must intern")
	}
	o := prog.Objects[0].ID
	if g.ObjNode(o) != g.ObjNode(o) {
		t.Error("obj nodes must intern")
	}
	if g.NumNodes() != 2 {
		t.Errorf("want 2 nodes, got %d", g.NumNodes())
	}
	node := g.Node(n1)
	if node.Kind != NodeVar || node.Var != p {
		t.Errorf("node malformed: %+v", node)
	}
}

func TestAddEdgeDedupJoinsGuards(t *testing.T) {
	prog := lowered(t)
	g := New(prog)
	p := g.VarNode(firstVar(t, prog, "p."))
	q := g.VarNode(firstVar(t, prog, "q."))
	a := guard.Var(1)
	if !g.AddEdge(Edge{From: p, To: q, Kind: EdgeDirect, Guard: a}) {
		t.Fatal("first insert should be new")
	}
	if g.AddEdge(Edge{From: p, To: q, Kind: EdgeDirect, Guard: guard.Not(a)}) {
		t.Fatal("duplicate edge should merge, not insert")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("want 1 edge, got %d", g.NumEdges())
	}
	// a ∨ ¬a folds to true.
	if !g.Edge(0).Guard.IsTrue() {
		t.Errorf("merged guard should be true, got %v", g.Edge(0).Guard)
	}
	// Different kind or indirect bookkeeping means a different edge.
	if !g.AddEdge(Edge{From: p, To: q, Kind: EdgeDD, Guard: a, Store: 1, Load: 2, Obj: 1}) {
		t.Fatal("distinct indirect edge should insert")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("want 2 edges, got %d", g.NumEdges())
	}
}

func TestAdjacency(t *testing.T) {
	prog := lowered(t)
	g := New(prog)
	p := g.VarNode(firstVar(t, prog, "p."))
	q := g.VarNode(firstVar(t, prog, "q."))
	r := g.VarNode(firstVar(t, prog, "r."))
	g.AddEdge(Edge{From: p, To: q, Kind: EdgeDirect, Guard: guard.True()})
	g.AddEdge(Edge{From: p, To: r, Kind: EdgeDirect, Guard: guard.True()})
	g.AddEdge(Edge{From: q, To: r, Kind: EdgeDirect, Guard: guard.True()})
	if len(g.Out(p)) != 2 || len(g.In(p)) != 0 {
		t.Errorf("p adjacency wrong: out=%d in=%d", len(g.Out(p)), len(g.In(p)))
	}
	if len(g.In(r)) != 2 {
		t.Errorf("r in-degree = %d", len(g.In(r)))
	}
}

func TestObjStores(t *testing.T) {
	prog := lowered(t)
	g := New(prog)
	loc := Loc{Obj: prog.Objects[0].ID}
	a := guard.Var(1)
	g.AddObjStore(loc, StoreRef{Store: 5, Guard: a})
	g.AddObjStore(loc, StoreRef{Store: 5, Guard: guard.Not(a)}) // merges
	g.AddObjStore(loc, StoreRef{Store: 9, Guard: a})
	refs := g.ObjStores(loc)
	if len(refs) != 2 {
		t.Fatalf("want 2 store refs, got %d", len(refs))
	}
	if !refs[0].Guard.IsTrue() {
		t.Errorf("merged store guard should be true")
	}
	if g.ObjStores(Loc{Obj: ir.ObjID(999)}) != nil {
		t.Error("unknown object should have no stores")
	}
	// Distinct fields of one object are distinct locations.
	fieldLoc := Loc{Obj: prog.Objects[0].ID, Field: "next"}
	g.AddObjStore(fieldLoc, StoreRef{Store: 11, Guard: a})
	if len(g.ObjStores(loc)) != 2 || len(g.ObjStores(fieldLoc)) != 1 {
		t.Error("field locations must not share store sets")
	}
}

func TestEdgeCountByKindAndStrings(t *testing.T) {
	prog := lowered(t)
	g := New(prog)
	p := g.VarNode(firstVar(t, prog, "p."))
	q := g.VarNode(firstVar(t, prog, "q."))
	o := g.ObjNode(prog.Objects[0].ID)
	g.AddEdge(Edge{From: o, To: p, Kind: EdgeObj, Guard: guard.True()})
	g.AddEdge(Edge{From: p, To: q, Kind: EdgeInterference, Guard: guard.True(), Store: 1, Load: 2, Obj: 1})
	counts := g.EdgeCountByKind()
	if counts[EdgeObj] != 1 || counts[EdgeInterference] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if s := g.NodeString(p); s == "" {
		t.Error("empty node rendering")
	}
	if s := g.NodeString(o); s == "" {
		t.Error("empty object rendering")
	}
	for _, k := range []EdgeKind{EdgeDirect, EdgeDD, EdgeInterference, EdgeObj} {
		if k.String() == "" {
			t.Error("empty kind rendering")
		}
	}
}
