// Package vfg implements the guarded value-flow graph at the heart of
// Canary (PLDI 2021, §3.1). Nodes are abstract memory objects and SSA
// variable definitions (v@ℓ); edges are value flows annotated with the
// guard under which the flow happens. Direct edges come from copies, φs,
// parameter bindings and operand flows; indirect edges connect a store to a
// load through a memory object and carry, besides the alias guard, the
// bookkeeping needed to generate the load–store order constraints Φ_ls
// lazily at the bug-checking stage (§4.2.2).
package vfg

import (
	"fmt"
	"sort"

	"canary/internal/guard"
	"canary/internal/ir"
)

// NodeID indexes a node. 0 is invalid.
type NodeID int

// NodeKind discriminates node types.
type NodeKind uint8

// Node kinds.
const (
	NodeVar NodeKind = iota // an SSA variable definition v@ℓ
	NodeObj                 // an abstract memory object
)

// Node is a VFG node.
type Node struct {
	ID     NodeID
	Kind   NodeKind
	Var    ir.VarID // for NodeVar
	Obj    ir.ObjID // for NodeObj
	Def    ir.Label // defining label (NoLabel for objects/parameters)
	Thread int      // thread of the definition (-1 for objects)
}

// EdgeKind discriminates value-flow edge types.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeDirect is an intra-thread (or parameter-passing) direct flow.
	EdgeDirect EdgeKind = iota
	// EdgeDD is an indirect intra-thread store→load data dependence.
	EdgeDD
	// EdgeInterference is an indirect cross-thread store→load flow
	// (Defn. 1's interference dependence).
	EdgeInterference
	// EdgeObj is the base pointed-to-by edge from an object to the
	// variable its allocation/address-of defines.
	EdgeObj
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeDD:
		return "dd"
	case EdgeInterference:
		return "id"
	case EdgeObj:
		return "obj"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// EdgeID indexes an edge.
type EdgeID int

// Edge is a guarded value-flow edge.
type Edge struct {
	ID    EdgeID
	From  NodeID
	To    NodeID
	Kind  EdgeKind
	Guard *guard.Formula
	// Store/Load/Obj/Field describe indirect edges: the flow goes from the
	// store at Store to the load at Load through field Field of object Obj
	// ("" = the whole cell).
	Store ir.Label
	Load  ir.Label
	Obj   ir.ObjID
	Field string
}

type edgeKey struct {
	from, to NodeID
	kind     EdgeKind
	store    ir.Label
	load     ir.Label
	obj      ir.ObjID
	field    string
}

// Graph is a guarded value-flow graph over one lowered program.
type Graph struct {
	Prog *ir.Program

	nodes   []Node
	varNode map[ir.VarID]NodeID
	objNode map[ir.ObjID]NodeID
	edges   []Edge
	out     [][]EdgeID
	in      [][]EdgeID
	edgeIdx map[edgeKey]EdgeID

	// objStores maps each location (object, field) to the stores that may
	// define it — the superset from which the S(l) sets of Eq. 2 and the
	// intervening-store competitors of Φ_ls are drawn at checking time.
	// Indexed by LocIndex; locations outside the dense index space (an
	// object or field the program doesn't mention) fall back to a map.
	objStores   [][]StoreRef
	locOverflow map[Loc][]StoreRef

	// Dense location numbering: every (object, field) pair maps to
	// obj-major, field-minor index space. Field names are interned from the
	// program's instructions at construction, in sorted order — so ascending
	// LocIndex order is exactly ascending (Obj, Field-string) order, the
	// ordering the analysis passes sort locations into.
	fieldID    map[string]int
	fieldNames []string
}

// Loc is a field-sensitive memory location: a field of an abstract object
// ("" = the whole cell).
type Loc struct {
	Obj   ir.ObjID
	Field string
}

// StoreRef is a store that may define an object, under the given guard
// (the store's path condition conjoined with its alias condition).
type StoreRef struct {
	Store ir.Label
	Guard *guard.Formula
}

// New returns an empty graph over prog.
func New(prog *ir.Program) *Graph {
	g := &Graph{
		Prog:    prog,
		varNode: make(map[ir.VarID]NodeID),
		objNode: make(map[ir.ObjID]NodeID),
		edgeIdx: make(map[edgeKey]EdgeID),
		fieldID: map[string]int{"": 0},
	}
	for _, inst := range prog.Insts() {
		if inst.Field != "" {
			g.fieldID[inst.Field] = 0
		}
	}
	g.fieldNames = make([]string, 0, len(g.fieldID))
	for f := range g.fieldID {
		g.fieldNames = append(g.fieldNames, f)
	}
	sort.Strings(g.fieldNames)
	for i, f := range g.fieldNames {
		g.fieldID[f] = i
	}
	g.objStores = make([][]StoreRef, g.LocCount())
	return g
}

// FieldID returns the dense id of a field name. Every field occurring in
// the program (plus "", the whole cell) is interned at construction.
func (g *Graph) FieldID(field string) int {
	id, ok := g.fieldID[field]
	if !ok {
		panic(fmt.Sprintf("vfg: field %q not interned", field))
	}
	return id
}

// NumFields returns the number of interned fields (including "").
func (g *Graph) NumFields() int { return len(g.fieldNames) }

// LocIndex returns the dense index of location (o, field): obj-major,
// field-minor, so ascending index order is ascending (Obj, Field) order.
func (g *Graph) LocIndex(o ir.ObjID, field string) int {
	return (int(o)-1)*len(g.fieldNames) + g.FieldID(field)
}

// LocCount returns the size of the dense location index space.
func (g *Graph) LocCount() int {
	return len(g.Prog.Objects) * len(g.fieldNames)
}

// LocAt is the inverse of LocIndex.
func (g *Graph) LocAt(i int) Loc {
	nf := len(g.fieldNames)
	return Loc{Obj: ir.ObjID(i/nf) + 1, Field: g.fieldNames[i%nf]}
}

// locIndex is the non-panicking LocIndex: it reports whether l lies in the
// dense index space.
func (g *Graph) locIndex(l Loc) (int, bool) {
	fid, ok := g.fieldID[l.Field]
	if !ok || int(l.Obj) < 1 || int(l.Obj) > len(g.Prog.Objects) {
		return 0, false
	}
	return (int(l.Obj)-1)*len(g.fieldNames) + fid, true
}

// VarNode interns the node of SSA variable v.
func (g *Graph) VarNode(v ir.VarID) NodeID {
	if n, ok := g.varNode[v]; ok {
		return n
	}
	info := g.Prog.Var(v)
	def := info.Def
	thread := -1
	if def != ir.NoLabel && def >= 0 {
		thread = g.Prog.Inst(def).Thread
	}
	n := g.addNode(Node{Kind: NodeVar, Var: v, Def: def, Thread: thread})
	g.varNode[v] = n
	return n
}

// ObjNode interns the node of object o.
func (g *Graph) ObjNode(o ir.ObjID) NodeID {
	if n, ok := g.objNode[o]; ok {
		return n
	}
	n := g.addNode(Node{Kind: NodeObj, Obj: o, Def: g.Prog.Obj(o).Alloc, Thread: -1})
	g.objNode[o] = n
	return n
}

func (g *Graph) addNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes) + 1)
	g.nodes = append(g.nodes, n)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return n.ID
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id-1] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// Out returns the outgoing edge ids of n.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n-1] }

// In returns the incoming edge ids of n.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n-1] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts (or widens the guard of) an edge. It reports whether the
// edge is new. Duplicate edges (same endpoints, kind and indirect
// bookkeeping) have their guards joined with ∨.
func (g *Graph) AddEdge(e Edge) bool {
	key := edgeKey{from: e.From, to: e.To, kind: e.Kind, store: e.Store, load: e.Load, obj: e.Obj, field: e.Field}
	if id, ok := g.edgeIdx[key]; ok {
		old := &g.edges[id]
		old.Guard = guard.Or(old.Guard, e.Guard)
		return false
	}
	e.ID = EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.edgeIdx[key] = e.ID
	g.out[e.From-1] = append(g.out[e.From-1], e.ID)
	g.in[e.To-1] = append(g.in[e.To-1], e.ID)
	return true
}

// AddObjStore records that the store at ref.Store may define location l.
// Duplicates are merged by guard disjunction.
func (g *Graph) AddObjStore(l Loc, ref StoreRef) {
	li, ok := g.locIndex(l)
	refs := g.locOverflow[l]
	if ok {
		refs = g.objStores[li]
	}
	for i, r := range refs {
		if r.Store == ref.Store {
			refs[i].Guard = guard.Or(r.Guard, ref.Guard)
			return
		}
	}
	refs = append(refs, ref)
	if ok {
		g.objStores[li] = refs
		return
	}
	if g.locOverflow == nil {
		g.locOverflow = make(map[Loc][]StoreRef)
	}
	g.locOverflow[l] = refs
}

// ObjStores returns all stores that may define location l.
func (g *Graph) ObjStores(l Loc) []StoreRef {
	if li, ok := g.locIndex(l); ok {
		return g.objStores[li]
	}
	return g.locOverflow[l]
}

// EdgeCountByKind tallies edges per kind (for evaluation stats).
func (g *Graph) EdgeCountByKind() map[EdgeKind]int {
	out := make(map[EdgeKind]int)
	for i := range g.edges {
		out[g.edges[i].Kind]++
	}
	return out
}

// NodeString renders node n for reports.
func (g *Graph) NodeString(id NodeID) string {
	n := g.Node(id)
	if n.Kind == NodeObj {
		return g.Prog.Obj(n.Obj).Name
	}
	name := g.Prog.VarName(n.Var)
	if n.Def == ir.NoLabel {
		return name
	}
	return fmt.Sprintf("%s@ℓ%d", name, n.Def)
}
