// Package ir defines Canary's bounded partial-SSA intermediate
// representation (the paper's §3.1 abstract domains) and the lowering from
// the lang AST into it.
//
// Following the LLVM convention the paper adopts, variables split into two
// disjoint classes: top-level variables (V), which are put into SSA form
// with explicit φ instructions during lowering, and address-taken objects
// (O), which are only accessed through load and store instructions. The
// program is structurally bounded: loops are unrolled to a fixed depth and
// calls are inlined up to a context depth (the clone-based
// context-sensitivity of §5.1), which bounds both the number of threads and
// the heap, as required for decidability (§3.1).
//
// Every instruction carries a label ℓ (the O_ℓ of the order constraints), a
// thread id, and a guard: the path condition under which the instruction
// executes, expressed over the program's interned branch-condition atoms.
package ir

import (
	"fmt"
	"sync"

	"canary/internal/guard"
	"canary/internal/lang"
)

// Label is a global instruction label; it doubles as the subscript of the
// execution-order variables O_ℓ in order constraints.
type Label int

// NoLabel marks an absent label (e.g., the fork site of the main thread).
const NoLabel Label = -1

// VarID identifies an SSA top-level variable version. 0 is invalid.
type VarID int

// ObjID identifies an abstract memory object. 0 is invalid.
type ObjID int

// ObjKind classifies abstract objects.
type ObjKind uint8

// Object kinds.
const (
	ObjHeap   ObjKind = iota // malloc() result
	ObjGlobal                // global declaration
	ObjNull                  // the null constant (null-deref source)
	ObjFunc                  // a function value (for indirect calls/forks)
)

// Object is an abstract memory location (an element of the O domain).
type Object struct {
	ID       ObjID
	Kind     ObjKind
	Name     string // display name: o1, g:name, null@ℓ, fn:name
	Alloc    Label  // allocation/declaration site (NoLabel for globals, funcs)
	FuncName string // for ObjFunc
}

// Var is an SSA top-level variable version (an element of the V domain).
type Var struct {
	ID   VarID
	Name string // display name, e.g. "x.2"
	Def  Label  // defining instruction (NoLabel for parameters of main)
}

// Op enumerates instruction opcodes (the statement forms of Fig. 3 plus
// the checker-relevant intrinsics).
type Op uint8

// Instruction opcodes.
const (
	OpAlloc  Op = iota // Def = alloc Obj            (p = malloc())
	OpAddr             // Def = &Obj                 (p = &g, function refs)
	OpNull             // Def = null (points to a fresh ObjNull)
	OpTaint            // Def = taint()              (information source)
	OpConst            // Def = integer literal
	OpCopy             // Def = Val                  (p = q)
	OpPhi              // Def = φ(Ops, PhiGuards)    (SSA merge)
	OpBin              // Def = Ops[0] op Ops[1]     (value-level)
	OpLoad             // Def = *Ptr
	OpStore            // *Ptr = Val
	OpFree             // free(Val)                  (UAF/double-free source)
	OpDeref            // print(*Val)                (dereference sink)
	OpLeak             // sink(Val)                  (information-leak sink)
	OpFork             // fork thread ForkThread
	OpJoin             // join thread ForkThread
	OpLock             // lock(Mutex)
	OpUnlock           // unlock(Mutex)
	OpWait             // wait(CondVar): returns only after some notify
	OpNotify           // notify(CondVar)
	OpHavoc            // Def = unknown (beyond-depth call summary)
)

var opNames = [...]string{
	OpAlloc: "alloc", OpAddr: "addr", OpNull: "null", OpTaint: "taint",
	OpConst: "const", OpCopy: "copy", OpPhi: "phi", OpBin: "bin",
	OpLoad: "load", OpStore: "store", OpFree: "free", OpDeref: "deref",
	OpLeak: "leak", OpFork: "fork", OpJoin: "join", OpLock: "lock",
	OpUnlock: "unlock", OpWait: "wait", OpNotify: "notify", OpHavoc: "havoc",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Inst is a single IR instruction.
type Inst struct {
	Label  Label
	Op     Op
	Thread int
	Block  *Block
	// Guard is the path condition under which this instruction executes
	// (conjunction of the branch conditions on the lowered path, including
	// the fork-site condition of the owning thread).
	Guard *guard.Formula

	Def VarID // defined variable (0 when none)
	Ptr VarID // pointer operand of load/store
	Val VarID // value operand of copy/store/free/deref/leak
	Ops []VarID
	// PhiGuards are the per-operand guards of OpPhi (parallel to Ops).
	PhiGuards  []*guard.Formula
	Obj        ObjID  // OpAlloc/OpAddr/OpNull object
	ForkThread int    // OpFork/OpJoin child thread id
	Mutex      string // OpLock/OpUnlock
	CondVar    string // OpWait/OpNotify
	BinOp      string // OpBin operator text
	// Field is the accessed record field of OpLoad/OpStore; empty means
	// the whole cell (the plain *p dereference). Distinct fields of one
	// object never alias (field sensitivity).
	Field string

	// Locks is the set of locks that are must-held at this instruction,
	// with their acquisition sites (computed by the lock dataflow; used by
	// the lock/unlock order extension).
	Locks []HeldLock

	Pos lang.Pos
	// Fn is the display name of the function clone containing the
	// instruction (for reports), e.g. "main" or "helper<main:12>".
	Fn string
}

// HeldLock records a must-held lock and the label of the lock instruction
// that acquired it.
type HeldLock struct {
	Name    string
	Acquire Label
}

// Block is a CFG basic block within one thread.
type Block struct {
	ID     int
	Thread int
	Insts  []*Inst
	Succs  []*Block
	Preds  []*Block
	// Guard is the path condition at block entry.
	Guard *guard.Formula
	// local is the block's index within its thread (set by Finalize).
	local int
}

// Thread is one static thread instance: the main thread or a
// context-sensitive fork site (§3.1: a thread id corresponds to a fork
// site).
type Thread struct {
	ID     int
	Name   string
	Parent int // parent thread id; -1 for main
	// ForkSite and JoinSite are the labels of the fork/join instructions in
	// the parent thread (NoLabel when absent; JoinSite is NoLabel for
	// never-joined threads).
	ForkSite Label
	JoinSite Label
	Entry    *Block
	Blocks   []*Block
}

// Program is a lowered, bounded concurrent program.
type Program struct {
	Pool    *guard.Pool
	Threads []*Thread
	Objects []*Object // index ObjID-1
	Vars    []*Var    // index VarID-1
	insts   []*Inst   // index Label

	// inst position index for reachability (filled by Finalize).
	blockIndex []int // per label: index of inst within its block
	reach      map[*Block][]uint64
	reachMu    sync.Mutex

	// structural label coordinates (built lazily by StructLabels).
	structOnce sync.Once
	structIDs  []string
}

// StructLabels returns, for every label, a structural coordinate
// "<thread-path>:<rank>" that is stable across unrelated edits. The thread
// path identifies a thread by its chain of fork ordinals from main ("m",
// "m.0", "m.0.1", ...); the rank is the instruction's index within its
// thread, in label order. Plain labels are global — inserting one statement
// anywhere shifts every later label in the program — whereas a structural
// coordinate moves only when its own thread's instruction sequence changes
// at or before it. The cross-run SMT verdict store keys constraint systems
// on these coordinates, so an edit in one function leaves the verdicts of
// untouched threads' queries addressable.
func (p *Program) StructLabels() []string {
	p.structOnce.Do(func() {
		// Thread paths. Threads are appended parent-before-child during
		// lowering and Thread.ID equals the slice index, so one forward pass
		// resolves every parent path before its children need it.
		paths := make([]string, len(p.Threads))
		childN := make([]int, len(p.Threads))
		for _, th := range p.Threads {
			if th.Parent < 0 {
				paths[th.ID] = "m"
				continue
			}
			paths[th.ID] = paths[th.Parent] + "." + fmt.Sprint(childN[th.Parent])
			childN[th.Parent]++
		}
		ids := make([]string, len(p.insts))
		rank := make([]int, len(p.Threads))
		for l, in := range p.insts {
			ids[l] = paths[in.Thread] + ":" + fmt.Sprint(rank[in.Thread])
			rank[in.Thread]++
		}
		p.structIDs = ids
	})
	return p.structIDs
}

// NumInsts returns the number of instructions (labels run 0..NumInsts-1).
func (p *Program) NumInsts() int { return len(p.insts) }

// Inst returns the instruction at label l.
func (p *Program) Inst(l Label) *Inst { return p.insts[l] }

// Insts returns all instructions in label order. The slice must not be
// modified.
func (p *Program) Insts() []*Inst { return p.insts }

// Obj returns the object with the given id.
func (p *Program) Obj(id ObjID) *Object { return p.Objects[id-1] }

// Var returns the variable with the given id.
func (p *Program) Var(id VarID) *Var { return p.Vars[id-1] }

// Thread returns the thread with the given id.
func (p *Program) Thread(id int) *Thread { return p.Threads[id] }

// VarName returns a display name for v ("_" when v is 0).
func (p *Program) VarName(v VarID) string {
	if v == 0 {
		return "_"
	}
	return p.Var(v).Name
}

// String renders inst i for debugging and reports.
func (p *Program) String(i *Inst) string {
	switch i.Op {
	case OpAlloc:
		return fmt.Sprintf("ℓ%d: %s = alloc %s", i.Label, p.VarName(i.Def), p.Obj(i.Obj).Name)
	case OpAddr:
		return fmt.Sprintf("ℓ%d: %s = &%s", i.Label, p.VarName(i.Def), p.Obj(i.Obj).Name)
	case OpNull:
		return fmt.Sprintf("ℓ%d: %s = null", i.Label, p.VarName(i.Def))
	case OpTaint:
		return fmt.Sprintf("ℓ%d: %s = taint()", i.Label, p.VarName(i.Def))
	case OpConst:
		return fmt.Sprintf("ℓ%d: %s = const", i.Label, p.VarName(i.Def))
	case OpCopy:
		return fmt.Sprintf("ℓ%d: %s = %s", i.Label, p.VarName(i.Def), p.VarName(i.Val))
	case OpPhi:
		return fmt.Sprintf("ℓ%d: %s = φ(...)", i.Label, p.VarName(i.Def))
	case OpBin:
		return fmt.Sprintf("ℓ%d: %s = %s %s %s", i.Label, p.VarName(i.Def), p.VarName(i.Ops[0]), i.BinOp, p.VarName(i.Ops[1]))
	case OpLoad:
		if i.Field != "" {
			return fmt.Sprintf("ℓ%d: %s = %s.%s", i.Label, p.VarName(i.Def), p.VarName(i.Ptr), i.Field)
		}
		return fmt.Sprintf("ℓ%d: %s = *%s", i.Label, p.VarName(i.Def), p.VarName(i.Ptr))
	case OpStore:
		if i.Field != "" {
			return fmt.Sprintf("ℓ%d: %s.%s = %s", i.Label, p.VarName(i.Ptr), i.Field, p.VarName(i.Val))
		}
		return fmt.Sprintf("ℓ%d: *%s = %s", i.Label, p.VarName(i.Ptr), p.VarName(i.Val))
	case OpFree:
		return fmt.Sprintf("ℓ%d: free(%s)", i.Label, p.VarName(i.Val))
	case OpDeref:
		return fmt.Sprintf("ℓ%d: print(*%s)", i.Label, p.VarName(i.Val))
	case OpLeak:
		return fmt.Sprintf("ℓ%d: sink(%s)", i.Label, p.VarName(i.Val))
	case OpFork:
		return fmt.Sprintf("ℓ%d: fork(t%d)", i.Label, i.ForkThread)
	case OpJoin:
		return fmt.Sprintf("ℓ%d: join(t%d)", i.Label, i.ForkThread)
	case OpLock:
		return fmt.Sprintf("ℓ%d: lock(%s)", i.Label, i.Mutex)
	case OpUnlock:
		return fmt.Sprintf("ℓ%d: unlock(%s)", i.Label, i.Mutex)
	case OpWait:
		return fmt.Sprintf("ℓ%d: wait(%s)", i.Label, i.CondVar)
	case OpNotify:
		return fmt.Sprintf("ℓ%d: notify(%s)", i.Label, i.CondVar)
	case OpHavoc:
		return fmt.Sprintf("ℓ%d: %s = havoc", i.Label, p.VarName(i.Def))
	}
	return fmt.Sprintf("ℓ%d: ?", i.Label)
}

// newObject interns a fresh object.
func (p *Program) newObject(kind ObjKind, name string, alloc Label, fn string) ObjID {
	id := ObjID(len(p.Objects) + 1)
	p.Objects = append(p.Objects, &Object{ID: id, Kind: kind, Name: name, Alloc: alloc, FuncName: fn})
	return id
}

// newVar interns a fresh SSA variable version.
func (p *Program) newVar(name string, def Label) VarID {
	id := VarID(len(p.Vars) + 1)
	p.Vars = append(p.Vars, &Var{ID: id, Name: name, Def: def})
	return id
}
