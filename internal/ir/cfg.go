package ir

import "sort"

// Finalize computes the derived CFG information the analyses need:
// per-instruction block indices, per-thread block numbering, must-held lock
// sets, and the reachability cache. Lower calls it automatically.
func (p *Program) Finalize() {
	p.blockIndex = make([]int, len(p.insts))
	for _, th := range p.Threads {
		for li, b := range th.Blocks {
			b.local = li
			for idx, in := range b.Insts {
				p.blockIndex[in.Label] = idx
			}
		}
	}
	p.reach = make(map[*Block][]uint64)
	p.computeLockSets()
}

func (p *Program) computeLockSets() {
	for _, th := range p.Threads {
		p.lockSetsForThread(th)
	}
}

// lockSetsForThread runs a forward must-analysis of held locks over the
// thread CFG: the meet at a join is set intersection (a lock differing in
// acquisition site across paths is dropped too), lock() adds, unlock()
// removes. Each instruction then records the must-held set, which the
// lock/unlock order extension (§9 future work 1) uses to add
// mutual-exclusion constraints.
func (p *Program) lockSetsForThread(th *Thread) {
	n := len(th.Blocks)
	if n == 0 {
		return
	}
	in := make([]map[string]Label, n)
	out := make([]map[string]Label, n)
	// nil means "top" (not yet computed), distinct from the empty set.
	worklist := []*Block{th.Entry}
	in[th.Entry.local] = map[string]Label{}
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		cur := copySet(in[b.local])
		for _, i := range b.Insts {
			i.Locks = setToSorted(cur)
			switch i.Op {
			case OpLock:
				cur[i.Mutex] = i.Label
			case OpUnlock:
				delete(cur, i.Mutex)
			}
		}
		if equalSet(out[b.local], cur) {
			continue
		}
		out[b.local] = cur
		for _, s := range b.Succs {
			var merged map[string]Label
			if in[s.local] == nil {
				merged = copySet(cur)
			} else {
				merged = intersect(in[s.local], cur)
				if equalSet(merged, in[s.local]) {
					continue
				}
			}
			in[s.local] = merged
			worklist = append(worklist, s)
		}
	}
}

func copySet(s map[string]Label) map[string]Label {
	out := make(map[string]Label, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func intersect(a, b map[string]Label) map[string]Label {
	out := make(map[string]Label)
	for k, v := range a {
		if bv, ok := b[k]; ok && bv == v {
			out[k] = v
		}
	}
	return out
}

func equalSet(a, b map[string]Label) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func setToSorted(s map[string]Label) []HeldLock {
	if len(s) == 0 {
		return nil
	}
	out := make([]HeldLock, 0, len(s))
	for k, v := range s {
		out = append(out, HeldLock{Name: k, Acquire: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reaches reports whether there is a valid intra-thread control-flow path
// from l1 to l2 (exclusive: l1 strictly before l2 on some path). Both labels
// must belong to the same thread; otherwise it returns false.
func (p *Program) Reaches(l1, l2 Label) bool {
	i1, i2 := p.insts[l1], p.insts[l2]
	if i1.Thread != i2.Thread {
		return false
	}
	if i1.Block == i2.Block {
		return p.blockIndex[l1] < p.blockIndex[l2]
	}
	return p.blockReaches(i1.Block, i2.Block)
}

// blockReaches reports CFG reachability between distinct blocks of one
// thread, memoized as bitsets over the thread's local block numbering.
func (p *Program) blockReaches(from, to *Block) bool {
	p.reachMu.Lock()
	bits, ok := p.reach[from]
	p.reachMu.Unlock()
	if !ok {
		bits = p.computeReach(from)
		p.reachMu.Lock()
		p.reach[from] = bits
		p.reachMu.Unlock()
	}
	return bits[to.local/64]&(1<<(to.local%64)) != 0
}

func (p *Program) computeReach(from *Block) []uint64 {
	nBlocks := len(p.Threads[from.Thread].Blocks)
	bits := make([]uint64, (nBlocks+63)/64)
	stack := append([]*Block(nil), from.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		w, m := b.local/64, uint64(1)<<(b.local%64)
		if bits[w]&m != 0 {
			continue
		}
		bits[w] |= m
		stack = append(stack, b.Succs...)
	}
	return bits
}

// Frees returns the labels of all free instructions.
func (p *Program) Frees() []Label { return p.labelsOf(OpFree) }

// Derefs returns the labels of all dereference-sink instructions.
func (p *Program) Derefs() []Label { return p.labelsOf(OpDeref) }

// Leaks returns the labels of all information-leak sinks.
func (p *Program) Leaks() []Label { return p.labelsOf(OpLeak) }

// Taints returns the labels of all taint sources.
func (p *Program) Taints() []Label { return p.labelsOf(OpTaint) }

// Nulls returns the labels of all null-constant definitions.
func (p *Program) Nulls() []Label { return p.labelsOf(OpNull) }

// Stores returns the labels of all store instructions.
func (p *Program) Stores() []Label { return p.labelsOf(OpStore) }

// Loads returns the labels of all load instructions.
func (p *Program) Loads() []Label { return p.labelsOf(OpLoad) }

func (p *Program) labelsOf(op Op) []Label {
	var out []Label
	for _, i := range p.insts {
		if i.Op == op {
			out = append(out, i.Label)
		}
	}
	return out
}

// Ancestors returns the chain of thread ids from t up to the main thread
// (inclusive of t).
func (p *Program) Ancestors(t int) []int {
	var out []int
	for t >= 0 {
		out = append(out, t)
		t = p.Threads[t].Parent
	}
	return out
}

// HoldsLock reports whether inst must hold the named lock.
func (i *Inst) HoldsLock(m string) bool {
	for _, l := range i.Locks {
		if l.Name == m {
			return true
		}
	}
	return false
}

// CommonLocks returns, for every lock must-held by both instructions, the
// pair of held-lock records (a's and b's acquisition sites).
func CommonLocks(a, b *Inst) [][2]HeldLock {
	var out [][2]HeldLock
	for _, la := range a.Locks {
		for _, lb := range b.Locks {
			if la.Name == lb.Name {
				out = append(out, [2]HeldLock{la, lb})
			}
		}
	}
	return out
}

// MatchingUnlock returns the unique unlock instruction of mutex m reachable
// from the acquisition at acq within the same thread, or NoLabel when there
// is no unlock or more than one (in which case the caller should skip the
// mutual-exclusion encoding — a sound under-constraining).
func (p *Program) MatchingUnlock(acq Label, m string) Label {
	th := p.insts[acq].Thread
	found := NoLabel
	for _, i := range p.insts {
		if i.Op != OpUnlock || i.Mutex != m || i.Thread != th {
			continue
		}
		if p.Reaches(acq, i.Label) {
			if found != NoLabel {
				return NoLabel // ambiguous
			}
			found = i.Label
		}
	}
	return found
}
