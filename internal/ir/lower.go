package ir

import (
	"fmt"

	"canary/internal/guard"
	"canary/internal/lang"
	"canary/internal/pta"
)

// Options configures the structural bounding of §3.1.
type Options struct {
	// UnrollDepth is how many times loops are unrolled (the paper unrolls
	// each loop twice, §6). Minimum 1.
	UnrollDepth int
	// InlineDepth is the maximum call-inlining (context nesting) depth; the
	// paper sets the number of nested calling-context levels to six (§7.2).
	InlineDepth int
	// Entry is the entry function name; defaults to "main".
	Entry string
	// Summaries optionally supplies precomputed Trans(F) summaries keyed by
	// function name (the incremental path: canary.Session loads unchanged
	// functions' summaries from its digest-keyed store and injects them
	// here). nil means Lower computes them from scratch. The injected map
	// must cover every function of src, as pta.Summaries would.
	Summaries map[string]*pta.Summary
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{UnrollDepth: 2, InlineDepth: 6, Entry: "main"}
}

func (o Options) withDefaults() Options {
	if o.UnrollDepth < 1 {
		o.UnrollDepth = 2
	}
	if o.InlineDepth < 1 {
		o.InlineDepth = 6
	}
	if o.Entry == "" {
		o.Entry = "main"
	}
	return o
}

// Lower converts a parsed program into the bounded partial-SSA IR,
// performing loop unrolling, clone-based call inlining, SSA renaming with φ
// insertion, and thread-tree construction. Function pointers in fork/call
// positions are resolved with Steensgaard's analysis (§6).
func Lower(src *lang.Program, opt Options) (*Program, error) {
	opt = opt.withDefaults()
	entry := src.Func(opt.Entry)
	if entry == nil {
		return nil, fmt.Errorf("ir: no entry function %q", opt.Entry)
	}
	summaries := opt.Summaries
	if summaries == nil {
		summaries = pta.Summaries(src)
	}
	l := &lowerer{
		src:       src,
		opt:       opt,
		p:         &Program{Pool: guard.NewPool()},
		steens:    pta.AnalyzeFuncPointers(src),
		summaries: summaries,
		globals:   make(map[string]ObjID),
		funcObj:   make(map[string]ObjID),
		heapN:     0,
	}
	for _, g := range src.Globals {
		l.globals[g.Name] = l.p.newObject(ObjGlobal, "g:"+g.Name, NoLabel, "")
	}

	// Main thread.
	main := &Thread{ID: 0, Name: "main", Parent: -1, ForkSite: NoLabel, JoinSite: NoLabel}
	l.p.Threads = append(l.p.Threads, main)
	tl := l.newThreadLowerer(main, guard.True())
	env := newEnv()
	for _, param := range entry.Params {
		env.vars[param] = l.p.newVar(param+".arg", NoLabel)
	}
	ctx := &callCtx{fn: entry.Name, depth: 0, stack: map[string]bool{entry.Name: true}}
	tl.lowerBlock(entry.Body, env, ctx)
	l.p.Finalize()
	return l.p, nil
}

type lowerer struct {
	src       *lang.Program
	opt       Options
	p         *Program
	steens    *pta.Steensgaard
	summaries map[string]*pta.Summary
	globals   map[string]ObjID
	funcObj   map[string]ObjID
	heapN     int
	varN      int
	blockN    int
}

func (l *lowerer) funcObject(name string) ObjID {
	if id, ok := l.funcObj[name]; ok {
		return id
	}
	id := l.p.newObject(ObjFunc, "fn:"+name, NoLabel, name)
	l.funcObj[name] = id
	return id
}

func (l *lowerer) freshVar(base string, def Label) VarID {
	l.varN++
	return l.p.newVar(fmt.Sprintf("%s.%d", base, l.varN), def)
}

// env is the SSA renaming environment of one function scope.
type env struct {
	vars    map[string]VarID
	threads map[string][]int // fork handle → child thread ids
}

func newEnv() *env {
	return &env{vars: make(map[string]VarID), threads: make(map[string][]int)}
}

func (e *env) clone() *env {
	ne := newEnv()
	for k, v := range e.vars {
		ne.vars[k] = v
	}
	for k, v := range e.threads {
		ne.threads[k] = append([]int(nil), v...)
	}
	return ne
}

// callCtx tracks the inlining state (clone-based context sensitivity).
type callCtx struct {
	fn      string          // display name of the current clone
	depth   int             // inlining depth
	stack   map[string]bool // functions on the inline stack (recursion cut)
	returns *[]retVal       // collector for the innermost inlined call
}

type retVal struct {
	val   VarID // 0 for void
	guard *guard.Formula
}

// threadLowerer lowers statements into one thread's CFG.
type threadLowerer struct {
	l    *lowerer
	th   *Thread
	cur  *Block
	path *guard.Formula
	live bool
}

func (l *lowerer) newThreadLowerer(th *Thread, entryGuard *guard.Formula) *threadLowerer {
	tl := &threadLowerer{l: l, th: th, path: entryGuard, live: true}
	tl.cur = tl.newBlock(entryGuard)
	th.Entry = tl.cur
	return tl
}

func (tl *threadLowerer) newBlock(g *guard.Formula) *Block {
	tl.l.blockN++
	b := &Block{ID: tl.l.blockN, Thread: tl.th.ID, Guard: g}
	tl.th.Blocks = append(tl.th.Blocks, b)
	return b
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// emit appends an instruction to the current block, assigning its label.
func (tl *threadLowerer) emit(i *Inst) *Inst {
	i.Label = Label(len(tl.l.p.insts))
	i.Thread = tl.th.ID
	i.Block = tl.cur
	if i.Guard == nil {
		i.Guard = tl.path
	}
	tl.l.p.insts = append(tl.l.p.insts, i)
	tl.cur.Insts = append(tl.cur.Insts, i)
	return i
}

// lowerCond maps an AST condition to a guard formula; atoms are keyed on
// canonical condition text, so the same syntactic condition anywhere in the
// program shares an atom (Fig. 2's θ).
func (tl *threadLowerer) lowerCond(c lang.Cond) *guard.Formula {
	switch c := c.(type) {
	case *lang.CondTrue:
		return guard.True()
	case *lang.CondFalse:
		return guard.False()
	case *lang.CondAtom:
		return guard.Var(tl.l.p.Pool.Bool(c.Txt))
	case *lang.CondNot:
		return guard.Not(tl.lowerCond(c.C))
	case *lang.CondAnd:
		return guard.And(tl.lowerCond(c.L), tl.lowerCond(c.R))
	case *lang.CondOr:
		return guard.Or(tl.lowerCond(c.L), tl.lowerCond(c.R))
	}
	panic("ir: unknown condition node")
}

// lookup resolves a variable read. Unbound names become havoc definitions
// (explicitly undefined inputs); function names become address-of-function
// values.
func (tl *threadLowerer) lookup(e *env, ctx *callCtx, name string, pos lang.Pos) VarID {
	if v, ok := e.vars[name]; ok {
		return v
	}
	if tl.l.src.Func(name) != nil {
		v := tl.l.freshVar(name, 0)
		in := tl.emit(&Inst{Op: OpAddr, Def: v, Obj: tl.l.funcObject(name), Pos: pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	}
	v := tl.l.freshVar(name, 0)
	in := tl.emit(&Inst{Op: OpHavoc, Def: v, Pos: pos, Fn: ctx.fn})
	tl.l.p.Var(v).Def = in.Label
	e.vars[name] = v
	return v
}

// lowerBlock lowers stmts into the CFG; it returns normally even when the
// path died (live=false) so callers can merge environments.
func (tl *threadLowerer) lowerBlock(b *lang.Block, e *env, ctx *callCtx) {
	for _, st := range b.Stmts {
		if !tl.live {
			return
		}
		tl.lowerStmt(st, e, ctx)
	}
}

func (tl *threadLowerer) lowerStmt(st lang.Stmt, e *env, ctx *callCtx) {
	switch st := st.(type) {
	case *lang.AssignStmt:
		v := tl.lowerExpr(st.LHS, st.RHS, e, ctx)
		if v != 0 {
			e.vars[st.LHS] = v
		}
	case *lang.StoreStmt:
		ptr := tl.lookup(e, ctx, st.Ptr, st.Pos)
		val := tl.lookup(e, ctx, st.Val, st.Pos)
		tl.emit(&Inst{Op: OpStore, Ptr: ptr, Val: val, Field: st.Field, Pos: st.Pos, Fn: ctx.fn})
	case *lang.FreeStmt:
		val := tl.lookup(e, ctx, st.Var, st.Pos)
		tl.emit(&Inst{Op: OpFree, Val: val, Pos: st.Pos, Fn: ctx.fn})
	case *lang.PrintStmt:
		val := tl.lookup(e, ctx, st.Var, st.Pos)
		tl.emit(&Inst{Op: OpDeref, Val: val, Pos: st.Pos, Fn: ctx.fn})
	case *lang.SinkStmt:
		val := tl.lookup(e, ctx, st.Var, st.Pos)
		tl.emit(&Inst{Op: OpLeak, Val: val, Pos: st.Pos, Fn: ctx.fn})
	case *lang.IfStmt:
		tl.lowerIf(st, e, ctx)
	case *lang.WhileStmt:
		tl.lowerWhile(st, e, ctx, tl.l.opt.UnrollDepth)
	case *lang.ForkStmt:
		tl.lowerFork(st, e, ctx)
	case *lang.JoinStmt:
		for _, tid := range e.threads[st.Thread] {
			in := tl.emit(&Inst{Op: OpJoin, ForkThread: tid, Pos: st.Pos, Fn: ctx.fn})
			child := tl.l.p.Threads[tid]
			if child.JoinSite == NoLabel {
				child.JoinSite = in.Label
			}
		}
	case *lang.LockStmt:
		tl.emit(&Inst{Op: OpLock, Mutex: st.Mutex, Pos: st.Pos, Fn: ctx.fn})
	case *lang.UnlockStmt:
		tl.emit(&Inst{Op: OpUnlock, Mutex: st.Mutex, Pos: st.Pos, Fn: ctx.fn})
	case *lang.WaitStmt:
		tl.emit(&Inst{Op: OpWait, CondVar: st.Cond, Pos: st.Pos, Fn: ctx.fn})
	case *lang.NotifyStmt:
		tl.emit(&Inst{Op: OpNotify, CondVar: st.Cond, Pos: st.Pos, Fn: ctx.fn})
	case *lang.ReturnStmt:
		if ctx.returns != nil {
			rv := retVal{guard: tl.path}
			if st.HasVal {
				rv.val = tl.lookup(e, ctx, st.Value, st.Pos)
			}
			*ctx.returns = append(*ctx.returns, rv)
		}
		tl.live = false
	case *lang.CallStmt:
		tl.lowerCall(st.Callee, st.Args, "", e, ctx, st.Pos)
	default:
		panic(fmt.Sprintf("ir: unknown statement %T", st))
	}
}

// lowerExpr lowers "lhs = rhs" and returns the SSA variable holding the
// result (0 when the call had no usable result).
func (tl *threadLowerer) lowerExpr(lhs string, rhs lang.Expr, e *env, ctx *callCtx) VarID {
	switch rhs := rhs.(type) {
	case *lang.VarExpr:
		// Straight copy keeps SSA sharing; a fresh version with an explicit
		// copy instruction gives the VFG a def site per source assignment.
		src := tl.lookup(e, ctx, rhs.Name, rhs.Pos)
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpCopy, Def: v, Val: src, Pos: rhs.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.NumExpr:
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpConst, Def: v, Pos: rhs.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.LoadExpr:
		ptr := tl.lookup(e, ctx, rhs.Ptr, rhs.Pos)
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpLoad, Def: v, Ptr: ptr, Field: rhs.Field, Pos: rhs.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.AddrExpr:
		obj, ok := tl.l.globals[rhs.Name]
		if !ok {
			// Taking the address of an unknown name: model as a fresh
			// global-like object so the analysis stays permissive.
			obj = tl.l.p.newObject(ObjGlobal, "g:"+rhs.Name, NoLabel, "")
			tl.l.globals[rhs.Name] = obj
		}
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpAddr, Def: v, Obj: obj, Pos: rhs.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.MallocExpr:
		tl.l.heapN++
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpAlloc, Def: v, Pos: rhs.Pos, Fn: ctx.fn})
		obj := tl.l.p.newObject(ObjHeap, fmt.Sprintf("o%d", tl.l.heapN), in.Label, ctx.fn)
		in.Obj = obj
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.NullExpr:
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpNull, Def: v, Pos: rhs.Pos, Fn: ctx.fn})
		obj := tl.l.p.newObject(ObjNull, fmt.Sprintf("null@ℓ%d", in.Label), in.Label, ctx.fn)
		in.Obj = obj
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.TaintExpr:
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpTaint, Def: v, Pos: rhs.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.BinExpr:
		lv := tl.lowerOperand(rhs.L, e, ctx)
		rv := tl.lowerOperand(rhs.R, e, ctx)
		v := tl.l.freshVar(lhs, 0)
		in := tl.emit(&Inst{Op: OpBin, Def: v, Ops: []VarID{lv, rv}, BinOp: rhs.Op, Pos: rhs.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	case *lang.CallExpr:
		return tl.lowerCall(rhs.Callee, rhs.Args, lhs, e, ctx, rhs.Pos)
	}
	panic(fmt.Sprintf("ir: unknown expression %T", rhs))
}

func (tl *threadLowerer) lowerOperand(ex lang.Expr, e *env, ctx *callCtx) VarID {
	switch ex := ex.(type) {
	case *lang.VarExpr:
		return tl.lookup(e, ctx, ex.Name, ex.Pos)
	case *lang.NumExpr:
		v := tl.l.freshVar("lit", 0)
		in := tl.emit(&Inst{Op: OpConst, Def: v, Pos: ex.Pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	}
	panic(fmt.Sprintf("ir: bad binop operand %T", ex))
}

func (tl *threadLowerer) lowerIf(st *lang.IfStmt, e *env, ctx *callCtx) {
	cond := tl.lowerCond(st.Cond)
	basePath := tl.path
	pre := tl.cur

	// Then branch.
	thenEnv := e.clone()
	thenBlk := tl.newBlock(guard.And(basePath, cond))
	link(pre, thenBlk)
	tl.cur, tl.path, tl.live = thenBlk, guard.And(basePath, cond), true
	tl.lowerBlock(st.Then, thenEnv, ctx)
	thenEnd, thenLive := tl.cur, tl.live

	// Else branch.
	elseEnv := e.clone()
	var elseEnd *Block
	elseLive := true
	negPath := guard.And(basePath, guard.Not(cond))
	if st.Else != nil {
		elseBlk := tl.newBlock(negPath)
		link(pre, elseBlk)
		tl.cur, tl.path, tl.live = elseBlk, negPath, true
		tl.lowerBlock(st.Else, elseEnv, ctx)
		elseEnd, elseLive = tl.cur, tl.live
	}

	// Join.
	join := tl.newBlock(basePath)
	if thenLive {
		link(thenEnd, join)
	}
	if st.Else == nil {
		link(pre, join) // fall-through edge when the condition is false
	} else if elseLive {
		link(elseEnd, join)
	}
	tl.cur, tl.path = join, basePath
	tl.live = thenLive || elseLive || st.Else == nil

	if !tl.live {
		return
	}
	// φ insertion: merge the environments that can reach the join.
	switch {
	case thenLive && (st.Else == nil || elseLive):
		other := elseEnv
		otherGuard := guard.Not(cond)
		if st.Else == nil {
			other = e
		}
		tl.mergeEnvs(e, thenEnv, other, cond, otherGuard, ctx)
	case thenLive:
		replaceEnv(e, thenEnv)
	case elseLive:
		replaceEnv(e, elseEnv)
	}
	// Thread handles flow out of both branches.
	mergeThreads(e, thenEnv)
	mergeThreads(e, elseEnv)
}

func replaceEnv(dst, src *env) {
	for k, v := range src.vars {
		dst.vars[k] = v
	}
}

func mergeThreads(dst, src *env) {
	for h, ids := range src.threads {
		have := make(map[int]bool, len(dst.threads[h]))
		for _, id := range dst.threads[h] {
			have[id] = true
		}
		for _, id := range ids {
			if !have[id] {
				dst.threads[h] = append(dst.threads[h], id)
			}
		}
	}
}

// mergeEnvs writes φ definitions into the current (join) block for every
// variable whose version differs between branches.
func (tl *threadLowerer) mergeEnvs(dst, a, b *env, ga, gb *guard.Formula, ctx *callCtx) {
	names := make(map[string]bool, len(a.vars)+len(b.vars))
	for k := range a.vars {
		names[k] = true
	}
	for k := range b.vars {
		names[k] = true
	}
	for name := range names {
		va, okA := a.vars[name]
		vb, okB := b.vars[name]
		switch {
		case okA && okB && va != vb:
			v := tl.l.freshVar(name, 0)
			in := tl.emit(&Inst{
				Op: OpPhi, Def: v,
				Ops:       []VarID{va, vb},
				PhiGuards: []*guard.Formula{ga, gb},
				Fn:        ctx.fn,
			})
			tl.l.p.Var(v).Def = in.Label
			dst.vars[name] = v
		case okA && okB:
			dst.vars[name] = va
		case okA:
			dst.vars[name] = va
		case okB:
			dst.vars[name] = vb
		}
	}
}

// lowerWhile unrolls "while (c) B" n times as nested ifs (§3.1/§6: loops
// are bounded by unrolling; condition atoms are shared across iterations
// because conditions are opaque symbols).
func (tl *threadLowerer) lowerWhile(st *lang.WhileStmt, e *env, ctx *callCtx, n int) {
	if n == 0 {
		return
	}
	// Lower as if (c) { B; <unrolled rest> }.
	cond := tl.lowerCond(st.Cond)
	basePath := tl.path
	pre := tl.cur
	bodyEnv := e.clone()
	bodyBlk := tl.newBlock(guard.And(basePath, cond))
	link(pre, bodyBlk)
	tl.cur, tl.path, tl.live = bodyBlk, guard.And(basePath, cond), true
	tl.lowerBlock(st.Body, bodyEnv, ctx)
	if tl.live {
		tl.lowerWhile(st, bodyEnv, ctx, n-1)
	}
	bodyEnd, bodyLive := tl.cur, tl.live

	join := tl.newBlock(basePath)
	link(pre, join)
	if bodyLive {
		link(bodyEnd, join)
	}
	tl.cur, tl.path, tl.live = join, basePath, true
	if bodyLive {
		tl.mergeEnvs(e, bodyEnv, e, cond, guard.Not(cond), ctx)
	}
	mergeThreads(e, bodyEnv)
}

// lowerFork creates one child thread per possible fork target (targets of a
// function-pointer fork come from Steensgaard's analysis).
func (tl *threadLowerer) lowerFork(st *lang.ForkStmt, e *env, ctx *callCtx) {
	targets := tl.forkTargets(st.Callee, e, ctx)
	if len(targets) == 0 {
		return
	}
	// Evaluate arguments once, in the parent.
	argVars := make([]VarID, len(st.Args))
	for i, a := range st.Args {
		argVars[i] = tl.lookup(e, ctx, a, st.Pos)
	}
	for _, tgt := range targets {
		decl := tl.l.src.Func(tgt)
		if decl == nil {
			continue
		}
		childID := len(tl.l.p.Threads)
		forkInst := tl.emit(&Inst{Op: OpFork, ForkThread: childID, Pos: st.Pos, Fn: ctx.fn})
		child := &Thread{
			ID:       childID,
			Name:     fmt.Sprintf("t%d:%s@ℓ%d", childID, tgt, forkInst.Label),
			Parent:   tl.th.ID,
			ForkSite: forkInst.Label,
			JoinSite: NoLabel,
		}
		tl.l.p.Threads = append(tl.l.p.Threads, child)
		e.threads[st.Thread] = append(e.threads[st.Thread], childID)

		// Lower the child body in its own thread CFG. The child executes
		// only if the fork did: its entry guard is the fork's path
		// condition.
		ctl := tl.l.newThreadLowerer(child, tl.path)
		cenv := newEnv()
		cctx := &callCtx{fn: tgt, depth: ctx.depth, stack: map[string]bool{tgt: true}}
		for i, param := range decl.Params {
			if i >= len(argVars) {
				break
			}
			pv := tl.l.freshVar(param, 0)
			in := ctl.emit(&Inst{Op: OpCopy, Def: pv, Val: argVars[i], Pos: decl.Pos, Fn: tgt})
			tl.l.p.Var(pv).Def = in.Label
			cenv.vars[param] = pv
		}
		ctl.lowerBlock(decl.Body, cenv, cctx)
	}
}

func (tl *threadLowerer) forkTargets(callee string, e *env, ctx *callCtx) []string {
	if tl.l.src.Func(callee) != nil {
		return []string{callee}
	}
	// Function pointer: consult Steensgaard over the *source* function name
	// of the current clone (clones share the source-level unification).
	return tl.l.steens.Targets(srcFuncName(ctx.fn), callee)
}

// srcFuncName strips the clone decoration "name<ctx>" back to "name".
func srcFuncName(clone string) string {
	for i := 0; i < len(clone); i++ {
		if clone[i] == '<' {
			return clone[:i]
		}
	}
	return clone
}

// lowerCall inlines a (possibly indirect) call. resultName is "" in
// statement position. Returns the SSA variable of the result (0 if none).
func (tl *threadLowerer) lowerCall(callee string, args []string, resultName string, e *env, ctx *callCtx, pos lang.Pos) VarID {
	targets := tl.forkTargets(callee, e, ctx)
	if len(targets) == 0 {
		// Unknown callee: havoc the result.
		return tl.havocResult(resultName, ctx, pos)
	}
	argVars := make([]VarID, len(args))
	for i, a := range args {
		argVars[i] = tl.lookup(e, ctx, a, pos)
	}
	var results []retVal
	for _, tgt := range targets {
		decl := tl.l.src.Func(tgt)
		if decl == nil {
			continue
		}
		if ctx.depth >= tl.l.opt.InlineDepth || ctx.stack[tgt] {
			// Beyond the context bound or recursive: apply the procedural
			// transfer function Trans(F) (Alg. 1 lines 21–22) to the
			// result instead of inlining the body.
			if resultName != "" {
				if v := tl.applySummary(tgt, argVars, resultName, ctx, pos); v != 0 {
					results = append(results, retVal{val: v, guard: tl.path})
				}
			}
			continue
		}
		cloneName := fmt.Sprintf("%s<%s:%d>", tgt, srcFuncName(ctx.fn), pos.Line)
		cenv := newEnv()
		nstack := make(map[string]bool, len(ctx.stack)+1)
		for k := range ctx.stack {
			nstack[k] = true
		}
		nstack[tgt] = true
		var rets []retVal
		cctx := &callCtx{fn: cloneName, depth: ctx.depth + 1, stack: nstack, returns: &rets}
		for i, param := range decl.Params {
			if i >= len(argVars) {
				break
			}
			pv := tl.l.freshVar(param, 0)
			in := tl.emit(&Inst{Op: OpCopy, Def: pv, Val: argVars[i], Pos: pos, Fn: cloneName})
			tl.l.p.Var(pv).Def = in.Label
			cenv.vars[param] = pv
		}
		savedLive := tl.live
		tl.lowerBlock(decl.Body, cenv, cctx)
		// The call returns: execution continues regardless of which return
		// fired inside the callee.
		tl.live = savedLive
		// Thread handles created in the callee stay joinable only inside
		// it; expose them under a qualified name so later joins in the
		// caller do not silently bind.
		for h, ids := range cenv.threads {
			e.threads[cloneName+"."+h] = ids
			// Unjoined child threads remain running — nothing to do.
		}
		results = append(results, rets...)
	}
	if resultName == "" {
		return 0
	}
	// Merge return values into one SSA variable.
	var vals []VarID
	var gs []*guard.Formula
	for _, r := range results {
		if r.val != 0 {
			vals = append(vals, r.val)
			gs = append(gs, r.guard)
		}
	}
	switch len(vals) {
	case 0:
		return tl.havocResult(resultName, ctx, pos)
	case 1:
		v := tl.l.freshVar(resultName, 0)
		in := tl.emit(&Inst{Op: OpCopy, Def: v, Val: vals[0], Pos: pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	}
	v := tl.l.freshVar(resultName, 0)
	in := tl.emit(&Inst{Op: OpPhi, Def: v, Ops: vals, PhiGuards: gs, Pos: pos, Fn: ctx.fn})
	tl.l.p.Var(v).Def = in.Label
	return v
}

func (tl *threadLowerer) havocResult(resultName string, ctx *callCtx, pos lang.Pos) VarID {
	if resultName == "" {
		return 0
	}
	v := tl.l.freshVar(resultName, 0)
	in := tl.emit(&Inst{Op: OpHavoc, Def: v, Pos: pos, Fn: ctx.fn})
	tl.l.p.Var(v).Def = in.Label
	return v
}

// applySummary materializes Trans(tgt) at a non-inlined call site: the
// result is the merge of the argument values that may flow to the return
// plus (when the callee may return a fresh allocation or taint) a
// per-call-site summary object or taint source. Returns 0 when the summary
// is empty, in which case the caller falls back to havoc.
func (tl *threadLowerer) applySummary(tgt string, argVars []VarID, resultName string, ctx *callCtx, pos lang.Pos) VarID {
	sum := tl.l.summaries[tgt]
	if sum == nil {
		return tl.havocResult(resultName, ctx, pos)
	}
	var parts []VarID
	for _, pi := range sum.RetParams {
		if pi < len(argVars) {
			parts = append(parts, argVars[pi])
		}
	}
	if sum.RetAlloc {
		v := tl.l.freshVar(resultName+".sum", 0)
		tl.l.heapN++
		in := tl.emit(&Inst{Op: OpAlloc, Def: v, Pos: pos, Fn: ctx.fn})
		in.Obj = tl.l.p.newObject(ObjHeap, fmt.Sprintf("o%d:sum(%s)", tl.l.heapN, tgt), in.Label, ctx.fn)
		tl.l.p.Var(v).Def = in.Label
		parts = append(parts, v)
	}
	if sum.RetTaint {
		v := tl.l.freshVar(resultName+".sum", 0)
		in := tl.emit(&Inst{Op: OpTaint, Def: v, Pos: pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		parts = append(parts, v)
	}
	switch len(parts) {
	case 0:
		return tl.havocResult(resultName, ctx, pos)
	case 1:
		v := tl.l.freshVar(resultName, 0)
		in := tl.emit(&Inst{Op: OpCopy, Def: v, Val: parts[0], Pos: pos, Fn: ctx.fn})
		tl.l.p.Var(v).Def = in.Label
		return v
	}
	v := tl.l.freshVar(resultName, 0)
	gs := make([]*guard.Formula, len(parts))
	for i := range gs {
		gs[i] = guard.True()
	}
	in := tl.emit(&Inst{Op: OpPhi, Def: v, Ops: parts, PhiGuards: gs, Pos: pos, Fn: ctx.fn})
	tl.l.p.Var(v).Def = in.Label
	return v
}
