package ir

import (
	"strings"
	"testing"

	"canary/internal/guard"
	"canary/internal/lang"
)

const fig2Source = `
func main(a) {
  x = malloc();        // o1
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}

func thread1(y) {
  b = malloc();        // o2
  if (!theta1) {
    *y = b;
    free(b);
  }
}
`

func mustLower(t *testing.T, src string, opt Options) *Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Lower(ast, opt)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func countOps(p *Program, op Op) int {
	n := 0
	for _, i := range p.Insts() {
		if i.Op == op {
			n++
		}
	}
	return n
}

func TestLowerFig2Structure(t *testing.T) {
	p := mustLower(t, fig2Source, DefaultOptions())
	if len(p.Threads) != 2 {
		t.Fatalf("want 2 threads, got %d", len(p.Threads))
	}
	main, child := p.Threads[0], p.Threads[1]
	if main.Parent != -1 || main.ForkSite != NoLabel {
		t.Errorf("main thread malformed: %+v", main)
	}
	if child.Parent != 0 || child.ForkSite == NoLabel {
		t.Errorf("child thread malformed: %+v", child)
	}
	if fs := p.Inst(child.ForkSite); fs.Op != OpFork || fs.Thread != 0 {
		t.Errorf("fork site wrong: %v", p.String(fs))
	}
	// Two mallocs → two heap objects; no join → JoinSite unset.
	heaps := 0
	for _, o := range p.Objects {
		if o.Kind == ObjHeap {
			heaps++
		}
	}
	if heaps != 2 {
		t.Errorf("want 2 heap objects, got %d", heaps)
	}
	if child.JoinSite != NoLabel {
		t.Errorf("unjoined thread must have no join site")
	}
	if countOps(p, OpFree) != 1 || countOps(p, OpDeref) != 1 {
		t.Errorf("free/deref counts wrong: %d/%d", countOps(p, OpFree), countOps(p, OpDeref))
	}
}

func TestLowerFig2Guards(t *testing.T) {
	p := mustLower(t, fig2Source, DefaultOptions())
	theta := p.Pool.Bool("theta1")
	// The load c = *x must be guarded by θ1; the store *y = b by ¬θ1.
	var loadGuard, storeInChild *guard.Formula
	for _, i := range p.Insts() {
		if i.Op == OpLoad && i.Thread == 0 {
			loadGuard = i.Guard
		}
		if i.Op == OpStore && i.Thread == 1 {
			storeInChild = i.Guard
		}
	}
	if loadGuard == nil || storeInChild == nil {
		t.Fatal("missing load or store")
	}
	asnTrue := map[guard.Atom]bool{theta: true}
	asnFalse := map[guard.Atom]bool{theta: false}
	if !loadGuard.Eval(asnTrue) || loadGuard.Eval(asnFalse) {
		t.Errorf("load guard should be θ1: %s", p.Pool.String(loadGuard))
	}
	if storeInChild.Eval(asnTrue) || !storeInChild.Eval(asnFalse) {
		t.Errorf("store guard should be ¬θ1: %s", p.Pool.String(storeInChild))
	}
	// The conjunction of the two is unsatisfiable — the heart of Fig. 2.
	if guard.And(loadGuard, storeInChild) != guard.False() {
		t.Errorf("θ1 ∧ ¬θ1 should fold to false")
	}
}

func TestForkParamBinding(t *testing.T) {
	p := mustLower(t, fig2Source, DefaultOptions())
	// The child thread's first instruction must copy the fork argument
	// (x) into the parameter (y).
	child := p.Threads[1]
	first := child.Entry.Insts[0]
	if first.Op != OpCopy {
		t.Fatalf("child entry should bind the parameter, got %v", p.String(first))
	}
	if !strings.HasPrefix(p.VarName(first.Def), "y.") {
		t.Errorf("bound param should be named y.*, got %s", p.VarName(first.Def))
	}
	src := p.Var(first.Val)
	if !strings.HasPrefix(src.Name, "x.") {
		t.Errorf("bound value should be x.*, got %s", src.Name)
	}
}

func TestPhiInsertion(t *testing.T) {
	src := `
func main() {
  x = malloc();
  if (c1) {
    x = malloc();
  }
  print(*x);
}
`
	p := mustLower(t, src, DefaultOptions())
	if n := countOps(p, OpPhi); n != 1 {
		t.Fatalf("want exactly 1 φ, got %d", n)
	}
	for _, i := range p.Insts() {
		if i.Op == OpPhi {
			if len(i.Ops) != 2 || len(i.PhiGuards) != 2 {
				t.Fatalf("φ should have 2 guarded operands")
			}
			c1 := p.Pool.Bool("c1")
			g0 := i.PhiGuards[0].Eval(map[guard.Atom]bool{c1: true})
			g1 := i.PhiGuards[1].Eval(map[guard.Atom]bool{c1: true})
			if g0 == g1 {
				t.Errorf("φ guards must be complementary on c1")
			}
		}
	}
}

func TestIfElseBothBranches(t *testing.T) {
	src := `
func main() {
  if (c) { x = malloc(); } else { x = null; }
  print(*x);
}
`
	p := mustLower(t, src, DefaultOptions())
	if countOps(p, OpPhi) != 1 {
		t.Fatalf("if/else over x should make one φ")
	}
	if countOps(p, OpNull) != 1 || countOps(p, OpAlloc) != 1 {
		t.Fatal("both branches should be lowered")
	}
}

func TestWhileUnrolling(t *testing.T) {
	src := `
func main() {
  while (c) {
    x = malloc();
  }
}
`
	p2 := mustLower(t, src, Options{UnrollDepth: 2})
	if n := countOps(p2, OpAlloc); n != 2 {
		t.Errorf("unroll 2: want 2 allocs, got %d", n)
	}
	p3 := mustLower(t, src, Options{UnrollDepth: 3})
	if n := countOps(p3, OpAlloc); n != 3 {
		t.Errorf("unroll 3: want 3 allocs, got %d", n)
	}
}

func TestInliningDepthBound(t *testing.T) {
	src := `
func f3() { x = malloc(); print(*x); }
func f2() { f3(); }
func f1() { f2(); }
func main() { f1(); }
`
	deep := mustLower(t, src, Options{InlineDepth: 6})
	if n := countOps(deep, OpAlloc); n != 1 {
		t.Errorf("deep inline: want 1 alloc, got %d", n)
	}
	shallow := mustLower(t, src, Options{InlineDepth: 2})
	// f3 is beyond depth 2: its body is not inlined, so no alloc appears.
	if n := countOps(shallow, OpAlloc); n != 0 {
		t.Errorf("shallow inline: want 0 allocs, got %d", n)
	}
}

func TestSummaryAppliedBeyondDepth(t *testing.T) {
	// With InlineDepth 1, the chain main→get→mk cuts at mk, but the
	// Trans(mk) summary still materializes the returned allocation, so the
	// pointer value survives (previously it would havoc).
	src := `
func mk() { p = malloc(); return p; }
func get() { q = mk(); return q; }
func main() {
  v = get();
  free(v);
  print(*v);
}
`
	p := mustLower(t, src, Options{InlineDepth: 1})
	if n := countOps(p, OpAlloc); n != 1 {
		t.Fatalf("summary should materialize the returned allocation, got %d allocs", n)
	}
	// The free's operand must be transitively connected to the summary
	// allocation through copies.
	var freeVal VarID
	for _, i := range p.Insts() {
		if i.Op == OpFree {
			freeVal = i.Val
		}
	}
	if freeVal == 0 {
		t.Fatal("free missing")
	}
}

func TestSummaryIdentityBeyondDepth(t *testing.T) {
	// Trans(id) forwards the argument: the copy chain survives the cut.
	src := `
func id(x) { return x; }
func main() {
  a = malloc();
  b = id(a);
  free(b);
}
`
	p := mustLower(t, src, Options{InlineDepth: 0})
	_ = p
	// InlineDepth is clamped to ≥1 by withDefaults; use a deep chain
	// instead to force the cut.
	src2 := `
func id(x) { return x; }
func wrap1(x) { r = id(x); return r; }
func main() {
  a = malloc();
  b = wrap1(a);
  free(b);
}
`
	p2 := mustLower(t, src2, Options{InlineDepth: 1})
	// The free's operand should trace back to a (no havoc in between).
	havocs := countOps(p2, OpHavoc)
	if havocs != 0 {
		t.Fatalf("identity summary should avoid havoc, got %d", havocs)
	}
}

func TestRecursionCut(t *testing.T) {
	src := `
func rec(n) { m = rec(n); x = malloc(); }
func main() { rec(a); }
`
	p := mustLower(t, src, DefaultOptions())
	// rec inlined once; the recursive call inside becomes a havoc.
	if n := countOps(p, OpAlloc); n != 1 {
		t.Errorf("want 1 alloc from single inline, got %d", n)
	}
	if n := countOps(p, OpHavoc); n == 0 {
		t.Error("recursive call should havoc its result")
	}
}

func TestReturnValueFlow(t *testing.T) {
	src := `
func mk() { p = malloc(); return p; }
func main() { v = mk(); print(*v); }
`
	p := mustLower(t, src, DefaultOptions())
	if countOps(p, OpAlloc) != 1 {
		t.Fatal("callee body should be inlined")
	}
	// v receives the returned pointer through a copy.
	var derefVal VarID
	for _, i := range p.Insts() {
		if i.Op == OpDeref {
			derefVal = i.Val
		}
	}
	if derefVal == 0 {
		t.Fatal("deref missing")
	}
	if !strings.HasPrefix(p.Var(derefVal).Name, "v.") {
		t.Errorf("deref should use v.*, got %s", p.Var(derefVal).Name)
	}
}

func TestMultipleReturnsPhi(t *testing.T) {
	src := `
func pick() {
  if (c) { a = malloc(); return a; }
  b = null;
  return b;
}
func main() { v = pick(); print(*v); }
`
	p := mustLower(t, src, DefaultOptions())
	if countOps(p, OpPhi) != 1 {
		t.Errorf("two returns should merge via φ, got %d φs", countOps(p, OpPhi))
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	src := `
func f() { return; x = malloc(); }
func main() { f(); }
`
	p := mustLower(t, src, DefaultOptions())
	if countOps(p, OpAlloc) != 0 {
		t.Error("code after return must not be lowered")
	}
}

func TestIndirectForkViaFunctionPointer(t *testing.T) {
	src := `
func worker(z) { print(*z); }
func main() {
  fp = worker;
  x = malloc();
  fork(t, fp, x);
}
`
	p := mustLower(t, src, DefaultOptions())
	if len(p.Threads) != 2 {
		t.Fatalf("function-pointer fork should create a thread, got %d", len(p.Threads))
	}
	if !strings.Contains(p.Threads[1].Name, "worker") {
		t.Errorf("thread should run worker: %s", p.Threads[1].Name)
	}
}

func TestJoinSiteRecorded(t *testing.T) {
	src := `
func w() { x = malloc(); }
func main() {
  fork(t, w);
  join(t);
  y = malloc();
}
`
	p := mustLower(t, src, DefaultOptions())
	child := p.Threads[1]
	if child.JoinSite == NoLabel {
		t.Fatal("join site not recorded")
	}
	if p.Inst(child.JoinSite).Op != OpJoin {
		t.Fatal("join site is not a join instruction")
	}
}

func TestReachability(t *testing.T) {
	src := `
func main() {
  a = malloc();
  if (c) {
    b = malloc();
  } else {
    d = malloc();
  }
  e = malloc();
}
`
	p := mustLower(t, src, DefaultOptions())
	var la, lb, ld, le Label
	n := 0
	for _, i := range p.Insts() {
		if i.Op == OpAlloc {
			switch n {
			case 0:
				la = i.Label
			case 1:
				lb = i.Label
			case 2:
				ld = i.Label
			case 3:
				le = i.Label
			}
			n++
		}
	}
	if !p.Reaches(la, lb) || !p.Reaches(la, ld) || !p.Reaches(la, le) {
		t.Error("entry alloc should reach all")
	}
	if p.Reaches(lb, ld) || p.Reaches(ld, lb) {
		t.Error("exclusive branches must not reach each other")
	}
	if !p.Reaches(lb, le) || !p.Reaches(ld, le) {
		t.Error("branches should reach the join")
	}
	if p.Reaches(le, la) {
		t.Error("no backward reachability")
	}
}

func TestLockSets(t *testing.T) {
	src := `
global mu;
func main() {
  a = malloc();
  lock(mu);
  b = malloc();
  unlock(mu);
  c = malloc();
}
`
	p := mustLower(t, src, DefaultOptions())
	var allocs []*Inst
	for _, i := range p.Insts() {
		if i.Op == OpAlloc {
			allocs = append(allocs, i)
		}
	}
	if len(allocs) != 3 {
		t.Fatal("want 3 allocs")
	}
	if allocs[0].HoldsLock("mu") {
		t.Error("first alloc must not hold mu")
	}
	if !allocs[1].HoldsLock("mu") {
		t.Error("second alloc must hold mu")
	}
	if allocs[2].HoldsLock("mu") {
		t.Error("third alloc must not hold mu")
	}
}

func TestLockSetsMustMeet(t *testing.T) {
	// A lock taken on only one branch must not be "held" after the join.
	src := `
global mu;
func main() {
  if (c) { lock(mu); }
  x = malloc();
}
`
	p := mustLower(t, src, DefaultOptions())
	for _, i := range p.Insts() {
		if i.Op == OpAlloc && i.HoldsLock("mu") {
			t.Error("must-analysis violated at join")
		}
	}
}

func TestGlobalsShared(t *testing.T) {
	src := `
global g;
func main() {
  p = &g;
  *p = p;
}
`
	p := mustLower(t, src, DefaultOptions())
	found := false
	for _, o := range p.Objects {
		if o.Kind == ObjGlobal && o.Name == "g:g" {
			found = true
		}
	}
	if !found {
		t.Error("global object missing")
	}
}

func TestMissingEntry(t *testing.T) {
	ast, err := lang.Parse("func notmain() { }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(ast, DefaultOptions()); err == nil {
		t.Fatal("missing main should error")
	}
}

func TestNestedFork(t *testing.T) {
	src := `
func leaf() { x = malloc(); }
func mid() { fork(t2, leaf); }
func main() { fork(t1, mid); }
`
	p := mustLower(t, src, DefaultOptions())
	if len(p.Threads) != 3 {
		t.Fatalf("want 3 threads, got %d", len(p.Threads))
	}
	if p.Threads[2].Parent != 1 {
		t.Errorf("leaf thread's parent should be mid's thread")
	}
	anc := p.Ancestors(2)
	if len(anc) != 3 || anc[0] != 2 || anc[2] != 0 {
		t.Errorf("ancestors of leaf: %v", anc)
	}
}

func TestInstStringCoverage(t *testing.T) {
	src := `
global mu;
func w(q) { sink(q); }
func main() {
  a = malloc();
  b = a;
  n = null;
  s = taint();
  k = 1;
  m = a + b;
  c = *a;
  *a = b;
  free(b);
  print(*c);
  lock(mu);
  unlock(mu);
  fork(t, w, s);
  join(t);
}
`
	p := mustLower(t, src, DefaultOptions())
	for _, i := range p.Insts() {
		if s := p.String(i); s == "" || strings.Contains(s, "?") {
			t.Errorf("bad rendering for %v: %q", i.Op, s)
		}
	}
}
