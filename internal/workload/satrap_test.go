package workload

import (
	"context"
	"testing"

	"canary/internal/baseline"
	"canary/internal/core"
	"canary/internal/ir"
	"canary/internal/lang"
)

// TestSaberTrapSeparatesTools verifies the sa_ pattern's tool profile:
// reported by the flow-insensitive baseline, pruned by the flow-sensitive
// ones.
func TestSaberTrapSeparatesTools(t *testing.T) {
	spec := Spec{Name: "satrap", Lines: 0, Seed: 5, SaberTraps: 2, Fan: 2}
	src := Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sres, err := baseline.Saber{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(baseline.CheckReachability(sres.G, "use-after-free")); n == 0 {
		t.Error("Saber should report the flow-order trap")
	}
	fres, err := baseline.Fsam{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(baseline.CheckReachability(fres.G, "use-after-free")); n != 0 {
		t.Errorf("flow-sensitive Fsam should prune the trap, got %d reports", n)
	}
	b := core.Build(prog, core.DefaultBuild())
	opt := core.DefaultCheck()
	opt.Checkers = []string{core.CheckUAF}
	opt.RequireInterThread = false // the trap is sequential
	rs, _ := b.Check(opt)
	if len(rs) != 0 {
		t.Errorf("Canary should prune the trap, got %v", rs)
	}
}
