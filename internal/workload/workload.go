// Package workload generates the synthetic evaluation subjects that stand
// in for the paper's twenty open-source C/C++ projects (§7, Table 1).
//
// Each subject is a deterministic (seeded) program in the lang language,
// assembled from independent modules. Modules mix plain compute/pointer
// filler with seeded bug patterns whose ground truth is encoded in function
// name prefixes, so the evaluation can compute true/false-positive rates
// without manual triage:
//
//	tp_   — a realizable inter-thread bug (true positive for every tool)
//	fpc_  — a semantically-infeasible bug that *no* static tool in this
//	        comparison can prune (uncorrelated branch atoms): a deliberate
//	        Canary false positive, modelling the paper's 26.67% FP rate
//	fig2_ — the Fig. 2 contradictory-guard trap (Canary prunes; the
//	        path-insensitive baselines report)
//	ord_  — an order-infeasible trap (use strictly before fork, or free
//	        strictly after join; Canary's MHP/Φ_po prunes)
//	lock_ — a mutual-exclusion trap (pruned only with the lock extension)
//
// A report whose source site is in a tp_ function is a true positive;
// everything else is a false positive.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Spec describes one synthetic subject.
type Spec struct {
	Name string
	// KLoC is the size of the real project the subject stands in for
	// (Table 1's Size column).
	KLoC float64
	// Lines is the approximate size of the generated program.
	Lines int
	Seed  int64

	// Seeded pattern counts.
	TruePositives int // tp_  (realizable inter-thread UAFs)
	CanaryFPs     int // fpc_ (unprunable infeasible bugs)
	Fig2Traps     int // fig2_
	OrderTraps    int // ord_
	LockTraps     int // lock_
	SaberTraps    int // sa_  (flow-order traps only flow-insensitive tools report)

	// Fan multiplies the dereference sites inside trap modules; the
	// path-insensitive baselines report once per (free, deref) pair, so
	// larger subjects inflate baseline report counts the way Table 1's do.
	Fan int
}

// TruePositive reports whether a source-site function name marks a seeded
// real bug.
func TruePositive(fn string) bool { return strings.HasPrefix(fn, "tp_") }

// Generate produces the subject's source text. The same spec always
// generates the same program.
func Generate(spec Spec) string {
	r := rand.New(rand.NewSource(spec.Seed))
	g := &gen{r: r, spec: spec}
	return g.program()
}

type gen struct {
	r    *rand.Rand
	spec Spec
	b    strings.Builder
	// lines approximates emitted line count.
	lines   int
	modN    int
	fillerN int
}

func (g *gen) pf(format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	g.b.WriteString(s)
	g.lines += strings.Count(s, "\n")
}

// program lays out: bug-pattern modules first (fixed), then filler modules
// until the line budget is reached, then main calling every module.
func (g *gen) program() string {
	var modules []string

	for i := 0; i < g.spec.TruePositives; i++ {
		modules = append(modules, g.tpModule(i))
	}
	for i := 0; i < g.spec.CanaryFPs; i++ {
		modules = append(modules, g.fpcModule(i))
	}
	for i := 0; i < g.spec.Fig2Traps; i++ {
		modules = append(modules, g.fig2Module(i))
	}
	for i := 0; i < g.spec.OrderTraps; i++ {
		modules = append(modules, g.ordModule(i))
	}
	for i := 0; i < g.spec.LockTraps; i++ {
		modules = append(modules, g.lockModule(i))
	}
	for i := 0; i < g.spec.SaberTraps; i++ {
		modules = append(modules, g.saberModule(i))
	}
	for g.lines < g.spec.Lines {
		modules = append(modules, g.fillerModule())
	}

	g.pf("func main() {\n")
	for _, m := range modules {
		g.pf("  %s();\n", m)
	}
	g.pf("}\n")
	return g.b.String()
}

// fresh returns a unique module id.
func (g *gen) fresh() int {
	g.modN++
	return g.modN
}

// tpModule seeds a realizable inter-thread use-after-free: the producer
// thread publishes a heap object into a shared cell and frees it while the
// consumer (here: the spawning context) may still load and dereference it.
func (g *gen) tpModule(i int) string {
	id := g.fresh()
	mod := fmt.Sprintf("tp_uaf_mod%d", id)
	w := fmt.Sprintf("tp_uaf_worker%d", id)
	g.pf(`
func %[2]s(cell) {
  payload = malloc();
  *cell = payload;
  free(payload);
}
func %[1]s() {
  cell%[3]d = malloc();
  seed%[3]d = malloc();
  *cell%[3]d = seed%[3]d;
  fork(t%[3]d, %[2]s, cell%[3]d);
  got = *cell%[3]d;
  print(*got);
}
`, mod, w, id)
	_ = i
	return mod
}

// fpcModule seeds a bug that is infeasible in the modelled program (the
// two modes are semantically exclusive) but whose branch conditions are
// distinct atoms, so no tool in the comparison can refute it: a Canary
// false positive by ground truth.
func (g *gen) fpcModule(i int) string {
	id := g.fresh()
	mod := fmt.Sprintf("fpc_uaf_mod%d", id)
	w := fmt.Sprintf("fpc_uaf_worker%d", id)
	g.pf(`
func %[2]s(cell) {
  payload = malloc();
  if (mode%[3]d_writer) {
    *cell = payload;
    free(payload);
  }
}
func %[1]s() {
  cell%[3]d = malloc();
  seed%[3]d = malloc();
  *cell%[3]d = seed%[3]d;
  fork(t%[3]d, %[2]s, cell%[3]d);
  if (mode%[3]d_reader) {
    got = *cell%[3]d;
    print(*got);
  }
}
`, mod, w, id)
	_ = i
	return mod
}

// fig2Module seeds the paper's motivating false-positive trap: the store
// and the load are guarded by complementary conditions on the same atom.
// Fan extra dereference sites multiply the baseline reports.
func (g *gen) fig2Module(i int) string {
	id := g.fresh()
	mod := fmt.Sprintf("fig2_uaf_mod%d", id)
	w := fmt.Sprintf("fig2_uaf_worker%d", id)
	g.pf(`
func %[2]s(cell) {
  payload = malloc();
  if (!theta%[3]d) {
    *cell = payload;
    free(payload);
  }
}
func %[1]s() {
  cell%[3]d = malloc();
  seed%[3]d = malloc();
  *cell%[3]d = seed%[3]d;
  fork(t%[3]d, %[2]s, cell%[3]d);
  if (theta%[3]d) {
`, mod, w, id)
	for f := 0; f < g.fan(); f++ {
		g.pf("    got%d = *cell%d;\n    print(*got%d);\n", f, id, f)
	}
	g.pf("  }\n}\n")
	_ = i
	return mod
}

// ordModule seeds an order-infeasible trap: the consumer is joined before
// the free, so every use strictly precedes the free on every execution.
func (g *gen) ordModule(i int) string {
	id := g.fresh()
	mod := fmt.Sprintf("ord_uaf_mod%d", id)
	w := fmt.Sprintf("ord_uaf_reader%d", id)
	g.pf("\nfunc %s(cell) {\n", w)
	for f := 0; f < g.fan(); f++ {
		g.pf("  got%d = *cell;\n  print(*got%d);\n", f, f)
	}
	g.pf("}\n")
	g.pf(`func %[1]s() {
  cell%[2]d = malloc();
  payload%[2]d = malloc();
  *cell%[2]d = payload%[2]d;
  fork(t%[2]d, %[3]s, cell%[2]d);
  join(t%[2]d);
  free(payload%[2]d);
}
`, mod, id, w)
	_ = i
	return mod
}

// saberModule seeds a purely sequential flow-order trap: the dereference
// happens strictly before the victim is ever stored into the cell, so any
// flow-sensitive analysis (Fsam, Canary) sees no store→load dependence —
// only the flow-insensitive cross product (Saber) connects them. This is
// what makes Saber's report counts exceed Fsam's in Table 1.
func (g *gen) saberModule(i int) string {
	id := g.fresh()
	mod := fmt.Sprintf("sa_uaf_mod%d", id)
	g.pf("\nfunc %s() {\n", mod)
	g.pf("  cell%d = malloc();\n", id)
	g.pf("  seed%d = malloc();\n", id)
	g.pf("  *cell%d = seed%d;\n", id, id)
	for f := 0; f < g.fan(); f++ {
		g.pf("  got%d = *cell%d;\n  print(*got%d);\n", f, id, f)
	}
	g.pf("  victim%d = malloc();\n", id)
	g.pf("  *cell%d = victim%d;\n", id, id)
	g.pf("  free(victim%d);\n", id)
	g.pf("}\n")
	_ = i
	return mod
}

func (g *gen) fan() int {
	if g.spec.Fan < 1 {
		return 1
	}
	return g.spec.Fan
}

// lockModule seeds the mutual-exclusion trap: the freed object is only in
// the shared cell within a critical section that also removes it, and the
// reader locks the same mutex — only the lock/unlock extension prunes it.
func (g *gen) lockModule(i int) string {
	id := g.fresh()
	mod := fmt.Sprintf("lock_uaf_mod%d", id)
	w := fmt.Sprintf("lock_uaf_writer%d", id)
	g.pf(`
global lockmu%[3]d;
func %[2]s(cell) {
  payload = malloc();
  fresh = malloc();
  lock(lockmu%[3]d);
  *cell = payload;
  free(payload);
  *cell = fresh;
  unlock(lockmu%[3]d);
}
func %[1]s() {
  cell%[3]d = malloc();
  seed%[3]d = malloc();
  *cell%[3]d = seed%[3]d;
  fork(t%[3]d, %[2]s, cell%[3]d);
  lock(lockmu%[3]d);
  got = *cell%[3]d;
  print(*got);
  unlock(lockmu%[3]d);
}
`, mod, w, id)
	_ = i
	return mod
}

// fillerModule emits realistic non-buggy code: compute helpers, pointer
// shuffling, branches, loops, and a benign producer/consumer pair whose
// object is never freed. The copy chains and shared loads are what the
// exhaustive baselines pay for.
func (g *gen) fillerModule() string {
	id := g.fresh()
	mod := fmt.Sprintf("filler_mod%d", id)

	// A couple of compute helpers.
	nHelpers := g.r.Intn(3) + 1
	var helperNames []string
	for h := 0; h < nHelpers; h++ {
		g.fillerN++
		name := fmt.Sprintf("calc%d", g.fillerN)
		helperNames = append(helperNames, name)
		g.pf(`
func %s(a, b) {
  t1 = a + b;
  t2 = t1 - a;
  if (flag%d) {
    t2 = t2 + t1;
  }
  return t2;
}
`, name, g.r.Intn(8))
	}

	// A benign worker: stores a fresh (never freed) object, sometimes
	// through a record field.
	worker := fmt.Sprintf("filler_worker%d", id)
	if g.r.Intn(3) == 0 {
		g.pf(`
func %s(cell) {
  item = malloc();
  cell.payload = item;
  v = cell.payload;
  print(*v);
  meta = malloc();
  cell.meta = meta;
}
`, worker)
	} else {
		g.pf(`
func %s(cell) {
  item = malloc();
  *cell = item;
  v = *cell;
  print(*v);
}
`, worker)
	}

	// Module body: locals, copy chains, loop, fork/join of the benign
	// worker, a few helper calls.
	g.pf("func %s() {\n", mod)
	g.pf("  cell%d = malloc();\n", id)
	g.pf("  init%d = malloc();\n", id)
	g.pf("  *cell%d = init%d;\n", id, id)
	chain := g.r.Intn(6) + 2
	prev := fmt.Sprintf("cell%d", id)
	for c := 0; c < chain; c++ {
		cur := fmt.Sprintf("alias%d_%d", id, c)
		g.pf("  %s = %s;\n", cur, prev)
		prev = cur
	}
	g.pf("  x0 = 1;\n")
	for c, name := range helperNames {
		g.pf("  x%d = %s(x%d, x%d);\n", c+1, name, c, c)
	}
	g.pf("  i%d = 0;\n", id)
	g.pf("  while (i%d < 4) {\n", id)
	g.pf("    i%d = i%d + 1;\n", id, id)
	g.pf("    probe = *%s;\n", prev)
	g.pf("  }\n")
	g.pf("  fork(tw%d, %s, %s);\n", id, worker, prev)
	if g.r.Intn(2) == 0 {
		g.pf("  join(tw%d);\n", id)
	}
	g.pf("  out = *cell%d;\n", id)
	g.pf("  print(*out);\n")
	g.pf("}\n")
	return mod
}
