package workload

import "math"

// Project is a catalogue entry: a Spec standing in for one of the twenty
// open-source subjects of the paper's Table 1, with the Canary-column
// ground truth (true positives and unprunable false positives) seeded to
// match the paper's reported #Reports and FP counts.
type Project struct {
	Spec
	// PaperSaberReports / PaperFsamReports / PaperCanaryReports record the
	// counts the paper's Table 1 lists (NA = -1), for side-by-side printing.
	PaperSaberReports  int
	PaperFsamReports   int
	PaperCanaryReports int
	PaperCanaryFPs     int
}

// table1 mirrors the paper's Table 1 rows: name, KLoC, Saber reports, Fsam
// reports, Canary FPs, Canary reports (NA = -1).
var table1 = []struct {
	name    string
	kloc    float64
	saber   int
	fsam    int
	cFP     int
	cReport int
}{
	{"lrzip", 16, 63, 32, 0, 2},
	{"lwan", 20, 89, 44, 0, 1},
	{"leveldb", 21, 0, 0, 1, 1},
	{"darknet", 29, 3636, 144, 0, 0},
	{"coturn", 39, 1477, 368, 0, 2},
	{"httrack", 49, 134, -1, 1, 1},
	{"finedb", 51, 421, -1, 0, 1},
	{"tcpdump", 85, 0, -1, 0, 0},
	{"transmission", 88, 299, -1, 0, 2},
	{"celix", 107, 3782, -1, 0, 0},
	{"redis", 219, 0, -1, 0, 0},
	{"git", 239, -1, -1, 0, 0},
	{"zfs", 367, -1, -1, 0, 1},
	{"HP-Socket", 426, -1, -1, 0, 0},
	{"openssl", 451, -1, -1, 1, 1},
	{"poco", 705, -1, -1, 0, 0},
	{"mariadb", 1751, -1, -1, 0, 1},
	{"ffmpeg", 2003, -1, -1, 0, 0},
	{"mysql", 3118, -1, -1, 0, 0},
	{"firefox", 8938, -1, -1, 1, 2},
}

// Projects returns the twenty-subject catalogue. lineScale controls the
// generated size: a subject of K KLoC becomes roughly 150 + K·1000·lineScale
// generated lines (the paper's testbed sizes scaled down to laptop scale;
// the substitution table in DESIGN.md explains why the shape survives).
func Projects(lineScale float64) []Project {
	if lineScale <= 0 {
		lineScale = 0.004
	}
	out := make([]Project, 0, len(table1))
	for i, row := range table1 {
		tp := row.cReport - row.cFP
		spec := Spec{
			Name:          row.name,
			KLoC:          row.kloc,
			Lines:         150 + int(row.kloc*1000*lineScale),
			Seed:          int64(1000 + i),
			TruePositives: tp,
			CanaryFPs:     row.cFP,
			Fig2Traps:     1 + int(row.kloc/150),
			OrderTraps:    1 + int(row.kloc/250),
			LockTraps:     1 + int(row.kloc/400),
			SaberTraps:    1 + int(row.kloc/120),
			Fan:           2 + min(int(row.kloc/100), 6),
		}
		out = append(out, Project{
			Spec:               spec,
			PaperSaberReports:  row.saber,
			PaperFsamReports:   row.fsam,
			PaperCanaryReports: row.cReport,
			PaperCanaryFPs:     row.cFP,
		})
	}
	return out
}

// SizeSweep returns specs of increasing size for the Fig. 8 scalability
// fit: n subjects spaced geometrically between minLines and maxLines.
func SizeSweep(n, minLines, maxLines int) []Spec {
	if n < 2 {
		n = 2
	}
	out := make([]Spec, 0, n)
	ratio := math.Pow(float64(maxLines)/float64(minLines), 1/float64(n-1))
	lines := float64(minLines)
	for i := 0; i < n; i++ {
		l := int(lines)
		out = append(out, Spec{
			Name:          "sweep",
			KLoC:          float64(l) / 1000,
			Lines:         l,
			Seed:          int64(7000 + i),
			TruePositives: 1 + l/4000,
			CanaryFPs:     l / 12000,
			Fig2Traps:     1 + l/3000,
			OrderTraps:    1 + l/5000,
			LockTraps:     1 + l/8000,
			SaberTraps:    1 + l/6000,
			Fan:           3,
		})
		lines *= ratio
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
