package workload

import (
	"context"
	"strings"
	"testing"

	"canary/internal/baseline"
	"canary/internal/core"
	"canary/internal/ir"
	"canary/internal/lang"
)

func smallSpec() Spec {
	return Spec{
		Name: "unit", KLoC: 1, Lines: 400, Seed: 42,
		TruePositives: 2, CanaryFPs: 1, Fig2Traps: 2, OrderTraps: 2,
		LockTraps: 1, Fan: 2,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec())
	b := Generate(smallSpec())
	if a != b {
		t.Fatal("generation must be deterministic for a fixed spec")
	}
	other := smallSpec()
	other.Seed = 43
	if Generate(other) == a {
		t.Fatal("different seeds should differ")
	}
}

func TestGeneratedProgramParsesAndLowers(t *testing.T) {
	src := Generate(smallSpec())
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, head(src, 40))
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatalf("generated program does not lower: %v", err)
	}
	if len(prog.Threads) < 5 {
		t.Errorf("expected several threads, got %d", len(prog.Threads))
	}
}

func TestGeneratedSizeApproximation(t *testing.T) {
	spec := smallSpec()
	spec.Lines = 2000
	src := Generate(spec)
	lines := strings.Count(src, "\n")
	if lines < 1800 {
		t.Errorf("generated %d lines, want ≈2000", lines)
	}
}

func TestCanaryGroundTruthOnWorkload(t *testing.T) {
	spec := smallSpec()
	src := Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := core.Build(prog, core.DefaultBuild())
	opt := core.DefaultCheck()
	opt.Checkers = []string{core.CheckUAF}
	reports, _ := b.Check(opt)

	tp, fp := 0, 0
	for _, r := range reports {
		if TruePositive(r.Source.Fn) {
			tp++
		} else {
			fp++
		}
	}
	if tp != spec.TruePositives {
		t.Errorf("Canary should find all %d seeded TPs, got %d", spec.TruePositives, tp)
	}
	if fp != spec.CanaryFPs {
		t.Errorf("Canary should report exactly the %d unprunable FPs, got %d", spec.CanaryFPs, fp)
		for _, r := range reports {
			t.Logf("report: %v", r)
		}
	}
}

func TestBaselinesReportTrapsOnWorkload(t *testing.T) {
	spec := smallSpec()
	src := Generate(spec)
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Saber{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	saberReports := baseline.CheckReachability(res.G, "use-after-free")
	canaryExpected := spec.TruePositives + spec.CanaryFPs
	if len(saberReports) <= canaryExpected {
		t.Errorf("Saber should report far more than Canary's %d, got %d",
			canaryExpected, len(saberReports))
	}
	fp := 0
	for _, r := range saberReports {
		if !TruePositive(prog.Inst(r.Source).Fn) {
			fp++
		}
	}
	if fp == 0 {
		t.Error("Saber reports should be dominated by false positives")
	}
}

func TestProjectsCatalogue(t *testing.T) {
	ps := Projects(0.004)
	if len(ps) != 20 {
		t.Fatalf("want 20 projects, got %d", len(ps))
	}
	if ps[0].Name != "lrzip" || ps[19].Name != "firefox" {
		t.Errorf("catalogue order wrong: %s .. %s", ps[0].Name, ps[19].Name)
	}
	totalReports, totalFPs := 0, 0
	for _, p := range ps {
		if p.Lines <= 0 {
			t.Errorf("%s: bad size", p.Name)
		}
		if p.TruePositives < 0 || p.CanaryFPs < 0 {
			t.Errorf("%s: negative seeds", p.Name)
		}
		totalReports += p.TruePositives + p.CanaryFPs
		totalFPs += p.CanaryFPs
	}
	// The paper's Canary totals: 15 reports, 4 FPs (26.67%).
	if totalReports != 15 || totalFPs != 4 {
		t.Errorf("catalogue totals: %d reports / %d FPs, want 15 / 4", totalReports, totalFPs)
	}
	// Sizes must be monotonically non-decreasing (subjects ordered by size).
	for i := 1; i < len(ps); i++ {
		if ps[i].KLoC < ps[i-1].KLoC {
			t.Errorf("catalogue not ordered by size at %s", ps[i].Name)
		}
	}
}

func TestSizeSweep(t *testing.T) {
	specs := SizeSweep(5, 500, 8000)
	if len(specs) != 5 {
		t.Fatalf("want 5 specs, got %d", len(specs))
	}
	if specs[0].Lines != 500 {
		t.Errorf("first sweep point should be 500 lines, got %d", specs[0].Lines)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Lines <= specs[i-1].Lines {
			t.Error("sweep sizes must increase")
		}
	}
	if specs[4].Lines < 7500 {
		t.Errorf("last sweep point should approach 8000, got %d", specs[4].Lines)
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
