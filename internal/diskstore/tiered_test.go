package diskstore

import (
	"fmt"
	"testing"

	"canary/internal/cache"
)

func newTestTiered(t *testing.T, queueLen int) (*Tiered, *Store) {
	t.Helper()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTiered(cache.New(0), s.NS("n"), queueLen)
	t.Cleanup(tr.Close)
	return tr, s
}

func TestTieredWriteBehindReachesDisk(t *testing.T) {
	tr, s := newTestTiered(t, 0)
	k := keyOf("wb")
	tr.Put(k, []byte("v"))
	tr.Flush()
	if v, ok := s.NS("n").Get(k); !ok || string(v) != "v" {
		t.Fatalf("disk after flush = %q, %v", v, ok)
	}
}

func TestTieredDiskHitPromotesToMemory(t *testing.T) {
	tr, s := newTestTiered(t, 0)
	k := keyOf("promote")
	// Populate disk only, bypassing the tiered Put.
	s.NS("n").Put(k, []byte("v"))

	v, ok := tr.Get(k)
	if !ok || string(v) != "v" {
		t.Fatalf("tiered Get = %q, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("disk hit not promoted: mem len %d", tr.Len())
	}
	dh0, _ := s.NS("n").Stats()
	if _, ok := tr.Get(k); !ok {
		t.Fatal("second Get missed")
	}
	if dh1, _ := s.NS("n").Stats(); dh1 != dh0 {
		t.Fatal("second Get went back to disk instead of memory")
	}
}

func TestTieredDeleteTombstonesQueuedWrite(t *testing.T) {
	tr, s := newTestTiered(t, 64)
	k := keyOf("quarantined")
	tr.Put(k, []byte("poison"))
	// Delete races the flusher: whether or not the write already landed,
	// after Delete + Flush the key must be gone from both tiers.
	tr.Delete(k)
	tr.Flush()
	if _, ok := tr.Get(k); ok {
		t.Fatal("deleted key still visible through tiered store")
	}
	if _, ok := s.NS("n").Get(k); ok {
		t.Fatal("tombstoned write was resurrected on disk")
	}
	// A later Put (higher sequence) must still flush.
	tr.Put(k, []byte("fresh"))
	tr.Flush()
	if v, ok := s.NS("n").Get(k); !ok || string(v) != "fresh" {
		t.Fatalf("post-delete Put did not flush: %q, %v", v, ok)
	}
}

func TestTieredStatsCountDiskHits(t *testing.T) {
	tr, s := newTestTiered(t, 0)
	s.NS("n").Put(keyOf("d"), []byte("v"))
	tr.Get(keyOf("d"))    // disk hit
	tr.Get(keyOf("d"))    // mem hit
	tr.Get(keyOf("nope")) // full miss
	hits, misses := tr.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestTieredFullQueueDropsWrites(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Close the flusher first so the queue can only fill.
	tr := NewTiered(cache.New(0), s.NS("n"), 1)
	tr.Close()
	for i := 0; i < 3; i++ {
		tr.Put(keyOf(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	// Closed tiered store: no enqueues at all, memory still works.
	if tr.DroppedWrites() != 0 {
		t.Fatalf("closed store counted drops: %d", tr.DroppedWrites())
	}
	if _, ok := tr.Get(keyOf("k0")); !ok {
		t.Fatal("memory tier lost a post-close Put")
	}

	tr2 := NewTiered(cache.New(0), s.NS("m"), 1)
	defer tr2.Close()
	// Saturate: with a queue of 1 and many quick Puts some must drop (the
	// flusher can't keep up deterministically, so assert the sum instead).
	const puts = 64
	for i := 0; i < puts; i++ {
		tr2.Put(keyOf(fmt.Sprintf("q%d", i)), []byte("v"))
	}
	tr2.Flush()
	flushed := s.NS("m").Len()
	if flushed+int(tr2.DroppedWrites()) != puts {
		t.Fatalf("flushed %d + dropped %d != %d puts", flushed, tr2.DroppedWrites(), puts)
	}
	// Every key is still served — from memory if its write dropped.
	for i := 0; i < puts; i++ {
		if _, ok := tr2.Get(keyOf(fmt.Sprintf("q%d", i))); !ok {
			t.Fatalf("key q%d lost", i)
		}
	}
}

func TestTieredCloseIdempotent(t *testing.T) {
	tr, _ := newTestTiered(t, 0)
	tr.Close()
	tr.Close() // second close must not panic or deadlock
}
