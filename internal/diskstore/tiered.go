package diskstore

import (
	"sync"
	"sync/atomic"

	"canary/internal/cache"
)

// defaultFlushQueue bounds the write-behind queue of a Tiered store
// built with NewTiered(..., 0).
const defaultFlushQueue = 1024

// flushOp is one pending write-behind disk write.
type flushOp struct {
	key cache.Key
	val []byte
	seq uint64
}

// Tiered fronts a disk namespace with an in-memory cache.Store and an
// asynchronous write-behind flusher, implementing cache.ByteStore:
//
//   - Get consults memory first, then disk; a disk hit is promoted into
//     the memory tier so repeated lookups stay in-process;
//   - Put lands in memory immediately and is flushed to disk by a
//     background goroutine; when the flush queue is full the disk write
//     is dropped (and counted) — under content addressing a dropped
//     write only leaves the entry cold for the next process, it can
//     never make a future read wrong;
//   - Delete removes the key from both tiers and tombstones any write
//     of it still sitting in the flush queue, so a quarantined entry
//     cannot be resurrected by a racing flush.
//
// All methods are safe for concurrent use.
type Tiered struct {
	mem  *cache.Store
	disk *Namespace

	mu      sync.Mutex
	cond    *sync.Cond
	pending int  // enqueued but not yet flushed
	closed  bool // no further enqueues; queue is closed

	queue   chan flushOp
	done    chan struct{}
	seq     atomic.Uint64
	dropped atomic.Uint64

	delMu  sync.Mutex
	delSeq map[cache.Key]uint64 // key -> latest delete sequence
}

// NewTiered builds a tiered store over mem and disk and starts its
// flusher goroutine (queueLen <= 0 selects a default). Call Close to
// stop the flusher; Flush to wait for the queue to drain.
func NewTiered(mem *cache.Store, disk *Namespace, queueLen int) *Tiered {
	if queueLen <= 0 {
		queueLen = defaultFlushQueue
	}
	t := &Tiered{
		mem:    mem,
		disk:   disk,
		queue:  make(chan flushOp, queueLen),
		done:   make(chan struct{}),
		delSeq: make(map[cache.Key]uint64),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.flusher()
	return t
}

func (t *Tiered) flusher() {
	defer close(t.done)
	for op := range t.queue {
		t.delMu.Lock()
		tombstoned := t.delSeq[op.key] >= op.seq
		t.delMu.Unlock()
		if !tombstoned {
			t.disk.Put(op.key, op.val)
		}
		t.mu.Lock()
		t.pending--
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

// Get returns the value stored under k, trying memory then disk. The
// returned slice is shared and must not be modified.
func (t *Tiered) Get(k cache.Key) ([]byte, bool) {
	if v, ok := t.mem.Get(k); ok {
		return v, true
	}
	v, ok := t.disk.Get(k)
	if !ok {
		return nil, false
	}
	t.mem.Put(k, v)
	return v, true
}

// Put stores v in the memory tier and schedules the disk write. The
// value is copied before it crosses into the flusher goroutine.
func (t *Tiered) Put(k cache.Key, v []byte) {
	t.mem.Put(k, v)
	cp := append([]byte(nil), v...)
	op := flushOp{key: k, val: cp, seq: t.seq.Add(1)}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	select {
	case t.queue <- op:
		t.pending++
	default:
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Delete evicts k from both tiers and tombstones any still-queued write
// of it, reporting whether either tier held the key.
func (t *Tiered) Delete(k cache.Key) bool {
	t.delMu.Lock()
	t.delSeq[k] = t.seq.Add(1)
	t.delMu.Unlock()
	m := t.mem.Delete(k)
	d := t.disk.Delete(k)
	return m || d
}

// Stats reports the tiered hit/miss counts: a hit in either tier is a
// hit, and only a miss of both tiers (the disk namespace's misses) is a
// miss. Memory-tier misses that were answered by disk do not count.
func (t *Tiered) Stats() (hits, misses uint64) {
	mh, _ := t.mem.Stats()
	dh, dm := t.disk.Stats()
	return mh + dh, dm
}

// Len returns the number of entries in the memory tier (the bound that
// matters for in-process footprint; the disk tier is governed by the
// store-wide byte cap).
func (t *Tiered) Len() int { return t.mem.Len() }

// DroppedWrites reports how many disk writes were skipped because the
// flush queue was full.
func (t *Tiered) DroppedWrites() uint64 { return t.dropped.Load() }

// Flush blocks until every write enqueued before the call has been
// written (or tombstoned). It does not prevent concurrent Puts from
// enqueueing more.
func (t *Tiered) Flush() {
	t.mu.Lock()
	for t.pending > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Close drains the flush queue and stops the flusher. Further Puts
// still land in the memory tier but are no longer written to disk;
// further Gets keep working against both tiers. Idempotent.
func (t *Tiered) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return
	}
	t.closed = true
	close(t.queue)
	t.mu.Unlock()
	<-t.done
}
