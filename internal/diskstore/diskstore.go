// Package diskstore implements a content-addressed on-disk byte store:
// the persistent backend under the in-memory warm stores (per-function
// pta summaries, structural SMT verdicts, canaryd's result cache), so a
// fresh process pointed at a populated directory starts warm.
//
// The design leans entirely on content addressing: a cache.Key fully
// determines its value, so the store never returns a stale entry — only
// a present or an absent one — and every failure mode (unreadable file,
// short write, bit rot, crash mid-write, concurrent eviction) is allowed
// to degrade to a miss, which is always safe (the value is recomputed)
// and never wrong. Concretely:
//
//   - entries live at <root>/<namespace>/<hex[:2]>/<hex>, sharded by the
//     first key byte so no directory grows unboundedly (the layout of
//     staticcheck's lintcmd/cache);
//   - writes go to a temp file in <root> and are renamed into place, so
//     a reader only ever observes absent or complete files;
//   - every entry carries a magic header and a SHA-256 checksum trailer;
//     a failed verification deletes the file and reports a miss;
//   - the store is size-capped: when the byte total exceeds the cap, the
//     least-recently-accessed entries (by file mtime, refreshed on every
//     hit) are evicted until the total is back under a low-water mark.
//
// All methods are safe for concurrent use by multiple goroutines, and
// the on-disk format is safe for concurrent use by multiple processes
// sharing one directory: renames are atomic, and a reader racing an
// eviction simply misses.
package diskstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canary/internal/cache"
	"canary/internal/failpoint"
)

// DefaultMaxBytes caps a store opened with maxBytes <= 0.
const DefaultMaxBytes = 1 << 30 // 1 GiB

// gcLowWater is the fraction of the cap GC shrinks the store to, so one
// overflow does not trigger an eviction per subsequent write.
const gcLowWater = 0.9

// entryMagic is the header of every entry file; a file without it (a
// different format version, or not ours at all) decodes as corrupt.
const entryMagic = "cnrydsk1"

// checksumLen is the length of the SHA-256 trailer.
const checksumLen = sha256.Size

// tmpPrefix names in-flight temp files; Open sweeps leftovers from
// crashed writers, and the GC walk skips them.
const tmpPrefix = "tmp-"

// Store is a size-capped content-addressed directory of checksummed
// entry files. Values are accessed through per-namespace handles (NS);
// size accounting, GC, and the write path are shared across namespaces.
type Store struct {
	root     string
	maxBytes int64

	size    atomic.Int64 // bytes of entry files currently on disk
	entries atomic.Int64 // entry files currently on disk
	writes  atomic.Uint64
	evicted atomic.Uint64

	nsMu sync.Mutex
	ns   map[string]*Namespace

	gcMu sync.Mutex // serializes GC sweeps
}

// Stats is a point-in-time snapshot of the store's counters, aggregated
// across namespaces.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Writes         uint64 `json:"writes"`
	CorruptEntries uint64 `json:"corrupt_entries"`
	GCEvictions    uint64 `json:"gc_evictions"`
	Bytes          int64  `json:"bytes"`
	Entries        int64  `json:"entries"`
}

// Open creates (or reopens) the store rooted at dir, bounded to maxBytes
// of entry data (<= 0 selects DefaultMaxBytes). Reopening walks the
// directory once to rebuild the size accounting and sweeps temp files
// left by crashed writers.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{root: dir, maxBytes: maxBytes, ns: make(map[string]*Namespace)}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // a vanished or unreadable entry is just absent
		}
		if strings.HasPrefix(d.Name(), tmpPrefix) {
			os.Remove(path) // leftover from a crashed writer
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			s.size.Add(info.Size())
			s.entries.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return s, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// MaxBytes returns the effective size cap.
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// NS returns the named namespace handle, creating it on first use.
// Namespaces partition the key space (the same key can hold different
// values under different namespaces) and carry their own hit/miss
// counters; the size cap and GC span all of them.
func (s *Store) NS(name string) *Namespace {
	s.nsMu.Lock()
	defer s.nsMu.Unlock()
	if n, ok := s.ns[name]; ok {
		return n
	}
	n := &Namespace{s: s, name: name}
	s.ns[name] = n
	return n
}

// Stats aggregates the per-namespace counters with the store-wide size
// accounting.
func (s *Store) Stats() Stats {
	st := Stats{
		Writes:      s.writes.Load(),
		GCEvictions: s.evicted.Load(),
		Bytes:       s.size.Load(),
		Entries:     s.entries.Load(),
	}
	s.nsMu.Lock()
	for _, n := range s.ns {
		st.Hits += n.hits.Load()
		st.Misses += n.misses.Load()
		st.CorruptEntries += n.corrupt.Load()
	}
	s.nsMu.Unlock()
	return st
}

// EncodeEntry frames a value in the on-disk entry format: magic header,
// payload, SHA-256 checksum trailer.
func EncodeEntry(v []byte) []byte {
	buf := make([]byte, 0, len(entryMagic)+len(v)+checksumLen)
	buf = append(buf, entryMagic...)
	buf = append(buf, v...)
	sum := sha256.Sum256(v)
	return append(buf, sum[:]...)
}

// DecodeEntry validates an entry file's framing and checksum, returning
// the payload. The payload aliases b. Garbage input of any shape returns
// ok=false; the function never panics and never allocates beyond the
// checksum computation.
func DecodeEntry(b []byte) (payload []byte, ok bool) {
	if len(b) < len(entryMagic)+checksumLen {
		return nil, false
	}
	if string(b[:len(entryMagic)]) != entryMagic {
		return nil, false
	}
	payload = b[len(entryMagic) : len(b)-checksumLen]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(b[len(b)-checksumLen:]) {
		return nil, false
	}
	return payload, true
}

// Namespace is one named partition of a Store, implementing
// cache.ByteStore over the shared directory.
type Namespace struct {
	s    *Store
	name string

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
}

// Name returns the namespace's name.
func (n *Namespace) Name() string { return n.name }

func (n *Namespace) path(k cache.Key) string {
	h := hex.EncodeToString(k[:])
	return filepath.Join(n.s.root, n.name, h[:2], h)
}

// Get returns the value stored under k, verifying the entry's framing
// and checksum. Any IO error — including an injected disk-read fault —
// degrades to a miss; a corrupt entry (checksum mismatch, injected
// bit flip, truncation) additionally deletes the file so the slot heals
// to a clean miss.
func (n *Namespace) Get(k cache.Key) ([]byte, bool) {
	if failpoint.Inject(failpoint.SiteDiskRead) != nil {
		n.misses.Add(1)
		return nil, false
	}
	p := n.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		n.misses.Add(1)
		return nil, false
	}
	// The disk-corrupt failpoint models bit rot: it flips one payload bit
	// after the read, which the checksum trailer must catch.
	if failpoint.Inject(failpoint.SiteDiskCorrupt) != nil && len(b) > 0 {
		b[len(b)/2] ^= 0x40
	}
	v, ok := DecodeEntry(b)
	if !ok {
		n.corrupt.Add(1)
		n.misses.Add(1)
		n.removeFile(p)
		return nil, false
	}
	n.hits.Add(1)
	now := time.Now()
	os.Chtimes(p, now, now) // LRU clock; best-effort
	return v, true
}

// Put stores v under k via a temp-file write and an atomic rename, then
// triggers GC if the store exceeds its cap. A failed or injected write
// leaves the slot cold (a safe miss); re-putting an existing key only
// refreshes its access time, since under content addressing the bytes
// are already identical.
func (n *Namespace) Put(k cache.Key, v []byte) {
	if failpoint.Inject(failpoint.SiteDiskWrite) != nil {
		return
	}
	p := n.path(k)
	if _, err := os.Stat(p); err == nil {
		now := time.Now()
		os.Chtimes(p, now, now)
		return
	}
	enc := EncodeEntry(v)
	if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
		return
	}
	f, err := os.CreateTemp(n.s.root, tmpPrefix+"*")
	if err != nil {
		return
	}
	tmp := f.Name()
	_, werr := f.Write(enc)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return
	}
	n.s.writes.Add(1)
	n.s.entries.Add(1)
	if n.s.size.Add(int64(len(enc))) > n.s.maxBytes {
		n.s.gc()
	}
}

// GetRaw returns the raw framed entry bytes stored under k — exactly the
// bytes Put wrote (magic header, payload, checksum trailer), verified
// before return — so a peer cache response can ship the on-disk entry
// verbatim with no re-serialization. Counters and corruption healing
// behave exactly like Get.
func (n *Namespace) GetRaw(k cache.Key) ([]byte, bool) {
	if failpoint.Inject(failpoint.SiteDiskRead) != nil {
		n.misses.Add(1)
		return nil, false
	}
	p := n.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		n.misses.Add(1)
		return nil, false
	}
	if _, ok := DecodeEntry(b); !ok {
		n.corrupt.Add(1)
		n.misses.Add(1)
		n.removeFile(p)
		return nil, false
	}
	n.hits.Add(1)
	now := time.Now()
	os.Chtimes(p, now, now) // LRU clock; best-effort
	return b, true
}

// Delete removes the entry stored under k, reporting whether it was
// present. Quarantine reaches through the tiered store to here, so a
// poisoned summary cannot survive a restart.
func (n *Namespace) Delete(k cache.Key) bool {
	return n.removeFile(n.path(k))
}

// removeFile unlinks an entry file and keeps the size accounting exact;
// it is the single eviction primitive shared by Delete, corruption
// healing, and GC.
func (n *Namespace) removeFile(p string) bool {
	info, err := os.Stat(p)
	if err != nil {
		return false
	}
	if os.Remove(p) != nil {
		return false
	}
	n.s.size.Add(-info.Size())
	n.s.entries.Add(-1)
	return true
}

// Stats returns the namespace's cumulative hit and miss counts
// (cache.ByteStore).
func (n *Namespace) Stats() (hits, misses uint64) {
	return n.hits.Load(), n.misses.Load()
}

// Len counts the namespace's entries with a directory walk. It is a
// test and introspection helper, not a hot path.
func (n *Namespace) Len() int {
	count := 0
	filepath.WalkDir(filepath.Join(n.s.root, n.name), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && !strings.HasPrefix(d.Name(), tmpPrefix) {
			count++
		}
		return nil
	})
	return count
}

// gcEntry is one eviction candidate of a GC sweep.
type gcEntry struct {
	path  string
	size  int64
	atime time.Time
}

// gc evicts least-recently-accessed entries until the store is back
// under the low-water mark. Sweeps are serialized; a second caller
// observing the post-sweep size returns immediately.
func (s *Store) gc() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	target := int64(float64(s.maxBytes) * gcLowWater)
	if s.size.Load() <= s.maxBytes {
		return
	}
	var all []gcEntry
	filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), tmpPrefix) {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			all = append(all, gcEntry{path: path, size: info.Size(), atime: info.ModTime()})
		}
		return nil
	})
	sort.Slice(all, func(i, j int) bool {
		if !all[i].atime.Equal(all[j].atime) {
			return all[i].atime.Before(all[j].atime)
		}
		return all[i].path < all[j].path // deterministic tie-break
	})
	for _, e := range all {
		if s.size.Load() <= target {
			break
		}
		if os.Remove(e.path) == nil {
			s.size.Add(-e.size)
			s.entries.Add(-1)
			s.evicted.Add(1)
		}
	}
}
