package diskstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"canary/internal/cache"
)

func keyOf(s string) cache.Key {
	return cache.Key(sha256.Sum256([]byte(s)))
}

func TestEntryRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		enc := EncodeEntry(payload)
		got, ok := DecodeEntry(enc)
		if !ok {
			t.Fatalf("DecodeEntry rejected its own encoding (len %d)", len(payload))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestDecodeEntryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("not-the-magic-and-then-some-padding-to-clear-the-length-check!!"),
		EncodeEntry([]byte("v"))[:len(entryMagic)+checksumLen-1], // truncated
	}
	// Checksum mismatch: flip one payload bit.
	enc := EncodeEntry([]byte("hello world"))
	enc[len(entryMagic)+3] ^= 0x01
	cases = append(cases, enc)
	for i, c := range cases {
		if _, ok := DecodeEntry(c); ok {
			t.Errorf("case %d: DecodeEntry accepted garbage", i)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := s.NS("summary")
	k := keyOf("a")
	if _, ok := ns.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	ns.Put(k, []byte("value-a"))
	v, ok := ns.Get(k)
	if !ok || string(v) != "value-a" {
		t.Fatalf("Get = %q, %v; want value-a, true", v, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 write, 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats bytes = %d; want > 0", st.Bytes)
	}
}

func TestStoreShardedLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("sharded")
	s.NS("ns").Put(k, []byte("v"))
	h := hex.EncodeToString(k[:])
	want := filepath.Join(dir, "ns", h[:2], h)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at sharded path %s: %v", want, err)
	}
}

func TestReopenRebuildsAccountingAndServesHits(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s1.NS("a").Put(keyOf(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	st1 := s1.Stats()

	// Leftover temp file from a "crashed writer".
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"dead"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Bytes != st1.Bytes || st2.Entries != st1.Entries {
		t.Fatalf("reopened accounting %d bytes/%d entries; want %d/%d",
			st2.Bytes, st2.Entries, st1.Bytes, st1.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"dead")); !os.IsNotExist(err) {
		t.Fatal("reopen did not sweep the leftover temp file")
	}
	for i := 0; i < 8; i++ {
		v, ok := s2.NS("a").Get(keyOf(fmt.Sprintf("k%d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(k%d) = %q, %v", i, v, ok)
		}
	}
}

func TestCorruptEntryDegradesToMissAndHeals(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := s.NS("n")
	k := keyOf("corrupt-me")
	ns.Put(k, []byte("precious"))

	// Bit-flip the entry on disk.
	h := hex.EncodeToString(k[:])
	p := filepath.Join(dir, "n", h[:2], h)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := ns.Get(k); ok {
		t.Fatal("Get returned a corrupt entry")
	}
	st := s.Stats()
	if st.CorruptEntries != 1 {
		t.Fatalf("corrupt entries = %d; want 1", st.CorruptEntries)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry file was not removed")
	}
	// The slot healed: a re-put works and the value reads back.
	ns.Put(k, []byte("precious"))
	if v, ok := ns.Get(k); !ok || string(v) != "precious" {
		t.Fatalf("healed Get = %q, %v", v, ok)
	}
}

func TestNamespacesPartitionKeys(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("shared-key")
	s.NS("a").Put(k, []byte("va"))
	s.NS("b").Put(k, []byte("vb"))
	if v, _ := s.NS("a").Get(k); string(v) != "va" {
		t.Fatalf("ns a = %q", v)
	}
	if v, _ := s.NS("b").Get(k); string(v) != "vb" {
		t.Fatalf("ns b = %q", v)
	}
	if !s.NS("a").Delete(k) {
		t.Fatal("delete a missed")
	}
	if _, ok := s.NS("a").Get(k); ok {
		t.Fatal("a still present after delete")
	}
	if v, ok := s.NS("b").Get(k); !ok || string(v) != "vb" {
		t.Fatalf("delete in a disturbed b: %q, %v", v, ok)
	}
}

func TestGCEvictsLeastRecentlyAccessed(t *testing.T) {
	dir := t.TempDir()
	// Entry overhead is magic+checksum = 40 bytes; payloads of 60 make each
	// entry 100 bytes. Cap at 450: the 5th write overflows and GC shrinks
	// to <= 405, evicting the stalest entry.
	s, err := Open(dir, 450)
	if err != nil {
		t.Fatal(err)
	}
	ns := s.NS("n")
	payload := bytes.Repeat([]byte{1}, 60)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		k := keyOf(fmt.Sprintf("e%d", i))
		ns.Put(k, payload)
		// Distinct, strictly increasing mtimes so LRU order is exact.
		h := hex.EncodeToString(k[:])
		p := filepath.Join(dir, "n", h[:2], h)
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	ns.Put(keyOf("e4"), payload) // overflow: 500 > 450
	st := s.Stats()
	if st.GCEvictions == 0 {
		t.Fatalf("no GC evictions; stats %+v", st)
	}
	if st.Bytes > 450 {
		t.Fatalf("post-GC size %d still above cap", st.Bytes)
	}
	// The oldest entry is gone, the newest survives.
	if _, ok := ns.Get(keyOf("e0")); ok {
		t.Fatal("LRU entry e0 survived GC")
	}
	if _, ok := ns.Get(keyOf("e4")); !ok {
		t.Fatal("newest entry e4 was evicted")
	}
}

func TestPutExistingKeyOnlyTouches(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := s.NS("n")
	k := keyOf("idem")
	ns.Put(k, []byte("v"))
	ns.Put(k, []byte("v"))
	st := s.Stats()
	if st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("re-put wrote again: %+v", st)
	}
}

func TestNamespaceLen(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ns := s.NS("n")
	for i := 0; i < 5; i++ {
		ns.Put(keyOf(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if got := ns.Len(); got != 5 {
		t.Fatalf("Len = %d; want 5", got)
	}
}
