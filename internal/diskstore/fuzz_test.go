package diskstore

import (
	"bytes"
	"testing"
)

// FuzzDecodeEntry hammers the entry-file decoder: any byte string read
// off disk must decode to its exact payload or be rejected — never panic,
// never return unverified bytes.
func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(entryMagic))
	f.Add(EncodeEntry(nil))
	f.Add(EncodeEntry([]byte("payload")))
	trunc := EncodeEntry([]byte("truncated"))
	f.Add(trunc[:len(trunc)-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, ok := DecodeEntry(b)
		if !ok {
			return
		}
		// Whatever was accepted must re-encode to exactly the input: the
		// format has no slack bytes for an attacker to hide state in.
		if !bytes.Equal(EncodeEntry(payload), b) {
			t.Fatalf("accepted entry does not re-encode to itself")
		}
	})
}

// FuzzImport feeds arbitrary bytes to the snapshot-archive reader against
// a real (temp-dir) store: it must never panic, never over-allocate from
// a hostile length prefix, and never write an unverified record.
func FuzzImport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	valid := func() []byte {
		var buf bytes.Buffer
		buf.WriteString(snapshotMagic)
		buf.WriteByte(1)
		buf.WriteString("n")
		k := keyOf("k")
		buf.Write(k[:])
		entry := EncodeEntry([]byte("v"))
		buf.WriteByte(byte(len(entry)))
		buf.Write(entry)
		buf.WriteByte(0)
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Open(t.TempDir(), 0)
		if err != nil {
			t.Skip()
		}
		n, _ := s.Import(bytes.NewReader(b))
		if n < 0 || int64(n) != s.Stats().Entries {
			t.Fatalf("import reported %d entries, store holds %d", n, s.Stats().Entries)
		}
	})
}
