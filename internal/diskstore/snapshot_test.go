package diskstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]string{
		"summary": {"k1": "v1", "k2": "v2"},
		"verdict": {"k1": "w1"},
		"result":  {"k3": "a-longer-value-for-variety"},
	}
	n := 0
	for ns, kv := range want {
		for k, v := range kv {
			src.NS(ns).Put(keyOf(k), []byte(v))
			n++
		}
	}

	var buf bytes.Buffer
	exported, err := src.Export(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if exported != n {
		t.Fatalf("exported %d entries; want %d", exported, n)
	}

	dst, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := dst.Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if imported != n {
		t.Fatalf("imported %d entries; want %d", imported, n)
	}
	for ns, kv := range want {
		for k, v := range kv {
			got, ok := dst.NS(ns).Get(keyOf(k))
			if !ok || string(got) != v {
				t.Fatalf("%s/%s = %q, %v; want %q", ns, k, got, ok, v)
			}
		}
	}
}

func TestSnapshotExportDeterministic(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.NS("a").Put(keyOf(fmt.Sprintf("k%d", i)), []byte("v"))
		s.NS("b").Put(keyOf(fmt.Sprintf("k%d", i)), []byte("w"))
	}
	var b1, b2 bytes.Buffer
	if _, err := s.Export(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Export(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two exports of the same store differ")
	}
}

func TestSnapshotImportRejectsGarbageHeader(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"", "x", "definitely-not-a-snapshot-archive"} {
		if _, err := s.Import(strings.NewReader(in)); err == nil {
			t.Fatalf("Import(%q) accepted a non-archive", in)
		}
	}
}

func TestSnapshotImportSkipsCorruptRecords(t *testing.T) {
	src, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	src.NS("n").Put(keyOf("a"), []byte("va"))
	src.NS("n").Put(keyOf("b"), []byte("vb"))
	var buf bytes.Buffer
	if _, err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the archive body (past the header). The damaged
	// record must be skipped, never imported wrong.
	raw := buf.Bytes()
	raw[len(snapshotMagic)+40] ^= 0x01

	dst, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	imported, ierr := dst.Import(bytes.NewReader(raw))
	if imported >= 2 {
		t.Fatalf("imported %d entries from a damaged archive (err=%v)", imported, ierr)
	}
	for _, k := range []string{"a", "b"} {
		if v, ok := dst.NS("n").Get(keyOf(k)); ok {
			if string(v) != "v"+k {
				t.Fatalf("damaged archive imported a wrong value for %s: %q", k, v)
			}
		}
	}
}

func TestSnapshotImportRejectsTraversalNamespace(t *testing.T) {
	// Hand-build an archive whose record names namespace "../evil".
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	ns := "../evil"
	buf.WriteByte(byte(len(ns)))
	buf.WriteString(ns)
	k := keyOf("k")
	buf.Write(k[:])
	entry := EncodeEntry([]byte("v"))
	buf.WriteByte(byte(len(entry)))
	buf.Write(entry)
	buf.WriteByte(0)

	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Import(bytes.NewReader(buf.Bytes())); err == nil || n != 0 {
		t.Fatalf("Import accepted a traversal namespace (n=%d, err=%v)", n, err)
	}
}
