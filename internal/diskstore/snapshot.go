package diskstore

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"canary/internal/cache"
)

// The single-file snapshot archive: a portable serialization of a whole
// store (all namespaces) for shipping warm caches between machines.
//
//	header  := "canarysnap1\n"
//	record  := uvarint len(ns) ns key[32] uvarint len(entry) entry
//	trailer := uvarint 0
//
// where entry is the checksummed on-disk entry encoding (EncodeEntry),
// so every record carries its own integrity proof and a corrupted
// archive can never import a wrong value — only fail.
const snapshotMagic = "canarysnap1\n"

// maxSnapshotEntry bounds a single record's claimed size, so a garbage
// length prefix cannot drive an over-allocation.
const maxSnapshotEntry = 64 << 20 // 64 MiB

// maxSnapshotNS bounds a namespace name in an archive record.
const maxSnapshotNS = 255

// Export writes a snapshot archive of the whole store to w, returning
// the number of entries exported. Entries are emitted in deterministic
// order (namespace, then key), and corrupt entries are skipped — an
// archive only ever carries verified bytes.
func (s *Store) Export(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return 0, fmt.Errorf("diskstore: export: %w", err)
	}
	type rec struct {
		ns   string
		key  cache.Key
		path string
	}
	var recs []rec
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return 0, fmt.Errorf("diskstore: export: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ns := e.Name()
		filepath.WalkDir(filepath.Join(s.root, ns), func(path string, d fs.DirEntry, werr error) error {
			if werr != nil || d.IsDir() || strings.HasPrefix(d.Name(), tmpPrefix) {
				return nil
			}
			raw, derr := hex.DecodeString(d.Name())
			if derr != nil || len(raw) != len(cache.Key{}) {
				return nil // not an entry file
			}
			var k cache.Key
			copy(k[:], raw)
			recs = append(recs, rec{ns: ns, key: k, path: path})
			return nil
		})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ns != recs[j].ns {
			return recs[i].ns < recs[j].ns
		}
		return string(recs[i].key[:]) < string(recs[j].key[:])
	})

	var num [binary.MaxVarintLen64]byte
	writeUvarint := func(u uint64) error {
		n := binary.PutUvarint(num[:], u)
		_, err := bw.Write(num[:n])
		return err
	}
	count := 0
	for _, r := range recs {
		b, rerr := os.ReadFile(r.path)
		if rerr != nil {
			continue // evicted mid-export: just absent
		}
		if _, ok := DecodeEntry(b); !ok {
			continue // never export unverifiable bytes
		}
		if err := writeUvarint(uint64(len(r.ns))); err != nil {
			return count, fmt.Errorf("diskstore: export: %w", err)
		}
		if _, err := bw.WriteString(r.ns); err != nil {
			return count, fmt.Errorf("diskstore: export: %w", err)
		}
		if _, err := bw.Write(r.key[:]); err != nil {
			return count, fmt.Errorf("diskstore: export: %w", err)
		}
		if err := writeUvarint(uint64(len(b))); err != nil {
			return count, fmt.Errorf("diskstore: export: %w", err)
		}
		if _, err := bw.Write(b); err != nil {
			return count, fmt.Errorf("diskstore: export: %w", err)
		}
		count++
	}
	if err := writeUvarint(0); err != nil {
		return count, fmt.Errorf("diskstore: export: %w", err)
	}
	return count, bw.Flush()
}

// validNSName accepts exactly the namespace-name alphabet the store
// itself uses, so an archive record can never name a path outside the
// store root.
func validNSName(name string) bool {
	if name == "" {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Import reads a snapshot archive from r and stores every record whose
// entry encoding verifies, returning the number of entries imported.
// Records that fail verification are skipped (counted against no one:
// content addressing makes skipping safe); a structurally broken
// archive returns an error alongside the entries already imported.
func (s *Store) Import(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, head); err != nil || string(head) != snapshotMagic {
		return 0, fmt.Errorf("diskstore: import: not a snapshot archive")
	}
	count := 0
	for {
		nsLen, err := binary.ReadUvarint(br)
		if err != nil {
			return count, fmt.Errorf("diskstore: import: truncated archive")
		}
		if nsLen == 0 {
			return count, nil // clean end marker
		}
		if nsLen > maxSnapshotNS {
			return count, fmt.Errorf("diskstore: import: namespace name too long (%d)", nsLen)
		}
		nsName := make([]byte, nsLen)
		if _, err := io.ReadFull(br, nsName); err != nil {
			return count, fmt.Errorf("diskstore: import: truncated archive")
		}
		if !validNSName(string(nsName)) {
			return count, fmt.Errorf("diskstore: import: invalid namespace %q", nsName)
		}
		var k cache.Key
		if _, err := io.ReadFull(br, k[:]); err != nil {
			return count, fmt.Errorf("diskstore: import: truncated archive")
		}
		entryLen, err := binary.ReadUvarint(br)
		if err != nil || entryLen > maxSnapshotEntry {
			return count, fmt.Errorf("diskstore: import: bad entry length")
		}
		entry := make([]byte, entryLen)
		if _, err := io.ReadFull(br, entry); err != nil {
			return count, fmt.Errorf("diskstore: import: truncated archive")
		}
		payload, ok := DecodeEntry(entry)
		if !ok {
			continue // corrupted record: skip, never store
		}
		s.NS(string(nsName)).Put(k, payload)
		count++
	}
}
