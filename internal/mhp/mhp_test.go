package mhp

import (
	"testing"

	"canary/internal/ir"
	"canary/internal/lang"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// allocLabels returns alloc labels in emission order.
func allocLabels(p *ir.Program) []ir.Label {
	var out []ir.Label
	for _, i := range p.Insts() {
		if i.Op == ir.OpAlloc {
			out = append(out, i.Label)
		}
	}
	return out
}

func TestSameThreadNeverMHP(t *testing.T) {
	p := lower(t, `
func main() {
  a = malloc();
  b = malloc();
}
`)
	m := Analyze(p)
	as := allocLabels(p)
	if m.MHP(as[0], as[1]) {
		t.Error("same-thread statements are never MHP")
	}
}

func TestForkWindow(t *testing.T) {
	p := lower(t, `
func w() { c = malloc(); }
func main() {
  a = malloc();
  fork(t, w);
  b = malloc();
  join(t);
  d = malloc();
}
`)
	m := Analyze(p)
	as := allocLabels(p) // a, b, d in main; c in child (order: a, b, d emitted before child? child lowered inside fork handling, so order: a, c, b, d)
	var inMain []ir.Label
	var inChild []ir.Label
	for _, l := range as {
		if p.Inst(l).Thread == 0 {
			inMain = append(inMain, l)
		} else {
			inChild = append(inChild, l)
		}
	}
	if len(inMain) != 3 || len(inChild) != 1 {
		t.Fatalf("unexpected layout: main=%d child=%d", len(inMain), len(inChild))
	}
	a, b, d := inMain[0], inMain[1], inMain[2]
	c := inChild[0]
	if m.MHP(a, c) {
		t.Error("statement before fork must not be MHP with child")
	}
	if !m.MHP(b, c) {
		t.Error("statement between fork and join must be MHP with child")
	}
	if m.MHP(d, c) {
		t.Error("statement after join must not be MHP with child")
	}
	if !m.MHP(c, b) {
		t.Error("MHP must be symmetric")
	}
}

func TestUnjoinedChildParallelWithRest(t *testing.T) {
	p := lower(t, `
func w() { c = malloc(); }
func main() {
  fork(t, w);
  b = malloc();
}
`)
	m := Analyze(p)
	var b, c ir.Label
	for _, l := range allocLabels(p) {
		if p.Inst(l).Thread == 0 {
			b = l
		} else {
			c = l
		}
	}
	if !m.MHP(b, c) {
		t.Error("unjoined child is MHP with post-fork statements")
	}
}

func TestSiblingThreads(t *testing.T) {
	p := lower(t, `
func w1() { a = malloc(); }
func w2() { b = malloc(); }
func main() {
  fork(t1, w1);
  fork(t2, w2);
  join(t1);
  join(t2);
}
`)
	m := Analyze(p)
	var a, b ir.Label
	for _, l := range allocLabels(p) {
		switch p.Inst(l).Thread {
		case 1:
			a = l
		case 2:
			b = l
		}
	}
	if !m.MHP(a, b) {
		t.Error("overlapping sibling threads must be MHP")
	}
}

func TestSequencedSiblings(t *testing.T) {
	// t1 is joined before t2 is forked: their bodies never overlap.
	p := lower(t, `
func w1() { a = malloc(); }
func w2() { b = malloc(); }
func main() {
  fork(t1, w1);
  join(t1);
  fork(t2, w2);
  join(t2);
}
`)
	m := Analyze(p)
	var a, b ir.Label
	for _, l := range allocLabels(p) {
		switch p.Inst(l).Thread {
		case 1:
			a = l
		case 2:
			b = l
		}
	}
	if m.MHP(a, b) {
		t.Error("join-sequenced siblings must not be MHP")
	}
}

func TestNestedThreadsMHPWithGrandparent(t *testing.T) {
	p := lower(t, `
func leaf() { a = malloc(); }
func mid() { fork(t2, leaf); }
func main() {
  fork(t1, mid);
  b = malloc();
}
`)
	m := Analyze(p)
	var a, b ir.Label
	for _, l := range allocLabels(p) {
		if p.Inst(l).Thread == 0 {
			b = l
		} else {
			a = l
		}
	}
	if !m.MHP(a, b) {
		t.Error("grandchild body should be MHP with main after fork")
	}
}
