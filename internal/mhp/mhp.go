// Package mhp implements the may-happen-in-parallel analysis Canary uses to
// prune non-interfering load/store pairs before the interference-dependence
// analysis (PLDI 2021, §6): if a load and a store cannot execute
// concurrently, they cannot share an interference dependence (Defn. 1), so
// Alg. 2 need not consider the pair.
//
// The analysis exploits the fork/join structure of the bounded thread tree.
// Because the lowered CFGs are acyclic (loops are unrolled) and every label
// executes at most once, intra-thread "may reach" coincides with "always
// ordered when both execute", which keeps the rules simple and sound:
//
//   - statements of the same thread never run in parallel;
//   - a statement of an ancestor thread ordered before the fork of the
//     descendant's subtree (or after its join) is not parallel with the
//     descendant;
//   - statements of unrelated threads are not parallel when one subtree's
//     join is ordered before the other's fork in their lowest common
//     ancestor.
package mhp

import "canary/internal/ir"

// Info answers MHP queries for one program.
type Info struct {
	prog  *ir.Program
	depth []int // thread-tree depth per thread id
}

// Analyze precomputes the thread-tree structure of prog.
func Analyze(prog *ir.Program) *Info {
	m := &Info{prog: prog, depth: make([]int, len(prog.Threads))}
	for _, t := range prog.Threads {
		d := 0
		for p := t.Parent; p >= 0; p = prog.Threads[p].Parent {
			d++
		}
		m.depth[t.ID] = d
	}
	return m
}

// MHP reports whether the instructions at l1 and l2 may execute in
// parallel: they belong to different threads and the fork/join structure
// imposes no order between them.
func (m *Info) MHP(l1, l2 ir.Label) bool {
	if m.prog.Inst(l1).Thread == m.prog.Inst(l2).Thread {
		return false
	}
	return m.Ordered(l1, l2) == 0
}

// Ordered reports the program order <_P between two labels: -1 when l1 is
// ordered before l2 on every execution in which both run, +1 for the
// reverse, and 0 when the program imposes no order. Same-thread queries use
// CFG reachability (sound because bounded CFGs are acyclic); cross-thread
// queries use the fork/join synchronization semantics of §5.1.
func (m *Info) Ordered(l1, l2 ir.Label) int {
	t1 := m.prog.Inst(l1).Thread
	t2 := m.prog.Inst(l2).Thread
	if t1 == t2 {
		switch {
		case l1 == l2:
			return 0
		case m.prog.Reaches(l1, l2):
			return -1
		case m.prog.Reaches(l2, l1):
			return 1
		}
		return 0
	}
	// Ancestor/descendant: order the ancestor's statement against the
	// fork/join window of the descendant's subtree.
	if c, ok := m.childToward(t1, t2); ok {
		return m.windowOrder(l1, c)
	}
	if c, ok := m.childToward(t2, t1); ok {
		return -m.windowOrder(l2, c)
	}
	// Unrelated threads: compare the two subtree windows in the LCA.
	lca, c1, c2 := m.lca(t1, t2)
	if lca < 0 {
		return 0 // defensive: disconnected threads are unordered
	}
	w1 := m.prog.Threads[c1]
	w2 := m.prog.Threads[c2]
	if w1.JoinSite != ir.NoLabel &&
		(w1.JoinSite == w2.ForkSite || m.prog.Reaches(w1.JoinSite, w2.ForkSite)) {
		return -1
	}
	if w2.JoinSite != ir.NoLabel &&
		(w2.JoinSite == w1.ForkSite || m.prog.Reaches(w2.JoinSite, w1.ForkSite)) {
		return 1
	}
	return 0
}

// windowOrder orders label l (in an ancestor thread) against the subtree
// rooted at thread c: -1 when l precedes the whole subtree, +1 when it
// follows it, 0 when they may interleave.
func (m *Info) windowOrder(l ir.Label, c int) int {
	th := m.prog.Threads[c]
	// Before (or at) the fork: strictly ordered before the whole subtree.
	if l == th.ForkSite || m.prog.Reaches(l, th.ForkSite) {
		return -1
	}
	// After (or at) the join: strictly ordered after the whole subtree.
	if th.JoinSite != ir.NoLabel && (l == th.JoinSite || m.prog.Reaches(th.JoinSite, l)) {
		return 1
	}
	return 0
}

// childToward returns the child of anc on the thread-tree path down to
// desc, and whether anc is a proper ancestor of desc.
func (m *Info) childToward(anc, desc int) (int, bool) {
	cur := desc
	for cur >= 0 {
		p := m.prog.Threads[cur].Parent
		if p == anc {
			return cur, true
		}
		cur = p
	}
	return -1, false
}

// lca returns the lowest common ancestor of t1 and t2 together with the
// children of the LCA on the paths toward t1 and t2.
func (m *Info) lca(t1, t2 int) (lca, c1, c2 int) {
	a, b := t1, t2
	for m.depth[a] > m.depth[b] {
		a = m.prog.Threads[a].Parent
	}
	for m.depth[b] > m.depth[a] {
		b = m.prog.Threads[b].Parent
	}
	for a != b {
		if m.prog.Threads[a].Parent < 0 || m.prog.Threads[b].Parent < 0 {
			return -1, -1, -1
		}
		a = m.prog.Threads[a].Parent
		b = m.prog.Threads[b].Parent
	}
	// a == b is the LCA; find the children toward each side.
	c1, _ = m.childTowardFrom(a, t1)
	c2, _ = m.childTowardFrom(a, t2)
	return a, c1, c2
}

func (m *Info) childTowardFrom(anc, desc int) (int, bool) {
	return m.childToward(anc, desc)
}
