package core

import (
	"canary/internal/bitset"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/vfg"
)

// escapeAnalysis computes the EspObj set of Alg. 2 (lines 12–23): objects
// passed to fork calls seed the set (together with globals, which are
// statically reachable from every thread), and any object stored into an
// escaped object escapes too, to a fixed point.
func (b *Builder) escapeAnalysis() {
	// Seeds: globals.
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjGlobal {
			b.escaped[o.ID] = true
		}
	}
	// Seeds: objects passed to fork calls. Parameter bindings are the
	// cross-thread copy instructions emitted at child-thread entry.
	for _, inst := range b.Prog.Insts() {
		if inst.Op != ir.OpCopy {
			continue
		}
		src := b.Prog.Var(inst.Val)
		if src.Def == ir.NoLabel {
			continue
		}
		if b.Prog.Inst(src.Def).Thread != inst.Thread {
			for o := range b.pts[inst.Val] {
				b.escaped[o] = true
			}
		}
	}
	// Propagate: *x = q with an escaped pointee of x escapes q's pointees.
	for changed := true; changed; {
		changed = false
		for _, inst := range b.storeInsts {
			esc := false
			for o := range b.pts[inst.Ptr] {
				if b.escaped[o] {
					esc = true
					break
				}
			}
			if !esc {
				continue
			}
			for o2 := range b.pts[inst.Val] {
				if !b.escaped[o2] {
					b.escaped[o2] = true
					changed = true
				}
			}
		}
	}
}

// Pted computes the pointed-to-by set of object o by guarded forward
// reachability over the VFG (Alg. 2 lines 19–23): every variable node
// reachable from o's node may point to o, under the aggregated guard of the
// traversal.
func (b *Builder) Pted(o ir.ObjID) map[vfg.NodeID]*guard.Formula {
	g := b.G
	start := g.ObjNode(o)
	out := map[vfg.NodeID]*guard.Formula{start: guard.True()}
	work := []vfg.NodeID{start}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		gn := out[n]
		for _, eid := range g.Out(n) {
			e := g.Edge(eid)
			ng := b.cap(guard.And(gn, e.Guard))
			if ng.IsFalse() {
				continue
			}
			if old, seen := out[e.To]; seen {
				out[e.To] = b.cap(guard.Or(old, ng))
				continue // discovered before; do not re-expand (bounded)
			}
			out[e.To] = ng
			work = append(work, e.To)
		}
	}
	delete(out, start)
	return out
}

// interferencePass identifies interference-dependence edges (Alg. 2 lines
// 2–10): for every escaped object o, every cross-thread MHP pair of a store
// and a load whose pointers may point to o gets a guarded interference edge
// q@ℓ1 → p@ℓ2 with Φ_alias = φ1 ∧ φ2 ∧ α ∧ β. The load–store order part
// Φ_ls of the guard is generated lazily from the edge bookkeeping at the
// bug-checking stage (§4.2.2). Reports whether anything new appeared.
//
// The store×load candidate pairs are enumerated in a deterministic order,
// their Φ_alias guards are evaluated on the worker pool (each pair writes
// only its own slot; all inputs are frozen), and the edges plus the cyclic
// points-to enlargement are applied sequentially in enumeration order — so
// the pass is byte-identical to a 1-worker run.
func (b *Builder) interferencePass(workers int) bool {
	itemsBefore := b.ptsItems
	edgesBefore := b.G.NumEdges()

	type access struct {
		inst *ir.Inst
		cond *guard.Formula // pointed-to-by condition (α or β)
	}
	// Group accesses by dense location index. Ascending-index iteration of
	// the store-touched set is ascending (Obj, Field) order — the order the
	// map-based implementation sorted its location list into — because the
	// graph interns field names sorted.
	nLocs := b.G.LocCount()
	storesByLoc := make([][]access, nLocs)
	loadsByLoc := make([][]access, nLocs)
	storeLocs := bitset.New(nLocs)
	for _, inst := range b.storeInsts {
		for o, α := range b.pts[inst.Ptr] {
			if b.escaped[o] {
				li := b.G.LocIndex(o, inst.Field)
				storesByLoc[li] = append(storesByLoc[li], access{inst, α})
				storeLocs.Add(li)
			}
		}
	}
	for _, inst := range b.loadInsts {
		for o, β := range b.pts[inst.Ptr] {
			if b.escaped[o] {
				li := b.G.LocIndex(o, inst.Field)
				loadsByLoc[li] = append(loadsByLoc[li], access{inst, β})
			}
		}
	}

	// Enumerate the surviving candidate pairs in deterministic order.
	type candidate struct {
		s, l  access
		loc   vfg.Loc
		guard *guard.Formula // Φ_alias, filled in by the parallel phase
	}
	var cands []candidate
	storeLocs.ForEach(func(li int) {
		loads := loadsByLoc[li]
		if len(loads) == 0 {
			return
		}
		loc := b.G.LocAt(li)
		for _, s := range storesByLoc[li] {
			for _, l := range loads {
				if s.inst.Thread == l.inst.Thread {
					continue // interference is cross-thread by definition
				}
				if b.opt.EnableMHP && !b.MHP.MHP(s.inst.Label, l.inst.Label) {
					continue // §6: non-MHP pairs cannot interfere
				}
				cands = append(cands, candidate{s: s, l: l, loc: loc})
			}
		}
	})

	// Parallel phase: Φ_alias per pair. Guard construction is the dominant
	// cost here, and every input (instruction guards, captured α/β) is
	// immutable during the loop, so pairs are independent.
	runIndexed(workers, len(cands), func(i int) {
		c := &cands[i]
		c.guard = b.cap(guard.And(c.s.inst.Guard, c.l.inst.Guard, c.s.cond, c.l.cond))
	})

	// Sequential apply, in enumeration order.
	for i := range cands {
		c := &cands[i]
		φ := c.guard
		if φ.IsFalse() {
			b.Stats.FilteredEdges++
			continue
		}
		b.G.AddEdge(vfg.Edge{
			From: b.G.VarNode(c.s.inst.Val), To: b.G.VarNode(c.l.inst.Def),
			Kind: vfg.EdgeInterference, Guard: φ,
			Store: c.s.inst.Label, Load: c.l.inst.Label, Obj: c.loc.Obj, Field: c.loc.Field,
		})
		// The loaded variable may now hold anything the stored value points
		// to (the cyclic enlargement of Alg. 2).
		for o2, γ2 := range b.pts[c.s.inst.Val] {
			b.ptsAdd(c.l.inst.Def, o2, b.cap(guard.And(γ2, φ)))
		}
	}
	return b.ptsItems != itemsBefore || b.G.NumEdges() != edgesBefore
}
