// Package core implements Canary's primary contribution: the thread-modular
// dependence analysis that builds the interference-aware guarded value-flow
// graph (PLDI 2021, §4), and the guarded source–sink reachability checking
// that detects inter-thread value-flow bugs over it (§5).
//
// The two analysis phases follow the paper's Alg. 1 and Alg. 2:
//
//  1. Data dependence (Alg. 1): per-thread, flow-sensitive, path-guarded
//     points-to computation over the partial-SSA IR; top-level points-to
//     facts live in a global guarded points-to graph, address-taken state is
//     propagated through the (acyclic, bounded) CFG, and indirect
//     store→load flows become guarded dd edges in the VFG.
//
//  2. Interference dependence (Alg. 2): an escape analysis seeds the set of
//     escaped objects (objects passed to forks and globals), the
//     pointed-to-by sets Pted(o) are read off the VFG by guarded
//     reachability, and cross-thread store/load pairs over a common escaped
//     object — filtered by the MHP analysis (§6) — become interference
//     edges. New edges enlarge points-to facts, escaped-object sets, and
//     Pted sets, so the whole pipeline iterates to a fixed point
//     (the cyclic dependence the paper notes) without ever running an
//     exhaustive whole-program pointer analysis.
package core

import (
	"context"
	"time"

	"canary/internal/failpoint"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/mhp"
	"canary/internal/vfg"
)

// BuildOptions configures VFG construction.
type BuildOptions struct {
	// EnableMHP prunes non-may-happen-in-parallel store/load pairs during
	// the interference analysis (§6). On by default via DefaultBuild.
	EnableMHP bool
	// GuardCap widens any guard whose formula grows beyond this many nodes
	// to true (a sound overapproximation that keeps guards small).
	GuardCap int
	// MaxIterations bounds the outer Alg. 1/Alg. 2 fixpoint defensively.
	MaxIterations int
	// Workers is the size of the pool the per-thread Alg. 1 passes and the
	// Alg. 2 interference-pair guards are partitioned over inside each
	// fixpoint iteration. <= 0 means one worker per logical CPU. The graph
	// produced is byte-identical for every worker count (see parallel.go).
	Workers int
	// SummaryHits and FuncsReanalyzed report the delta path taken by the
	// summarize step that preceded lowering (canary.Session's digest-keyed
	// summary store): how many functions' Trans(F) summaries were loaded
	// unchanged, and how many re-entered the fixpoint. The builder copies
	// them into BuildStats; a cold (session-less) build reanalyzes every
	// function. They do not alter the build itself — the graph is
	// byte-identical either way.
	SummaryHits     int
	FuncsReanalyzed int
}

// DefaultBuild mirrors the paper's configuration.
func DefaultBuild() BuildOptions {
	return BuildOptions{EnableMHP: true, GuardCap: 96, MaxIterations: 32}
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.GuardCap <= 0 {
		o.GuardCap = 96
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 32
	}
	return o
}

// BuildStats reports VFG-construction work, used by the evaluation.
type BuildStats struct {
	Iterations        int
	DirectEdges       int
	DataDepEdges      int
	InterferenceEdges int
	// FilteredEdges counts candidate dependence edges refuted at
	// construction time by the semi-decision guard filter (§5.2, opt. 1):
	// the Fig. 2 θ1 ∧ ¬θ1 edge lands here.
	FilteredEdges  int
	EscapedObjects int
	BuildTime      time.Duration
	// ParallelTime is the portion of BuildTime spent inside the parallel
	// regions (per-thread passes and interference-guard evaluation); the
	// remainder is the sequential merge that keeps the graph deterministic.
	ParallelTime time.Duration
	// MHPTime, DataDepTime, and InterferTime split BuildTime by pipeline
	// stage: the MHP analysis (§6), the Alg. 1 data-dependence passes
	// (snapshot passes plus the deterministic merge, summed over fixpoint
	// iterations), and the Alg. 2 escape + interference passes. They feed
	// the per-stage trace spans; like every duration here they are outside
	// the determinism contract.
	MHPTime      time.Duration
	DataDepTime  time.Duration
	InterferTime time.Duration
	// GuardCacheHits counts guard hash-cons hits during this build: formula
	// constructions that returned an already-interned node instead of
	// allocating a new one.
	GuardCacheHits uint64
	// SummaryHits / FuncsReanalyzed mirror BuildOptions: the incremental
	// summarize step's reuse split (hits + reanalyzed = total functions).
	SummaryHits     int
	FuncsReanalyzed int
	// FixpointExhausted reports that the outer fixpoint stopped at
	// MaxIterations while still making progress — the graph is a sound
	// under-approximation of the converged one, and results derived from
	// it are flagged degraded rather than silently final.
	FixpointExhausted bool
}

// Builder holds the state of the two dependence analyses and the resulting
// interference-aware VFG.
type Builder struct {
	Prog *ir.Program
	G    *vfg.Graph
	MHP  *mhp.Info
	opt  BuildOptions

	// pts is the guarded top-level points-to graph PG_top: variable →
	// object → condition.
	pts map[ir.VarID]map[ir.ObjID]*guard.Formula
	// ptsItems counts (var, obj) pairs, to detect fixpoint progress
	// item-wise (guard refinement alone does not retrigger iteration).
	ptsItems int

	// escaped is the EspObj set of Alg. 2.
	escaped map[ir.ObjID]bool

	// dirty marks threads whose points-to facts changed since their last
	// Alg. 1 pass; only dirty threads are re-analyzed in the outer
	// fixpoint (the thread-modular decomposition that keeps the iteration
	// cheap).
	dirty map[int]bool
	// useThreads maps a variable to the threads that use it (beyond its
	// defining thread) — new facts for the variable dirty those threads.
	useThreads map[ir.VarID][]int

	// Precomputed instruction lists reused across fixpoint iterations.
	storeInsts []*ir.Inst
	loadInsts  []*ir.Inst

	Stats BuildStats
}

// Build runs the full thread-modular dependence analysis and returns the
// builder holding the interference-aware VFG.
func Build(prog *ir.Program, opt BuildOptions) *Builder {
	b, _ := BuildContext(context.Background(), prog, opt)
	return b
}

// BuildContext is Build with cooperative cancellation: the outer
// Alg. 1/Alg. 2 fixpoint checks ctx between rounds and aborts with ctx's
// error (context.Canceled or context.DeadlineExceeded) when it is done.
// A round in flight always runs to completion — the checkpoints sit at the
// deterministic sequential merge points, so a canceled build never leaves
// a half-applied effect log behind; the partially built graph is simply
// discarded (nil is returned alongside the error).
func BuildContext(ctx context.Context, prog *ir.Program, opt BuildOptions) (*Builder, error) {
	opt = opt.withDefaults()
	mhpStart := time.Now()
	b := newBuilder(prog, opt)
	b.Stats.MHPTime = time.Since(mhpStart)
	b.Stats.SummaryHits = opt.SummaryHits
	b.Stats.FuncsReanalyzed = opt.FuncsReanalyzed
	workers := workerCount(opt.Workers)
	hits0, _ := guard.InternStats()
	start := time.Now()
	converged := false
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ferr := failpoint.Inject(failpoint.SiteBuildFixpoint); ferr != nil {
			return nil, ferr
		}
		b.Stats.Iterations++
		progressed := false
		// Phase 1 (Alg. 1): intra-thread data dependence, re-running only
		// the threads whose facts changed. The passes run concurrently over
		// a frozen snapshot of the points-to graph, each logging its effects
		// (new facts and edges) privately; the logs are then replayed in
		// thread-ID order, so the graph is byte-identical to a sequential
		// build for any worker count.
		todo := b.dirty
		b.dirty = make(map[int]bool)
		var threads []*ir.Thread
		for _, th := range prog.Threads {
			if todo[th.ID] {
				threads = append(threads, th)
			}
		}
		passes := make([]*passCtx, len(threads))
		pstart := time.Now()
		runIndexed(workers, len(threads), func(i int) {
			passes[i] = b.dataDepPass(threads[i])
		})
		b.Stats.ParallelTime += time.Since(pstart)
		for i := range passes {
			if b.applyEffects(&passes[i].eff) {
				progressed = true
			}
		}
		b.Stats.DataDepTime += time.Since(pstart)
		// Phase 2 (Alg. 2): escape + interference dependence.
		istart := time.Now()
		b.escapeAnalysis()
		if b.interferencePass(workers) {
			progressed = true
		}
		b.Stats.InterferTime += time.Since(istart)
		if !progressed {
			converged = true
			break
		}
	}
	b.Stats.FixpointExhausted = !converged
	b.Stats.BuildTime = time.Since(start)
	hits1, _ := guard.InternStats()
	b.Stats.GuardCacheHits = hits1 - hits0
	b.Stats.EscapedObjects = len(b.escaped)
	for kind, n := range b.G.EdgeCountByKind() {
		switch kind {
		case vfg.EdgeDirect, vfg.EdgeObj:
			b.Stats.DirectEdges += n
		case vfg.EdgeDD:
			b.Stats.DataDepEdges += n
		case vfg.EdgeInterference:
			b.Stats.InterferenceEdges += n
		}
	}
	return b, nil
}

// newBuilder allocates a Builder over prog with its indexes (MHP info,
// store/load lists, cross-thread use map) built and every thread dirty,
// ready for the first fixpoint round.
func newBuilder(prog *ir.Program, opt BuildOptions) *Builder {
	b := &Builder{
		Prog:       prog,
		G:          vfg.New(prog),
		MHP:        mhp.Analyze(prog),
		opt:        opt,
		pts:        make(map[ir.VarID]map[ir.ObjID]*guard.Formula),
		escaped:    make(map[ir.ObjID]bool),
		dirty:      make(map[int]bool),
		useThreads: make(map[ir.VarID][]int),
	}
	b.indexProgram()
	return b
}

// cap widens oversized guards to true (sound for may-analyses).
func (b *Builder) cap(f *guard.Formula) *guard.Formula {
	if f.Size() > b.opt.GuardCap {
		return guard.True()
	}
	return f
}

// indexProgram precomputes the store/load lists and the cross-thread use
// map, and marks every thread dirty for the first pass.
func (b *Builder) indexProgram() {
	addUse := func(v ir.VarID, thread int) {
		if v == 0 {
			return
		}
		def := b.Prog.Var(v).Def
		if def != ir.NoLabel && b.Prog.Inst(def).Thread == thread {
			return // same-thread use: covered by the defining thread's pass
		}
		for _, t := range b.useThreads[v] {
			if t == thread {
				return
			}
		}
		b.useThreads[v] = append(b.useThreads[v], thread)
	}
	for _, inst := range b.Prog.Insts() {
		switch inst.Op {
		case ir.OpStore:
			b.storeInsts = append(b.storeInsts, inst)
		case ir.OpLoad:
			b.loadInsts = append(b.loadInsts, inst)
		}
		addUse(inst.Val, inst.Thread)
		addUse(inst.Ptr, inst.Thread)
		for _, op := range inst.Ops {
			addUse(op, inst.Thread)
		}
	}
	for _, th := range b.Prog.Threads {
		b.dirty[th.ID] = true
	}
}

// markDirty flags every thread that must re-run Alg. 1 because v gained a
// points-to fact.
func (b *Builder) markDirty(v ir.VarID) {
	if def := b.Prog.Var(v).Def; def != ir.NoLabel {
		b.dirty[b.Prog.Inst(def).Thread] = true
	} else {
		b.dirty[0] = true // entry parameters belong to main
	}
	for _, t := range b.useThreads[v] {
		b.dirty[t] = true
	}
}

// ptsAdd joins (o, g) into pts(v); it reports whether the pair is new.
func (b *Builder) ptsAdd(v ir.VarID, o ir.ObjID, g *guard.Formula) bool {
	if g.IsFalse() {
		return false
	}
	m := b.pts[v]
	if m == nil {
		m = make(map[ir.ObjID]*guard.Formula)
		b.pts[v] = m
	}
	if old, ok := m[o]; ok {
		m[o] = b.cap(guard.Or(old, g))
		return false
	}
	m[o] = b.cap(g)
	b.ptsItems++
	b.markDirty(v)
	return true
}

// Pts returns the guarded points-to set of v (may be nil; callers must not
// modify it).
func (b *Builder) Pts(v ir.VarID) map[ir.ObjID]*guard.Formula { return b.pts[v] }

// Escaped reports whether object o escaped its thread.
func (b *Builder) Escaped(o ir.ObjID) bool { return b.escaped[o] }
