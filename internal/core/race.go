package core

import (
	"sort"

	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/smt"
	"canary/internal/vfg"
)

// Additional checker kinds expressible in the guarded value-flow framework
// (the "diversified" bug classes of §1, beyond the four source–sink ones).
const (
	// CheckDataRace reports pairs of conflicting shared-memory accesses
	// that no synchronization orders: MHP, overlapping alias guards, no
	// common lock, and neither execution order forced by the constraints.
	CheckDataRace = "data-race"
	// CheckDeadlock reports ab-ba lock-acquisition cycles between threads
	// that may run in parallel.
	CheckDeadlock = "deadlock"
)

// checkRaces enumerates conflicting access pairs per escaped object and
// validates each candidate with the same guard/order machinery as the
// source–sink checkers: a pair is racy when its guards are satisfiable in
// *both* orders (no synchronization forces one) and no common lock
// protects it.
func (b *Builder) checkRaces(opt CheckOptions) ([]Report, CheckStats) {
	var stats CheckStats
	type access struct {
		inst *ir.Inst
		cond *guard.Formula
	}
	byLoc := make(map[vfg.Loc][]access)
	for _, inst := range b.Prog.Insts() {
		var ptr ir.VarID
		switch inst.Op {
		case ir.OpStore, ir.OpLoad:
			ptr = inst.Ptr
		default:
			continue
		}
		for o, cond := range b.pts[ptr] {
			if b.escaped[o] {
				loc := vfg.Loc{Obj: o, Field: inst.Field}
				byLoc[loc] = append(byLoc[loc], access{inst, cond})
			}
		}
	}
	locs := make([]vfg.Loc, 0, len(byLoc))
	for l := range byLoc {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Obj != locs[j].Obj {
			return locs[i].Obj < locs[j].Obj
		}
		return locs[i].Field < locs[j].Field
	})

	var reports []Report
	seen := make(map[[2]ir.Label]bool)
	c := &checkCtx{b: b, kind: CheckDataRace, opt: opt}
	for _, loc := range locs {
		accs := byLoc[loc]
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				a1, a2 := accs[i], accs[j]
				if a1.inst.Op != ir.OpStore && a2.inst.Op != ir.OpStore {
					continue // at least one write
				}
				if a1.inst.Thread == a2.inst.Thread {
					continue
				}
				if a1.inst.Op != ir.OpStore {
					a1, a2 = a2, a1 // report the store as the source
				}
				key := [2]ir.Label{a1.inst.Label, a2.inst.Label}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if seen[key] {
					continue
				}
				if opt.EnableLocksetFilter() && len(ir.CommonLocks(a1.inst, a2.inst)) > 0 {
					continue // lockset-protected: ordered by the mutex
				}
				if !b.MHP.MHP(a1.inst.Label, a2.inst.Label) {
					continue
				}
				stats.PathsExamined++
				if ok, schedule := b.racePairRealizable(c, &stats, a1.inst, a2.inst, a1.cond, a2.cond, opt); ok {
					seen[key] = true
					reports = append(reports, Report{
						Kind:     CheckDataRace,
						Source:   c.site(a1.inst.Label),
						Sink:     c.site(a2.inst.Label),
						Schedule: schedule,
						Guard:    b.Prog.Pool.String(guard.And(a1.inst.Guard, a2.inst.Guard, a1.cond, a2.cond)),
						Result:   smt.Sat,
					})
				}
			}
		}
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Source.Label != reports[j].Source.Label {
			return reports[i].Source.Label < reports[j].Source.Label
		}
		return reports[i].Sink.Label < reports[j].Sink.Label
	})
	return reports, stats
}

// EnableLocksetFilter reports whether the lockset-based pre-filter applies
// (it is part of the lock extension).
func (o CheckOptions) EnableLocksetFilter() bool { return o.LockOrder }

// racePairRealizable checks that the conflicting pair's guards admit
// executions in both orders — if the synchronization constraints force one
// order, the accesses are not racy. On success it also returns a witness
// schedule built from the first direction's model.
func (b *Builder) racePairRealizable(c *checkCtx, stats *CheckStats, i1, i2 *ir.Inst, cond1, cond2 *guard.Formula, opt CheckOptions) (bool, []Site) {
	pool := b.Prog.Pool
	var schedule []Site
	bothOrders := [][2]ir.Label{
		{i1.Label, i2.Label},
		{i2.Label, i1.Label},
	}
	for _, dir := range bothOrders {
		q := &query{c: c}
		q.others = append(q.others, i1.Guard, i2.Guard, cond1, cond2)
		labels := []ir.Label{i1.Label, i2.Label}
		if opt.CondVarOrder {
			c.condVarConstraints(q, &labels)
		}
		labels = dedupLabels(labels)
		for x := 0; x < len(labels); x++ {
			for y := x + 1; y < len(labels); y++ {
				c.poFacts(q, labels[x], labels[y])
			}
		}
		q.facts = append(q.facts, dir)

		if opt.FactPropagation {
			closure := newOrderClosure(q.facts)
			if closure.cycle {
				stats.FactDecided++
				return false, nil // this order is impossible: synchronized
			}
			for i, d := range q.others {
				q.others[i] = closure.simplify(pool, d)
			}
		}
		all := q.assemble(pool)
		if all.IsFalse() {
			stats.SemiDecided++
			return false, nil
		}
		s := smt.New(pool)
		s.MaxConflicts = opt.MaxConflicts
		s.Assert(all)
		stats.SolverQueries++
		res := s.Solve()
		if res == smt.Unsat {
			stats.SolverUnsat++
			return false, nil
		}
		if schedule == nil {
			// Assign the interface only on Sat: a typed-nil *smt.Solver
			// would dodge buildSchedule's nil check.
			var model smt.AtomValuer
			if res == smt.Sat {
				model = s
			}
			schedule = c.buildSchedule(labels, q.facts, model)
		}
	}
	return true, schedule
}

// checkDeadlocks looks for the classic ab-ba pattern: a lock acquisition
// of m2 while holding m1 in one thread, MHP with an acquisition of m1
// while holding m2 in another, under satisfiable guards.
func (b *Builder) checkDeadlocks(opt CheckOptions) ([]Report, CheckStats) {
	var stats CheckStats
	type acq struct {
		inst *ir.Inst
		held string // a lock already held at this acquisition
	}
	var acqs []acq
	for _, inst := range b.Prog.Insts() {
		if inst.Op != ir.OpLock {
			continue
		}
		for _, h := range inst.Locks {
			if h.Name != inst.Mutex {
				acqs = append(acqs, acq{inst: inst, held: h.Name})
			}
		}
	}
	var reports []Report
	seen := make(map[[2]ir.Label]bool)
	c := &checkCtx{b: b, kind: CheckDeadlock, opt: opt}
	for i := 0; i < len(acqs); i++ {
		for j := 0; j < len(acqs); j++ {
			a1, a2 := acqs[i], acqs[j]
			if a1.inst.Thread == a2.inst.Thread {
				continue
			}
			// a1 holds X acquires Y; a2 holds Y acquires X.
			if a1.held != a2.inst.Mutex || a2.held != a1.inst.Mutex {
				continue
			}
			key := [2]ir.Label{a1.inst.Label, a2.inst.Label}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if seen[key] {
				continue
			}
			if !b.MHP.MHP(a1.inst.Label, a2.inst.Label) {
				continue
			}
			stats.PathsExamined++
			both := guard.And(a1.inst.Guard, a2.inst.Guard)
			if both.IsFalse() {
				stats.SemiDecided++
				continue
			}
			if sat, decided := guard.SemiDecide(both); decided && !sat {
				stats.SemiDecided++
				continue
			}
			s := smt.New(b.Prog.Pool)
			s.MaxConflicts = opt.MaxConflicts
			s.Assert(both)
			stats.SolverQueries++
			if s.Solve() == smt.Unsat {
				stats.SolverUnsat++
				continue
			}
			seen[key] = true
			reports = append(reports, Report{
				Kind:   CheckDeadlock,
				Source: c.site(a1.inst.Label),
				Sink:   c.site(a2.inst.Label),
				Guard:  b.Prog.Pool.String(both),
				Result: smt.Sat,
			})
		}
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Source.Label != reports[j].Source.Label {
			return reports[i].Source.Label < reports[j].Source.Label
		}
		return reports[i].Sink.Label < reports[j].Sink.Label
	})
	return reports, stats
}
