package core

import (
	"sort"

	"canary/internal/ir"
	"canary/internal/smt"
)

// buildSchedule reconstructs a concrete witness interleaving of the
// involved statements from a satisfying assignment: every order atom the
// solver set (plus the asserted facts) becomes an edge, and any topological
// order of the result is a feasible schedule of the bug. The paper stresses
// that value-flow reports are concise and debuggable; the schedule makes
// the offending interleaving explicit.
//
// s may be nil (fact-propagation decided the query, or cube-and-conquer
// produced no model); the facts alone still yield a valid — if less
// constrained — witness. It is either the live solver or a detached cached
// smt.Model — both answer ValueAtom identically for the same assignment.
func (c *checkCtx) buildSchedule(labels []ir.Label, facts [][2]ir.Label, s smt.AtomValuer) []Site {
	pool := c.b.Prog.Pool
	idx := make(map[ir.Label]int, len(labels))
	for i, l := range labels {
		idx[l] = i
	}
	n := len(labels)
	adj := make([][]int, n)
	indeg := make([]int, n)
	addEdge := func(a, z ir.Label) {
		ia, okA := idx[a]
		iz, okZ := idx[z]
		if !okA || !okZ || ia == iz {
			return
		}
		adj[ia] = append(adj[ia], iz)
		indeg[iz]++
	}
	for _, f := range facts {
		addEdge(f[0], f[1])
	}
	if s != nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, z := labels[i], labels[j]
				atom := pool.Order(int(a), int(z))
				if v, ok := s.ValueAtom(atom); ok {
					if v {
						addEdge(a, z)
					} else {
						addEdge(z, a) // ¬(a<z) ⟺ z<a over a total order
					}
				}
			}
		}
	}
	// Kahn's algorithm with deterministic (smallest-label-first)
	// tie-breaking. Cycles cannot happen for a satisfiable model; if the
	// fact set alone is used it is acyclic by construction. Defensively,
	// leftover nodes are appended in label order.
	order := make([]int, 0, n)
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sortByLabel := func(xs []int) {
		sort.Slice(xs, func(a, b int) bool { return labels[xs[a]] < labels[xs[b]] })
	}
	sortByLabel(ready)
	for len(ready) > 0 {
		cur := ready[0]
		ready = ready[1:]
		order = append(order, cur)
		changed := false
		for _, nxt := range adj[cur] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				ready = append(ready, nxt)
				changed = true
			}
		}
		if changed {
			sortByLabel(ready)
		}
	}
	if len(order) < n {
		seen := make(map[int]bool, len(order))
		for _, i := range order {
			seen[i] = true
		}
		var rest []int
		for i := 0; i < n; i++ {
			if !seen[i] {
				rest = append(rest, i)
			}
		}
		sortByLabel(rest)
		order = append(order, rest...)
	}
	out := make([]Site, 0, n)
	for _, i := range order {
		out = append(out, c.site(labels[i]))
	}
	return out
}
