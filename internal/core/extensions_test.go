package core

import (
	"testing"

	"canary/internal/ir"
	"canary/internal/lang"
)

// --- wait/notify (condition variables, §9 future work 1) ---

// condvarSafe: the consumer waits for the producer's notify, which happens
// only after the dangling slot has been repointed to a fresh object. The
// consumer can therefore never observe the freed payload.
const condvarSafe = `
func producer(cell) {
  b = malloc();
  fresh = malloc();
  *cell = b;
  free(b);
  *cell = fresh;
  notify(ready);
}
func consumer(cell) {
  wait(ready);
  c = *cell;
  print(*c);
}
func main() {
  slot = malloc();
  seed = malloc();
  *slot = seed;
  fork(t1, producer, slot);
  fork(t2, consumer, slot);
}
`

// condvarUnsafe is the same program with the notify issued *before* the
// free/overwrite: the wait no longer protects the consumer.
const condvarUnsafe = `
func producer(cell) {
  b = malloc();
  fresh = malloc();
  *cell = b;
  notify(ready);
  free(b);
  *cell = fresh;
}
func consumer(cell) {
  wait(ready);
  c = *cell;
  print(*c);
}
func main() {
  slot = malloc();
  seed = malloc();
  *slot = seed;
  fork(t1, producer, slot);
  fork(t2, consumer, slot);
}
`

func checkWith(t *testing.T, src string, mutate func(*CheckOptions)) []Report {
	t.Helper()
	b := build(t, src)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	if mutate != nil {
		mutate(&opt)
	}
	reports, _ := b.Check(opt)
	return reports
}

func TestCondVarPrunesProtectedConsumer(t *testing.T) {
	if got := checkWith(t, condvarSafe, nil); len(got) != 0 {
		t.Fatalf("wait/notify-protected consumer must not be reported: %v", got)
	}
}

func TestCondVarUnsafeVariantReported(t *testing.T) {
	if got := checkWith(t, condvarUnsafe, nil); len(got) != 1 {
		t.Fatalf("early notify leaves the UAF window open; want 1 report, got %d", len(got))
	}
}

func TestCondVarDisabledReportsSafeVariant(t *testing.T) {
	got := checkWith(t, condvarSafe, func(o *CheckOptions) { o.CondVarOrder = false })
	if len(got) != 1 {
		t.Fatalf("without the extension the safe variant looks buggy; want 1 report, got %d", len(got))
	}
}

func TestWaitWithoutAnyNotifyKillsPath(t *testing.T) {
	// No notify exists: the wait never returns, so the consumer's use is
	// unreachable and nothing is reported.
	src := `
func producer(cell) {
  b = malloc();
  *cell = b;
  free(b);
}
func consumer(cell) {
  wait(never);
  c = *cell;
  print(*c);
}
func main() {
  slot = malloc();
  seed = malloc();
  *slot = seed;
  fork(t1, producer, slot);
  fork(t2, consumer, slot);
}
`
	if got := checkWith(t, src, nil); len(got) != 0 {
		t.Fatalf("a wait with no notify can never be passed: %v", got)
	}
}

// --- relaxed memory models (§9 future work 2) ---

// psoShield is the classic message-passing pattern broken by partial store
// order: the producer publishes b, overwrites the slot through an aliased
// pointer, frees b, and only then signals the reader, who waits before
// loading. Under SC the reader can only observe the fresh object. Under
// PSO the two stores (syntactically different pointer variables, so the
// analysis cannot prove they hit the same location) may reorder in the
// store buffer: the overwrite can drain before the publish, letting the
// post-wait reader observe the freed payload.
const psoShield = `
func producer(cell) {
  b = malloc();
  fresh = malloc();
  *cell = b;
  alias = cell;
  *alias = fresh;
  free(b);
  notify(done);
}
func reader(cell) {
  wait(done);
  c = *cell;
  print(*c);
}
func main() {
  slot = malloc();
  seed = malloc();
  *slot = seed;
  fork(t1, producer, slot);
  fork(t2, reader, slot);
}
`

func TestPSOShieldSafeUnderSC(t *testing.T) {
	got := checkWith(t, psoShield, func(o *CheckOptions) { o.MemoryModel = MemSC })
	if len(got) != 0 {
		t.Fatalf("under SC the overwrite shields the freed payload: %v", got)
	}
}

func TestPSOShieldReportedUnderPSO(t *testing.T) {
	got := checkWith(t, psoShield, func(o *CheckOptions) { o.MemoryModel = MemPSO })
	if len(got) != 1 {
		t.Fatalf("under PSO the stores may reorder; want 1 report, got %d", len(got))
	}
}

func TestTSOKeepsStoreStoreOrder(t *testing.T) {
	// TSO only relaxes store→load; the store→store shield still holds.
	got := checkWith(t, psoShield, func(o *CheckOptions) { o.MemoryModel = MemTSO })
	if len(got) != 0 {
		t.Fatalf("TSO keeps store→store order; want 0 reports, got %d", len(got))
	}
}

func TestSameLocationStoresStayOrderedUnderPSO(t *testing.T) {
	// When both stores go through the same pointer variable the analysis
	// knows they hit the same location, which stays ordered even under PSO.
	src := `
func reader(cell) {
  c = *cell;
  print(*c);
}
func main() {
  slot = malloc();
  b = malloc();
  fresh = malloc();
  *slot = b;
  free(b);
  *slot = fresh;
  fork(t, reader, slot);
}
`
	got := checkWith(t, src, func(o *CheckOptions) { o.MemoryModel = MemPSO })
	if len(got) != 0 {
		t.Fatalf("same-location stores are ordered under every model: %v", got)
	}
}

func TestRelaxedPairClassification(t *testing.T) {
	src := `
func main() {
  a = malloc();
  bslot = malloc();
  v = malloc();
  *a = v;
  w = *bslot;
  *bslot = v;
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := Build(prog, DefaultBuild())
	var store1, load, store2 ir.Label
	for _, i := range prog.Insts() {
		switch i.Op {
		case ir.OpStore:
			if store1 == 0 && store2 == 0 {
				store1 = i.Label
			} else {
				store2 = i.Label
			}
		case ir.OpLoad:
			load = i.Label
		}
	}
	mk := func(m MemoryModel) *checkCtx {
		opt := DefaultCheck()
		opt.MemoryModel = m
		return &checkCtx{b: b, opt: opt}
	}
	if mk(MemSC).relaxedPair(store1, load) {
		t.Error("SC relaxes nothing")
	}
	if !mk(MemTSO).relaxedPair(store1, load) {
		t.Error("TSO must relax store→load on different locations")
	}
	if mk(MemTSO).relaxedPair(store1, store2) {
		t.Error("TSO must keep store→store")
	}
	if !mk(MemPSO).relaxedPair(store1, store2) {
		t.Error("PSO must relax store→store on different locations")
	}
	if mk(MemPSO).relaxedPair(load, store2) {
		t.Error("load→store stays ordered under TSO/PSO")
	}
}

func TestMemoryModelString(t *testing.T) {
	if MemSC.String() != "sc" || MemTSO.String() != "tso" || MemPSO.String() != "pso" {
		t.Fatal("model rendering broken")
	}
}
