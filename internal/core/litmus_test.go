package core

import (
	"testing"

	"canary/internal/ir"
	"canary/internal/smt"
)

// Litmus tests for the TSO/PSO extension: the classic store-buffering (SB),
// load-buffering (LB) and message-passing (MP) shapes, checked directly at
// the order-constraint level. The expected verdicts follow the standard
// memory-model litmus outcomes:
//
//	SB  (r1=0 ∧ r2=0):  forbidden under SC; allowed under TSO and PSO
//	LB  (r1=1 ∧ r2=1):  forbidden under SC, TSO and PSO
//	MP  (stale data):   forbidden under SC and TSO; allowed under PSO
//
// Each test lowers a two-thread program, generates the Φ_po facts under the
// selected model, adds the litmus observation as required orderings, and
// asks the solver whether the combination is realizable.

// litmusLabels extracts per-thread store and load labels in program order.
func litmusLabels(t *testing.T, b *Builder, thread int) (stores, loads []ir.Label) {
	t.Helper()
	for _, inst := range b.Prog.Insts() {
		if inst.Thread != thread {
			continue
		}
		switch inst.Op {
		case ir.OpStore:
			stores = append(stores, inst.Label)
		case ir.OpLoad:
			loads = append(loads, inst.Label)
		}
	}
	return stores, loads
}

// litmusSolve checks whether the required orderings are consistent with the
// program order under the given model.
func litmusSolve(t *testing.T, b *Builder, model MemoryModel, involved []ir.Label, required [][2]ir.Label) smt.Result {
	t.Helper()
	opt := DefaultCheck()
	opt.MemoryModel = model
	c := &checkCtx{b: b, opt: opt}
	q := &query{c: c}
	for i := 0; i < len(involved); i++ {
		for j := i + 1; j < len(involved); j++ {
			c.poFacts(q, involved[i], involved[j])
		}
	}
	q.facts = append(q.facts, required...)
	s := smt.New(b.Prog.Pool)
	s.Assert(q.assemble(b.Prog.Pool))
	return s.Solve()
}

const sbProgram = `
func t1(x, y) {
  one1 = malloc();
  *x = one1;
  r1 = *y;
  print(*r1);
}
func t2(x, y) {
  one2 = malloc();
  *y = one2;
  r2 = *x;
  print(*r2);
}
func main() {
  x = malloc();
  y = malloc();
  ix = malloc();
  iy = malloc();
  *x = ix;
  *y = iy;
  fork(ta, t1, x, y);
  fork(tb, t2, x, y);
}
`

func TestLitmusStoreBuffering(t *testing.T) {
	b := build(t, sbProgram)
	s1, l1 := litmusLabels(t, b, 1)
	s2, l2 := litmusLabels(t, b, 2)
	if len(s1) != 1 || len(l1) != 1 || len(s2) != 1 || len(l2) != 1 {
		t.Fatalf("unexpected litmus layout: %v %v %v %v", s1, l1, s2, l2)
	}
	involved := []ir.Label{s1[0], l1[0], s2[0], l2[0]}
	// Observation r1=0 ∧ r2=0: each load precedes the other thread's store.
	required := [][2]ir.Label{{l1[0], s2[0]}, {l2[0], s1[0]}}

	if got := litmusSolve(t, b, MemSC, involved, required); got != smt.Unsat {
		t.Errorf("SB forbidden under SC, got %v", got)
	}
	if got := litmusSolve(t, b, MemTSO, involved, required); got != smt.Sat {
		t.Errorf("SB allowed under TSO, got %v", got)
	}
	if got := litmusSolve(t, b, MemPSO, involved, required); got != smt.Sat {
		t.Errorf("SB allowed under PSO, got %v", got)
	}
}

const lbProgram = `
func t1(x, y) {
  r1 = *x;
  print(*r1);
  one1 = malloc();
  *y = one1;
}
func t2(x, y) {
  r2 = *y;
  print(*r2);
  one2 = malloc();
  *x = one2;
}
func main() {
  x = malloc();
  y = malloc();
  ix = malloc();
  iy = malloc();
  *x = ix;
  *y = iy;
  fork(ta, t1, x, y);
  fork(tb, t2, x, y);
}
`

func TestLitmusLoadBuffering(t *testing.T) {
	b := build(t, lbProgram)
	s1, l1 := litmusLabels(t, b, 1)
	s2, l2 := litmusLabels(t, b, 2)
	involved := []ir.Label{s1[0], l1[0], s2[0], l2[0]}
	// Observation r1=1 ∧ r2=1: each load reads the other thread's store.
	required := [][2]ir.Label{{s2[0], l1[0]}, {s1[0], l2[0]}}

	for _, model := range []MemoryModel{MemSC, MemTSO, MemPSO} {
		if got := litmusSolve(t, b, model, involved, required); got != smt.Unsat {
			t.Errorf("LB forbidden under %v, got %v", model, got)
		}
	}
}

const mpProgram = `
func writer(data, flag) {
  payload = malloc();
  *data = payload;
  raised = malloc();
  *flag = raised;
}
func readerf(data, flag) {
  f = *flag;
  print(*f);
  d = *data;
  print(*d);
}
func main() {
  data = malloc();
  flag = malloc();
  id = malloc();
  if0 = malloc();
  *data = id;
  *flag = if0;
  fork(ta, writer, data, flag);
  fork(tb, readerf, data, flag);
}
`

func TestLitmusMessagePassing(t *testing.T) {
	b := build(t, mpProgram)
	ws, _ := litmusLabels(t, b, 1) // writer: data store, flag store
	_, rl := litmusLabels(t, b, 2) // reader: flag load, data load
	if len(ws) != 2 || len(rl) != 2 {
		t.Fatalf("unexpected MP layout: %v %v", ws, rl)
	}
	sData, sFlag := ws[0], ws[1]
	lFlag, lData := rl[0], rl[1]
	involved := []ir.Label{sData, sFlag, lFlag, lData}
	// Observation: the reader sees the raised flag but stale data — the
	// flag store precedes the flag load, yet the data load precedes the
	// data store.
	required := [][2]ir.Label{{sFlag, lFlag}, {lData, sData}}

	if got := litmusSolve(t, b, MemSC, involved, required); got != smt.Unsat {
		t.Errorf("MP stale read forbidden under SC, got %v", got)
	}
	if got := litmusSolve(t, b, MemTSO, involved, required); got != smt.Unsat {
		t.Errorf("MP stale read forbidden under TSO (store→store kept), got %v", got)
	}
	if got := litmusSolve(t, b, MemPSO, involved, required); got != smt.Sat {
		t.Errorf("MP stale read allowed under PSO, got %v", got)
	}
}
