package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/smt"
)

func TestOrderClosureCycleDetection(t *testing.T) {
	c := newOrderClosure([][2]ir.Label{{1, 2}, {2, 3}, {3, 1}})
	if !c.cycle {
		t.Fatal("3-cycle not detected")
	}
	c2 := newOrderClosure([][2]ir.Label{{1, 2}, {2, 3}, {1, 3}})
	if c2.cycle {
		t.Fatal("acyclic facts misreported as cyclic")
	}
	if !c2.reaches(1, 3) || !c2.reaches(1, 2) || c2.reaches(3, 1) {
		t.Fatal("closure reachability wrong")
	}
	c3 := newOrderClosure([][2]ir.Label{{5, 5}})
	if !c3.cycle {
		t.Fatal("reflexive fact is a cycle")
	}
}

func TestOrderClosureSimplify(t *testing.T) {
	pool := guard.NewPool()
	c := newOrderClosure([][2]ir.Label{{1, 2}, {2, 3}})
	implied := guard.Var(pool.Order(1, 3))
	contradicted := guard.Var(pool.Order(3, 1))
	open := guard.Var(pool.Order(7, 8))
	boolAtom := guard.Var(pool.Bool("θ"))

	if got := c.simplify(pool, implied); !got.IsTrue() {
		t.Errorf("implied literal should fold to true, got %s", pool.String(got))
	}
	if got := c.simplify(pool, contradicted); !got.IsFalse() {
		t.Errorf("contradicted literal should fold to false, got %s", pool.String(got))
	}
	if got := c.simplify(pool, open); got != open {
		t.Errorf("unrelated literal must survive")
	}
	// Disjunction with one implied literal folds to true.
	if got := c.simplify(pool, guard.Or(contradicted, implied)); !got.IsTrue() {
		t.Errorf("disjunction should fold to true, got %s", pool.String(got))
	}
	// Disjunction of contradicted literals folds to false.
	if got := c.simplify(pool, guard.Or(contradicted, guard.Var(pool.Order(2, 1)))); !got.IsFalse() {
		t.Errorf("all-contradicted disjunction should be false, got %s", pool.String(got))
	}
	// The wait/notify shape: Or(And(g, order)) keeps the boolean part.
	shaped := guard.Or(guard.And(boolAtom, implied))
	if got := c.simplify(pool, shaped); got != boolAtom {
		t.Errorf("And(g, implied) should reduce to g, got %s", pool.String(got))
	}
	// Negation of an implied literal is false.
	if got := c.simplify(pool, guard.Not(implied)); !got.IsFalse() {
		t.Errorf("¬implied should be false, got %s", pool.String(got))
	}
}

// Property: simplification against the closure is equisatisfiable with the
// original formula conjoined with the facts — checked against the solver.
func TestQuickOrderClosureEquisat(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pool := guard.NewPool()
		const labels = 6
		// Random acyclic fact set over an underlying total order.
		perm := r.Perm(labels)
		pos := make([]int, labels)
		for i, p := range perm {
			pos[p] = i
		}
		var facts [][2]ir.Label
		for i := 0; i < r.Intn(6)+1; i++ {
			a, b := r.Intn(labels), r.Intn(labels)
			if a == b {
				continue
			}
			if pos[a] > pos[b] {
				a, b = b, a
			}
			facts = append(facts, [2]ir.Label{ir.Label(a), ir.Label(b)})
		}
		closure := newOrderClosure(facts)
		if closure.cycle {
			return true // construction guarantees acyclicity; defensive
		}
		// Random disjunction of order literals.
		var djs []*guard.Formula
		for i := 0; i < r.Intn(3)+1; i++ {
			var lits []*guard.Formula
			for j := 0; j < r.Intn(3)+1; j++ {
				a, b := r.Intn(labels), r.Intn(labels)
				lits = append(lits, guard.Var(pool.Order(a, b)))
			}
			djs = append(djs, guard.Or(lits...))
		}
		factFs := make([]*guard.Formula, 0, len(facts))
		for _, f := range facts {
			factFs = append(factFs, guard.Var(pool.Order(int(f[0]), int(f[1]))))
		}

		solve := func(extra []*guard.Formula) smt.Result {
			s := smt.New(pool)
			for _, f := range factFs {
				s.Assert(f)
			}
			for _, f := range extra {
				s.Assert(f)
			}
			return s.Solve()
		}
		plain := solve(djs)
		simplified := make([]*guard.Formula, len(djs))
		for i, d := range djs {
			simplified[i] = closure.simplify(pool, d)
		}
		simp := solve(simplified)
		if plain != simp {
			t.Logf("seed %d: plain=%v simplified=%v", seed, plain, simp)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFactPropagationConsistency: the checker's verdicts are identical with
// the customized decision procedure on and off, but the solver works less.
func TestFactPropagationConsistency(t *testing.T) {
	for _, src := range []string{fig2, fig2Buggy, condvarSafe, condvarUnsafe, psoShield} {
		b := build(t, src)
		on := DefaultCheck()
		on.Checkers = []string{CheckUAF}
		rOn, sOn := b.Check(on)

		off := DefaultCheck()
		off.Checkers = []string{CheckUAF}
		off.FactPropagation = false
		rOff, sOff := b.Check(off)

		if len(rOn) != len(rOff) {
			t.Fatalf("fact propagation changed the verdict: %d vs %d reports", len(rOn), len(rOff))
		}
		if sOn.SolverQueries > sOff.SolverQueries {
			t.Errorf("fact propagation should not increase solver queries (%d vs %d)",
				sOn.SolverQueries, sOff.SolverQueries)
		}
	}
}

func TestFactDecidedCounted(t *testing.T) {
	// The plain true bug needs no disjunctive reasoning: the fact closure
	// should settle it without the solver.
	b := build(t, fig2Buggy)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	_, stats := b.Check(opt)
	if stats.FactDecided == 0 && stats.SolverQueries > 0 {
		t.Log("note: query still reached the solver; acceptable but unexpected")
	}
}
