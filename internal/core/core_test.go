package core

import (
	"testing"

	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/vfg"
)

// fig2 is the motivating bug-free program of the paper (Fig. 2a): the load
// in main is guarded by θ1, the store in thread1 by ¬θ1, so the apparent
// inter-thread use-after-free is irrealizable.
const fig2 = `
func main(a) {
  x = malloc();        // o1
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}

func thread1(y) {
  b = malloc();        // o2
  if (!theta1) {
    *y = b;
    free(b);
  }
}
`

// fig2Buggy flips thread1's branch condition to θ1: with compatible branch
// conditions the use-after-free is realizable.
const fig2Buggy = `
func main(a) {
  x = malloc();
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}

func thread1(y) {
  b = malloc();
  if (theta1) {
    *y = b;
    free(b);
  }
}
`

func build(t *testing.T, src string) *Builder {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog, DefaultBuild())
}

func checkUAF(t *testing.T, b *Builder) ([]Report, CheckStats) {
	t.Helper()
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	return b.Check(opt)
}

func TestFig2NoFalsePositive(t *testing.T) {
	b := build(t, fig2)
	reports, _ := checkUAF(t, b)
	if len(reports) != 0 {
		t.Fatalf("Fig. 2 is bug-free; got %d reports: %v", len(reports), reports)
	}
}

func TestFig2EdgeFilteredBySemiDecision(t *testing.T) {
	// The candidate interference edge b@store → c@load carries the alias
	// guard θ1 ∧ ¬θ1; the construction-time semi-decision filter (§5.2,
	// opt. 1) refutes it before it ever reaches the VFG.
	b := build(t, fig2)
	if b.Stats.FilteredEdges == 0 {
		t.Fatal("the contradictory Fig. 2 edge should be counted as filtered")
	}
	if b.Stats.InterferenceEdges != 0 {
		t.Fatalf("no realizable interference edge exists in Fig. 2; got %d",
			b.Stats.InterferenceEdges)
	}
}

func TestFig2BuggyVariantReported(t *testing.T) {
	b := build(t, fig2Buggy)
	reports, _ := checkUAF(t, b)
	if len(reports) != 1 {
		t.Fatalf("want exactly 1 UAF report, got %d: %v", len(reports), reports)
	}
	r := reports[0]
	if r.Kind != CheckUAF {
		t.Errorf("kind = %s", r.Kind)
	}
	if r.Source.Thread == r.Sink.Thread {
		t.Errorf("inter-thread bug must span threads: %+v", r)
	}
	if len(r.Path) == 0 || r.Guard == "" {
		t.Errorf("report should carry a path and guard: %+v", r)
	}
}

func TestEscapeAnalysis(t *testing.T) {
	b := build(t, fig2)
	// o1 (passed to fork) and o2 (stored into escaped o1) both escape.
	var o1, o2 ir.ObjID
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjHeap {
			if o1 == 0 {
				o1 = o.ID
			} else {
				o2 = o.ID
			}
		}
	}
	if !b.Escaped(o1) {
		t.Error("o1 is passed to the fork and must escape")
	}
	if !b.Escaped(o2) {
		t.Error("o2 is stored into escaped o1 and must escape (the cyclic enlargement)")
	}
}

func TestLocalObjectDoesNotEscape(t *testing.T) {
	b := build(t, `
func w() { q = malloc(); }
func main() {
  p = malloc();
  fork(t, w);
}
`)
	escaped := 0
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjHeap && b.Escaped(o.ID) {
			escaped++
		}
	}
	if escaped != 0 {
		t.Fatalf("thread-local objects must not escape; %d escaped", escaped)
	}
}

func TestPtedContainsBothPointers(t *testing.T) {
	b := build(t, fig2)
	// Pted(o1) must contain both x (main) and y (thread1) — Example 4.2.
	var o1 ir.ObjID
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjHeap {
			o1 = o.ID
			break
		}
	}
	pted := b.Pted(o1)
	names := map[string]bool{}
	for n := range pted {
		node := b.G.Node(n)
		if node.Kind == vfg.NodeVar {
			names[b.Prog.VarName(node.Var)[:2]] = true
		}
	}
	if !names["x."] || !names["y."] {
		t.Fatalf("Pted(o1) should contain x and y, got %v", names)
	}
}

func TestTrueInterThreadUAF(t *testing.T) {
	b := build(t, `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`)
	reports, _ := checkUAF(t, b)
	if len(reports) != 1 {
		t.Fatalf("want 1 UAF report, got %d", len(reports))
	}
}

func TestUseBeforeForkNotReported(t *testing.T) {
	// The load happens strictly before the fork, so it can never observe
	// the child's store: MHP pruning (and program order) kill the path.
	b := build(t, `
func main() {
  x = malloc();
  c = *x;
  print(*c);
  fork(t, worker, x);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`)
	reports, _ := checkUAF(t, b)
	if len(reports) != 0 {
		t.Fatalf("load precedes fork; want 0 reports, got %d: %v", len(reports), reports)
	}
}

func TestOverwriteShieldedFlowPrunedByOrders(t *testing.T) {
	// t1 stores b (then frees it) and is joined; main overwrites the slot
	// with a fresh object before forking t2, whose load therefore can never
	// observe b: the intervening-store constraint of Φ_ls, combined with
	// the fork/join program order, refutes the path. MHP pruning is
	// disabled so that the edge exists and the refutation must come from
	// the lazy order constraints (the O3 < O13 mechanism of Fig. 2).
	src := `
func t1(y) {
  b = malloc();
  *y = b;
  free(b);
}
func t2(z) {
  c = *z;
  print(*c);
}
func main() {
  x = malloc();
  fork(ta, t1, x);
  join(ta);
  a = malloc();
  *x = a;
  fork(tb, t2, x);
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := Build(prog, BuildOptions{EnableMHP: false})
	reports, stats := checkUAF(t, b)
	if len(reports) != 0 {
		t.Fatalf("overwrite-shielded flow must be refuted by order constraints: %v", reports)
	}
	if stats.SolverUnsat == 0 && stats.SemiDecided == 0 {
		t.Fatal("a candidate path should have been examined and refuted")
	}
}

func TestFreeBetweenStoreAndOverwriteReported(t *testing.T) {
	// free(b) happens between the store of b and the overwrite: the load
	// can land in the (free .. overwrite) window — a realizable UAF.
	b := build(t, `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  a = malloc();
  *y = b;
  free(b);
  *y = a;
}
`)
	reports, _ := checkUAF(t, b)
	if len(reports) != 1 {
		t.Fatalf("want 1 report (window between free and overwrite), got %d", len(reports))
	}
}

func TestLockOrderExtensionPrunes(t *testing.T) {
	// The store of b, its free, and the overwrite all happen inside one
	// critical section; the load runs under the same lock. The load can
	// therefore never land between the store and the overwrite: with the
	// lock/unlock extension the path is irrealizable.
	src := `
global mu;
func main() {
  x = malloc();
  fork(t, worker, x);
  lock(mu);
  c = *x;
  print(*c);
  unlock(mu);
}
func worker(y) {
  b = malloc();
  a = malloc();
  lock(mu);
  *y = b;
  free(b);
  *y = a;
  unlock(mu);
}
`
	b := build(t, src)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	opt.LockOrder = true
	withLocks, _ := b.Check(opt)
	if len(withLocks) != 0 {
		t.Fatalf("lock extension should prune the report, got %d", len(withLocks))
	}

	b2 := build(t, src)
	opt2 := DefaultCheck()
	opt2.Checkers = []string{CheckUAF}
	opt2.LockOrder = false
	withoutLocks, _ := b2.Check(opt2)
	if len(withoutLocks) != 1 {
		t.Fatalf("without the lock extension the report should appear, got %d", len(withoutLocks))
	}
}

func TestNullDerefInterThread(t *testing.T) {
	b := build(t, `
func main() {
  x = malloc();
  p = malloc();
  *x = p;
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  n = null;
  *y = n;
}
`)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckNullDeref}
	reports, _ := b.Check(opt)
	if len(reports) != 1 {
		t.Fatalf("want 1 null-deref report, got %d", len(reports))
	}
}

func TestTaintLeakInterThread(t *testing.T) {
	b := build(t, `
func main() {
  x = malloc();
  fork(t, producer, x);
  v = *x;
  w = v + k;
  sink(w);
}
func producer(y) {
  s = taint();
  *y = s;
}
`)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckTaintLeak}
	reports, _ := b.Check(opt)
	if len(reports) != 1 {
		t.Fatalf("want 1 taint-leak report (through the binop), got %d", len(reports))
	}
}

func TestDoubleFreeInterThread(t *testing.T) {
	b := build(t, `
func main() {
  p = malloc();
  fork(t, w, p);
  free(p);
}
func w(q) {
  free(q);
}
`)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckDoubleFree}
	reports, _ := b.Check(opt)
	if len(reports) != 1 {
		t.Fatalf("want 1 double-free report, got %d: %v", len(reports), reports)
	}
}

func TestIntraThreadRequiresOptOut(t *testing.T) {
	src := `
func main() {
  p = malloc();
  free(p);
  print(*p);
}
`
	b := build(t, src)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	inter, _ := b.Check(opt)
	if len(inter) != 0 {
		t.Fatalf("intra-thread UAF must be filtered in inter-thread mode, got %d", len(inter))
	}
	opt.RequireInterThread = false
	intra, _ := b.Check(opt)
	if len(intra) != 1 {
		t.Fatalf("with RequireInterThread off the sequential UAF should appear, got %d", len(intra))
	}
}

func TestParallelWorkersSameResult(t *testing.T) {
	b := build(t, fig2Buggy)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	seq, _ := b.Check(opt)
	opt.Workers = 4
	par, _ := b.Check(opt)
	if len(seq) != len(par) {
		t.Fatalf("parallel checking changed results: %d vs %d", len(seq), len(par))
	}
}

func TestCubeAndConquerSameResult(t *testing.T) {
	b := build(t, fig2Buggy)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckUAF}
	plain, _ := b.Check(opt)
	opt.CubeAndConquer = true
	cube, _ := b.Check(opt)
	if len(plain) != len(cube) {
		t.Fatalf("cube-and-conquer changed results: %d vs %d", len(plain), len(cube))
	}
}

func TestMHPPruningReducesEdges(t *testing.T) {
	src := `
func main() {
  x = malloc();
  c = *x;
  print(*c);
  fork(t, worker, x);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog1, _ := ir.Lower(ast, ir.DefaultOptions())
	withMHP := Build(prog1, BuildOptions{EnableMHP: true})
	prog2, _ := ir.Lower(ast, ir.DefaultOptions())
	withoutMHP := Build(prog2, BuildOptions{EnableMHP: false})
	if withMHP.Stats.InterferenceEdges >= withoutMHP.Stats.InterferenceEdges {
		t.Fatalf("MHP pruning should reduce interference edges: %d vs %d",
			withMHP.Stats.InterferenceEdges, withoutMHP.Stats.InterferenceEdges)
	}
}

func TestUAFThroughProceduralSummary(t *testing.T) {
	// The allocator chain exceeds the inlining depth; the Trans(F)
	// summaries still carry the pointer to the shared cell, so the
	// inter-thread UAF is found.
	src := `
func mk() { p = malloc(); return p; }
func l1() { q = mk(); return q; }
func l2() { q = l1(); return q; }
func l3() { q = l2(); return q; }
func worker(cell) {
  b = l3();
  *cell = b;
  free(b);
}
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.Options{InlineDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := Build(prog, DefaultBuild())
	reports, _ := checkUAF(t, b)
	if len(reports) != 1 {
		t.Fatalf("summary-carried allocation should be tracked; got %d reports", len(reports))
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	b := build(t, fig2)
	if b.Stats.Iterations == 0 || b.Stats.DirectEdges == 0 {
		t.Fatalf("stats not populated: %+v", b.Stats)
	}
	if b.Stats.EscapedObjects == 0 {
		t.Error("escaped objects should be counted")
	}
}

func TestReportString(t *testing.T) {
	b := build(t, fig2Buggy)
	reports, _ := checkUAF(t, b)
	if len(reports) == 0 {
		t.Fatal("need a report")
	}
	if s := reports[0].String(); s == "" {
		t.Error("empty report rendering")
	}
}
