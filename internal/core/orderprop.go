package core

import (
	"canary/internal/guard"
	"canary/internal/ir"
)

// orderClosure is the customized decision procedure of the paper's §9
// (future work 3): the program-order facts of one query are fixed unit
// constraints, so their transitive closure can be computed once and used
// to (a) refute the whole query when the facts already form a cycle, and
// (b) simplify the order disjunctions (intervening-store competitors,
// lock sections, wait/notify obligations) before anything reaches the CDCL
// solver — deciding many queries outright and shrinking the rest.
type orderClosure struct {
	adj   map[ir.Label][]ir.Label
	memo  map[ir.Label]map[ir.Label]bool
	cycle bool
}

func newOrderClosure(facts [][2]ir.Label) *orderClosure {
	c := &orderClosure{
		adj:  make(map[ir.Label][]ir.Label),
		memo: make(map[ir.Label]map[ir.Label]bool),
	}
	for _, f := range facts {
		if f[0] == f[1] {
			c.cycle = true
			continue
		}
		c.adj[f[0]] = append(c.adj[f[0]], f[1])
	}
	for _, f := range facts {
		if c.reaches(f[1], f[0]) {
			c.cycle = true
			break
		}
	}
	return c
}

// reaches reports whether the facts force a < b (transitively).
func (c *orderClosure) reaches(a, b ir.Label) bool {
	if a == b {
		return false
	}
	if m, ok := c.memo[a]; ok {
		return m[b]
	}
	// DFS from a, memoizing the full reachable set.
	seen := make(map[ir.Label]bool)
	stack := append([]ir.Label(nil), c.adj[a]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, c.adj[n]...)
	}
	c.memo[a] = seen
	return seen[b]
}

// simplify rewrites a constraint using the fact closure: order literals
// implied by the facts become true, contradicted ones become false; the
// guard constructors then fold the result. Non-order parts pass through
// unchanged. Only the disjunctive skeleton produced by the checker
// (Or / And / Not / Var) is traversed.
func (c *orderClosure) simplify(pool *guard.Pool, f *guard.Formula) *guard.Formula {
	switch f.Kind() {
	case guard.KVar:
		if from, to, ok := pool.OrderAtom(f.Atom()); ok {
			if c.reaches(ir.Label(from), ir.Label(to)) {
				return guard.True()
			}
			if c.reaches(ir.Label(to), ir.Label(from)) {
				return guard.False()
			}
		}
		return f
	case guard.KNot:
		return guard.Not(c.simplify(pool, f.Subs()[0]))
	case guard.KAnd:
		subs := f.Subs()
		out := make([]*guard.Formula, len(subs))
		for i, s := range subs {
			out[i] = c.simplify(pool, s)
		}
		return guard.And(out...)
	case guard.KOr:
		subs := f.Subs()
		out := make([]*guard.Formula, len(subs))
		for i, s := range subs {
			out[i] = c.simplify(pool, s)
		}
		return guard.Or(out...)
	}
	return f
}
