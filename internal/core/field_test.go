package core

import (
	"testing"

	"canary/internal/ir"
	"canary/internal/lang"
)

// Field sensitivity: distinct fields of one shared record never alias.

const fieldUAF = `
func producer(rec) {
  b = malloc();
  rec.data = b;
  free(b);
}
func consumer(rec) {
  c = rec.data;
  print(*c);
}
func main() {
  rec = malloc();
  seed = malloc();
  rec.data = seed;
  fork(t1, producer, rec);
  fork(t2, consumer, rec);
}
`

const fieldDisjoint = `
func producer(rec) {
  b = malloc();
  rec.left = b;
  free(b);
}
func consumer(rec) {
  c = rec.right;
  print(*c);
}
func main() {
  rec = malloc();
  seedl = malloc();
  seedr = malloc();
  rec.left = seedl;
  rec.right = seedr;
  fork(t1, producer, rec);
  fork(t2, consumer, rec);
}
`

func TestFieldUAFDetected(t *testing.T) {
	b := build(t, fieldUAF)
	reports, _ := checkUAF(t, b)
	if len(reports) != 1 {
		t.Fatalf("same-field flow should be reported: got %d", len(reports))
	}
}

func TestDisjointFieldsDoNotAlias(t *testing.T) {
	b := build(t, fieldDisjoint)
	reports, _ := checkUAF(t, b)
	if len(reports) != 0 {
		t.Fatalf("distinct fields must not alias: %v", reports)
	}
	if b.Stats.InterferenceEdges != 0 {
		t.Fatalf("no interference edge should connect .left to .right, got %d",
			b.Stats.InterferenceEdges)
	}
}

func TestFieldAndWholeCellDisjoint(t *testing.T) {
	// A whole-cell store (*p = v) and a field load (p.f) are distinct
	// locations in this model.
	src := `
func producer(rec) {
  b = malloc();
  *rec = b;
  free(b);
}
func consumer(rec) {
  c = rec.f;
  print(*c);
}
func main() {
  rec = malloc();
  seed = malloc();
  rec.f = seed;
  fork(t1, producer, rec);
  fork(t2, consumer, rec);
}
`
	b := build(t, src)
	reports, _ := checkUAF(t, b)
	if len(reports) != 0 {
		t.Fatalf("whole-cell and field locations are distinct: %v", reports)
	}
}

func TestFieldOverwriteShield(t *testing.T) {
	// The load–store order machinery works per field: an overwrite of the
	// same field shields it; an overwrite of a different field does not.
	shielded := `
func t1(y) {
  b = malloc();
  y.slot = b;
  free(b);
}
func t2(z) {
  c = z.slot;
  print(*c);
}
func main() {
  x = malloc();
  fork(ta, t1, x);
  join(ta);
  a = malloc();
  x.slot = a;
  fork(tb, t2, x);
}
`
	ast, err := lang.Parse(shielded)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := Build(prog, BuildOptions{EnableMHP: false})
	reports, _ := checkUAF(t, b)
	if len(reports) != 0 {
		t.Fatalf("same-field overwrite shields the flow: %v", reports)
	}
}

func TestFieldRaceDistinctFieldsNotRacy(t *testing.T) {
	src := `
func w1(rec) {
  a = malloc();
  rec.left = a;
}
func w2(rec) {
  b = malloc();
  rec.right = b;
}
func main() {
  rec = malloc();
  fork(t1, w1, rec);
  fork(t2, w2, rec);
}
`
	b := build(t, src)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckDataRace}
	reports, _ := b.Check(opt)
	if len(reports) != 0 {
		t.Fatalf("writes to distinct fields are not conflicting: %v", reports)
	}
}

func TestFieldRaceSameFieldRacy(t *testing.T) {
	src := `
func w1(rec) {
  a = malloc();
  rec.slot = a;
}
func w2(rec) {
  b = rec.slot;
  print(*b);
}
func main() {
  rec = malloc();
  seed = malloc();
  rec.slot = seed;
  fork(t1, w1, rec);
  fork(t2, w2, rec);
}
`
	b := build(t, src)
	opt := DefaultCheck()
	opt.Checkers = []string{CheckDataRace}
	reports, _ := b.Check(opt)
	if len(reports) == 0 {
		t.Fatal("same-field store/load pair must be racy")
	}
}
