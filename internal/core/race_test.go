package core

import (
	"testing"
)

func checkKindOn(t *testing.T, src, kind string, mutate func(*CheckOptions)) []Report {
	t.Helper()
	b := build(t, src)
	opt := DefaultCheck()
	opt.Checkers = []string{kind}
	if mutate != nil {
		mutate(&opt)
	}
	reports, _ := b.Check(opt)
	return reports
}

// --- data races ---

const racyPair = `
func writer(cell) {
  v = malloc();
  *cell = v;
}
func reader(cell) {
  c = *cell;
  print(*c);
}
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, writer, cell);
  fork(t2, reader, cell);
}
`

func TestDataRaceDetected(t *testing.T) {
	reports := checkKindOn(t, racyPair, CheckDataRace, nil)
	if len(reports) == 0 {
		t.Fatal("unsynchronized store/load pair must be racy")
	}
	for _, r := range reports {
		if r.Kind != CheckDataRace {
			t.Errorf("kind = %s", r.Kind)
		}
		if r.Source.Thread == r.Sink.Thread {
			t.Errorf("race must span threads: %+v", r)
		}
	}
}

func TestDataRaceLockProtected(t *testing.T) {
	src := `
global mu;
func writer(cell) {
  v = malloc();
  lock(mu);
  *cell = v;
  unlock(mu);
}
func reader(cell) {
  lock(mu);
  c = *cell;
  unlock(mu);
  print(*c);
}
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, writer, cell);
  fork(t2, reader, cell);
}
`
	if got := checkKindOn(t, src, CheckDataRace, nil); len(got) != 0 {
		t.Fatalf("lock-protected accesses are not racy: %v", got)
	}
}

func TestDataRaceJoinOrdered(t *testing.T) {
	src := `
func writer(cell) {
  v = malloc();
  *cell = v;
}
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, writer, cell);
  join(t1);
  c = *cell;
  print(*c);
}
`
	if got := checkKindOn(t, src, CheckDataRace, nil); len(got) != 0 {
		t.Fatalf("join-ordered accesses are not racy: %v", got)
	}
}

func TestDataRaceGuardContradiction(t *testing.T) {
	src := `
func writer(cell) {
  v = malloc();
  if (mode) {
    *cell = v;
  }
}
func reader(cell) {
  if (!mode) {
    c = *cell;
    print(*c);
  }
}
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, writer, cell);
  fork(t2, reader, cell);
}
`
	if got := checkKindOn(t, src, CheckDataRace, nil); len(got) != 0 {
		t.Fatalf("contradictory guards make the pair unrealizable: %v", got)
	}
}

func TestDataRaceCondVarOrdered(t *testing.T) {
	src := `
func writer(cell) {
  v = malloc();
  *cell = v;
  notify(done);
}
func reader(cell) {
  wait(done);
  c = *cell;
  print(*c);
}
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, writer, cell);
  fork(t2, reader, cell);
}
`
	if got := checkKindOn(t, src, CheckDataRace, nil); len(got) != 0 {
		t.Fatalf("wait/notify forces the order; not racy: %v", got)
	}
}

func TestDataRaceReadsOnlyNotRacy(t *testing.T) {
	src := `
func r1(cell) { a = *cell; print(*a); }
func r2(cell) { b = *cell; print(*b); }
func main() {
  cell = malloc();
  seed = malloc();
  *cell = seed;
  fork(t1, r1, cell);
  fork(t2, r2, cell);
}
`
	got := checkKindOn(t, src, CheckDataRace, nil)
	for _, r := range got {
		// The seed store in main is ordered before both forks, so only
		// read/read pairs remain — and those are not conflicts.
		t.Fatalf("read/read pair misreported: %v", r)
	}
}

// --- deadlocks ---

const abba = `
global m1;
global m2;
func left() {
  lock(m1);
  lock(m2);
  unlock(m2);
  unlock(m1);
}
func right() {
  lock(m2);
  lock(m1);
  unlock(m1);
  unlock(m2);
}
func main() {
  fork(t1, left);
  fork(t2, right);
}
`

func TestDeadlockABBA(t *testing.T) {
	reports := checkKindOn(t, abba, CheckDeadlock, nil)
	if len(reports) != 1 {
		t.Fatalf("ab-ba cycle should yield exactly 1 report, got %d: %v", len(reports), reports)
	}
}

func TestDeadlockConsistentOrderSafe(t *testing.T) {
	src := `
global m1;
global m2;
func left() {
  lock(m1);
  lock(m2);
  unlock(m2);
  unlock(m1);
}
func right() {
  lock(m1);
  lock(m2);
  unlock(m2);
  unlock(m1);
}
func main() {
  fork(t1, left);
  fork(t2, right);
}
`
	if got := checkKindOn(t, src, CheckDeadlock, nil); len(got) != 0 {
		t.Fatalf("consistent lock order cannot deadlock: %v", got)
	}
}

func TestDeadlockJoinOrderedSafe(t *testing.T) {
	src := `
global m1;
global m2;
func left() {
  lock(m1);
  lock(m2);
  unlock(m2);
  unlock(m1);
}
func right() {
  lock(m2);
  lock(m1);
  unlock(m1);
  unlock(m2);
}
func main() {
  fork(t1, left);
  join(t1);
  fork(t2, right);
}
`
	if got := checkKindOn(t, src, CheckDeadlock, nil); len(got) != 0 {
		t.Fatalf("sequenced threads cannot deadlock: %v", got)
	}
}

func TestDeadlockGuardContradictionSafe(t *testing.T) {
	src := `
global m1;
global m2;
func left() {
  if (mode) {
    lock(m1);
    lock(m2);
    unlock(m2);
    unlock(m1);
  }
}
func right() {
  if (!mode) {
    lock(m2);
    lock(m1);
    unlock(m1);
    unlock(m2);
  }
}
func main() {
  fork(t1, left);
  fork(t2, right);
}
`
	if got := checkKindOn(t, src, CheckDeadlock, nil); len(got) != 0 {
		t.Fatalf("contradictory guards exclude the cycle: %v", got)
	}
}
