package core

import (
	"testing"

	"canary/internal/ir"
)

func scheduleOf(t *testing.T, src string) (Report, *Builder) {
	t.Helper()
	b := build(t, src)
	reports, _ := checkUAF(t, b)
	if len(reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(reports))
	}
	return reports[0], b
}

func TestScheduleWitnessPresent(t *testing.T) {
	r, _ := scheduleOf(t, fig2Buggy)
	if len(r.Schedule) < 3 {
		t.Fatalf("schedule too short: %v", r.Schedule)
	}
	// The source (free) must appear before the sink (use) in the witness.
	srcIdx, sinkIdx := -1, -1
	for i, s := range r.Schedule {
		if s.Label == r.Source.Label {
			srcIdx = i
		}
		if s.Label == r.Sink.Label {
			sinkIdx = i
		}
	}
	if srcIdx < 0 || sinkIdx < 0 {
		t.Fatalf("schedule missing endpoints: %v", r.Schedule)
	}
	if srcIdx >= sinkIdx {
		t.Fatalf("the witness must order the free before the use: %v", r.Schedule)
	}
}

func TestScheduleRespectsProgramOrder(t *testing.T) {
	r, b := scheduleOf(t, `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`)
	// Same-thread labels in the schedule must respect CFG order.
	pos := make(map[ir.Label]int)
	for i, s := range r.Schedule {
		pos[s.Label] = i
	}
	for l1 := range pos {
		for l2 := range pos {
			if l1 == l2 {
				continue
			}
			i1 := b.Prog.Inst(l1)
			i2 := b.Prog.Inst(l2)
			if i1.Thread == i2.Thread && b.Prog.Reaches(l1, l2) && pos[l1] > pos[l2] {
				t.Fatalf("witness violates program order: ℓ%d before ℓ%d expected\n%v",
					l1, l2, r.Schedule)
			}
		}
	}
}

func TestScheduleStoreBeforeLoad(t *testing.T) {
	r, b := scheduleOf(t, `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`)
	var store, load ir.Label = -1, -1
	for _, s := range r.Schedule {
		inst := b.Prog.Inst(s.Label)
		if inst.Op == ir.OpStore {
			store = s.Label
		}
		if inst.Op == ir.OpLoad {
			load = s.Label
		}
	}
	if store < 0 || load < 0 {
		t.Fatalf("schedule should include the store and load: %v", r.Schedule)
	}
	pos := map[ir.Label]int{}
	for i, s := range r.Schedule {
		pos[s.Label] = i
	}
	if pos[store] > pos[load] {
		t.Fatalf("the witness must schedule the store before the load: %v", r.Schedule)
	}
}
