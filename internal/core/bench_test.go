package core

import (
	"testing"

	"canary/internal/ir"
	"canary/internal/lang"
	"canary/internal/workload"
)

// BenchmarkInterferenceEval measures one Alg. 2 round (escape analysis plus
// the interference pass) on a catalogue-scale subject, on top of a fresh
// Alg. 1 round. The dense LocIndex tables keep the per-location bookkeeping
// in slices indexed by integer instead of maps keyed by (object, field)
// structs; allocs/op is the series to watch.
func BenchmarkInterferenceEval(b *testing.B) {
	b.ReportAllocs()
	src := workload.Generate(workload.SizeSweep(1, 1200, 1200)[0])
	ast, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	bld := NewBenchBuilder(prog, DefaultBuild())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.BenchReset()
		bld.BenchDataDepRound()
		bld.BenchInterferenceRound()
	}
}
