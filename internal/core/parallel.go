package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves a Workers option: any non-positive value means one
// worker per logical CPU (runtime.GOMAXPROCS).
func workerCount(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// runIndexed executes f(0), ..., f(n-1) on a fixed pool of workers pulling
// indices from a shared counter. With workers <= 1 it degenerates to a plain
// sequential loop, so both paths run exactly the same code per index.
//
// Determinism contract: each f(i) must be a pure function of state frozen
// before the call and must write only into slot i of any shared output.
// Under that contract the result is byte-identical for every worker count
// and every scheduling, which is what lets the parallel VFG build and the
// checking pool keep the sequential semantics.
func runIndexed(workers, n int, f func(int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	// A panic on a worker goroutine would crash the process no matter how
	// many recover()s the caller stacked, so the first one is captured and
	// re-raised on the calling goroutine after the pool drains — the
	// sequential path panics in the caller, and the parallel path must be
	// indistinguishable from it.
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
