package core

import (
	"sort"

	"canary/internal/bitset"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/vfg"
)

// storeSet maps reaching-store labels to the condition under which each is
// the reaching definition.
type storeSet map[ir.Label]*guard.Formula

// memState is the flow-sensitive address-taken state of Alg. 1: each
// location (a dense vfg.Graph LocIndex — an object field, "" = whole cell)
// maps to the set of stores that may currently define it.
//
// To keep one Alg. 1 sweep linear on the long inlined thread bodies, the
// state is layered: entering a branch pushes an empty delta layer over the
// shared pre-branch base, and the join merges only the objects the branch
// bodies touched back into the base (in place — safe because the lowered
// CFG is structured, so once a join executes, the base has no other
// consumers). An entry in a layer shadows the same object's entries below
// it (writes copy the effective value up first), so the nearest entry on
// the parent chain is always the complete current value.
type memState struct {
	parent *memState
	local  map[int]storeSet // LocIndex → reaching stores
	depth  int
}

func newMemState(parent *memState) *memState {
	d := 0
	if parent != nil {
		d = parent.depth + 1
	}
	return &memState{parent: parent, local: make(map[int]storeSet), depth: d}
}

// get returns the effective store set of location o (nil when none). The
// result must not be mutated; use set.
func (m *memState) get(o int) storeSet {
	for s := m; s != nil; s = s.parent {
		if e, ok := s.local[o]; ok {
			return e
		}
	}
	return nil
}

// set installs a complete value for o in this layer.
func (m *memState) set(o int, e storeSet) { m.local[o] = e }

// touchedDownTo adds to into every location with an entry strictly below
// base on m's chain.
func (m *memState) touchedDownTo(base *memState, into *bitset.Set) {
	for s := m; s != nil && s != base; s = s.parent {
		for o := range s.local {
			into.Add(o)
		}
	}
}

// commonBase returns the deepest state that is an ancestor-or-self of
// every given state.
func commonBase(states []*memState) *memState {
	if len(states) == 0 {
		return nil
	}
	cur := states[0]
	for _, other := range states[1:] {
		a, b := cur, other
		for a != b {
			if a == nil || b == nil {
				return nil
			}
			if a.depth > b.depth {
				a = a.parent
			} else if b.depth > a.depth {
				b = b.parent
			} else {
				a, b = a.parent, b.parent
			}
		}
		cur = a
	}
	return cur
}

func cloneStoreSet(e storeSet) storeSet {
	out := make(storeSet, len(e)+1)
	for l, g := range e {
		out[l] = g
	}
	return out
}

// passEffects is the deferred, ordered mutation log of one Alg. 1 pass.
// Parallel passes never touch the shared points-to graph or the VFG
// directly; they log their writes here, and Build replays the logs
// sequentially in thread-ID order, which makes the resulting VFG
// independent of worker count and scheduling.
type passEffects struct {
	pts       []ptsOp
	edges     []edgeOp
	objStores []objStoreOp
	filtered  int
}

// ptsOp is one deferred ptsAdd(v, o, g) call.
type ptsOp struct {
	v ir.VarID
	o ir.ObjID
	g *guard.Formula
}

// edgeOp is one deferred VFG edge insertion. Node interning is deferred
// too (VarNode/ObjNode mutate the graph), so the op carries the variable or
// object rather than a NodeID.
type edgeOp struct {
	fromVar   ir.VarID
	fromObj   ir.ObjID
	fromIsObj bool
	toVar     ir.VarID
	kind      vfg.EdgeKind
	guard     *guard.Formula
	store     ir.Label
	load      ir.Label
	obj       ir.ObjID
	field     string
}

// objStoreOp is one deferred Graph.AddObjStore call.
type objStoreOp struct {
	loc vfg.Loc
	ref vfg.StoreRef
}

// passCtx is the isolated state of one Alg. 1 pass: a copy-on-write overlay
// over the shared (frozen-for-the-phase) points-to graph, plus the effect
// log. Same-pass reads see same-pass writes through the overlay exactly as
// the sequential analysis did; cross-thread writes of the same iteration
// land in the next fixpoint round instead, which only defers (never loses)
// propagation.
type passCtx struct {
	b       *Builder
	overlay map[ir.VarID]map[ir.ObjID]*guard.Formula
	eff     passEffects

	// joinTouched is the per-pass scratch of mergeAtJoin (per-pass, not on
	// the Builder: passes of different threads run concurrently).
	joinTouched *bitset.Set
}

// pts returns the pass-visible guarded points-to set of v.
func (p *passCtx) pts(v ir.VarID) map[ir.ObjID]*guard.Formula {
	if m, ok := p.overlay[v]; ok {
		return m
	}
	return p.b.pts[v]
}

// ptsAdd logs the addition and applies it to the overlay so later
// instructions of the same pass observe it.
func (p *passCtx) ptsAdd(v ir.VarID, o ir.ObjID, g *guard.Formula) {
	if g.IsFalse() {
		return
	}
	p.eff.pts = append(p.eff.pts, ptsOp{v: v, o: o, g: g})
	m, ok := p.overlay[v]
	if !ok {
		base := p.b.pts[v]
		m = make(map[ir.ObjID]*guard.Formula, len(base)+1)
		for bo, bg := range base {
			m[bo] = bg
		}
		p.overlay[v] = m
	}
	if old, exists := m[o]; exists {
		m[o] = p.b.cap(guard.Or(old, g))
	} else {
		m[o] = p.b.cap(g)
	}
}

func (p *passCtx) addEdge(e edgeOp) { p.eff.edges = append(p.eff.edges, e) }

// dataDepPass runs one Alg. 1 pass over a thread: a single topological
// sweep of the (acyclic) CFG computing the flow-sensitive address-taken
// state, logging top-level points-to updates and direct/dd edge insertions
// as deferred effects. Passes of different threads only read shared state,
// so Build runs them concurrently inside each fixpoint iteration.
func (b *Builder) dataDepPass(th *ir.Thread) *passCtx {
	p := &passCtx{b: b, overlay: make(map[ir.VarID]map[ir.ObjID]*guard.Formula)}

	// Blocks are created in topological order by the lowerer, so one
	// sweep reaches the intra-thread dataflow fixpoint (the CFG is a DAG).
	out := make([]*memState, len(th.Blocks))
	for bi, blk := range th.Blocks {
		var cur *memState
		switch {
		case len(blk.Preds) == 0:
			cur = newMemState(nil)
		case len(blk.Preds) == 1:
			pred := out[predIndex(th, blk.Preds[0])]
			if len(blk.Preds[0].Succs) == 1 {
				cur = pred // hand over: no other consumer
			} else {
				cur = newMemState(pred) // branch entry: delta layer
			}
		default:
			cur = p.mergeAtJoin(th, blk, out)
		}
		for _, inst := range blk.Insts {
			p.transfer(inst, cur)
		}
		out[bi] = cur
	}
	return p
}

// applyEffects replays one pass's log against the shared builder state; it
// reports whether any new points-to item or edge appeared (the outer
// fixpoint's progress signal). Replay order — thread-ID order across
// passes, program order within one — fixes the edge-ID assignment and the
// guard join order regardless of how the passes were scheduled.
func (b *Builder) applyEffects(eff *passEffects) bool {
	progressed := false
	for _, op := range eff.pts {
		if b.ptsAdd(op.v, op.o, op.g) {
			progressed = true
		}
	}
	g := b.G
	for _, e := range eff.edges {
		var from vfg.NodeID
		if e.fromIsObj {
			from = g.ObjNode(e.fromObj)
		} else {
			from = g.VarNode(e.fromVar)
		}
		if g.AddEdge(vfg.Edge{
			From: from, To: g.VarNode(e.toVar),
			Kind: e.kind, Guard: e.guard,
			Store: e.store, Load: e.load, Obj: e.obj, Field: e.field,
		}) {
			progressed = true
		}
	}
	for _, so := range eff.objStores {
		g.AddObjStore(so.loc, so.ref)
	}
	b.Stats.FilteredEdges += eff.filtered
	return progressed
}

// mergeAtJoin merges the predecessors' delta layers into their common base
// (Alg. 1's may-union with guard disjunction) and returns the base, which
// becomes the join's state.
func (p *passCtx) mergeAtJoin(th *ir.Thread, blk *ir.Block, out []*memState) *memState {
	b := p.b
	preds := make([]*memState, len(blk.Preds))
	for i, pr := range blk.Preds {
		preds[i] = out[predIndex(th, pr)]
	}
	base := commonBase(preds)
	if base == nil {
		base = newMemState(nil)
	}
	// Locations touched by any branch since the base.
	if p.joinTouched == nil {
		p.joinTouched = bitset.New(b.G.LocCount())
	} else {
		p.joinTouched.Clear()
	}
	for _, pr := range preds {
		pr.touchedDownTo(base, p.joinTouched)
	}
	p.joinTouched.ForEach(func(o int) {
		merged := make(storeSet)
		for _, pr := range preds {
			for l, g := range pr.get(o) {
				if old, ok := merged[l]; ok {
					merged[l] = b.cap(guard.Or(old, g))
				} else {
					merged[l] = g
				}
			}
		}
		base.set(o, merged)
	})
	return base
}

func predIndex(th *ir.Thread, pred *ir.Block) int {
	// Thread block slices are append-only with globally increasing IDs:
	// binary search on ID.
	lo, hi := 0, len(th.Blocks)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case th.Blocks[mid].ID == pred.ID:
			return mid
		case th.Blocks[mid].ID < pred.ID:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	panic("core: predecessor not in thread block list")
}

// transfer applies the Alg. 1 flow functions (HandleEachInst) and logs VFG
// edges. It reads shared state only through the pass overlay, so passes of
// different threads can run concurrently.
func (p *passCtx) transfer(inst *ir.Inst, mem *memState) {
	b := p.b
	switch inst.Op {
	case ir.OpAlloc, ir.OpAddr, ir.OpNull:
		// ℓ,φ: p = alloc_o  ⇒  PG_top ← {p ↣ (φ, o)}; base edge o → p.
		p.ptsAdd(inst.Def, inst.Obj, inst.Guard)
		p.addEdge(edgeOp{
			fromObj: inst.Obj, fromIsObj: true, toVar: inst.Def,
			kind: vfg.EdgeObj, guard: inst.Guard,
		})
	case ir.OpCopy:
		// ℓ,φ: p = q  ⇒  PG_top ← {p ↣ (γ∧φ, o)} ∀(γ,o) ∈ Pts(q).
		for o, γ := range p.pts(inst.Val) {
			p.ptsAdd(inst.Def, o, b.cap(guard.And(γ, inst.Guard)))
		}
		p.addEdge(edgeOp{
			fromVar: inst.Val, toVar: inst.Def,
			kind: vfg.EdgeDirect, guard: inst.Guard,
		})
	case ir.OpPhi:
		for i, op := range inst.Ops {
			φi := inst.PhiGuards[i]
			for o, γ := range p.pts(op) {
				p.ptsAdd(inst.Def, o, b.cap(guard.And(γ, φi)))
			}
			p.addEdge(edgeOp{
				fromVar: op, toVar: inst.Def,
				kind: vfg.EdgeDirect, guard: φi,
			})
		}
	case ir.OpBin:
		// Value-level flow only (taint propagation); no points-to.
		for _, op := range inst.Ops {
			p.addEdge(edgeOp{
				fromVar: op, toVar: inst.Def,
				kind: vfg.EdgeDirect, guard: inst.Guard,
			})
		}
	case ir.OpStore:
		// ℓ,φ: *x = q (or x.f = q). Strong update when Pts(x) is a
		// singleton; locations are field-sensitive.
		ptsX := p.pts(inst.Ptr)
		strong := len(ptsX) == 1
		for o, α := range ptsX {
			li := b.G.LocIndex(o, inst.Field)
			gStore := b.cap(guard.And(α, inst.Guard))
			if gStore.IsFalse() {
				continue
			}
			var entry storeSet
			if strong {
				entry = make(storeSet, 1) // IN ← IN \ Pts(x)
			} else {
				entry = cloneStoreSet(mem.get(li))
			}
			entry[inst.Label] = gStore
			mem.set(li, entry)
			p.eff.objStores = append(p.eff.objStores, objStoreOp{
				loc: vfg.Loc{Obj: o, Field: inst.Field},
				ref: vfg.StoreRef{Store: inst.Label, Guard: gStore},
			})
		}
	case ir.OpLoad:
		// ℓ,φ: p = *y (or p = y.f). Link reaching stores to the load (dd
		// edges) and propagate the stored values' points-to facts. Reaching
		// stores are visited in label order: several stores feeding one load
		// Or-join into the same points-to guard, and a fixed join order keeps
		// the formula (and everything downstream of it) deterministic.
		for o, β := range p.pts(inst.Ptr) {
			reaching := mem.get(b.G.LocIndex(o, inst.Field))
			labels := make([]ir.Label, 0, len(reaching))
			for storeLabel := range reaching {
				labels = append(labels, storeLabel)
			}
			sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
			for _, storeLabel := range labels {
				γ := reaching[storeLabel]
				storeInst := b.Prog.Inst(storeLabel)
				eg := b.cap(guard.And(γ, β, inst.Guard))
				if eg.IsFalse() {
					p.eff.filtered++
					continue
				}
				p.addEdge(edgeOp{
					fromVar: storeInst.Val, toVar: inst.Def,
					kind: vfg.EdgeDD, guard: eg,
					store: storeLabel, load: inst.Label, obj: o, field: inst.Field,
				})
				for o2, γ2 := range p.pts(storeInst.Val) {
					p.ptsAdd(inst.Def, o2, b.cap(guard.And(γ2, eg)))
				}
			}
		}
	case ir.OpFree, ir.OpDeref, ir.OpLeak:
		// Sources/sinks; no dataflow effect. (free does not kill points-to
		// facts — the dangling pointer is precisely what UAF checking
		// tracks.)
	case ir.OpTaint, ir.OpConst, ir.OpHavoc:
		// Defines a value with no points-to facts (havoc is the documented
		// beyond-depth summary).
	case ir.OpFork, ir.OpJoin, ir.OpLock, ir.OpUnlock, ir.OpWait, ir.OpNotify:
		// Synchronization; handled by MHP/Φ_po and the checker extensions.
	}
}
