package core

import (
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/vfg"
)

// This file holds the benchmarking entry points of the builder: the hotpath
// experiment (internal/bench) and the stage micro-benchmarks need to cost
// one Alg. 1 or Alg. 2 round in isolation, which the public Build API
// (whole fixpoint only) cannot express. The hooks reuse exactly the
// production round code; they add no third code path.

// NewBenchBuilder returns a builder over prog with its indexes built and
// every thread dirty — the state BuildContext is in when it enters the
// first fixpoint round — without running any analysis.
func NewBenchBuilder(prog *ir.Program, opt BuildOptions) *Builder {
	return newBuilder(prog, opt.withDefaults())
}

// BenchReset rewinds the builder to its pre-fixpoint state (empty points-to
// graph, empty VFG, every thread dirty) so a benchmark loop can replay the
// first round repeatedly against identical input.
func (b *Builder) BenchReset() {
	b.G = vfg.New(b.Prog)
	b.pts = make(map[ir.VarID]map[ir.ObjID]*guard.Formula)
	b.ptsItems = 0
	b.escaped = make(map[ir.ObjID]bool)
	b.dirty = make(map[int]bool)
	for _, th := range b.Prog.Threads {
		b.dirty[th.ID] = true
	}
	b.Stats = BuildStats{}
}

// BenchDataDepRound runs one Alg. 1 round — a data-dependence pass over
// every dirty thread plus the sequential effect replay — and reports
// whether it progressed.
func (b *Builder) BenchDataDepRound() bool {
	todo := b.dirty
	b.dirty = make(map[int]bool)
	progressed := false
	for _, th := range b.Prog.Threads {
		if !todo[th.ID] {
			continue
		}
		p := b.dataDepPass(th)
		if b.applyEffects(&p.eff) {
			progressed = true
		}
	}
	return progressed
}

// BenchInterferenceRound runs one Alg. 2 round (escape analysis plus the
// interference pass) sequentially and reports whether it progressed.
func (b *Builder) BenchInterferenceRound() bool {
	b.escapeAnalysis()
	return b.interferencePass(1)
}
