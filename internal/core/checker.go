package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"canary/internal/failpoint"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/pipeline"
	"canary/internal/smt"
	"canary/internal/vfg"
)

// Checker kinds.
const (
	CheckUAF        = "use-after-free"
	CheckDoubleFree = "double-free"
	CheckNullDeref  = "null-deref"
	CheckTaintLeak  = "taint-leak"
)

// AllCheckers lists the source–sink properties checked by default.
var AllCheckers = []string{CheckUAF, CheckDoubleFree, CheckNullDeref, CheckTaintLeak}

// ExtendedCheckers lists the additional pair-based analyses (opt-in): the
// guarded data-race and ab-ba deadlock detectors.
var ExtendedCheckers = []string{CheckDataRace, CheckDeadlock}

// CheckOptions configures the guarded source–sink detection of §5.
type CheckOptions struct {
	// Checkers selects the properties to check; nil means all.
	Checkers []string
	// RequireInterThread keeps only bugs whose source-sink path crosses
	// threads (the paper's inter-thread value-flow bugs). Default true via
	// DefaultCheck.
	RequireInterThread bool
	// MaxPathLen bounds the number of edges on an extracted path.
	MaxPathLen int
	// MaxDFSSteps bounds the search effort per source.
	MaxDFSSteps int
	// ExplicitSearchBudget marks MaxDFSSteps as a caller-chosen budget
	// (canary.Budgets) rather than the defensive default: an exhausted
	// explicit budget emits a per-source inconclusive report
	// ("budget-exhausted: search") instead of truncating silently.
	ExplicitSearchBudget bool
	// MaxFormulaNodes bounds the size of each assembled SMT formula; a
	// larger system yields an inconclusive report ("budget-exhausted:
	// formula") for its pair instead of an unbounded solver query.
	// <= 0 disables the bound.
	MaxFormulaNodes int
	// MaxCompetitors bounds the intervening-store disjuncts encoded per
	// indirect edge (skipping extras over-approximates, never misses).
	MaxCompetitors int
	// MaxConflicts bounds each SMT query (Unknown counts as a report, the
	// soundy choice).
	MaxConflicts int64
	// Workers sizes the fixed pool that parallelizes over sources (§5.2's
	// second optimization). 0 (the default) means one worker per logical
	// CPU; 1 forces a sequential run. Reports are byte-identical for every
	// worker count.
	Workers int
	// SimplifyGuards applies the semi-decision filter before SMT (§5.2's
	// first optimization).
	SimplifyGuards bool
	// CubeAndConquer solves each query with the parallel cube strategy
	// (§5.2's third optimization).
	CubeAndConquer bool
	// CubeSplit is the number of split atoms for cube-and-conquer.
	CubeSplit int
	// LockOrder enables the lock/unlock mutual-exclusion extension
	// (paper §9, future work 1).
	LockOrder bool
	// CondVarOrder enables the wait/notify extension (paper §9, future
	// work 1): a statement ordered after a wait(cv) requires some
	// notify(cv) to have executed before the wait.
	CondVarOrder bool
	// MemoryModel selects the consistency axioms for the intra-thread
	// program-order facts: MemSC (the paper's sequential consistency,
	// default), MemTSO, or MemPSO (paper §9, future work 2).
	MemoryModel MemoryModel
	// FactPropagation enables the customized decision procedure (paper §9,
	// future work 3): order facts are transitively closed to refute fact
	// cycles and simplify disjunctions before (often instead of) the CDCL
	// solver.
	FactPropagation bool
	// Verdicts, when non-nil, is a cross-run SMT verdict store keyed by a
	// structural serialization of each assembled query (portable across the
	// label shifts a re-parse introduces — see recheck.go). Warm lookups
	// replay the exact verdict and model a fresh solve would produce, so an
	// incremental run only pays solver time for source–sink pairs whose
	// constraint system actually changed.
	Verdicts *smt.VerdictStore
}

// MemoryModel enumerates the supported consistency models.
type MemoryModel int

// Memory models. Under TSO an earlier store may be delayed past a later
// load of a different location (store buffering); PSO additionally lets
// independent stores reorder. Same-location pairs (recognized
// syntactically: the same pointer SSA variable) always stay ordered.
const (
	MemSC MemoryModel = iota
	MemTSO
	MemPSO
)

func (m MemoryModel) String() string {
	switch m {
	case MemTSO:
		return "tso"
	case MemPSO:
		return "pso"
	default:
		return "sc"
	}
}

// DefaultCheck mirrors the paper's configuration.
func DefaultCheck() CheckOptions {
	return CheckOptions{
		RequireInterThread: true,
		MaxPathLen:         48,
		MaxDFSSteps:        200000,
		MaxCompetitors:     24,
		MaxConflicts:       200000,
		Workers:            0, // all CPUs
		SimplifyGuards:     true,
		LockOrder:          true,
		CondVarOrder:       true,
		MemoryModel:        MemSC,
		FactPropagation:    true,
	}
}

func (o CheckOptions) withDefaults() CheckOptions {
	if len(o.Checkers) == 0 {
		o.Checkers = AllCheckers
	}
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = 48
	}
	if o.MaxDFSSteps <= 0 {
		o.MaxDFSSteps = 200000
	}
	if o.MaxCompetitors <= 0 {
		o.MaxCompetitors = 24
	}
	if o.MaxConflicts <= 0 {
		o.MaxConflicts = 200000
	}
	if o.CubeSplit <= 0 {
		o.CubeSplit = 3
	}
	return o
}

// Site is one program point of a report.
type Site struct {
	Label  ir.Label
	Thread int
	Fn     string
	Line   int
	Desc   string
}

// Report is one detected (realizable) source–sink bug.
type Report struct {
	Kind   string
	Source Site
	Sink   Site
	// Path lists the value-flow steps from source to sink.
	Path []Site
	// Schedule is a concrete witness interleaving of the involved
	// statements, reconstructed from the satisfying assignment.
	Schedule []Site
	// Guard is the rendered aggregated constraint of the path.
	Guard string
	// Result is the SMT verdict (Sat, or Unknown when the budget ran out).
	Result smt.Result
	// Reason is empty for a decided report; an undecided one carries the
	// degradation cause: "budget-exhausted: <search|formula|solve>" or
	// "internal-error: <detail>" (a recovered panic or injected fault).
	Reason string
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s (thread %d, line %d)\n  -> %s (thread %d, line %d)",
		r.Kind, r.Source.Desc, r.Source.Thread, r.Source.Line,
		r.Sink.Desc, r.Sink.Thread, r.Sink.Line)
	return b.String()
}

// CheckStats counts checking work.
type CheckStats struct {
	Sources       int
	PathsExamined int
	SemiDecided   int // paths pruned by the semi-decision filter
	FactDecided   int // queries settled by the order-fact closure alone
	SolverQueries int
	SolverUnsat   int
	// CacheHits / CacheMisses count SMT query-cache lookups: a hit replays
	// a previously solved verdict (and its model) instead of running the
	// solver again.
	CacheHits   int
	CacheMisses int
	// TrivialSolves counts queries decided by the pre-Tseitin fast path
	// (constant folding + unit propagation, smt.Presolve): they skip the
	// solver and both verdict caches entirely.
	TrivialSolves int
	// VerdictHits counts queries answered by the cross-run structural
	// verdict store (CheckOptions.Verdicts) after a pointer-cache miss.
	VerdictHits int
	// PairsRechecked counts the distinct (source, sink) pairs per source
	// search whose realizability decision was recomputed this run rather
	// than replayed from the warm verdict store. Without a store every
	// examined pair counts; a warm incremental run drops to the pairs whose
	// endpoints or guards actually changed (plus the cheap fact-decided
	// ones, which are always recomputed).
	PairsRechecked int
	// SearchSteps sums the DFS steps consumed across all per-source
	// searches — the check stage's consumption against Budgets.MaxDFSSteps
	// (which bounds each source's search separately).
	SearchSteps int
	SearchTime  time.Duration
	SolveTime   time.Duration
	// The degradation observables of the governance layer: how many
	// per-source searches ran out of DFS steps, how many assembled
	// formulas exceeded MaxFormulaNodes, how many solver verdicts came
	// back Unknown (conflict budget), and how many panics were converted
	// into internal-error reports instead of crashing the process.
	SearchBudgetExhausted  int
	FormulaBudgetExhausted int
	SolveBudgetExhausted   int
	PanicsRecovered        int
}

func (s *CheckStats) add(o CheckStats) {
	s.Sources += o.Sources
	s.PathsExamined += o.PathsExamined
	s.SemiDecided += o.SemiDecided
	s.FactDecided += o.FactDecided
	s.SolverQueries += o.SolverQueries
	s.SolverUnsat += o.SolverUnsat
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.TrivialSolves += o.TrivialSolves
	s.VerdictHits += o.VerdictHits
	s.PairsRechecked += o.PairsRechecked
	s.SearchSteps += o.SearchSteps
	s.SearchTime += o.SearchTime
	s.SolveTime += o.SolveTime
	s.SearchBudgetExhausted += o.SearchBudgetExhausted
	s.FormulaBudgetExhausted += o.FormulaBudgetExhausted
	s.SolveBudgetExhausted += o.SolveBudgetExhausted
	s.PanicsRecovered += o.PanicsRecovered
}

// source is a source event: the value node to chase and the statement that
// makes it dangerous.
type source struct {
	node  vfg.NodeID
	label ir.Label
}

// Check runs the selected source–sink checkers over the built VFG.
func (b *Builder) Check(opt CheckOptions) ([]Report, CheckStats) {
	reports, stats, _ := b.CheckContext(context.Background(), opt)
	return reports, stats
}

// CheckContext is Check with cooperative cancellation: ctx is consulted
// between checkers and between source–sink searches (each pool worker
// checks it before claiming the next source, and a running DFS aborts at
// its next step-budget checkpoint). On cancellation the partial reports
// are discarded and ctx's error (context.Canceled or
// context.DeadlineExceeded) is returned; the stats gathered so far are
// still returned for observability.
func (b *Builder) CheckContext(ctx context.Context, opt CheckOptions) ([]Report, CheckStats, error) {
	opt = opt.withDefaults()
	var reports []Report
	var stats CheckStats
	for _, kind := range opt.Checkers {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		rs, st := b.runChecker(ctx, kind, opt)
		reports = append(reports, rs...)
		stats.add(st)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Kind != reports[j].Kind {
			return reports[i].Kind < reports[j].Kind
		}
		if reports[i].Source.Label != reports[j].Source.Label {
			return reports[i].Source.Label < reports[j].Source.Label
		}
		return reports[i].Sink.Label < reports[j].Sink.Label
	})
	return reports, stats, nil
}

// runChecker dispatches one checker kind under panic isolation: a panic
// anywhere inside the checker (including one re-raised from a pool
// worker by runIndexed) is converted into a single internal-error report
// for the whole checker instead of crashing the process. Finer-grained
// per-source isolation inside checkKind usually catches the panic first;
// this is the outer net.
func (b *Builder) runChecker(ctx context.Context, kind string, opt CheckOptions) (rs []Report, st CheckStats) {
	defer func() {
		if r := recover(); r != nil {
			st.PanicsRecovered++
			rs = []Report{{
				Kind:   kind,
				Source: Site{Desc: "checker " + kind},
				Sink:   Site{Desc: "checker " + kind},
				Result: smt.Unknown,
				Reason: fmt.Sprintf("internal-error: %v", r),
			}}
		}
	}()
	switch kind {
	case CheckDataRace:
		return b.checkRaces(opt)
	case CheckDeadlock:
		return b.checkDeadlocks(opt)
	default:
		rs, st = b.checkKind(ctx, kind, opt)
		return rs, st
	}
}

// sourcesAndSinks yields the source events and sink map of one checker.
func (b *Builder) sourcesAndSinks(kind string) ([]source, map[ir.VarID][]ir.Label) {
	var sources []source
	sinks := make(map[ir.VarID][]ir.Label)
	for _, inst := range b.Prog.Insts() {
		switch kind {
		case CheckUAF:
			if inst.Op == ir.OpFree {
				sources = append(sources, source{node: b.G.VarNode(inst.Val), label: inst.Label})
			}
			if inst.Op == ir.OpDeref {
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		case CheckDoubleFree:
			if inst.Op == ir.OpFree {
				sources = append(sources, source{node: b.G.VarNode(inst.Val), label: inst.Label})
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		case CheckNullDeref:
			if inst.Op == ir.OpNull {
				sources = append(sources, source{node: b.G.VarNode(inst.Def), label: inst.Label})
			}
			if inst.Op == ir.OpDeref {
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		case CheckTaintLeak:
			if inst.Op == ir.OpTaint {
				sources = append(sources, source{node: b.G.VarNode(inst.Def), label: inst.Label})
			}
			if inst.Op == ir.OpLeak {
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		}
	}
	return sources, sinks
}

func (b *Builder) checkKind(ctx context.Context, kind string, opt CheckOptions) ([]Report, CheckStats) {
	sources, sinks := b.sourcesAndSinks(kind)
	if len(sources) == 0 || len(sinks) == 0 {
		return nil, CheckStats{Sources: len(sources)}
	}
	var stats CheckStats
	stats.Sources = len(sources)

	// Cost-ordered queue: sources with the largest VFG fan-out (a proxy for
	// expected DFS effort) are dispatched first so the pool never idles
	// behind one expensive straggler scheduled last. The order affects only
	// scheduling — results land in per-source slots and are merged in
	// source order below, so the output is identical for any worker count.
	order := make([]int, len(sources))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return len(b.G.Out(sources[order[i]].node)) > len(b.G.Out(sources[order[j]].node))
	})

	type slot struct {
		reports []Report
		stats   CheckStats
	}
	slots := make([]slot, len(sources))
	runIndexed(workerCount(opt.Workers), len(sources), func(qi int) {
		// Cancellation checkpoint between source–sink searches: once ctx is
		// done the pool drains without claiming further sources. The partial
		// slots are never surfaced — CheckContext discards them and returns
		// ctx's error.
		if ctx.Err() != nil {
			return
		}
		si := order[qi]
		c := &checkCtx{
			b: b, kind: kind, opt: opt, ctx: ctx, sinks: sinks,
			pairs:     &pairSet{kind: kind, done: make(map[[2]ir.Label]bool)},
			rechecked: make(map[[2]ir.Label]bool),
		}
		// Per-source panic isolation: a panic while checking one source
		// becomes that source's internal-error report and the other
		// sources' results stand. The recover must wrap the search call
		// alone so c.stats keeps whatever was counted before the panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.stats.PanicsRecovered++
					site := c.site(sources[si].label)
					slots[si].reports = []Report{{
						Kind:   kind,
						Source: site,
						Sink:   site,
						Result: smt.Unknown,
						Reason: fmt.Sprintf("internal-error: %v", r),
					}}
				}
			}()
			slots[si].reports = c.searchFrom(sources[si])
		}()
		slots[si].stats = c.stats
	})

	// Deterministic merge in source order. Each source deduplicated its own
	// (source, sink) pairs during the search; across sources only unordered
	// double-free keys can collide (free a reporting a↔z and free z
	// reporting z↔a), and there the earliest source keeps the report — the
	// same pair the sequential claim order used to pick.
	var reports []Report
	claimed := make(map[[2]ir.Label]bool)
	for si := range slots {
		stats.add(slots[si].stats)
		for _, r := range slots[si].reports {
			k := pairKey(kind, r.Source.Label, r.Sink.Label)
			if claimed[k] {
				continue
			}
			claimed[k] = true
			reports = append(reports, r)
		}
	}
	return reports, stats
}

// pairKey canonicalizes a (source, sink) label pair. Double-free pairs are
// unordered: each unordered pair reports once.
func pairKey(kind string, a, z ir.Label) [2]ir.Label {
	if kind == CheckDoubleFree && a > z {
		return [2]ir.Label{z, a}
	}
	return [2]ir.Label{a, z}
}

// pairSet tracks which (source, sink) pairs have already produced a
// report within one source's search. A pair is claimed only when a
// realizable path is found: an irrealizable path must not mask a later
// realizable one through the same endpoints. The set is per-source (each
// worker owns its own), so no locking is needed; cross-source duplicates
// are dropped at the deterministic merge in checkKind.
type pairSet struct {
	kind string
	done map[[2]ir.Label]bool
}

func (p *pairSet) reported(a, z ir.Label) bool {
	return p.done[pairKey(p.kind, a, z)]
}

func (p *pairSet) claim(a, z ir.Label) bool {
	k := pairKey(p.kind, a, z)
	if p.done[k] {
		return false
	}
	p.done[k] = true
	return true
}

// checkCtx is the per-source search state.
type checkCtx struct {
	b     *Builder
	kind  string
	opt   CheckOptions
	ctx   context.Context
	sinks map[ir.VarID][]ir.Label
	pairs *pairSet
	stats CheckStats
	steps int
	// canceled distinguishes the cancellation poison (steps forced to the
	// budget so the DFS unwinds) from a genuinely exhausted search
	// budget; only the latter is a degradation observable.
	canceled bool

	// rechecked tracks the (source, sink) pairs of this search whose
	// realizability decision was actually recomputed (rather than replayed
	// from the warm verdict store) — the PairsRechecked observable.
	// servedByStore is set by validateQuery when the decisive verdict came
	// from CheckOptions.Verdicts.
	rechecked     map[[2]ir.Label]bool
	servedByStore bool

	// lazily built wait/notify indexes for the condition-variable
	// extension.
	waitInsts   []*ir.Inst
	notifyInsts map[string][]*ir.Inst
}

// searchFrom extracts source–sink value-flow paths by DFS over the VFG
// (Eq. 3) and validates each candidate's realizability.
func (c *checkCtx) searchFrom(src source) []Report {
	t0 := time.Now()
	var reports []Report
	g := c.b.G
	onPath := make(map[vfg.NodeID]bool)
	var path []vfg.EdgeID

	var visit func(n vfg.NodeID)
	visit = func(n vfg.NodeID) {
		if c.steps >= c.opt.MaxDFSSteps {
			return
		}
		// A long-running DFS polls ctx every 256 steps; on cancellation it
		// exhausts its step budget so the whole search unwinds promptly.
		if c.steps&0xff == 0 && c.ctx != nil && c.ctx.Err() != nil {
			c.steps = c.opt.MaxDFSSteps
			c.canceled = true
			return
		}
		c.steps++
		node := g.Node(n)
		if node.Kind == vfg.NodeVar {
			for _, sinkLabel := range c.sinks[node.Var] {
				if sinkLabel == src.label {
					continue
				}
				if rep, ok := c.validate(src, sinkLabel, path); ok {
					reports = append(reports, rep)
				}
			}
		}
		if len(path) >= c.opt.MaxPathLen {
			return
		}
		for _, eid := range g.Out(n) {
			e := g.Edge(eid)
			if onPath[e.To] {
				continue
			}
			onPath[e.To] = true
			path = append(path, eid)
			visit(e.To)
			path = path[:len(path)-1]
			delete(onPath, e.To)
		}
	}
	onPath[src.node] = true
	visit(src.node)
	if c.steps >= c.opt.MaxDFSSteps && !c.canceled {
		c.stats.SearchBudgetExhausted++
		if c.opt.ExplicitSearchBudget {
			// The truncated search may have missed sinks, so the source
			// gets an explicit inconclusive entry instead of a silent
			// partial answer. Sink = source is unambiguous: a real report
			// never has sink == source (searchFrom skips that label), so
			// the pair key cannot collide at the merge.
			site := c.site(src.label)
			reports = append(reports, Report{
				Kind:   c.kind,
				Source: site,
				Sink:   site,
				Result: smt.Unknown,
				Reason: pipeline.ReasonSearchExhausted,
			})
		}
	}
	c.stats.SearchSteps += c.steps
	c.stats.SearchTime += time.Since(t0)
	return reports
}

// validate wraps validateQuery with the PairsRechecked accounting: a pair
// counts as rechecked the first time one of its candidate paths reaches the
// decision stage (PathsExamined advanced) without the decisive verdict
// being replayed from the warm verdict store. Paths rejected before the
// decision stage (duplicate pair, intra-thread) count nothing.
func (c *checkCtx) validate(src source, sinkLabel ir.Label, path []vfg.EdgeID) (Report, bool) {
	before := c.stats.PathsExamined
	c.servedByStore = false
	rep, ok := c.validateQuery(src, sinkLabel, path)
	if c.stats.PathsExamined > before && !c.servedByStore {
		k := pairKey(c.kind, src.label, sinkLabel)
		if !c.rechecked[k] {
			c.rechecked[k] = true
			c.stats.PairsRechecked++
		}
	}
	return rep, ok
}

// validateQuery builds Φ_all = Φ_guards ∧ Φ_ls ∧ Φ_po ∧ (O_src < O_sink) for
// the candidate path and decides its realizability (Defn. 2).
func (c *checkCtx) validateQuery(src source, sinkLabel ir.Label, path []vfg.EdgeID) (Report, bool) {
	// Prompt cancellation: a canceled check must not start assembling or
	// solving another constraint system (the PR-3 recheck path reaches
	// here on every warm pair, so this checkpoint bounds its latency too).
	if c.ctx != nil && c.ctx.Err() != nil {
		return Report{}, false
	}
	b := c.b
	g := b.G
	srcInst := b.Prog.Inst(src.label)
	sinkInst := b.Prog.Inst(sinkLabel)

	// Inter-thread requirement: the flow must cross threads.
	if c.opt.RequireInterThread {
		cross := srcInst.Thread != sinkInst.Thread
		for _, eid := range path {
			if g.Edge(eid).Kind == vfg.EdgeInterference {
				cross = true
				break
			}
		}
		if !cross {
			return Report{}, false
		}
	}
	if c.pairs.reported(src.label, sinkLabel) {
		return Report{}, false
	}
	c.stats.PathsExamined++

	pool := b.Prog.Pool
	q := &query{c: c}
	q.others = append(q.others, srcInst.Guard, sinkInst.Guard)

	// Φ_guards: edge guards plus lazily generated Φ_ls per indirect edge.
	labels := []ir.Label{src.label, sinkLabel}
	for _, eid := range path {
		e := g.Edge(eid)
		q.others = append(q.others, e.Guard)
		if from := g.Node(e.From); from.Kind == vfg.NodeVar && from.Def != ir.NoLabel {
			labels = append(labels, from.Def)
		}
		if to := g.Node(e.To); to.Kind == vfg.NodeVar && to.Def != ir.NoLabel {
			labels = append(labels, to.Def)
		}
		if e.Kind == vfg.EdgeDD || e.Kind == vfg.EdgeInterference {
			labels = append(labels, e.Store, e.Load)
			c.loadStoreConstraints(q, e, &labels)
		}
	}

	// wait/notify extension: statements ordered after a wait(cv) require a
	// prior notify(cv); the notify labels join the Φ_po fact generation.
	if c.opt.CondVarOrder {
		c.condVarConstraints(q, &labels)
	}

	// Φ_po: program-order facts for every pair of involved labels (Eq. 4).
	labels = dedupLabels(labels)
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			c.poFacts(q, labels[i], labels[j])
		}
	}
	// Lock/unlock mutual exclusion (extension).
	if c.opt.LockOrder {
		for i := 0; i < len(labels); i++ {
			for j := i + 1; j < len(labels); j++ {
				c.lockFacts(q, labels[i], labels[j])
			}
		}
	}
	// The bug's own temporal requirement: the source event precedes the
	// sink event.
	q.facts = append(q.facts, [2]ir.Label{src.label, sinkLabel})

	// Customized decision procedure (§9 future work 3): close the order
	// facts transitively, refute fact cycles outright, and simplify the
	// disjunctions against the closure.
	var factDecided bool
	var res smt.Result
	if c.opt.FactPropagation {
		closure := newOrderClosure(q.facts)
		if closure.cycle {
			c.stats.FactDecided++
			return Report{}, false
		}
		for i, d := range q.others {
			q.others[i] = closure.simplify(pool, d)
		}
	}
	// An injected guard-eval fault surfaces as this pair's inconclusive
	// report — the typed error cannot propagate out of the DFS, so the
	// degradation contract (inconclusive, never silent) applies instead.
	if ferr := failpoint.Inject(failpoint.SiteGuardEval); ferr != nil {
		if !c.pairs.claim(src.label, sinkLabel) {
			return Report{}, false
		}
		return Report{
			Kind:   c.kind,
			Source: c.site(src.label),
			Sink:   c.site(sinkLabel),
			Path:   c.pathSites(src, path),
			Result: smt.Unknown,
			Reason: "internal-error: " + ferr.Error(),
		}, true
	}
	all := q.assemble(pool)
	if c.opt.MaxFormulaNodes > 0 && all.Size() > c.opt.MaxFormulaNodes {
		// Formula budget: the assembled system is too large to hand to
		// the solver. The pair is claimed with an inconclusive verdict —
		// assembly is deterministic, so the same pair degrades on every
		// run and worker count.
		c.stats.FormulaBudgetExhausted++
		if !c.pairs.claim(src.label, sinkLabel) {
			return Report{}, false
		}
		return Report{
			Kind:   c.kind,
			Source: c.site(src.label),
			Sink:   c.site(sinkLabel),
			Path:   c.pathSites(src, path),
			Guard:  "(elided: formula budget exhausted)",
			Result: smt.Unknown,
			Reason: pipeline.ReasonFormulaExhausted,
		}, true
	}
	if c.opt.SimplifyGuards {
		if sat, decided := guard.SemiDecide(all); decided && !sat {
			c.stats.SemiDecided++
			return Report{}, false
		}
	}
	if all.IsFalse() {
		c.stats.SemiDecided++
		return Report{}, false
	}
	if c.opt.FactPropagation {
		// When the residual (non-fact) part is decided by the boolean
		// semi-decision and the facts are acyclic, the query is settled
		// without the solver.
		residual := guard.And(q.others...)
		if !hasOrderAtoms(pool, residual) {
			if sat, decided := guard.SemiDecide(residual); decided {
				c.stats.FactDecided++
				factDecided = true
				if !sat {
					return Report{}, false
				}
				res = smt.Sat
			}
		}
	}

	var model smt.AtomValuer
	var reason string
	if !factDecided {
		if pres, pmodel, ok := smt.Presolve(pool, all); ok {
			// Pre-Tseitin fast path: constant folding + unit propagation
			// decided the query without CNF, CDCL, or either cache. The
			// verdict is exact (see smt.Presolve), so reports are identical
			// to a full solve.
			c.stats.TrivialSolves++
			res = pres
			if pmodel != nil {
				model = pmodel
			}
		} else if cres, cmodel, ok := smt.DefaultCache.Lookup(pool, all); ok {
			// Cache replay. The solver is deterministic, so the cached
			// verdict and model are exactly what a fresh solve would
			// produce — reports are identical either way.
			c.stats.CacheHits++
			res = cres
			if cmodel != nil {
				model = cmodel
			}
		} else {
			c.stats.CacheMisses++
			vc := c.verdictCoder(all)
			if vres, vmodel, ok := vc.lookup(); ok {
				// Warm cross-run replay: the structural verdict store holds
				// this constraint system's verdict from an earlier run. The
				// rebased model is the one a fresh solve would produce
				// (Tseitin's variable allocation depends only on formula
				// structure), so replaying stays byte-identical. Promote the
				// verdict into the per-run pointer cache so repeats of this
				// exact formula skip re-hashing.
				c.stats.VerdictHits++
				c.servedByStore = true
				res = vres
				if vmodel != nil {
					model = vmodel
				}
				smt.DefaultCache.Store(pool, all, res, vmodel)
			} else if ferr := failpoint.Inject(failpoint.SiteSMTSolve); ferr != nil {
				// An injected solver fault degrades to Unknown without
				// touching either verdict cache, so nothing poisoned is
				// ever replayed.
				res = smt.Unknown
				reason = "internal-error: " + ferr.Error()
			} else {
				t0 := time.Now()
				c.stats.SolverQueries++
				if c.opt.CubeAndConquer {
					res = smt.SolveCubeAndConquer(pool, []*guard.Formula{all}, smt.CubeOptions{
						SplitAtoms:          c.opt.CubeSplit,
						MaxConflictsPerCube: c.opt.MaxConflicts,
					})
					smt.DefaultCache.Store(pool, all, res, nil)
					vc.put(res, nil)
				} else {
					s := smt.New(pool)
					s.MaxConflicts = c.opt.MaxConflicts
					s.Assert(all)
					res = s.Solve()
					if res == smt.Sat {
						model = s
					}
					m := s.Model()
					smt.DefaultCache.Store(pool, all, res, m)
					vc.put(res, m)
				}
				c.stats.SolveTime += time.Since(t0)
			}
		}
		if res == smt.Unsat {
			c.stats.SolverUnsat++
			return Report{}, false
		}
		if res == smt.Unknown {
			// The conflict budget (or an injected fault) left the pair
			// undecided; it is kept as a flagged report (the soundy
			// choice) and counted as a solve-stage degradation. Counting
			// at verdict use — not at solve time — keeps a warm verdict
			// replay's accounting identical to the cold run's.
			c.stats.SolveBudgetExhausted++
			if reason == "" {
				reason = pipeline.ReasonSolveExhausted
			}
		}
	}
	if !c.pairs.claim(src.label, sinkLabel) {
		return Report{}, false // another worker reported this pair first
	}
	return Report{
		Kind:     c.kind,
		Source:   c.site(src.label),
		Sink:     c.site(sinkLabel),
		Path:     c.pathSites(src, path),
		Schedule: c.buildSchedule(labels, q.facts, model),
		Guard:    pool.String(all),
		Result:   res,
		Reason:   reason,
	}, true
}

// query accumulates one path's constraint system, separating the unit
// order facts (whose transitive closure the customized decision procedure
// exploits) from the guard parts and order disjunctions.
type query struct {
	c      *checkCtx
	facts  [][2]ir.Label
	others []*guard.Formula
}

// assemble renders the whole system as one formula for the solver.
func (q *query) assemble(pool *guard.Pool) *guard.Formula {
	parts := make([]*guard.Formula, 0, len(q.others)+len(q.facts))
	parts = append(parts, q.others...)
	for _, f := range q.facts {
		parts = append(parts, guard.Var(pool.Order(int(f[0]), int(f[1]))))
	}
	return guard.And(parts...)
}

// hasOrderAtoms reports whether f mentions any order atom.
func hasOrderAtoms(pool *guard.Pool, f *guard.Formula) bool {
	for _, a := range f.Atoms(nil) {
		if _, _, ok := pool.OrderAtom(a); ok {
			return true
		}
	}
	return false
}

// loadStoreConstraints encodes Φ_ls (Eq. 2) for one indirect edge: the
// store precedes the load, and no competing store to the same object lands
// between them (competitors are implied away when their own guard is
// false). extraLabels collects competitor labels so Φ_po can order them.
func (c *checkCtx) loadStoreConstraints(q *query, e *vfg.Edge, extraLabels *[]ir.Label) {
	b := c.b
	pool := b.Prog.Pool
	// O_store < O_load: required for the flow. For same-thread dd edges the
	// CFG already guarantees it, but asserting the atom lets it chain with
	// other order constraints.
	q.facts = append(q.facts, [2]ir.Label{e.Store, e.Load})

	competitors := 0
	for _, ref := range b.G.ObjStores(vfg.Loc{Obj: e.Obj, Field: e.Field}) {
		if ref.Store == e.Store {
			continue
		}
		sp := b.Prog.Inst(ref.Store)
		storeInst := b.Prog.Inst(e.Store)
		loadInst := b.Prog.Inst(e.Load)
		// Fast exclusions by CFG order (valid only when the memory model
		// actually guarantees that order).
		if sp.Thread == loadInst.Thread && b.Prog.Reaches(e.Load, ref.Store) &&
			!c.relaxedPair(e.Load, ref.Store) {
			continue // after the load on every execution
		}
		if sp.Thread == storeInst.Thread && b.Prog.Reaches(ref.Store, e.Store) &&
			!c.relaxedPair(ref.Store, e.Store) {
			continue // before the store on every execution
		}
		if competitors >= c.opt.MaxCompetitors {
			break // sound: dropping constraints only over-approximates
		}
		competitors++
		// ¬g_s' ∨ O_s' < O_s ∨ O_l < O_s'.
		q.others = append(q.others, guard.Or(
			guard.Not(ref.Guard),
			guard.Var(pool.Order(int(ref.Store), int(e.Store))),
			guard.Var(pool.Order(int(e.Load), int(ref.Store))),
		))
		*extraLabels = append(*extraLabels, ref.Store)
	}
}

// poFacts emits the program-order facts PO(a, b) of Eq. 4: CFG order within
// a thread, fork/join order across threads. Under a relaxed memory model
// (§9 future work 2), intra-thread store→load (TSO/PSO) and store→store
// (PSO) pairs on possibly-different locations contribute no fact.
func (c *checkCtx) poFacts(q *query, a, z ir.Label) {
	first, second := a, z
	switch c.b.MHP.Ordered(a, z) {
	case -1:
	case 1:
		first, second = z, a
	default:
		return
	}
	if c.relaxedPair(first, second) {
		return
	}
	q.facts = append(q.facts, [2]ir.Label{first, second})
}

// relaxedPair reports whether the memory model drops the program-order
// guarantee between two same-thread instructions (first before second in
// CFG order). Same-location pairs — recognized syntactically by an
// identical pointer SSA variable — always stay ordered, and
// synchronization operations act as fences.
func (c *checkCtx) relaxedPair(first, second ir.Label) bool {
	if c.opt.MemoryModel == MemSC {
		return false
	}
	i1 := c.b.Prog.Inst(first)
	i2 := c.b.Prog.Inst(second)
	if i1.Thread != i2.Thread {
		return false // cross-thread order comes from synchronization
	}
	switch {
	case i1.Op == ir.OpStore && i2.Op == ir.OpLoad:
		// Store buffering: both TSO and PSO delay a store past a later
		// load of a different location.
		return i1.Ptr != i2.Ptr
	case i1.Op == ir.OpStore && i2.Op == ir.OpStore:
		return c.opt.MemoryModel == MemPSO && i1.Ptr != i2.Ptr
	}
	return false
}

// condVarConstraints encodes the wait/notify semantics for every wait that
// precedes a path statement in its thread: some notify of the same
// condition variable must execute before the wait returns. Waits with no
// notify anywhere make the path infeasible (the bounded program can never
// pass them).
func (c *checkCtx) condVarConstraints(q *query, labels *[]ir.Label) {
	b := c.b
	pool := b.Prog.Pool
	seenWait := make(map[ir.Label]bool)
	const maxWaits, maxNotifies = 8, 8
	snapshot := append([]ir.Label(nil), (*labels)...)
	for _, l := range snapshot {
		inst := b.Prog.Inst(l)
		for _, w := range c.waits() {
			if len(seenWait) >= maxWaits {
				break
			}
			if w.Thread != inst.Thread || seenWait[w.Label] {
				continue
			}
			if w.Label != l && !b.Prog.Reaches(w.Label, l) {
				continue
			}
			seenWait[w.Label] = true
			var disjuncts []*guard.Formula
			for i, n := range c.notifies()[w.CondVar] {
				if i >= maxNotifies {
					break
				}
				disjuncts = append(disjuncts, guard.And(
					n.Guard,
					guard.Var(pool.Order(int(n.Label), int(w.Label))),
				))
				*labels = append(*labels, n.Label)
			}
			q.others = append(q.others, guard.Or(disjuncts...)) // empty → false
			*labels = append(*labels, w.Label)
		}
	}
}

func (c *checkCtx) waits() []*ir.Inst {
	if c.waitInsts == nil {
		c.waitInsts = []*ir.Inst{}
		for _, inst := range c.b.Prog.Insts() {
			if inst.Op == ir.OpWait {
				c.waitInsts = append(c.waitInsts, inst)
			}
		}
	}
	return c.waitInsts
}

func (c *checkCtx) notifies() map[string][]*ir.Inst {
	if c.notifyInsts == nil {
		c.notifyInsts = make(map[string][]*ir.Inst)
		for _, inst := range c.b.Prog.Insts() {
			if inst.Op == ir.OpNotify {
				c.notifyInsts[inst.CondVar] = append(c.notifyInsts[inst.CondVar], inst)
			}
		}
	}
	return c.notifyInsts
}

// lockFacts encodes the mutual exclusion of critical sections when both
// labels hold a common lock in different threads: either a's section
// completes before b's acquisition or vice versa. Sections without a unique
// matching unlock are skipped (sound under-constraining).
func (c *checkCtx) lockFacts(q *query, a, z ir.Label) {
	b := c.b
	ia, iz := b.Prog.Inst(a), b.Prog.Inst(z)
	if ia.Thread == iz.Thread {
		return
	}
	pool := b.Prog.Pool
	for _, pair := range ir.CommonLocks(ia, iz) {
		la, lz := pair[0], pair[1]
		if la.Acquire == lz.Acquire {
			continue
		}
		ua := b.Prog.MatchingUnlock(la.Acquire, la.Name)
		uz := b.Prog.MatchingUnlock(lz.Acquire, lz.Name)
		if ua == ir.NoLabel || uz == ir.NoLabel {
			continue
		}
		// Section bounds: acquire ≤ stmt ≤ unlock (facts).
		q.facts = append(q.facts,
			[2]ir.Label{la.Acquire, a},
			[2]ir.Label{lz.Acquire, z},
		)
		if b.Prog.Reaches(a, ua) {
			q.facts = append(q.facts, [2]ir.Label{a, ua})
		}
		if b.Prog.Reaches(z, uz) {
			q.facts = append(q.facts, [2]ir.Label{z, uz})
		}
		// Mutual exclusion of the two critical sections.
		q.others = append(q.others, guard.Or(
			guard.Var(pool.Order(int(ua), int(lz.Acquire))),
			guard.Var(pool.Order(int(uz), int(la.Acquire))),
		))
	}
}

func (c *checkCtx) site(l ir.Label) Site {
	inst := c.b.Prog.Inst(l)
	return Site{
		Label:  l,
		Thread: inst.Thread,
		Fn:     inst.Fn,
		Line:   inst.Pos.Line,
		Desc:   c.b.Prog.String(inst),
	}
}

// pathSites renders the value-flow path for the report (the concise bug
// trace the paper highlights as an advantage of value flows).
func (c *checkCtx) pathSites(src source, path []vfg.EdgeID) []Site {
	g := c.b.G
	out := []Site{c.site(src.label)}
	for _, eid := range path {
		e := g.Edge(eid)
		to := g.Node(e.To)
		s := Site{Desc: fmt.Sprintf("%s --%s--> %s", g.NodeString(e.From), e.Kind, g.NodeString(e.To))}
		if to.Def != ir.NoLabel && to.Kind == vfg.NodeVar {
			inst := c.b.Prog.Inst(to.Def)
			s.Label, s.Thread, s.Fn, s.Line = to.Def, inst.Thread, inst.Fn, inst.Pos.Line
		}
		out = append(out, s)
	}
	return out
}

func dedupLabels(in []ir.Label) []ir.Label {
	seen := make(map[ir.Label]bool, len(in))
	out := in[:0]
	for _, l := range in {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}
