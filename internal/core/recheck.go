package core

import (
	"crypto/sha256"
	"encoding/binary"

	"canary/internal/cache"
	"canary/internal/failpoint"
	"canary/internal/guard"
	"canary/internal/smt"
)

// verdictCoder bridges one assembled query to the cross-run verdict store
// (CheckOptions.Verdicts). It serializes the formula DAG into a portable
// structural key and, along the way, builds the atom translation maps that
// rebase stored models onto the current pool:
//
//   - boolean atoms encode by their condition text ("b:" + name), which is
//     their interning identity;
//   - order atoms encode by the structural coordinates of their two labels
//     ("o:" + sid(from) + ">" + sid(to), see ir.StructLabels), which survive
//     the global label shifts any one-function edit introduces.
//
// Two queries with equal keys therefore have isomorphic constraint systems,
// and since the solver's verdict and model depend only on that structure
// (Tseitin allocates variables in deterministic traversal order), replaying
// a stored verdict is byte-identical to re-solving. CubeAndConquer is folded
// into the key because cube verdicts carry no model.
type verdictCoder struct {
	vs  *smt.VerdictStore
	key cache.Key
	// enc/dec translate between this pool's atoms and their portable
	// encodings, covering exactly the atoms of the keyed formula.
	enc map[guard.Atom]string
	dec map[string]guard.Atom
}

// verdictCoder keys the assembled formula; it returns nil (a valid, inert
// coder) when no verdict store is configured, so callers need no nil checks.
func (c *checkCtx) verdictCoder(all *guard.Formula) *verdictCoder {
	if c.opt.Verdicts == nil {
		return nil
	}
	pool := c.b.Prog.Pool
	sids := c.b.Prog.StructLabels()
	vc := &verdictCoder{
		vs:  c.opt.Verdicts,
		enc: make(map[guard.Atom]string),
		dec: make(map[string]guard.Atom),
	}
	h := sha256.New()
	var num [binary.MaxVarintLen64]byte
	writeUint := func(u uint64) {
		n := binary.PutUvarint(num[:], u)
		h.Write(num[:n])
	}
	// Every variable-length segment is length-prefixed, so distinct
	// serializations can never collide by concatenation ambiguity.
	seg := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}
	seg("canary-verdict-v1")
	if c.opt.CubeAndConquer {
		seg("cube")
	} else {
		seg("seq")
	}
	atomEnc := func(a guard.Atom) string {
		if e, ok := vc.enc[a]; ok {
			return e
		}
		var e string
		if from, to, ok := pool.OrderAtom(a); ok &&
			from >= 0 && from < len(sids) && to >= 0 && to < len(sids) {
			e = "o:" + sids[from] + ">" + sids[to]
		} else {
			e = "b:" + pool.Name(a)
		}
		vc.enc[a] = e
		vc.dec[e] = a
		return e
	}
	// Serialize the hash-consed DAG with subtree sharing: revisited nodes
	// emit a back-reference instead of re-expanding, so the key cost is
	// linear in the DAG (not the tree) and sharing structure is part of the
	// identity.
	memo := make(map[*guard.Formula]uint64)
	var walk func(f *guard.Formula)
	walk = func(f *guard.Formula) {
		if id, ok := memo[f]; ok {
			h.Write([]byte{'R'})
			writeUint(id)
			return
		}
		memo[f] = uint64(len(memo))
		switch f.Kind() {
		case guard.KTrue:
			h.Write([]byte{'T'})
		case guard.KFalse:
			h.Write([]byte{'F'})
		case guard.KVar:
			h.Write([]byte{'v'})
			seg(atomEnc(f.Atom()))
		case guard.KNot:
			h.Write([]byte{'!'})
			walk(f.Subs()[0])
		case guard.KAnd, guard.KOr:
			if f.Kind() == guard.KAnd {
				h.Write([]byte{'&'})
			} else {
				h.Write([]byte{'|'})
			}
			writeUint(uint64(len(f.Subs())))
			for _, s := range f.Subs() {
				walk(s)
			}
		}
	}
	walk(all)
	h.Sum(vc.key[:0])
	return vc
}

// lookup returns the stored verdict for the keyed formula with its model
// rebased onto the current pool. A model atom with no counterpart in the
// current formula means the stored entry cannot be replayed faithfully
// (hash collision or encoding drift) and is treated as a miss.
func (vc *verdictCoder) lookup() (smt.Result, smt.Model, bool) {
	if vc == nil {
		return smt.Unknown, nil, false
	}
	// An injected verdict-read fault degrades to a miss; the caller then
	// re-solves, which is always safe for a content-keyed store.
	if failpoint.Inject(failpoint.SiteVerdictRead) != nil {
		return smt.Unknown, nil, false
	}
	res, portable, ok := vc.vs.Lookup(vc.key)
	if !ok {
		return smt.Unknown, nil, false
	}
	if len(portable) == 0 {
		return res, nil, true
	}
	m := make(smt.Model, len(portable))
	for _, pa := range portable {
		a, ok := vc.dec[pa.Atom]
		if !ok {
			return smt.Unknown, nil, false
		}
		m[a] = pa.Val
	}
	return res, m, true
}

// put records a freshly solved verdict under the structural key. Models are
// translated atom-by-atom; a model atom outside the formula (impossible for
// the CDCL solver, which only allocates variables for asserted atoms) aborts
// the store rather than record an unreplayable model.
func (vc *verdictCoder) put(res smt.Result, m smt.Model) {
	if vc == nil {
		return
	}
	portable := make([]smt.PortableAssign, 0, len(m))
	for a, v := range m {
		e, ok := vc.enc[a]
		if !ok {
			return
		}
		portable = append(portable, smt.PortableAssign{Atom: e, Val: v})
	}
	vc.vs.Store(vc.key, res, portable)
}
